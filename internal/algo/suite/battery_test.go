package suite_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dagsched/internal/algo/exact"
	"dagsched/internal/algo/suite"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

// instanceOf builds a heterogeneous instance over a structured graph with
// a fixed seed.
func instanceOf(t *testing.T, g *dag.Graph, err error, procs int, seed int64) *sched.Instance {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.MakeInstance(g, workload.HetConfig{Procs: procs, CCR: 1, Beta: 0.75}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestBatteryAllAlgorithmsValidate runs every registry algorithm over
// random, fork-join and tiled workloads and requires every schedule to
// pass the full Schedule.Validate checks (one primary copy per task,
// disjoint processor slots, data-arrival feasibility).
func TestBatteryAllAlgorithmsValidate(t *testing.T) {
	check := func(t *testing.T, label string, in *sched.Instance) {
		t.Helper()
		for _, a := range suite.All() {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), label, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s on %s: invalid schedule: %v", a.Name(), label, err)
			}
		}
	}

	t.Run("random", func(t *testing.T) {
		testfix.Battery(testfix.BatteryConfig{Trials: 12, MaxTasks: 40, Seed: 7001}, func(trial int, in *sched.Instance) {
			check(t, fmt.Sprintf("random-trial%d", trial), in)
		})
	})

	t.Run("forkjoin", func(t *testing.T) {
		for i, cfg := range []struct{ branches, stages int }{{2, 1}, {5, 2}, {8, 3}} {
			g, err := workload.ForkJoin(cfg.branches, cfg.stages)
			in := instanceOf(t, g, err, 4, 7100+int64(i))
			check(t, fmt.Sprintf("forkjoin-%dx%d", cfg.branches, cfg.stages), in)
		}
	})

	t.Run("tiled", func(t *testing.T) {
		for i, c := range []struct {
			name string
			mk   func() (*dag.Graph, error)
		}{
			{"cholesky-t4", func() (*dag.Graph, error) { return workload.Cholesky(4) }},
			{"lu-t4", func() (*dag.Graph, error) { return workload.LU(4) }},
		} {
			g, err := c.mk()
			in := instanceOf(t, g, err, 4, 7200+int64(i))
			check(t, c.name, in)
		}
	})
}

// TestBatteryNeverBeatsOptimal proves every registry heuristic respects
// the exact branch-and-bound lower bound on small instances: a
// non-duplicating schedule can never finish before the proven optimum
// (duplication CAN legitimately beat the duplication-free optimum, so
// schedules that duplicated are exempt, matching the exact-package
// convention).
func TestBatteryNeverBeatsOptimal(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 15, MaxTasks: 10, MaxProcs: 3, Seed: 7300}, func(trial int, in *sched.Instance) {
		opt, proven, err := exact.BnB{}.Makespan(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !proven {
			t.Fatalf("trial %d: exact search budget exhausted on a %d-task instance", trial, in.N())
		}
		for _, a := range suite.All() {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if s.NumDuplicates() == 0 && s.Makespan() < opt-1e-6 {
				t.Errorf("trial %d: %s makespan %g beats proven optimum %g", trial, a.Name(), s.Makespan(), opt)
			}
		}
	})
}
