package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

func TestRankUpwardDiamond(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1)) // mean comm = data
	r := RankUpward(in)
	// rank(3)=4; rank(1)=3+2+4=9; rank(2)=1+3+4=8; rank(0)=2+max(1+9,4+8)=14.
	want := []float64{14, 9, 8, 4}
	for i := range want {
		if !almostEqual(r[i], want[i]) {
			t.Fatalf("RankUpward = %v, want %v", r, want)
		}
	}
}

func TestRankDownwardDiamond(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1))
	r := RankDownward(in)
	// rank_d(0)=0; rank_d(1)=0+2+1=3; rank_d(2)=0+2+4=6; rank_d(3)=max(3+3+2, 6+1+3)=10.
	want := []float64{0, 3, 6, 10}
	for i := range want {
		if !almostEqual(r[i], want[i]) {
			t.Fatalf("RankDownward = %v, want %v", r, want)
		}
	}
}

func TestRankSigmaEqualsRankUOnHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := dag.NewBuilder("g")
	for i := 0; i < 20; i++ {
		b.AddTask("", 1+rng.Float64()*5)
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(dag.TaskID(i), dag.TaskID(j), rng.Float64()*5)
			}
		}
	}
	in := Consistent(b.MustBuild(), platform.Homogeneous(4, 0, 1))
	ru := RankUpward(in)
	rs := RankUpwardSigma(in)
	for i := range ru {
		if !almostEqual(ru[i], rs[i]) {
			t.Fatalf("sigma rank differs on homogeneous system at %d: %g vs %g", i, ru[i], rs[i])
		}
	}
}

func TestRankSigmaDominatesOnHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(t, rng, 25, 4)
	ru := RankUpward(in)
	rs := RankUpwardSigma(in)
	for i := range ru {
		if rs[i] < ru[i]-eps {
			t.Fatalf("sigma rank %g below plain rank %g at task %d", rs[i], ru[i], i)
		}
	}
}

func TestStaticLevel(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1))
	sl := StaticLevel(in)
	want := []float64{9, 7, 5, 4}
	for i := range want {
		if !almostEqual(sl[i], want[i]) {
			t.Fatalf("StaticLevel = %v, want %v", sl, want)
		}
	}
}

func TestALAPStart(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1))
	alap := ALAPStart(in)
	// CP(mean, comm) = 14; alap = 14 - rank_u.
	want := []float64{0, 5, 6, 10}
	for i := range want {
		if !almostEqual(alap[i], want[i]) {
			t.Fatalf("ALAPStart = %v, want %v", alap, want)
		}
	}
}

func TestCriticalPathMean(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1))
	path, cp := CriticalPathMean(in)
	if !almostEqual(cp, 14) {
		t.Fatalf("cp = %g, want 14", cp)
	}
	want := []dag.TaskID{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// The path is contiguous in the graph.
	for i := 0; i+1 < len(path); i++ {
		if _, ok := g.EdgeData(path[i], path[i+1]); !ok {
			t.Fatalf("path step %d->%d not an edge", path[i], path[i+1])
		}
	}
}

func TestCriticalPathMeanRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, rng, 3+rng.Intn(30), 3)
		path, cp := CriticalPathMean(in)
		up := RankUpward(in)
		down := RankDownward(in)
		for _, v := range path {
			if !almostEqual(up[v]+down[v], cp) {
				t.Fatalf("task %d on path has up+down = %g, cp = %g", v, up[v]+down[v], cp)
			}
		}
		// CP length matches the max up-rank over entries.
		maxUp := 0.0
		for _, e := range in.G.Entries() {
			if up[e] > maxUp {
				maxUp = up[e]
			}
		}
		if !almostEqual(maxUp, cp) {
			t.Fatalf("cp = %g, max entry rank = %g", cp, maxUp)
		}
	}
}

// TestCriticalPathMeanLargeMagnitude is the regression test for the trace
// tolerance. On a long chain of ~1e12-cost tasks the critical path length
// reaches ~1e15, where one ulp is 0.125: up[v]+down[v] recomputes the same
// path sum in a different association order than cp, so the two differ by
// float dust far above the old absolute 1e-9 band. The old trace then found
// no successor inside the band and silently truncated the path; the scaled
// tolerance must keep the full chain and end at the exit task.
func TestCriticalPathMeanLargeMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 1000
	b := dag.NewBuilder("huge-chain")
	for i := 0; i < n; i++ {
		b.AddTask("", 1e12*(1+rng.Float64()))
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(dag.TaskID(i), dag.TaskID(i+1), 1e12*rng.Float64())
	}
	g := b.MustBuild()
	in := Consistent(g, platform.Homogeneous(3, 0, 1))
	path, cp := CriticalPathMean(in)
	if cp < 1e15 {
		t.Fatalf("cp = %g, expected ~1e15 magnitude", cp)
	}
	if len(path) != n {
		t.Fatalf("path truncated: %d of %d chain tasks", len(path), n)
	}
	last := path[len(path)-1]
	if in.G.OutDegree(last) != 0 {
		t.Fatalf("path ends at task %d which is not an exit", last)
	}
	for i := 0; i+1 < len(path); i++ {
		if _, ok := g.EdgeData(path[i], path[i+1]); !ok {
			t.Fatalf("path step %d->%d not an edge", path[i], path[i+1])
		}
	}
}

// TestCriticalPathMeanAlwaysReachesExit extends the exit guarantee to
// random branched graphs with large magnitudes: regardless of rounding,
// the traced path must be edge-contiguous and terminate at an exit task.
func TestCriticalPathMeanAlwaysReachesExit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		b := dag.NewBuilder("huge-rand")
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			b.AddTask("", 1e11*(1+rng.Float64()*9))
		}
		added := make(map[[2]int]bool)
		for i := 1; i < n; i++ {
			for k := 0; k < 1+rng.Intn(3); k++ {
				from := rng.Intn(i)
				if !added[[2]int{from, i}] {
					added[[2]int{from, i}] = true
					b.AddEdge(dag.TaskID(from), dag.TaskID(i), 1e11*rng.Float64())
				}
			}
		}
		g := b.MustBuild()
		in := Consistent(g, platform.Homogeneous(4, 0.5, 1))
		path, _ := CriticalPathMean(in)
		last := path[len(path)-1]
		if in.G.OutDegree(last) != 0 {
			t.Fatalf("trial %d: path ends at non-exit task %d", trial, last)
		}
		for i := 0; i+1 < len(path); i++ {
			if _, ok := g.EdgeData(path[i], path[i+1]); !ok {
				t.Fatalf("trial %d: path step %d->%d not an edge", trial, path[i], path[i+1])
			}
		}
	}
}

func TestSortByRank(t *testing.T) {
	rank := []float64{3, 5, 5, 1}
	desc := SortByRankDesc(rank)
	wantDesc := []dag.TaskID{1, 2, 0, 3}
	for i := range wantDesc {
		if desc[i] != wantDesc[i] {
			t.Fatalf("desc = %v, want %v", desc, wantDesc)
		}
	}
	asc := SortByRankAsc(rank)
	wantAsc := []dag.TaskID{3, 0, 1, 2}
	for i := range wantAsc {
		if asc[i] != wantAsc[i] {
			t.Fatalf("asc = %v, want %v", asc, wantAsc)
		}
	}
}

func TestSortByRankLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rank := make([]float64, 500)
	for i := range rank {
		rank[i] = float64(rng.Intn(50)) // many ties
	}
	order := SortByRankDesc(rank)
	seen := make(map[dag.TaskID]bool)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if rank[a] < rank[b] {
			t.Fatal("not sorted descending")
		}
		if rank[a] == rank[b] && a > b {
			t.Fatal("tie not broken by id")
		}
	}
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate id in order")
		}
		seen[v] = true
	}
}

func TestRankUpwardRespectsTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(t, rng, 3+rng.Intn(30), 4)
		r := RankUpward(in)
		// rank_u(from) >= mean cost(from) + mean comm + rank_u(to), so in
		// particular it exceeds rank_u(to) by at least the task's own cost.
		for _, e := range in.G.Edges() {
			if r[e.From] < r[e.To]+in.MeanCost(e.From)-eps {
				t.Fatalf("rank not decreasing along edge %v: %g vs %g", e, r[e.From], r[e.To])
			}
		}
	}
}
