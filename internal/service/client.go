package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a minimal schedd API client.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorJSON
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("service: %s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("service: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Schedule submits one scheduling request.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var out MetricsSnapshot
	if err := c.doJSON(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the server's algorithm registry.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["algorithms"], nil
}

// CommModels lists the communication-model kinds the server accepts in
// ScheduleRequest.CommModel.
func (c *Client) CommModels(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["commModels"], nil
}
