// Package contention implements contention-aware list scheduling in the
// spirit of Sinnen and Sousa: the earliest-start computation models every
// inter-processor transfer explicitly under the one-port model (one send
// port and one receive port per processor), reserving port time as tasks
// are placed. Schedules remain valid under the classic contention-free
// validator (starts only move later) but lose far less when replayed on a
// network that serializes transfers (experiment E16).
package contention

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// spanList is a sorted list of disjoint busy intervals on one port.
type spanList []span

type span struct{ s, e float64 }

// earliestFrom returns the earliest start >= t at which an interval of
// length dur fits between the busy spans.
func (sp spanList) earliestFrom(t, dur float64) float64 {
	const eps = 1e-9
	for _, iv := range sp {
		if t+dur <= iv.s+eps {
			return t
		}
		if iv.e > t {
			t = iv.e
		}
	}
	return t
}

// insert adds [s, e) keeping the list sorted. Overlaps indicate a caller
// bug and panic.
func (sp *spanList) insert(s, e float64) {
	const eps = 1e-9
	list := *sp
	k := len(list)
	for k > 0 && list[k-1].s > s {
		k--
	}
	if k > 0 && list[k-1].e > s+eps {
		panic("contention: overlapping port reservation")
	}
	if k < len(list) && e > list[k].s+eps {
		panic("contention: overlapping port reservation")
	}
	list = append(list, span{})
	copy(list[k+1:], list[k:])
	list[k] = span{s, e}
	*sp = list
}

// network tracks the send and receive port reservations of every
// processor.
type network struct {
	send []spanList
	recv []spanList
}

func newNetwork(p int) *network {
	return &network{send: make([]spanList, p), recv: make([]spanList, p)}
}

func (nw *network) clone() *network {
	cp := newNetwork(len(nw.send))
	for i := range nw.send {
		cp.send[i] = append(spanList(nil), nw.send[i]...)
		cp.recv[i] = append(spanList(nil), nw.recv[i]...)
	}
	return cp
}

// transferStart returns the earliest time >= ready at which a transfer of
// the given duration can occupy both the sender's send port and the
// receiver's receive port. The alternation converges because every
// iteration advances t past a busy span.
func (nw *network) transferStart(from, to int, ready, dur float64) float64 {
	t := ready
	for {
		t1 := nw.send[from].earliestFrom(t, dur)
		t2 := nw.recv[to].earliestFrom(t1, dur)
		if t2 == t1 {
			return t1
		}
		t = t2
	}
}

// reserve commits a transfer on both ports.
func (nw *network) reserve(from, to int, start, dur float64) {
	if dur <= 0 {
		return
	}
	nw.send[from].insert(start, start+dur)
	nw.recv[to].insert(start, start+dur)
}

// arrival computes when the data of predecessor pe reaches processor p,
// given the current plan and network; commit reserves the chosen
// transfer's ports.
func arrival(pl *sched.Plan, nw *network, pe dag.Adj, p int, commit bool) float64 {
	in := pl.Instance()
	best := math.Inf(1)
	bestProc := -1
	bestStart, bestDur := 0.0, 0.0
	for _, c := range pl.Copies(pe.To) {
		if c.Proc == p {
			if c.Finish < best {
				best, bestProc = c.Finish, p
			}
			continue
		}
		dur := in.Sys.CommCost(c.Proc, p, pe.Data)
		if dur == 0 {
			if c.Finish < best {
				best, bestProc = c.Finish, p
			}
			continue
		}
		start := nw.transferStart(c.Proc, p, c.Finish, dur)
		if start+dur < best {
			best, bestProc, bestStart, bestDur = start+dur, c.Proc, start, dur
		}
	}
	if commit && bestProc != -1 && bestProc != p && bestDur > 0 {
		nw.reserve(bestProc, p, bestStart, bestDur)
	}
	return best
}

// estimate returns the contention-aware (start, finish) of task t on
// processor p without committing any reservation.
func estimate(pl *sched.Plan, nw *network, t dag.TaskID, p int) (float64, float64) {
	in := pl.Instance()
	ready := 0.0
	for _, pe := range in.G.Pred(t) {
		if a := arrival(pl, nw, pe, p, false); a > ready {
			ready = a
		}
	}
	start := pl.FindSlot(p, ready, in.Cost(t, p), true)
	return start, start + in.Cost(t, p)
}

// commitPlace reserves all incoming transfers of t on p (in predecessor
// id order, recomputing each against the already-committed ports) and
// places the task.
func commitPlace(pl *sched.Plan, nw *network, t dag.TaskID, p int) {
	in := pl.Instance()
	ready := 0.0
	for _, pe := range in.G.Pred(t) {
		if a := arrival(pl, nw, pe, p, true); a > ready {
			ready = a
		}
	}
	start := pl.FindSlot(p, ready, in.Cost(t, p), true)
	pl.Place(t, p, start)
}

// CHEFT is contention-aware HEFT: upward-rank order, processor choice by
// the contention-aware insertion EFT, sequential port commitment.
type CHEFT struct{}

// Name implements algo.Algorithm.
func (CHEFT) Name() string { return "C-HEFT" }

// Schedule implements algo.Algorithm.
func (CHEFT) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	order := algo.OrderDescPrecedence(in.G, sched.RankUpward(in))
	pl := sched.NewPlan(in)
	nw := newNetwork(in.P())
	for _, t := range order {
		bestP, bestF := -1, math.Inf(1)
		for p := 0; p < in.P(); p++ {
			if _, f := estimate(pl, nw, t, p); f < bestF {
				bestP, bestF = p, f
			}
		}
		commitPlace(pl, nw, t, bestP)
	}
	return pl.Finalize("C-HEFT"), nil
}

// PortSchedule exposes the committed reservations for tests: the total
// reserved send time per processor after scheduling in with CHEFT.
func PortSchedule(in *sched.Instance) ([]float64, error) {
	order := algo.OrderDescPrecedence(in.G, sched.RankUpward(in))
	pl := sched.NewPlan(in)
	nw := newNetwork(in.P())
	for _, t := range order {
		bestP, bestF := -1, math.Inf(1)
		for p := 0; p < in.P(); p++ {
			if _, f := estimate(pl, nw, t, p); f < bestF {
				bestP, bestF = p, f
			}
		}
		commitPlace(pl, nw, t, bestP)
	}
	out := make([]float64, in.P())
	for p := range nw.send {
		for _, iv := range nw.send[p] {
			out[p] += iv.e - iv.s
		}
	}
	return out, nil
}
