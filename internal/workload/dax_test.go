package workload

import (
	"strings"
	"testing"

	"dagsched/internal/dag"
)

const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="mini-montage" jobCount="4">
  <job id="ID00000" name="mProjectPP" runtime="13.59">
    <uses file="raw1.fits" link="input" size="4000000"/>
    <uses file="proj1.fits" link="output" size="8000000"/>
  </job>
  <job id="ID00001" name="mProjectPP" runtime="11.25">
    <uses file="raw2.fits" link="input" size="4000000"/>
    <uses file="proj2.fits" link="output" size="8000000"/>
  </job>
  <job id="ID00002" name="mDiffFit" runtime="2.34">
    <uses file="proj1.fits" link="input" size="8000000"/>
    <uses file="proj2.fits" link="input" size="8000000"/>
    <uses file="diff.fits" link="output" size="1000000"/>
  </job>
  <job id="ID00003" name="mConcatFit" runtime="5.0">
    <uses file="diff.fits" link="input" size="1000000"/>
  </job>
  <child ref="ID00002">
    <parent ref="ID00000"/>
    <parent ref="ID00001"/>
  </child>
  <child ref="ID00003">
    <parent ref="ID00002"/>
  </child>
</adag>`

func TestReadDAX(t *testing.T) {
	g, err := ReadDAX(strings.NewReader(sampleDAX), DAXOptions{DataScale: 1e-6})
	if err != nil {
		t.Fatalf("ReadDAX: %v", err)
	}
	if g.Name() != "mini-montage" {
		t.Fatalf("Name = %q", g.Name())
	}
	if g.Len() != 4 || g.NumEdges() != 3 {
		t.Fatalf("shape = %d tasks %d edges", g.Len(), g.NumEdges())
	}
	if got := g.Task(0).Weight; got != 13.59 {
		t.Fatalf("runtime = %g", got)
	}
	if got := g.Task(0).Name; got != "mProjectPP" {
		t.Fatalf("name = %q", got)
	}
	// Edge ID00000 -> ID00002 carries proj1.fits: 8 MB after scaling.
	if d, ok := g.EdgeData(0, 2); !ok || d != 8 {
		t.Fatalf("edge data = %g,%v, want 8", d, ok)
	}
	if d, ok := g.EdgeData(2, 3); !ok || d != 1 {
		t.Fatalf("edge data = %g,%v, want 1", d, ok)
	}
	if e := g.Exits(); len(e) != 1 || g.Task(e[0]).Name != "mConcatFit" {
		t.Fatalf("Exits = %v", e)
	}
}

func TestReadDAXDefaults(t *testing.T) {
	in := `<adag name="x">
	  <job id="a"/>
	  <job id="b"/>
	  <child ref="b"><parent ref="a"/></child>
	</adag>`
	g, err := ReadDAX(strings.NewReader(in), DAXOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(0).Weight != 1 {
		t.Fatalf("default runtime = %g", g.Task(0).Weight)
	}
	if g.Task(0).Name != "a" {
		t.Fatalf("fallback label = %q", g.Task(0).Name)
	}
	// No shared files: zero-data edge, still a precedence.
	if d, ok := g.EdgeData(0, 1); !ok || d != 0 {
		t.Fatalf("edge = %g,%v", d, ok)
	}
}

func TestReadDAXErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":        `{`,
		"no jobs":        `<adag name="x"></adag>`,
		"dup id":         `<adag><job id="a"/><job id="a"/></adag>`,
		"unknown child":  `<adag><job id="a"/><child ref="zz"><parent ref="a"/></child></adag>`,
		"unknown parent": `<adag><job id="a"/><child ref="a"><parent ref="zz"/></child></adag>`,
		"cycle": `<adag><job id="a"/><job id="b"/>
		  <child ref="b"><parent ref="a"/></child>
		  <child ref="a"><parent ref="b"/></child></adag>`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadDAX(strings.NewReader(in), DAXOptions{}); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestDAXSchedulesEndToEnd(t *testing.T) {
	g, err := ReadDAX(strings.NewReader(sampleDAX), DAXOptions{DataScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	var ids []dag.TaskID
	for _, task := range g.Tasks() {
		ids = append(ids, task.ID)
	}
	if len(ids) != 4 {
		t.Fatal("bad task list")
	}
}
