package stream

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// Seal-time re-planning replays listsched.Param's placement semantics —
// the same consumption order, the same selection rule, the same tie
// breaks — over everything outside the frozen prefix, with readiness
// floored at the clock. At a zero clock the floor is a no-op
// (sched.EFTFloored is bit-identical to EFTOn) and the frozen prefix is
// empty, so the sealed schedule is bit-identical to the static
// scheduler's: DESIGN.md invariant 13. The equivalence tests pin it.

// sealReplan builds the exact schedule from the frozen prefix.
func sealReplan(pm listsched.Param, in *sched.Instance, prio []float64, frozen []sched.Assignment, clock float64) *sched.Plan {
	pl := sched.SeedPlan(in, frozen)
	isFrozen := make([]bool, in.N())
	for _, a := range frozen {
		isFrozen[a.Task] = true
	}
	var cpOn []bool
	cpProc := 0
	if pm.Select == listsched.SelectCPPin {
		cpOn, cpProc = listsched.CPPin(in)
	}

	switch pm.Order {
	case listsched.OrderStatic:
		for _, t := range listsched.StaticOrder(in.G, prio) {
			if isFrozen[t] {
				continue
			}
			placeMovable(pl, pm, cpOn, cpProc, t, clock)
		}
	case listsched.OrderReady:
		rl := algo.NewReadyList(in.G)
		for !rl.Empty() {
			var pick dag.TaskID = -1
			for _, r := range rl.Ready() {
				if pick == -1 || prio[r] > prio[pick] {
					pick = r
				}
			}
			if !isFrozen[pick] {
				placeMovable(pl, pm, cpOn, cpProc, pick, clock)
			}
			rl.Complete(pick)
		}
	case listsched.OrderPair:
		rl := algo.NewReadyList(in.G)
		for !rl.Empty() {
			// Retire ready frozen tasks first: they are placed already and
			// must not enter the pair competition.
			retired := true
			for retired {
				retired = false
				for _, r := range rl.Ready() {
					if isFrozen[r] {
						rl.Complete(r)
						retired = true
						break
					}
				}
			}
			if rl.Empty() {
				break
			}
			bestStart := math.Inf(1)
			var bestTask dag.TaskID = -1
			bestProc := 0
			for _, t := range rl.Ready() {
				for p := 0; p < in.P(); p++ {
					start, _ := sched.EFTFloored(pl, t, p, clock, pm.Insertion)
					better := start < bestStart ||
						(start == bestStart && bestTask != -1 && prio[t] > prio[bestTask])
					if better {
						bestStart, bestTask, bestProc = start, t, p
					}
				}
			}
			pl.Place(bestTask, bestProc, bestStart)
			rl.Complete(bestTask)
		}
	}
	return pl
}

// placeMovable places one unfrozen task under Param's selection rule
// with readiness floored at the clock. At clock zero every branch is
// bit-identical to Param.place — in particular min-EFT selection goes
// through Plan.BestEFT itself, whose tree-select path a manual loop
// would not reproduce.
func placeMovable(pl *sched.Plan, pm listsched.Param, cpOn []bool, cpProc int, t dag.TaskID, clock float64) {
	if cpOn != nil && cpOn[t] {
		start, _ := sched.EFTFloored(pl, t, cpProc, clock, pm.Insertion)
		pl.Place(t, cpProc, start)
		return
	}
	switch pm.Select {
	case listsched.SelectEST:
		bestP, bestS := -1, 0.0
		for p := 0; p < pl.Instance().P(); p++ {
			s, _ := sched.EFTFloored(pl, t, p, clock, pm.Insertion)
			if bestP == -1 || s < bestS {
				bestP, bestS = p, s
			}
		}
		pl.Place(t, bestP, bestS)
	default: // SelectEFT, and SelectCPPin off the critical path
		if clock == 0 {
			p, s, _ := pl.BestEFT(t, pm.Insertion)
			pl.Place(t, p, s)
			return
		}
		bestP := -1
		bestS, bestF := math.Inf(1), math.Inf(1)
		for p := 0; p < pl.Instance().P(); p++ {
			s, f := sched.EFTFloored(pl, t, p, clock, pm.Insertion)
			if bestP == -1 || f < bestF {
				bestP, bestS, bestF = p, s, f
			}
		}
		pl.Place(t, bestP, bestS)
	}
}
