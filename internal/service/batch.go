package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
)

// handleBatch serves POST /v1/schedule/batch: many scheduling queries
// in one request, fanned out across the worker pool. Each item runs
// under its own deadline (its timeoutMs, or the server default) with
// partial-failure semantics — the batch answers 200 with per-item
// statuses as long as the envelope itself was well-formed — and the
// results array preserves request order. Items enqueue blocking (the
// queue backpressures a large batch instead of 503ing its tail), go
// through the same tiered cache as single requests (local LRU, then
// the owning peer's cache, then compute), and coalesce with concurrent
// identical work.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	n := len(breq.Items)
	if n == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.opts.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item limit", n, s.opts.MaxBatchItems)
		return
	}
	s.met.ObserveBatch(n)
	reqID, _ := r.Context().Value(reqIDKey{}).(string)
	results := make([]BatchItemResult, n)
	var wg sync.WaitGroup
	for i := range breq.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.runBatchItem(r, reqID, i, &breq.Items[i])
		}(i)
	}
	wg.Wait()
	out := BatchResponse{Items: results}
	for i := range results {
		if results[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// runBatchItem resolves and schedules one batch item, mapping its
// outcome to the status a single request would have received. Items
// run on their own goroutines outside the instrument middleware, so
// panics are contained here — one poisoned item answers a per-item 500
// while its siblings complete.
func (s *Server) runBatchItem(r *http.Request, reqID string, i int, item *ScheduleRequest) (res BatchItemResult) {
	res.Index = i
	itemID := fmt.Sprintf("%s#%d", reqID, i)
	defer func() {
		if p := recover(); p != nil {
			s.met.ObservePanic()
			log.Printf("service: panic in batch item %s: %v\n%s", itemID, p, debug.Stack())
			res = BatchItemResult{Index: i, Status: http.StatusInternalServerError,
				Error: fmt.Sprintf("internal error (request %s)", itemID)}
		}
	}()
	a, in, err := s.resolveRequest(item)
	if err != nil {
		res.Status, res.Error = http.StatusBadRequest, err.Error()
		return res
	}
	key, err := cacheKey(in, item.Algorithm, item.Analyze, item.LinkBandwidth, item.Faults)
	if err != nil {
		res.Status, res.Error = http.StatusInternalServerError, err.Error()
		return res
	}
	timeout := s.timeoutFor(item.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := s.scheduleLocal(ctx, itemID, parsedItem{
		alg: a, in: in, analyze: item.Analyze, faults: item.Faults, key: key,
	}, true, true)
	if err != nil {
		res.Status, res.Error = s.statusFor(err, timeout)
		return res
	}
	res.Status, res.Response = http.StatusOK, resp
	return res
}
