package algo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/search"
	"dagsched/internal/core"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestScheduleContextLiveContext(t *testing.T) {
	in := testfix.Topcuoglu()
	for _, a := range []algo.Algorithm{listsched.HEFT{}, core.New(), listsched.CPOP{}} {
		s, err := algo.ScheduleContext(context.Background(), a, in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
}

func TestScheduleContextPreCanceled(t *testing.T) {
	in := testfix.Topcuoglu()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Both a CtxScheduler and a plain Algorithm refuse a dead context.
	for _, a := range []algo.Algorithm{
		listsched.HEFT{},
		listsched.CPOP{}, // no ScheduleContext: checked by the dispatcher
	} {
		if _, err := algo.ScheduleContext(ctx, a, in); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", a.Name(), err)
		}
	}
}

func TestScheduleContextAbortsMidRun(t *testing.T) {
	in := testfix.Topcuoglu()
	for _, a := range []algo.Algorithm{
		core.New(),
		listsched.HEFT{},
		search.HillClimb{Iters: 1 << 30},
		search.Anneal{Iters: 1 << 30},
		search.Genetic{Pop: 16, Gens: 1 << 20},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := algo.ScheduleContext(ctx, a, in)
			done <- err
		}()
		// Give the run a head start, then cancel; an unbounded search
		// without checkpoints would never return.
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			// ILS/HEFT may legitimately finish the tiny instance before
			// the cancel lands; the unbounded searches cannot.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v", a.Name(), err)
			}
			if err == nil {
				if _, unbounded := a.(search.HillClimb); unbounded {
					t.Fatalf("%s: unbounded search completed", a.Name())
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: did not abort within 10s of cancellation", a.Name())
		}
	}
}

func TestCheckpointNilDone(t *testing.T) {
	c := algo.NewCheckpoint(context.Background(), 1)
	for i := 0; i < 1000; i++ {
		if err := c.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointFirstCheckPolls is the regression test for the stride
// counter: a context canceled before the loop starts must surface on the
// very first Check, not after stride-1 free iterations.
func TestCheckpointFirstCheckPolls(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := algo.NewCheckpoint(ctx, 64)
	if err := c.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Check = %v, want context.Canceled", err)
	}
}

// TestCheckpointStride pins the steady-state cadence: after the first
// poll, a live context is polled exactly once per stride Checks — verified
// by canceling between Checks and counting the delay until detection.
func TestCheckpointStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := algo.NewCheckpoint(ctx, 4)
	if err := c.Check(); err != nil { // first Check polls the live context
		t.Fatalf("live first Check = %v", err)
	}
	cancel()
	// Checks 2 and 3 fall inside the stride window; check 5 (= 1 + stride)
	// is the next poll and must report the cancellation.
	delay := 0
	for c.Check() == nil {
		delay++
		if delay > 4 {
			t.Fatalf("cancellation not seen within one stride")
		}
	}
	if delay != 3 {
		t.Fatalf("cancellation seen after %d Checks, want 3 (stride 4)", delay)
	}
}

var _ algo.CtxScheduler = core.ILS{}
var _ algo.CtxScheduler = listsched.HEFT{}
var _ algo.CtxScheduler = search.HillClimb{}
var _ algo.CtxScheduler = search.Anneal{}
var _ algo.CtxScheduler = search.Genetic{}
var _ algo.Algorithm = algo.Func{AlgName: "f", Fn: func(in *sched.Instance) (*sched.Schedule, error) { return nil, nil }}
