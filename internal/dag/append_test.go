package dag

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// checkOrderValid asserts the maintained positions form a valid
// topological order of the appended-so-far graph.
func checkOrderValid(t *testing.T, ap *Appendable) {
	t.Helper()
	n := ap.Len()
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		p := ap.Position(TaskID(v))
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("position %d of task %d invalid or duplicated", p, v)
		}
		seen[p] = true
		for _, a := range ap.succ[v] {
			if ap.Position(a.To) <= p {
				t.Fatalf("edge (%d,%d) violates maintained order: %d <= %d",
					v, a.To, ap.Position(a.To), p)
			}
		}
	}
}

// sealEquals asserts a sealed appendable matches a statically built graph
// structurally and in canonical topological order.
func sealEquals(t *testing.T, ap *Appendable, want *Graph) {
	t.Helper()
	got, err := ap.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if !reflect.DeepEqual(got.Tasks(), want.Tasks()) {
		t.Fatalf("tasks differ")
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("edges differ")
	}
	if !reflect.DeepEqual(got.TopoOrder(), want.TopoOrder()) {
		t.Fatalf("canonical topo order differs:\n got %v\nwant %v", got.TopoOrder(), want.TopoOrder())
	}
	gotOff, gotTasks := got.HeightLevels()
	wantOff, wantTasks := want.HeightLevels()
	if !reflect.DeepEqual(gotOff, wantOff) || !reflect.DeepEqual(gotTasks, wantTasks) {
		t.Fatalf("height level sets differ")
	}
}

// randomGrowthEdges returns the edge list of a random DAG over n tasks,
// with edges oriented low id -> high id.
func randomGrowthEdges(rng *rand.Rand, n int) []Edge {
	var edges []Edge
	for to := 1; to < n; to++ {
		deg := 1 + rng.Intn(3)
		for k := 0; k < deg && k < to; k++ {
			from := rng.Intn(to)
			dup := false
			for _, e := range edges {
				if e.From == TaskID(from) && e.To == TaskID(to) {
					dup = true
				}
			}
			if !dup {
				edges = append(edges, Edge{From: TaskID(from), To: TaskID(to), Data: float64(rng.Intn(50))})
			}
		}
	}
	return edges
}

func TestAppendableMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		edges := randomGrowthEdges(rng, n)

		b := NewBuilder("static")
		for i := 0; i < n; i++ {
			b.AddTask("", float64(1+rng.Intn(9)))
		}
		for _, e := range edges {
			b.AddEdge(e.From, e.To, e.Data)
		}
		want := b.MustBuild()

		// Tasks must arrive in id order (ids are dense arrival positions),
		// but edges are shuffled so reorders trigger.
		ap := NewAppendable("static")
		for i := 0; i < n; i++ {
			if _, err := ap.AddTask(want.Task(TaskID(i)).Name, want.Task(TaskID(i)).Weight); err != nil {
				t.Fatalf("AddTask: %v", err)
			}
		}
		shuffled := append([]Edge(nil), edges...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, e := range shuffled {
			if err := ap.AddEdge(e.From, e.To, e.Data); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", e.From, e.To, err)
			}
		}
		checkOrderValid(t, ap)
		sealEquals(t, ap, want)
	}
}

func TestAppendableInterleavedReseal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	edges := randomGrowthEdges(rng, n)

	ap := NewAppendable("grow")
	b := NewBuilder("grow")
	// Interleave: tasks arrive one at a time, each followed by the edges
	// whose later endpoint just arrived; re-seal after every third task.
	for i := 0; i < n; i++ {
		w := float64(1 + i%7)
		if _, err := ap.AddTask("", w); err != nil {
			t.Fatal(err)
		}
		b.AddTask("", w)
		for _, e := range edges {
			if int(e.To) == i {
				if err := ap.AddEdge(e.From, e.To, e.Data); err != nil {
					t.Fatal(err)
				}
				b.AddEdge(e.From, e.To, e.Data)
			}
		}
		if i%3 == 2 || i == n-1 {
			checkOrderValid(t, ap)
			sealEquals(t, ap, b.MustBuild())
		}
	}
}

func TestAppendableReverseTopoArrival(t *testing.T) {
	// Tasks arrive in reverse dependency order: every edge points from a
	// later arrival to an earlier one, so every AddEdge violates the
	// maintained order and triggers a reorder.
	rng := rand.New(rand.NewSource(3))
	n := 25
	edges := randomGrowthEdges(rng, n)

	// Remap id i -> n-1-i: task n-1-i arrives at position i.
	remap := func(id TaskID) TaskID { return TaskID(n-1) - id }
	ap := NewAppendable("rev")
	b := NewBuilder("rev")
	for i := 0; i < n; i++ {
		if _, err := ap.AddTask("", 1); err != nil {
			t.Fatal(err)
		}
		b.AddTask("", 1)
	}
	for _, e := range edges {
		if err := ap.AddEdge(remap(e.From), remap(e.To), e.Data); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		b.AddEdge(remap(e.From), remap(e.To), e.Data)
		checkOrderValid(t, ap)
	}
	sealEquals(t, ap, b.MustBuild())
}

func TestAppendableCycleRejected(t *testing.T) {
	ap := NewAppendable("cyc")
	for i := 0; i < 4; i++ {
		if _, err := ap.AddTask("", 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}} {
		if err := ap.AddEdge(e.From, e.To, e.Data); err != nil {
			t.Fatal(err)
		}
	}
	err := ap.AddEdge(3, 0, 1)
	if !errors.Is(err, ErrCycle) || !errors.Is(err, ErrWouldCycle) {
		t.Fatalf("want ErrWouldCycle, got %v", err)
	}
	// Direct back-edge too.
	if err := ap.AddEdge(1, 0, 1); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	// The rejected edges must not have poisoned any state: the graph still
	// seals to the 4-task chain and accepts further valid edges.
	if err := ap.AddEdge(0, 3, 2); err != nil {
		t.Fatalf("append after rejection: %v", err)
	}
	checkOrderValid(t, ap)
	g, err := ap.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if got := g.TopoOrder(); !reflect.DeepEqual(got, []TaskID{0, 1, 2, 3}) {
		t.Fatalf("topo = %v", got)
	}
}

func TestAppendableValidation(t *testing.T) {
	ap := NewAppendable("bad")
	if _, err := ap.AddTask("", -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := ap.AddTask("", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ap.AddTask("", 2); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to TaskID
		data     float64
	}{
		{0, 5, 1},  // out of range
		{-1, 1, 1}, // out of range
		{1, 1, 1},  // self loop
		{0, 1, -3}, // negative data
	}
	for _, c := range cases {
		if err := ap.AddEdge(c.from, c.to, c.data); err == nil {
			t.Fatalf("edge (%d,%d,%g) accepted", c.from, c.to, c.data)
		}
	}
	if err := ap.AddEdge(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := ap.AddEdge(0, 1, 4); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if ap.NumEdges() != 1 || ap.Len() != 2 {
		t.Fatalf("state polluted: %d tasks %d edges", ap.Len(), ap.NumEdges())
	}
}

func TestAppendableEmptySeal(t *testing.T) {
	if _, err := NewAppendable("").Seal(); err == nil {
		t.Fatal("empty seal accepted")
	}
}
