package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dagsched/internal/algo/dup"
	"dagsched/internal/testfix"
)

func TestWriteScheduleJSON(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if decoded["algorithm"] != "HEFT" {
		t.Fatalf("algorithm = %v", decoded["algorithm"])
	}
	if decoded["makespan"].(float64) != 80 {
		t.Fatalf("makespan = %v", decoded["makespan"])
	}
	if n := len(decoded["assignments"].([]any)); n != 10 {
		t.Fatalf("assignments = %d, want 10", n)
	}
}

func TestReadScheduleSummary(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	alg, ms, procs, copies, err := ReadScheduleSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if alg != "HEFT" || ms != 80 || procs != 3 || copies != 10 {
		t.Fatalf("summary = %s/%g/%d/%d", alg, ms, procs, copies)
	}
	if _, _, _, _, err := ReadScheduleSummary(strings.NewReader(`{`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, _, _, _, err := ReadScheduleSummary(strings.NewReader(`{"algorithm":"","processors":0}`)); err == nil {
		t.Fatal("implausible header accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	s, err := dup.BTDH{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	events := decoded["traceEvents"].([]any)
	if len(events) != s.NumCopies() {
		t.Fatalf("events = %d, want %d", len(events), s.NumCopies())
	}
	for lane := 0; lane < 3; lane++ {
		if !TraceContainsLane(out, lane) {
			t.Fatalf("lane %d missing from trace", lane)
		}
	}
	if s.NumDuplicates() > 0 && !strings.Contains(out, `"cat": "duplicate"`) {
		t.Fatal("duplicate category missing")
	}
}
