package dagsched_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dagsched"
)

func demoSchedule(t *testing.T) *dagsched.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	g, err := dagsched.GaussianEliminationDAG(6)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 3, CCR: 1, Beta: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dagsched.ILS().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExportersThroughFacade(t *testing.T) {
	s := demoSchedule(t)
	var svg, js, trace, img bytes.Buffer
	if err := dagsched.WriteGanttSVG(&svg, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("no svg")
	}
	if err := dagsched.WriteScheduleJSON(&js, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"algorithm"`) {
		t.Fatal("no schedule json")
	}
	if err := dagsched.WriteChromeTrace(&trace, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "traceEvents") {
		t.Fatal("no trace")
	}
	if err := dagsched.WriteGanttPNG(&img, s, 400); err != nil {
		t.Fatal(err)
	}
	if img.Len() == 0 {
		t.Fatal("no png bytes")
	}
}

func TestAnalyzeAndRepairThroughFacade(t *testing.T) {
	s := demoSchedule(t)
	an := dagsched.Analyze(s)
	if len(an.Critical) == 0 || len(an.Slack) != s.Instance().N() {
		t.Fatalf("analysis = %+v", an)
	}
	r, imp, err := dagsched.AssessFailure(s, dagsched.Failure{Proc: 0, Time: s.Makespan() / 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if imp.Original != s.Makespan() || imp.Repaired < imp.Original-1e-9 {
		t.Fatalf("impact = %+v", imp)
	}
	r2, err := dagsched.Repair(s, dagsched.Failure{Proc: 1, Time: 0})
	if err != nil || r2.Validate() != nil {
		t.Fatalf("Repair: %v", err)
	}
}

func TestInstanceJSONThroughFacade(t *testing.T) {
	s := demoSchedule(t)
	in := s.Instance()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dagsched.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := dagsched.ILS().Schedule(back)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != s.Makespan() {
		t.Fatalf("round-tripped instance schedules differently: %g vs %g", s2.Makespan(), s.Makespan())
	}
}

func TestDAXThroughFacade(t *testing.T) {
	const mini = `<adag name="m"><job id="a" runtime="2"/><job id="b" runtime="3"/>
	  <child ref="b"><parent ref="a"/></child></adag>`
	g, err := dagsched.ReadDAX(strings.NewReader(mini), dagsched.DAXOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestMoreWorkloadsThroughFacade(t *testing.T) {
	gens := map[string]func() (*dagsched.Graph, error){
		"intree":      func() (*dagsched.Graph, error) { return dagsched.InTreeDAG(2, 3) },
		"outtree":     func() (*dagsched.Graph, error) { return dagsched.OutTreeDAG(2, 3) },
		"epigenomics": func() (*dagsched.Graph, error) { return dagsched.EpigenomicsDAG(2, 2) },
		"cybershake":  func() (*dagsched.Graph, error) { return dagsched.CyberShakeDAG(3) },
		"ligo":        func() (*dagsched.Graph, error) { return dagsched.LIGODAG(2, 2) },
	}
	for name, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Len() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
}

func TestVariantsAndSystemsThroughFacade(t *testing.T) {
	v := dagsched.ILSVariant("my-ils", dagsched.ILSOptions{SigmaRank: true})
	if v.Name() != "my-ils" {
		t.Fatal("variant name lost")
	}
	if _, err := dagsched.NewSystem(dagsched.SystemConfig{}); err == nil {
		t.Fatal("empty system accepted")
	}
	rng := rand.New(rand.NewSource(4))
	b := dagsched.NewGraph("g")
	b.AddTask("", 1)
	g, _ := b.Build()
	in, err := dagsched.UnrelatedInstance(g, dagsched.HomogeneousSystem(2, 0, 1), 0.5, rng)
	if err != nil || in.P() != 2 {
		t.Fatalf("UnrelatedInstance: %v", err)
	}
}
