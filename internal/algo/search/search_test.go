package search

import (
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestNames(t *testing.T) {
	if (HillClimb{}).Name() != "HC" || (Anneal{}).Name() != "SA" || (Genetic{}).Name() != "GA" {
		t.Fatal("bad names")
	}
}

func TestValidOnBattery(t *testing.T) {
	algs := []algo.Algorithm{
		HillClimb{Iters: 200},
		Anneal{Iters: 300},
		Genetic{Pop: 10, Gens: 10},
	}
	testfix.Battery(testfix.BatteryConfig{Trials: 12, MaxTasks: 25, Seed: 3001}, func(trial int, in *sched.Instance) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if s.Makespan() < in.CPMin()-1e-6 {
				t.Fatalf("trial %d %s: below CP bound", trial, a.Name())
			}
		}
	})
}

// Local search starts from HEFT, so it can never end worse than HEFT.
func TestNeverWorseThanHEFTSeed(t *testing.T) {
	algs := []algo.Algorithm{
		HillClimb{Iters: 300},
		Anneal{Iters: 500},
		Genetic{Pop: 12, Gens: 15},
	}
	testfix.Battery(testfix.BatteryConfig{Trials: 12, MaxTasks: 30, Seed: 3002}, func(trial int, in *sched.Instance) {
		heft, _ := listsched.HEFT{}.Schedule(in)
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if s.Makespan() > heft.Makespan()+1e-9 {
				t.Fatalf("trial %d: %s makespan %g worse than its HEFT seed %g",
					trial, a.Name(), s.Makespan(), heft.Makespan())
			}
		}
	})
}

// The searches must actually improve something on a batch: over the
// battery, total HC makespan < total HEFT makespan strictly.
func TestSearchImprovesOnAverage(t *testing.T) {
	var heftSum, hcSum float64
	testfix.Battery(testfix.BatteryConfig{Trials: 15, MaxTasks: 30, Seed: 3003}, func(trial int, in *sched.Instance) {
		heft, _ := listsched.HEFT{}.Schedule(in)
		hc, err := HillClimb{Iters: 400}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		heftSum += heft.Makespan()
		hcSum += hc.Makespan()
	})
	if hcSum >= heftSum {
		t.Fatalf("hill climbing never improved: %g vs HEFT %g", hcSum, heftSum)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	in := testfix.Topcuoglu()
	for _, a := range []algo.Algorithm{
		HillClimb{Iters: 200, Seed: 5},
		Anneal{Iters: 200, Seed: 5},
		Genetic{Pop: 8, Gens: 8, Seed: 5},
	} {
		s1, err := a.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := a.Schedule(in)
		if s1.Makespan() != s2.Makespan() {
			t.Fatalf("%s not deterministic", a.Name())
		}
	}
}

func TestDecodeRespectsAssignment(t *testing.T) {
	in := testfix.Topcuoglu()
	seed, err := seedSolution(in)
	if err != nil {
		t.Fatal(err)
	}
	// Pin everything to processor 1.
	for i := range seed.assign {
		seed.assign[i] = 1
	}
	pl := decode(in, seed)
	s := pl.Finalize("pinned")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range s.All() {
		if a.Proc != 1 {
			t.Fatalf("task %d on P%d, want P1", a.Task, a.Proc)
		}
	}
	// Serial on P1: sum of column 1 costs.
	var total float64
	for i := 0; i < in.N(); i++ {
		total += in.W[i][1]
	}
	if s.Makespan() != total {
		t.Fatalf("pinned makespan %g, want %g", s.Makespan(), total)
	}
}
