package sched

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/dag"
)

// Assignment is one placement of a task copy on a processor.
type Assignment struct {
	Task   dag.TaskID
	Proc   int
	Start  float64
	Finish float64
	// Dup marks duplicated copies inserted by duplication-based
	// heuristics; every task has exactly one non-Dup (primary) copy.
	Dup bool
}

// Duration returns Finish − Start.
func (a Assignment) Duration() float64 { return a.Finish - a.Start }

// Schedule is an immutable, validated result of a scheduling algorithm.
type Schedule struct {
	inst      *Instance
	algorithm string
	procs     [][]Assignment // per processor, sorted by Start
	byTask    [][]Assignment // per task, primary first then dups by Start
	makespan  float64
}

// Instance returns the problem this schedule solves.
func (s *Schedule) Instance() *Instance { return s.inst }

// Algorithm returns the name of the algorithm that produced the schedule.
func (s *Schedule) Algorithm() string { return s.algorithm }

// Makespan returns the overall schedule length (latest finish time of any
// primary copy; duplicates never extend it because a duplicate exists only
// to serve a later task).
func (s *Schedule) Makespan() float64 { return s.makespan }

// Primary returns the primary (non-duplicate) assignment of task i.
func (s *Schedule) Primary(i dag.TaskID) Assignment { return s.byTask[i][0] }

// Copies returns all assignments of task i, primary first. The returned
// slice must not be modified.
func (s *Schedule) Copies(i dag.TaskID) []Assignment { return s.byTask[i] }

// OnProc returns the assignments on processor p sorted by start time. The
// returned slice must not be modified.
func (s *Schedule) OnProc(p int) []Assignment { return s.procs[p] }

// NumCopies returns the total number of task copies including duplicates.
func (s *Schedule) NumCopies() int {
	total := 0
	for _, t := range s.procs {
		total += len(t)
	}
	return total
}

// NumDuplicates returns how many duplicated copies the schedule contains.
func (s *Schedule) NumDuplicates() int { return s.NumCopies() - s.inst.N() }

// All returns every assignment ordered by (processor, start).
func (s *Schedule) All() []Assignment {
	var out []Assignment
	for _, t := range s.procs {
		out = append(out, t...)
	}
	return out
}

// String implements fmt.Stringer.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule(%s: makespan=%.4g, %d copies on %d procs)",
		s.algorithm, s.makespan, s.NumCopies(), len(s.procs))
}

// Renamed returns a copy of the schedule attributed to a different
// algorithm name, sharing all placement data. Wrappers that delegate to
// an inner algorithm (algo.CommAware) use it to keep their registry name
// on the result.
func (s *Schedule) Renamed(algorithm string) *Schedule {
	cp := *s
	cp.algorithm = algorithm
	return &cp
}

// Validate re-checks every structural and temporal constraint of the
// schedule against its instance. It is the single source of truth used by
// tests, the simulator and the CLI tools. A nil return means the schedule
// is feasible.
func (s *Schedule) Validate() error {
	const eps = 1e-6
	in := s.inst
	// Every task has exactly one primary copy.
	for i := 0; i < in.N(); i++ {
		copies := s.byTask[i]
		if len(copies) == 0 {
			return fmt.Errorf("sched: task %d has no assignment", i)
		}
		primaries := 0
		for _, c := range copies {
			if !c.Dup {
				primaries++
			}
		}
		if primaries != 1 {
			return fmt.Errorf("sched: task %d has %d primary copies, want 1", i, primaries)
		}
	}
	// Per-processor slots are disjoint, sane and match execution costs.
	for p, timeline := range s.procs {
		if p >= in.P() && len(timeline) > 0 {
			return fmt.Errorf("sched: task %d placed on processor %d of a %d-processor platform", timeline[0].Task, p, in.P())
		}
		prevFinish := math.Inf(-1)
		for _, a := range timeline {
			if a.Start < -eps {
				return fmt.Errorf("sched: task %d starts at negative time %g", a.Task, a.Start)
			}
			if a.Proc != p {
				return fmt.Errorf("sched: assignment of task %d filed under proc %d but says proc %d", a.Task, p, a.Proc)
			}
			want := in.Cost(a.Task, p)
			if math.Abs(a.Duration()-want) > eps {
				return fmt.Errorf("sched: task %d on P%d runs %g, cost is %g", a.Task, p, a.Duration(), want)
			}
			if a.Start < prevFinish-eps {
				return fmt.Errorf("sched: overlap on P%d at task %d (start %g < previous finish %g)", p, a.Task, a.Start, prevFinish)
			}
			if a.Finish > prevFinish {
				prevFinish = a.Finish
			}
		}
	}
	// Every copy individually respects data arrival from the best copy of
	// each predecessor.
	for i := 0; i < in.N(); i++ {
		for _, c := range s.byTask[i] {
			for _, pe := range in.G.Pred(dag.TaskID(i)) {
				arrival := math.Inf(1)
				for _, pc := range s.byTask[pe.To] {
					t := pc.Finish + in.CommCost(pc.Proc, c.Proc, pe.Data)
					if t < arrival {
						arrival = t
					}
				}
				if c.Start < arrival-eps {
					return fmt.Errorf("sched: task %d copy on P%d starts %g before data from task %d arrives at %g",
						i, c.Proc, c.Start, pe.To, arrival)
				}
			}
		}
	}
	return nil
}

// FromAssignments rebuilds a Schedule from raw placements — the inverse
// of All(), used to reload schedules archived by export.WriteScheduleJSON.
// Only basic structure is checked here (task indices, exactly one primary
// per task, sane time windows); temporal feasibility is Validate's job,
// and a placement on a processor the instance does not have is
// deliberately preserved so downstream consumers (Validate, sim.Run)
// report it as a typed error instead of panicking on a cost lookup.
func FromAssignments(in *Instance, algorithm string, as []Assignment) (*Schedule, error) {
	maxProc := in.P() - 1
	primaries := make([]int, in.N())
	for _, a := range as {
		if a.Task < 0 || int(a.Task) >= in.N() {
			return nil, fmt.Errorf("sched: assignment names task %d of a %d-task graph", a.Task, in.N())
		}
		if a.Proc < 0 {
			return nil, fmt.Errorf("sched: assignment of task %d names negative processor %d", a.Task, a.Proc)
		}
		if a.Proc > maxProc {
			maxProc = a.Proc
		}
		if math.IsNaN(a.Start) || math.IsNaN(a.Finish) || a.Finish < a.Start {
			return nil, fmt.Errorf("sched: assignment of task %d has invalid window [%g, %g]", a.Task, a.Start, a.Finish)
		}
		if !a.Dup {
			primaries[a.Task]++
		}
	}
	for t, n := range primaries {
		if n != 1 {
			return nil, fmt.Errorf("sched: task %d has %d primary copies, want 1", t, n)
		}
	}
	procs := make([][]Assignment, maxProc+1)
	for _, a := range as {
		procs[a.Proc] = append(procs[a.Proc], a)
	}
	return buildSchedule(in, algorithm, procs), nil
}

// buildSchedule assembles the immutable Schedule from a finished Plan.
func buildSchedule(in *Instance, algorithm string, procs [][]Assignment) *Schedule {
	s := &Schedule{
		inst:      in,
		algorithm: algorithm,
		procs:     make([][]Assignment, len(procs)),
		byTask:    make([][]Assignment, in.N()),
	}
	total := 0
	for p := range procs {
		s.procs[p] = append([]Assignment(nil), procs[p]...)
		sort.Slice(s.procs[p], func(a, b int) bool { return s.procs[p][a].Start < s.procs[p][b].Start })
		total += len(s.procs[p])
	}
	// Bucket the copies into one arena keyed by task instead of growing
	// n per-task slices: two counting passes and two allocations.
	counts := make([]int32, in.N()+1)
	for p := range s.procs {
		for _, a := range s.procs[p] {
			counts[a.Task+1]++
		}
	}
	for i := 0; i < in.N(); i++ {
		counts[i+1] += counts[i]
	}
	arena := make([]Assignment, total)
	fill := make([]int32, in.N())
	for p := range s.procs {
		for _, a := range s.procs[p] {
			k := counts[a.Task] + fill[a.Task]
			arena[k] = a
			fill[a.Task]++
		}
	}
	for i := range s.byTask {
		lo, hi := counts[i], counts[i+1]
		s.byTask[i] = arena[lo:hi:hi]
	}
	for i := range s.byTask {
		copies := s.byTask[i]
		sort.Slice(copies, func(a, b int) bool {
			if copies[a].Dup != copies[b].Dup {
				return !copies[a].Dup // primary first
			}
			return copies[a].Start < copies[b].Start
		})
		for _, c := range copies {
			if !c.Dup && c.Finish > s.makespan {
				s.makespan = c.Finish
			}
		}
	}
	return s
}
