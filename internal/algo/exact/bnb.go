// Package exact implements an optimal branch-and-bound scheduler for
// small instances. It enumerates (ready-task, processor) decisions depth-
// first with critical-path pruning and processor-symmetry breaking; every
// optimal makespan is reachable because any schedule can be normalized to
// a greedy timing of some linear extension of the DAG. It is the
// optimality reference for tests and the optimality-gap experiment (E12).
package exact

import (
	"errors"
	"math"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// DefaultNodeBudget bounds the number of search-tree nodes explored.
const DefaultNodeBudget = 5_000_000

// ErrBudget reports that the search budget was exhausted before
// optimality could be proven; the returned schedule is the best found.
var ErrBudget = errors.New("exact: node budget exhausted, result not proven optimal")

// BnB is the branch-and-bound optimal scheduler.
type BnB struct {
	// NodeBudget bounds explored search nodes (DefaultNodeBudget if 0).
	NodeBudget int
}

// Name implements algo.Algorithm.
func (BnB) Name() string { return "OPT" }

// Schedule implements algo.Algorithm. It returns ErrBudget alongside the
// best schedule found when the search budget is exhausted.
func (b BnB) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	budget := b.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	s := &search{
		in:       in,
		budget:   budget,
		minBL:    minBottomLevels(in),
		bestMS:   math.Inf(1),
		proc:     make([]int, in.N()),
		start:    make([]float64, in.N()),
		placed:   make([]bool, in.N()),
		procEnd:  make([]float64, in.P()),
		pending:  make([]int, in.N()),
		symmetry: fullySymmetric(in),
	}
	for i := 0; i < in.N(); i++ {
		s.pending[i] = in.G.InDegree(dag.TaskID(i))
	}
	// Seed the incumbent with a greedy EFT schedule so pruning bites
	// immediately.
	greedy := greedySchedule(in)
	s.adopt(greedy)
	s.dfs(0, 0, 0)

	pl := sched.NewPlan(in)
	for _, v := range in.G.TopoOrder() {
		pl.Place(v, s.bestProc[v], s.bestStart[v])
	}
	sch := pl.Finalize("OPT")
	if s.exhausted {
		return sch, ErrBudget
	}
	return sch, nil
}

// Makespan returns just the optimal makespan and whether it was proven.
func (b BnB) Makespan(in *sched.Instance) (float64, bool, error) {
	sch, err := b.Schedule(in)
	if errors.Is(err, ErrBudget) {
		return sch.Makespan(), false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return sch.Makespan(), true, nil
}

type search struct {
	in     *sched.Instance
	budget int
	nodes  int
	minBL  []float64

	proc    []int
	start   []float64
	placed  []bool
	procEnd []float64
	pending []int

	bestMS    float64
	bestProc  []int
	bestStart []float64

	symmetry  bool
	exhausted bool
}

// adopt installs a complete schedule as the incumbent.
func (s *search) adopt(sch *sched.Schedule) {
	if sch.Makespan() >= s.bestMS {
		return
	}
	s.bestMS = sch.Makespan()
	if s.bestProc == nil {
		s.bestProc = make([]int, s.in.N())
		s.bestStart = make([]float64, s.in.N())
	}
	for i := 0; i < s.in.N(); i++ {
		a := sch.Primary(dag.TaskID(i))
		s.bestProc[i] = a.Proc
		s.bestStart[i] = a.Start
	}
}

func (s *search) snapshot(makespan float64) {
	if makespan >= s.bestMS {
		return
	}
	s.bestMS = makespan
	copy(s.bestProc, s.proc)
	copy(s.bestStart, s.start)
}

// dfs branches on every (ready task, processor) pair. depth counts placed
// tasks; curMS is the makespan so far; usedProcs is the number of
// processors already carrying at least one task (symmetry breaking).
func (s *search) dfs(depth int, curMS float64, usedProcs int) {
	if s.exhausted {
		return
	}
	s.nodes++
	if s.nodes > s.budget {
		s.exhausted = true
		return
	}
	in := s.in
	n := in.N()
	if depth == n {
		s.snapshot(curMS)
		return
	}
	if s.lowerBound(curMS) >= s.bestMS-1e-12 {
		return
	}
	for v := 0; v < n; v++ {
		if s.placed[v] || s.pending[v] != 0 {
			continue
		}
		t := dag.TaskID(v)
		// On fully symmetric systems, trying more than one empty
		// processor only permutes labels.
		procLimit := in.P()
		if s.symmetry && usedProcs < in.P() {
			procLimit = usedProcs + 1
		}
		for p := 0; p < procLimit; p++ {
			ready := 0.0
			for _, pe := range in.G.Pred(t) {
				arr := s.start[pe.To] + in.Cost(pe.To, s.proc[pe.To]) + in.Comm(pe.To, t, s.proc[pe.To], p)
				if arr > ready {
					ready = arr
				}
			}
			st := math.Max(ready, s.procEnd[p])
			fin := st + in.Cost(t, p)
			mc, _ := in.MinCost(t)
			if fin+(s.minBL[v]-mc) >= s.bestMS-1e-12 {
				// The path below v alone already matches the incumbent.
				continue
			}
			prevEnd := s.procEnd[p]
			s.proc[v], s.start[v], s.placed[v], s.procEnd[p] = p, st, true, fin
			for _, a := range in.G.Succ(t) {
				s.pending[a.To]--
			}
			nu := usedProcs
			if s.symmetry && p == usedProcs {
				// Symmetric processors fill in label order, so p equal to
				// usedProcs means a previously-empty processor was opened.
				nu = usedProcs + 1
			}
			s.dfs(depth+1, math.Max(curMS, fin), nu)
			for _, a := range in.G.Succ(t) {
				s.pending[a.To]++
			}
			s.placed[v], s.procEnd[p] = false, prevEnd
		}
	}
}

// lowerBound returns a valid lower bound on any completion of the current
// partial schedule: for every unscheduled task, the earliest it could
// possibly start (data from scheduled predecessors, zero communication)
// plus its minimum-cost bottom level.
func (s *search) lowerBound(curMS float64) float64 {
	in := s.in
	lb := curMS
	for v := 0; v < in.N(); v++ {
		if s.placed[v] {
			continue
		}
		est := 0.0
		for _, pe := range in.G.Pred(dag.TaskID(v)) {
			if s.placed[pe.To] {
				if f := s.start[pe.To] + in.Cost(pe.To, s.proc[pe.To]); f > est {
					est = f
				}
			}
		}
		if b := est + s.minBL[v]; b > lb {
			lb = b
		}
	}
	return lb
}

// minBottomLevels computes, per task, the longest path to an exit summing
// minimum execution costs and ignoring communication — a valid lower bound
// on the remaining time once the task starts.
func minBottomLevels(in *sched.Instance) []float64 {
	bl := make([]float64, in.N())
	for _, v := range in.G.ReverseTopoOrder() {
		best := 0.0
		for _, a := range in.G.Succ(v) {
			if bl[a.To] > best {
				best = bl[a.To]
			}
		}
		mc, _ := in.MinCost(v)
		bl[v] = mc + best
	}
	return bl
}

// fullySymmetric reports whether all processors are interchangeable: every
// task costs the same everywhere and all links are uniform.
func fullySymmetric(in *sched.Instance) bool {
	for i := 0; i < in.N(); i++ {
		for p := 1; p < in.P(); p++ {
			if in.W[i][p] != in.W[i][0] {
				return false
			}
		}
	}
	// Uniform links: compare the unit-data cost of every pair.
	if in.P() < 2 {
		return true
	}
	ref := in.Sys.CommCost(0, 1, 1)
	ref0 := in.Sys.CommCost(0, 1, 0)
	for p := 0; p < in.P(); p++ {
		for q := 0; q < in.P(); q++ {
			if p == q {
				continue
			}
			if in.Sys.CommCost(p, q, 1) != ref || in.Sys.CommCost(p, q, 0) != ref0 {
				return false
			}
		}
	}
	return true
}

// greedySchedule seeds the incumbent with insertion-based EFT scheduling
// in topological order.
func greedySchedule(in *sched.Instance) *sched.Schedule {
	pl := sched.NewPlan(in)
	for _, v := range in.G.TopoOrder() {
		p, st, _ := pl.BestEFT(v, true)
		pl.Place(v, p, st)
	}
	return pl.Finalize("greedy-seed")
}
