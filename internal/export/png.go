package export

import (
	"image"
	"image/color"
	"image/png"
	"io"

	"dagsched/internal/sched"
)

// pngPalette mirrors svgPalette as RGBA.
var pngPalette = []color.RGBA{
	{0x4e, 0x79, 0xa7, 0xff}, {0xf2, 0x8e, 0x2b, 0xff}, {0xe1, 0x57, 0x59, 0xff},
	{0x76, 0xb7, 0xb2, 0xff}, {0x59, 0xa1, 0x4f, 0xff}, {0xed, 0xc9, 0x48, 0xff},
	{0xb0, 0x7a, 0xa1, 0xff}, {0xff, 0x9d, 0xa7, 0xff}, {0x9c, 0x75, 0x5f, 0xff},
	{0xba, 0xb0, 0xac, 0xff},
}

// WriteGanttPNG rasterizes the schedule as a PNG Gantt chart: one lane
// per processor, one rectangle per task copy (duplicates blended towards
// white), a light lane background and a dark frame. Pure stdlib.
func WriteGanttPNG(w io.Writer, s *sched.Schedule, width int) error {
	const (
		laneH   = 28
		laneGap = 6
		pad     = 10
	)
	if width < 100 {
		width = 640
	}
	in := s.Instance()
	ms := s.Makespan()
	if ms <= 0 {
		ms = 1
	}
	chartW := width - 2*pad
	height := 2*pad + in.P()*(laneH+laneGap) - laneGap
	img := image.NewRGBA(image.Rect(0, 0, width, height))

	fill := func(x0, y0, x1, y1 int, c color.RGBA) {
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > width {
			x1 = width
		}
		if y1 > height {
			y1 = height
		}
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				img.SetRGBA(x, y, c)
			}
		}
	}
	// Background.
	fill(0, 0, width, height, color.RGBA{0xff, 0xff, 0xff, 0xff})
	scale := float64(chartW) / ms
	for p := 0; p < in.P(); p++ {
		y := pad + p*(laneH+laneGap)
		fill(pad, y, pad+chartW, y+laneH, color.RGBA{0xf2, 0xf2, 0xf2, 0xff})
		for _, a := range s.OnProc(p) {
			x0 := pad + int(a.Start*scale)
			x1 := pad + int(a.Finish*scale)
			if x1 <= x0 {
				x1 = x0 + 1
			}
			c := pngPalette[int(a.Task)%len(pngPalette)]
			if a.Dup {
				c = blendWhite(c, 0.55)
			}
			fill(x0, y+2, x1, y+laneH-2, c)
			// 1-px darker left edge so adjacent tasks stay separable.
			edge := color.RGBA{c.R / 2, c.G / 2, c.B / 2, 0xff}
			fill(x0, y+2, x0+1, y+laneH-2, edge)
		}
	}
	return png.Encode(w, img)
}

// blendWhite mixes c towards white by t ∈ [0,1].
func blendWhite(c color.RGBA, t float64) color.RGBA {
	mix := func(v uint8) uint8 { return uint8(float64(v) + (255-float64(v))*t) }
	return color.RGBA{mix(c.R), mix(c.G), mix(c.B), 0xff}
}
