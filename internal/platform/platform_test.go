package platform

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no procs", Config{}},
		{"zero speed", Config{Speeds: []float64{1, 0}}},
		{"negative speed", Config{Speeds: []float64{-1}}},
		{"negative latency", Config{Speeds: []float64{1}, Latency: -1}},
		{"negative rate", Config{Speeds: []float64{1}, TimePerUnit: -1}},
		{"bad matrix rows", Config{Speeds: []float64{1, 1}, StartupMatrix: [][]float64{{0, 1}}}},
		{"bad matrix cols", Config{Speeds: []float64{1, 1}, InvRateMatrix: [][]float64{{0}, {0}}}},
		{"negative matrix entry", Config{Speeds: []float64{1, 1}, StartupMatrix: [][]float64{{0, -1}, {1, 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("New succeeded, want error")
			}
		})
	}
}

func TestHomogeneous(t *testing.T) {
	s := Homogeneous(4, 0.5, 2)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.IsHomogeneous() {
		t.Fatal("not homogeneous")
	}
	if got := s.CommCost(0, 0, 10); got != 0 {
		t.Fatalf("local comm = %g, want 0", got)
	}
	if got := s.CommCost(0, 1, 10); got != 0.5+20 {
		t.Fatalf("CommCost = %g, want 20.5", got)
	}
	if got := s.MeanCommCost(10); math.Abs(got-20.5) > 1e-12 {
		t.Fatalf("MeanCommCost = %g, want 20.5", got)
	}
	if s.Proc(2).Name != "P2" {
		t.Fatalf("name = %q", s.Proc(2).Name)
	}
}

func TestSingleProcessorComm(t *testing.T) {
	s := Homogeneous(1, 1, 1)
	if got := s.MeanCommCost(100); got != 0 {
		t.Fatalf("MeanCommCost single proc = %g, want 0", got)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	s := MustNew(Config{Speeds: []float64{1, 2, 4}})
	if s.IsHomogeneous() {
		t.Fatal("should be heterogeneous")
	}
	if got := s.Speed(2); got != 4 {
		t.Fatalf("Speed(2) = %g", got)
	}
	procs := s.Procs()
	procs[0].Speed = 99
	if s.Speed(0) == 99 {
		t.Fatal("Procs leaked internal storage")
	}
}

func TestMatrixOverride(t *testing.T) {
	s := MustNew(Config{
		Speeds:        []float64{1, 1},
		Latency:       9, // overridden below
		StartupMatrix: [][]float64{{5, 1}, {2, 5}},
		InvRateMatrix: [][]float64{{5, 3}, {4, 5}},
	})
	// Diagonal forced to zero regardless of override values.
	if got := s.CommCost(0, 0, 7); got != 0 {
		t.Fatalf("diagonal comm = %g", got)
	}
	if got := s.CommCost(0, 1, 2); got != 1+2*3 {
		t.Fatalf("CommCost(0,1) = %g, want 7", got)
	}
	if got := s.CommCost(1, 0, 2); got != 2+2*4 {
		t.Fatalf("CommCost(1,0) = %g, want 10", got)
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := Generate(GenConfig{Procs: 8, SpeedHeterogeneity: 1.0, Latency: 1, TimePerUnit: 1}, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	for p := 0; p < s.Len(); p++ {
		sp := s.Speed(p)
		if sp < 0.5-1e-12 || sp > 1.5+1e-12 {
			t.Fatalf("speed %g outside [0.5,1.5]", sp)
		}
	}
	// Deterministic under the same seed.
	s2, _ := Generate(GenConfig{Procs: 8, SpeedHeterogeneity: 1.0, Latency: 1, TimePerUnit: 1}, rand.New(rand.NewSource(3)))
	for p := 0; p < s.Len(); p++ {
		if s.Speed(p) != s2.Speed(p) {
			t.Fatal("Generate not deterministic for fixed seed")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(GenConfig{Procs: 0}, rng); err == nil {
		t.Fatal("want error for 0 procs")
	}
	if _, err := Generate(GenConfig{Procs: 2, SpeedHeterogeneity: 2.5}, rng); err == nil {
		t.Fatal("want error for heterogeneity >= 2")
	}
}

func TestString(t *testing.T) {
	if got := Homogeneous(2, 0, 1).String(); got != "system(2 homogeneous processors)" {
		t.Fatalf("String = %q", got)
	}
	if got := MustNew(Config{Speeds: []float64{1, 3}}).String(); got != "system(2 heterogeneous processors)" {
		t.Fatalf("String = %q", got)
	}
}
