package experiment

import (
	"fmt"
	"math/rand"

	"dagsched/internal/algo/suite"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// appGen wraps a fixed application graph into a genFunc: the structure is
// fixed, only the β-drawn cost matrix varies between repetitions.
func appGen(g *dag.Graph, procs int, ccr, beta float64) genFunc {
	return func(rng *rand.Rand) (*sched.Instance, error) {
		return workload.MakeInstance(g, workload.HetConfig{Procs: procs, CCR: ccr, Beta: beta}, rng)
	}
}

// E6 — Gaussian elimination: SLR vs matrix size and vs processor count.
func E6() Experiment {
	return Experiment{ID: "E6", Title: "Gaussian elimination (SLR vs matrix size, vs processors)", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Heterogeneous()
		reps := cfg.reps(25)
		sizes := []int{5, 10, 15, 20, 25}
		procsSweep := []int{2, 4, 8, 16}
		if cfg.Quick {
			sizes = []int{5, 10}
			procsSweep = []int{2, 8}
		}
		t1 := &Table{ID: "E6a", Title: "Gaussian elimination: average SLR vs matrix size (P=8)", Columns: append([]string{"m"}, names(algs)...)}
		for i, m := range sizes {
			g, err := workload.GaussianElimination(m)
			if err != nil {
				return nil, err
			}
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+61, appGen(g, 8, 1, 1), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%d", m), accs))
		}
		t1.Notes = fmt.Sprintf("Mean SLR over %d cost-matrix draws per point, CCR=1, β=1.", reps)
		t2 := &Table{ID: "E6b", Title: "Gaussian elimination: average SLR vs processor count (m=15)", Columns: append([]string{"P"}, names(algs)...)}
		g15, err := workload.GaussianElimination(15)
		if err != nil {
			return nil, err
		}
		for i, p := range procsSweep {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+62, appGen(g15, p, 1, 1), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t2.Rows = append(t2.Rows, fmtRow(fmt.Sprintf("%d", p), accs))
		}
		return []*Table{t1, t2}, nil
	}}
}

// E7 — FFT: SLR vs input points and vs CCR.
func E7() Experiment {
	return Experiment{ID: "E7", Title: "FFT (SLR vs points, vs CCR)", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Heterogeneous()
		reps := cfg.reps(25)
		points := []int{8, 16, 32, 64}
		ccrs := []float64{0.1, 0.5, 1, 5}
		if cfg.Quick {
			points = []int{8, 16}
			ccrs = []float64{0.1, 5}
		}
		t1 := &Table{ID: "E7a", Title: "FFT: average SLR vs input points (P=8)", Columns: append([]string{"points"}, names(algs)...)}
		for i, n := range points {
			g, err := workload.FFT(n)
			if err != nil {
				return nil, err
			}
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+71, appGen(g, 8, 1, 1), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%d", n), accs))
		}
		t2 := &Table{ID: "E7b", Title: "FFT: average SLR vs CCR (32 points, P=8)", Columns: append([]string{"CCR"}, names(algs)...)}
		g32, err := workload.FFT(32)
		if err != nil {
			return nil, err
		}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+72, appGen(g32, 8, c, 1), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t2.Rows = append(t2.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		return []*Table{t1, t2}, nil
	}}
}

// E8 — Laplace wavefront: SLR vs grid size.
func E8() Experiment {
	return Experiment{ID: "E8", Title: "Laplace (SLR vs grid size)", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Heterogeneous()
		reps := cfg.reps(25)
		grids := []int{4, 6, 8, 10, 12}
		if cfg.Quick {
			grids = []int{4, 8}
		}
		t := &Table{ID: "E8", Title: "Laplace: average SLR vs grid size (P=8)", Columns: append([]string{"grid"}, names(algs)...)}
		for i, gsz := range grids {
			g, err := workload.Laplace(gsz)
			if err != nil {
				return nil, err
			}
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+81, appGen(g, 8, 1, 1), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%d", gsz), accs))
		}
		t.Notes = fmt.Sprintf("Mean SLR over %d cost-matrix draws per point, CCR=1, β=1.", reps)
		return []*Table{t}, nil
	}}
}
