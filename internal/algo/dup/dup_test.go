package dup

import (
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestNames(t *testing.T) {
	if (DSH{}).Name() != "DSH" || (BTDH{}).Name() != "BTDH" {
		t.Fatal("bad names")
	}
}

func TestValidOnBattery(t *testing.T) {
	algs := []algo.Algorithm{DSH{}, BTDH{}}
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 202}, func(trial int, in *sched.Instance) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if s.Makespan() < in.CPMin()-1e-6 {
				t.Fatalf("trial %d %s: below CP bound", trial, a.Name())
			}
		}
	})
}

func TestValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(4, 66) {
		for _, a := range []algo.Algorithm{DSH{}, BTDH{}} {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
		}
	}
}

// fanOutInstance: one entry broadcasting big data to many children —
// the textbook case where duplication wins.
func fanOutInstance(t *testing.T) *sched.Instance {
	t.Helper()
	b := dag.NewBuilder("fan")
	root := b.AddTask("root", 1)
	for i := 0; i < 6; i++ {
		c := b.AddTask("", 5)
		b.AddEdge(root, c, 20)
	}
	return sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
}

func TestDuplicationBeatsHEFTOnFanOut(t *testing.T) {
	in := fanOutInstance(t)
	heft, _ := listsched.HEFT{}.Schedule(in)
	dsh, err := DSH{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsh.Validate(); err != nil {
		t.Fatal(err)
	}
	// Without duplication every remote child pays 20 for the broadcast:
	// best non-duplicating makespan is 1 + 20 + 5 = 26 on remote procs or
	// serial 1+6*5 = 31 locally (mixtures ≥ 11). With duplication the root
	// is copied to every processor: makespan 1 + 2*5 = 11.
	if dsh.Makespan() > heft.Makespan() {
		t.Fatalf("DSH %g worse than HEFT %g on fan-out", dsh.Makespan(), heft.Makespan())
	}
	if dsh.Makespan() != 11 {
		t.Fatalf("DSH makespan = %g, want 11 (duplicated root)", dsh.Makespan())
	}
	if dsh.NumDuplicates() != 2 {
		t.Fatalf("NumDuplicates = %d, want 2 (one per extra processor)", dsh.NumDuplicates())
	}
}

func TestBTDHAtLeastAsGoodAsDSHUsually(t *testing.T) {
	// BTDH explores a superset of DSH's duplication space per placement,
	// but greedy interactions mean it is not a universal winner; check a
	// weaker sanity property: on the fan-out instance both reach 11.
	in := fanOutInstance(t)
	dsh, _ := DSH{}.Schedule(in)
	btdh, err := BTDH{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if btdh.Makespan() != dsh.Makespan() {
		t.Fatalf("BTDH %g vs DSH %g on fan-out", btdh.Makespan(), dsh.Makespan())
	}
}

func TestDuplicatesNeverExtendMakespan(t *testing.T) {
	// The makespan is defined over primary copies; validation ensures
	// duplicates never conflict. Additionally, every duplicate must finish
	// by the start of some task on its processor that consumes it — weaker
	// check: duplicates never start after the makespan.
	testfix.Battery(testfix.BatteryConfig{Trials: 15, Seed: 33}, func(trial int, in *sched.Instance) {
		s, err := BTDH{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range s.All() {
			if a.Dup && a.Start > s.Makespan() {
				t.Fatalf("trial %d: duplicate of %d starts at %g after makespan %g", trial, a.Task, a.Start, s.Makespan())
			}
		}
	})
}
