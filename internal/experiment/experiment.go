// Package experiment defines the reproduction suite E1–E23: one
// experiment per table/figure of the evaluation, each regenerating its
// rows from scratch with deterministic seeding. The same definitions back
// the root-level benchmarks and the schedbench CLI.
package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"dagsched/internal/algo"
	"dagsched/internal/metrics"
	"dagsched/internal/sched"
)

// Config controls how much work an experiment run does.
type Config struct {
	// Reps overrides the number of random DAGs per design point (0 keeps
	// the experiment's default).
	Reps int
	// Seed offsets all random generation; the default 0 is deterministic.
	Seed int64
	// Quick shrinks sweeps for tests and benchmarks (roughly 5× faster).
	Quick bool
	// Workers bounds the repetition worker pool (0 = GOMAXPROCS).
	// Parallelism never changes results: every repetition has its own
	// deterministic random stream.
	Workers int
	// FaultRates overrides the crash-rate sweep of the robustness
	// experiment E21 (empty keeps its default), and FaultSeed offsets
	// its fault-plan sampling.
	FaultRates []float64
	FaultSeed  int64
}

func (c Config) reps(def int) int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Quick {
		if def/5 < 3 {
			return 3
		}
		return def / 5
	}
	return def
}

// Table is one rendered result table (or figure data series).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Experiment regenerates one table/figure of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// All returns the full suite in id order.
func All() []Experiment {
	return []Experiment{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13(),
		E14(), E15(), E16(), E17(), E18(), E19(), E20(), E21(), E22(), E23(),
	}
}

// ByID returns the experiment with the given id (e.g. "E3").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func RenderMarkdown(w io.Writer, t *Table) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// genFunc draws one instance.
type genFunc func(rng *rand.Rand) (*sched.Instance, error)

// meanOver runs every algorithm on reps instances drawn by gen — one
// deterministic random stream per repetition, evaluated on a worker pool
// — and returns, per algorithm (order preserved), the accumulator of
// measure(result).
func meanOver(algs []algo.Algorithm, reps int, seed int64, gen genFunc,
	measure func(metrics.Result) float64, workers int) ([]*metrics.Accumulator, error) {
	rows, err := parallelReps(reps, workers, seed, func(rep int, rng *rand.Rand) ([]float64, error) {
		in, err := gen(rng)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(algs))
		for i, a := range algs {
			res, err := metrics.Evaluate(a, in)
			if err != nil {
				return nil, err
			}
			row[i] = measure(res)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	accs := make([]*metrics.Accumulator, len(algs))
	for i := range accs {
		accs[i] = &metrics.Accumulator{}
	}
	for _, row := range rows {
		for i, v := range row {
			accs[i].Add(v)
		}
	}
	return accs, nil
}

// slr extracts the SLR measure.
func slr(r metrics.Result) float64 { return r.SLR }

// speedup extracts the speedup measure.
func speedup(r metrics.Result) float64 { return r.Speedup }

// names returns the display names of the algorithms.
func names(algs []algo.Algorithm) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = a.Name()
	}
	return out
}

// fmtMean renders an accumulator's mean for a table cell. Mean (like
// Min/Max) returns 0 on an empty stream — indistinguishable from a true
// 0 sample — so a cell that accumulated nothing renders as "—" instead
// of a misleading 0.000.
func fmtMean(a *metrics.Accumulator) string {
	if a.N() == 0 {
		return "—"
	}
	return fmt.Sprintf("%.3f", a.Mean())
}

// fmtRow renders a sweep label plus one mean per accumulator.
func fmtRow(label string, accs []*metrics.Accumulator) []string {
	row := []string{label}
	for _, a := range accs {
		row = append(row, fmtMean(a))
	}
	return row
}
