// Package service implements schedd, a long-running HTTP JSON service
// that schedules task graphs on demand: POST a problem instance (or a
// bare graph) plus an algorithm name, get the schedule, its measures and
// an optional slack/idle analysis back.
//
// The serving layer provides the robustness trimmings a scheduling
// endpoint needs under adversarial traffic: a bounded worker pool behind
// a bounded request queue (overload answers 503 instead of piling up
// goroutines), a per-request deadline plumbed as context cancellation
// into the scheduling hot loops (a timed-out request stops burning CPU),
// an LRU result cache keyed by a canonical content hash of (instance,
// algorithm, options), request/latency/queue/cache metrics at /metrics,
// and graceful shutdown that drains in-flight work.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/resched"
	"dagsched/internal/algo/suite"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
)

// Options configures a Server. The zero value serves on 127.0.0.1:8080
// with GOMAXPROCS workers, a 64-deep queue, a 256-entry cache, a 30s
// default deadline and the full algorithm registry.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:8080").
	Addr string
	// Workers bounds concurrent scheduling runs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker; a full queue
	// answers 503 (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries; negative
	// disables caching (default 256).
	CacheSize int
	// DefaultTimeout applies to requests without timeoutMs (default 30s);
	// MaxTimeout clamps requested deadlines (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxBatchItems bounds items per /v1/schedule/batch request
	// (default 256).
	MaxBatchItems int
	// ShedWatermark is the queue depth at which low-priority requests
	// are shed with 503 instead of queued, keeping headroom for normal
	// traffic under overload. Zero defaults to 3/4 of QueueDepth;
	// negative disables shedding.
	ShedWatermark int
	// SelfURL is this node's advertised base URL on the peer ring,
	// e.g. "http://10.0.0.1:8080"; required when Peers names two or
	// more nodes, and must appear in Peers.
	SelfURL string
	// Peers lists the base URLs of every ring member, SelfURL
	// included. Two or more distinct peers shard the canonical
	// instance-hash space across the ring (requests are forwarded to
	// their owner); fewer leave the node standalone. In-process tests
	// can instead call Server.ConfigurePeers after Start, once
	// ephemeral addresses are known.
	Peers []string
	// ProbeTimeout bounds one peer-cache probe and one replica push
	// (default 500ms).
	ProbeTimeout time.Duration
	// JoinURL, when set, points a fresh node at any member of a running
	// ring: instead of a static Peers list the node announces itself to
	// that member at startup (retrying until it answers) and adopts the
	// cluster view it returns. Requires SelfURL.
	JoinURL string
	// Replication is the number of ring successors each cache entry is
	// replicated to beyond its owner (default 2): a computed result is
	// pushed to the key's successor nodes so an owner's death does not
	// cold-start its keyspace. Negative disables replication.
	Replication int
	// HeartbeatInterval paces the membership heartbeat/failure-detector
	// loop (default 500ms).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a peer may miss heartbeats before it is
	// marked suspect; after twice this it is marked dead and removed
	// from the ring (default 2s).
	SuspectAfter time.Duration
	// Resolver maps an algorithm name to an implementation (default
	// suite.ByName — the full registry including the search lineup).
	Resolver func(name string) (algo.Algorithm, error)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 256
	}
	if o.ShedWatermark == 0 {
		o.ShedWatermark = o.QueueDepth * 3 / 4
		if o.ShedWatermark < 1 {
			o.ShedWatermark = 1
		}
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.Replication == 0 {
		o.Replication = 2
	}
	if o.Replication < 0 {
		o.Replication = 0
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2 * time.Second
	}
	if o.Resolver == nil {
		o.Resolver = suite.ByName
	}
	return o
}

// job is one scheduling request queued for the worker pool.
type job struct {
	ctx     context.Context
	alg     algo.Algorithm
	in      *sched.Instance
	analyze bool
	faults  *FaultsRequest
	key     string
	reqID   string
	// exec, when set, replaces the standard scheduling run: the worker
	// executes it instead of s.run. Streaming sessions use it to occupy
	// one pool slot for their whole lifetime, so event streams compete
	// with one-shot requests for the same bounded compute.
	exec func() jobResult
	// done receives exactly one result; buffered so a worker never
	// blocks on a handler that already gave up on its deadline.
	done chan jobResult
}

type jobResult struct {
	resp *ScheduleResponse
	err  error
}

// Server is a schedd instance. Create with New, run with Start (or the
// Serve convenience wrapper), stop with Shutdown.
type Server struct {
	opts     Options
	jobs     chan *job
	quit     chan struct{} // closed by Shutdown; workers exit on it
	quitOnce sync.Once
	workers  sync.WaitGroup
	httpSrv  *http.Server
	ln       net.Listener
	cache    *lruCache
	flights  *flightGroup
	shard    shardPtr // nil load = sharding off
	member   *membership
	repl     *replicator
	// peerBrk and peerClient outlive ring swaps: circuit state about a
	// flaky peer must survive a membership epoch change, and pooled
	// connections have no reason to be torn down by a reshard.
	peerBrk    *breakerSet
	peerClient *http.Client
	met        *serverMetrics
	reqSeq     atomic.Uint64
}

// reqIDKey carries the request ID through the request context so worker
// panics can be correlated with the HTTP request that queued them.
type reqIDKey struct{}

func (s *Server) nextReqID() string {
	return fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
}

// New returns an unstarted server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		jobs:       make(chan *job, opts.QueueDepth),
		quit:       make(chan struct{}),
		cache:      newLRUCache(opts.CacheSize),
		flights:    newFlightGroup(),
		peerBrk:    &breakerSet{},
		peerClient: &http.Client{},
		met:        newServerMetrics(),
	}
	s.member = newMembership(s)
	s.repl = newReplicator(s)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("/v1/schedule/stream", s.handleStream)
	mux.HandleFunc("/v1/cache/", s.handleCache)
	mux.HandleFunc("/v1/ring", s.handleRing)
	mux.HandleFunc("/v1/ring/join", s.handleRingJoin)
	mux.HandleFunc("/v1/ring/leave", s.handleRingLeave)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.httpSrv = &http.Server{Handler: s.instrument(mux)}
	return s
}

// Start listens on opts.Addr, launches the worker pool and serves in the
// background. It returns the bound address (useful with port 0).
func (s *Server) Start() (string, error) {
	if s.opts.JoinURL != "" {
		if len(s.opts.Peers) > 0 {
			return "", fmt.Errorf("service: JoinURL and Peers are mutually exclusive")
		}
		if err := s.ConfigureJoin(s.opts.SelfURL, s.opts.JoinURL); err != nil {
			return "", err
		}
	} else if err := s.ConfigurePeers(s.opts.SelfURL, s.opts.Peers); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", s.opts.Addr, err)
	}
	s.ln = ln
	for w := 0; w < s.opts.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	go func() {
		// ErrServerClosed is the normal Shutdown outcome.
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Leave withdraws this node from the ring gracefully: announce the
// leave to every member (so they reshard immediately instead of
// waiting out the failure detector), then hand the hottest cache
// entries to their owners under the post-leave ring — the nodes that
// inherit our arcs. Best-effort and bounded by ctx; a crash — i.e.
// Shutdown without Leave — is exactly the path the detector covers.
// Safe to call more than once.
func (s *Server) Leave(ctx context.Context) {
	sh := s.shard.Load()
	s.member.leave() // announces to peers; marks left so heartbeats stop
	if sh == nil {
		return
	}
	// The post-leave ring: everyone but us. Entries we hand off go to
	// the node that owns them now that our arcs are redistributed.
	after := make([]string, 0, len(sh.peers))
	for _, p := range sh.peers {
		if p != sh.self {
			after = append(after, p)
		}
	}
	s.repl.handoffOnLeave(ctx, &shardState{
		self:         sh.self,
		ring:         newRing(after),
		peers:        after,
		brk:          sh.brk,
		client:       sh.client,
		probeTimeout: sh.probeTimeout,
	})
}

// Shutdown drains the server gracefully: the listener closes, in-flight
// requests (and the queued work they wait on) run to completion bounded
// by ctx, then the worker pool exits. Safe to call more than once.
// Shutdown alone is a crash as far as the ring is concerned — peers
// detect the death and reshard; call Leave first for a clean departure.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	// All handlers have returned (or ctx expired); tell the pool to
	// exit. The jobs channel is never closed, so a straggling handler
	// that lost the drain race can still enqueue safely (nobody will
	// serve it, and its deadline unblocks it).
	s.quitOnce.Do(func() { close(s.quit) })
	s.workers.Wait()
	return err
}

// Serve runs a server until ctx is canceled, then shuts down gracefully
// within drain. It is the main loop of cmd/schedd.
func Serve(ctx context.Context, opts Options, drain time.Duration) error {
	s := New(opts)
	if _, err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	if drain <= 0 {
		drain = 10 * time.Second
	}
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	s.Leave(dctx) // announce departure + hand off hot entries, then drain
	return s.Shutdown(dctx)
}

// worker drains the job queue until Shutdown. A job whose context
// already expired while queued is answered without running the
// algorithm.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.jobs:
			if err := j.ctx.Err(); err != nil {
				j.done <- jobResult{err: err}
				continue
			}
			if j.exec != nil {
				j.done <- j.exec()
				continue
			}
			j.done <- s.run(j)
		case <-s.quit:
			return
		}
	}
}

// run executes one scheduling job under its context. A panicking
// algorithm (the Resolver accepts third-party implementations) is
// converted to an error result so the worker — and with it the whole
// pool — survives; the handler turns it into a 500.
func (s *Server) run(j *job) (res jobResult) {
	defer func() {
		if p := recover(); p != nil {
			s.met.ObservePanic()
			log.Printf("service: panic in scheduling worker (request %s, algorithm %s): %v\n%s",
				j.reqID, j.alg.Name(), p, debug.Stack())
			res = jobResult{err: fmt.Errorf("internal error: scheduler panic (request %s)", j.reqID)}
		}
	}()
	start := time.Now()
	sch, err := algo.ScheduleContext(j.ctx, j.alg, j.in)
	elapsed := time.Since(start)
	if err != nil {
		return jobResult{err: err}
	}
	if err := sch.Validate(); err != nil {
		return jobResult{err: fmt.Errorf("%s produced an invalid schedule: %w", j.alg.Name(), err)}
	}
	resp := &ScheduleResponse{
		Algorithm:  sch.Algorithm(),
		Makespan:   sch.Makespan(),
		SLR:        metrics.SLR(sch),
		Speedup:    metrics.Speedup(sch),
		Efficiency: metrics.Efficiency(sch),
		Duplicates: sch.NumDuplicates(),
		CommModel:  j.in.CommKind(),
		RuntimeMs:  float64(elapsed.Microseconds()) / 1000,
	}
	in := sch.Instance()
	for p := 0; p < in.P(); p++ {
		for _, a := range sch.OnProc(p) {
			resp.Assignments = append(resp.Assignments, AssignmentJSON{
				Task:   int(a.Task),
				Name:   in.G.Task(a.Task).Name,
				Proc:   a.Proc,
				Start:  a.Start,
				Finish: a.Finish,
				Dup:    a.Dup,
			})
		}
	}
	if j.analyze {
		an := sched.Analyze(sch)
		aj := &AnalysisJSON{
			Slack:     an.Slack,
			IdleTime:  an.IdleTime,
			IdleShare: an.IdleShare,
			Critical:  make([]int, 0, len(an.Critical)),
		}
		for _, t := range an.Critical {
			aj.Critical = append(aj.Critical, int(t))
		}
		resp.Analysis = aj
	}
	if j.faults != nil {
		rj, err := robustness(sch, j.faults)
		if err != nil {
			return jobResult{err: fmt.Errorf("robustness evaluation: %w", err)}
		}
		resp.Robustness = rj
	}
	s.met.ObserveRun(resp.Algorithm, resp.Makespan, resp.RuntimeMs)
	s.cache.Put(j.key, resp)
	s.replicate(j.key, resp)
	return jobResult{resp: resp}
}

// robustness evaluates the Faults block of a request against a computed
// schedule. The request was validated by parseRequest, so policy names
// and plan shapes resolve here without re-checking.
func robustness(sch *sched.Schedule, fr *FaultsRequest) (*RobustnessJSON, error) {
	pol := resched.Default()
	if fr.Policy != "" {
		var err error
		if pol, err = resched.ByName(fr.Policy); err != nil {
			return nil, err
		}
	}
	nominal := sch.Makespan()
	rj := &RobustnessJSON{Policy: pol.Name(), Nominal: nominal}
	if fr.Plan != nil {
		rep, err := sim.Run(sch, sim.Config{Faults: fr.Plan})
		if err != nil {
			return nil, err
		}
		rj.Achieved = rep.Makespan
		if nominal > 0 {
			rj.Stretch = rep.Makespan / nominal
		}
		if frep := rep.Faults; frep != nil {
			rj.Stranded = frep.Stranded
			rj.Killed = frep.Killed
			rj.Restarts = frep.Restarts
		}
		if len(resched.CrashEvents(fr.Plan)) > 0 {
			r, out, err := resched.React(sch, fr.Plan, pol)
			if err != nil {
				return nil, err
			}
			rp := &RepairedJSON{
				Chosen:   out.Chosen,
				Makespan: r.Makespan(),
				Frozen:   out.Frozen,
				Lost:     out.Lost,
				Remapped: out.Remapped,
				Delayed:  out.Delayed,
			}
			if nominal > 0 {
				rp.Stretch = r.Makespan() / nominal
			}
			rj.Repaired = rp
		}
	}
	if fr.Rate > 0 || fr.Samples > 0 {
		rb, err := resched.EvalRobustness(sch, resched.RobustnessConfig{
			Samples: fr.Samples, Rate: fr.Rate, Seed: fr.Seed, Policy: pol,
		})
		if err != nil {
			return nil, err
		}
		rj.Samples = rb.Samples
		cr := rb.CompletionRate
		rj.CompletionRate = &cr
		rj.MeanDegradation = rb.MeanDegradation
		rj.MaxDegradation = rb.MaxDegradation
		rj.MeanSlack = rb.MeanSlack
	}
	return rj, nil
}

// statusRecorder captures the response code for request metrics and
// whether anything was written yet (a panic after the first byte cannot
// be turned into a clean 500 anymore).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers reach the connection's flusher and deadlines
// through the recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps the mux with request IDs, request counting, latency
// recording and panic containment: a panicking handler answers 500 with
// its request ID (when the response has not started) instead of tearing
// down the connection, and the panic is logged with its stack and
// counted in /metrics.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.nextReqID()
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.met.ObservePanic()
				log.Printf("service: panic serving %s %s (request %s): %v\n%s",
					r.Method, r.URL.Path, id, p, debug.Stack())
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, "internal error (request %s)", id)
				}
				s.met.ObserveRequest(http.StatusInternalServerError, time.Since(start))
				return
			}
			s.met.ObserveRequest(rec.status, time.Since(start))
		}()
		next.ServeHTTP(rec, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"algorithms": suite.Names(),
		"commModels": platform.ModelKinds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.Stats()
	var self string
	var peers []string
	if sh := s.shard.Load(); sh != nil {
		self, peers = sh.self, sh.peers
	}
	cl := ClusterJSON{
		Enabled:     s.shard.Load() != nil,
		Self:        s.member.selfURL(),
		Replication: s.opts.Replication,
		Members:     s.member.view().Members,
	}
	cl.Alive, cl.Suspect, cl.Dead, cl.Epoch = s.member.counts()
	s.repl.mu.Lock()
	cl.Handoff.Pending = len(s.repl.queue)
	s.repl.mu.Unlock()
	snap := s.met.Snapshot(len(s.jobs), cap(s.jobs), s.opts.Workers, hits, misses, size, s.opts.CacheSize, self, peers, cl)
	writeJSON(w, http.StatusOK, snap)
}

// parseRequest validates the wire request into a problem instance.
func (s *Server) parseRequest(body io.Reader) (*ScheduleRequest, algo.Algorithm, *sched.Instance, error) {
	var req ScheduleRequest
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, fmt.Errorf("decoding request: %w", err)
	}
	a, in, err := s.resolveRequest(&req)
	if err != nil {
		return nil, nil, nil, err
	}
	return &req, a, in, nil
}

// resolveRequest validates one decoded request — shared by the single
// and batch endpoints.
func (s *Server) resolveRequest(req *ScheduleRequest) (algo.Algorithm, *sched.Instance, error) {
	if req.Algorithm == "" {
		return nil, nil, fmt.Errorf("missing algorithm name")
	}
	if _, err := lowPriority(req.Priority); err != nil {
		return nil, nil, err
	}
	a, err := s.opts.Resolver(req.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	var in *sched.Instance
	switch {
	case len(req.Instance) > 0 && len(req.Graph) > 0:
		return nil, nil, fmt.Errorf("request carries both instance and graph; send one")
	case len(req.Instance) > 0:
		in, err = sched.ReadInstanceJSON(bytes.NewReader(req.Instance))
		if err != nil {
			return nil, nil, err
		}
	case len(req.Graph) > 0:
		g, err := dag.ReadJSON(bytes.NewReader(req.Graph))
		if err != nil {
			return nil, nil, err
		}
		procs := req.Processors
		if procs <= 0 {
			procs = 8
		}
		tpu := req.TimePerUnit
		if tpu == 0 {
			tpu = 1
		}
		if req.Latency < 0 || tpu < 0 {
			return nil, nil, fmt.Errorf("negative link parameters")
		}
		speeds := make([]float64, procs)
		for i := range speeds {
			speeds[i] = 1
		}
		// platform.New (not Homogeneous, which panics) so oversized link
		// parameters from the wire come back as a 400, not a crash.
		sys, err := platform.New(platform.Config{Speeds: speeds, Latency: req.Latency, TimePerUnit: tpu})
		if err != nil {
			return nil, nil, err
		}
		in = sched.Consistent(g, sys)
	default:
		return nil, nil, fmt.Errorf("request carries neither instance nor graph")
	}
	in, err = bindCommModel(in, req)
	if err != nil {
		return nil, nil, err
	}
	if err := validateFaults(req.Faults, in.P()); err != nil {
		return nil, nil, err
	}
	return a, in, nil
}

// maxFaultSamples caps a robustness sampling request: each sample is a
// full replay plus a reactive repair, so an unbounded count would let
// one request monopolize a worker.
const maxFaultSamples = 500

// validateFaults rejects malformed faults blocks at parse time (400),
// so the worker never sees one it cannot evaluate.
func validateFaults(f *FaultsRequest, procs int) error {
	if f == nil {
		return nil
	}
	if f.Plan == nil && f.Rate == 0 {
		return fmt.Errorf("faults block needs an explicit plan or a positive rate")
	}
	if err := f.Plan.Validate(procs); err != nil {
		return err
	}
	if math.IsNaN(f.Rate) || f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("faults rate %g out of [0,1]", f.Rate)
	}
	if f.Samples < 0 || f.Samples > maxFaultSamples {
		return fmt.Errorf("faults samples %d out of [0,%d]", f.Samples, maxFaultSamples)
	}
	if f.Policy != "" {
		if _, err := resched.ByName(f.Policy); err != nil {
			return err
		}
	}
	return nil
}

// bindCommModel resolves the request's communication-model selection
// against the parsed instance. An empty CommModel keeps the classic
// contention-free costs (bit-for-bit the pre-model behaviour).
func bindCommModel(in *sched.Instance, req *ScheduleRequest) (*sched.Instance, error) {
	if bw := req.LinkBandwidth; bw != 0 {
		if req.CommModel != platform.KindSharedLink {
			return nil, fmt.Errorf("linkBandwidth requires commModel %q", platform.KindSharedLink)
		}
		if math.IsNaN(bw) || math.IsInf(bw, 0) || bw <= 0 {
			return nil, fmt.Errorf("linkBandwidth %g must be positive and finite", bw)
		}
	}
	if req.CommModel == "" {
		return in, nil
	}
	var m platform.CommModel
	var err error
	if req.CommModel == platform.KindSharedLink && req.LinkBandwidth != 0 {
		m, err = platform.NewSharedLink(in.Sys, platform.SharedLinkConfig{Bandwidth: []float64{req.LinkBandwidth}})
	} else {
		m, err = platform.ModelByKind(req.CommModel, in.Sys)
	}
	if err != nil {
		return nil, err
	}
	return in.WithComm(m), nil
}

// errQueueFull marks a fail-fast enqueue rejection: the single-request
// path answers it 503 instead of waiting for a worker.
var errQueueFull = errors.New("service: queue full")

// errShed marks a low-priority request rejected at the shed watermark:
// the queue still has room, but what is left is reserved for normal
// traffic.
var errShed = errors.New("service: low-priority request shed")

// parsedItem is one validated scheduling query ready for the tiered
// cache and the worker pool.
type parsedItem struct {
	alg     algo.Algorithm
	in      *sched.Instance
	analyze bool
	faults  *FaultsRequest
	key     string
	lowPrio bool
}

// followerVerdict decides what a coalesced follower does when the
// flight it parked on failed. leaderErr is the flight's error, ctxErr
// the follower's own context state at that moment.
//
// A leader that died of cancellation or deadline must not poison its
// followers: their own deadlines may still have room, so they retry
// the flight (one of them becomes the next leader). But when the
// follower's own context has also expired, the verdict is the
// follower's error, not the leader's — the item timed out on its own
// terms, and surfacing the leader's deadline would misreport which
// request ran out of time (and with what budget).
func followerVerdict(leaderErr, ctxErr error) (retry bool, err error) {
	if errors.Is(leaderErr, context.Canceled) || errors.Is(leaderErr, context.DeadlineExceeded) {
		if ctxErr == nil {
			return true, nil
		}
		return false, ctxErr
	}
	return false, leaderErr
}

// shouldShed reports whether a low-priority item must be shed at the
// current queue depth.
func (s *Server) shouldShed(lowPrio bool) bool {
	return lowPrio && s.opts.ShedWatermark > 0 && len(s.jobs) >= s.opts.ShedWatermark
}

// lowPriority validates a request's priority field and reports whether
// it selects the sheddable class.
func lowPriority(p string) (bool, error) {
	switch p {
	case "", "normal":
		return false, nil
	case "low":
		return true, nil
	default:
		return false, fmt.Errorf("unknown priority %q (want \"normal\" or \"low\")", p)
	}
}

// timeoutFor resolves a request's timeoutMs against the server bounds.
func (s *Server) timeoutFor(ms int64) time.Duration {
	timeout := s.opts.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	return timeout
}

// statusFor maps a scheduleLocal error to the HTTP status and message a
// single request would answer.
func (s *Server) statusFor(err error, timeout time.Duration) (int, string) {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable, fmt.Sprintf("queue full (%d deep)", cap(s.jobs))
	case errors.Is(err, errShed):
		return http.StatusServiceUnavailable, fmt.Sprintf("low-priority request shed (queue depth at watermark %d)", s.opts.ShedWatermark)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, fmt.Sprintf("deadline exceeded after %s: %v", timeout, err)
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, fmt.Sprintf("request canceled: %v", err)
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// scheduleLocal serves one parsed scheduling query on this node through
// the tiered cache: the local LRU first; then — when probePeer is set
// and another peer owns the key — that peer's cache via the cheap
// /v1/cache probe (a hit is copied into the local LRU); then the worker
// pool. Concurrent identical computations coalesce on a singleflight
// group: one request leads and runs the algorithm, the rest park on its
// result, so a burst of identical requests costs exactly one schedule.
// block selects blocking enqueue (batch items backpressure on the
// queue) versus the single-request fail-fast 503.
func (s *Server) scheduleLocal(ctx context.Context, reqID string, it parsedItem, probePeer, block bool) (*ScheduleResponse, error) {
	probe := probePeer
	for {
		if resp, replica := s.cache.Get(it.key); resp != nil {
			if replica {
				s.met.ObserveTier(tierReplica)
			} else {
				s.met.ObserveTier(tierLocal)
			}
			return resp, nil
		}
		if probe {
			probe = false
			// Only when another node owns the key: an owner with a cold
			// cache computes rather than burning a probe round-trip per
			// successor (the anti-entropy sweep re-warms a rejoined owner).
			if sh := s.shard.Load(); sh != nil && sh.ring.owner(it.key) != sh.self {
				if resp := s.probeReplicas(ctx, sh, it.key, ""); resp != nil {
					s.met.ObserveTier(tierPeer)
					s.cache.PutReplica(it.key, resp)
					cp := *resp
					cp.Cached = true
					return &cp, nil
				}
			}
		}
		leader, f := s.flights.join(it.key)
		if !leader {
			s.met.ObserveCoalesced()
			select {
			case <-f.done:
				if f.err == nil {
					cp := *f.resp
					cp.Coalesced = true
					return &cp, nil
				}
				retry, err := followerVerdict(f.err, ctx.Err())
				if retry {
					continue // the leader died of its own deadline, not ours
				}
				return nil, err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if s.shouldShed(it.lowPrio) {
			// Cache and coalescing tiers above stay open to low-priority
			// traffic (a hit costs nothing); only fresh compute is shed.
			s.met.ObserveShed()
			s.flights.finish(it.key, f, nil, errShed)
			return nil, errShed
		}
		s.met.ObserveTier(tierMiss)
		j := &job{ctx: ctx, alg: it.alg, in: it.in, analyze: it.analyze, faults: it.faults, key: it.key, reqID: reqID, done: make(chan jobResult, 1)}
		if block {
			select {
			case s.jobs <- j:
			case <-ctx.Done():
				s.flights.finish(it.key, f, nil, ctx.Err())
				return nil, ctx.Err()
			}
		} else {
			select {
			case s.jobs <- j:
			default:
				s.flights.finish(it.key, f, nil, errQueueFull)
				return nil, errQueueFull
			}
		}
		select {
		case res := <-j.done:
			s.flights.finish(it.key, f, res.resp, res.err)
			return res.resp, res.err
		case <-ctx.Done():
			// The worker owns the job now; publish its eventual result so
			// coalesced followers unblock, but answer our own deadline
			// promptly.
			go func() {
				res := <-j.done
				s.flights.finish(it.key, f, res.resp, res.err)
			}()
			return nil, ctx.Err()
		}
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	req, a, in, err := s.parseRequest(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Keyed on the requested name, not a.Name(): a custom Resolver may
	// map distinct request names onto one implementation, and those are
	// distinct queries for caching and coalescing purposes. The default
	// resolver matches names exactly, so the two are identical for it.
	key, err := cacheKey(in, req.Algorithm, req.Analyze, req.LinkBandwidth, req.Faults)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	timeout := s.timeoutFor(req.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if sh := s.shard.Load(); sh != nil {
		owner := sh.ring.owner(key)
		w.Header().Set(hdrShardOwner, owner)
		if owner != sh.self && r.Header.Get(hdrForwarded) == "" {
			// Not ours: serve a local copy if we happen to hold one,
			// otherwise forward to the owner (whose cache is the
			// authoritative tier for this key). A failed forward falls
			// through the key's replica holders — a dead owner's
			// keyspace lives on at its successors — and only then to
			// computing here: availability over placement.
			if resp, replica := s.cache.Get(key); resp != nil {
				if replica {
					s.met.ObserveTier(tierReplica)
				} else {
					s.met.ObserveTier(tierLocal)
				}
				w.Header().Set(hdrServedBy, sh.self)
				writeJSON(w, http.StatusOK, resp)
				return
			}
			if s.tryForward(ctx, w, sh, owner, body) {
				return
			}
			if resp := s.probeReplicas(ctx, sh, key, owner); resp != nil {
				s.met.ObserveTier(tierPeer)
				s.cache.PutReplica(key, resp)
				cp := *resp
				cp.Cached = true
				w.Header().Set(hdrServedBy, sh.self)
				writeJSON(w, http.StatusOK, &cp)
				return
			}
		}
		w.Header().Set(hdrServedBy, sh.self)
	}
	reqID, _ := r.Context().Value(reqIDKey{}).(string)
	low, _ := lowPriority(req.Priority) // validated by resolveRequest
	resp, err := s.scheduleLocal(ctx, reqID, parsedItem{
		alg: a, in: in, analyze: req.Analyze, faults: req.Faults, key: key, lowPrio: low,
	}, false, false)
	if err != nil {
		status, msg := s.statusFor(err, timeout)
		writeError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
