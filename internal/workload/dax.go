package workload

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"

	"dagsched/internal/dag"
)

// DAX import: the Pegasus workflow description format used by the public
// workflow-trace archives (Montage, CyberShake, Epigenomics, ...). Only
// the scheduling-relevant subset is read: jobs with runtimes, their file
// usages, and the child/parent precedence section. Edge data volumes are
// derived from the files a parent writes and its child reads.

type daxADAG struct {
	XMLName xml.Name   `xml:"adag"`
	Name    string     `xml:"name,attr"`
	Jobs    []daxJob   `xml:"job"`
	Childs  []daxChild `xml:"child"`
}

type daxJob struct {
	ID      string   `xml:"id,attr"`
	Name    string   `xml:"name,attr"`
	Runtime float64  `xml:"runtime,attr"`
	Uses    []daxUse `xml:"uses"`
}

type daxUse struct {
	File string  `xml:"file,attr"`
	Link string  `xml:"link,attr"` // "input" or "output"
	Size float64 `xml:"size,attr"`
}

type daxChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []daxParent `xml:"parent"`
}

type daxParent struct {
	Ref string `xml:"ref,attr"`
}

// DAXOptions tunes the import.
type DAXOptions struct {
	// DataScale multiplies file sizes to obtain edge data volumes
	// (default 1). Public DAX traces carry sizes in bytes; a scale of
	// 1e-6 yields megabytes.
	DataScale float64
	// DefaultRuntime replaces missing or non-positive job runtimes
	// (default 1).
	DefaultRuntime float64
}

// ReadDAX parses a Pegasus DAX workflow into a task graph. Job order in
// the file is preserved as task id order when it is topological;
// otherwise construction still succeeds because Build validates
// acyclicity on the declared precedence only.
func ReadDAX(r io.Reader, opts DAXOptions) (*dag.Graph, error) {
	if opts.DataScale == 0 {
		opts.DataScale = 1
	}
	if opts.DefaultRuntime == 0 {
		opts.DefaultRuntime = 1
	}
	var adag daxADAG
	if err := xml.NewDecoder(r).Decode(&adag); err != nil {
		return nil, fmt.Errorf("workload: parsing DAX: %w", err)
	}
	if len(adag.Jobs) == 0 {
		return nil, fmt.Errorf("workload: DAX has no jobs")
	}
	name := adag.Name
	if name == "" {
		name = "dax"
	}
	b := dag.NewBuilder(name)
	ids := make(map[string]dag.TaskID, len(adag.Jobs))
	outputs := make(map[string]map[string]float64, len(adag.Jobs)) // job -> file -> size
	inputs := make(map[string]map[string]float64, len(adag.Jobs))
	for _, j := range adag.Jobs {
		if _, dup := ids[j.ID]; dup {
			return nil, fmt.Errorf("workload: duplicate DAX job id %q", j.ID)
		}
		if math.IsNaN(j.Runtime) || math.IsInf(j.Runtime, 0) {
			return nil, fmt.Errorf("workload: DAX job %q has non-finite runtime", j.ID)
		}
		w := j.Runtime
		if w <= 0 {
			w = opts.DefaultRuntime
		}
		label := j.Name
		if label == "" {
			label = j.ID
		}
		ids[j.ID] = b.AddTask(label, w)
		outputs[j.ID] = map[string]float64{}
		inputs[j.ID] = map[string]float64{}
		for _, u := range j.Uses {
			if math.IsNaN(u.Size) || math.IsInf(u.Size, 0) {
				return nil, fmt.Errorf("workload: DAX job %q uses file %q with non-finite size", j.ID, u.File)
			}
			switch u.Link {
			case "output":
				outputs[j.ID][u.File] = u.Size
			case "input":
				inputs[j.ID][u.File] = u.Size
			}
		}
	}
	for _, c := range adag.Childs {
		child, ok := ids[c.Ref]
		if !ok {
			return nil, fmt.Errorf("workload: DAX child references unknown job %q", c.Ref)
		}
		for _, p := range c.Parents {
			parent, ok := ids[p.Ref]
			if !ok {
				return nil, fmt.Errorf("workload: DAX parent references unknown job %q", p.Ref)
			}
			// Edge data: files the parent writes and the child reads.
			var data float64
			for file, size := range outputs[p.Ref] {
				if _, reads := inputs[c.Ref][file]; reads {
					data += size
				}
			}
			b.AddEdge(parent, child, data*opts.DataScale)
		}
	}
	return b.Build()
}
