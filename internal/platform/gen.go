package platform

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes random system generation for experiments.
type GenConfig struct {
	// Procs is the processor count (required, >= 1).
	Procs int
	// SpeedHeterogeneity spreads processor speeds uniformly over
	// [1-h/2, 1+h/2]; 0 yields a homogeneous unit-speed system. Must lie
	// in [0, 2).
	SpeedHeterogeneity float64
	// Latency and TimePerUnit configure every link, as in Config.
	Latency     float64
	TimePerUnit float64
}

// Generate draws a System from cfg using rng. The draw is deterministic
// for a fixed seed.
func Generate(cfg GenConfig, rng *rand.Rand) (*System, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("platform: invalid processor count %d", cfg.Procs)
	}
	if cfg.SpeedHeterogeneity < 0 || cfg.SpeedHeterogeneity >= 2 {
		return nil, fmt.Errorf("platform: speed heterogeneity %g out of [0,2)", cfg.SpeedHeterogeneity)
	}
	speeds := make([]float64, cfg.Procs)
	for i := range speeds {
		if cfg.SpeedHeterogeneity == 0 {
			speeds[i] = 1
		} else {
			speeds[i] = 1 + cfg.SpeedHeterogeneity*(rng.Float64()-0.5)
		}
	}
	return New(Config{Speeds: speeds, Latency: cfg.Latency, TimePerUnit: cfg.TimePerUnit})
}
