package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"dagsched/internal/platform"
	"dagsched/internal/stream"
)

// maxStreamProcessors caps the platform size a stream config may ask
// for: cost rows and EFT scans are O(P) per task, and an attacker-sized
// processor count must not allocate before validation.
const maxStreamProcessors = 512

// handleStream serves POST /v1/schedule/stream: an NDJSON event log in,
// an NDJSON delta log out. The first line must be a config event naming
// the algorithm and platform; every following line is an addTask,
// addEdge, advance, flush or seal event. Each flush (explicit,
// batch-size or seal) re-plans incrementally and answers with one delta
// line, flushed immediately, so a client ingesting an open-ended task
// arrival process observes a continuously-updated schedule.
//
// The session runs on one worker-pool slot for its whole lifetime —
// streams compete with one-shot requests for the same bounded compute —
// and is admitted through the same overload controls: a full queue
// answers 503, and a low-priority config is shed at the watermark. An
// invalid event before the first delta answers 400; after streaming has
// started the error arrives as a terminal in-band {"error": ...} line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	br := bufio.NewReaderSize(body, 64*1024)

	// The config line is parsed on the handler goroutine so every
	// malformed session is a plain 400 before a worker is occupied.
	cfgEv, err := readConfigEvent(br)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, low, timeout, err := s.streamConfig(cfgEv)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.shouldShed(low) {
		s.met.ObserveShed()
		status, msg := s.statusFor(errShed, timeout)
		writeError(w, status, "%s", msg)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Interleaved body reads and response writes need full-duplex HTTP/1
	// (by default the first write discards the unread body). Where the
	// transport cannot provide it, the remaining events are slurped
	// up-front — bounded by MaxBodyBytes — and only the deltas stream.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		rest, rerr := io.ReadAll(br)
		if rerr != nil {
			writeError(w, http.StatusBadRequest, "reading events: %v", rerr)
			return
		}
		br = bufio.NewReader(bytes.NewReader(rest))
	}
	// The context deadline cannot interrupt a blocked body read, so the
	// connection deadlines enforce the timeout at the socket (best
	// effort; a failed set falls back to client disconnects).
	deadline := time.Now().Add(timeout)
	_ = rc.SetReadDeadline(deadline)
	_ = rc.SetWriteDeadline(deadline)

	reqID, _ := r.Context().Value(reqIDKey{}).(string)
	sess := &streamSession{w: w, rc: rc, eng: eng, br: br, ctx: ctx}
	j := &job{ctx: ctx, reqID: reqID, done: make(chan jobResult, 1)}
	j.exec = func() (res jobResult) {
		defer func() {
			if p := recover(); p != nil {
				s.met.ObservePanic()
				log.Printf("service: panic in stream session (request %s): %v\n%s", reqID, p, debug.Stack())
				res = jobResult{err: fmt.Errorf("internal error: stream session panic (request %s)", reqID)}
			}
		}()
		return jobResult{err: sess.run()}
	}
	select {
	case s.jobs <- j:
	default:
		status, msg := s.statusFor(errQueueFull, timeout)
		writeError(w, status, "%s", msg)
		return
	}
	res := <-j.done
	s.met.ObserveStream(int64(eng.Events()), sess.deltas, eng.Sealed())
	if res.err == nil {
		return
	}
	if !sess.wrote {
		switch {
		case errors.Is(res.err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %s: %v", timeout, res.err)
		case errors.Is(res.err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "request canceled: %v", res.err)
		default:
			writeError(w, http.StatusBadRequest, "%v", res.err)
		}
		return
	}
	// Streaming already committed the 200; the failure goes in-band as
	// the terminal line.
	_ = json.NewEncoder(w).Encode(errorJSON{Error: res.err.Error()})
	_ = rc.Flush()
}

// readEventLine returns the next non-blank NDJSON line (trimmed), or
// io.EOF at the clean end of the stream. Lines beyond the per-event
// bound are rejected.
func readEventLine(br *bufio.Reader) ([]byte, error) {
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > stream.MaxEventBytes {
			return nil, fmt.Errorf("event line exceeds %d bytes", stream.MaxEventBytes)
		}
		if b := bytes.TrimSpace(line); len(b) > 0 {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// readConfigEvent consumes the first non-blank NDJSON line, which must
// be a config event.
func readConfigEvent(br *bufio.Reader) (stream.Event, error) {
	b, err := readEventLine(br)
	if errors.Is(err, io.EOF) {
		return stream.Event{}, fmt.Errorf("empty stream: a config event must open the session")
	}
	if err != nil {
		return stream.Event{}, fmt.Errorf("reading config event: %w", err)
	}
	ev, err := stream.DecodeEvent(b)
	if err != nil {
		return stream.Event{}, err
	}
	if ev.Op != stream.OpConfig {
		return stream.Event{}, fmt.Errorf("first event must be %q, got %q", stream.OpConfig, ev.Op)
	}
	return ev, nil
}

// streamConfig validates a config event into an engine config, the
// request's shedding class and its session timeout. The platform is
// homogeneous (unit speeds) under the config's link parameters, exactly
// the bare-graph request path.
func (s *Server) streamConfig(ev stream.Event) (stream.Config, bool, time.Duration, error) {
	if ev.Processors < 0 || ev.Processors > maxStreamProcessors {
		return stream.Config{}, false, 0, fmt.Errorf("processors %d out of [0,%d]", ev.Processors, maxStreamProcessors)
	}
	procs := ev.Processors
	if procs == 0 {
		procs = 8
	}
	tpu := ev.TimePerUnit
	if tpu == 0 {
		tpu = 1
	}
	if ev.Latency < 0 || tpu < 0 {
		return stream.Config{}, false, 0, fmt.Errorf("negative link parameters")
	}
	low, err := lowPriority(ev.Priority)
	if err != nil {
		return stream.Config{}, false, 0, err
	}
	speeds := make([]float64, procs)
	for i := range speeds {
		speeds[i] = 1
	}
	// platform.New (not Homogeneous, which panics) so oversized link
	// parameters from the wire come back as a 400, not a crash.
	sys, err := platform.New(platform.Config{Speeds: speeds, Latency: ev.Latency, TimePerUnit: tpu})
	if err != nil {
		return stream.Config{}, false, 0, err
	}
	cfg := stream.Config{
		Algorithm:        ev.Algorithm,
		Sys:              sys,
		BatchSize:        ev.BatchSize,
		FinalAssignments: ev.FinalAssignments,
	}
	return cfg, low, s.timeoutFor(ev.TimeoutMs), nil
}

// streamSession is the per-session state shared between the worker
// (which runs the event loop) and the handler (which maps its outcome
// to a status).
type streamSession struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	eng *stream.Engine
	br  *bufio.Reader
	ctx context.Context

	wrote  bool
	deltas int64
}

// run drains the event log through the engine, emitting one delta line
// per re-plan. It returns nil exactly when the stream sealed cleanly.
func (ss *streamSession) run() error {
	event := 1 // the config line was consumed by the handler
	for {
		if err := ss.ctx.Err(); err != nil {
			return err
		}
		b, err := readEventLine(ss.br)
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("stream ended without a seal event")
		}
		if err != nil {
			if cerr := ss.ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("reading events: %w", err)
		}
		event++
		ev, err := stream.DecodeEvent(b)
		if err != nil {
			return fmt.Errorf("event %d: %w", event, err)
		}
		d, err := ss.eng.Apply(ev)
		if err != nil {
			return fmt.Errorf("event %d: %w", event, err)
		}
		if d != nil {
			if err := ss.emit(d); err != nil {
				return err
			}
		}
		if ss.eng.Sealed() {
			return nil
		}
	}
}

// emit writes one delta line and flushes it to the client.
func (ss *streamSession) emit(d *stream.Delta) error {
	if !ss.wrote {
		ss.w.Header().Set("Content-Type", "application/x-ndjson")
		ss.w.WriteHeader(http.StatusOK)
		ss.wrote = true
	}
	if err := json.NewEncoder(ss.w).Encode(d); err != nil {
		return fmt.Errorf("writing delta: %w", err)
	}
	ss.deltas++
	_ = ss.rc.Flush()
	return nil
}
