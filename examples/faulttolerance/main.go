// Fault tolerance: what does losing a machine cost, and which schedule
// survives it best? Schedules a CyberShake workflow on 6 machines with
// three algorithms, analyzes each schedule's slack, then kills each
// processor at mid-execution and repairs, reporting the makespan damage.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"dagsched"
)

func main() {
	g, err := dagsched.CyberShakeDAG(10)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 6, CCR: 1, Beta: 0.8}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%d tasks) on 6 heterogeneous machines\n\n", g.Name(), g.Len())

	for _, name := range []string{"HEFT", "CPOP", "ILS"} {
		a, err := dagsched.AlgorithmByName(name)
		if err != nil {
			log.Fatal(err)
		}
		s, err := a.Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		an := dagsched.Analyze(s)
		fmt.Printf("== %s: makespan %.4g, %d/%d critical tasks ==\n",
			name, s.Makespan(), len(an.Critical), in.N())
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "failed proc\trepaired makespan\tgrowth\tlost\tmoved")
		worst := 0.0
		for p := 0; p < in.P(); p++ {
			_, imp, err := dagsched.AssessFailure(s, dagsched.Failure{Proc: p, Time: s.Makespan() / 2})
			if err != nil {
				log.Fatal(err)
			}
			growth := imp.Repaired/imp.Original - 1
			if growth > worst {
				worst = growth
			}
			fmt.Fprintf(tw, "P%d\t%.4g\t%+.1f%%\t%d\t%d\n",
				p, imp.Repaired, 100*growth, imp.Lost, imp.Moved)
		}
		tw.Flush()
		fmt.Printf("worst-case single failure at t=ms/2: %+.1f%%\n\n", 100*worst)
	}
	fmt.Println("Note the pattern: tighter schedules (lower makespan) have less slack,")
	fmt.Println("so the same failure costs them relatively more to repair — the")
	fmt.Println("makespan-vs-resilience tradeoff quantified by experiment E19.")
}
