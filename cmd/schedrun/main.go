// Command schedrun schedules one task graph with one algorithm (or every
// registered algorithm with -all), prints the evaluation measures and an
// ASCII Gantt chart, and optionally writes an SVG.
//
// Usage:
//
//	schedgen -type gauss -m 8 -o g.json
//	schedrun -graph g.json -algo ILS -procs 4 -ccr 1 -beta 1
//	schedrun -graph g.json -all -procs 8
//	schedrun -stream events.ndjson
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"text/tabwriter"

	"dagsched"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "task graph JSON (see schedgen); mutually exclusive with -instance")
		instPath  = flag.String("instance", "", "full instance JSON written by a previous -save-instance run")
		saveInst  = flag.String("save-instance", "", "write the generated instance (graph+system+costs) for exact reproduction")
		algoName  = flag.String("algo", "ILS", "algorithm name (see -list)")
		allAlgos  = flag.Bool("all", false, "run every registered algorithm and compare")
		list      = flag.Bool("list", false, "list algorithm names and exit")
		procs     = flag.Int("procs", 8, "processor count")
		ccr       = flag.Float64("ccr", 1.0, "target communication-to-computation ratio")
		beta      = flag.Float64("beta", 1.0, "cost heterogeneity in [0,2); 0 = homogeneous")
		latency   = flag.Float64("latency", 0, "per-message startup latency")
		linkSp    = flag.Float64("link-spread", 0, "per-link transfer-rate spread in [0,2) for -graph instances")
		startSp   = flag.Float64("startup-spread", 0, "per-link startup spread in [0,2) for -graph instances")
		commModel = flag.String("comm-model", "", "communication model the schedulers (and the replay) run under: contention-free|one-port|shared-link; empty keeps the classic matrix costs")
		seed      = flag.Int64("seed", 1, "cost-matrix seed")
		gantt     = flag.Bool("gantt", true, "print an ASCII Gantt chart")
		svg       = flag.String("svg", "", "write the schedule as SVG to this file")
		jsonOut   = flag.String("json", "", "write the schedule as JSON to this file")
		trace     = flag.String("trace", "", "write a Chrome trace (chrome://tracing) to this file")
		noise     = flag.Float64("noise", 0, "replay the schedule with this execution-time noise in [0,1)")
		contend   = flag.Bool("contention", false, "replay under the one-port contention model")
		analyze   = flag.Bool("analyze", false, "print slack/idle analysis of the best schedule")
		failProc  = flag.Int("fail-proc", -1, "simulate a fail-stop of this processor and repair")
		failAt    = flag.Float64("fail-at", 0, "failure time for -fail-proc (fraction of makespan if < 1)")
		streamLog = flag.String("stream", "", "replay an NDJSON event log (config first line) through the incremental streaming engine")
		streamFul = flag.Bool("stream-full", false, "with -stream, re-plan from scratch at every flush (baseline mode)")
		faults    = flag.String("faults", "", "fault-plan JSON file; replay the best schedule under it and repair reactively")
		faultSeed = flag.Int64("fault-seed", 0, "override the fault plan's jitter seed (0 keeps the plan's own)")
		repairPol = flag.String("repair-policy", "auto", "reactive repair policy for -faults: auto|remap-stranded|reschedule-suffix")
	)
	flag.Parse()

	if *list {
		for _, n := range dagsched.AlgorithmNames() {
			fmt.Println(n)
		}
		return
	}
	if *streamLog != "" {
		runStreamReplay(*streamLog, *streamFul, *gantt)
		return
	}
	var in *dagsched.Instance
	switch {
	case *instPath != "":
		f, err := os.Open(*instPath)
		if err != nil {
			fatal(err)
		}
		in, err = dagsched.ReadInstanceJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		g, err := dagsched.ReadGraphJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewSource(*seed))
		in, err = dagsched.MakeInstance(g, dagsched.WorkloadConfig{
			Procs: *procs, CCR: *ccr, Beta: *beta, Latency: *latency,
			LinkSpread: *linkSp, StartupSpread: *startSp,
		}, rng)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -graph (see schedgen) or -instance is required"))
	}
	if *commModel != "" {
		m, err := dagsched.CommModelByKind(*commModel, in.Sys)
		if err != nil {
			fatal(err)
		}
		in = dagsched.WithCommModel(in, m)
	}
	if *saveInst != "" {
		f, err := os.Create(*saveInst)
		if err != nil {
			fatal(err)
		}
		if err := in.WriteJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *saveInst)
	}
	fmt.Printf("instance: %s\n\n", in)

	var algs []dagsched.Algorithm
	if *allAlgos {
		algs = dagsched.Algorithms()
	} else {
		a, err := dagsched.AlgorithmByName(*algoName)
		if err != nil {
			fatal(err)
		}
		algs = []dagsched.Algorithm{a}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tmakespan\tSLR\tspeedup\tefficiency\tdups\truntime")
	var best *dagsched.Schedule
	for _, a := range algs {
		res, err := dagsched.Evaluate(a, in)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.3f\t%.3f\t%.3f\t%d\t%s\n",
			res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Efficiency, res.Duplicates, res.RunTime)
		s, err := a.Schedule(in)
		if err != nil {
			fatal(err)
		}
		if best == nil || s.Makespan() < best.Makespan() {
			best = s
		}
	}
	tw.Flush()
	fmt.Println()

	if *gantt {
		if err := dagsched.WriteGanttText(os.Stdout, best, 100); err != nil {
			fatal(err)
		}
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		if err := dagsched.WriteGanttSVG(f, best); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svg)
	}
	if *jsonOut != "" {
		writeWith(*jsonOut, best, dagsched.WriteScheduleJSON)
	}
	if *trace != "" {
		writeWith(*trace, best, dagsched.WriteChromeTrace)
	}
	if *noise > 0 || *contend || *commModel != "" {
		cfg := dagsched.SimConfig{Noise: *noise, Seed: *seed, Contention: *contend}
		if *commModel != "" {
			// Replay under the model the schedulers planned with.
			cfg.Model = in.CommModel()
		}
		rep, err := dagsched.Simulate(best, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nreplay (noise ±%.0f%%, model %s): makespan %.4g (stretch %.3f, %d transfers)\n",
			*noise*100, rep.Model, rep.Makespan, rep.Stretch, rep.Transfers)
	}
	if *analyze {
		an := dagsched.Analyze(best)
		fmt.Printf("\nanalysis: %d critical tasks of %d\n", len(an.Critical), in.N())
		for p, idle := range an.IdleTime {
			fmt.Printf("  P%d idle %.4g (%.0f%% of makespan)\n", p, idle, an.IdleShare[p]*100)
		}
	}
	if *failProc >= 0 {
		ft := *failAt
		if ft < 1 {
			ft *= best.Makespan()
		}
		r, imp, err := dagsched.AssessFailure(best, dagsched.Failure{Proc: *failProc, Time: ft})
		if err != nil {
			fatal(err)
		}
		if err := r.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nfail-stop of P%d at t=%.4g: makespan %.4g -> %.4g (+%.1f%%), %d tasks lost, %d moved\n",
			*failProc, ft, imp.Original, imp.Repaired,
			100*(imp.Repaired/imp.Original-1), imp.Lost, imp.Moved)
	}
	if *faults != "" {
		f, err := os.Open(*faults)
		if err != nil {
			fatal(err)
		}
		fp, err := dagsched.ReadFaultPlan(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *faultSeed != 0 {
			fp.Seed = *faultSeed
		}
		rep, err := dagsched.Simulate(best, dagsched.SimConfig{Faults: fp})
		if err != nil {
			fatal(err)
		}
		fr := rep.Faults
		fmt.Printf("\nfault replay (%d crashes, %d link faults, jitter ±%.0f%%): makespan %.4g -> %.4g\n",
			len(fp.Crashes), len(fp.Links), fp.Jitter*100, fr.Nominal, rep.Makespan)
		fmt.Printf("  %d/%d tasks completed, %d stranded, %d executions killed, %d restarted\n",
			fr.Completed, in.N(), len(fr.Stranded), fr.Killed, fr.Restarts)
		pol, err := dagsched.RepairPolicyByName(*repairPol)
		if err != nil {
			fatal(err)
		}
		r, out, err := dagsched.ReactToFaults(best, fp, pol)
		if err != nil {
			fatal(err)
		}
		if r == best {
			fmt.Println("  no permanent crash: nothing to repair")
		} else {
			if err := r.Validate(); err != nil {
				fatal(err)
			}
			fmt.Printf("  repair (%s): makespan %.4g -> %.4g (+%.1f%%), %d frozen, %d lost, %d remapped, %d delayed\n",
				out.Policy, out.Nominal, out.Repaired, 100*(out.Repaired/out.Nominal-1),
				out.Frozen, out.Lost, out.Remapped, out.Delayed)
		}
	}
}

// writeWith writes the schedule to path using the given renderer.
func writeWith(path string, s *dagsched.Schedule, render func(io.Writer, *dagsched.Schedule) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := render(f, s); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedrun:", err)
	os.Exit(1)
}
