package dag

import (
	"math/rand"
	"strings"
	"testing"
)

// diamond builds the 4-task diamond 0 -> {1,2} -> 3 used across tests.
//
//	    0 (w=2)
//	   / \
//	 d=1  d=4
//	 /     \
//	1(w=3)  2(w=1)
//	 \     /
//	 d=2  d=3
//	   \ /
//	    3 (w=4)
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	t0 := b.AddTask("a", 2)
	t1 := b.AddTask("b", 3)
	t2 := b.AddTask("c", 1)
	t3 := b.AddTask("d", 4)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t0, t2, 4)
	b.AddEdge(t1, t3, 2)
	b.AddEdge(t2, t3, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// randomDAG builds a random forward-edge DAG for property tests. Edges only
// go from lower to higher ids, so acyclicity holds by construction.
func randomDAG(rng *rand.Rand, n int, edgeProb float64) *Graph {
	b := NewBuilder("random")
	for i := 0; i < n; i++ {
		b.AddTask("", 1+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < edgeProb {
				b.AddEdge(TaskID(i), TaskID(j), rng.Float64()*10)
			}
		}
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Name() != "diamond" {
		t.Fatalf("Name = %q", g.Name())
	}
	if got := g.Task(1).Name; got != "b" {
		t.Fatalf("Task(1).Name = %q, want b", got)
	}
	if got := g.Task(3).Weight; got != 4 {
		t.Fatalf("Task(3).Weight = %g, want 4", got)
	}
	if w := g.TotalWeight(); w != 10 {
		t.Fatalf("TotalWeight = %g, want 10", w)
	}
	if d := g.TotalData(); d != 10 {
		t.Fatalf("TotalData = %g, want 10", d)
	}
	if !strings.Contains(g.String(), "4 tasks") {
		t.Fatalf("String = %q", g.String())
	}
}

func TestBuilderDefaultNames(t *testing.T) {
	b := NewBuilder("")
	id := b.AddTask("", 1)
	g := b.MustBuild()
	if g.Task(id).Name != "t0" {
		t.Fatalf("default name = %q, want t0", g.Task(id).Name)
	}
}

func TestAdjacency(t *testing.T) {
	g := diamond(t)
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) = %d", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Fatalf("InDegree(3) = %d", got)
	}
	succ := g.Succ(0)
	if len(succ) != 2 || succ[0].To != 1 || succ[1].To != 2 {
		t.Fatalf("Succ(0) = %v", succ)
	}
	pred := g.Pred(3)
	if len(pred) != 2 || pred[0].To != 1 || pred[1].To != 2 {
		t.Fatalf("Pred(3) = %v", pred)
	}
	if d, ok := g.EdgeData(0, 2); !ok || d != 4 {
		t.Fatalf("EdgeData(0,2) = %g,%v", d, ok)
	}
	if _, ok := g.EdgeData(1, 2); ok {
		t.Fatal("EdgeData(1,2) should not exist")
	}
	if _, ok := g.EdgeData(3, 0); ok {
		t.Fatal("EdgeData(3,0) should not exist")
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond(t)
	if e := g.Entries(); len(e) != 1 || e[0] != 0 {
		t.Fatalf("Entries = %v", e)
	}
	if x := g.Exits(); len(x) != 1 || x[0] != 3 {
		t.Fatalf("Exits = %v", x)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := diamond(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("edges not sorted: %v before %v", a, b)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		setup func(b *Builder)
	}{
		{"empty", func(b *Builder) {}},
		{"negative weight", func(b *Builder) { b.AddTask("", -1) }},
		{"edge out of range", func(b *Builder) {
			b.AddTask("", 1)
			b.AddEdge(0, 5, 1)
		}},
		{"negative edge", func(b *Builder) {
			a := b.AddTask("", 1)
			c := b.AddTask("", 1)
			b.AddEdge(a, c, -2)
		}},
		{"self loop", func(b *Builder) {
			a := b.AddTask("", 1)
			b.AddEdge(a, a, 1)
		}},
		{"duplicate edge", func(b *Builder) {
			a := b.AddTask("", 1)
			c := b.AddTask("", 1)
			b.AddEdge(a, c, 1)
			b.AddEdge(a, c, 2)
		}},
		{"cycle", func(b *Builder) {
			a := b.AddTask("", 1)
			c := b.AddTask("", 1)
			d := b.AddTask("", 1)
			b.AddEdge(a, c, 1)
			b.AddEdge(c, d, 1)
			b.AddEdge(d, a, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tc.setup(b)
			if _, err := b.Build(); err == nil {
				t.Fatal("Build succeeded, want error")
			}
		})
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on empty graph")
		}
	}()
	NewBuilder("").MustBuild()
}

func TestTasksReturnsCopy(t *testing.T) {
	g := diamond(t)
	tasks := g.Tasks()
	tasks[0].Weight = 999
	if g.Task(0).Weight == 999 {
		t.Fatal("Tasks() leaked internal storage")
	}
}
