package suite

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// scaleInstance multiplies every execution cost and every data volume by
// k, which must scale any scale-invariant scheduler's makespan by exactly
// k (all decisions compare linear combinations of costs).
func scaleInstance(t *testing.T, in *sched.Instance, k float64) *sched.Instance {
	t.Helper()
	b := dag.NewBuilder(in.G.Name())
	for _, task := range in.G.Tasks() {
		b.AddTask(task.Name, task.Weight*k)
	}
	for _, e := range in.G.Edges() {
		b.AddEdge(e.From, e.To, e.Data*k)
	}
	g := b.MustBuild()
	w := make([][]float64, in.N())
	for i := range w {
		w[i] = make([]float64, in.P())
		for p := range w[i] {
			w[i][p] = in.W[i][p] * k
		}
	}
	// The system itself is unchanged (unit rates): scaling data scales
	// comm costs linearly because latency is zero in this fixture.
	in2, err := sched.NewInstance(g, in.Sys, w)
	if err != nil {
		t.Fatal(err)
	}
	return in2
}

// TestScaleInvariance: for every deterministic comparison-based scheduler,
// multiplying all costs by k multiplies the makespan by exactly k.
// PETS is excluded — its rank uses round(), which is intentionally not
// scale-invariant.
func TestScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g, err := workload.Random(workload.RandomConfig{N: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sys := platform.Homogeneous(4, 0, 1)
	in, err := sched.Unrelated(g, sys, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3.5
	scaled := scaleInstance(t, in, k)
	for _, a := range All() {
		if a.Name() == "PETS" {
			continue
		}
		runBoth(t, a, in, scaled, k)
	}
}

func runBoth(t *testing.T, a algo.Algorithm, in, scaled *sched.Instance, k float64) {
	t.Helper()
	s1, err := a.Schedule(in)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	s2, err := a.Schedule(scaled)
	if err != nil {
		t.Fatalf("%s scaled: %v", a.Name(), err)
	}
	want := s1.Makespan() * k
	if math.Abs(s2.Makespan()-want) > 1e-6*want {
		t.Errorf("%s not scale-invariant: %g × %g = %g, got %g",
			a.Name(), s1.Makespan(), k, want, s2.Makespan())
	}
}

// TestProcessorPermutationOnHomogeneous: on a fully homogeneous instance
// the makespan is label-independent for deterministic algorithms, because
// ties resolve by processor index identically after relabeling the
// identical columns. This guards against hidden dependence on absolute
// processor ids.
func TestProcessorPermutationOnHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g, err := workload.Random(workload.RandomConfig{N: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 4, CCR: 1, Beta: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All columns identical: any column permutation is the same matrix,
	// so scheduling twice must agree — a smoke check that algorithms are
	// pure functions of the instance.
	for _, a := range All() {
		s1, err1 := a.Schedule(in)
		s2, err2 := a.Schedule(in)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v/%v", a.Name(), err1, err2)
		}
		if s1.Makespan() != s2.Makespan() {
			t.Errorf("%s is not a pure function of its instance", a.Name())
		}
	}
}
