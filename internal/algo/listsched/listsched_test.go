package listsched

import (
	"math"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func all() []algo.Algorithm {
	return []algo.Algorithm{HEFT{}, CPOP{}, DLS{}, MCP{}, ETF{}, HLFET{}, ISH{}, PETS{}, HCPT{}, LMT{}}
}

func TestNames(t *testing.T) {
	want := []string{"HEFT", "CPOP", "DLS", "MCP", "ETF", "HLFET", "ISH", "PETS", "HCPT", "LMT"}
	for i, a := range all() {
		if a.Name() != want[i] {
			t.Fatalf("Name = %q, want %q", a.Name(), want[i])
		}
	}
}

// TestTopcuogluRanks pins the implementation to the published upward
// ranks of the HEFT paper's Figure 1 example.
func TestTopcuogluRanks(t *testing.T) {
	in := testfix.Topcuoglu()
	r := sched.RankUpward(in)
	want := []float64{108, 77, 80, 80, 69, 63.333, 42.667, 35.667, 44.333, 14.667}
	for i, w := range want {
		if math.Abs(r[i]-w) > 0.01 {
			t.Fatalf("rank_u(n%d) = %.3f, want %.3f", i+1, r[i], w)
		}
	}
}

// TestHEFTTopcuoglu reproduces the published HEFT makespan of 80 on the
// paper's own example.
func TestHEFTTopcuoglu(t *testing.T) {
	in := testfix.Topcuoglu()
	s, err := HEFT{}.Schedule(in)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(s.Makespan()-80) > 1e-9 {
		t.Fatalf("HEFT makespan = %g, want 80", s.Makespan())
	}
}

// TestCPOPTopcuoglu reproduces the published CPOP makespan of 86.
func TestCPOPTopcuoglu(t *testing.T) {
	in := testfix.Topcuoglu()
	s, err := CPOP{}.Schedule(in)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(s.Makespan()-86) > 1e-9 {
		t.Fatalf("CPOP makespan = %g, want 86", s.Makespan())
	}
}

// Every algorithm on every battery instance: schedules validate, respect
// the critical-path lower bound and never exceed the serial upper bound.
func TestAllValidOnBattery(t *testing.T) {
	algs := all()
	testfix.Battery(testfix.BatteryConfig{Trials: 40, Seed: 101}, func(trial int, in *sched.Instance) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if s.Makespan() < in.CPMin()-1e-6 {
				t.Fatalf("trial %d %s: makespan %g below CP bound %g", trial, a.Name(), s.Makespan(), in.CPMin())
			}
		}
	})
}

// On application graphs too.
func TestAllValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(4, 55) {
		for _, a := range all() {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
		}
	}
}

// Single processor: every list scheduler degenerates to serial execution
// of all tasks with zero communication.
func TestSingleProcessorSerial(t *testing.T) {
	in := testfix.Topcuoglu()
	// Rebuild on one processor.
	sys1 := platform.Homogeneous(1, 0, 1)
	w := make([][]float64, in.N())
	var total float64
	for i := range w {
		w[i] = []float64{in.W[i][0]}
		total += in.W[i][0]
	}
	in1, err := sched.NewInstance(in.G, sys1, w)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	for _, a := range all() {
		s, err := a.Schedule(in1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if math.Abs(s.Makespan()-total) > 1e-6 {
			t.Fatalf("%s single-proc makespan = %g, want %g", a.Name(), s.Makespan(), total)
		}
	}
}

// Independent tasks (no edges): makespan must not exceed a list-scheduling
// bound and all processors must be used when tasks outnumber them.
func TestIndependentTasks(t *testing.T) {
	b := dag.NewBuilder("indep")
	for i := 0; i < 12; i++ {
		b.AddTask("", 4)
	}
	g := b.MustBuild()
	in := sched.Consistent(g, platform.Homogeneous(4, 0, 1))
	for _, a := range all() {
		s, err := a.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		// Perfect balance is achievable: 12 unit-cost-4 tasks on 4 procs.
		if s.Makespan() != 12 {
			t.Fatalf("%s makespan = %g, want 12", a.Name(), s.Makespan())
		}
	}
}

// A chain must be scheduled back-to-back on one processor by every
// algorithm (any migration only adds communication).
func TestChainStaysPut(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 6; i++ {
		id := b.AddTask("", 3)
		if prev >= 0 {
			b.AddEdge(prev, id, 10)
		}
		prev = id
	}
	g := b.MustBuild()
	in := sched.Consistent(g, platform.Homogeneous(3, 1, 1))
	for _, a := range all() {
		s, err := a.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if s.Makespan() != 18 {
			t.Fatalf("%s chain makespan = %g, want 18", a.Name(), s.Makespan())
		}
	}
}

// HEFT's insertion policy must strictly help on a crafted instance where
// a low-priority task fits into the communication hole in front of a
// high-priority task.
func TestHEFTUsesInsertion(t *testing.T) {
	// A runs on P1, its child B runs on P0 and must wait for the data
	// (arrival 6), leaving the hole [0,6) on P0. The low-rank independent
	// task E (duration 4 on P0) fits the hole exactly.
	b := dag.NewBuilder("holes")
	a := b.AddTask("A", 1)
	bb := b.AddTask("B", 1)
	e := b.AddTask("E", 1)
	b.AddEdge(a, bb, 5)
	g := b.MustBuild()
	w := [][]float64{
		{1000, 1}, // A: only sensible on P1
		{1, 1000}, // B: only sensible on P0
		{4, 6},    // E: low rank, fits the hole on P0
	}
	in, err := sched.NewInstance(g, platform.Homogeneous(2, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// With insertion: A on P1 [0,1), B on P0 [6,7), E inside the hole
	// [0,4) — makespan 7. Without insertion E would append at 7 for 11.
	if s.Makespan() != 7 {
		t.Fatalf("makespan = %g, want 7 (insertion into the hole)", s.Makespan())
	}
	prim := s.Primary(e)
	if prim.Proc != 0 || prim.Start != 0 {
		t.Fatalf("E placed at P%d t=%g, want inside the hole on P0 at 0", prim.Proc, prim.Start)
	}
}

// Determinism: every algorithm yields the identical makespan when run
// twice on the same instance.
func TestDeterminism(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 10, Seed: 77}, func(trial int, in *sched.Instance) {
		for _, a := range all() {
			s1, err1 := a.Schedule(in)
			s2, err2 := a.Schedule(in)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: %v %v", a.Name(), err1, err2)
			}
			if s1.Makespan() != s2.Makespan() {
				t.Fatalf("%s not deterministic: %g vs %g", a.Name(), s1.Makespan(), s2.Makespan())
			}
		}
	})
}

// ISH never does worse than HLFET by more than the hole-filling can
// explain... in fact ISH == HLFET when no holes exist (chain graphs).
func TestISHEqualsHLFETOnChains(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 8; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 1)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	s1, _ := HLFET{}.Schedule(in)
	s2, _ := ISH{}.Schedule(in)
	if s1.Makespan() != s2.Makespan() {
		t.Fatalf("HLFET %g vs ISH %g on a chain", s1.Makespan(), s2.Makespan())
	}
}
