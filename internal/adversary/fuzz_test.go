package adversary

import (
	"math"
	"testing"
)

// FuzzSpec hammers the genome decoder: arbitrary bytes must either
// parse into a spec that validates and decodes into a valid instance,
// or return an error — never panic, never produce a non-finite cost.
func FuzzSpec(f *testing.F) {
	f.Add([]byte(`{"n":8,"procs":2,"baseSeed":1}`))
	f.Add([]byte(`{"n":12,"procs":3,"ccr":5,"beta":1.0,"baseSeed":42,"taskMult":[1,2,0.5,1,1,1,1,1,1,1,1,1]}`))
	f.Add([]byte(`{"n":1,"procs":1,"baseSeed":0}`))
	f.Add([]byte(`{"n":5,"procs":2,"baseSeed":1,"ccr":1e309}`))
	f.Add([]byte(`{"n":5,"procs":2,"baseSeed":1,"edgeMult":[8.0001]}`))
	f.Add([]byte(`{"n":-3,"procs":2,"baseSeed":1}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		in, err := s.Decode()
		if err != nil {
			// A parsed spec may still fail decode (e.g. edge multiplier
			// length mismatch) — that must be an error, not a panic.
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded spec fails re-validation: %v", err)
		}
		for i, row := range in.W {
			for p, v := range row {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("W[%d][%d] = %g: decoded instance has non-positive or non-finite cost", i, p, v)
				}
			}
		}
		for _, e := range in.G.Edges() {
			if e.Data < 0 || math.IsNaN(e.Data) || math.IsInf(e.Data, 0) {
				t.Fatalf("edge %d->%d data %g non-finite or negative", e.From, e.To, e.Data)
			}
		}
	})
}
