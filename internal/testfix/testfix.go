// Package testfix provides shared test fixtures: the canonical ten-task
// example of the HEFT paper (Topcuoglu, Hariri, Wu; TPDS 2002, Fig. 1) and
// batteries of random instances used by cross-algorithm property tests.
package testfix

import (
	"math/rand"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// Topcuoglu returns the ten-task, three-processor instance from Figure 1
// of the HEFT paper. Known reference values: rank_u(n1) = 108, HEFT
// makespan 80, CPOP makespan 86.
func Topcuoglu() *sched.Instance {
	b := dag.NewBuilder("topcuoglu-fig1")
	// Nominal weights are irrelevant: the cost matrix below is explicit.
	ids := make([]dag.TaskID, 11) // 1-based
	for i := 1; i <= 10; i++ {
		ids[i] = b.AddTask("", 1)
	}
	edges := []struct {
		from, to int
		data     float64
	}{
		{1, 2, 18}, {1, 3, 12}, {1, 4, 9}, {1, 5, 11}, {1, 6, 14},
		{2, 8, 19}, {2, 9, 16},
		{3, 7, 23},
		{4, 8, 27}, {4, 9, 23},
		{5, 9, 13},
		{6, 8, 15},
		{7, 10, 17}, {8, 10, 11}, {9, 10, 13},
	}
	for _, e := range edges {
		b.AddEdge(ids[e.from], ids[e.to], e.data)
	}
	g := b.MustBuild()
	sys := platform.Homogeneous(3, 0, 1) // comm cost = edge data across procs
	w := [][]float64{
		{14, 16, 9},
		{13, 19, 18},
		{11, 13, 19},
		{13, 8, 17},
		{12, 13, 10},
		{13, 16, 9},
		{7, 15, 11},
		{5, 11, 14},
		{18, 12, 20},
		{21, 7, 16},
	}
	in, err := sched.NewInstance(g, sys, w)
	if err != nil {
		panic(err)
	}
	return in
}

// BatteryConfig controls the random-instance battery.
type BatteryConfig struct {
	Trials   int
	MaxTasks int     // tasks drawn from [2, MaxTasks]
	MaxProcs int     // processors drawn from [1, MaxProcs]
	MaxCCR   float64 // CCR drawn from (0, MaxCCR]
	MaxBeta  float64 // heterogeneity drawn from [0, MaxBeta]
	Seed     int64
}

// Battery calls fn with a fresh random instance per trial, covering small
// and medium DAGs, homogeneous and heterogeneous matrices, low and high
// CCR. Instances are deterministic for a fixed seed.
func Battery(cfg BatteryConfig, fn func(trial int, in *sched.Instance)) {
	if cfg.Trials == 0 {
		cfg.Trials = 30
	}
	if cfg.MaxTasks == 0 {
		cfg.MaxTasks = 50
	}
	if cfg.MaxProcs == 0 {
		cfg.MaxProcs = 6
	}
	if cfg.MaxCCR == 0 {
		cfg.MaxCCR = 10
	}
	if cfg.MaxBeta == 0 {
		cfg.MaxBeta = 1.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 2 + rng.Intn(cfg.MaxTasks-1)
		g, err := workload.Random(workload.RandomConfig{
			N:         n,
			Shape:     0.5 + rng.Float64()*1.5,
			OutDegree: 1 + rng.Intn(5),
		}, rng)
		if err != nil {
			panic(err)
		}
		in, err := workload.MakeInstance(g, workload.HetConfig{
			Procs: 1 + rng.Intn(cfg.MaxProcs),
			CCR:   rng.Float64() * cfg.MaxCCR,
			Beta:  rng.Float64() * cfg.MaxBeta,
		}, rng)
		if err != nil {
			panic(err)
		}
		fn(trial, in)
	}
}

// AppGraphs returns one representative instance of every application
// workload, heterogeneous, for integration tests.
func AppGraphs(procs int, seed int64) []*sched.Instance {
	rng := rand.New(rand.NewSource(seed))
	var gs []*dag.Graph
	add := func(g *dag.Graph, err error) {
		if err != nil {
			panic(err)
		}
		gs = append(gs, g)
	}
	add(workload.GaussianElimination(6))
	add(workload.FFT(8))
	add(workload.Laplace(4))
	add(workload.ForkJoin(4, 2))
	add(workload.OutTree(2, 4))
	add(workload.InTree(2, 4))
	add(workload.Pipeline([]int{2, 4, 2}))
	add(workload.Montage(5))
	add(workload.Cholesky(4))
	add(workload.LU(3))
	add(workload.Epigenomics(2, 2))
	add(workload.CyberShake(4))
	add(workload.LIGO(2, 3))
	var out []*sched.Instance
	for _, g := range gs {
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: procs, CCR: 1, Beta: 0.75}, rng)
		if err != nil {
			panic(err)
		}
		out = append(out, in)
	}
	return out
}
