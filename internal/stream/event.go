// Package stream implements the streaming scheduling engine: a DAG that
// arrives as an append-only event log (tasks, edges, clock advances) is
// scheduled continuously, each flush repairing ranks over the dirty set
// and re-placing only the affected suffix of the schedule while work
// that has virtually started stays frozen. Sealing the stream runs the
// configured list scheduler's exact placement semantics over the
// unfrozen remainder, so a sealed stream with a zero frozen horizon is
// bit-identical to static scheduling of the final graph (DESIGN.md
// invariant 13).
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// Op is the event type tag of one log entry.
type Op string

const (
	// OpConfig configures the session: algorithm, platform, batching.
	// When present it must be the first event; the service requires it.
	OpConfig Op = "config"
	// OpAddTask appends a task. Id must equal the next unused id (dense
	// arrival order); costs optionally give the per-processor row,
	// otherwise weight/speed derives it.
	OpAddTask Op = "addTask"
	// OpAddEdge appends a dependency edge between present tasks.
	OpAddEdge Op = "addEdge"
	// OpAdvance moves the virtual clock forward, freezing every
	// placement that starts before the new value. It does not flush.
	OpAdvance Op = "advance"
	// OpFlush forces a re-plan of everything buffered so far.
	OpFlush Op = "flush"
	// OpSeal ends the stream: the final exact re-plan runs and the
	// engine emits its terminal delta.
	OpSeal Op = "seal"
)

// Event is one entry of the append log. It is the NDJSON wire format of
// the streaming endpoint and of schedrun -stream replay files: one JSON
// object per line, unused fields omitted.
type Event struct {
	Op Op `json:"op"`

	// addTask fields. Id is required and must equal the next unused id:
	// an explicit id makes logs self-checking (duplicates and gaps are
	// rejected rather than silently renumbered).
	ID     int       `json:"id,omitempty"`
	Name   string    `json:"name,omitempty"`
	Weight float64   `json:"weight,omitempty"`
	Costs  []float64 `json:"costs,omitempty"`

	// addEdge fields.
	From int     `json:"from,omitempty"`
	To   int     `json:"to,omitempty"`
	Data float64 `json:"data,omitempty"`

	// advance field.
	Clock float64 `json:"clock,omitempty"`

	// config fields (service and replay-file header).
	Algorithm   string  `json:"algorithm,omitempty"`
	Processors  int     `json:"processors,omitempty"`
	Latency     float64 `json:"latency,omitempty"`
	TimePerUnit float64 `json:"timePerUnit,omitempty"`
	BatchSize   int     `json:"batchSize,omitempty"`
	Priority    string  `json:"priority,omitempty"`
	TimeoutMs   int64   `json:"timeoutMs,omitempty"`
	// FinalAssignments asks for the full placement list on the sealed
	// delta, not just the changed suffix.
	FinalAssignments bool `json:"finalAssignments,omitempty"`
}

// DecodeEvent parses one NDJSON line into an Event, validating the op
// tag. Unknown fields are ignored (forward compatibility); an unknown op
// is an error.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("stream: bad event: %w", err)
	}
	switch ev.Op {
	case OpConfig, OpAddTask, OpAddEdge, OpAdvance, OpFlush, OpSeal:
		return ev, nil
	case "":
		return Event{}, fmt.Errorf("stream: event missing op")
	default:
		return Event{}, fmt.Errorf("stream: unknown op %q", ev.Op)
	}
}

// ReadEvents parses a whole NDJSON stream (blank lines skipped).
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxEventBytes)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(trimSpace(b)) == 0 {
			continue
		}
		ev, err := DecodeEvent(b)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

// WriteEvents writes events as NDJSON.
func WriteEvents(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// MaxEventBytes bounds one NDJSON line (a task's cost row is the only
// unbounded field; 1 MiB covers thousands of processors).
const MaxEventBytes = 1 << 20

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// Placement is one (re-)placed assignment reported in a Delta.
type Placement struct {
	Task   int     `json:"task"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// Delta is the schedule update emitted by one flush: what changed, how
// much work the bounded re-plan actually did, and the current makespan.
// The final delta of a stream has Sealed set.
type Delta struct {
	Seq    int     `json:"seq"`
	Clock  float64 `json:"clock"`
	Events int     `json:"events"` // events applied by this batch
	Tasks  int     `json:"tasks"`  // graph size after the batch
	Edges  int     `json:"edges"`
	// Replanned counts tasks whose placement was recomputed (the
	// affected suffix); Frozen counts placements pinned by the clock.
	Replanned int `json:"replanned"`
	Frozen    int `json:"frozen"`
	// RankRepaired counts tasks whose upward rank was recomputed;
	// FullRanks marks a fall-back to the full level-set kernel.
	RankRepaired int  `json:"rankRepaired"`
	FullRanks    bool `json:"fullRanks,omitempty"`
	// FullReplan marks a flush that rebuilt the plan from the frozen
	// prefix (an already-placed task was affected, or baseline mode).
	FullReplan bool    `json:"fullReplan,omitempty"`
	Makespan   float64 `json:"makespan"`
	// Placed lists the assignments that changed in this flush (or all of
	// them on a sealed delta when the config asked for FinalAssignments).
	Placed []Placement `json:"placed,omitempty"`
	Sealed bool        `json:"sealed,omitempty"`
}

// InstanceEvents flattens a static instance into a replayable event log:
// tasks arrive in the given order (ids remapped to dense arrival
// positions), every edge arrives right after its later endpoint, and
// per-processor cost rows ride on the task events so replay reconstructs
// the instance exactly. A trailing seal event ends the log. The arrival
// slice must be a permutation of the instance's task ids but need not
// respect precedence — adversarial (e.g. reverse-topological) arrival
// orders are the point.
func InstanceEvents(in *sched.Instance, arrival []dag.TaskID) ([]Event, error) {
	n := in.N()
	if len(arrival) != n {
		return nil, fmt.Errorf("stream: arrival order has %d of %d tasks", len(arrival), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range arrival {
		if v < 0 || int(v) >= n || pos[v] != -1 {
			return nil, fmt.Errorf("stream: arrival order is not a permutation at %d", i)
		}
		pos[v] = i
	}
	evs := make([]Event, 0, n+in.G.NumEdges()+1)
	for i, v := range arrival {
		costs := make([]float64, in.P())
		for p := range costs {
			costs[p] = in.Cost(v, p)
		}
		evs = append(evs, Event{
			Op:     OpAddTask,
			ID:     i,
			Name:   in.G.Task(v).Name,
			Weight: in.G.Task(v).Weight,
			Costs:  costs,
		})
		// Emit every edge whose later-arriving endpoint is v, remapped to
		// arrival ids, deterministically ordered.
		var ready []dag.Edge
		for _, a := range in.G.Pred(v) {
			if pos[a.To] <= i {
				ready = append(ready, dag.Edge{From: dag.TaskID(pos[a.To]), To: dag.TaskID(i), Data: a.Data})
			}
		}
		for _, a := range in.G.Succ(v) {
			if pos[a.To] < i {
				ready = append(ready, dag.Edge{From: dag.TaskID(i), To: dag.TaskID(pos[a.To]), Data: a.Data})
			}
		}
		sort.Slice(ready, func(x, y int) bool {
			if ready[x].From != ready[y].From {
				return ready[x].From < ready[y].From
			}
			return ready[x].To < ready[y].To
		})
		for _, e := range ready {
			evs = append(evs, Event{Op: OpAddEdge, From: int(e.From), To: int(e.To), Data: e.Data})
		}
	}
	evs = append(evs, Event{Op: OpSeal})
	return evs, nil
}
