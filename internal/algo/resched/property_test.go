package resched_test

import (
	"math"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/resched"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

// TestRepairProperties is the battery-wide contract of the repair
// engine, for every policy and a duplication-heavy algorithm mix:
//
//  1. the repaired schedule is precedence-valid (Validate covers data
//     arrival, overlap and primary uniqueness);
//  2. work that completed or started before the reaction time is never
//     restarted — it reappears at its exact processor and start;
//  3. no copy occupies a crashed processor past its crash instant.
func TestRepairProperties(t *testing.T) {
	const eps = 1e-9
	algs := []algo.Algorithm{listsched.HEFT{}, dup.BTDH{}, core.New()}
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 77}, func(trial int, in *sched.Instance) {
		if in.P() < 2 {
			return // a single-processor platform has no survivors to repair onto
		}
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			fp := sim.SampleCrashes(in.P(), 0.6, s.Makespan(), int64(1000+trial))
			events := resched.CrashEvents(&fp)
			if len(events) == 0 {
				continue
			}
			deadAt := make([]float64, in.P())
			for q := range deadAt {
				deadAt[q] = math.Inf(1)
			}
			for _, ev := range events {
				deadAt[ev.Proc] = math.Min(deadAt[ev.Proc], ev.Time)
			}
			for _, pol := range resched.Policies() {
				r, _, err := resched.React(s, &fp, pol)
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, a.Name(), pol, err)
				}
				if err := r.Validate(); err != nil {
					t.Fatalf("trial %d %s/%s: repaired schedule invalid: %v", trial, a.Name(), pol, err)
				}
				for q := 0; q < in.P(); q++ {
					for _, ra := range r.OnProc(q) {
						if ra.Finish > deadAt[q]+eps {
							t.Fatalf("trial %d %s/%s: task %d on crashed P%d until %g (dead at %g)",
								trial, a.Name(), pol, ra.Task, q, ra.Finish, deadAt[q])
						}
					}
				}
				// Completed work is never restarted: any copy finished
				// before the first event survived every later reaction, so
				// it must appear untouched in the final schedule.
				first := events[0].Time
				for i := 0; i < in.N(); i++ {
					for _, c := range s.Copies(dag.TaskID(i)) {
						if c.Finish > first+eps || c.Finish > deadAt[c.Proc]+eps {
							continue
						}
						found := false
						for _, rc := range r.Copies(dag.TaskID(i)) {
							if rc.Proc == c.Proc && math.Abs(rc.Start-c.Start) < 1e-6 {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("trial %d %s/%s: completed copy of task %d (P%d@%g) restarted or dropped",
								trial, a.Name(), pol, i, c.Proc, c.Start)
						}
					}
				}
			}
		}
	})
}

// TestRepairedScheduleReplays closes the loop: a repaired schedule fed
// back into the simulator under the same surviving-crash plan completes
// every task — the repair genuinely survives the fault it reacted to.
func TestRepairedScheduleReplays(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 15, Seed: 402}, func(trial int, in *sched.Instance) {
		if in.P() < 2 {
			return
		}
		s, err := listsched.HEFT{}.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fp := sim.SampleCrashes(in.P(), 0.5, s.Makespan(), int64(9000+trial))
		if len(fp.Crashes) == 0 {
			return
		}
		r, _, err := resched.React(s, &fp, resched.Default())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := sim.Run(r, sim.Config{Faults: &fp})
		if err != nil {
			t.Fatalf("trial %d: replaying repaired schedule: %v", trial, err)
		}
		if len(rep.Faults.Stranded) != 0 {
			t.Fatalf("trial %d: repaired schedule still strands %v under its own fault plan", trial, rep.Faults.Stranded)
		}
	})
}
