// Package cluster implements clustering-based scheduling: a dominant-
// sequence clustering pass in the style of Yang and Gerasoulis (DSC, TPDS
// 1994) on an unbounded clique of mean-cost processors, followed by
// load-balanced merging of clusters onto the bounded processor set and a
// final rank-ordered insertion scheduling pass ("DSC-LLB").
package cluster

import (
	"sort"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// DSC is the dominant-sequence clustering scheduler.
type DSC struct{}

// Name implements algo.Algorithm.
func (DSC) Name() string { return "DSC" }

// Schedule implements algo.Algorithm.
func (DSC) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	assign := Assignments(in)
	// Final pass: list schedule with processor choice fixed by the
	// clustering, upward-rank order, insertion-based slots, real costs.
	order := algo.OrderDescPrecedence(in.G, sched.RankUpward(in))
	pl := sched.NewPlan(in)
	for _, t := range order {
		s, _ := pl.EFTOn(t, assign[t], true)
		pl.Place(t, assign[t], s)
	}
	return pl.Finalize("DSC"), nil
}

// Clusters runs phase 1 — clustering on an unbounded clique with mean
// costs — and returns the cluster index of every task. A task joins its
// critical parent's cluster (zeroing the same-cluster edges) whenever that
// does not delay its mean-cost start time; otherwise it opens a fresh
// cluster. Tasks inside a cluster execute sequentially in absorption
// order.
func Clusters(in *sched.Instance) []int {
	n := in.N()
	cluster := make([]int, n)
	var clusterReady []float64 // finish time of each cluster's last task
	finish := make([]float64, n)
	nextCluster := 0
	for _, v := range in.G.TopoOrder() {
		// Start time in a fresh cluster: every incoming edge pays mean
		// communication.
		freshStart := 0.0
		critParent := dag.TaskID(-1)
		critArrival := -1.0
		for j, pe := range in.G.Pred(v) {
			arr := finish[pe.To] + in.MeanCommPred(v, j)
			if arr > freshStart {
				freshStart = arr
			}
			if arr > critArrival {
				critArrival, critParent = arr, pe.To
			}
		}
		start := freshStart
		chosen := -1
		if critParent != -1 {
			// Absorb v into the critical parent's cluster: same-cluster
			// edges are zeroed but v queues behind the cluster's last task.
			c := cluster[critParent]
			mergedStart := clusterReady[c]
			for j, pe := range in.G.Pred(v) {
				arr := finish[pe.To]
				if cluster[pe.To] != c {
					arr += in.MeanCommPred(v, j)
				}
				if arr > mergedStart {
					mergedStart = arr
				}
			}
			if mergedStart <= freshStart {
				start, chosen = mergedStart, c
			}
		}
		if chosen == -1 {
			chosen = nextCluster
			nextCluster++
			clusterReady = append(clusterReady, 0)
		}
		cluster[v] = chosen
		finish[v] = start + in.MeanCost(v)
		clusterReady[chosen] = finish[v]
	}
	return cluster
}

// Assignments maps every task to a processor: phase-1 clusters are merged
// onto the bounded processor set in decreasing total work, each onto the
// least-loaded processor.
func Assignments(in *sched.Instance) []int {
	n := in.N()
	cluster := Clusters(in)
	numClusters := 0
	for _, c := range cluster {
		if c+1 > numClusters {
			numClusters = c + 1
		}
	}
	work := make([]float64, numClusters)
	for v := 0; v < n; v++ {
		work[cluster[v]] += in.MeanCost(dag.TaskID(v))
	}
	ids := make([]int, numClusters)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return work[ids[a]] > work[ids[b]] })
	load := make([]float64, in.P())
	clusterProc := make([]int, numClusters)
	for _, c := range ids {
		best := 0
		for p := 1; p < in.P(); p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		clusterProc[c] = best
		load[best] += work[c]
	}
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		assign[v] = clusterProc[cluster[v]]
	}
	return assign
}
