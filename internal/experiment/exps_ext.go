package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/contention"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/search"
	"dagsched/internal/algo/suite"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/sim"
)

// E14 — extended heterogeneous lineup: ILS against the wider 2000s field
// (HCPT, PETS, LMT) in addition to HEFT, across CCR.
func E14() Experiment {
	return Experiment{ID: "E14", Title: "Extended lineup: ILS vs HCPT/PETS/LMT (SLR vs CCR)", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			core.New(),
			listsched.HEFT{},
			listsched.HCPT{},
			listsched.PETS{},
			listsched.LMT{},
		}
		reps := cfg.reps(25)
		ccrs := []float64{0.1, 1, 5, 10}
		if cfg.Quick {
			ccrs = []float64{0.1, 5}
		}
		t := &Table{ID: "E14", Title: "Extended lineup: average SLR vs CCR (n=60, P=8, β=1)",
			Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1401, randGen(randParams{ccr: c}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = fmt.Sprintf("Mean SLR over %d random DAGs per point.", reps)
		return []*Table{t}, nil
	}}
}

// E15 — guided random search vs list scheduling: solution quality and
// scheduling cost of GA/SA/HC against HEFT and ILS.
func E15() Experiment {
	return Experiment{ID: "E15", Title: "Search-based vs list scheduling (quality and cost)", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			listsched.HEFT{},
			core.New(),
			search.HillClimb{Iters: 500},
			search.Anneal{Iters: 800},
			search.Genetic{Pop: 16, Gens: 25},
		}
		reps := cfg.reps(15)
		sizes := []int{20, 40}
		if cfg.Quick {
			sizes = []int{20}
		}
		t1 := &Table{ID: "E15a", Title: "Search vs list: mean SLR (P=8, CCR=1, β=1)",
			Columns: append([]string{"n"}, names(algs)...)}
		t2 := &Table{ID: "E15b", Title: "Search vs list: mean scheduling time (ms)",
			Columns: append([]string{"n"}, names(algs)...)}
		rng := rand.New(rand.NewSource(cfg.Seed + 1500))
		for _, n := range sizes {
			slrs := make([]*metrics.Accumulator, len(algs))
			times := make([]*metrics.Accumulator, len(algs))
			for i := range slrs {
				slrs[i] = &metrics.Accumulator{}
				times[i] = &metrics.Accumulator{}
			}
			for r := 0; r < reps; r++ {
				in, err := randGen(randParams{n: n})(rng)
				if err != nil {
					return nil, err
				}
				for i, a := range algs {
					start := time.Now()
					res, err := metrics.Evaluate(a, in)
					if err != nil {
						return nil, err
					}
					slrs[i].Add(res.SLR)
					times[i].Add(float64(time.Since(start).Microseconds()) / 1000)
				}
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%d", n), slrs))
			t2.Rows = append(t2.Rows, fmtRow(fmt.Sprintf("%d", n), times))
		}
		t1.Notes = "All searches are seeded from HEFT, so they can only improve on it; the question is by how much and at what cost (see E15b)."
		return []*Table{t1, t2}, nil
	}}
}

// E16 — network contention: replayed stretch under the one-port model.
// Scheduling assumes contention-free links; the replay measures how
// optimistic each algorithm's schedule is when transfers serialize.
func E16() Experiment {
	return Experiment{ID: "E16", Title: "One-port contention: replayed stretch", Run: func(cfg Config) ([]*Table, error) {
		algs := append(suite.Heterogeneous(), contention.CHEFT{})
		reps := cfg.reps(25)
		ccrs := []float64{0.1, 1, 5}
		if cfg.Quick {
			ccrs = []float64{1}
		}
		t := &Table{ID: "E16", Title: "Mean one-port contention stretch vs CCR (n=60, P=8, β=1)",
			Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			c := c
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+1600+int64(i), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{ccr: c})(rng)
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(algs))
				for k, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					r, err := sim.Run(s, sim.Config{Contention: true})
					if err != nil {
						return nil, err
					}
					row[k] = r.Stretch
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, len(algs))
			for k := range accs {
				accs[k] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for k, v := range row {
					accs[k].Add(v)
				}
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = "Stretch = one-port replayed makespan / contention-free analytic makespan (1.0 = schedule unaffected by port serialization)."
		return []*Table{t}, nil
	}}
}
