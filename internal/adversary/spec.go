// Package adversary searches the *instance space* for worst cases: it
// retargets the hill-climbing / annealing / genetic neighborhood
// machinery of the schedule-space searchers at problem instances, PISA-
// style (arXiv:2403.07120). A genome (Spec) encodes a perturbable
// instance — random-DAG shape knobs plus per-task and per-edge
// multiplier vectors — and fitness is the makespan ratio between two
// registry algorithms on the decoded instance. Found instances are
// serialized into testdata/adversarial/ and become permanent stress
// fixtures of the golden suite.
package adversary

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// Genome bounds. Decoding rejects anything outside them, so a fuzzer
// (or a malformed spec file) can never panic the harness or blow memory.
const (
	// MaxTasks bounds the task count of a decoded instance.
	MaxTasks = 512
	// MaxProcs bounds the processor count.
	MaxProcs = 64
	// MaxOutDegree bounds the random-DAG out-degree knob.
	MaxOutDegree = 32
	// MaxShape bounds the random-DAG shape knob.
	MaxShape = 8
	// MaxCCR bounds the target communication-to-computation ratio.
	MaxCCR = 64
	// MinMult and MaxMult bound every per-task and per-edge multiplier:
	// the adversary can reweight an instance by up to 64x end to end but
	// can never produce zero, negative or non-finite costs, so every
	// decoded genome stays a valid, schedulable instance (DESIGN.md
	// invariant 11).
	MinMult = 0.125
	MaxMult = 8
)

// Spec is the adversarial instance genome: deterministic base-instance
// knobs (fed to workload.Random + workload.MakeInstance under BaseSeed)
// plus multiplier vectors the search perturbs. TaskMult[i] scales task
// i's whole execution-cost row (preserving the heterogeneity pattern);
// EdgeMult[k] scales the data volume of the k-th edge in Graph.Edges()
// order. Empty vectors mean "all ones".
type Spec struct {
	// N is the task count (required, 1..MaxTasks).
	N int `json:"n"`
	// Shape is the random-DAG shape α (0 = generator default 1).
	Shape float64 `json:"shape,omitempty"`
	// OutDegree is the max out-degree (0 = generator default 4).
	OutDegree int `json:"outDegree,omitempty"`
	// Procs is the processor count (required, 1..MaxProcs).
	Procs int `json:"procs"`
	// CCR is the target communication-to-computation ratio (0 keeps the
	// graph's natural volumes).
	CCR float64 `json:"ccr,omitempty"`
	// Beta is the cost-matrix heterogeneity in [0, 2).
	Beta float64 `json:"beta,omitempty"`
	// BaseSeed drives the base-instance draw.
	BaseSeed int64 `json:"baseSeed"`
	// TaskMult holds per-task cost multipliers (len 0 or N).
	TaskMult []float64 `json:"taskMult,omitempty"`
	// EdgeMult holds per-edge data multipliers (len 0 or edge count).
	EdgeMult []float64 `json:"edgeMult,omitempty"`
}

// inRange reports lo <= v <= hi, rejecting NaN and infinities (NaN
// fails every comparison, so the explicit form is required).
func inRange(v, lo, hi float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= lo && v <= hi
}

// Validate checks every knob and multiplier against the genome bounds.
// It does not check the multiplier vector lengths against the edge
// count — that needs the generated graph and happens in Decode.
func (s *Spec) Validate() error {
	if s.N < 1 || s.N > MaxTasks {
		return fmt.Errorf("adversary: task count %d out of [1,%d]", s.N, MaxTasks)
	}
	if s.Procs < 1 || s.Procs > MaxProcs {
		return fmt.Errorf("adversary: processor count %d out of [1,%d]", s.Procs, MaxProcs)
	}
	if !inRange(s.Shape, 0, MaxShape) {
		return fmt.Errorf("adversary: shape %g out of [0,%d]", s.Shape, MaxShape)
	}
	if s.OutDegree < 0 || s.OutDegree > MaxOutDegree {
		return fmt.Errorf("adversary: out-degree %d out of [0,%d]", s.OutDegree, MaxOutDegree)
	}
	if !inRange(s.CCR, 0, MaxCCR) {
		return fmt.Errorf("adversary: CCR %g out of [0,%d]", s.CCR, MaxCCR)
	}
	if !inRange(s.Beta, 0, 2) || s.Beta >= 2 {
		return fmt.Errorf("adversary: beta %g out of [0,2)", s.Beta)
	}
	if len(s.TaskMult) != 0 && len(s.TaskMult) != s.N {
		return fmt.Errorf("adversary: %d task multipliers for %d tasks", len(s.TaskMult), s.N)
	}
	for i, m := range s.TaskMult {
		if !inRange(m, MinMult, MaxMult) {
			return fmt.Errorf("adversary: task multiplier [%d] = %g out of [%g,%g]", i, m, float64(MinMult), float64(MaxMult))
		}
	}
	for i, m := range s.EdgeMult {
		if !inRange(m, MinMult, MaxMult) {
			return fmt.Errorf("adversary: edge multiplier [%d] = %g out of [%g,%g]", i, m, float64(MinMult), float64(MaxMult))
		}
	}
	return nil
}

// ParseSpec decodes and validates a JSON genome. Unknown fields are
// rejected; any malformed, non-finite or out-of-range input returns an
// error, never a panic.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("adversary: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Decode materializes the genome into a concrete problem instance:
// draw the deterministic base instance from the knobs, then apply the
// multiplier vectors. The same spec always decodes to the bit-identical
// instance.
func (s *Spec) Decode() (*sched.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.BaseSeed))
	g, err := workload.Random(workload.RandomConfig{N: s.N, Shape: s.Shape, OutDegree: s.OutDegree}, rng)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	base, err := workload.MakeInstance(g, workload.HetConfig{Procs: s.Procs, CCR: s.CCR, Beta: s.Beta}, rng)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	return s.apply(base)
}

// apply rebuilds the base instance under the multiplier vectors.
func (s *Spec) apply(base *sched.Instance) (*sched.Instance, error) {
	g := base.G
	if len(s.EdgeMult) != 0 && len(s.EdgeMult) != g.NumEdges() {
		return nil, fmt.Errorf("adversary: %d edge multipliers for %d edges", len(s.EdgeMult), g.NumEdges())
	}
	if len(s.TaskMult) == 0 && len(s.EdgeMult) == 0 {
		return base, nil
	}
	scaled := g
	if len(s.EdgeMult) > 0 {
		b := dag.NewBuilder(g.Name())
		for _, t := range g.Tasks() {
			b.AddTask(t.Name, t.Weight)
		}
		for k, e := range g.Edges() {
			b.AddEdge(e.From, e.To, e.Data*s.EdgeMult[k])
		}
		var err error
		scaled, err = b.Build()
		if err != nil {
			return nil, fmt.Errorf("adversary: %w", err)
		}
	}
	w := base.W
	if len(s.TaskMult) > 0 {
		w = make([][]float64, len(base.W))
		for i, row := range base.W {
			w[i] = make([]float64, len(row))
			for p, v := range row {
				w[i][p] = v * s.TaskMult[i]
			}
		}
	}
	return sched.NewInstance(scaled, base.Sys, w)
}

// materialize fills in explicit all-ones multiplier vectors sized for
// the decoded instance, giving the search its full gene set.
func (s *Spec) materialize(edges int) {
	if len(s.TaskMult) == 0 {
		s.TaskMult = make([]float64, s.N)
		for i := range s.TaskMult {
			s.TaskMult[i] = 1
		}
	}
	if len(s.EdgeMult) == 0 {
		s.EdgeMult = make([]float64, edges)
		for i := range s.EdgeMult {
			s.EdgeMult[i] = 1
		}
	}
}

// clone deep-copies the genome.
func (s Spec) clone() Spec {
	s.TaskMult = append([]float64(nil), s.TaskMult...)
	s.EdgeMult = append([]float64(nil), s.EdgeMult...)
	return s
}
