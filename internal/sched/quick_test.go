package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// slotCase describes a randomized timeline plus a slot query, drawn by
// testing/quick.
type slotCase struct {
	Seed  int64
	Busy  uint8 // number of pre-placed busy intervals, 0..12
	Ready float64
	Dur   float64
}

// Generate implements quick.Generator.
func (slotCase) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(slotCase{
		Seed:  r.Int63(),
		Busy:  uint8(r.Intn(13)),
		Ready: r.Float64() * 50,
		Dur:   0.1 + r.Float64()*20,
	})
}

// buildTimeline places Busy independent tasks back to back with random
// gaps on processor 0 and returns the plan plus the busy intervals.
func (sc slotCase) buildTimeline() (*Plan, [][2]float64) {
	rng := rand.New(rand.NewSource(sc.Seed))
	n := int(sc.Busy) + 1
	b := dag.NewBuilder("slots")
	for i := 0; i < n; i++ {
		b.AddTask("", 1) // weights replaced via explicit matrix below
	}
	g := b.MustBuild()
	w := make([][]float64, n)
	durs := make([]float64, n)
	for i := range w {
		durs[i] = 0.5 + rng.Float64()*8
		w[i] = []float64{durs[i]}
	}
	in, err := NewInstance(g, platform.Homogeneous(1, 0, 1), w)
	if err != nil {
		panic(err)
	}
	pl := NewPlan(in)
	var busy [][2]float64
	cursor := 0.0
	for i := 0; i < int(sc.Busy); i++ {
		cursor += rng.Float64() * 6 // random gap
		pl.Place(dag.TaskID(i), 0, cursor)
		busy = append(busy, [2]float64{cursor, cursor + durs[i]})
		cursor += durs[i]
	}
	return pl, busy
}

// Property: FindSlot returns a feasible start — at/after ready, not
// overlapping any busy interval — and with insertion enabled it returns
// the EARLIEST such start.
func TestQuickFindSlotCorrectAndEarliest(t *testing.T) {
	f := func(sc slotCase) bool {
		pl, busy := sc.buildTimeline()
		start := pl.FindSlot(0, sc.Ready, sc.Dur, true)
		if start < sc.Ready-1e-9 {
			return false
		}
		overlaps := func(s float64) bool {
			for _, iv := range busy {
				if s < iv[1]-1e-9 && s+sc.Dur > iv[0]+1e-9 {
					return true
				}
			}
			return false
		}
		if overlaps(start) {
			return false
		}
		// Earliest: no feasible start strictly earlier. Candidate starts
		// are ready and every busy-interval end.
		cands := []float64{sc.Ready}
		for _, iv := range busy {
			if iv[1] > sc.Ready {
				cands = append(cands, iv[1])
			}
		}
		for _, c := range cands {
			if c < start-1e-9 && !overlaps(c) {
				return false // found an earlier feasible slot
			}
		}
		// Non-insertion appends at the end: start >= every busy finish.
		ni := pl.FindSlot(0, sc.Ready, sc.Dur, false)
		for _, iv := range busy {
			if ni < iv[1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FindSlot is monotone in the requested duration — a longer
// interval never starts earlier.
func TestQuickFindSlotMonotoneInDuration(t *testing.T) {
	f := func(sc slotCase, extra float64) bool {
		pl, _ := sc.buildTimeline()
		grow := math.Abs(extra)
		if math.IsNaN(grow) || math.IsInf(grow, 0) {
			grow = 1
		}
		s1 := pl.FindSlot(0, sc.Ready, sc.Dur, true)
		s2 := pl.FindSlot(0, sc.Ready, sc.Dur+grow, true)
		return s2 >= s1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy EFT scheduling of random instances always validates
// and the makespan lies between the critical-path bound and the serial
// bound.
func TestQuickGreedyScheduleBounds(t *testing.T) {
	type instCase struct {
		Seed  int64
		N     uint8
		Procs uint8
	}
	gen := func(r *rand.Rand) instCase {
		return instCase{Seed: r.Int63(), N: uint8(2 + r.Intn(30)), Procs: uint8(1 + r.Intn(5))}
	}
	build := func(rng *rand.Rand, n, procs int) *Instance {
		b := dag.NewBuilder("quick")
		for i := 0; i < n; i++ {
			b.AddTask("", 1+rng.Float64()*9)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					b.AddEdge(dag.TaskID(i), dag.TaskID(j), rng.Float64()*10)
				}
			}
		}
		in, err := Unrelated(b.MustBuild(), platform.Homogeneous(procs, 0.1, 1), 0.8, rng)
		if err != nil {
			panic(err)
		}
		return in
	}
	f := func(c instCase) bool {
		rng := rand.New(rand.NewSource(c.Seed))
		in := build(rng, int(c.N), int(c.Procs))
		pl := NewPlan(in)
		for _, v := range in.G.TopoOrder() {
			p, s, _ := pl.BestEFT(v, true)
			pl.Place(v, p, s)
		}
		sch := pl.Finalize("greedy")
		if sch.Validate() != nil {
			return false
		}
		// Sound upper bound: every task adds at most its maximum cost plus
		// its maximum incoming communication to the running makespan
		// (greedy EFT never waits longer than the slowest arrival).
		bound := 0.0
		for i := 0; i < in.N(); i++ {
			maxC := 0.0
			for p := 0; p < in.P(); p++ {
				if in.Cost(dag.TaskID(i), p) > maxC {
					maxC = in.Cost(dag.TaskID(i), p)
				}
			}
			bound += maxC
		}
		for _, e := range in.G.Edges() {
			maxComm := 0.0
			for p := 0; p < in.P(); p++ {
				for q := 0; q < in.P(); q++ {
					if c := in.Sys.CommCost(p, q, e.Data); c > maxComm {
						maxComm = c
					}
				}
			}
			bound += maxComm
		}
		return sch.Makespan() >= in.CPMin()-1e-6 && sch.Makespan() <= bound+1e-6
	}
	cfg := &quick.Config{MaxCount: 120, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(gen(r))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
