package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by Client.Schedule when the
// per-algorithm circuit breaker is open: recent requests for that
// algorithm kept failing, so the client fails fast instead of hammering
// a struggling server. errors.Is recognises it.
var ErrCircuitOpen = errors.New("service: circuit open")

// RetryPolicy configures the client's transient-failure handling. The
// zero value of each field selects its default.
type RetryPolicy struct {
	// MaxAttempts bounds tries per call, first attempt included
	// (default 3). 1 disables retrying.
	MaxAttempts int
	// BaseBackoff is the first retry delay; each further retry doubles
	// it up to MaxBackoff, and every delay is jittered to [50%,100%] of
	// its nominal value (defaults 50ms / 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold opens an algorithm's circuit after that many
	// consecutive server-side failures (default 5); BreakerCooldown is
	// how long it stays open before one trial request may probe the
	// server again (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	return p
}

// StatusError is a non-2xx response. It formats exactly as the error
// string older client versions produced, so callers matching on the
// text keep working while new callers can switch on Status.
type StatusError struct {
	Method  string
	Path    string
	Status  int
	Message string // server-provided error body, may be empty
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// breaker is one algorithm's circuit state (guarded by Client.mu).
type breaker struct {
	failures  int
	openUntil time.Time
}

// Client is a minimal schedd API client with jittered-backoff retries
// on transient failures (503, transport errors) and a per-algorithm
// circuit breaker on Schedule.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes retries and the circuit breaker; nil uses defaults.
	Retry *RetryPolicy

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*breaker
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) policy() RetryPolicy {
	if c.Retry != nil {
		return c.Retry.withDefaults()
	}
	return RetryPolicy{}.withDefaults()
}

// jitter maps a nominal backoff to a uniform draw in [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// retryable reports whether err is worth another attempt: a 503 (queue
// full, graceful shutdown) or a transport failure (connection reset,
// refused). Context cancellation and client-side errors (4xx) are not.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == http.StatusServiceUnavailable
	}
	// Anything else that survived request construction is a transport
	// error (net.OpError, unexpected EOF, ...).
	return true
}

// attempt performs one HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Method: method, Path: path, Status: resp.StatusCode}
		var e errorJSON
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			se.Message = e.Error
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
	}
	pol := c.policy()
	backoff := pol.BaseBackoff
	var err error
	for att := 1; ; att++ {
		err = c.attempt(ctx, method, path, data, out)
		if err == nil || att >= pol.MaxAttempts || !retryable(ctx, err) {
			return err
		}
		t := time.NewTimer(c.jitter(backoff))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// breakerAllow checks the algorithm's circuit; an open circuit past its
// cooldown admits one half-open trial request.
func (c *Client) breakerAllow(alg string, pol RetryPolicy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[alg]
	if b == nil || b.failures < pol.BreakerThreshold {
		return nil
	}
	if time.Now().Before(b.openUntil) {
		return fmt.Errorf("%w for algorithm %q (retry after %s)", ErrCircuitOpen, alg, time.Until(b.openUntil).Round(time.Millisecond))
	}
	return nil // half-open: let one probe through
}

// breakerObserve feeds a Schedule outcome into the algorithm's circuit.
// Server-side failures (5xx, transport) count against the breaker; a
// success or a client-side rejection (4xx — the server is healthy)
// closes it.
func (c *Client) breakerObserve(alg string, pol RetryPolicy, err error) {
	serverFault := err != nil
	var se *StatusError
	if errors.As(err, &se) && se.Status < 500 {
		serverFault = false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.breakers == nil {
		c.breakers = make(map[string]*breaker)
	}
	b := c.breakers[alg]
	if b == nil {
		b = &breaker{}
		c.breakers[alg] = b
	}
	if !serverFault {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= pol.BreakerThreshold {
		b.openUntil = time.Now().Add(pol.BreakerCooldown)
	}
}

// Schedule submits one scheduling request. Transient failures are
// retried per the client's RetryPolicy; an algorithm whose requests
// keep failing server-side trips a circuit breaker and fails fast with
// ErrCircuitOpen until the cooldown elapses.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	pol := c.policy()
	if err := c.breakerAllow(req.Algorithm, pol); err != nil {
		return nil, err
	}
	var out ScheduleResponse
	err := c.doJSON(ctx, http.MethodPost, "/v1/schedule", req, &out)
	c.breakerObserve(req.Algorithm, pol, err)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var out MetricsSnapshot
	if err := c.doJSON(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the server's algorithm registry.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["algorithms"], nil
}

// CommModels lists the communication-model kinds the server accepts in
// ScheduleRequest.CommModel.
func (c *Client) CommModels(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["commModels"], nil
}
