package dag

import "fmt"

// TransitiveReduction returns a copy of the graph with every edge removed
// whose endpoints remain connected through a longer path. Task weights and
// the data volumes of surviving edges are preserved. Scheduling a reduced
// graph is NOT equivalent in general — a removed edge's communication
// disappears — so this is an analysis tool, not a preprocessing step.
func (g *Graph) TransitiveReduction() *Graph {
	n := g.Len()
	// reach[v] = bitset of tasks reachable from v via >= 1 edge.
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	set := func(bs []uint64, i TaskID) { bs[i/64] |= 1 << (uint(i) % 64) }
	get := func(bs []uint64, i TaskID) bool { return bs[i/64]&(1<<(uint(i)%64)) != 0 }
	for _, v := range g.ReverseTopoOrder() {
		for _, a := range g.Succ(v) {
			set(reach[v], a.To)
			for w := 0; w < words; w++ {
				reach[v][w] |= reach[a.To][w]
			}
		}
	}
	b := NewBuilder(g.name)
	for _, t := range g.tasks {
		b.AddTask(t.Name, t.Weight)
	}
	for i := 0; i < n; i++ {
		for _, a := range g.Succ(TaskID(i)) {
			// Redundant iff some other successor reaches a.To.
			redundant := false
			for _, other := range g.Succ(TaskID(i)) {
				if other.To != a.To && get(reach[other.To], a.To) {
					redundant = true
					break
				}
			}
			if !redundant {
				b.AddEdge(TaskID(i), a.To, a.Data)
			}
		}
	}
	return b.MustBuild()
}

// Stats summarizes the structural properties scheduling behaviour depends
// on.
type Stats struct {
	Tasks, Edges     int
	Height           int     // levels on the longest path
	MaxWidth         int     // widest level
	AvgWidth         float64 // tasks / height
	Density          float64 // edges / possible forward pairs
	MaxInDeg         int
	MaxOutDeg        int
	TotalWeight      float64
	TotalData        float64
	CPLength         float64 // weight-only critical path
	Parallelism      float64 // total weight / CP length: avg exploitable parallelism
	CommToCompByUnit float64 // total data / total weight
}

// ComputeStats returns the structural statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Tasks:       g.Len(),
		Edges:       g.NumEdges(),
		Height:      g.Height(),
		TotalWeight: g.TotalWeight(),
		TotalData:   g.TotalData(),
		CPLength:    g.CriticalPathLength(false),
	}
	widths := make(map[int]int)
	for _, lv := range g.Levels() {
		widths[lv]++
	}
	for _, w := range widths {
		if w > s.MaxWidth {
			s.MaxWidth = w
		}
	}
	if s.Height > 0 {
		s.AvgWidth = float64(s.Tasks) / float64(s.Height)
	}
	if n := s.Tasks; n > 1 {
		s.Density = float64(s.Edges) / float64(n*(n-1)/2)
	}
	for i := 0; i < g.Len(); i++ {
		if d := g.InDegree(TaskID(i)); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
		if d := g.OutDegree(TaskID(i)); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
	}
	if s.CPLength > 0 {
		s.Parallelism = s.TotalWeight / s.CPLength
	}
	if s.TotalWeight > 0 {
		s.CommToCompByUnit = s.TotalData / s.TotalWeight
	}
	return s
}

// String renders the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d edges=%d height=%d maxWidth=%d density=%.3f parallelism=%.2f",
		s.Tasks, s.Edges, s.Height, s.MaxWidth, s.Density, s.Parallelism)
}
