// Package search implements guided-random-search schedulers — a genetic
// algorithm, simulated annealing and steepest hill climbing — the
// meta-heuristic baselines this literature compares list schedulers
// against. All three share one solution encoding: a task-priority vector
// (decoded precedence-safely through a ready list) plus an explicit
// processor assignment, evaluated by insertion-based placement.
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// solution is one point of the search space.
type solution struct {
	prio   []float64 // decoded by "highest ready priority first"
	assign []int     // processor per task
}

func (s solution) clone() solution {
	return solution{
		prio:   append([]float64(nil), s.prio...),
		assign: append([]int(nil), s.assign...),
	}
}

// decode builds the plan a solution encodes. Any priority vector decodes
// to a valid schedule: precedence is enforced by releasing tasks only
// once every predecessor is placed. The ready set is a binary max-heap on
// (priority, lower id on ties) — the same task a linear scan of the
// ascending-id ready list with a strict > comparison would pick — so
// decode costs O(n log n) instead of O(n · ready-width) and the search
// heuristics keep their exact schedules.
func decode(in *sched.Instance, s solution) *sched.Plan {
	n := in.N()
	pl := sched.NewPlan(in)
	pending := make([]int, n)
	heap := make([]dag.TaskID, 0, n)
	less := func(a, b dag.TaskID) bool {
		if s.prio[a] != s.prio[b] {
			return s.prio[a] > s.prio[b]
		}
		return a < b
	}
	push := func(v dag.TaskID) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			par := (i - 1) / 2
			if !less(heap[i], heap[par]) {
				break
			}
			heap[i], heap[par] = heap[par], heap[i]
			i = par
		}
	}
	pop := func() dag.TaskID {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[i]) {
				break
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
		return top
	}
	for i := 0; i < n; i++ {
		pending[i] = in.G.InDegree(dag.TaskID(i))
		if pending[i] == 0 {
			push(dag.TaskID(i))
		}
	}
	for len(heap) > 0 {
		pick := pop()
		start, _ := pl.EFTOn(pick, s.assign[pick], true)
		pl.Place(pick, s.assign[pick], start)
		for _, a := range in.G.Succ(pick) {
			pending[a.To]--
			if pending[a.To] == 0 {
				push(a.To)
			}
		}
	}
	return pl
}

// makespan evaluates a solution.
func makespan(in *sched.Instance, s solution) float64 {
	return decode(in, s).Makespan()
}

// seedSolution derives the starting point from HEFT: upward-rank
// priorities and HEFT's processor assignment.
func seedSolution(in *sched.Instance) (solution, error) {
	heft, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		return solution{}, err
	}
	s := solution{
		prio:   sched.RankUpward(in),
		assign: make([]int, in.N()),
	}
	for i := 0; i < in.N(); i++ {
		s.assign[i] = heft.Primary(dag.TaskID(i)).Proc
	}
	return s, nil
}

// mutate applies one random move in place: with probability half a
// processor reassignment, otherwise a priority swap between two tasks.
func mutate(s *solution, rng *rand.Rand, procs int) {
	n := len(s.prio)
	if rng.Intn(2) == 0 && procs > 1 {
		t := rng.Intn(n)
		p := rng.Intn(procs)
		for p == s.assign[t] {
			p = rng.Intn(procs)
		}
		s.assign[t] = p
	} else {
		a, b := rng.Intn(n), rng.Intn(n)
		s.prio[a], s.prio[b] = s.prio[b], s.prio[a]
	}
}

// HillClimb is steepest-descent local search from the HEFT seed: random
// moves are accepted only when they strictly shorten the makespan.
type HillClimb struct {
	// Iters is the number of candidate moves (default 1000).
	Iters int
	// Seed drives the move sequence (schedules are deterministic per seed).
	Seed int64
}

// Name implements algo.Algorithm.
func (HillClimb) Name() string { return "HC" }

// Schedule implements algo.Algorithm.
func (h HillClimb) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return h.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler: each candidate move costs
// a full decode, so the loop polls the context every iteration.
func (h HillClimb) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	iters := h.Iters
	if iters <= 0 {
		iters = 1000
	}
	rng := rand.New(rand.NewSource(h.Seed + 1))
	cur, err := seedSolution(in)
	if err != nil {
		return nil, err
	}
	curMS := makespan(in, cur)
	check := algo.NewCheckpoint(ctx, 1)
	for i := 0; i < iters; i++ {
		if err := check.Check(); err != nil {
			return nil, fmt.Errorf("HC: %w", err)
		}
		cand := cur.clone()
		mutate(&cand, rng, in.P())
		if ms := makespan(in, cand); ms < curMS-1e-12 {
			cur, curMS = cand, ms
		}
	}
	return decode(in, cur).Finalize("HC"), nil
}

// Anneal is simulated annealing over the same neighborhood with a
// geometric cooling schedule.
type Anneal struct {
	// Iters is the number of proposed moves (default 2000).
	Iters int
	// T0 is the initial temperature as a fraction of the seed makespan
	// (default 0.1); Alpha the geometric cooling factor (default such
	// that the final temperature is ~1e-3 of T0).
	T0, Alpha float64
	// Seed drives the stochastic acceptance.
	Seed int64
}

// Name implements algo.Algorithm.
func (Anneal) Name() string { return "SA" }

// Schedule implements algo.Algorithm.
func (a Anneal) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return a.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler; see HillClimb.
func (a Anneal) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	iters := a.Iters
	if iters <= 0 {
		iters = 2000
	}
	rng := rand.New(rand.NewSource(a.Seed + 2))
	cur, err := seedSolution(in)
	if err != nil {
		return nil, err
	}
	curMS := makespan(in, cur)
	best, bestMS := cur.clone(), curMS
	t0 := a.T0
	if t0 <= 0 {
		t0 = 0.1
	}
	temp := t0 * curMS
	alpha := a.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = math.Pow(1e-3, 1/float64(iters))
	}
	check := algo.NewCheckpoint(ctx, 1)
	for i := 0; i < iters; i++ {
		if err := check.Check(); err != nil {
			return nil, fmt.Errorf("SA: %w", err)
		}
		cand := cur.clone()
		mutate(&cand, rng, in.P())
		ms := makespan(in, cand)
		if ms < curMS || (temp > 0 && rng.Float64() < math.Exp((curMS-ms)/temp)) {
			cur, curMS = cand, ms
			if ms < bestMS {
				best, bestMS = cand.clone(), ms
			}
		}
		temp *= alpha
	}
	return decode(in, best).Finalize("SA"), nil
}

// Genetic is a steady-state genetic algorithm: tournament selection,
// uniform crossover of assignments and priorities, per-gene mutation,
// elitism of one.
type Genetic struct {
	// Pop is the population size (default 20), Gens the generation count
	// (default 50).
	Pop, Gens int
	// MutRate is the per-offspring mutation probability (default 0.3).
	MutRate float64
	// Seed drives the whole evolution.
	Seed int64
}

// Name implements algo.Algorithm.
func (Genetic) Name() string { return "GA" }

// Schedule implements algo.Algorithm.
func (g Genetic) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return g.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler: the context is polled per
// offspring (each costs a decode), aborting mid-generation.
func (g Genetic) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	pop := g.Pop
	if pop <= 0 {
		pop = 20
	}
	gens := g.Gens
	if gens <= 0 {
		gens = 50
	}
	mutRate := g.MutRate
	if mutRate <= 0 {
		mutRate = 0.3
	}
	rng := rand.New(rand.NewSource(g.Seed + 3))
	seed, err := seedSolution(in)
	if err != nil {
		return nil, err
	}
	// Initial population: the HEFT seed plus mutated copies.
	people := make([]solution, pop)
	fitness := make([]float64, pop)
	people[0] = seed
	for i := 1; i < pop; i++ {
		s := seed.clone()
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutate(&s, rng, in.P())
		}
		people[i] = s
	}
	for i := range people {
		fitness[i] = makespan(in, people[i])
	}
	tournament := func() int {
		a, b := rng.Intn(pop), rng.Intn(pop)
		if fitness[a] <= fitness[b] {
			return a
		}
		return b
	}
	bestIdx := func() int {
		best := 0
		for i := 1; i < pop; i++ {
			if fitness[i] < fitness[best] {
				best = i
			}
		}
		return best
	}
	check := algo.NewCheckpoint(ctx, 1)
	for gen := 0; gen < gens; gen++ {
		next := make([]solution, 0, pop)
		nextFit := make([]float64, 0, pop)
		// Elitism.
		e := bestIdx()
		next = append(next, people[e].clone())
		nextFit = append(nextFit, fitness[e])
		for len(next) < pop {
			if err := check.Check(); err != nil {
				return nil, fmt.Errorf("GA: %w", err)
			}
			ma, pa := people[tournament()], people[tournament()]
			child := ma.clone()
			for i := range child.assign {
				if rng.Intn(2) == 0 {
					child.assign[i] = pa.assign[i]
				}
				if rng.Intn(2) == 0 {
					child.prio[i] = pa.prio[i]
				}
			}
			if rng.Float64() < mutRate {
				mutate(&child, rng, in.P())
			}
			next = append(next, child)
			nextFit = append(nextFit, makespan(in, child))
		}
		people, fitness = next, nextFit
	}
	return decode(in, people[bestIdx()]).Finalize("GA"), nil
}
