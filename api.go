package dagsched

import (
	"context"
	"io"
	"math/rand"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/exact"
	"dagsched/internal/algo/repair"
	"dagsched/internal/algo/resched"
	"dagsched/internal/algo/suite"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/experiment"
	"dagsched/internal/export"
	"dagsched/internal/metrics"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/service"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// Task graphs.
type (
	// Graph is an immutable weighted task DAG.
	Graph = dag.Graph
	// GraphBuilder accumulates tasks and edges and Builds a Graph.
	GraphBuilder = dag.Builder
	// TaskID identifies a task within one Graph.
	TaskID = dag.TaskID
	// Task is one node of a task graph.
	Task = dag.Task
	// Edge is one dependency with its data volume.
	Edge = dag.Edge
)

// NewGraph returns a builder for a task graph with the given name.
func NewGraph(name string) *GraphBuilder { return dag.NewBuilder(name) }

// ReadGraphJSON reads a graph written by Graph.WriteJSON.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return dag.ReadJSON(r) }

// Platforms.
type (
	// System describes the target machine: processors plus network.
	System = platform.System
	// SystemConfig configures NewSystem.
	SystemConfig = platform.Config
	// Processor is one processing element.
	Processor = platform.Processor
)

// NewSystem validates cfg and builds a System.
func NewSystem(cfg SystemConfig) (*System, error) { return platform.New(cfg) }

// Communication models.
type (
	// CommModel prices and (when contended) serializes inter-processor
	// transfers; see CommModelKinds for the registered implementations.
	CommModel = platform.CommModel
	// SharedLinkConfig maps processors onto shared buses for the
	// "shared-link" model.
	SharedLinkConfig = platform.SharedLinkConfig
)

// CommModelKinds lists the registered communication-model kinds:
// "contention-free", "one-port" and "shared-link".
func CommModelKinds() []string { return platform.ModelKinds() }

// CommModelByKind builds the named communication model for a system
// (shared-link defaults to a single unit-bandwidth bus; use
// NewSharedLinkModel for explicit topologies).
func CommModelByKind(kind string, sys *System) (CommModel, error) {
	return platform.ModelByKind(kind, sys)
}

// NewSharedLinkModel builds a shared-link model with an explicit
// processor-to-bus mapping and per-bus bandwidths.
func NewSharedLinkModel(sys *System, cfg SharedLinkConfig) (CommModel, error) {
	return platform.NewSharedLink(sys, cfg)
}

// WithCommModel returns a copy of the instance bound to the model: every
// registry algorithm scheduled on the result prices — and, under a
// contended model, reserves — communication through it. A nil or
// contention-free model reproduces the classic matrix costs bit for bit.
func WithCommModel(in *Instance, m CommModel) *Instance { return in.WithComm(m) }

// ContentionAware wraps any algorithm so it schedules under a contended
// communication model (kind defaults to "one-port"), the generalization
// of C-HEFT to the whole registry. The returned schedules are named
// "C-<inner name>".
func ContentionAware(a Algorithm, kind string) Algorithm {
	return algo.CommAware{Inner: a, Kind: kind}
}

// HomogeneousSystem returns p identical unit-speed processors with the
// given per-message latency and per-data-unit transfer time on all links.
func HomogeneousSystem(p int, latency, timePerUnit float64) *System {
	return platform.Homogeneous(p, latency, timePerUnit)
}

// SystemGenConfig parameterizes random system generation: processor-speed
// heterogeneity plus per-link startup and transfer-rate spreads that emit
// non-uniform link matrices.
type SystemGenConfig = platform.GenConfig

// GenerateSystem draws a random system from cfg, deterministically per
// seed; zero spreads consume nothing from rng.
func GenerateSystem(cfg SystemGenConfig, rng *rand.Rand) (*System, error) {
	return platform.Generate(cfg, rng)
}

// Problem instances.
type (
	// Instance is a scheduling problem: graph × system × cost matrix.
	Instance = sched.Instance
	// Schedule is a validated scheduling result.
	Schedule = sched.Schedule
	// Assignment is one task copy placed on a processor.
	Assignment = sched.Assignment
)

// NewInstance builds an instance from an explicit cost matrix
// W[task][processor].
func NewInstance(g *Graph, sys *System, w [][]float64) (*Instance, error) {
	return sched.NewInstance(g, sys, w)
}

// ConsistentInstance derives costs from nominal weights and processor
// speeds (related machines).
func ConsistentInstance(g *Graph, sys *System) *Instance { return sched.Consistent(g, sys) }

// UnrelatedInstance draws an inconsistent-heterogeneity cost matrix with
// spread beta ∈ [0, 2) around each task's nominal weight.
func UnrelatedInstance(g *Graph, sys *System, beta float64, rng *rand.Rand) (*Instance, error) {
	return sched.Unrelated(g, sys, beta, rng)
}

// ReadInstanceJSON reads a full problem instance (graph, system, cost
// matrix) written by Instance.WriteJSON, for bit-for-bit reproducible
// scheduling runs.
func ReadInstanceJSON(r io.Reader) (*Instance, error) { return sched.ReadInstanceJSON(r) }

// Algorithms.
type (
	// Algorithm maps an instance to a schedule.
	Algorithm = algo.Algorithm
	// CtxScheduler is implemented by algorithms whose hot loop carries
	// cancellation checkpoints (ILS, HEFT and the search schedulers).
	CtxScheduler = algo.CtxScheduler
	// ILSOptions selects the mechanisms of the ILS scheduler.
	ILSOptions = core.Options
)

// ScheduleContext runs the algorithm under ctx. Algorithms implementing
// CtxScheduler abort mid-schedule once the context is canceled or its
// deadline passes; for the rest the context is checked before and after
// the run. Use this instead of Algorithm.Schedule whenever scheduling
// time must be bounded.
func ScheduleContext(ctx context.Context, a Algorithm, in *Instance) (*Schedule, error) {
	return algo.ScheduleContext(ctx, a, in)
}

// ILS returns the full improved list scheduler (σ-rank + lookahead +
// duplication), the paper's contribution.
func ILS() Algorithm { return core.New() }

// ILSVariant returns an ILS with explicit options under a custom name,
// for ablation studies.
func ILSVariant(name string, opts ILSOptions) Algorithm { return core.Variant(name, opts) }

// Algorithms returns every heuristic in the registry.
func Algorithms() []Algorithm { return suite.All() }

// AlgorithmByName looks a heuristic up by display name (see
// AlgorithmNames).
func AlgorithmByName(name string) (Algorithm, error) { return suite.ByName(name) }

// AlgorithmNames returns the sorted registry names.
func AlgorithmNames() []string { return suite.Names() }

// HeterogeneousLineup returns the algorithms conventionally compared on
// heterogeneous systems; HomogeneousLineup the homogeneous counterpart.
func HeterogeneousLineup() []Algorithm { return suite.Heterogeneous() }

// HomogeneousLineup returns the classic homogeneous-system competitors.
func HomogeneousLineup() []Algorithm { return suite.Homogeneous() }

// SearchLineup returns the guided-random-search schedulers (hill
// climbing, simulated annealing, genetic algorithm). They trade orders of
// magnitude more scheduling time for small makespan gains and are
// therefore kept out of Algorithms().
func SearchLineup() []Algorithm { return suite.Search() }

// Optimal schedules the instance exactly by branch and bound; exponential,
// intended for instances of roughly a dozen tasks. The error is
// exact.ErrBudget when the search budget ran out (the schedule returned
// alongside is the best found).
func Optimal(in *Instance) (*Schedule, error) { return exact.BnB{}.Schedule(in) }

// Fail-stop repair.
type (
	// Failure is a fail-stop event: processor Proc dies at Time.
	Failure = repair.Failure
	// RepairImpact summarizes what a failure costs after repair.
	RepairImpact = repair.Impact
)

// Repair reschedules a schedule around a processor failure, preserving
// every surviving placement and moving lost work to the remaining
// processors.
func Repair(s *Schedule, f Failure) (*Schedule, error) { return repair.Repair(s, f) }

// AssessFailure repairs the schedule and reports the makespan impact and
// how many tasks were lost or moved.
func AssessFailure(s *Schedule, f Failure) (*Schedule, RepairImpact, error) {
	return repair.Assess(s, f)
}

// Metrics.
type (
	// Result bundles the evaluation measures of one run.
	Result = metrics.Result
	// Accumulator aggregates summary statistics of a sample stream.
	Accumulator = metrics.Accumulator
)

// Evaluate runs the algorithm, validates the schedule and returns its
// measures (makespan, SLR, speedup, efficiency, runtime).
func Evaluate(a Algorithm, in *Instance) (Result, error) { return metrics.Evaluate(a, in) }

// SLR returns the schedule length ratio of a schedule.
func SLR(s *Schedule) float64 { return metrics.SLR(s) }

// Speedup returns the sequential-over-parallel speedup of a schedule.
func Speedup(s *Schedule) float64 { return metrics.Speedup(s) }

// Efficiency returns Speedup divided by the processor count.
func Efficiency(s *Schedule) float64 { return metrics.Efficiency(s) }

// ScheduleAnalysis reports per-task slack, the schedule's critical set
// and per-processor idle time.
type ScheduleAnalysis = sched.Analysis

// Analyze computes slack, critical tasks and idle time of a schedule.
func Analyze(s *Schedule) ScheduleAnalysis { return sched.Analyze(s) }

// Workloads.
type (
	// RandomDAGConfig parameterizes the layered random-DAG generator.
	RandomDAGConfig = workload.RandomConfig
	// WorkloadConfig turns a graph into a heterogeneous instance.
	WorkloadConfig = workload.HetConfig
)

// RandomDAG generates a Topcuoglu-parameterized layered random DAG.
func RandomDAG(cfg RandomDAGConfig, rng *rand.Rand) (*Graph, error) {
	return workload.Random(cfg, rng)
}

// DAXOptions tunes ReadDAX.
type DAXOptions = workload.DAXOptions

// ReadDAX imports a Pegasus DAX workflow description (the format of the
// public scientific-workflow trace archives) as a task graph.
func ReadDAX(r io.Reader, opts DAXOptions) (*Graph, error) { return workload.ReadDAX(r, opts) }

// MakeInstance scales a graph's communication to a target CCR and draws a
// heterogeneous cost matrix.
func MakeInstance(g *Graph, cfg WorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.MakeInstance(g, cfg, rng)
}

// GaussianEliminationDAG returns the classic Gaussian-elimination task
// graph for an m×m matrix.
func GaussianEliminationDAG(m int) (*Graph, error) { return workload.GaussianElimination(m) }

// FFTDAG returns the n-point FFT butterfly task graph (n a power of two).
func FFTDAG(n int) (*Graph, error) { return workload.FFT(n) }

// LaplaceDAG returns the g×g wavefront task graph of a Laplace sweep.
func LaplaceDAG(g int) (*Graph, error) { return workload.Laplace(g) }

// ForkJoinDAG returns a fork-join graph of the given branch count and
// per-branch chain length.
func ForkJoinDAG(branches, stages int) (*Graph, error) { return workload.ForkJoin(branches, stages) }

// PipelineDAG returns a layered pipeline with the given stage widths and
// all-to-all shuffles between stages.
func PipelineDAG(widths []int) (*Graph, error) { return workload.Pipeline(widths) }

// OutTreeDAG returns a complete broadcast tree; InTreeDAG the reduction
// mirror image.
func OutTreeDAG(fanout, depth int) (*Graph, error) { return workload.OutTree(fanout, depth) }

// InTreeDAG returns a complete reduction tree.
func InTreeDAG(fanout, depth int) (*Graph, error) { return workload.InTree(fanout, depth) }

// MontageDAG returns a simplified Montage-style astronomy workflow.
func MontageDAG(n int) (*Graph, error) { return workload.Montage(n) }

// EpigenomicsDAG, CyberShakeDAG and LIGODAG return the Pegasus-style
// scientific workflows used by the workflow-scheduling literature.
func EpigenomicsDAG(lanes, chunks int) (*Graph, error) { return workload.Epigenomics(lanes, chunks) }

// CyberShakeDAG returns the seismic-hazard workflow for the given number
// of sites.
func CyberShakeDAG(sites int) (*Graph, error) { return workload.CyberShake(sites) }

// LIGODAG returns the two-stage gravitational-wave inspiral workflow.
func LIGODAG(groups, perGroup int) (*Graph, error) { return workload.LIGO(groups, perGroup) }

// CholeskyDAG returns the tiled Cholesky factorization graph for a t×t
// tile matrix; LUDAG the tiled LU counterpart.
func CholeskyDAG(t int) (*Graph, error) { return workload.Cholesky(t) }

// LUDAG returns the tiled LU factorization task graph.
func LUDAG(t int) (*Graph, error) { return workload.LU(t) }

// Simulation.
type (
	// SimConfig controls a schedule replay.
	SimConfig = sim.Config
	// SimReport is the outcome of a replay.
	SimReport = sim.Report
)

// Simulate replays a schedule event by event, optionally perturbing
// execution times, and reports achieved makespan and utilization.
func Simulate(s *Schedule, cfg SimConfig) (SimReport, error) { return sim.Run(s, cfg) }

// Fault injection and reactive rescheduling.
type (
	// FaultPlan is a deterministic runtime-fault scenario injected into a
	// replay via SimConfig.Faults: processor crashes, link faults and
	// execution-time jitter, all seeded.
	FaultPlan = sim.FaultPlan
	// Crash is one processor failure window (Until 0 = permanent).
	Crash = sim.Crash
	// LinkFault degrades or severs communication links for a window.
	LinkFault = sim.LinkFault
	// FaultReport is the degradation summary of a faulted replay
	// (SimReport.Faults).
	FaultReport = sim.FaultReport
	// RepairPolicy selects how a schedule is repaired after crashes; see
	// RepairPolicies.
	RepairPolicy = resched.Policy
	// RepairEvent is one observed fail-stop event fed to a repair.
	RepairEvent = resched.Event
	// RepairOutcome summarizes what a reactive repair did.
	RepairOutcome = resched.Outcome
	// RobustnessConfig parameterizes EvalRobustness.
	RobustnessConfig = resched.RobustnessConfig
	// RobustnessReport aggregates degradation over sampled fault plans.
	RobustnessReport = resched.Robustness
)

// ErrProcRange marks schedules or fault plans referencing processors the
// instance does not have; errors.Is recognises it.
var ErrProcRange = sim.ErrProcRange

// ReadFaultPlan decodes and validates a fault plan from JSON.
func ReadFaultPlan(r io.Reader) (*FaultPlan, error) { return sim.ReadFaultPlan(r) }

// SampleCrashes draws a fail-stop fault plan: each processor crashes
// permanently with the given probability, at a time uniform over
// [0, horizon), deterministically per seed. At least one processor
// always survives.
func SampleCrashes(procs int, rate, horizon float64, seed int64) FaultPlan {
	return sim.SampleCrashes(procs, rate, horizon, seed)
}

// RepairPolicies lists the registered reactive repair policies;
// RepairPolicyByName resolves one ("remap-stranded", "reschedule-suffix"
// or "auto" — the default, which tries both and keeps the better).
func RepairPolicies() []RepairPolicy { return resched.Policies() }

// RepairPolicyByName resolves a repair policy by name.
func RepairPolicyByName(name string) (RepairPolicy, error) { return resched.ByName(name) }

// ReactToFaults repairs the schedule against the plan's permanent
// crashes, reacting to each in time order: completed and in-flight work
// is frozen, stranded work moves to surviving processors. A plan with no
// permanent crashes returns the schedule unchanged.
func ReactToFaults(s *Schedule, fp *FaultPlan, p RepairPolicy) (*Schedule, RepairOutcome, error) {
	return resched.React(s, fp, p)
}

// EvalRobustness measures expected degradation of a schedule under
// sampled fail-stop fault plans with reactive repair.
func EvalRobustness(s *Schedule, cfg RobustnessConfig) (RobustnessReport, error) {
	return resched.EvalRobustness(s, cfg)
}

// ScheduleFromAssignments rebuilds a validated Schedule from explicit
// placements (e.g. decoded from an external tool).
func ScheduleFromAssignments(in *Instance, algorithm string, as []Assignment) (*Schedule, error) {
	return sched.FromAssignments(in, algorithm, as)
}

// Rendering.

// WriteGanttText renders an ASCII Gantt chart of the schedule.
func WriteGanttText(w io.Writer, s *Schedule, width int) error {
	return export.WriteGanttText(w, s, width)
}

// WriteGanttSVG renders the schedule as a self-contained SVG.
func WriteGanttSVG(w io.Writer, s *Schedule) error { return export.WriteGanttSVG(w, s) }

// WriteScheduleJSON writes the schedule as JSON, one record per task copy.
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return export.WriteScheduleJSON(w, s) }

// ReadScheduleJSON rebuilds a schedule written by WriteScheduleJSON
// against the instance it was computed for.
func ReadScheduleJSON(in *Instance, r io.Reader) (*Schedule, error) {
	return export.ReadScheduleJSON(in, r)
}

// WriteChromeTrace writes the schedule in the Chrome trace-event format
// (chrome://tracing, Perfetto).
func WriteChromeTrace(w io.Writer, s *Schedule) error { return export.WriteChromeTrace(w, s) }

// WriteGanttPNG rasterizes the schedule as a PNG Gantt chart of the given
// pixel width.
func WriteGanttPNG(w io.Writer, s *Schedule, width int) error {
	return export.WriteGanttPNG(w, s, width)
}

// Serving.
type (
	// ServiceOptions configures the schedd HTTP service.
	ServiceOptions = service.Options
	// ServiceClient is a client for a running schedd.
	ServiceClient = service.Client
	// ScheduleRequest is the wire form of one scheduling query.
	ScheduleRequest = service.ScheduleRequest
	// ScheduleResponse is the wire form of one scheduling result.
	ScheduleResponse = service.ScheduleResponse
	// ServiceMetrics is the body of schedd's GET /metrics.
	ServiceMetrics = service.MetricsSnapshot
	// BatchRequest is the wire form of POST /v1/schedule/batch: many
	// scheduling queries answered in one round trip.
	BatchRequest = service.BatchRequest
	// BatchResponse carries per-item results in request order.
	BatchResponse = service.BatchResponse
	// BatchItemResult is one item's outcome within a BatchResponse.
	BatchItemResult = service.BatchItemResult
)

// Serve runs the schedd scheduling service until ctx is canceled, then
// shuts down gracefully, draining in-flight requests for at most drain
// (10s if nonpositive). See docs/SERVICE.md for the HTTP API.
func Serve(ctx context.Context, opts ServiceOptions, drain time.Duration) error {
	return service.Serve(ctx, opts, drain)
}

// NewServiceClient returns a client for the schedd at baseURL, e.g.
// "http://127.0.0.1:8080".
func NewServiceClient(baseURL string) *ServiceClient {
	return &ServiceClient{BaseURL: baseURL}
}

// Experiments.
type (
	// Experiment regenerates one table/figure of EXPERIMENTS.md.
	Experiment = experiment.Experiment
	// ExperimentConfig controls experiment effort and seeding.
	ExperimentConfig = experiment.Config
	// ExperimentTable is one rendered result table.
	ExperimentTable = experiment.Table
)

// Experiments returns the reproduction suite E1–E13.
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID returns one experiment of the suite.
func ExperimentByID(id string) (Experiment, error) { return experiment.ByID(id) }

// RenderExperimentMarkdown writes a result table as markdown.
func RenderExperimentMarkdown(w io.Writer, t *ExperimentTable) error {
	return experiment.RenderMarkdown(w, t)
}
