package dag

import (
	"math/rand"
	"testing"
)

// randomLayered builds a deterministic pseudo-random DAG without importing
// the workload generator: forward edges only, so acyclicity is structural.
func randomLayered(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("levels-test")
	for i := 0; i < n; i++ {
		b.AddTask("", 1+rng.Float64())
	}
	for i := 1; i < n; i++ {
		// 1-3 parents among the earlier tasks.
		for k := 0; k < 1+rng.Intn(3); k++ {
			from := TaskID(rng.Intn(i))
			if _, dup := edgeOf(b, from, TaskID(i)); !dup {
				b.AddEdge(from, TaskID(i), rng.Float64())
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func edgeOf(b *Builder, from, to TaskID) (Edge, bool) {
	for _, e := range b.edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// TestDepthLevelsPartition checks the CSR grouping: every task appears
// exactly once, within-level order is ascending id, the level assignment
// matches Levels(), and all predecessors live in strictly earlier levels.
func TestDepthLevelsPartition(t *testing.T) {
	g := randomLayered(t, 300, 1)
	off, tasks := g.DepthLevels()
	if len(tasks) != g.Len() || int(off[len(off)-1]) != g.Len() {
		t.Fatalf("level sets cover %d of %d tasks", len(tasks), g.Len())
	}
	want := g.Levels()
	seen := make([]bool, g.Len())
	for l := 0; l+1 < len(off); l++ {
		set := tasks[off[l]:off[l+1]]
		for k, v := range set {
			if seen[v] {
				t.Fatalf("task %d appears twice", v)
			}
			seen[v] = true
			if want[v] != l {
				t.Fatalf("task %d grouped at level %d, Levels says %d", v, l, want[v])
			}
			if k > 0 && set[k-1] >= v {
				t.Fatalf("level %d not ascending: %d before %d", l, set[k-1], v)
			}
			for _, p := range g.Pred(v) {
				if want[p.To] >= l {
					t.Fatalf("pred %d of %d not in earlier level", p.To, v)
				}
			}
		}
	}
}

// TestHeightLevelsOrder checks the exit-anchored grouping: exits at level
// 0 and every successor of a task strictly earlier than the task itself,
// which is the dependency guarantee the parallel upward-rank kernel needs.
func TestHeightLevelsOrder(t *testing.T) {
	g := randomLayered(t, 300, 2)
	off, tasks := g.HeightLevels()
	lvl := make([]int, g.Len())
	for l := 0; l+1 < len(off); l++ {
		for _, v := range tasks[off[l]:off[l+1]] {
			lvl[v] = l
		}
	}
	for i := 0; i < g.Len(); i++ {
		v := TaskID(i)
		if g.OutDegree(v) == 0 && lvl[v] != 0 {
			t.Fatalf("exit task %d at height level %d", v, lvl[v])
		}
		for _, a := range g.Succ(v) {
			if lvl[a.To] >= lvl[v] {
				t.Fatalf("succ %d of %d not strictly earlier (%d >= %d)", a.To, v, lvl[a.To], lvl[v])
			}
		}
	}
}

// TestArcOffsets checks that SuccStart/PredStart index the flat arc arrays
// consistently with the sliced adjacency.
func TestArcOffsets(t *testing.T) {
	g := randomLayered(t, 120, 3)
	if g.SuccStart(0) != 0 || g.PredStart(0) != 0 {
		t.Fatalf("first arc offsets = %d,%d", g.SuccStart(0), g.PredStart(0))
	}
	sum := 0
	for i := 0; i < g.Len(); i++ {
		if g.SuccStart(TaskID(i)) != sum {
			t.Fatalf("SuccStart(%d) = %d, want %d", i, g.SuccStart(TaskID(i)), sum)
		}
		sum += g.OutDegree(TaskID(i))
		if got := len(g.Succ(TaskID(i))); got != g.OutDegree(TaskID(i)) {
			t.Fatalf("Succ len %d != OutDegree %d", got, g.OutDegree(TaskID(i)))
		}
	}
	if sum != g.NumEdges() {
		t.Fatalf("arc count %d != edges %d", sum, g.NumEdges())
	}
}

// TestTopoOrderCallerOwned ensures the cached order is copied out:
// mutating one call's result must not corrupt later calls.
func TestTopoOrderCallerOwned(t *testing.T) {
	g := randomLayered(t, 50, 4)
	a := g.TopoOrder()
	want := append([]TaskID(nil), a...)
	for i := range a {
		a[i] = -1
	}
	b := g.TopoOrder()
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("topo order corrupted at %d after caller mutation", i)
		}
	}
	r := g.ReverseTopoOrder()
	for i := range r {
		if r[i] != want[len(want)-1-i] {
			t.Fatalf("reverse order wrong at %d", i)
		}
	}
}
