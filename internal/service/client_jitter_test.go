package service

import (
	"testing"
	"time"
)

// TestJitterFullRange pins the full-jitter contract: every draw lies in
// (0, d] — the nominal backoff is a ceiling, not a center — and over
// many draws the low half of the window is actually used, which is the
// property that decorrelates retry storms (the old [d/2, d] band never
// drew below 50%).
func TestJitterFullRange(t *testing.T) {
	c := &Client{Retry: &RetryPolicy{Seed: 42}}
	const d = 100 * time.Millisecond
	low := 0
	for i := 0; i < 2000; i++ {
		j := c.jitter(d)
		if j <= 0 || j > d {
			t.Fatalf("jitter(%v) = %v, want in (0, %v]", d, j, d)
		}
		if j < d/2 {
			low++
		}
	}
	// A uniform draw lands below d/2 about half the time; anything
	// remotely close rules out the old half-window behavior.
	if low < 600 {
		t.Fatalf("only %d/2000 draws below d/2; distribution is not full-jitter", low)
	}
}

// TestJitterSeeded pins reproducibility: two clients with the same
// RetryPolicy.Seed draw identical backoff sequences, and a different
// seed diverges.
func TestJitterSeeded(t *testing.T) {
	a := &Client{Retry: &RetryPolicy{Seed: 7}}
	b := &Client{Retry: &RetryPolicy{Seed: 7}}
	other := &Client{Retry: &RetryPolicy{Seed: 8}}
	const d = time.Second
	same, diverged := true, false
	for i := 0; i < 64; i++ {
		ja, jb, jo := a.jitter(d), b.jitter(d), other.jitter(d)
		if ja != jb {
			same = false
		}
		if ja != jo {
			diverged = true
		}
	}
	if !same {
		t.Fatal("equal seeds produced different backoff sequences")
	}
	if !diverged {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}
