package resched

import (
	"fmt"
	"sort"
)

// mode is a primitive repair strategy.
type mode int

const (
	modeRemap mode = iota
	modeResuffix
	modeAuto
)

const (
	nameRemap    = "remap-stranded"
	nameResuffix = "reschedule-suffix"
	nameAuto     = "auto"
)

// Policy is a registered repair strategy. The zero value is invalid; use
// ByName or Default.
type Policy struct {
	name string
	desc string
	mode mode
}

// Name returns the registry name of the policy.
func (p Policy) Name() string { return p.name }

// Description returns the one-line human description.
func (p Policy) Description() string { return p.desc }

// String implements fmt.Stringer.
func (p Policy) String() string { return p.name }

var registry = map[string]Policy{
	nameRemap: {
		name: nameRemap,
		desc: "minimal disturbance: pending tasks keep their processor and may only slide later; only destroyed work moves",
		mode: modeRemap,
	},
	nameResuffix: {
		name: nameResuffix,
		desc: "re-derive the whole unfinished suffix with insertion-based best-EFT over the surviving processors",
		mode: modeResuffix,
	},
	nameAuto: {
		name: nameAuto,
		desc: "trial both primitive policies in speculative transactions and commit the shorter repair",
		mode: modeAuto,
	},
}

// ByName resolves a policy by its registry name.
func ByName(name string) (Policy, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return Policy{}, fmt.Errorf("resched: unknown repair policy %q (have %v)", name, Names())
}

// Default returns the auto policy.
func Default() Policy { return registry[nameAuto] }

// Policies returns every registered policy sorted by name.
func Policies() []Policy {
	out := make([]Policy, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Names returns the registry names sorted alphabetically.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
