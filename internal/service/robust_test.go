package service_test

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"testing"

	"dagsched/internal/service"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

// TestScheduleWithSampledFaults drives the sampled-robustness path end
// to end: the response carries a coherent robustness block, and an
// identical request replays from the cache with the same numbers.
func TestScheduleWithSampledFaults(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	inst := instanceJSON(t, testfix.Topcuoglu())
	req := service.ScheduleRequest{
		Algorithm: "HEFT",
		Instance:  inst,
		Faults:    &service.FaultsRequest{Rate: 0.5, Samples: 8, Seed: 3, Policy: "auto"},
	}
	resp, err := c.Schedule(context.Background(), req)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	rb := resp.Robustness
	if rb == nil {
		t.Fatal("response has no robustness block")
	}
	if rb.Policy != "auto" || rb.Nominal != resp.Makespan || rb.Samples != 8 {
		t.Fatalf("robustness header inconsistent: %+v (makespan %g)", rb, resp.Makespan)
	}
	if rb.CompletionRate == nil || *rb.CompletionRate < 0 || *rb.CompletionRate > 1 {
		t.Fatalf("completion rate %v out of [0,1]", rb.CompletionRate)
	}
	if rb.MaxDegradation < 1 || rb.MeanDegradation <= 0 {
		t.Fatalf("degradation stats implausible: %+v", rb)
	}
	if rb.MeanSlack < 0 || rb.MeanSlack > 1 {
		t.Fatalf("mean slack %g out of [0,1]", rb.MeanSlack)
	}

	again, err := c.Schedule(context.Background(), req)
	if err != nil {
		t.Fatalf("second Schedule: %v", err)
	}
	if !again.Cached {
		t.Fatal("identical faulted request was not served from cache")
	}
	if !reflect.DeepEqual(again.Robustness, rb) {
		t.Fatalf("cached robustness drifted: %+v vs %+v", again.Robustness, rb)
	}
}

// TestScheduleWithExplicitFaultPlan replays one concrete crash and
// checks the degradation report plus the reactive repair summary.
func TestScheduleWithExplicitFaultPlan(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	inst := instanceJSON(t, testfix.Topcuoglu())
	base, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "HEFT", Instance: inst})
	if err != nil {
		t.Fatalf("baseline Schedule: %v", err)
	}
	plan := &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 0, At: base.Makespan * 0.4}}}
	resp, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "HEFT",
		Instance:  inst,
		Faults:    &service.FaultsRequest{Plan: plan, Policy: "reschedule-suffix"},
	})
	if err != nil {
		t.Fatalf("faulted Schedule: %v", err)
	}
	rb := resp.Robustness
	if rb == nil || rb.Policy != "reschedule-suffix" {
		t.Fatalf("robustness block %+v", rb)
	}
	if rb.Samples != 0 || rb.CompletionRate != nil {
		t.Fatalf("sampled fields set without a rate: %+v", rb)
	}
	if rb.Repaired == nil {
		t.Fatal("permanent crash produced no repair summary")
	}
	if rb.Repaired.Makespan <= 0 || rb.Repaired.Stretch <= 0 {
		t.Fatalf("repair summary implausible: %+v", rb.Repaired)
	}
	if got, want := rb.Repaired.Stretch, rb.Repaired.Makespan/rb.Nominal; got != want {
		t.Fatalf("repaired stretch %g, want %g", got, want)
	}
}

// TestFaultsValidation covers the 400 surface of the faults block.
func TestFaultsValidation(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	inst := instanceJSON(t, testfix.Topcuoglu())
	bad := []*service.FaultsRequest{
		{},            // neither plan nor rate
		{Rate: 2},     // rate out of range
		{Rate: -0.1},  // negative rate
		{Rate: 0.5, Samples: 100000},                                           // samples over cap
		{Rate: 0.5, Policy: "nope"},                                            // unknown policy
		{Plan: &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 99, At: 1}}}},        // proc out of range
		{Plan: &sim.FaultPlan{Crashes: []sim.Crash{{Proc: 0, At: 5, Until: 2}}}}, // inverted window
	}
	for i, f := range bad {
		_, err := c.Schedule(context.Background(), service.ScheduleRequest{
			Algorithm: "HEFT", Instance: inst, Faults: f,
		})
		var se *service.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
			t.Errorf("faults case %d: got %v, want HTTP 400", i, err)
		}
	}
}
