// Quickstart: build a small task graph by hand, schedule it with ILS on a
// heterogeneous 3-processor system, and print the measures plus a Gantt
// chart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dagsched"
)

func main() {
	// A small image-processing pipeline: load → {denoise, exposure} →
	// merge → encode. Weights are relative compute costs, edge data are
	// megabytes moved between stages.
	b := dagsched.NewGraph("quickstart")
	load := b.AddTask("load", 4)
	denoise := b.AddTask("denoise", 10)
	exposure := b.AddTask("exposure", 6)
	merge := b.AddTask("merge", 5)
	encode := b.AddTask("encode", 8)
	b.AddEdge(load, denoise, 12)
	b.AddEdge(load, exposure, 12)
	b.AddEdge(denoise, merge, 12)
	b.AddEdge(exposure, merge, 12)
	b.AddEdge(merge, encode, 6)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Three processors: one fast, two slow; links move 2 data units per
	// time unit with a 0.5 startup cost.
	sys, err := dagsched.NewSystem(dagsched.SystemConfig{
		Speeds:      []float64{2.0, 1.0, 1.0},
		Latency:     0.5,
		TimePerUnit: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	in := dagsched.ConsistentInstance(g, sys)

	s, err := dagsched.ILS().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan: %.3g   SLR: %.3f   speedup: %.3f\n\n",
		s.Makespan(), dagsched.SLR(s), dagsched.Speedup(s))
	if err := dagsched.WriteGanttText(os.Stdout, s, 80); err != nil {
		log.Fatal(err)
	}

	// Compare against plain HEFT.
	heft, err := dagsched.AlgorithmByName("HEFT")
	if err != nil {
		log.Fatal(err)
	}
	hs, err := heft.Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHEFT for comparison: makespan %.3g (ILS %.3g)\n", hs.Makespan(), s.Makespan())
}
