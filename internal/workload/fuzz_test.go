package workload

import (
	"strings"
	"testing"
)

// FuzzReadDAX asserts the Pegasus DAX importer never panics on malformed
// input and that every accepted workflow is a coherent, schedulable DAG:
// positive task weights, non-negative edge data, complete topological
// order (acyclicity).
func FuzzReadDAX(f *testing.F) {
	// Seed corpus: the valid mini workflow plus structured near-misses
	// (cycle, unknown ref, duplicate id, empty adag, truncated XML,
	// non-XML garbage). More seeds live in testdata/fuzz/FuzzReadDAX.
	f.Add(sampleDAX)
	f.Add(`<adag name="empty"></adag>`)
	f.Add(`<adag><job id="a" runtime="1"/><job id="a" runtime="2"/></adag>`)
	f.Add(`<adag><job id="a" runtime="1"/><child ref="missing"><parent ref="a"/></child></adag>`)
	f.Add(`<adag><job id="a" runtime="1"/><job id="b" runtime="1"/>` +
		`<child ref="a"><parent ref="b"/></child><child ref="b"><parent ref="a"/></child></adag>`)
	f.Add(`<adag><job id="a" runtime="-5"/></adag>`)
	f.Add(`<adag><job id="a" runtime="1"><uses file="f" link="output" size="-3"/></job></adag>`)
	f.Add(`<adag><job id="a"`)
	f.Add(`not xml at all`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadDAX(strings.NewReader(data), DAXOptions{})
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if g.Len() == 0 {
			t.Fatal("accepted a DAX with no tasks")
		}
		if got := len(g.TopoOrder()); got != g.Len() {
			t.Fatalf("topological order covers %d of %d tasks (cycle slipped through)", got, g.Len())
		}
		for _, task := range g.Tasks() {
			if !(task.Weight > 0) {
				t.Fatalf("accepted non-positive task weight %v", task.Weight)
			}
		}
		for _, e := range g.Edges() {
			if e.Data < 0 {
				t.Fatalf("accepted negative edge data %v", e.Data)
			}
			if e.From == e.To {
				t.Fatalf("accepted self-loop on task %d", e.From)
			}
		}
	})
}
