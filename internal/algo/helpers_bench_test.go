package algo

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// benchFanInPlan builds a wide fan-in (width parents joining into one
// task) scheduled greedily across 8 processors, so a duplication trial
// on the join task has real work to do: several remote critical parents
// worth copying into gaps.
func benchFanInPlan(b *testing.B, width int) (*sched.Plan, dag.TaskID) {
	b.Helper()
	bld := dag.NewBuilder("fanin")
	rng := rand.New(rand.NewSource(11))
	join := dag.TaskID(-1)
	parents := make([]dag.TaskID, width)
	for i := range parents {
		parents[i] = bld.AddTask("p", 1+rng.Float64()*3)
	}
	join = bld.AddTask("j", 2)
	for _, p := range parents {
		bld.AddEdge(p, join, 2+rng.Float64()*6)
	}
	in := sched.Consistent(bld.MustBuild(), platform.Homogeneous(8, 0, 1))
	pl := sched.NewPlan(in)
	for _, t := range parents {
		p, s, _ := pl.BestEFT(t, true)
		pl.Place(t, p, s)
	}
	return pl, join
}

// BenchmarkTryDuplication measures a single speculative duplication
// trial (place duplicates of critical parents, decide, roll back) on a
// reused transaction — the inner loop of DSH and ILS-D.
func BenchmarkTryDuplication(b *testing.B) {
	pl, join := benchFanInPlan(b, 64)
	b.ReportAllocs()
	tx := pl.Begin()
	for i := 0; i < b.N; i++ {
		tx.Reset()
		res := TryDuplication(tx, join, 0, 8)
		tx.Rollback()
		if res.Finish <= 0 {
			b.Fatal("bogus trial result")
		}
	}
}
