package workload

import (
	"fmt"

	"dagsched/internal/dag"
)

// ForkJoin returns a fork-join graph: a fork task fans out to branches
// chains of length stages, all joining into a final task. Branch tasks
// carry unit work; the fork and join carry weight equal to the branch
// count (they gather/scatter); edges carry unit data.
func ForkJoin(branches, stages int) (*dag.Graph, error) {
	if branches < 1 || stages < 1 {
		return nil, fmt.Errorf("workload: fork-join needs branches, stages >= 1 (got %d, %d)", branches, stages)
	}
	b := dag.NewBuilder(fmt.Sprintf("forkjoin-%dx%d", branches, stages))
	fork := b.AddTask("fork", float64(branches))
	last := make([]dag.TaskID, branches)
	for s := 0; s < stages; s++ {
		for br := 0; br < branches; br++ {
			id := b.AddTask(fmt.Sprintf("b%d.%d", br, s), 1)
			if s == 0 {
				b.AddEdge(fork, id, 1)
			} else {
				b.AddEdge(last[br], id, 1)
			}
			last[br] = id
		}
	}
	join := b.AddTask("join", float64(branches))
	for _, l := range last {
		b.AddEdge(l, join, 1)
	}
	return b.Build()
}

// OutTree returns a complete out-tree (broadcast tree) of the given fanout
// and depth: depth 1 is a single root. All tasks carry unit work, edges
// unit data.
func OutTree(fanout, depth int) (*dag.Graph, error) {
	if fanout < 1 || depth < 1 {
		return nil, fmt.Errorf("workload: out-tree needs fanout, depth >= 1 (got %d, %d)", fanout, depth)
	}
	b := dag.NewBuilder(fmt.Sprintf("outtree-f%dd%d", fanout, depth))
	level := []dag.TaskID{b.AddTask("root", 1)}
	for d := 1; d < depth; d++ {
		var next []dag.TaskID
		for _, parent := range level {
			for k := 0; k < fanout; k++ {
				id := b.AddTask("", 1)
				b.AddEdge(parent, id, 1)
				next = append(next, id)
			}
		}
		level = next
	}
	return b.Build()
}

// InTree returns a complete in-tree (reduction tree): the mirror image of
// OutTree, leaves first, a single exit root.
func InTree(fanout, depth int) (*dag.Graph, error) {
	if fanout < 1 || depth < 1 {
		return nil, fmt.Errorf("workload: in-tree needs fanout, depth >= 1 (got %d, %d)", fanout, depth)
	}
	b := dag.NewBuilder(fmt.Sprintf("intree-f%dd%d", fanout, depth))
	if fanout == 1 {
		// Degenerate chain.
		prev := b.AddTask("", 1)
		for d := 1; d < depth; d++ {
			id := b.AddTask("", 1)
			b.AddEdge(prev, id, 1)
			prev = id
		}
		return b.Build()
	}
	// Leaves of a complete tree of the given depth.
	width := 1
	for d := 1; d < depth; d++ {
		width *= fanout
	}
	level := make([]dag.TaskID, width)
	for i := range level {
		level[i] = b.AddTask("", 1)
	}
	for len(level) > 1 {
		next := make([]dag.TaskID, len(level)/fanout)
		for i := range next {
			next[i] = b.AddTask("", 1)
			for k := 0; k < fanout; k++ {
				b.AddEdge(level[i*fanout+k], next[i], 1)
			}
		}
		level = next
	}
	return b.Build()
}

// Pipeline returns a layered pipeline: stages layers whose widths are
// given, with every task of one layer feeding every task of the next
// (an all-to-all shuffle between stages). Weights and data are unit.
func Pipeline(widths []int) (*dag.Graph, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("workload: pipeline needs at least one stage")
	}
	for i, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("workload: pipeline stage %d has width %d", i, w)
		}
	}
	b := dag.NewBuilder(fmt.Sprintf("pipeline-%d", len(widths)))
	var prev []dag.TaskID
	for s, w := range widths {
		cur := make([]dag.TaskID, w)
		for i := 0; i < w; i++ {
			cur[i] = b.AddTask(fmt.Sprintf("s%d.%d", s, i), 1)
		}
		for _, u := range prev {
			for _, v := range cur {
				b.AddEdge(u, v, 1)
			}
		}
		prev = cur
	}
	return b.Build()
}

// Montage returns a simplified Montage-style astronomy workflow of the
// shape used in workflow-scheduling studies: n project tasks feed ~2n
// overlap-difference tasks, which funnel into a fit task, a model task,
// n background tasks, an add task and a final publish task. Weights
// reflect the relative stage costs; edges carry image-sized data.
func Montage(n int) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: montage needs n >= 2, got %d", n)
	}
	b := dag.NewBuilder(fmt.Sprintf("montage-%d", n))
	project := make([]dag.TaskID, n)
	for i := range project {
		project[i] = b.AddTask(fmt.Sprintf("project%d", i), 4)
	}
	// Differences between neighbouring overlaps (ring): n pairs, plus the
	// diagonal pairs for 2n-ish total.
	var diffs []dag.TaskID
	addDiff := func(a, c int) {
		d := b.AddTask(fmt.Sprintf("diff%d-%d", a, c), 1)
		b.AddEdge(project[a], d, 2)
		b.AddEdge(project[c], d, 2)
		diffs = append(diffs, d)
	}
	for i := 0; i < n; i++ {
		addDiff(i, (i+1)%n)
	}
	for i := 0; i+2 < n; i += 2 {
		addDiff(i, i+2)
	}
	fit := b.AddTask("fit", 2)
	for _, d := range diffs {
		b.AddEdge(d, fit, 1)
	}
	model := b.AddTask("model", 8)
	b.AddEdge(fit, model, 1)
	background := make([]dag.TaskID, n)
	for i := range background {
		background[i] = b.AddTask(fmt.Sprintf("bg%d", i), 2)
		b.AddEdge(model, background[i], 1)
		b.AddEdge(project[i], background[i], 2)
	}
	add := b.AddTask("add", float64(n))
	for _, bg := range background {
		b.AddEdge(bg, add, 4)
	}
	publish := b.AddTask("publish", 2)
	b.AddEdge(add, publish, 8)
	return b.Build()
}
