package resched

import (
	"fmt"
	"math"

	"dagsched/internal/sched"
	"dagsched/internal/sim"
)

// MakespanSlack returns the mean relative slack of the schedule's tasks:
// how much later each primary could finish without growing the makespan
// (placements and per-processor order held fixed), averaged over tasks
// and normalized by the makespan. A high-slack schedule has more room to
// absorb runtime faults without degrading.
func MakespanSlack(s *sched.Schedule) float64 {
	in := s.Instance()
	ms := s.Makespan()
	if in.N() == 0 || ms <= 0 {
		return 0
	}
	an := sched.Analyze(s)
	sum := 0.0
	for _, sl := range an.Slack {
		sum += sl
	}
	return sum / float64(in.N()) / ms
}

// RobustnessConfig parameterizes EvalRobustness.
type RobustnessConfig struct {
	// Samples is the number of fault plans drawn (default 20).
	Samples int
	// Rate is the per-processor permanent-crash probability of each
	// sampled plan (crash times uniform over the nominal makespan).
	Rate float64
	// Seed makes the sample set deterministic.
	Seed int64
	// Policy repairs the samples that strand work (zero value: auto).
	Policy Policy
}

// Robustness aggregates schedule degradation over sampled fault plans.
type Robustness struct {
	Samples int
	// CompletionRate is the fraction of samples the *unrepaired*
	// schedule survived: every task still computed by some copy.
	CompletionRate float64
	// MeanDegradation and MaxDegradation are over the makespans after
	// reactive repair (samples needing none count as their replayed
	// stretch), normalized by the nominal makespan; 1 = no degradation.
	MeanDegradation float64
	MaxDegradation  float64
	// MeanSlack is the schedule's makespan slack (fault-independent).
	MeanSlack float64
}

// EvalRobustness measures expected degradation of the schedule under
// sampled fail-stop fault plans, with reactive repair applied whenever a
// sample strands work. Deterministic per cfg.Seed.
func EvalRobustness(s *sched.Schedule, cfg RobustnessConfig) (Robustness, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 || math.IsNaN(cfg.Rate) {
		return Robustness{}, fmt.Errorf("resched: crash rate %g out of [0,1]", cfg.Rate)
	}
	n := cfg.Samples
	if n <= 0 {
		n = 20
	}
	pol := cfg.Policy
	if pol.name == "" {
		pol = Default()
	}
	in := s.Instance()
	nominal := s.Makespan()
	r := Robustness{Samples: n, MeanSlack: MakespanSlack(s), MaxDegradation: 1}
	completed := 0
	sum := 0.0
	for k := 0; k < n; k++ {
		fp := sim.SampleCrashes(in.P(), cfg.Rate, nominal, cfg.Seed+int64(k)*0x9E3779B9+1)
		rep, err := sim.Run(s, sim.Config{Faults: &fp})
		if err != nil {
			return Robustness{}, err
		}
		deg := 1.0
		if len(rep.Faults.Stranded) == 0 {
			completed++
			if nominal > 0 {
				deg = rep.Makespan / nominal
			}
		} else {
			repaired, _, err := React(s, &fp, pol)
			if err != nil {
				return Robustness{}, err
			}
			if nominal > 0 {
				deg = repaired.Makespan() / nominal
			}
		}
		sum += deg
		if deg > r.MaxDegradation {
			r.MaxDegradation = deg
		}
	}
	r.CompletionRate = float64(completed) / float64(n)
	r.MeanDegradation = sum / float64(n)
	return r, nil
}
