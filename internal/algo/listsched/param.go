package listsched

import (
	"context"
	"fmt"
	"math"
	"strings"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// This file factors the classic list schedulers into their orthogonal
// components, following the decomposition of the parameterized-scheduler
// literature (arXiv:2403.07112): a list scheduler is a priority metric ×
// a consumption order × a processor-selection rule × an insertion policy
// × a duplication policy. Param composes one scheduler per point of that
// grid; the four canonical baselines are exact grid points (HEFTParam,
// CPOPParam, HLFETParam, ETFParam reproduce HEFT, CPOP, HLFET and ETF
// bit-identically — proven against the goldens by param_test.go), so the
// adversarial harness and the E23 ablation can attack components rather
// than whole algorithms.

// Priority selects the task-priority metric.
type Priority int

const (
	// PrioUpward is the upward rank rank_u of HEFT.
	PrioUpward Priority = iota
	// PrioStaticLevel is the communication-free static level of HLFET/ETF.
	PrioStaticLevel
	// PrioUpDown is rank_u + rank_d, the CPOP priority.
	PrioUpDown
)

// Order selects how tasks are consumed.
type Order int

const (
	// OrderStatic fixes the full order up front: tasks sorted by
	// decreasing priority with precedence-safe tie-breaks (HEFT).
	OrderStatic Order = iota
	// OrderReady repeatedly takes the highest-priority ready task
	// (CPOP, HLFET); ties break toward the lower task id.
	OrderReady
	// OrderPair jointly picks the (ready task, processor) pair with the
	// earliest start time, breaking start ties by the higher priority
	// (ETF). The Select component is ignored: pair order *is* the
	// selection rule.
	OrderPair
)

// Select selects the processor-selection rule.
type Select int

const (
	// SelectEFT places on the processor minimizing the earliest finish
	// time (HEFT, CPOP off the critical path).
	SelectEFT Select = iota
	// SelectEST places on the processor minimizing the earliest start
	// time (HLFET).
	SelectEST
	// SelectCPPin pins every critical-path task to the single processor
	// minimizing the critical path's total execution cost and uses
	// min-EFT elsewhere (CPOP).
	SelectCPPin
)

// Param is one point of the component grid, itself an algo.Algorithm.
// The zero value is the HEFT setting minus insertion; use the named
// constructors for the canonical baselines.
type Param struct {
	Priority  Priority
	Order     Order
	Select    Select
	Insertion bool
	// Duplication adds greedy critical-parent duplication to processor
	// selection: every candidate processor is evaluated in a speculative
	// transaction with algo.TryDuplication and the winner's duplicates
	// are committed. None of the four baselines uses it.
	Duplication bool
	// DisplayName overrides the canonical Name() (e.g. "HEFT*" for the
	// equivalence tests).
	DisplayName string
}

// HEFTParam is the grid point reproducing HEFT bit-identically.
func HEFTParam() Param {
	return Param{Priority: PrioUpward, Order: OrderStatic, Select: SelectEFT, Insertion: true}
}

// CPOPParam is the grid point reproducing CPOP bit-identically.
func CPOPParam() Param {
	return Param{Priority: PrioUpDown, Order: OrderReady, Select: SelectCPPin, Insertion: true}
}

// HLFETParam is the grid point reproducing HLFET bit-identically.
func HLFETParam() Param {
	return Param{Priority: PrioStaticLevel, Order: OrderReady, Select: SelectEST}
}

// ETFParam is the grid point reproducing ETF bit-identically.
func ETFParam() Param {
	return Param{Priority: PrioStaticLevel, Order: OrderPair, Select: SelectEST}
}

var prioNames = map[Priority]string{PrioUpward: "u", PrioStaticLevel: "sl", PrioUpDown: "ud"}
var orderNames = map[Order]string{OrderStatic: "static", OrderReady: "ready", OrderPair: "pair"}
var selNames = map[Select]string{SelectEFT: "eft", SelectEST: "est", SelectCPPin: "cppin"}

// String returns the canonical grid-point name, e.g.
// "LS/u/static/eft/ins/nodup".
func (pm Param) String() string {
	ins, dup := "noins", "nodup"
	if pm.Insertion {
		ins = "ins"
	}
	if pm.Duplication {
		dup = "dup"
	}
	return fmt.Sprintf("LS/%s/%s/%s/%s/%s",
		prioNames[pm.Priority], orderNames[pm.Order], selNames[pm.Select], ins, dup)
}

// Name implements algo.Algorithm.
func (pm Param) Name() string {
	if pm.DisplayName != "" {
		return pm.DisplayName
	}
	return pm.String()
}

// ParseParam parses a canonical grid-point name produced by String:
// "LS/<u|sl|ud>/<static|ready|pair>/<eft|est|cppin>/<ins|noins>/<dup|nodup>".
func ParseParam(name string) (Param, error) {
	parts := strings.Split(name, "/")
	if len(parts) != 6 || parts[0] != "LS" {
		return Param{}, fmt.Errorf("listsched: bad param name %q (want LS/prio/order/select/ins/dup)", name)
	}
	var pm Param
	ok := false
	for k, v := range prioNames {
		if v == parts[1] {
			pm.Priority, ok = k, true
		}
	}
	if !ok {
		return Param{}, fmt.Errorf("listsched: unknown priority %q (u|sl|ud)", parts[1])
	}
	ok = false
	for k, v := range orderNames {
		if v == parts[2] {
			pm.Order, ok = k, true
		}
	}
	if !ok {
		return Param{}, fmt.Errorf("listsched: unknown order %q (static|ready|pair)", parts[2])
	}
	ok = false
	for k, v := range selNames {
		if v == parts[3] {
			pm.Select, ok = k, true
		}
	}
	if !ok {
		return Param{}, fmt.Errorf("listsched: unknown selection %q (eft|est|cppin)", parts[3])
	}
	switch parts[4] {
	case "ins":
		pm.Insertion = true
	case "noins":
	default:
		return Param{}, fmt.Errorf("listsched: unknown insertion flag %q (ins|noins)", parts[4])
	}
	switch parts[5] {
	case "dup":
		pm.Duplication = true
	case "nodup":
	default:
		return Param{}, fmt.Errorf("listsched: unknown duplication flag %q (dup|nodup)", parts[5])
	}
	return pm, nil
}

// Grid returns the component grid swept by the E23 ablation: the full
// factorial over priority × {static, ready} order × {EFT, EST} selection
// × insertion × duplication, plus the coupled selection rules at their
// meaningful settings — pair order per priority and critical-path
// pinning at the CPOP priority. Every returned Param is a valid
// scheduler; the four canonical baselines are among them.
func Grid() []Param {
	var out []Param
	for _, pr := range []Priority{PrioUpward, PrioStaticLevel, PrioUpDown} {
		for _, ord := range []Order{OrderStatic, OrderReady} {
			for _, sel := range []Select{SelectEFT, SelectEST} {
				for _, ins := range []bool{true, false} {
					for _, dup := range []bool{false, true} {
						out = append(out, Param{Priority: pr, Order: ord, Select: sel, Insertion: ins, Duplication: dup})
					}
				}
			}
		}
		out = append(out, Param{Priority: pr, Order: OrderPair, Select: SelectEST})
	}
	out = append(out,
		CPOPParam(),
		Param{Priority: PrioUpDown, Order: OrderReady, Select: SelectCPPin, Insertion: true, Duplication: true},
	)
	return out
}

// maxParamDups bounds duplicates per placement, matching package dup.
const maxParamDups = 64

// Schedule implements algo.Algorithm.
func (pm Param) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return pm.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler. Each grid point follows
// exactly the code path of the baseline it generalizes, so grid points
// coinciding with HEFT/CPOP/HLFET/ETF are bit-identical to them.
func (pm Param) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	prio := pm.priorities(in)
	pl := sched.NewPlan(in)
	check := algo.NewCheckpoint(ctx, 64)
	var cp *cpState
	if pm.Select == SelectCPPin {
		cp = newCPState(in)
	}
	var ds *dupState
	if pm.Duplication {
		ds = newDupState(pl)
		defer ds.Close()
	}

	step := func(t dag.TaskID) {
		pm.place(pl, ds, cp, t)
	}

	switch pm.Order {
	case OrderStatic:
		for _, t := range staticOrder(in.G, prio) {
			if err := check.Check(); err != nil {
				return nil, fmt.Errorf("%s: %w", pm.Name(), err)
			}
			step(t)
		}
	case OrderReady:
		rl := algo.NewReadyList(in.G)
		for !rl.Empty() {
			if err := check.Check(); err != nil {
				return nil, fmt.Errorf("%s: %w", pm.Name(), err)
			}
			var pick dag.TaskID = -1
			for _, r := range rl.Ready() {
				if pick == -1 || prio[r] > prio[pick] {
					pick = r
				}
			}
			step(pick)
			rl.Complete(pick)
		}
	case OrderPair:
		rl := algo.NewReadyList(in.G)
		for !rl.Empty() {
			if err := check.Check(); err != nil {
				return nil, fmt.Errorf("%s: %w", pm.Name(), err)
			}
			bestStart := math.Inf(1)
			var bestTask dag.TaskID = -1
			bestProc := 0
			for _, t := range rl.Ready() {
				for p := 0; p < in.P(); p++ {
					start, _ := pl.EFTOn(t, p, pm.Insertion)
					better := start < bestStart ||
						(start == bestStart && bestTask != -1 && prio[t] > prio[bestTask])
					if better {
						bestStart, bestTask, bestProc = start, t, p
					}
				}
			}
			if ds != nil {
				ds.placeOn(pl, bestTask, bestProc)
			} else {
				pl.Place(bestTask, bestProc, bestStart)
			}
			rl.Complete(bestTask)
		}
	default:
		return nil, fmt.Errorf("listsched: unknown order %d", pm.Order)
	}
	return pl.Finalize(pm.Name()), nil
}

// staticOrder fixes the full scheduling order up front: greedily emit
// the highest-priority task whose predecessors were all emitted, ties
// toward the earlier topological position. For priorities that are
// monotone along edges (upward rank, static level) this is exactly
// algo.OrderDescPrecedence — the HEFT order, bit for bit (the
// equivalence tests pin it) — while staying precedence-valid for
// non-monotone metrics like rank_u + rank_d, which a global sort is not.
func staticOrder(g *dag.Graph, prio []float64) []dag.TaskID {
	n := g.Len()
	topo := g.TopoOrder()
	pos := make([]int, n)
	for i, v := range topo {
		pos[v] = i
	}
	pending := make([]int, n)
	var ready []dag.TaskID
	for i := 0; i < n; i++ {
		pending[i] = g.InDegree(dag.TaskID(i))
		if pending[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}
	order := make([]dag.TaskID, 0, n)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			if prio[a] > prio[b] || (prio[a] == prio[b] && pos[a] < pos[b]) {
				best = i
			}
		}
		pick := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, pick)
		for _, a := range g.Succ(pick) {
			pending[a.To]--
			if pending[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return order
}

// StaticOrder exposes the static consumption order for callers that
// replay Param's placement loop outside ScheduleContext — the streaming
// engine's seal-time re-plan must consume tasks in exactly this order to
// stay bit-identical to the static scheduler.
func StaticOrder(g *dag.Graph, prio []float64) []dag.TaskID {
	return staticOrder(g, prio)
}

// CPPin exposes the critical-path pinning state of the CPOP selection
// rule — the on-path mask and the pinned processor — computed exactly as
// ScheduleContext computes it, for the same external replay callers.
func CPPin(in *sched.Instance) (onCP []bool, proc int) {
	st := newCPState(in)
	return st.onCP, st.proc
}

// PriorityVector exposes the configured priority metric for external
// replay callers (see StaticOrder).
func (pm Param) PriorityVector(in *sched.Instance) []float64 {
	return pm.priorities(in)
}

// priorities computes the configured priority vector.
func (pm Param) priorities(in *sched.Instance) []float64 {
	switch pm.Priority {
	case PrioStaticLevel:
		return sched.StaticLevel(in)
	case PrioUpDown:
		up := sched.RankUpward(in)
		down := sched.RankDownward(in)
		prio := make([]float64, in.N())
		for i := range prio {
			prio[i] = up[i] + down[i]
		}
		return prio
	default:
		return sched.RankUpward(in)
	}
}

// place chooses a processor for t under the configured selection rule
// and places it (with duplication trials when enabled).
func (pm Param) place(pl *sched.Plan, ds *dupState, cp *cpState, t dag.TaskID) {
	if cp != nil && cp.onCP[t] {
		// Critical-path task: pinned to the CP processor.
		if ds != nil {
			ds.placeOn(pl, t, cp.proc)
			return
		}
		s, _ := pl.EFTOn(t, cp.proc, pm.Insertion)
		pl.Place(t, cp.proc, s)
		return
	}
	if ds != nil {
		ds.placeBest(pl, t, pm.Select == SelectEST)
		return
	}
	switch pm.Select {
	case SelectEST:
		bestP, bestS := -1, 0.0
		for p := 0; p < pl.Instance().P(); p++ {
			s, _ := pl.EFTOn(t, p, pm.Insertion)
			if bestP == -1 || s < bestS {
				bestP, bestS = p, s
			}
		}
		pl.Place(t, bestP, bestS)
	default: // SelectEFT, and SelectCPPin off the critical path
		p, s, _ := pl.BestEFT(t, pm.Insertion)
		pl.Place(t, p, s)
	}
}

// cpState carries the CPOP critical-path pinning state, computed exactly
// as CPOP computes it.
type cpState struct {
	onCP []bool
	proc int
}

func newCPState(in *sched.Instance) *cpState {
	cpPath, _ := sched.CriticalPathMean(in)
	st := &cpState{onCP: make([]bool, in.N())}
	for _, v := range cpPath {
		st.onCP[v] = true
	}
	bestCost := math.Inf(1)
	for p := 0; p < in.P(); p++ {
		var sum float64
		for _, v := range cpPath {
			sum += in.Cost(v, p)
		}
		if sum < bestCost {
			st.proc, bestCost = p, sum
		}
	}
	return st
}

// dupState evaluates per-processor duplication trials on speculative
// transactions, mirroring the dup-package driver: one reusable Txn per
// processor, trials run on a bounded worker group, winner committed.
type dupState struct {
	group   *algo.TrialGroup
	txs     []*sched.Txn
	results []algo.DupResult
}

func newDupState(pl *sched.Plan) *dupState {
	in := pl.Instance()
	return &dupState{
		group:   algo.NewTrialGroup(in.P(), in.N()),
		txs:     make([]*sched.Txn, in.P()),
		results: make([]algo.DupResult, in.P()),
	}
}

func (ds *dupState) Close() { ds.group.Close() }

func (ds *dupState) trial(pl *sched.Plan, t dag.TaskID, p int) {
	tx := ds.txs[p]
	if tx == nil {
		tx = pl.Begin()
		ds.txs[p] = tx
	} else {
		tx.Reset()
	}
	ds.results[p] = algo.TryDuplication(tx, t, p, maxParamDups)
}

// placeBest runs a duplication trial on every processor and commits the
// winner: the minimum finish (or start, under EST selection), ties to
// the lower processor id.
func (ds *dupState) placeBest(pl *sched.Plan, t dag.TaskID, byStart bool) {
	in := pl.Instance()
	ds.group.Run(in.P(), func(p int) { ds.trial(pl, t, p) })
	best := math.Inf(1)
	bestProc := -1
	for p := 0; p < in.P(); p++ {
		v := ds.results[p].Finish
		if byStart {
			v = ds.results[p].Start
		}
		if v < best {
			best, bestProc = v, p
		}
	}
	ds.txs[bestProc].Commit()
	pl.Place(t, bestProc, ds.results[bestProc].Start)
}

// placeOn runs a single duplication trial on the given processor and
// commits it.
func (ds *dupState) placeOn(pl *sched.Plan, t dag.TaskID, p int) {
	ds.trial(pl, t, p)
	ds.txs[p].Commit()
	pl.Place(t, p, ds.results[p].Start)
}
