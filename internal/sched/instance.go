// Package sched provides the scheduling substrate shared by every
// algorithm: the problem instance (task graph × platform × execution-cost
// matrix), rank/priority computations, the mutable Plan used while
// scheduling, the immutable Schedule result and its validator.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// ErrInvalidCost is the typed error wrapped by NewInstance when a task
// execution cost or an edge data volume is NaN, infinite or negative.
// Fuzz-hardened readers can emit graphs carrying such values (NaN compares
// false against everything, so a "data < 0" gate passes it); validating
// here keeps the rank kernels free of per-comparison NaN checks — a NaN
// would otherwise silently lose every "cand > best" comparison and corrupt
// priorities without a trace.
var ErrInvalidCost = errors.New("sched: invalid cost")

// Instance is one scheduling problem: a task graph, a target system and
// the execution cost W[task][processor] of every task on every processor.
type Instance struct {
	G   *dag.Graph
	Sys *platform.System
	// W is the row view of the cost matrix. NewInstance re-backs the rows
	// onto one flat row-major array (wFlat), so row i is the contiguous
	// block wFlat[i*P:(i+1)*P] and scanning a task's costs walks memory
	// linearly.
	W [][]float64

	// comm is the pluggable communication model; nil means the classic
	// contention-free model backed directly by Sys — the default every
	// constructor produces, with code paths bit-identical to the
	// pre-CommModel implementation. Set via WithComm.
	comm platform.CommModel

	wFlat  []float64
	meanW  []float64
	sigmaW []float64
	// Per-edge mean communication costs, memoized per arc in flat arrays
	// indexed by the DAG's CSR arc offsets: the cost of the j-th outgoing
	// edge of task i is meanCommSucc[G.SuccStart(i)+j]. System.MeanCommCost
	// is O(p²) per call; the rank computations and lookahead estimators
	// consult these tables instead, with bit-identical values.
	meanCommSucc []float64
	meanCommPred []float64
}

// NewInstance validates the cost matrix and the graph's edge data volumes
// and builds an Instance. W must have one row per task and one column per
// processor; all execution costs and edge data must be non-negative and
// finite (violations report ErrInvalidCost). The matrix values are copied
// onto a flat instance-owned backing array; the caller's rows are not
// retained.
func NewInstance(g *dag.Graph, sys *platform.System, w [][]float64) (*Instance, error) {
	if g == nil || sys == nil {
		return nil, fmt.Errorf("sched: nil graph or system")
	}
	if len(w) != g.Len() {
		return nil, fmt.Errorf("sched: cost matrix has %d rows, want %d", len(w), g.Len())
	}
	n, p := g.Len(), sys.Len()
	for i, row := range w {
		if len(row) != p {
			return nil, fmt.Errorf("sched: cost row %d has %d cols, want %d", i, len(row), p)
		}
		for q, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: W[%d][%d] = %g", ErrInvalidCost, i, q, v)
			}
		}
	}
	for i := 0; i < n; i++ {
		base := g.SuccStart(dag.TaskID(i))
		for j, a := range g.Succ(dag.TaskID(i)) {
			if a.Data < 0 || math.IsNaN(a.Data) || math.IsInf(a.Data, 0) {
				return nil, fmt.Errorf("%w: edge (%d,%d) data = %g (arc %d)", ErrInvalidCost, i, a.To, a.Data, base+j)
			}
		}
	}
	inst := &Instance{G: g, Sys: sys}
	inst.wFlat = make([]float64, n*p)
	inst.W = make([][]float64, n)
	for i, row := range w {
		dst := inst.wFlat[i*p : (i+1)*p : (i+1)*p]
		copy(dst, row)
		inst.W[i] = dst
	}
	inst.cacheStats()
	return inst, nil
}

func (in *Instance) cacheStats() {
	n, p := in.G.Len(), in.Sys.Len()
	in.meanW = make([]float64, n)
	in.sigmaW = make([]float64, n)
	for i := 0; i < n; i++ {
		row := in.W[i]
		var sum float64
		for q := 0; q < p; q++ {
			sum += row[q]
		}
		mean := sum / float64(p)
		var varSum float64
		for q := 0; q < p; q++ {
			d := row[q] - mean
			varSum += d * d
		}
		in.meanW[i] = mean
		in.sigmaW[i] = math.Sqrt(varSum / float64(p))
	}
	in.meanCommSucc = make([]float64, in.G.NumEdges())
	in.meanCommPred = make([]float64, in.G.NumEdges())
	for i := 0; i < n; i++ {
		base := in.G.SuccStart(dag.TaskID(i))
		for j, a := range in.G.Succ(dag.TaskID(i)) {
			in.meanCommSucc[base+j] = in.MeanCommData(a.Data)
		}
		base = in.G.PredStart(dag.TaskID(i))
		for j, a := range in.G.Pred(dag.TaskID(i)) {
			in.meanCommPred[base+j] = in.MeanCommData(a.Data)
		}
	}
}

// Consistent builds the related-machines instance: W[i][p] equals the
// task's nominal weight divided by the processor speed. On a homogeneous
// system every row is constant.
func Consistent(g *dag.Graph, sys *platform.System) *Instance {
	w := make([][]float64, g.Len())
	for i := range w {
		w[i] = make([]float64, sys.Len())
		for p := range w[i] {
			w[i][p] = g.Task(dag.TaskID(i)).Weight / sys.Speed(p)
		}
	}
	inst, err := NewInstance(g, sys, w)
	if err != nil {
		// Construction is correct by design: weights and speeds were
		// validated by their own builders.
		panic(err)
	}
	return inst
}

// Unrelated builds the inconsistent-heterogeneity instance of Topcuoglu et
// al.: W[i][p] is drawn uniformly from [w̄·(1−β/2), w̄·(1+β/2)] around the
// task's nominal weight w̄, independently per processor. beta must lie in
// [0, 2); beta = 0 degenerates to a homogeneous matrix.
func Unrelated(g *dag.Graph, sys *platform.System, beta float64, rng *rand.Rand) (*Instance, error) {
	if beta < 0 || beta >= 2 {
		return nil, fmt.Errorf("sched: heterogeneity beta %g out of [0,2)", beta)
	}
	w := make([][]float64, g.Len())
	for i := range w {
		w[i] = make([]float64, sys.Len())
		nominal := g.Task(dag.TaskID(i)).Weight
		for p := range w[i] {
			w[i][p] = nominal * (1 + beta*(rng.Float64()-0.5))
		}
	}
	return NewInstance(g, sys, w)
}

// P returns the processor count.
func (in *Instance) P() int { return in.Sys.Len() }

// N returns the task count.
func (in *Instance) N() int { return in.G.Len() }

// Cost returns the execution time of task i on processor p.
func (in *Instance) Cost(i dag.TaskID, p int) float64 { return in.W[i][p] }

// MeanCost returns the mean execution time of task i over all processors.
func (in *Instance) MeanCost(i dag.TaskID) float64 { return in.meanW[i] }

// SigmaCost returns the (population) standard deviation of task i's
// execution time over all processors. It is zero on homogeneous matrices.
func (in *Instance) SigmaCost(i dag.TaskID) float64 { return in.sigmaW[i] }

// MinCost returns the smallest execution time of task i and the processor
// achieving it (first such processor on ties).
func (in *Instance) MinCost(i dag.TaskID) (float64, int) {
	best, arg := in.W[i][0], 0
	for p := 1; p < in.P(); p++ {
		if in.W[i][p] < best {
			best, arg = in.W[i][p], p
		}
	}
	return best, arg
}

// WithComm returns a shallow copy of the instance scheduled under the
// given communication model (nil restores the default contention-free
// model). The graph, system and cost matrix are shared; the mean-comm
// caches are rebuilt through the model so rank computations see its
// costs.
func (in *Instance) WithComm(m platform.CommModel) *Instance {
	cp := *in
	cp.comm = m
	cp.cacheStats()
	return &cp
}

// CommModel returns the instance's communication model, nil when it is
// the default contention-free model.
func (in *Instance) CommModel() platform.CommModel { return in.comm }

// CommKind returns the registry kind of the instance's communication
// model ("contention-free" for the nil default).
func (in *Instance) CommKind() string {
	if in.comm == nil {
		return platform.KindContentionFree
	}
	return in.comm.Kind()
}

// CommCost returns the idle-network time to move data units from
// processor p to q under the instance's communication model.
func (in *Instance) CommCost(p, q int, data float64) float64 {
	if in.comm == nil {
		return in.Sys.CommCost(p, q, data)
	}
	return in.comm.Cost(p, q, data)
}

// Comm returns the communication cost of edge (from, to) when the tasks
// run on processors p and q: zero if p == q or no such edge exists.
func (in *Instance) Comm(from, to dag.TaskID, p, q int) float64 {
	if p == q {
		return 0
	}
	data, ok := in.G.EdgeData(from, to)
	if !ok {
		return 0
	}
	return in.CommCost(p, q, data)
}

// MeanComm returns the average communication cost of edge (from, to) over
// all distinct processor pairs — the c̄(i,j) used by rank computations.
func (in *Instance) MeanComm(from, to dag.TaskID) float64 {
	data, ok := in.G.EdgeData(from, to)
	if !ok {
		return 0
	}
	return in.MeanCommData(data)
}

// MeanCommData returns the average communication cost of moving data units
// between two distinct processors.
func (in *Instance) MeanCommData(data float64) float64 {
	if in.comm == nil {
		return in.Sys.MeanCommCost(data)
	}
	return in.comm.MeanCost(data)
}

// MeanCommSucc returns the mean communication cost of the j-th outgoing
// edge of task i (parallel to G.Succ(i)), from the precomputed per-arc
// table — identical to MeanCommData(G.Succ(i)[j].Data) without the O(p²)
// pair scan.
func (in *Instance) MeanCommSucc(i dag.TaskID, j int) float64 {
	return in.meanCommSucc[in.G.SuccStart(i)+j]
}

// MeanCommPred is MeanCommSucc for the j-th incoming edge of task i
// (parallel to G.Pred(i)).
func (in *Instance) MeanCommPred(i dag.TaskID, j int) float64 {
	return in.meanCommPred[in.G.PredStart(i)+j]
}

// meanCommSuccRow returns the flat mean-comm entries for task i's outgoing
// arcs, parallel to G.Succ(i). Rank kernels use it to hoist the offset
// lookup out of their inner loops.
func (in *Instance) meanCommSuccRow(i dag.TaskID) []float64 {
	lo := in.G.SuccStart(i)
	return in.meanCommSucc[lo : lo+in.G.OutDegree(i)]
}

// meanCommPredRow is meanCommSuccRow for incoming arcs.
func (in *Instance) meanCommPredRow(i dag.TaskID) []float64 {
	lo := in.G.PredStart(i)
	return in.meanCommPred[lo : lo+in.G.InDegree(i)]
}

// CCR returns the realized communication-to-computation ratio: the mean
// edge communication cost (over distinct processor pairs) divided by the
// mean task execution cost.
func (in *Instance) CCR() float64 {
	var comm float64
	edges := in.G.Edges()
	if len(edges) == 0 {
		return 0
	}
	for _, e := range edges {
		comm += in.MeanComm(e.From, e.To)
	}
	comm /= float64(len(edges))
	var comp float64
	for i := 0; i < in.N(); i++ {
		comp += in.meanW[i]
	}
	comp /= float64(in.N())
	if comp == 0 {
		return math.Inf(1)
	}
	return comm / comp
}

// SeqTime returns the best single-processor execution time: the minimum
// over processors of the total load when every task runs there. It is the
// numerator of the standard speedup metric.
func (in *Instance) SeqTime() float64 {
	best := math.Inf(1)
	for p := 0; p < in.P(); p++ {
		var sum float64
		for i := 0; i < in.N(); i++ {
			sum += in.W[i][p]
		}
		if sum < best {
			best = sum
		}
	}
	return best
}

// CPMin returns the critical-path lower bound used by the SLR metric: the
// maximum over paths of the sum of minimum execution costs along the path
// (communication excluded, as both endpoints of any edge could share a
// processor).
func (in *Instance) CPMin() float64 {
	n := in.N()
	down := make([]float64, n)
	for _, v := range in.G.ReverseTopoOrder() {
		best := 0.0
		for _, a := range in.G.Succ(v) {
			if down[a.To] > best {
				best = down[a.To]
			}
		}
		mc, _ := in.MinCost(v)
		down[v] = mc + best
	}
	cp := 0.0
	for _, v := range down {
		if v > cp {
			cp = v
		}
	}
	return cp
}

// String implements fmt.Stringer.
func (in *Instance) String() string {
	return fmt.Sprintf("instance(%s on %s, CCR=%.2f)", in.G, in.Sys, in.CCR())
}
