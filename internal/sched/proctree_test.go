package sched

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// linearBestEFT is the reference O(P) scan, kept verbatim so the property
// tests compare the heap against the canonical semantics even after the
// dispatcher routes large systems to the tree.
func linearBestEFT(pl *Plan, i dag.TaskID, insertion bool) (proc int, start, finish float64) {
	start, finish = math.Inf(1), math.Inf(1)
	for p := 0; p < pl.in.P(); p++ {
		s, f := pl.EFTOn(i, p, insertion)
		if f < finish {
			proc, start, finish = p, s, f
		}
	}
	return proc, start, finish
}

// TestBestEFTTreeMatchesLinear grows random schedules task by task; at
// every step the heap must return the same (proc, start, finish) as the
// linear scan, bit for bit — including ties engineered by integer costs on
// a homogeneous system, partially blocked processors and duplicated
// copies.
func TestBestEFTTreeMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		procs := 2 + rng.Intn(12)
		in := integerInstance(t, rng, 10+rng.Intn(60), procs)
		pl := NewPlan(in)
		if trial%3 == 1 {
			pl.BlockProc(rng.Intn(procs), float64(rng.Intn(20)))
		}
		insertion := trial%2 == 0
		for _, v := range in.G.TopoOrder() {
			lp, ls, lf := linearBestEFT(pl, v, insertion)
			tp, ts, tf := pl.bestEFTTree(v, insertion)
			if lp != tp || ls != ts || lf != tf {
				t.Fatalf("trial %d task %d: tree (%d,%.17g,%.17g) != linear (%d,%.17g,%.17g)",
					trial, v, tp, ts, tf, lp, ls, lf)
			}
			if math.IsInf(lf, 1) {
				// Fully blocked: place on the reference answer's processor
				// is impossible; stop growing this plan.
				break
			}
			pl.Place(v, lp, ls)
			// Occasionally duplicate onto another processor so later
			// data-ready bounds see multi-copy predecessors.
			if rng.Intn(6) == 0 && procs > 1 {
				q := (lp + 1 + rng.Intn(procs-1)) % procs
				ready := pl.DataReady(v, q)
				s := pl.FindSlot(q, ready, in.Cost(v, q), true)
				if !math.IsInf(s, 1) {
					pl.PlaceDup(v, q, s)
				}
			}
		}
	}
}

// TestBestEFTTreeContended repeats the equivalence under a contended
// communication model, where DataReady routes through reservation queries.
func TestBestEFTTreeContended(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		procs := 3 + rng.Intn(6)
		base := integerInstance(t, rng, 8+rng.Intn(40), procs)
		in := base.WithComm(platform.OnePort(base.Sys))
		pl := NewPlan(in)
		for _, v := range in.G.TopoOrder() {
			lp, ls, lf := linearBestEFT(pl, v, true)
			tp, ts, tf := pl.bestEFTTree(v, true)
			if lp != tp || ls != ts || lf != tf {
				t.Fatalf("trial %d task %d: tree (%d,%g,%g) != linear (%d,%g,%g)",
					trial, v, tp, ts, tf, lp, ls, lf)
			}
			pl.Place(v, lp, ls)
		}
	}
}

// TestBestEFTDispatch checks the threshold plumbing: ForceTreeSelect and
// a lowered TreeSelectThreshold both route BestEFT through the heap.
func TestBestEFTDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	in := integerInstance(t, rng, 30, 4)
	run := func() []int {
		pl := NewPlan(in)
		var picks []int
		for _, v := range in.G.TopoOrder() {
			p, s, _ := pl.BestEFT(v, true)
			pl.Place(v, p, s)
			picks = append(picks, p)
		}
		return picks
	}
	base := run()
	oldForce, oldThresh := ForceTreeSelect, TreeSelectThreshold
	defer func() { ForceTreeSelect, TreeSelectThreshold = oldForce, oldThresh }()
	ForceTreeSelect = true
	forced := run()
	ForceTreeSelect = false
	TreeSelectThreshold = 1
	lowered := run()
	for i := range base {
		if base[i] != forced[i] || base[i] != lowered[i] {
			t.Fatalf("pick %d differs: linear %d, forced %d, threshold %d",
				i, base[i], forced[i], lowered[i])
		}
	}
}

// integerInstance builds a random instance with small integer costs and
// comm data so EFT ties across processors are common — the regime where a
// wrong tie-break in the heap shows up immediately.
func integerInstance(t testing.TB, rng *rand.Rand, n, procs int) *Instance {
	t.Helper()
	b := dag.NewBuilder("int")
	for i := 0; i < n; i++ {
		b.AddTask("", float64(1+rng.Intn(5)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				b.AddEdge(dag.TaskID(i), dag.TaskID(j), float64(rng.Intn(4)))
			}
		}
	}
	g := b.MustBuild()
	sys := platform.Homogeneous(procs, 0, 1)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, procs)
		for p := range w[i] {
			w[i][p] = float64(1 + rng.Intn(5))
		}
	}
	in, err := NewInstance(g, sys, w)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}
