package service_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
)

// TestCoalesceIdenticalRequests is the singleflight regression test: a
// burst of identical concurrent requests must compute the schedule
// exactly once — one leader runs the algorithm, the rest park on its
// flight — and the dedup must be visible as requests.coalesced in
// /metrics. Before coalescing, each request enqueued its own job and an
// N-request burst cost N runs.
func TestCoalesceIdenticalRequests(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 250 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers:    4,
		QueueDepth: 64,
		Resolver:   func(string) (algo.Algorithm, error) { return slow, nil },
	})

	inst := instanceJSON(t, testfix.Topcuoglu())
	const burst = 8
	resps := make([]*service.ScheduleResponse, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Schedule(context.Background(), service.ScheduleRequest{
				Algorithm: "slow", Instance: inst,
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if n := slow.starts.Load(); n != 1 {
		t.Errorf("algorithm ran %d times for %d identical concurrent requests, want exactly 1", n, burst)
	}
	var coalescedResps int
	for i, r := range resps {
		if r.Coalesced {
			coalescedResps++
		}
		if r.Makespan != resps[0].Makespan {
			t.Errorf("request %d makespan %v != leader's %v", i, r.Makespan, resps[0].Makespan)
		}
	}
	if coalescedResps == 0 {
		t.Errorf("no response carries coalesced=true out of %d followers", burst-1)
	}

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Requests.Coalesced < 1 {
		t.Errorf("requests.coalesced = %d, want >= 1", snap.Requests.Coalesced)
	}
	if snap.Requests.Coalesced != int64(coalescedResps) {
		t.Errorf("requests.coalesced = %d, but %d responses carry coalesced=true", snap.Requests.Coalesced, coalescedResps)
	}

	// A later identical request is a plain cache hit, not a coalesce.
	r, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "slow", Instance: inst})
	if err != nil {
		t.Fatalf("cached round: %v", err)
	}
	if !r.Cached || r.Coalesced {
		t.Errorf("post-burst request: cached=%v coalesced=%v, want cached=true coalesced=false", r.Cached, r.Coalesced)
	}
	if n := slow.starts.Load(); n != 1 {
		t.Errorf("cached round re-ran the algorithm (starts=%d)", n)
	}
}

// TestCoalesceLeaderDeadlineDoesNotPoisonFollowers pins the follower
// re-loop: when the leader dies of its *own* deadline, a follower whose
// context is still live must not inherit that error — it re-enters the
// flight group and gets a result.
func TestCoalesceLeaderDeadlineDoesNotPoisonFollowers(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 200 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers:    2,
		QueueDepth: 16,
		Resolver:   func(string) (algo.Algorithm, error) { return slow, nil },
	})

	inst := instanceJSON(t, testfix.Topcuoglu())
	var wg sync.WaitGroup
	wg.Add(1)
	leaderErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		// The leader's 50ms deadline expires mid-run.
		_, err := c.Schedule(context.Background(), service.ScheduleRequest{
			Algorithm: "slow", Instance: inst, TimeoutMs: 50,
		})
		leaderErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the leader take the flight
	resp, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "slow", Instance: inst,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("patient follower failed: %v", err)
	}
	if resp.Makespan <= 0 {
		t.Errorf("follower got empty schedule (makespan %v)", resp.Makespan)
	}
	if lerr := <-leaderErr; lerr == nil || !strings.Contains(lerr.Error(), "HTTP 504") {
		t.Errorf("leader: want HTTP 504 deadline error, got %v", lerr)
	}
}
