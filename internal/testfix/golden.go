package testfix

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// This file carries the golden-equivalence fixtures: a deterministic
// battery of named instances plus the recorded makespans and assignment
// digests of every registry algorithm on them, captured from the
// pre-timeline (linear slot-scan) scheduling path. Any refactor of the
// scheduling kernel must reproduce these schedules bit for bit; the test
// lives in internal/algo/suite (which can import the registry) and is
// regenerated with `go test ./internal/algo/suite -run TestGolden -update`.
//
// Digests hash the exact float64 placements, so they are specific to one
// architecture's floating-point behaviour (captured on linux/amd64, where
// the Go compiler does not fuse multiply-adds).

//go:embed golden_sched.json
var goldenJSON []byte

// GoldenRecord is one algorithm's recorded result on one instance.
type GoldenRecord struct {
	Makespan float64 `json:"makespan"`
	Digest   string  `json:"digest"`
}

// GoldenFile maps instance name → algorithm name → recorded result.
type GoldenFile map[string]map[string]GoldenRecord

// Golden parses the embedded golden records.
func Golden() (GoldenFile, error) {
	var gf GoldenFile
	if err := json.Unmarshal(goldenJSON, &gf); err != nil {
		return nil, fmt.Errorf("testfix: bad golden_sched.json: %w", err)
	}
	return gf, nil
}

// NamedInstance is one member of the golden battery.
type NamedInstance struct {
	Name string
	In   *sched.Instance
}

// GoldenInstances returns the deterministic instance battery backing the
// golden-equivalence test: the Topcuoglu fixture, seeded layered random
// DAGs across processor counts / CCRs / heterogeneity (including a
// homogeneous matrix), and structured application graphs.
func GoldenInstances() []NamedInstance {
	out := []NamedInstance{{Name: "topcuoglu-fig1", In: Topcuoglu()}}

	randomCases := []struct {
		name      string
		n, procs  int
		ccr, beta float64
		seed      int64
	}{
		{"random-n25-p3-ccr0.5", 25, 3, 0.5, 1.0, 11},
		{"random-n60-p4-ccr1", 60, 4, 1, 0.75, 12},
		{"random-n60-p8-ccr5", 60, 8, 5, 1.5, 13},
		{"random-n120-p6-ccr1", 120, 6, 1, 1.0, 14},
		{"random-n120-p4-ccr10", 120, 4, 10, 0.5, 15},
		{"random-n60-p4-homog", 60, 4, 1, 0, 16},
	}
	for _, c := range randomCases {
		rng := rand.New(rand.NewSource(c.seed))
		g, err := workload.Random(workload.RandomConfig{N: c.n}, rng)
		if err != nil {
			panic(err)
		}
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: c.procs, CCR: c.ccr, Beta: c.beta}, rng)
		if err != nil {
			panic(err)
		}
		out = append(out, NamedInstance{Name: c.name, In: in})
	}

	structured := []struct {
		name string
		g    func() (*dag.Graph, error)
	}{
		{"gauss-m6", func() (*dag.Graph, error) { return workload.GaussianElimination(6) }},
		{"fft-n8", func() (*dag.Graph, error) { return workload.FFT(8) }},
		{"forkjoin-4x3", func() (*dag.Graph, error) { return workload.ForkJoin(4, 3) }},
		{"cholesky-t4", func() (*dag.Graph, error) { return workload.Cholesky(4) }},
		{"pipeline-2-4-4-2", func() (*dag.Graph, error) { return workload.Pipeline([]int{2, 4, 4, 2}) }},
		{"montage-5", func() (*dag.Graph, error) { return workload.Montage(5) }},
	}
	for i, c := range structured {
		g, err := c.g()
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(100 + int64(i)))
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 4, CCR: 1, Beta: 0.75}, rng)
		if err != nil {
			panic(err)
		}
		out = append(out, NamedInstance{Name: c.name, In: in})
	}
	return out
}

// ScheduleDigest returns a stable hex digest of every placement in the
// schedule: per processor in start order, each copy's task, exact start
// and finish bits, and duplicate flag. Two schedules share a digest iff
// they place the same copies at the same float64 times.
func ScheduleDigest(s *sched.Schedule) string {
	var b strings.Builder
	for p := 0; p < s.Instance().P(); p++ {
		fmt.Fprintf(&b, "P%d:", p)
		for _, a := range s.OnProc(p) {
			fmt.Fprintf(&b, "%d@%x..%x", a.Task, a.Start, a.Finish)
			if a.Dup {
				b.WriteString("d")
			}
			b.WriteString(";")
		}
		b.WriteString("|")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
