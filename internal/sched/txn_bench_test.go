package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// benchChainPlan builds a plan with n tasks placed round-robin over 8
// processors, leaving realistic gap structure for speculative trials.
func benchChainPlan(b *testing.B, n int) (*Instance, *Plan) {
	b.Helper()
	bld := dag.NewBuilder("bench")
	rng := rand.New(rand.NewSource(7))
	prev := dag.TaskID(-1)
	for i := 0; i < n; i++ {
		t := bld.AddTask("t", 1+rng.Float64()*4)
		if prev != -1 {
			bld.AddEdge(prev, t, rng.Float64()*5)
		}
		prev = t
	}
	in := Consistent(bld.MustBuild(), platform.Homogeneous(8, 0, 1))
	pl := NewPlan(in)
	for i := 0; i < n-1; i++ {
		p, s, _ := pl.BestEFT(dag.TaskID(i), true)
		pl.Place(dag.TaskID(i), p, s)
	}
	return in, pl
}

// BenchmarkTxnBeginRollback measures the fixed cost of a speculative
// trial that places one task and one duplicate and is then abandoned —
// the dominant operation of the duplication schedulers. The cost must be
// O(changes), independent of how much schedule the plan already holds
// (compare n100 with n1000).
func BenchmarkTxnBeginRollback(b *testing.B) {
	for _, tc := range []struct {
		name string
		n    int
	}{{"n100", 100}, {"n1000", 1000}} {
		in, pl := benchChainPlan(b, tc.n)
		last := dag.TaskID(tc.n - 1)
		parent := dag.TaskID(tc.n - 2)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			tx := pl.Begin()
			for i := 0; i < b.N; i++ {
				tx.Reset()
				m := tx.Mark()
				ps := tx.FindSlot(3, tx.DataReady(parent, 3), in.Cost(parent, 3), true)
				tx.PlaceDup(parent, 3, ps)
				s := tx.FindSlot(3, tx.DataReady(last, 3), in.Cost(last, 3), true)
				tx.Place(last, 3, s)
				tx.Undo(m)
			}
		})
	}
}

// BenchmarkTxnCommit measures committing a small winning trial into a
// large plan: O(touched timelines), not O(plan).
func BenchmarkTxnCommit(b *testing.B) {
	in, pl := benchChainPlan(b, 1000)
	last := dag.TaskID(999)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := pl.Clone()
		tx := work.Begin()
		s := tx.FindSlot(3, tx.DataReady(last, 3), in.Cost(last, 3), true)
		tx.Place(last, 3, s)
		b.StartTimer()
		tx.Commit()
	}
}
