package sim

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func heftTopcuoglu(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := listsched.HEFT{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Jitter: 1.5},
		{Jitter: math.NaN()},
		{Crashes: []Crash{{Proc: -1, At: 1}}},
		{Crashes: []Crash{{Proc: 9, At: 1}}},
		{Crashes: []Crash{{Proc: 0, At: -2}}},
		{Crashes: []Crash{{Proc: 0, At: math.Inf(1)}}},
		{Crashes: []Crash{{Proc: 0, At: 5, Until: 3}}},
		{Links: []LinkFault{{From: -2, To: 0, At: 0, Factor: 2}}},
		{Links: []LinkFault{{From: 0, To: 9, At: 0, Factor: 2}}},
		{Links: []LinkFault{{From: 0, To: 1, At: 3, Until: 2, Factor: 2}}},
		{Links: []LinkFault{{From: 0, To: 1, At: 0, Factor: 0.5}}},
		{Links: []LinkFault{{From: 0, To: 1, At: 0, Outage: true, Factor: 2}}},
	}
	for i, fp := range bad {
		fp := fp
		if err := fp.Validate(3); err == nil {
			t.Errorf("plan %d: want error, got nil", i)
		}
	}
	good := FaultPlan{
		Crashes: []Crash{{Proc: 0, At: 5}, {Proc: 1, At: 2, Until: 4}},
		Links:   []LinkFault{{From: -1, To: 2, At: 1, Until: 8, Factor: 3}, {From: 0, To: 1, At: 0, Outage: true}},
		Jitter:  0.2, Seed: 7,
	}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// procs <= 0 skips range checks but keeps structural ones.
	oob := FaultPlan{Crashes: []Crash{{Proc: 99, At: 1}}}
	if err := oob.Validate(0); err != nil {
		t.Fatalf("range check should be deferred: %v", err)
	}
	if err := oob.Validate(3); !errors.Is(err, ErrProcRange) {
		t.Fatalf("want ErrProcRange, got %v", err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(3); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestReadFaultPlan(t *testing.T) {
	fp, err := ReadFaultPlan(strings.NewReader(
		`{"crashes":[{"proc":1,"at":3.5}],"links":[{"from":-1,"to":0,"at":1,"until":2,"factor":4}],"jitter":0.1,"seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Crashes) != 1 || fp.Crashes[0].Proc != 1 || fp.Jitter != 0.1 || fp.Seed != 9 {
		t.Fatalf("decoded %+v", fp)
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"crashs":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{"crashes":[{"proc":0,"at":-1}]}`)); err == nil {
		t.Fatal("invalid crash accepted")
	}
	if _, err := ReadFaultPlan(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestSampleCrashes(t *testing.T) {
	a := SampleCrashes(8, 0.5, 100, 42)
	b := SampleCrashes(8, 0.5, 100, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sampling is not deterministic per seed")
	}
	if len(SampleCrashes(8, 0, 100, 1).Crashes) != 0 {
		t.Fatal("rate 0 crashed something")
	}
	for seed := int64(0); seed < 50; seed++ {
		fp := SampleCrashes(4, 1, 100, seed)
		if len(fp.Crashes) >= 4 {
			t.Fatalf("seed %d: no survivor left", seed)
		}
		for _, c := range fp.Crashes {
			if c.Proc < 0 || c.Proc >= 4 || c.At < 0 || c.At >= 100 || c.Until != 0 {
				t.Fatalf("seed %d: implausible crash %+v", seed, c)
			}
		}
	}
}

// TestRunProcRangeTypedError is the regression test for the historical
// panic: a schedule rebuilt from external placements can reference a
// processor the platform does not have, and Run must refuse with a typed
// error instead of indexing the cost matrix out of range.
func TestRunProcRangeTypedError(t *testing.T) {
	in := testfix.Topcuoglu()
	s, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	as := s.All()
	as[len(as)-1].Proc = in.P() + 3
	rogue, err := sched.FromAssignments(in, "import", as)
	if err != nil {
		t.Fatalf("FromAssignments should defer the range check: %v", err)
	}
	if _, err := Run(rogue, Config{}); !errors.Is(err, ErrProcRange) {
		t.Fatalf("want ErrProcRange, got %v", err)
	}
	// A fault plan naming an out-of-range processor is the same class.
	good := heftTopcuoglu(t)
	bad := &FaultPlan{Crashes: []Crash{{Proc: 99, At: 1}}}
	if _, err := Run(good, Config{Faults: bad}); !errors.Is(err, ErrProcRange) {
		t.Fatalf("want ErrProcRange for fault plan, got %v", err)
	}
}

func TestEmptyFaultPlanMatchesPlainReplay(t *testing.T) {
	s := heftTopcuoglu(t)
	plain, err := Run(s, Config{Noise: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(s, Config{Noise: 0.2, Seed: 5, Faults: &FaultPlan{}})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Makespan != plain.Makespan || !reflect.DeepEqual(faulted.Start, plain.Start) {
		t.Fatalf("empty fault plan changed the replay: %g vs %g", faulted.Makespan, plain.Makespan)
	}
	if faulted.Faults == nil || faulted.Faults.Completed != s.Instance().N() || len(faulted.Faults.Stranded) != 0 {
		t.Fatalf("degradation report %+v", faulted.Faults)
	}
	if plain.Faults != nil {
		t.Fatal("plain replay grew a fault report")
	}
}

func TestPermanentCrashStrandsWork(t *testing.T) {
	s := heftTopcuoglu(t)
	in := s.Instance()
	// Find the processor with the most work and kill it early.
	target, most := 0, 0
	for p := 0; p < in.P(); p++ {
		if len(s.OnProc(p)) > most {
			target, most = p, len(s.OnProc(p))
		}
	}
	fp := &FaultPlan{Crashes: []Crash{{Proc: target, At: s.Makespan() * 0.25}}}
	rep, err := Run(s, Config{Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if fr == nil {
		t.Fatal("no fault report")
	}
	if len(fr.Stranded) == 0 {
		t.Fatalf("killing the busiest processor at 25%% stranded nothing: %+v", fr)
	}
	if fr.Completed+len(fr.Stranded) != in.N() {
		t.Fatalf("completed %d + stranded %d != %d tasks", fr.Completed, len(fr.Stranded), in.N())
	}
	if fr.Nominal != s.Makespan() {
		t.Fatalf("nominal %g != %g", fr.Nominal, s.Makespan())
	}
	for _, task := range fr.Stranded {
		if !math.IsInf(rep.Start[task], 1) || !math.IsInf(rep.Finish[task], 1) {
			t.Fatalf("stranded task %d has finite times [%g, %g]", task, rep.Start[task], rep.Finish[task])
		}
	}
	// Deterministic: identical plan, identical report.
	rep2, err := Run(s, Config{Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Faults, rep2.Faults) || rep.Makespan != rep2.Makespan {
		t.Fatal("faulted replay is not deterministic")
	}
}

func TestTransientCrashRestartsWork(t *testing.T) {
	s := heftTopcuoglu(t)
	in := s.Instance()
	ms := s.Makespan()
	// A mid-schedule outage on every processor guarantees something is
	// running when it strikes.
	var cs []Crash
	for p := 0; p < in.P(); p++ {
		cs = append(cs, Crash{Proc: p, At: ms * 0.4, Until: ms * 0.5})
	}
	rep, err := Run(s, Config{Faults: &FaultPlan{Crashes: cs}})
	if err != nil {
		t.Fatal(err)
	}
	fr := rep.Faults
	if len(fr.Stranded) != 0 {
		t.Fatalf("transient outage stranded %v", fr.Stranded)
	}
	if fr.Killed == 0 || fr.Restarts != fr.Killed {
		t.Fatalf("killed %d restarts %d; want equal and positive", fr.Killed, fr.Restarts)
	}
	if rep.Makespan <= ms {
		t.Fatalf("outage did not stretch the makespan: %g <= %g", rep.Makespan, ms)
	}
	if fr.Completed != in.N() {
		t.Fatalf("completed %d of %d", fr.Completed, in.N())
	}
}

func TestLinkSlowdownStretchesArrivals(t *testing.T) {
	s := heftTopcuoglu(t)
	base, err := Run(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow := &FaultPlan{Links: []LinkFault{{From: -1, To: -1, At: 0, Factor: 10}}}
	rep, err := Run(s, Config{Faults: slow})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= base.Makespan {
		t.Fatalf("10x slower links did not stretch the makespan: %g <= %g", rep.Makespan, base.Makespan)
	}
	if len(rep.Faults.Stranded) != 0 {
		t.Fatalf("slowdown stranded %v", rep.Faults.Stranded)
	}
}

func TestLinkOutageWindowDefersTransfers(t *testing.T) {
	s := heftTopcuoglu(t)
	ms := s.Makespan()
	outage := &FaultPlan{Links: []LinkFault{{From: -1, To: -1, At: 0, Until: ms, Outage: true}}}
	rep, err := Run(s, Config{Faults: outage})
	if err != nil {
		t.Fatal(err)
	}
	// Every transfer is deferred past the nominal makespan, so anything
	// needing cross-processor data finishes after it.
	if rep.Makespan <= ms {
		t.Fatalf("full outage window did not delay completion: %g <= %g", rep.Makespan, ms)
	}
}

func TestFaultJitterIndependentOfNoiseSeed(t *testing.T) {
	s := heftTopcuoglu(t)
	fp := &FaultPlan{Jitter: 0.3, Seed: 11}
	a, err := Run(s, Config{Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, Config{Faults: fp, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("fault jitter depends on Config.Seed: %g vs %g", a.Makespan, b.Makespan)
	}
	c, err := Run(s, Config{Faults: &FaultPlan{Jitter: 0.3, Seed: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Fatalf("different jitter seeds agreed exactly: %g", c.Makespan)
	}
}
