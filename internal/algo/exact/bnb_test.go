package exact

import (
	"errors"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestName(t *testing.T) {
	if (BnB{}).Name() != "OPT" {
		t.Fatal("bad name")
	}
}

func TestChainOptimal(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 4; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 5)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	s, err := BnB{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 8 {
		t.Fatalf("optimal chain makespan = %g, want 8", s.Makespan())
	}
}

func TestIndependentOptimal(t *testing.T) {
	// 5 unit tasks, 2 processors: optimal = ceil(5/2)*1 = 3.
	b := dag.NewBuilder("indep")
	for i := 0; i < 5; i++ {
		b.AddTask("", 1)
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(2, 0, 1))
	s, err := BnB{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("makespan = %g, want 3", s.Makespan())
	}
}

func TestHeterogeneousAssignmentOptimal(t *testing.T) {
	// Two independent tasks, each fast on a different processor.
	b := dag.NewBuilder("het")
	b.AddTask("", 1)
	b.AddTask("", 1)
	w := [][]float64{{1, 10}, {10, 1}}
	in, err := sched.NewInstance(b.MustBuild(), platform.Homogeneous(2, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BnB{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 1 {
		t.Fatalf("makespan = %g, want 1", s.Makespan())
	}
}

func TestCommTradeoffOptimal(t *testing.T) {
	// Diamond where the best schedule keeps everything on one processor:
	// comm is expensive.
	b := dag.NewBuilder("diamond")
	t0 := b.AddTask("", 2)
	t1 := b.AddTask("", 3)
	t2 := b.AddTask("", 1)
	t3 := b.AddTask("", 4)
	b.AddEdge(t0, t1, 100)
	b.AddEdge(t0, t2, 100)
	b.AddEdge(t1, t3, 100)
	b.AddEdge(t2, t3, 100)
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	s, err := BnB{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 10 {
		t.Fatalf("makespan = %g, want 10 (serial on one proc)", s.Makespan())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A generous instance with an absurdly small budget returns ErrBudget
	// and still produces a valid schedule (the greedy incumbent).
	in := testfix.Topcuoglu()
	s, err := BnB{NodeBudget: 10}.Schedule(in)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ms, proven, err := BnB{NodeBudget: 10}.Makespan(in)
	if err != nil || proven {
		t.Fatalf("Makespan = %g proven=%v err=%v", ms, proven, err)
	}
}

// No heuristic may ever beat the proven optimum.
func TestHeuristicsNeverBeatOptimal(t *testing.T) {
	algs := []algo.Algorithm{
		listsched.HEFT{}, listsched.CPOP{}, listsched.DLS{}, listsched.MCP{},
		listsched.ETF{}, listsched.HLFET{}, listsched.ISH{},
		dup.DSH{}, dup.BTDH{},
		core.New(), core.NoDuplication(), core.NoLookahead(), core.RankOnly(),
	}
	testfix.Battery(testfix.BatteryConfig{Trials: 25, MaxTasks: 8, MaxProcs: 3, Seed: 505}, func(trial int, in *sched.Instance) {
		opt, proven, err := BnB{}.Makespan(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !proven {
			t.Fatalf("trial %d: budget exhausted on a tiny instance", trial)
		}
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			// Duplication heuristics CAN beat the duplication-free
			// optimum; the bound applies only to non-duplicating ones.
			if s.NumDuplicates() == 0 && s.Makespan() < opt-1e-6 {
				t.Fatalf("trial %d: %s makespan %g beats optimum %g", trial, a.Name(), s.Makespan(), opt)
			}
		}
	})
}

// The optimum never exceeds any heuristic.
func TestOptimalNeverWorseThanHEFT(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 20, MaxTasks: 8, MaxProcs: 3, Seed: 606}, func(trial int, in *sched.Instance) {
		opt, proven, err := BnB{}.Makespan(in)
		if err != nil || !proven {
			t.Fatalf("trial %d: %v proven=%v", trial, err, proven)
		}
		h, _ := listsched.HEFT{}.Schedule(in)
		if opt > h.Makespan()+1e-6 {
			t.Fatalf("trial %d: optimum %g worse than HEFT %g", trial, opt, h.Makespan())
		}
	})
}

func TestOptimalSchedulesValidate(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 15, MaxTasks: 7, MaxProcs: 3, Seed: 707}, func(trial int, in *sched.Instance) {
		s, err := BnB{}.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	})
}

func TestSymmetryDetection(t *testing.T) {
	b := dag.NewBuilder("two")
	b.AddTask("", 1)
	b.AddTask("", 2)
	homo := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	if !fullySymmetric(homo) {
		t.Fatal("homogeneous instance not detected as symmetric")
	}
	hetSys := platform.MustNew(platform.Config{Speeds: []float64{1, 2}, TimePerUnit: 1})
	het := sched.Consistent(b.MustBuild(), hetSys)
	if fullySymmetric(het) {
		t.Fatal("heterogeneous instance detected as symmetric")
	}
}
