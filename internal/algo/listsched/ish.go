package listsched

import (
	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// ISH is the Insertion Scheduling Heuristic of Kruatrachue and Lewis
// (1987): HLFET extended with hole filling. Whenever placing a task leaves
// an idle hole in front of it on its processor, ISH packs other ready
// tasks into the hole, highest static level first, as long as they fit
// without delaying the placed task.
type ISH struct{}

// Name implements algo.Algorithm.
func (ISH) Name() string { return "ISH" }

// Schedule implements algo.Algorithm.
func (ISH) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	const eps = 1e-9
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || sl[r] > sl[pick] {
				pick = r
			}
		}
		bestP, bestS := -1, 0.0
		holeStart := 0.0
		for p := 0; p < in.P(); p++ {
			s, _ := pl.EFTOn(pick, p, false)
			if bestP == -1 || s < bestS {
				bestP, bestS = p, s
				holeStart = pl.ProcReady(p)
			}
		}
		pl.Place(pick, bestP, bestS)
		rl.Complete(pick)
		if bestS <= holeStart+eps {
			continue // no hole created
		}
		// Fill the hole [holeStart, bestS) with ready tasks, highest
		// static level first. Each fill may release new ready tasks, which
		// are considered too; the loop ends when nothing fits.
		for {
			var fill dag.TaskID = -1
			fillStart := 0.0
			for _, r := range rl.Ready() {
				s, f := pl.EFTOn(r, bestP, true)
				if f <= bestS+eps && (fill == -1 || sl[r] > sl[fill]) {
					fill, fillStart = r, s
				}
			}
			if fill == -1 {
				break
			}
			pl.Place(fill, bestP, fillStart)
			rl.Complete(fill)
		}
	}
	return pl.Finalize("ISH"), nil
}
