package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// TestNewInstanceGrownMatchesFresh grows a graph in batches, chaining
// NewInstanceGrown, and checks every cached statistic bit-identical to a
// fresh NewInstance of the same graph at every step.
func TestNewInstanceGrownMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := platform.Homogeneous(4, 1.5, 0.5)
	ap := dag.NewAppendable("grow")
	var w [][]float64

	var prev *Instance
	for batch := 0; batch < 12; batch++ {
		for k := 0; k < 8; k++ {
			id, err := ap.AddTask("", float64(1+rng.Intn(9)))
			if err != nil {
				t.Fatal(err)
			}
			row := make([]float64, sys.Len())
			for p := range row {
				row[p] = float64(1+rng.Intn(9)) * (0.5 + rng.Float64())
			}
			w = append(w, row)
			for tries := 0; tries < 2 && id > 0; tries++ {
				from := dag.TaskID(rng.Intn(int(id)))
				// Ignore duplicates: the random draw may repeat an edge.
				_ = ap.AddEdge(from, id, float64(rng.Intn(20)))
			}
		}
		g, err := ap.Seal()
		if err != nil {
			t.Fatal(err)
		}
		var grown *Instance
		if prev == nil {
			grown, err = NewInstance(g, sys, w)
		} else {
			grown, err = NewInstanceGrown(prev, g, w)
		}
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewInstance(g, sys, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Len(); i++ {
			v := dag.TaskID(i)
			if grown.MeanCost(v) != fresh.MeanCost(v) || grown.SigmaCost(v) != fresh.SigmaCost(v) {
				t.Fatalf("batch %d task %d: stats differ: mean %x/%x sigma %x/%x", batch, i,
					grown.MeanCost(v), fresh.MeanCost(v), grown.SigmaCost(v), fresh.SigmaCost(v))
			}
			for p := 0; p < sys.Len(); p++ {
				if grown.Cost(v, p) != fresh.Cost(v, p) {
					t.Fatalf("batch %d task %d proc %d: cost differs", batch, i, p)
				}
			}
			for j := range g.Succ(v) {
				if grown.MeanCommSucc(v, j) != fresh.MeanCommSucc(v, j) {
					t.Fatalf("batch %d task %d succ arc %d: mean comm %x != %x", batch, i, j,
						grown.MeanCommSucc(v, j), fresh.MeanCommSucc(v, j))
				}
			}
			for j := range g.Pred(v) {
				if grown.MeanCommPred(v, j) != fresh.MeanCommPred(v, j) {
					t.Fatalf("batch %d task %d pred arc %d: mean comm %x != %x", batch, i, j,
						grown.MeanCommPred(v, j), fresh.MeanCommPred(v, j))
				}
			}
		}
		// The upward ranks — the digest-critical consumer — agree too.
		gr, fr := RankUpward(grown), RankUpward(fresh)
		for i := range gr {
			if gr[i] != fr[i] {
				t.Fatalf("batch %d: rank[%d] %x != %x", batch, i, gr[i], fr[i])
			}
		}
		prev = grown
	}
}

func TestNewInstanceGrownValidates(t *testing.T) {
	ap := dag.NewAppendable("g")
	ap.AddTask("", 1)
	g, err := ap.Seal()
	if err != nil {
		t.Fatal(err)
	}
	sys := platform.Homogeneous(2, 0, 1)
	in, err := NewInstance(g, sys, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ap.AddTask("", 2)
	g2, err := ap.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstanceGrown(in, g2, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short cost matrix accepted")
	}
	if _, err := NewInstanceGrown(in, g2, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged cost row accepted")
	}
	if _, err := NewInstanceGrown(in, g2, [][]float64{{1, 2}, {3, -1}}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := NewInstanceGrown(in, g, [][]float64{{1, 2}}); err != nil {
		t.Fatalf("no-op grow rejected: %v", err)
	}
}
