package listsched

import (
	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// HLFET is Highest Level First with Estimated Times (Adam, Chandy, Dickson
// 1974), the archetypal list scheduler: ready tasks are consumed in
// decreasing static level and placed on the processor giving the earliest
// start time, without insertion.
type HLFET struct{}

// Name implements algo.Algorithm.
func (HLFET) Name() string { return "HLFET" }

// Schedule implements algo.Algorithm.
func (HLFET) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || sl[r] > sl[pick] {
				pick = r
			}
		}
		bestP, bestS := -1, 0.0
		for p := 0; p < in.P(); p++ {
			s, _ := pl.EFTOn(pick, p, false)
			if bestP == -1 || s < bestS {
				bestP, bestS = p, s
			}
		}
		pl.Place(pick, bestP, bestS)
		rl.Complete(pick)
	}
	return pl.Finalize("HLFET"), nil
}
