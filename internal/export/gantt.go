// Package export renders schedules and experiment data for humans: text
// and SVG Gantt charts and CSV tables.
package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dagsched/internal/sched"
)

// WriteGanttText renders an ASCII Gantt chart of the schedule, one row per
// processor, width columns wide. Duplicated copies render in parentheses.
func WriteGanttText(w io.Writer, s *sched.Schedule, width int) error {
	if width < 20 {
		width = 80
	}
	ms := s.Makespan()
	if ms == 0 {
		ms = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  makespan=%.4g\n", s.Algorithm(), s.Makespan())
	in := s.Instance()
	scale := float64(width) / ms
	for p := 0; p < in.P(); p++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		labels := make([]string, 0, 4)
		for _, a := range s.OnProc(p) {
			from := int(a.Start * scale)
			to := int(a.Finish * scale)
			if to >= width {
				to = width - 1
			}
			ch := byte('#')
			if a.Dup {
				ch = '+'
			}
			for i := from; i <= to && i < width; i++ {
				row[i] = ch
			}
			name := in.G.Task(a.Task).Name
			if a.Dup {
				name = "(" + name + ")"
			}
			labels = append(labels, fmt.Sprintf("%s@%.4g", name, a.Start))
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", p, string(row))
		if len(labels) > 0 {
			fmt.Fprintf(&b, "      %s\n", strings.Join(labels, " "))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// svgPalette cycles task colors deterministically by task id.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteGanttSVG renders the schedule as a self-contained SVG: one lane per
// processor, one rectangle per task copy (duplicates hatched lighter),
// labeled with the task name.
func WriteGanttSVG(w io.Writer, s *sched.Schedule) error {
	const (
		laneH   = 34
		laneGap = 8
		leftPad = 52
		topPad  = 34
		pxPerT  = 9.0
		minW    = 480.0
	)
	in := s.Instance()
	ms := s.Makespan()
	if ms <= 0 {
		ms = 1
	}
	chartW := ms * pxPerT
	if chartW < minW {
		chartW = minW
	}
	scale := chartW / ms
	height := topPad + in.P()*(laneH+laneGap) + 24
	width := int(chartW) + leftPad + 24

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s — makespan %.4g</text>`+"\n", leftPad, xmlEscape(s.Algorithm()), s.Makespan())
	for p := 0; p < in.P(); p++ {
		y := topPad + p*(laneH+laneGap)
		fmt.Fprintf(&b, `<text x="6" y="%d">P%d</text>`+"\n", y+laneH/2+4, p)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#f4f4f4"/>`+"\n", leftPad, y, chartW, laneH)
		for _, a := range s.OnProc(p) {
			x := float64(leftPad) + a.Start*scale
			wd := a.Duration() * scale
			if wd < 1 {
				wd = 1
			}
			color := svgPalette[int(a.Task)%len(svgPalette)]
			opacity := "1.0"
			if a.Dup {
				opacity = "0.45"
			}
			name := in.G.Task(a.Task).Name
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="%s" stroke="#333" stroke-width="0.5"><title>%s [%.4g,%.4g) on P%d dup=%v</title></rect>`+"\n",
				x, y+2, wd, laneH-4, color, opacity, xmlEscape(name), a.Start, a.Finish, p, a.Dup)
			if wd > 24 {
				fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#fff">%s</text>`+"\n", x+3, y+laneH/2+4, xmlEscape(name))
			}
		}
	}
	// Time axis.
	axisY := topPad + in.P()*(laneH+laneGap) + 12
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n", leftPad, axisY, float64(leftPad)+chartW, axisY)
	step := niceStep(ms)
	for t := 0.0; t <= ms+1e-9; t += step {
		x := float64(leftPad) + t*scale
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n", x, axisY-3, x, axisY+3)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%.4g</text>`+"\n", x, axisY+14, t)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// niceStep picks a readable axis tick step for a span.
func niceStep(span float64) float64 {
	steps := []float64{1, 2, 5}
	mag := 1.0
	for {
		for _, s := range steps {
			if span/(s*mag) <= 12 {
				return s * mag
			}
		}
		mag *= 10
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteCSV writes rows as comma-separated values with a header. Cells are
// quoted when they contain commas or quotes.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortAssignmentsForDisplay orders assignments by (proc, start) — a
// convenience for stable textual dumps.
func SortAssignmentsForDisplay(as []sched.Assignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Proc != as[j].Proc {
			return as[i].Proc < as[j].Proc
		}
		return as[i].Start < as[j].Start
	})
}
