package workload

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
)

func TestEpigenomics(t *testing.T) {
	g, err := Epigenomics(2, 3)
	if err != nil {
		t.Fatalf("Epigenomics: %v", err)
	}
	// Per lane: split + merge + 4 tasks per chunk; global: merge + index + pileup.
	want := 2*(2+3*4) + 3
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	// Single exit: the pileup task.
	if x := g.Exits(); len(x) != 1 || g.Task(x[0]).Name != "pileup" {
		t.Fatalf("Exits = %v", x)
	}
	// Entries: one split per lane.
	if e := g.Entries(); len(e) != 2 {
		t.Fatalf("Entries = %v", e)
	}
	if _, err := Epigenomics(0, 1); err == nil {
		t.Fatal("0 lanes accepted")
	}
	if _, err := Epigenomics(1, 0); err == nil {
		t.Fatal("0 chunks accepted")
	}
}

func TestCyberShake(t *testing.T) {
	g, err := CyberShake(5)
	if err != nil {
		t.Fatalf("CyberShake: %v", err)
	}
	// agg + per site: extract + 2*(seis+peak).
	want := 1 + 5*(1+4)
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	// The hazard task has 2 parents per site.
	agg := dag.TaskID(0)
	if g.Task(agg).Name != "hazard" {
		t.Fatalf("task 0 = %q", g.Task(agg).Name)
	}
	if got := g.InDegree(agg); got != 10 {
		t.Fatalf("hazard in-degree = %d, want 10", got)
	}
	if _, err := CyberShake(0); err == nil {
		t.Fatal("0 sites accepted")
	}
}

func TestLIGO(t *testing.T) {
	g, err := LIGO(3, 4)
	if err != nil {
		t.Fatalf("LIGO: %v", err)
	}
	// Per group: tmplt + thinca1 + thinca2 + perGroup*(insp + trig + insp2); final coherence.
	want := 3*(3+4*3) + 1
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	if x := g.Exits(); len(x) != 1 || g.Task(x[0]).Name != "coherence" {
		t.Fatalf("Exits = %v", x)
	}
	// Two-stage structure: height is 7 (tmplt, insp, thinca1, trig, insp2, thinca2, coherence).
	if h := g.Height(); h != 7 {
		t.Fatalf("Height = %d, want 7", h)
	}
	if _, err := LIGO(0, 1); err == nil {
		t.Fatal("0 groups accepted")
	}
	if _, err := LIGO(1, 0); err == nil {
		t.Fatal("0 perGroup accepted")
	}
}

func TestMakeInstanceLinkSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, _ := Random(RandomConfig{N: 20}, rng)
	in, err := MakeInstance(g, HetConfig{Procs: 4, CCR: 1, Beta: 0.5, LinkSpread: 1.0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Links must differ and stay within the spread bounds.
	distinct := false
	ref := in.Sys.CommCost(0, 1, 1)
	for p := 0; p < in.P(); p++ {
		for q := 0; q < in.P(); q++ {
			if p == q {
				continue
			}
			c := in.Sys.CommCost(p, q, 1)
			if c < 0.5-1e-9 || c > 1.5+1e-9 {
				t.Fatalf("link %d->%d cost %g outside [0.5,1.5]", p, q, c)
			}
			if c != ref {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("all links identical despite spread")
	}
	if _, err := MakeInstance(g, HetConfig{Procs: 2, LinkSpread: 2.5}, rng); err == nil {
		t.Fatal("spread 2.5 accepted")
	}
}

// All three schedule validly end to end.
func TestWorkflowsSchedulable(t *testing.T) {
	gens := []func() (*dag.Graph, error){
		func() (*dag.Graph, error) { return Epigenomics(3, 2) },
		func() (*dag.Graph, error) { return CyberShake(6) },
		func() (*dag.Graph, error) { return LIGO(2, 5) },
	}
	for _, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		// Structure sanity shared by all workflows: connected levels, at
		// least 3 levels, positive weights.
		if g.Height() < 3 {
			t.Fatalf("%s too shallow", g.Name())
		}
		for _, task := range g.Tasks() {
			if task.Weight <= 0 {
				t.Fatalf("%s task %d has weight %g", g.Name(), task.ID, task.Weight)
			}
		}
	}
}
