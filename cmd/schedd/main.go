// Command schedd serves task-graph scheduling over HTTP: POST a problem
// instance (or a bare graph) plus an algorithm name to /v1/schedule and
// get the schedule, its measures and an optional analysis back. See
// docs/SERVICE.md for the API.
//
// Usage:
//
//	schedd                                  # serve on 127.0.0.1:8080
//	schedd -addr :9000 -workers 4           # custom bind and pool size
//	schedd -timeout 10s -max-timeout 1m     # tighter deadlines
//	schedd -cache 0                         # disable the result cache
//
// A cluster shards its cache over a consistent-hash ring: start every
// node with the same -peers list and its own -self URL, e.g.
//
//	schedd -addr :8080 -self http://10.0.0.1:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
// Membership is dynamic after that: nodes heartbeat each other, mark
// silent peers suspect then dead (resharding around them), and a new
// or restarted node joins a running ring through any live member:
//
//	schedd -addr :8084 -self http://10.0.0.4:8084 -join http://10.0.0.1:8080
//
// Cached results are replicated to -replication ring successors, so a
// node's death does not cold-start its keyspace.
//
// SIGINT/SIGTERM shut the server down gracefully: the node announces
// its leave to the ring, hands its hottest cache entries to their new
// owners, then drains in-flight requests for up to -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dagsched"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent scheduling runs (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "request queue depth; a full queue answers 503")
		cache      = flag.Int("cache", 256, "LRU result-cache entries (negative disables)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request scheduling deadline")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		batchMax   = flag.Int("batch-max", 0, "max items per batch request (0 = default 256)")
		self       = flag.String("self", "", "this node's base URL on the ring (required with -peers or -join)")
		peersCSV   = flag.String("peers", "", "comma-separated base URLs of all ring members, self included")
		join       = flag.String("join", "", "base URL of a live ring member to join (alternative to -peers)")
		replicas   = flag.Int("replication", 2, "cache replicas pushed to ring successors (0 disables)")
		heartbeat  = flag.Duration("heartbeat", 500*time.Millisecond, "membership heartbeat interval")
		suspect    = flag.Duration("suspect-after", 2*time.Second, "silence before a peer is suspected (dead at twice this)")
		probeTO    = flag.Duration("probe-timeout", 0, "peer cache-probe and replica-push timeout (0 = default 500ms)")
	)
	flag.Parse()

	var peers []string
	for _, p := range strings.Split(*peersCSV, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}

	opts := dagsched.ServiceOptions{
		Addr:              *addr,
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cache,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxBatchItems:     *batchMax,
		SelfURL:           strings.TrimRight(*self, "/"),
		Peers:             peers,
		JoinURL:           strings.TrimRight(*join, "/"),
		Replication:       *replicas,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspect,
		ProbeTimeout:      *probeTO,
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = -1 // flag 0 means off; Options treats 0 as default
	}
	if opts.Replication == 0 {
		opts.Replication = -1 // flag 0 means off; Options treats 0 as default
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "schedd: serving on %s (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)
	if len(peers) > 1 {
		fmt.Fprintf(os.Stderr, "schedd: sharding as %s across %d peers (replication=%d)\n",
			opts.SelfURL, len(peers), *replicas)
	}
	if opts.JoinURL != "" {
		fmt.Fprintf(os.Stderr, "schedd: joining ring as %s via %s\n", opts.SelfURL, opts.JoinURL)
	}
	if err := dagsched.Serve(ctx, opts, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "schedd: drained, bye")
}
