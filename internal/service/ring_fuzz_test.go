package service

import (
	"strings"
	"testing"
)

// FuzzRingMessages asserts the membership wire decoders never panic and
// never accept a value the member table could not safely hold: every
// URL that survives decoding must be a bare normalized http(s) base URL
// (re-normalizing it is the identity), every status must be a known
// label, member lists stay within maxRingMembers, and duplicate URLs
// collapse. These decoders face the network — a hostile or corrupted
// join body must fail closed, not poison the ring.
func FuzzRingMessages(f *testing.F) {
	seeds := []string{
		`{"url":"http://10.0.0.1:8080"}`,
		`{"url":"https://node-3.cluster:9000/"}`,
		`{"url":""}`,
		`{"url":"ftp://x"}`,
		`{"url":"http://u:p@h:1"}`,
		`{"self":"http://a:1","epoch":3,"replication":2,"members":[{"url":"http://a:1","status":"alive"},{"url":"http://b:2","status":"suspect"}]}`,
		`{"members":[{"url":"http://b:2","status":"dead"},{"url":"http://b:2/","status":"alive"}]}`,
		`{"members":[{"url":"http://b:2","status":"zombie"}]}`,
		`{"replication":-1}`,
		`{"epoch":18446744073709551615}`,
		`[]`,
		`{`,
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if msg, err := decodeRingMessage(data); err == nil {
			if got, nerr := normalizePeerURL(msg.URL); nerr != nil || got != msg.URL {
				t.Fatalf("decodeRingMessage accepted non-normal URL %q (renorm: %q, %v)", msg.URL, got, nerr)
			}
		}
		view, err := decodeRingView(data)
		if err != nil {
			return
		}
		if len(view.Members) > maxRingMembers {
			t.Fatalf("decodeRingView accepted %d members", len(view.Members))
		}
		if view.Replication < 0 || view.Replication > maxRingMembers {
			t.Fatalf("decodeRingView accepted replication %d", view.Replication)
		}
		if view.Self != "" {
			if got, nerr := normalizePeerURL(view.Self); nerr != nil || got != view.Self {
				t.Fatalf("decodeRingView accepted non-normal self %q", view.Self)
			}
		}
		seen := make(map[string]bool, len(view.Members))
		for _, m := range view.Members {
			if got, nerr := normalizePeerURL(m.URL); nerr != nil || got != m.URL {
				t.Fatalf("decodeRingView accepted non-normal member URL %q", m.URL)
			}
			if len(m.URL) > maxPeerURLLen {
				t.Fatalf("decodeRingView accepted %d-byte URL", len(m.URL))
			}
			if _, ok := statusFromString(m.Status); !ok {
				t.Fatalf("decodeRingView accepted unknown status %q", m.Status)
			}
			if seen[m.URL] {
				t.Fatalf("decodeRingView kept duplicate member %q", m.URL)
			}
			seen[m.URL] = true
			if strings.HasSuffix(m.URL, "/") {
				t.Fatalf("decodeRingView kept trailing slash on %q", m.URL)
			}
		}
	})
}
