package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by Client.Schedule when the
// relevant circuit breaker is open: recent requests for that algorithm
// (single-node mode) or that peer (multi-node mode) kept failing, so
// the client fails fast instead of hammering a struggling server.
// errors.Is recognises it.
var ErrCircuitOpen = errors.New("service: circuit open")

// RetryPolicy configures the client's transient-failure handling. The
// zero value of each field selects its default.
type RetryPolicy struct {
	// MaxAttempts bounds tries per call, first attempt included
	// (default 3). 1 disables retrying. In multi-node mode it bounds
	// attempts per peer; ring failover across peers is separate.
	MaxAttempts int
	// BaseBackoff is the first retry delay; each further retry doubles
	// it up to MaxBackoff, and every delay is drawn uniformly from
	// (0, nominal] — "full jitter", which decorrelates retry storms far
	// better than the old [50%,100%] band: after a mass failure the
	// retries of N clients spread over the whole window instead of
	// bunching in its upper half (defaults 50ms / 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed fixes the jitter RNG for reproducible backoff sequences in
	// tests; 0 (the default) seeds from the clock.
	Seed int64
	// BreakerThreshold opens a circuit after that many consecutive
	// server-side failures (default 5); BreakerCooldown is how long it
	// stays open before one trial request may probe again (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 5 * time.Second
	}
	return p
}

// StatusError is a non-2xx response. It formats exactly as the error
// string older client versions produced, so callers matching on the
// text keep working while new callers can switch on Status.
type StatusError struct {
	Method  string
	Path    string
	Status  int
	Message string // server-provided error body, may be empty
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("service: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("service: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// Client is a schedd API client with jittered-backoff retries on
// transient failures (503, transport errors) and circuit breakers.
//
// With only BaseURL set it talks to one server, with a per-algorithm
// breaker (one misbehaving algorithm cannot starve the others). With
// Peers set it becomes a load-balancing multi-node client over a schedd
// ring: Schedule hashes the request onto the same consistent-hash
// circle the servers use and dispatches to the owning peer first — so
// repeated identical requests land where the result is cached — failing
// over along the ring when a peer is down, with a per-peer circuit
// breaker keeping dead peers out of the path. ScheduleBatch
// round-robins whole batches across healthy peers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Used
	// when Peers is empty.
	BaseURL string
	// Peers lists the base URLs of every node of a schedd ring. When
	// set (two or more), requests are ring-dispatched with failover and
	// BaseURL is ignored.
	Peers []string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes retries and the circuit breakers; nil uses defaults.
	Retry *RetryPolicy

	mu       sync.Mutex
	rng      *rand.Rand
	ring     *hashRing // built lazily from Peers
	algBr    breakerSet
	peerBr   breakerSet
	batchSeq uint64 // round-robin cursor for ScheduleBatch
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) policy() RetryPolicy {
	if c.Retry != nil {
		return c.Retry.withDefaults()
	}
	return RetryPolicy{}.withDefaults()
}

// peerRing lazily builds the client-side ring over Peers. Callers must
// not mutate Peers after the first Schedule/ScheduleBatch call; the
// client itself swaps the set via RefreshRing, under the lock.
func (c *Client) peerRing() *hashRing {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		c.ring = newRing(c.Peers)
	}
	return c.ring
}

// numPeers reads the current peer count under the lock (RefreshRing
// may be swapping the set concurrently).
func (c *Client) numPeers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring != nil {
		return len(c.ring.peers)
	}
	return len(c.Peers)
}

// jitter maps a nominal backoff to a full-jitter draw: uniform in
// (0, d]. The nominal value is the ceiling, not the center, so
// concurrent clients retrying after a shared failure spread across the
// whole window.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		seed := time.Now().UnixNano()
		if c.Retry != nil && c.Retry.Seed != 0 {
			seed = c.Retry.Seed
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	return 1 + time.Duration(c.rng.Int63n(int64(d)))
}

// retryable reports whether err is worth another attempt: a 503 (queue
// full, graceful shutdown) or a transport failure (connection reset,
// refused). Context cancellation and client-side errors (4xx) are not.
func retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == http.StatusServiceUnavailable
	}
	// Anything else that survived request construction is a transport
	// error (net.OpError, unexpected EOF, ...).
	return true
}

// attempt performs one HTTP round trip against base.
func (c *Client) attempt(ctx context.Context, base, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Method: method, Path: path, Status: resp.StatusCode}
		var e errorJSON
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			se.Message = e.Error
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// doJSONAt runs the retry loop against one base URL.
func (c *Client) doJSONAt(ctx context.Context, base, method, path string, data []byte, out any) error {
	pol := c.policy()
	backoff := pol.BaseBackoff
	var err error
	for att := 1; ; att++ {
		err = c.attempt(ctx, base, method, path, data, out)
		if err == nil || att >= pol.MaxAttempts || !retryable(ctx, err) {
			return err
		}
		t := time.NewTimer(c.jitter(backoff))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: encoding request: %w", err)
		}
	}
	return c.doJSONAt(ctx, c.anyBase(), method, path, data, out)
}

// anyBase returns BaseURL, or the first peer when only Peers is set —
// good enough for the read-only endpoints (health, metrics, listings).
func (c *Client) anyBase() string {
	if c.BaseURL != "" {
		return c.BaseURL
	}
	peers := c.RingPeers()
	if len(peers) == 0 {
		return ""
	}
	return peers[0]
}

// RingPeers returns the peer set the client currently dispatches over:
// the Peers it was constructed with, or the membership adopted by the
// most recent RefreshRing.
func (c *Client) RingPeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring != nil {
		return append([]string(nil), c.ring.peers...)
	}
	return append([]string(nil), c.Peers...)
}

// RefreshRing asks the cluster for its current membership (GET
// /v1/ring) and swaps the client-side ring to match, so a long-lived
// client follows joins, leaves and deaths without reconstruction. The
// first configured peer to answer wins; members the cluster judges
// dead are excluded. Called automatically after a dispatch pass fails
// on every peer, and callable directly after topology changes.
func (c *Client) RefreshRing(ctx context.Context) error {
	sources := c.RingPeers()
	if len(sources) == 0 && c.BaseURL != "" {
		sources = []string{c.BaseURL}
	}
	var lastErr error = errors.New("service: no peers configured")
	for _, peer := range sources {
		view, err := c.fetchRing(ctx, peer)
		if err != nil {
			lastErr = err
			continue
		}
		var next []string
		for _, m := range view.Members {
			if m.Status != memberDead.String() {
				next = append(next, m.URL)
			}
		}
		if len(next) == 0 {
			lastErr = fmt.Errorf("service: peer %s reported an empty ring", peer)
			continue
		}
		c.mu.Lock()
		c.Peers = next
		c.ring = newRing(next)
		c.mu.Unlock()
		return nil
	}
	return fmt.Errorf("service: ring refresh failed: %w", lastErr)
}

// fetchRing GETs and validates one peer's /v1/ring view.
func (c *Client) fetchRing(ctx context.Context, peer string) (RingView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/ring", nil)
	if err != nil {
		return RingView{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return RingView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return RingView{}, &StatusError{Method: http.MethodGet, Path: "/v1/ring", Status: resp.StatusCode}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRingBodyBytes))
	if err != nil {
		return RingView{}, err
	}
	return decodeRingView(body)
}

// requestKey digests the scheduling-relevant fields of a request for
// client-side ring placement. It is a cheap byte-level digest, not the
// server's canonical instance hash (which needs a full parse): two
// byte-identical requests always land on the same peer — which is what
// keeps that peer's cache hot — and a semantically-equal-but-reformatted
// request at worst lands elsewhere and is forwarded by the server.
func requestKey(req *ScheduleRequest) string {
	h := fnv.New64a()
	io.WriteString(h, req.Algorithm)
	h.Write([]byte{0})
	h.Write(req.Instance)
	h.Write([]byte{0})
	h.Write(req.Graph)
	fmt.Fprintf(h, "|%d|%g|%g|%s|%g|%v", req.Processors, req.Latency, req.TimePerUnit,
		req.CommModel, req.LinkBandwidth, req.Analyze)
	if req.Faults != nil {
		if fw, err := json.Marshal(req.Faults); err == nil {
			h.Write(fw)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Schedule submits one scheduling request. Transient failures are
// retried per the client's RetryPolicy. Single-node mode keeps PR 5's
// per-algorithm circuit breaker; multi-node mode dispatches to the
// ring owner of the request and fails over along the ring, skipping
// peers whose circuit is open. When every peer is down the last error
// (or ErrCircuitOpen, if every circuit was open) is returned.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	pol := c.policy()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding request: %w", err)
	}
	if c.numPeers() >= 2 {
		return c.scheduleRing(ctx, pol, &req, data)
	}
	if wait, open := c.algBr.allow(req.Algorithm, pol.BreakerThreshold); open {
		return nil, fmt.Errorf("%w for algorithm %q (retry after %s)", ErrCircuitOpen, req.Algorithm, wait.Round(time.Millisecond))
	}
	var out ScheduleResponse
	err = c.doJSONAt(ctx, c.anyBase(), http.MethodPost, "/v1/schedule", data, &out)
	c.algBr.observe(req.Algorithm, pol.BreakerThreshold, pol.BreakerCooldown, err)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// scheduleRing dispatches one request across the peer ring: owner
// first, then the ring successors. Each peer gets a single attempt —
// failover to the next node is the retry — and feeds its per-peer
// circuit breaker. A pass that fails on every peer triggers one ring
// refresh (the configured view may be stale — nodes died, others
// joined) and one more pass over the refreshed membership.
func (c *Client) scheduleRing(ctx context.Context, pol RetryPolicy, req *ScheduleRequest, data []byte) (*ScheduleResponse, error) {
	key := requestKey(req)
	for pass := 0; ; pass++ {
		order := c.peerRing().successors(key)
		var lastErr error
		for _, peer := range order {
			if wait, open := c.peerBr.allow(peer, pol.BreakerThreshold); open {
				if lastErr == nil {
					lastErr = fmt.Errorf("%w for peer %s (retry after %s)", ErrCircuitOpen, peer, wait.Round(time.Millisecond))
				}
				continue
			}
			var out ScheduleResponse
			err := c.attempt(ctx, peer, http.MethodPost, "/v1/schedule", data, &out)
			c.peerBr.observe(peer, pol.BreakerThreshold, pol.BreakerCooldown, err)
			if err == nil {
				return &out, nil
			}
			if !retryable(ctx, err) {
				return nil, err
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = errors.New("service: no peers configured")
		}
		if pass == 0 && c.RefreshRing(ctx) == nil {
			continue
		}
		return nil, fmt.Errorf("service: all %d peers failed: %w", len(order), lastErr)
	}
}

// ScheduleBatch submits a batch of scheduling requests to
// /v1/schedule/batch and returns the ordered per-item results. In
// multi-node mode batches are round-robined across peers (a batch is
// fanned out by whichever node receives it, consulting the owning
// peers' caches per item), skipping peers with an open circuit and
// failing over on transient errors.
func (c *Client) ScheduleBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	pol := c.policy()
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding batch: %w", err)
	}
	if c.numPeers() < 2 {
		var out BatchResponse
		if err := c.doJSONAt(ctx, c.anyBase(), http.MethodPost, "/v1/schedule/batch", data, &out); err != nil {
			return nil, err
		}
		return &out, nil
	}
	for pass := 0; ; pass++ {
		peers := c.peerRing().peers
		c.mu.Lock()
		start := int(c.batchSeq % uint64(len(peers)))
		c.batchSeq++
		c.mu.Unlock()
		var lastErr error
		for i := 0; i < len(peers); i++ {
			peer := peers[(start+i)%len(peers)]
			if _, open := c.peerBr.allow(peer, pol.BreakerThreshold); open {
				continue
			}
			var out BatchResponse
			err := c.attempt(ctx, peer, http.MethodPost, "/v1/schedule/batch", data, &out)
			c.peerBr.observe(peer, pol.BreakerThreshold, pol.BreakerCooldown, err)
			if err == nil {
				return &out, nil
			}
			if !retryable(ctx, err) {
				return nil, err
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("%w for every peer", ErrCircuitOpen)
		}
		// Same stale-view escape hatch as scheduleRing: refresh once,
		// then one more round-robin pass over the new membership.
		if pass == 0 && c.RefreshRing(ctx) == nil {
			continue
		}
		return nil, fmt.Errorf("service: batch failed on all peers: %w", lastErr)
	}
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	var out MetricsSnapshot
	if err := c.doJSON(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms lists the server's algorithm registry.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["algorithms"], nil
}

// CommModels lists the communication-model kinds the server accepts in
// ScheduleRequest.CommModel.
func (c *Client) CommModels(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.doJSON(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out["commModels"], nil
}
