package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestFollowerVerdict pins the coalesced-follower error attribution. A
// follower that parks on a flight whose leader died of cancellation or
// deadline retries while its own context is live; once its own context
// has expired the verdict must be the follower's error, not the
// leader's. The regression: a follower whose own deadline expired while
// the leader was canceled used to surface the leader's cancellation —
// answering 503 where the item earned its own 504 (and vice versa).
func TestFollowerVerdict(t *testing.T) {
	leaderDead := fmt.Errorf("slow: %w", context.DeadlineExceeded)
	leaderCanceled := fmt.Errorf("slow: %w", context.Canceled)
	boom := errors.New("boom")
	cases := []struct {
		name      string
		leaderErr error
		ctxErr    error
		retry     bool
		wantErr   error
	}{
		{"leader deadline, follower live", leaderDead, nil, true, nil},
		{"leader canceled, follower live", leaderCanceled, nil, true, nil},
		{"leader deadline, follower canceled", leaderDead, context.Canceled, false, context.Canceled},
		{"leader canceled, follower deadline", leaderCanceled, context.DeadlineExceeded, false, context.DeadlineExceeded},
		{"leader deadline, follower deadline", leaderDead, context.DeadlineExceeded, false, context.DeadlineExceeded},
		{"leader real error, follower live", boom, nil, false, boom},
		{"leader real error, follower dead", boom, context.DeadlineExceeded, false, boom},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			retry, err := followerVerdict(tc.leaderErr, tc.ctxErr)
			if retry != tc.retry {
				t.Fatalf("retry = %v, want %v", retry, tc.retry)
			}
			if retry {
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			// The item's own context error must come back verbatim — it is
			// what statusFor and the deadline message report.
			if tc.ctxErr != nil && tc.leaderErr != boom && err != tc.ctxErr {
				t.Fatalf("err = %v, want the follower's own %v", err, tc.ctxErr)
			}
		})
	}
}
