package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/dag"
)

// RandomConfig holds the parameters of the layered random-DAG generator,
// the parameter vocabulary of Topcuoglu et al. used throughout the
// evaluation literature.
type RandomConfig struct {
	// N is the task count (required, >= 1).
	N int
	// Shape (α) controls depth vs width: the expected number of levels is
	// sqrt(N)/α, so α < 1 yields deep graphs and α > 1 wide graphs.
	// Default 1.
	Shape float64
	// OutDegree is the maximum out-degree of a task (default 4).
	OutDegree int
	// AvgComp is the mean nominal task weight; weights are drawn uniformly
	// from [0.5, 1.5] × AvgComp (default 10).
	AvgComp float64
	// AvgData is the mean edge data volume before CCR scaling; volumes are
	// drawn uniformly from [0.5, 1.5] × AvgData (default 10).
	AvgData float64
}

func (c *RandomConfig) defaults() error {
	if c.N < 1 {
		return fmt.Errorf("workload: random DAG needs N >= 1, got %d", c.N)
	}
	if c.Shape == 0 {
		c.Shape = 1
	}
	if c.Shape < 0 {
		return fmt.Errorf("workload: negative shape %g", c.Shape)
	}
	if c.OutDegree == 0 {
		c.OutDegree = 4
	}
	if c.OutDegree < 1 {
		return fmt.Errorf("workload: out-degree %d < 1", c.OutDegree)
	}
	if c.AvgComp == 0 {
		c.AvgComp = 10
	}
	if c.AvgComp < 0 {
		return fmt.Errorf("workload: negative mean weight %g", c.AvgComp)
	}
	if c.AvgData == 0 {
		c.AvgData = 10
	}
	if c.AvgData < 0 {
		return fmt.Errorf("workload: negative mean data %g", c.AvgData)
	}
	return nil
}

// Random generates a layered random DAG: tasks are spread over
// ~sqrt(N)/α levels, every non-entry task has at least one parent in an
// earlier level, every non-exit task at least one child in a later level,
// and additional forward edges are added up to the out-degree limit.
// Task ids ascend with levels, so the id order is topological.
func Random(cfg RandomConfig, rng *rand.Rand) (*dag.Graph, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	levels := int(math.Round(math.Sqrt(float64(cfg.N)) / cfg.Shape))
	if levels < 1 {
		levels = 1
	}
	if levels > cfg.N {
		levels = cfg.N
	}
	// Assign tasks to levels: one per level first, the rest uniformly.
	levelOf := make([]int, cfg.N)
	for i := 0; i < levels; i++ {
		levelOf[i] = i
	}
	for i := levels; i < cfg.N; i++ {
		levelOf[i] = rng.Intn(levels)
	}
	// Renumber so ids ascend with level (stable counting sort).
	order := make([]int, 0, cfg.N)
	for l := 0; l < levels; l++ {
		for i := 0; i < cfg.N; i++ {
			if levelOf[i] == l {
				order = append(order, i)
			}
		}
	}
	byLevel := make([][]dag.TaskID, levels)
	b := dag.NewBuilder(fmt.Sprintf("random-n%d", cfg.N))
	for _, old := range order {
		l := levelOf[old]
		id := b.AddTask("", cfg.AvgComp*(0.5+rng.Float64()))
		byLevel[l] = append(byLevel[l], id)
	}
	data := func() float64 { return cfg.AvgData * (0.5 + rng.Float64()) }
	outDeg := make([]int, cfg.N)
	hasParent := make([]bool, cfg.N)
	addEdge := func(u, v dag.TaskID) {
		b.AddEdge(u, v, data())
		outDeg[u]++
		hasParent[v] = true
	}
	edgeSet := make(map[[2]dag.TaskID]bool)
	tryEdge := func(u, v dag.TaskID) bool {
		key := [2]dag.TaskID{u, v}
		if edgeSet[key] || outDeg[u] >= cfg.OutDegree {
			return false
		}
		edgeSet[key] = true
		addEdge(u, v)
		return true
	}
	// Every non-entry task gets one parent from the previous level.
	for l := 1; l < levels; l++ {
		prev := byLevel[l-1]
		for _, v := range byLevel[l] {
			u := prev[rng.Intn(len(prev))]
			tryEdge(u, v)
		}
	}
	// Extra random forward edges.
	for l := 0; l < levels-1; l++ {
		for _, u := range byLevel[l] {
			extra := rng.Intn(cfg.OutDegree)
			for k := 0; k < extra && outDeg[u] < cfg.OutDegree; k++ {
				tl := l + 1 + rng.Intn(levels-l-1)
				cands := byLevel[tl]
				tryEdge(u, cands[rng.Intn(len(cands))])
			}
		}
	}
	// Every non-exit task gets at least one child.
	for l := 0; l < levels-1; l++ {
		next := byLevel[l+1]
		for _, u := range byLevel[l] {
			if outDeg[u] == 0 {
				v := next[rng.Intn(len(next))]
				if !tryEdge(u, v) {
					// The only way tryEdge fails with outDeg 0 is a
					// duplicate, impossible here; keep the guard anyway.
					continue
				}
			}
		}
	}
	// Orphan guard for tasks whose mandatory parent edge collided.
	for l := 1; l < levels; l++ {
		prev := byLevel[l-1]
		for _, v := range byLevel[l] {
			if !hasParent[v] {
				for _, u := range prev {
					if tryEdge(u, v) {
						break
					}
				}
			}
		}
	}
	return b.Build()
}
