package algo

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// growthStep is one batch of appends: tasks then edges.
type growthStep struct {
	weights []float64
	edges   []dag.Edge
}

// randomGrowth builds a random DAG arrival sequence: tasks arrive in
// batches, each followed by random edges into the already-present
// prefix (both directions relative to arrival, so rank repair sees new
// arcs between old tasks too).
func randomGrowth(rng *rand.Rand, batches, perBatch int) []growthStep {
	var steps []growthStep
	n := 0
	seen := map[[2]int]bool{}
	for b := 0; b < batches; b++ {
		var st growthStep
		base := n
		for k := 0; k < perBatch; k++ {
			st.weights = append(st.weights, float64(1+rng.Intn(9)))
			n++
		}
		for k := 0; k < perBatch*2 && n > 1; k++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from == to {
				continue
			}
			// Orient by id so the accumulated graph stays acyclic; new
			// arcs still land between two old tasks when both ids < base.
			if from > to {
				from, to = to, from
			}
			if from >= base && rng.Intn(2) == 0 {
				continue
			}
			if seen[[2]int{from, to}] {
				continue
			}
			seen[[2]int{from, to}] = true
			st.edges = append(st.edges, dag.Edge{From: dag.TaskID(from), To: dag.TaskID(to), Data: float64(rng.Intn(40))})
		}
		steps = append(steps, st)
	}
	return steps
}

// replayGrowth drives an Appendable and a RankTracker through the
// steps, asserting after every batch that the tracker's ranks are
// bit-identical to a full sched.RankUpward on the grown instance.
func replayGrowth(t *testing.T, steps []growthStep, procs int, dirtyFrac float64) (fallbacks, repairs int) {
	t.Helper()
	sys := platform.Homogeneous(procs, 1, 0.5)
	ap := dag.NewAppendable("grow")
	rt := NewRankTracker()
	rng := rand.New(rand.NewSource(99))
	var w [][]float64
	oldN := 0
	for si, st := range steps {
		for _, wt := range st.weights {
			if _, err := ap.AddTask("", wt); err != nil {
				t.Fatal(err)
			}
			row := make([]float64, procs)
			for p := range row {
				row[p] = wt * (0.5 + rng.Float64())
			}
			w = append(w, row)
		}
		var added []dag.Edge
		for _, e := range st.edges {
			if err := ap.AddEdge(e.From, e.To, e.Data); err != nil {
				t.Fatalf("step %d AddEdge(%d,%d): %v", si, e.From, e.To, err)
			}
			added = append(added, e)
		}
		g, err := ap.Seal()
		if err != nil {
			t.Fatal(err)
		}
		in, err := sched.NewInstance(g, sys, w)
		if err != nil {
			t.Fatal(err)
		}
		rt.Update(in, oldN, added, ap.Positions(), dirtyFrac)
		oldN = ap.Len()

		want := sched.RankUpward(in)
		got := rt.Ranks()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("step %d: rank[%d] = %x, want %x (full=%v repaired=%d)",
					si, v, got[v], want[v], rt.Full, rt.Repaired)
			}
		}
		if rt.Full {
			fallbacks++
		} else {
			repairs++
		}
	}
	return fallbacks, repairs
}

func TestRankTrackerMatchesFullSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		steps := randomGrowth(rng, 10, 4)
		replayGrowth(t, steps, 3, 0) // default dirty fraction
	}
}

func TestRankTrackerIncrementalPathTaken(t *testing.T) {
	// Tasks arriving in dependency order with edges only into the recent
	// suffix keep the dirty set small: the incremental path must actually
	// run (not just fall back every batch).
	rng := rand.New(rand.NewSource(17))
	var steps []growthStep
	n := 0
	for b := 0; b < 30; b++ {
		var st growthStep
		for k := 0; k < 3; k++ {
			st.weights = append(st.weights, float64(1+rng.Intn(5)))
			n++
		}
		for k := 0; k < 4 && n > 3; k++ {
			to := n - 1 - rng.Intn(3)
			lo := to - 6
			if lo < 0 {
				lo = 0
			}
			from := lo + rng.Intn(to-lo)
			st.edges = append(st.edges, dag.Edge{From: dag.TaskID(from), To: dag.TaskID(to), Data: 2})
		}
		// Dedup within the step.
		seen := map[[2]dag.TaskID]bool{}
		uniq := st.edges[:0]
		for _, e := range st.edges {
			if !seen[[2]dag.TaskID{e.From, e.To}] {
				seen[[2]dag.TaskID{e.From, e.To}] = true
				uniq = append(uniq, e)
			}
		}
		st.edges = uniq
		steps = append(steps, st)
	}
	fallbacks, repairs := replayGrowth(t, steps, 4, 0)
	if repairs == 0 {
		t.Fatalf("incremental path never taken (%d fallbacks)", fallbacks)
	}
}

func TestRankTrackerFallbackForced(t *testing.T) {
	// A tiny dirty fraction forces the fallback; results must still be
	// bit-identical (it is the full kernel).
	rng := rand.New(rand.NewSource(23))
	steps := randomGrowth(rng, 6, 5)
	fallbacks, _ := replayGrowth(t, steps, 2, 0.0001)
	if fallbacks != len(steps) {
		t.Fatalf("fallbacks = %d, want %d", fallbacks, len(steps))
	}
}
