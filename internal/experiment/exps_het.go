package experiment

import (
	"fmt"
	"math/rand"

	"dagsched/internal/algo/suite"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// randParams are the design-point knobs of the random-DAG experiments;
// zero fields take the literature defaults (n 60, 8 procs, out-degree 4,
// shape 1, CCR 1, β 1).
type randParams struct {
	n, procs, outdeg int
	shape, ccr, beta float64
}

func (p randParams) withDefaults() randParams {
	if p.n == 0 {
		p.n = 60
	}
	if p.procs == 0 {
		p.procs = 8
	}
	if p.outdeg == 0 {
		p.outdeg = 4
	}
	if p.shape == 0 {
		p.shape = 1
	}
	if p.ccr == 0 {
		p.ccr = 1
	}
	// beta 0 takes the default 1; a negative beta explicitly requests a
	// homogeneous cost matrix (β = 0).
	switch {
	case p.beta == 0:
		p.beta = 1
	case p.beta < 0:
		p.beta = 0
	}
	return p
}

func randGen(p randParams) genFunc {
	p = p.withDefaults()
	return func(rng *rand.Rand) (*sched.Instance, error) {
		g, err := workload.Random(workload.RandomConfig{N: p.n, Shape: p.shape, OutDegree: p.outdeg}, rng)
		if err != nil {
			return nil, err
		}
		return workload.MakeInstance(g, workload.HetConfig{Procs: p.procs, CCR: p.ccr, Beta: p.beta}, rng)
	}
}

// sweepSLR renders one table: rows sweep a labeled parameter, columns are
// the heterogeneous lineup's mean SLRs.
func sweepSLR(id, title, param string, cfg Config, points []float64, mk func(v float64) randParams) (*Table, error) {
	algs := suite.Heterogeneous()
	t := &Table{ID: id, Title: title, Columns: append([]string{param}, names(algs)...)}
	reps := cfg.reps(25)
	for i, v := range points {
		accs, err := meanOver(algs, reps, cfg.Seed+int64(1000*i)+1, randGen(mk(v)), slr, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", v), accs))
	}
	t.Notes = fmt.Sprintf("Mean SLR over %d random DAGs per point (lower is better).", reps)
	return t, nil
}

// E1 — average SLR as a function of DAG size on heterogeneous systems.
func E1() Experiment {
	return Experiment{ID: "E1", Title: "Average SLR vs DAG size (heterogeneous)", Run: func(cfg Config) ([]*Table, error) {
		points := []float64{20, 40, 60, 80, 100}
		if cfg.Quick {
			points = []float64{20, 60}
		}
		t, err := sweepSLR("E1", "Average SLR vs DAG size", "n", cfg, points, func(v float64) randParams {
			return randParams{n: int(v)}
		})
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}}
}

// E2 — average SLR as a function of CCR.
func E2() Experiment {
	return Experiment{ID: "E2", Title: "Average SLR vs CCR (heterogeneous)", Run: func(cfg Config) ([]*Table, error) {
		points := []float64{0.1, 0.5, 1, 5, 10}
		if cfg.Quick {
			points = []float64{0.1, 10}
		}
		t, err := sweepSLR("E2", "Average SLR vs CCR", "CCR", cfg, points, func(v float64) randParams {
			return randParams{ccr: v}
		})
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}}
}

// E3 — average speedup as a function of processor count.
func E3() Experiment {
	return Experiment{ID: "E3", Title: "Average speedup vs processor count", Run: func(cfg Config) ([]*Table, error) {
		points := []int{2, 4, 8, 16, 32}
		if cfg.Quick {
			points = []int{2, 8}
		}
		algs := suite.Heterogeneous()
		t := &Table{ID: "E3", Title: "Average speedup vs processor count", Columns: append([]string{"P"}, names(algs)...)}
		reps := cfg.reps(25)
		for i, p := range points {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(1000*i)+31, randGen(randParams{procs: p}), speedup, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%d", p), accs))
		}
		t.Notes = fmt.Sprintf("Mean speedup over %d random DAGs per point (higher is better).", reps)
		return []*Table{t}, nil
	}}
}

// E4 — average SLR as a function of the cost-matrix heterogeneity β.
func E4() Experiment {
	return Experiment{ID: "E4", Title: "Average SLR vs heterogeneity β", Run: func(cfg Config) ([]*Table, error) {
		points := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
		if cfg.Quick {
			points = []float64{0.1, 1.0}
		}
		t, err := sweepSLR("E4", "Average SLR vs heterogeneity β", "beta", cfg, points, func(v float64) randParams {
			return randParams{beta: v}
		})
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}}
}

// E5 — average SLR as a function of the shape parameter α.
func E5() Experiment {
	return Experiment{ID: "E5", Title: "Average SLR vs shape α", Run: func(cfg Config) ([]*Table, error) {
		points := []float64{0.5, 1.0, 2.0}
		if cfg.Quick {
			points = []float64{0.5, 2.0}
		}
		t, err := sweepSLR("E5", "Average SLR vs shape α", "alpha", cfg, points, func(v float64) randParams {
			return randParams{shape: v}
		})
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}}
}
