package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

// streamInstance builds a random layered instance with heterogeneous
// cost rows for the equivalence tests.
func streamInstance(t testing.TB, seed int64, n, procs int) *sched.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := workload.Random(workload.RandomConfig{N: n}, rng)
	if err != nil {
		t.Fatalf("random DAG: %v", err)
	}
	sys := platform.Homogeneous(procs, 1, 1)
	w := make([][]float64, n)
	for v := 0; v < n; v++ {
		row := make([]float64, procs)
		for p := range row {
			row[p] = g.Task(dag.TaskID(v)).Weight * (0.5 + rng.Float64())
		}
		w[v] = row
	}
	in, err := sched.NewInstance(g, sys, w)
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	return in
}

// arrivalOrders returns the arrival permutations the equivalence tests
// stream under: topological (ids ascend in workload.Random), reverse
// topological (every edge violates the ingestion order), and shuffled.
func arrivalOrders(in *sched.Instance, seed int64) map[string][]dag.TaskID {
	n := in.N()
	topo := make([]dag.TaskID, n)
	rev := make([]dag.TaskID, n)
	shuf := make([]dag.TaskID, n)
	for i := 0; i < n; i++ {
		topo[i] = dag.TaskID(i)
		rev[i] = dag.TaskID(n - 1 - i)
		shuf[i] = dag.TaskID(i)
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	return map[string][]dag.TaskID{"topo": topo, "reverse": rev, "shuffled": shuf}
}

// TestStreamHorizonZeroMatchesStatic is DESIGN.md invariant 13: a sealed
// stream with no clock advances is bit-identical to static scheduling of
// the final graph, for every supported algorithm family, regardless of
// arrival order, batch size or full-recompute mode.
func TestStreamHorizonZeroMatchesStatic(t *testing.T) {
	algorithms := []string{"HEFT", "HLFET", "CPOP", "ETF", "LS/u/ready/est/ins/nodup"}
	in := streamInstance(t, 7, 120, 4)
	sys := platform.Homogeneous(4, 1, 1)

	for _, algName := range algorithms {
		for orderName, arrival := range arrivalOrders(in, 11) {
			evs, err := InstanceEvents(in, arrival)
			if err != nil {
				t.Fatalf("%s/%s: events: %v", algName, orderName, err)
			}
			sin, err := StaticInstance(evs, sys, "static")
			if err != nil {
				t.Fatalf("%s/%s: static instance: %v", algName, orderName, err)
			}
			pm, err := ParamFor(algName)
			if err != nil {
				t.Fatalf("%s: param: %v", algName, err)
			}
			want, err := pm.Schedule(sin)
			if err != nil {
				t.Fatalf("%s/%s: static schedule: %v", algName, orderName, err)
			}
			wantDigest := testfix.ScheduleDigest(want)

			for _, batch := range []int{1, 7, 32} {
				for _, full := range []bool{false, true} {
					cfg := Config{Algorithm: algName, Sys: sys, BatchSize: batch, FullRecompute: full}
					_, eng, err := Replay(cfg, evs)
					if err != nil {
						t.Fatalf("%s/%s batch=%d full=%v: replay: %v", algName, orderName, batch, full, err)
					}
					got := testfix.ScheduleDigest(eng.Schedule())
					if got != wantDigest {
						t.Errorf("%s/%s batch=%d full=%v: sealed digest %s != static %s (makespan %v vs %v)",
							algName, orderName, batch, full, got, wantDigest,
							eng.Schedule().Makespan(), want.Makespan())
					}
				}
			}
		}
	}
}

// TestStreamDeterministicReplay: the same event log yields the same
// deltas and the same schedule, replay after replay.
func TestStreamDeterministicReplay(t *testing.T) {
	in := streamInstance(t, 9, 80, 3)
	evs, err := InstanceEvents(in, arrivalOrders(in, 3)["shuffled"])
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Algorithm: "HEFT", Sys: platform.Homogeneous(3, 1, 1), BatchSize: 5}
	d1, e1, err := Replay(cfg, evs)
	if err != nil {
		t.Fatal(err)
	}
	d2, e2, err := Replay(cfg, evs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("replaying the same log produced different deltas")
	}
	if testfix.ScheduleDigest(e1.Schedule()) != testfix.ScheduleDigest(e2.Schedule()) {
		t.Fatal("replaying the same log produced different schedules")
	}
	if len(d1) == 0 || !d1[len(d1)-1].Sealed {
		t.Fatal("last delta not sealed")
	}
}

// TestStreamFrozenHorizonPersists: once the clock passes a placement's
// start it never moves again, and the sealed schedule stays valid.
func TestStreamFrozenHorizonPersists(t *testing.T) {
	in := streamInstance(t, 21, 100, 4)
	n := in.N()
	arrival := arrivalOrders(in, 0)["topo"]
	base, err := InstanceEvents(in, arrival)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate the makespan once to pick meaningful clock values.
	cfg := Config{Algorithm: "HEFT", Sys: platform.Homogeneous(4, 1, 1), BatchSize: 16}
	_, probe, err := Replay(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	ms := probe.Schedule().Makespan()

	// Interleave flush+advance pairs every 20 tasks; with topological
	// arrival no edge ever targets a frozen task.
	var evs []Event
	tasks, advances := 0, 0.0
	for _, ev := range base {
		if ev.Op == OpAddTask && tasks > 0 && tasks%20 == 0 {
			advances += 0.15 * ms
			evs = append(evs, Event{Op: OpFlush}, Event{Op: OpAdvance, Clock: advances})
		}
		if ev.Op == OpAddTask {
			tasks++
		}
		evs = append(evs, ev)
	}

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mirror := make(map[int]Placement, n)
	frozen := map[int]Placement{}
	var last *Delta
	for i, ev := range evs {
		d, err := eng.Apply(ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if d == nil {
			continue
		}
		last = d
		for _, p := range d.Placed {
			if f, ok := frozen[p.Task]; ok && f != p {
				t.Fatalf("frozen task %d moved: %+v -> %+v", p.Task, f, p)
			}
			mirror[p.Task] = p
		}
		for task, p := range mirror {
			if p.Start < d.Clock {
				frozen[task] = p
			}
		}
	}
	if last == nil || !last.Sealed {
		t.Fatal("stream did not seal")
	}
	if len(frozen) == 0 {
		t.Fatal("test froze nothing — clock values too small")
	}
	s := eng.Schedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("sealed schedule with frozen horizon invalid: %v", err)
	}
	for task, f := range frozen {
		a := s.Primary(dag.TaskID(task))
		if a.Proc != f.Proc || a.Start != f.Start || a.Finish != f.Finish {
			t.Fatalf("frozen task %d differs in sealed schedule: %+v != %+v", task, a, f)
		}
	}
}

// TestStreamEventValidation: invalid events are rejected and leave the
// engine usable — the stream keeps accepting valid events and seals.
func TestStreamEventValidation(t *testing.T) {
	sys := platform.Homogeneous(2, 1, 1)
	eng, err := NewEngine(Config{Algorithm: "HEFT", Sys: sys, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	mustOK := func(ev Event) {
		t.Helper()
		if _, err := eng.Apply(ev); err != nil {
			t.Fatalf("valid event %+v rejected: %v", ev, err)
		}
	}
	mustFail := func(ev Event, frag string) {
		t.Helper()
		_, err := eng.Apply(ev)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("event %+v: got error %v, want containing %q", ev, err, frag)
		}
	}

	mustOK(Event{Op: OpAddTask, ID: 0, Weight: 3})
	mustOK(Event{Op: OpAddTask, ID: 1, Weight: 2})
	mustOK(Event{Op: OpAddEdge, From: 0, To: 1, Data: 1})

	mustFail(Event{Op: OpAddTask, ID: 5, Weight: 1}, "out of order")
	mustFail(Event{Op: OpAddTask, ID: 2, Weight: 1, Costs: []float64{1}}, "costs")
	mustFail(Event{Op: OpAddTask, ID: 2, Weight: 1, Costs: []float64{1, -2}}, "invalid cost")
	mustFail(Event{Op: OpAddEdge, From: 1, To: 0, Data: 1}, "cycle")
	mustFail(Event{Op: OpAddEdge, From: 0, To: 1, Data: 1}, "duplicate")
	mustFail(Event{Op: OpAddEdge, From: 0, To: 9, Data: 1}, "out of range")
	mustFail(Event{Op: OpAdvance, Clock: -1}, "clock")
	mustFail(Event{Op: OpConfig}, "config")
	mustFail(Event{Op: "bogus"}, "unknown op")

	// The rejections did not poison the stream.
	mustOK(Event{Op: OpAddTask, ID: 2, Weight: 1, Costs: []float64{1, 2}})
	mustOK(Event{Op: OpAddEdge, From: 1, To: 2, Data: 0.5})
	d, err := eng.Apply(Event{Op: OpSeal})
	if err != nil {
		t.Fatalf("seal after rejections: %v", err)
	}
	if d == nil || !d.Sealed || d.Tasks != 3 {
		t.Fatalf("bad sealed delta: %+v", d)
	}
	if _, err := eng.Apply(Event{Op: OpFlush}); err == nil {
		t.Fatal("event accepted after seal")
	}

	// An edge whose head is frozen must be rejected (the head cannot be
	// re-planned), before it touches the graph.
	eng2, _ := NewEngine(Config{Algorithm: "HEFT", Sys: sys, BatchSize: 64})
	mustOK2 := func(ev Event) {
		t.Helper()
		if _, err := eng2.Apply(ev); err != nil {
			t.Fatalf("valid event %+v rejected: %v", ev, err)
		}
	}
	mustOK2(Event{Op: OpAddTask, ID: 0, Weight: 3})
	mustOK2(Event{Op: OpAddTask, ID: 1, Weight: 2})
	mustOK2(Event{Op: OpFlush})
	mustOK2(Event{Op: OpAdvance, Clock: 1e9})
	mustOK2(Event{Op: OpAddTask, ID: 2, Weight: 1})
	if _, err := eng2.Apply(Event{Op: OpAddEdge, From: 2, To: 0}); err == nil ||
		!strings.Contains(err.Error(), "frozen") {
		t.Fatalf("edge into frozen head: got %v", err)
	}
}

// TestStreamIncrementalPathDominates: under topological arrival the
// engine should almost always take the grow-in-place fast path (no
// full re-plans besides the seal) and repair ranks incrementally.
func TestStreamIncrementalPathDominates(t *testing.T) {
	in := streamInstance(t, 33, 200, 4)
	evs, err := InstanceEvents(in, arrivalOrders(in, 0)["topo"])
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Algorithm: "HEFT", Sys: platform.Homogeneous(4, 1, 1), BatchSize: 10}
	ds, _, err := Replay(cfg, evs)
	if err != nil {
		t.Fatal(err)
	}
	fullReplans, replanned := 0, 0
	for _, d := range ds {
		if d.Sealed {
			continue
		}
		if d.FullReplan {
			fullReplans++
		}
		replanned += d.Replanned
	}
	if fullReplans != 0 {
		t.Errorf("topological arrival took %d full re-plans (want 0)", fullReplans)
	}
	// Each task is re-planned exactly once across the streaming batches,
	// except the tail still buffered when the seal flush (excluded above)
	// picks it up.
	if replanned > in.N() || replanned < in.N()-2*cfg.BatchSize {
		t.Errorf("replanned %d task placements, want ~%d", replanned, in.N())
	}
}

func TestParamFor(t *testing.T) {
	if _, err := ParamFor("LS/u/static/eft/ins/dup"); err == nil {
		t.Fatal("duplicating grid point accepted")
	}
	if _, err := ParamFor("NOPE"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	pm, err := ParamFor("")
	if err != nil || pm.Name() != "HEFT" {
		t.Fatalf("default algorithm: %v %q", err, pm.Name())
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	in := streamInstance(t, 1, 20, 2)
	evs, err := InstanceEvents(in, arrivalOrders(in, 0)["shuffled"])
	if err != nil {
		t.Fatal(err)
	}
	evs = append([]Event{{Op: OpConfig, Algorithm: "HEFT", Processors: 2}}, evs...)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, back) {
		t.Fatal("NDJSON round trip lost events")
	}
	if _, err := ReadEvents(strings.NewReader("{\"op\":\"nope\"}\n")); err == nil {
		t.Fatal("unknown op decoded")
	}
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line decoded")
	}
}
