package export

import (
	"bytes"
	"strings"
	"testing"

	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func heftSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	s, err := listsched.HEFT{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGanttText(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteGanttText(&buf, s, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"HEFT", "makespan=80", "P0", "P1", "P2", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Tiny width falls back to the default.
	buf.Reset()
	if err := WriteGanttText(&buf, s, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P2") {
		t.Fatal("fallback width failed")
	}
}

func TestGanttTextShowsDuplicates(t *testing.T) {
	s, err := dup.BTDH{}.Schedule(testfix.Topcuoglu())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGanttText(&buf, s, 80); err != nil {
		t.Fatal(err)
	}
	if s.NumDuplicates() > 0 && !strings.Contains(buf.String(), "+") {
		t.Fatal("duplicates not marked with +")
	}
}

func TestGanttSVG(t *testing.T) {
	s := heftSchedule(t)
	var buf bytes.Buffer
	if err := WriteGanttSVG(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "makespan 80", "<rect", "P2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	// One rect per copy plus one lane background per processor.
	rects := strings.Count(out, "<rect")
	if rects != s.NumCopies()+s.Instance().P() {
		t.Fatalf("rects = %d, want %d", rects, s.NumCopies()+s.Instance().P())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf,
		[]string{"a", "b"},
		[][]string{{"1", "x,y"}, {"2", `quo"te`}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,\"quo\"\"te\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		8:    1,
		30:   5,
		100:  10,
		900:  100,
		2400: 200,
	}
	for span, want := range cases {
		if got := niceStep(span); got != want {
			t.Fatalf("niceStep(%g) = %g, want %g", span, got, want)
		}
	}
}

func TestSortAssignmentsForDisplay(t *testing.T) {
	s := heftSchedule(t)
	as := s.All()
	SortAssignmentsForDisplay(as)
	for i := 1; i < len(as); i++ {
		a, b := as[i-1], as[i]
		if a.Proc > b.Proc || (a.Proc == b.Proc && a.Start > b.Start) {
			t.Fatal("not sorted")
		}
	}
}
