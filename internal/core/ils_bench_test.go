package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// benchInstance builds the same design point the repository-level scale
// sweep uses (8 processors, CCR 1, heterogeneity 1) at the given size.
func benchInstance(b *testing.B, n int) *sched.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	g, err := workload.Random(workload.RandomConfig{N: n}, rng)
	if err != nil {
		b.Fatal(err)
	}
	in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkILSEndToEnd times the full ILS configuration (σ-rank +
// lookahead + duplication) on the scale-sweep design point. The
// transactional trial layer is the hot path: allocations per op track how
// much speculative state the trials churn.
func BenchmarkILSEndToEnd(b *testing.B) {
	for _, n := range []int{100, 1000} {
		in := benchInstance(b, n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New().Schedule(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
