package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"dagsched"
	"dagsched/internal/platform"
	"dagsched/internal/stream"
)

// runStreamReplay replays an NDJSON event log (as accepted by the
// schedd streaming endpoint) through the incremental engine, printing
// one line per re-plan delta and the final sealed schedule. The log's
// leading config event selects the algorithm and platform, exactly as
// over the wire.
func runStreamReplay(path string, fullRecompute, gantt bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	evs, err := stream.ReadEvents(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(evs) == 0 || evs[0].Op != stream.OpConfig {
		fatal(fmt.Errorf("%s: first event must be %q (algorithm, processors, batchSize)", path, stream.OpConfig))
	}
	cfgEv := evs[0]
	procs := cfgEv.Processors
	if procs <= 0 {
		procs = 8
	}
	tpu := cfgEv.TimePerUnit
	if tpu == 0 {
		tpu = 1
	}
	speeds := make([]float64, procs)
	for i := range speeds {
		speeds[i] = 1
	}
	sys, err := platform.New(platform.Config{Speeds: speeds, Latency: cfgEv.Latency, TimePerUnit: tpu})
	if err != nil {
		fatal(err)
	}
	eng, err := stream.NewEngine(stream.Config{
		Algorithm:     cfgEv.Algorithm,
		Sys:           sys,
		BatchSize:     cfgEv.BatchSize,
		FullRecompute: fullRecompute,
	})
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seq\tclock\ttasks\tedges\treplanned\tfrozen\trank-repaired\tmakespan\tmode")
	for i, ev := range evs[1:] {
		d, err := eng.Apply(ev)
		if err != nil {
			fatal(fmt.Errorf("event %d: %w", i+2, err))
		}
		if d == nil {
			continue
		}
		mode := "incremental"
		if d.FullReplan {
			mode = "full"
		}
		if d.Sealed {
			mode += " (sealed)"
		}
		fmt.Fprintf(tw, "%d\t%.4g\t%d\t%d\t%d\t%d\t%d\t%.4g\t%s\n",
			d.Seq, d.Clock, d.Tasks, d.Edges, d.Replanned, d.Frozen, d.RankRepaired, d.Makespan, mode)
	}
	tw.Flush()

	if !eng.Sealed() {
		fmt.Fprintf(os.Stderr, "schedrun: warning: log ended without a seal event; schedule reflects the last flush\n")
	}
	s := eng.Schedule()
	if s == nil {
		fatal(fmt.Errorf("%s: no flush ran; nothing scheduled", path))
	}
	fmt.Printf("\nstream: %s over %d events -> %d tasks on %d processors, makespan %.4g\n",
		eng.Algorithm(), eng.Events(), eng.Len(), procs, s.Makespan())
	if gantt {
		fmt.Println()
		if err := dagsched.WriteGanttText(os.Stdout, s, 100); err != nil {
			fatal(err)
		}
	}
}
