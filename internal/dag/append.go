package dag

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Appendable is a growable builder view over the CSR Graph substrate for
// streaming workloads: tasks and edges are appended over time, every
// append is validated eagerly (the streaming engine needs a per-event
// verdict, not a deferred Build error), and acyclicity is maintained
// incrementally — a cycle-creating edge is rejected in O(affected
// region) without touching the accumulated state, instead of re-running
// Kahn over the whole graph per event.
//
// The incremental machinery follows Pearce & Kelly's dynamic topological
// order: ord[v] is v's position in a maintained topological order. An
// edge (from, to) with ord[from] < ord[to] is consistent and costs O(out
// degree) to validate; a violating edge triggers a bounded discovery of
// the affected region (the tasks ordered between to and from) and a
// permutation of only those positions. Reaching from while walking
// forward from to proves the cycle before anything is mutated.
//
// Seal batches the accumulated structure back into an immutable *Graph:
// one CSR fill plus adjacency sort, with the graph's topo cache primed
// by a fresh Kahn pass. The PK order validates appends; the canonical
// Kahn order is what Builder.Build primes, and sealing with the same
// order keeps a sealed stream bit-identical to a statically built graph
// (tie-breaks in the list schedulers read topological positions).
// Sealing does not consume the Appendable: appending and re-sealing
// continues, which is the streaming engine's flush loop.
type Appendable struct {
	name  string
	tasks []Task
	succ  [][]Adj // per-task successor lists, append order
	pred  [][]Adj // per-task predecessor lists, append order
	edges int

	ord   []int    // ord[v]: v's position in the maintained topological order
	byPos []TaskID // inverse permutation: byPos[ord[v]] = v

	// DFS scratch, reused across reorders: mark[v] == gen marks v visited
	// in the current pass, so clearing is O(0) per reorder.
	mark []uint32
	gen  uint32
}

// NewAppendable returns an empty appendable graph with the given name.
func NewAppendable(name string) *Appendable { return &Appendable{name: name} }

// Len returns the number of tasks appended so far.
func (ap *Appendable) Len() int { return len(ap.tasks) }

// NumEdges returns the number of edges appended so far.
func (ap *Appendable) NumEdges() int { return ap.edges }

// Task returns the task with the given id.
func (ap *Appendable) Task(id TaskID) Task { return ap.tasks[id] }

// AddTask appends a task and returns its id. Ids are dense and assigned
// in arrival order. The weight must be finite and non-negative.
func (ap *Appendable) AddTask(name string, weight float64) (TaskID, error) {
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return 0, fmt.Errorf("dag: task %q has invalid weight %g", name, weight)
	}
	id := TaskID(len(ap.tasks))
	if name == "" {
		name = fmt.Sprintf("t%d", id)
	}
	ap.tasks = append(ap.tasks, Task{ID: id, Name: name, Weight: weight})
	ap.succ = append(ap.succ, nil)
	ap.pred = append(ap.pred, nil)
	// A fresh task has no edges; appending it at the end of the current
	// order is trivially consistent.
	ap.ord = append(ap.ord, len(ap.byPos))
	ap.byPos = append(ap.byPos, id)
	ap.mark = append(ap.mark, 0)
	return id, nil
}

// ErrWouldCycle reports that an appended edge would close a dependency
// cycle. It wraps ErrCycle so existing errors.Is(err, ErrCycle) checks
// also match.
var ErrWouldCycle = fmt.Errorf("%w (edge rejected)", ErrCycle)

// AddEdge appends a dependency from -> to carrying data units of
// communication. Out-of-range endpoints, self-loops, duplicate edges,
// invalid data volumes and cycle-creating edges are rejected; a rejected
// edge leaves the accumulated graph untouched.
func (ap *Appendable) AddEdge(from, to TaskID, data float64) error {
	n := len(ap.tasks)
	if from < 0 || int(from) >= n || to < 0 || int(to) >= n {
		return fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", from, to, n)
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on task %d", from)
	}
	if data < 0 || math.IsNaN(data) || math.IsInf(data, 0) {
		return fmt.Errorf("dag: edge (%d,%d) has invalid data %g", from, to, data)
	}
	si := sort.Search(len(ap.succ[from]), func(k int) bool { return ap.succ[from][k].To >= to })
	if si < len(ap.succ[from]) && ap.succ[from][si].To == to {
		return fmt.Errorf("dag: duplicate edge (%d,%d)", from, to)
	}
	if ap.ord[from] > ap.ord[to] {
		if err := ap.reorder(from, to); err != nil {
			return err
		}
	}
	ap.succ[from] = insertAdj(ap.succ[from], si, Adj{To: to, Data: data})
	pi := sort.Search(len(ap.pred[to]), func(k int) bool { return ap.pred[to][k].To >= from })
	ap.pred[to] = insertAdj(ap.pred[to], pi, Adj{To: from, Data: data})
	ap.edges++
	return nil
}

// insertAdj inserts a at position i, keeping the list sorted by To.
// Sorted insertion costs O(degree) per edge but lets Seal copy adjacency
// straight into CSR form with no per-seal sort — the right trade for the
// streaming flush loop, which seals once per batch.
func insertAdj(list []Adj, i int, a Adj) []Adj {
	list = append(list, Adj{})
	copy(list[i+1:], list[i:])
	list[i] = a
	return list
}

// reorder restores ord for a violating edge (from, to) — ord[from] >
// ord[to] on entry — or reports ErrWouldCycle without mutating anything.
// It discovers deltaF (tasks reachable forward from to within the
// affected position window) and deltaB (tasks reaching from backward
// within it), then reassigns the union of their positions: deltaB keeps
// its relative order and moves in front of deltaF, which also keeps its
// own. Only |deltaF| + |deltaB| positions change.
func (ap *Appendable) reorder(from, to TaskID) error {
	lb, ub := ap.ord[to], ap.ord[from]

	// Forward DFS from to, bounded above by ub. Reaching from proves
	// the new edge closes a cycle.
	ap.gen++
	deltaF := []TaskID{to}
	ap.mark[to] = ap.gen
	stack := []TaskID{to}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range ap.succ[v] {
			w := a.To
			if w == from {
				return ErrWouldCycle
			}
			if ap.mark[w] != ap.gen && ap.ord[w] < ub {
				ap.mark[w] = ap.gen
				deltaF = append(deltaF, w)
				stack = append(stack, w)
			}
		}
	}

	// Backward DFS from from, bounded below by lb. The two regions are
	// disjoint: a task in both would witness a path to -> ... -> from,
	// which the forward pass would have reported as a cycle.
	deltaB := []TaskID{from}
	ap.mark[from] = ap.gen
	stack = append(stack[:0], from)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range ap.pred[v] {
			w := a.To
			if ap.mark[w] != ap.gen && ap.ord[w] > lb {
				ap.mark[w] = ap.gen
				deltaB = append(deltaB, w)
				stack = append(stack, w)
			}
		}
	}

	// Sort both deltas by current position so each keeps its internal
	// order, pool their positions, and deal deltaB then deltaF back in.
	byOrd := func(set []TaskID) {
		sort.Slice(set, func(i, j int) bool { return ap.ord[set[i]] < ap.ord[set[j]] })
	}
	byOrd(deltaF)
	byOrd(deltaB)
	pool := make([]int, 0, len(deltaF)+len(deltaB))
	i, j := 0, 0
	for i < len(deltaB) || j < len(deltaF) {
		switch {
		case i == len(deltaB):
			pool = append(pool, ap.ord[deltaF[j]])
			j++
		case j == len(deltaF):
			pool = append(pool, ap.ord[deltaB[i]])
			i++
		case ap.ord[deltaB[i]] < ap.ord[deltaF[j]]:
			pool = append(pool, ap.ord[deltaB[i]])
			i++
		default:
			pool = append(pool, ap.ord[deltaF[j]])
			j++
		}
	}
	k := 0
	for _, v := range deltaB {
		ap.ord[v] = pool[k]
		ap.byPos[pool[k]] = v
		k++
	}
	for _, v := range deltaF {
		ap.ord[v] = pool[k]
		ap.byPos[pool[k]] = v
		k++
	}
	return nil
}

// Position returns v's position in the maintained topological order.
// Positions change as violating edges arrive; they are a valid
// topological order of the current graph at all times.
func (ap *Appendable) Position(v TaskID) int { return ap.ord[v] }

// Positions returns a copy of the maintained topological positions,
// indexed by task id. Any dependency-respecting processing order may use
// it; the incremental rank repair does.
func (ap *Appendable) Positions() []int {
	return append([]int(nil), ap.ord...)
}

// Seal batches the accumulated structure into an immutable Graph: a
// straight CSR fill (adjacency is kept sorted on insertion) with the
// graph's topo cache primed with the canonical
// Kahn order (identical to what Builder.Build would produce for the same
// tasks and edges, so sealed streams and static builds are
// interchangeable). The Appendable stays usable; later appends are
// picked up by the next Seal.
func (ap *Appendable) Seal() (*Graph, error) {
	n := len(ap.tasks)
	if n == 0 {
		return nil, errors.New("dag: graph has no tasks")
	}
	g := &Graph{
		name:  ap.name,
		tasks: append([]Task(nil), ap.tasks...),
		edges: ap.edges,
	}
	g.succOff = make([]int32, n+1)
	g.predOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.succOff[i+1] = g.succOff[i] + int32(len(ap.succ[i]))
		g.predOff[i+1] = g.predOff[i] + int32(len(ap.pred[i]))
	}
	g.succAdj = make([]Adj, ap.edges)
	g.predAdj = make([]Adj, ap.edges)
	for i := 0; i < n; i++ {
		// Adjacency is maintained sorted by neighbor id (insertAdj), so
		// the CSR fill is a straight copy.
		copy(g.succAdj[g.succOff[i]:g.succOff[i+1]], ap.succ[i])
		copy(g.predAdj[g.predOff[i]:g.predOff[i+1]], ap.pred[i])
	}
	order, err := topoOrder(g)
	if err != nil {
		// The incremental order maintenance guarantees acyclicity; this
		// indicates memory corruption or misuse of package internals.
		return nil, err
	}
	g.topoOnce.Do(func() { g.topo = order })
	return g, nil
}
