package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

const eps = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// diamondGraph is the shared 4-task fixture:
//
//	0(w=2) -> 1(w=3) [d=1], 0 -> 2(w=1) [d=4], 1 -> 3(w=4) [d=2], 2 -> 3 [d=3]
func diamondGraph(t testing.TB) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("diamond")
	t0 := b.AddTask("a", 2)
	t1 := b.AddTask("b", 3)
	t2 := b.AddTask("c", 1)
	t3 := b.AddTask("d", 4)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t0, t2, 4)
	b.AddEdge(t1, t3, 2)
	b.AddEdge(t2, t3, 3)
	return b.MustBuild()
}

// twoProc is a 2-processor system with zero latency and unit rate.
func twoProc() *platform.System { return platform.Homogeneous(2, 0, 1) }

// randomInstance builds a random unrelated instance for property tests.
func randomInstance(t testing.TB, rng *rand.Rand, n, procs int) *Instance {
	t.Helper()
	b := dag.NewBuilder("rand")
	for i := 0; i < n; i++ {
		b.AddTask("", 1+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(dag.TaskID(i), dag.TaskID(j), rng.Float64()*10)
			}
		}
	}
	g := b.MustBuild()
	sys := platform.Homogeneous(procs, 0.1, 1)
	in, err := Unrelated(g, sys, 0.8, rng)
	if err != nil {
		t.Fatalf("Unrelated: %v", err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	g := diamondGraph(t)
	sys := twoProc()
	if _, err := NewInstance(nil, sys, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewInstance(g, sys, make([][]float64, 2)); err == nil {
		t.Fatal("short matrix accepted")
	}
	bad := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1}}
	if _, err := NewInstance(g, sys, bad); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	neg := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, -1}}
	if _, err := NewInstance(g, sys, neg); err == nil {
		t.Fatal("negative cost accepted")
	}
	nan := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, math.NaN()}}
	if _, err := NewInstance(g, sys, nan); err == nil {
		t.Fatal("NaN cost accepted")
	}
	if _, err := NewInstance(g, sys, nan); !errors.Is(err, ErrInvalidCost) {
		t.Fatalf("NaN cost error = %v, want ErrInvalidCost", err)
	}
}

// TestNewInstanceRejectsBadEdgeData pins the edge-data audit: the builder's
// "data < 0" gate passes NaN (every comparison with NaN is false) and +Inf,
// so NewInstance must catch both before they poison the mean-comm tables.
func TestNewInstanceRejectsBadEdgeData(t *testing.T) {
	sys := twoProc()
	build := func(data float64) *dag.Graph {
		b := dag.NewBuilder("bad-edge")
		a := b.AddTask("", 1)
		c := b.AddTask("", 1)
		b.AddEdge(a, c, data)
		return b.MustBuild()
	}
	w := [][]float64{{1, 1}, {1, 1}}
	for _, data := range []float64{math.NaN(), math.Inf(1)} {
		g := build(data)
		_, err := NewInstance(g, sys, w)
		if err == nil {
			t.Fatalf("edge data %g accepted", data)
		}
		if !errors.Is(err, ErrInvalidCost) {
			t.Fatalf("edge data %g error = %v, want ErrInvalidCost", data, err)
		}
	}
	if _, err := NewInstance(build(3), sys, w); err != nil {
		t.Fatalf("valid edge data rejected: %v", err)
	}
}

// TestNewInstanceCopiesCostMatrix checks the SoA re-backing: the instance
// must own its flat cost array, so mutating the caller's rows afterwards
// cannot corrupt cached statistics or later Cost lookups.
func TestNewInstanceCopiesCostMatrix(t *testing.T) {
	g := diamondGraph(t)
	sys := twoProc()
	w := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	in, err := NewInstance(g, sys, w)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	w[0][0] = 999
	w[3][1] = -5
	if got := in.Cost(0, 0); got != 1 {
		t.Fatalf("Cost(0,0) = %g after caller mutation, want 1", got)
	}
	if got := in.Cost(3, 1); got != 8 {
		t.Fatalf("Cost(3,1) = %g after caller mutation, want 8", got)
	}
	// Rows are contiguous views of one flat backing array.
	for i := 0; i < in.N(); i++ {
		for p := 0; p < in.P(); p++ {
			if in.W[i][p] != in.wFlat[i*in.P()+p] {
				t.Fatalf("W[%d][%d] not backed by wFlat", i, p)
			}
		}
	}
}

func TestConsistentInstance(t *testing.T) {
	g := diamondGraph(t)
	sys := platform.MustNew(platform.Config{Speeds: []float64{1, 2}, TimePerUnit: 1})
	in := Consistent(g, sys)
	if got := in.Cost(0, 0); got != 2 {
		t.Fatalf("Cost(0,0) = %g", got)
	}
	if got := in.Cost(0, 1); got != 1 {
		t.Fatalf("Cost(0,1) = %g", got)
	}
	if got := in.MeanCost(0); got != 1.5 {
		t.Fatalf("MeanCost(0) = %g", got)
	}
	if got := in.SigmaCost(0); !almostEqual(got, 0.5) {
		t.Fatalf("SigmaCost(0) = %g", got)
	}
	if mc, p := in.MinCost(0); mc != 1 || p != 1 {
		t.Fatalf("MinCost(0) = %g on %d", mc, p)
	}
	if in.P() != 2 || in.N() != 4 {
		t.Fatalf("P,N = %d,%d", in.P(), in.N())
	}
}

func TestUnrelatedInstance(t *testing.T) {
	g := diamondGraph(t)
	sys := twoProc()
	rng := rand.New(rand.NewSource(1))
	in, err := Unrelated(g, sys, 1.0, rng)
	if err != nil {
		t.Fatalf("Unrelated: %v", err)
	}
	for i := 0; i < in.N(); i++ {
		nominal := g.Task(dag.TaskID(i)).Weight
		for p := 0; p < in.P(); p++ {
			c := in.Cost(dag.TaskID(i), p)
			if c < nominal*0.5-eps || c > nominal*1.5+eps {
				t.Fatalf("Cost(%d,%d) = %g outside β range of %g", i, p, c, nominal)
			}
		}
	}
	if _, err := Unrelated(g, sys, 2.5, rng); err == nil {
		t.Fatal("beta 2.5 accepted")
	}
	if _, err := Unrelated(g, sys, -0.1, rng); err == nil {
		t.Fatal("negative beta accepted")
	}
}

func TestCommCosts(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0.5, 2))
	// Edge (0,2) carries 4 units: comm = 0.5 + 4*2 = 8.5 across procs.
	if got := in.Comm(0, 2, 0, 1); !almostEqual(got, 8.5) {
		t.Fatalf("Comm = %g, want 8.5", got)
	}
	if got := in.Comm(0, 2, 1, 1); got != 0 {
		t.Fatalf("same-proc comm = %g", got)
	}
	if got := in.Comm(1, 2, 0, 1); got != 0 {
		t.Fatalf("non-edge comm = %g", got)
	}
	if got := in.MeanComm(0, 2); !almostEqual(got, 8.5) {
		t.Fatalf("MeanComm = %g", got)
	}
	if got := in.MeanComm(2, 0); got != 0 {
		t.Fatalf("MeanComm on reversed edge = %g", got)
	}
}

func TestCCR(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(2, 0, 1))
	// Mean comm per edge = mean data = (1+4+2+3)/4 = 2.5; mean comp =
	// (2+3+1+4)/4 = 2.5; CCR = 1.
	if got := in.CCR(); !almostEqual(got, 1) {
		t.Fatalf("CCR = %g, want 1", got)
	}
	single := dag.NewBuilder("one")
	single.AddTask("", 5)
	in2 := Consistent(single.MustBuild(), twoProc())
	if got := in2.CCR(); got != 0 {
		t.Fatalf("edgeless CCR = %g, want 0", got)
	}
}

func TestSeqTimeAndCPMin(t *testing.T) {
	g := diamondGraph(t)
	sys := platform.MustNew(platform.Config{Speeds: []float64{1, 2}, TimePerUnit: 1})
	in := Consistent(g, sys)
	// Loads: P0 = 10, P1 = 5.
	if got := in.SeqTime(); got != 5 {
		t.Fatalf("SeqTime = %g, want 5", got)
	}
	// Min costs: all on P1 (speed 2): 1, 1.5, 0.5, 2. CP = 0->1->3 = 4.5.
	if got := in.CPMin(); !almostEqual(got, 4.5) {
		t.Fatalf("CPMin = %g, want 4.5", got)
	}
}
