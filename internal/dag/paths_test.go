package dag

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-9

func almostEqual(a, b float64) bool { return math.Abs(a-b) < eps }

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(t)
	// Without comm: 0->1->3 = 2+3+4 = 9 vs 0->2->3 = 2+1+4 = 7.
	path, length := g.CriticalPath(false)
	if !almostEqual(length, 9) {
		t.Fatalf("CP length (no comm) = %g, want 9", length)
	}
	want := []TaskID{0, 1, 3}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// With comm: 0-(1)->1-(2)->3 = 2+1+3+2+4 = 12 vs 0-(4)->2-(3)->3 = 2+4+1+3+4 = 14.
	path, length = g.CriticalPath(true)
	if !almostEqual(length, 14) {
		t.Fatalf("CP length (comm) = %g, want 14", length)
	}
	if path[1] != 2 {
		t.Fatalf("comm path = %v, want through task 2", path)
	}
	if got := g.CriticalPathLength(true); !almostEqual(got, 14) {
		t.Fatalf("CriticalPathLength = %g", got)
	}
}

func TestBottomAndTopLevels(t *testing.T) {
	g := diamond(t)
	bl := g.BottomLevels(false)
	wantBL := []float64{9, 7, 5, 4}
	for i := range wantBL {
		if !almostEqual(bl[i], wantBL[i]) {
			t.Fatalf("BottomLevels = %v, want %v", bl, wantBL)
		}
	}
	tl := g.TopLevels(false)
	wantTL := []float64{0, 2, 2, 5}
	for i := range wantTL {
		if !almostEqual(tl[i], wantTL[i]) {
			t.Fatalf("TopLevels = %v, want %v", tl, wantTL)
		}
	}
	blc := g.BottomLevels(true)
	wantBLC := []float64{14, 9, 8, 4}
	for i := range wantBLC {
		if !almostEqual(blc[i], wantBLC[i]) {
			t.Fatalf("BottomLevels(comm) = %v, want %v", blc, wantBLC)
		}
	}
}

func TestALAP(t *testing.T) {
	g := diamond(t)
	alap := g.ALAP(false)
	// CP = 9; alap[v] = 9 - bl[v].
	want := []float64{0, 2, 4, 5}
	for i := range want {
		if !almostEqual(alap[i], want[i]) {
			t.Fatalf("ALAP = %v, want %v", alap, want)
		}
	}
}

// Property: for every task, topLevel + bottomLevel <= CP length, with
// equality exactly on critical-path tasks; and levels are consistent along
// edges.
func TestLevelInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(50), 0.12)
		for _, withComm := range []bool{false, true} {
			bl := g.BottomLevels(withComm)
			tl := g.TopLevels(withComm)
			cp := g.CriticalPathLength(withComm)
			onCP := false
			for i := 0; i < g.Len(); i++ {
				sum := tl[i] + bl[i]
				if sum > cp+eps {
					t.Fatalf("task %d: tl+bl = %g > cp = %g", i, sum, cp)
				}
				if almostEqual(sum, cp) {
					onCP = true
				}
			}
			if !onCP {
				t.Fatal("no task achieves tl+bl == cp")
			}
			for _, e := range g.Edges() {
				c := 0.0
				if withComm {
					c = e.Data
				}
				if bl[e.From] < g.Task(e.From).Weight+c+bl[e.To]-eps {
					t.Fatalf("bottom level not monotone along edge %v", e)
				}
				if tl[e.To] < tl[e.From]+g.Task(e.From).Weight+c-eps {
					t.Fatalf("top level not monotone along edge %v", e)
				}
			}
		}
	}
}

// Property: the returned critical path is a real path whose weights sum to
// the reported length.
func TestCriticalPathIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 2+rng.Intn(40), 0.15)
		for _, withComm := range []bool{false, true} {
			path, length := g.CriticalPath(withComm)
			if len(path) == 0 {
				t.Fatal("empty critical path")
			}
			sum := 0.0
			for i, v := range path {
				sum += g.Task(v).Weight
				if i+1 < len(path) {
					d, ok := g.EdgeData(v, path[i+1])
					if !ok {
						t.Fatalf("path step (%d,%d) is not an edge", v, path[i+1])
					}
					if withComm {
						sum += d
					}
				}
			}
			if !almostEqual(sum, length) {
				t.Fatalf("path sums to %g, reported %g", sum, length)
			}
		}
	}
}
