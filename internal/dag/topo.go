package dag

import (
	"errors"
	"fmt"
)

// ErrCycle reports that a task graph contains a dependency cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// topoOrder computes one topological order using Kahn's algorithm,
// returning ErrCycle if the graph is not acyclic. Ties are broken by task
// id so the order is deterministic.
func topoOrder(g *Graph) ([]TaskID, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDegree(TaskID(i))
	}
	// A monotone frontier: because ready tasks are appended in id order
	// per wave and consumed FIFO, the order is deterministic.
	queue := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, a := range g.Succ(v) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w (%d of %d tasks ordered)", ErrCycle, len(order), n)
	}
	return order, nil
}

// cachedTopo returns the shared canonical topological order, computing it
// once per graph. Callers must not modify it — the exported accessors copy.
func (g *Graph) cachedTopo() []TaskID {
	g.topoOnce.Do(func() {
		order, err := topoOrder(g)
		if err != nil {
			// Build guarantees acyclicity; reaching this indicates memory
			// corruption or misuse of the package internals.
			panic(err)
		}
		g.topo = order
	})
	return g.topo
}

// TopoOrder returns a deterministic topological order of the graph. The
// graph is guaranteed acyclic by Build, so no error is possible. The
// caller owns the returned slice.
func (g *Graph) TopoOrder() []TaskID {
	return append([]TaskID(nil), g.cachedTopo()...)
}

// ReverseTopoOrder returns the reverse of TopoOrder.
func (g *Graph) ReverseTopoOrder() []TaskID {
	topo := g.cachedTopo()
	order := make([]TaskID, len(topo))
	for i, v := range topo {
		order[len(topo)-1-i] = v
	}
	return order
}

// computeLevelSets groups the tasks of one traversal direction into CSR
// level sets: lvl[v] is v's level, maxLvl the largest one; tasks within a
// level are appended in ascending id order (the bucket fill below walks
// ids 0..n-1), which fixes the deterministic iteration order the parallel
// rank kernels rely on.
func computeLevelSets(lvl []int, maxLvl int) levelSets {
	off := make([]int32, maxLvl+2)
	for _, l := range lvl {
		off[l+1]++
	}
	for l := 0; l < maxLvl+1; l++ {
		off[l+1] += off[l]
	}
	tasks := make([]TaskID, len(lvl))
	cur := append([]int32(nil), off[:maxLvl+1]...)
	for v, l := range lvl {
		tasks[cur[l]] = TaskID(v)
		cur[l]++
	}
	return levelSets{off: off, tasks: tasks}
}

// levelCaches computes the depth and height groupings once per graph.
func (g *Graph) levelCaches() (depth, height levelSets) {
	g.lvlOnce.Do(func() {
		n := g.Len()
		topo := g.cachedTopo()
		lvl := make([]int, n)
		maxLvl := 0
		for _, v := range topo {
			l := 0
			for _, p := range g.Pred(v) {
				if lvl[p.To]+1 > l {
					l = lvl[p.To] + 1
				}
			}
			lvl[v] = l
			if l > maxLvl {
				maxLvl = l
			}
		}
		g.depth = computeLevelSets(lvl, maxLvl)

		maxLvl = 0
		for i := len(topo) - 1; i >= 0; i-- {
			v := topo[i]
			l := 0
			for _, a := range g.Succ(v) {
				if lvl[a.To]+1 > l {
					l = lvl[a.To] + 1
				}
			}
			lvl[v] = l
			if l > maxLvl {
				maxLvl = l
			}
		}
		g.height = computeLevelSets(lvl, maxLvl)
	})
	return g.depth, g.height
}

// DepthLevels returns the tasks grouped by depth from the entries in CSR
// form: level l holds tasks[off[l]:off[l+1]] in ascending id order, entry
// tasks are level 0 and every other task is one deeper than its deepest
// predecessor. All predecessors of a task lie in strictly earlier levels
// and no edge connects two tasks of one level, so processing levels in
// order — with any evaluation order inside a level — is dependency-safe;
// the downward-rank kernels shard each level over workers on that
// guarantee. The returned slices are shared and must not be modified.
func (g *Graph) DepthLevels() (off []int32, tasks []TaskID) {
	d, _ := g.levelCaches()
	return d.off, d.tasks
}

// HeightLevels is DepthLevels measured from the exits: exit tasks are
// level 0 and every other task is one higher than its highest successor,
// so all successors of a task lie in strictly earlier levels — the upward
// traversal order. The returned slices are shared and must not be
// modified.
func (g *Graph) HeightLevels() (off []int32, tasks []TaskID) {
	_, h := g.levelCaches()
	return h.off, h.tasks
}

// Levels assigns each task its depth: entry tasks are level 0 and every
// other task is one more than its deepest predecessor. The caller owns the
// returned slice.
func (g *Graph) Levels() []int {
	off, tasks := g.DepthLevels()
	levels := make([]int, g.Len())
	for l := 0; l+1 < len(off); l++ {
		for _, v := range tasks[off[l]:off[l+1]] {
			levels[v] = l
		}
	}
	return levels
}

// Height returns the number of levels in the graph (longest path length in
// nodes).
func (g *Graph) Height() int {
	off, _ := g.DepthLevels()
	return len(off) - 1
}

// IsReachable reports whether to is reachable from from following edges
// forward. It runs a DFS and is intended for tests and validation, not for
// inner scheduling loops.
func (g *Graph) IsReachable(from, to TaskID) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.Len())
	stack := []TaskID{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Succ(v) {
			if a.To == to {
				return true
			}
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return false
}
