// Package contention exposes the contention-aware schedulers built on the
// pluggable communication-model layer. The one-port earliest-start logic
// (one send port and one receive port per processor, transfers serialize
// on both; Sinnen and Sousa) that used to live here as a private
// span-list implementation is now platform.OnePort + the reservation
// plumbing in sched.Plan/Txn, shared by every algorithm in the registry:
// CHEFT is simply HEFT run through algo.CommAware, and any other
// scheduler gains the same awareness by the same wrapping. Schedules
// remain valid under the classic contention-free validator (starts only
// move later) but lose far less when replayed on a network that
// serializes transfers (experiments E16/E20).
package contention

import (
	"context"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// CHEFT is contention-aware HEFT: upward-rank order, processor choice by
// the contention-aware insertion EFT, sequential port commitment — HEFT
// delegated through the shared one-port reservation layer.
type CHEFT struct{}

// Name implements algo.Algorithm.
func (CHEFT) Name() string { return "C-HEFT" }

func cheft() algo.CommAware {
	return algo.CommAware{Inner: listsched.HEFT{}, Kind: platform.KindOnePort, DisplayName: "C-HEFT"}
}

// Schedule implements algo.Algorithm.
func (CHEFT) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return cheft().Schedule(in)
}

// ScheduleContext implements algo.CtxScheduler: the inner HEFT loop polls
// the context, so contention-aware service requests abort on deadline.
func (CHEFT) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	return cheft().ScheduleContext(ctx, in)
}

// PortSchedule exposes the committed reservations for tests: the total
// reserved send-port time per processor after scheduling in under the
// one-port model with CHEFT.
func PortSchedule(in *sched.Instance) ([]float64, error) {
	model, err := platform.ModelByKind(platform.KindOnePort, in.Sys)
	if err != nil {
		return nil, err
	}
	bound := in.WithComm(model)
	order := algo.OrderDescPrecedence(bound.G, sched.RankUpward(bound))
	pl := sched.NewPlan(bound)
	for _, t := range order {
		p, s, _ := pl.BestEFT(t, true)
		pl.Place(t, p, s)
	}
	out := make([]float64, bound.P())
	if st := pl.CommState(); st != nil {
		// One-port resource layout: send ports are 0..P-1.
		copy(out, st.Busy()[:bound.P()])
	}
	return out, nil
}
