package service_test

import (
	"context"
	"strings"
	"testing"

	"dagsched/internal/platform"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
)

// TestCommModelRequests drives the comm-model request surface end to
// end: the selected model is echoed in the response, a contended model
// only moves the makespan up, and the model is part of the cache
// identity (the same problem under two models never shares an entry).
func TestCommModelRequests(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, CacheSize: 64})
	inst := instanceJSON(t, testfix.Topcuoglu())
	ctx := context.Background()

	free, err := c.Schedule(ctx, service.ScheduleRequest{Algorithm: "HEFT", Instance: inst})
	if err != nil {
		t.Fatalf("contention-free: %v", err)
	}
	if free.CommModel != platform.KindContentionFree {
		t.Fatalf("default commModel = %q", free.CommModel)
	}
	onePort, err := c.Schedule(ctx, service.ScheduleRequest{
		Algorithm: "HEFT", Instance: inst, CommModel: platform.KindOnePort,
	})
	if err != nil {
		t.Fatalf("one-port: %v", err)
	}
	if onePort.CommModel != platform.KindOnePort {
		t.Fatalf("one-port commModel = %q", onePort.CommModel)
	}
	if onePort.Cached {
		t.Fatal("one-port request hit the contention-free cache entry")
	}
	if onePort.Makespan < free.Makespan-1e-9 {
		t.Fatalf("one-port makespan %g below contention-free %g", onePort.Makespan, free.Makespan)
	}
	again, err := c.Schedule(ctx, service.ScheduleRequest{
		Algorithm: "HEFT", Instance: inst, CommModel: platform.KindOnePort,
	})
	if err != nil {
		t.Fatalf("one-port repeat: %v", err)
	}
	if !again.Cached || again.Makespan != onePort.Makespan {
		t.Fatalf("repeat not served from cache: cached=%v makespan %g vs %g",
			again.Cached, again.Makespan, onePort.Makespan)
	}

	shared, err := c.Schedule(ctx, service.ScheduleRequest{
		Algorithm: "ILS", Instance: inst, CommModel: platform.KindSharedLink, LinkBandwidth: 0.5,
	})
	if err != nil {
		t.Fatalf("shared-link: %v", err)
	}
	if shared.CommModel != platform.KindSharedLink {
		t.Fatalf("shared-link commModel = %q", shared.CommModel)
	}

	for _, bad := range []service.ScheduleRequest{
		{Algorithm: "HEFT", Instance: inst, CommModel: "bogus"},
		{Algorithm: "HEFT", Instance: inst, CommModel: platform.KindSharedLink, LinkBandwidth: -1},
		{Algorithm: "HEFT", Instance: inst, CommModel: platform.KindOnePort, LinkBandwidth: 2},
		{Algorithm: "HEFT", Instance: inst, LinkBandwidth: 0.5},
	} {
		if _, err := c.Schedule(ctx, bad); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
			t.Errorf("commModel=%q linkBandwidth=%g: want HTTP 400, got %v", bad.CommModel, bad.LinkBandwidth, err)
		}
	}

	kinds, err := c.CommModels(ctx)
	if err != nil {
		t.Fatalf("CommModels: %v", err)
	}
	want := platform.ModelKinds()
	if len(kinds) != len(want) {
		t.Fatalf("/v1/algorithms commModels = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("/v1/algorithms commModels = %v, want %v", kinds, want)
		}
	}
}
