// Package dag provides the directed-acyclic-graph substrate used by every
// scheduling algorithm in this repository: the task-graph model, builders,
// traversals, critical-path analysis and serialization.
//
// A Graph is immutable after Build; algorithms never mutate it. Task and
// edge weights stored here are *nominal* costs: the per-processor execution
// cost of a task on a concrete platform is derived in package sched by
// combining the nominal weight with the platform's heterogeneity model.
package dag

import (
	"fmt"
	"sort"
)

// TaskID identifies a task within a single Graph. IDs are dense: a graph
// with n tasks uses IDs 0..n-1.
type TaskID int

// Task is a node of the task graph. Weight is the nominal computation cost
// (e.g. the cost on a reference processor of speed 1.0).
type Task struct {
	ID     TaskID
	Name   string
	Weight float64
}

// Adj is one adjacency entry: the neighbouring task and the data volume
// carried by the connecting edge.
type Adj struct {
	To   TaskID
	Data float64
}

// Edge is a dependency i -> j transferring Data units of communication.
type Edge struct {
	From TaskID
	To   TaskID
	Data float64
}

// Graph is an immutable weighted DAG.
type Graph struct {
	name  string
	tasks []Task
	succ  [][]Adj // succ[i] sorted by To
	pred  [][]Adj // pred[j] sorted by To (i.e. by predecessor id)
	edges int
}

// Name returns the human-readable name given at build time (may be empty).
func (g *Graph) Name() string { return g.name }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task with the given id. It panics if id is out of
// range, consistent with slice indexing semantics.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Tasks returns a copy of all tasks in id order.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Succ returns the successor adjacency of id. The returned slice must not
// be modified.
func (g *Graph) Succ(id TaskID) []Adj { return g.succ[id] }

// Pred returns the predecessor adjacency of id. The returned slice must
// not be modified.
func (g *Graph) Pred(id TaskID) []Adj { return g.pred[id] }

// OutDegree returns the number of successors of id.
func (g *Graph) OutDegree(id TaskID) int { return len(g.succ[id]) }

// InDegree returns the number of predecessors of id.
func (g *Graph) InDegree(id TaskID) int { return len(g.pred[id]) }

// EdgeData returns the data volume on edge (from, to) and whether the edge
// exists.
func (g *Graph) EdgeData(from, to TaskID) (float64, bool) {
	adj := g.succ[from]
	k := sort.Search(len(adj), func(i int) bool { return adj[i].To >= to })
	if k < len(adj) && adj[k].To == to {
		return adj[k].Data, true
	}
	return 0, false
}

// Edges returns all edges in (From, To) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for i := range g.succ {
		for _, a := range g.succ[i] {
			out = append(out, Edge{From: TaskID(i), To: a.To, Data: a.Data})
		}
	}
	return out
}

// Entries returns all tasks with no predecessors, in id order.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Exits returns all tasks with no successors, in id order.
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TotalWeight returns the sum of all nominal task weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, t := range g.tasks {
		s += t.Weight
	}
	return s
}

// TotalData returns the sum of all edge data volumes.
func (g *Graph) TotalData() float64 {
	var s float64
	for i := range g.succ {
		for _, a := range g.succ[i] {
			s += a.Data
		}
	}
	return s
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag(%s: %d tasks, %d edges)", g.name, len(g.tasks), g.edges)
}
