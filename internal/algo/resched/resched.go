// Package resched implements reactive rescheduling: given a static
// schedule, a reaction time and a set of permanent processor crashes, it
// freezes the work that already completed or started, evicts everything
// destroyed or stranded by the crashes, and re-runs list scheduling for
// the unfinished suffix over the surviving processors.
//
// The reaction contract is event-driven: Repair reacts to the *last*
// event of the slice it is given; earlier events are context (their
// processors stay blocked) and must already be reflected in the input
// schedule — the iterative protocol React applies. This mirrors a real
// runtime, which repairs after each failure rather than batching them.
//
// Two primitive policies are registered, plus a combinator: remap-stranded
// disturbs the plan as little as possible (pending tasks keep their
// processor and may only slide later), reschedule-suffix re-derives the
// whole unfinished suffix with insertion-based best-EFT, and auto trials
// both speculatively in sched.Txn transactions over the shared frozen
// prefix and commits whichever yields the shorter repaired makespan.
//
// Repair plans and reports under the instance's idle communication
// costs: under a contended model Plan.Place re-derives starts through
// the reservation engine, which would move the frozen prefix.
package resched

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
)

const eps = 1e-9

// Event is one runtime fault the scheduler reacts to: processor Proc
// crashed permanently at Time.
type Event struct {
	Proc int
	Time float64
}

// Outcome summarizes one repair (or, via React, a whole reaction
// sequence) against the original schedule.
type Outcome struct {
	// Policy is the policy that ran; Chosen is the primitive mode it
	// settled on (differs from Policy only for auto).
	Policy, Chosen string
	// Nominal and Repaired are the makespans before and after.
	Nominal, Repaired float64
	// Frozen counts copies kept at their exact original placement; Lost
	// counts primary copies destroyed by the crashes; Remapped and
	// Delayed count pending primaries that moved to another processor or
	// slid later on their own; DroppedDups counts not-yet-started
	// duplicates the repair discarded as speculative.
	Frozen, Lost, Remapped, Delayed, DroppedDups int
}

// placer is the slice of the Plan/Txn surface the suffix pass needs;
// both satisfy it, which is what lets auto trial modes speculatively.
type placer interface {
	DataReady(i dag.TaskID, p int) float64
	FindSlot(p int, ready, dur float64, insertion bool) float64
	Place(i dag.TaskID, p int, start float64) sched.Assignment
}

// item is one movable task of the unfinished suffix.
type item struct {
	t     dag.TaskID
	proc  int // original processor of the pending primary; -1 when lost
	start float64
}

// Repair reacts to the last event in events, returning a repaired
// schedule that validates under the standard validator. See the package
// comment for the event contract.
func (p Policy) Repair(s *sched.Schedule, events []Event) (*sched.Schedule, error) {
	r, _, err := p.Assess(s, events)
	return r, err
}

// Assess is Repair plus the outcome accounting.
func (p Policy) Assess(s *sched.Schedule, events []Event) (*sched.Schedule, Outcome, error) {
	in := s.Instance()
	if len(events) == 0 {
		return nil, Outcome{}, fmt.Errorf("resched: no fault events to react to")
	}
	deadAt := make([]float64, in.P())
	for i := range deadAt {
		deadAt[i] = math.Inf(1)
	}
	reaction := 0.0
	alive := in.P()
	for _, ev := range events {
		if ev.Proc < 0 || ev.Proc >= in.P() {
			return nil, Outcome{}, fmt.Errorf("resched: event names processor %d of a %d-processor platform", ev.Proc, in.P())
		}
		if ev.Time < 0 || math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return nil, Outcome{}, fmt.Errorf("resched: event at invalid time %g", ev.Time)
		}
		if math.IsInf(deadAt[ev.Proc], 1) {
			alive--
		}
		if ev.Time < deadAt[ev.Proc] {
			deadAt[ev.Proc] = ev.Time
		}
		if ev.Time > reaction {
			reaction = ev.Time
		}
	}
	if alive == 0 {
		return nil, Outcome{}, fmt.Errorf("resched: every processor has crashed; nothing to reschedule onto")
	}
	if m := in.CommModel(); m != nil && m.NewState() != nil {
		in = in.WithComm(nil)
	}

	pl := sched.NewPlan(in)
	for q, d := range deadAt {
		if !math.IsInf(d, 1) {
			pl.BlockProc(q, d)
		}
	}
	out := Outcome{Policy: p.name, Chosen: p.name, Nominal: s.Makespan()}

	// Walk tasks in a precedence-safe order, freezing what already ran
	// and collecting the movable suffix: by the time a movable task is
	// placed, every predecessor — frozen or movable — is in the plan.
	var movable []item
	for _, t := range algo.OrderDescPrecedence(in.G, sched.RankUpward(in)) {
		var frozen []sched.Assignment
		var pending *sched.Assignment
		for _, c := range s.Copies(t) {
			c := c
			switch {
			case c.Finish > deadAt[c.Proc]+eps:
				// Destroyed: running or still pending when its processor died.
				if !c.Dup {
					out.Lost++
				}
			case c.Start <= reaction+eps:
				// Completed or running at reaction time: immutable.
				frozen = append(frozen, c)
			case !c.Dup:
				pending = &c
			default:
				out.DroppedDups++
			}
		}
		switch {
		case len(frozen) > 0:
			prim := -1
			for k, c := range frozen {
				if !c.Dup {
					prim = k
					break
				}
			}
			if prim < 0 {
				// The primary is gone (or not yet started) but a frozen
				// duplicate already computed the task: promote the
				// earliest-finishing one to primary.
				prim = 0
				for k := 1; k < len(frozen); k++ {
					if frozen[k].Finish < frozen[prim].Finish {
						prim = k
					}
				}
			}
			pl.Place(t, frozen[prim].Proc, frozen[prim].Start)
			for k, c := range frozen {
				if k != prim {
					pl.PlaceDup(t, c.Proc, c.Start)
				}
			}
			out.Frozen += len(frozen)
		case pending != nil:
			movable = append(movable, item{t: t, proc: pending.Proc, start: pending.Start})
		default:
			movable = append(movable, item{t: t, proc: -1})
		}
	}

	switch p.mode {
	case modeAuto:
		// Trial both primitive modes as speculative transactions over
		// the shared frozen prefix, commit the shorter repair. This is
		// exactly what sched.Txn exists for: both trials read through to
		// the same base, only the winner's journal is kept.
		txA := pl.Begin()
		msA, rmA, dlA, errA := placeSuffix(txA, in, modeRemap, movable, reaction)
		txB := pl.Begin()
		msB, rmB, dlB, errB := placeSuffix(txB, in, modeResuffix, movable, reaction)
		if errA != nil && errB != nil {
			return nil, Outcome{}, errA
		}
		useB := errA != nil || (errB == nil && msB < msA-eps)
		if useB {
			txA.Rollback()
			txB.Commit()
			out.Chosen, out.Remapped, out.Delayed = nameResuffix, rmB, dlB
		} else {
			txB.Rollback()
			txA.Commit()
			out.Chosen, out.Remapped, out.Delayed = nameRemap, rmA, dlA
		}
	default:
		var err error
		_, out.Remapped, out.Delayed, err = placeSuffix(pl, in, p.mode, movable, reaction)
		if err != nil {
			return nil, Outcome{}, err
		}
	}
	r := pl.Finalize(s.Algorithm() + "+" + p.name)
	out.Repaired = r.Makespan()
	return r, out, nil
}

// placeSuffix places the movable suffix under the given primitive mode.
// Nothing may start before the reaction time: the repair is computed *at*
// that instant, so earlier gaps are in the past. Returns the latest
// placed finish and the remapped/delayed counts.
func placeSuffix(v placer, in *sched.Instance, m mode, movable []item, reaction float64) (maxFinish float64, remapped, delayed int, err error) {
	for _, it := range movable {
		if m == modeRemap && it.proc >= 0 {
			// Keep the processor, slide later only as far as data and
			// the (crash-blocked) timeline force.
			dur := in.Cost(it.t, it.proc)
			ready := math.Max(v.DataReady(it.t, it.proc), math.Max(it.start, reaction))
			if st := v.FindSlot(it.proc, ready, dur, true); !math.IsInf(st, 1) {
				a := v.Place(it.t, it.proc, st)
				if st > it.start+eps {
					delayed++
				}
				if a.Finish > maxFinish {
					maxFinish = a.Finish
				}
				continue
			}
			// The kept processor is itself dead: fall back to best-EFT.
		}
		bp, bs := -1, math.Inf(1)
		bf := math.Inf(1)
		for q := 0; q < in.P(); q++ {
			dur := in.Cost(it.t, q)
			ready := math.Max(v.DataReady(it.t, q), reaction)
			if st := v.FindSlot(q, ready, dur, true); st+dur < bf {
				bp, bs, bf = q, st, st+dur
			}
		}
		if bp < 0 || math.IsInf(bs, 1) {
			return 0, 0, 0, fmt.Errorf("resched: no live processor can host task %d", it.t)
		}
		a := v.Place(it.t, bp, bs)
		switch {
		case it.proc >= 0 && bp != it.proc:
			remapped++
		case it.proc >= 0 && bs > it.start+eps:
			delayed++
		}
		if a.Finish > maxFinish {
			maxFinish = a.Finish
		}
	}
	return maxFinish, remapped, delayed, nil
}

// CrashEvents extracts the permanent crashes of a fault plan as repair
// events, sorted by time (transient crashes, link faults and jitter are
// runtime noise the static repair does not react to).
func CrashEvents(fp *sim.FaultPlan) []Event {
	if fp == nil {
		return nil
	}
	var evs []Event
	for _, c := range fp.Crashes {
		if c.Until == 0 {
			evs = append(evs, Event{Proc: c.Proc, Time: c.At})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].Proc < evs[j].Proc
	})
	return evs
}

// React applies the iterative reaction protocol to a fault plan: the
// plan's permanent crashes are sorted by time and the schedule is
// repaired after each one, every repair seeing the schedule already
// repaired for the earlier events. The outcome is aggregated against the
// original schedule. A plan with no permanent crashes returns the input
// schedule unchanged.
func React(s *sched.Schedule, fp *sim.FaultPlan, p Policy) (*sched.Schedule, Outcome, error) {
	events := CrashEvents(fp)
	agg := Outcome{Policy: p.name, Chosen: p.name, Nominal: s.Makespan(), Repaired: s.Makespan()}
	cur := s
	for i := range events {
		next, out, err := p.Assess(cur, events[:i+1])
		if err != nil {
			return nil, Outcome{}, err
		}
		cur = next
		agg.Lost += out.Lost
		agg.Remapped += out.Remapped
		agg.Delayed += out.Delayed
		agg.DroppedDups += out.DroppedDups
		agg.Frozen = out.Frozen
		agg.Chosen = out.Chosen
	}
	agg.Repaired = cur.Makespan()
	return cur, agg, nil
}
