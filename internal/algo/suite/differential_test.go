package suite

import (
	"math"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

// forceConcurrentTrials makes the transactional schedulers evaluate their
// per-processor trials on a real worker group even on the small battery
// instances (and on single-CPU machines), so the differential runs under
// -race exercise the concurrent path, then restores the defaults.
func forceConcurrentTrials(t *testing.T) {
	t.Helper()
	oldW, oldT := algo.ForceTrialWorkers, algo.ParallelTrialThreshold
	algo.ForceTrialWorkers, algo.ParallelTrialThreshold = 4, 0
	t.Cleanup(func() {
		algo.ForceTrialWorkers, algo.ParallelTrialThreshold = oldW, oldT
	})
}

// TestDifferentialDuplicationFamily proves the transactional trial layer
// reproduces the retained clone-based reference implementations bit for
// bit: identical schedule digests (same copies at the same float64 times)
// for ILS and all its ablation variants, DSH and BTDH, across the random
// battery and the golden instance set.
func TestDifferentialDuplicationFamily(t *testing.T) {
	forceConcurrentTrials(t)

	type pair struct {
		name string
		txn  func(in *sched.Instance) (*sched.Schedule, error)
		ref  func(in *sched.Instance) *sched.Schedule
	}
	pairs := []pair{
		{"ILS", core.New().Schedule, func(in *sched.Instance) *sched.Schedule {
			return testfix.RefILS(in, "ILS", testfix.RefILSOptions{SigmaRank: true, Lookahead: true, Duplication: true})
		}},
		{"ILS-L", core.NoDuplication().Schedule, func(in *sched.Instance) *sched.Schedule {
			return testfix.RefILS(in, "ILS-L", testfix.RefILSOptions{SigmaRank: true, Lookahead: true})
		}},
		{"ILS-D", core.NoLookahead().Schedule, func(in *sched.Instance) *sched.Schedule {
			return testfix.RefILS(in, "ILS-D", testfix.RefILSOptions{SigmaRank: true, Duplication: true})
		}},
		{"ILS-R", core.RankOnly().Schedule, func(in *sched.Instance) *sched.Schedule {
			return testfix.RefILS(in, "ILS-R", testfix.RefILSOptions{SigmaRank: true})
		}},
		{"DSH", dup.DSH{}.Schedule, testfix.RefDSH},
		{"BTDH", dup.BTDH{}.Schedule, testfix.RefBTDH},
	}

	check := func(t *testing.T, name string, in *sched.Instance, p pair) {
		t.Helper()
		got, err := p.txn(in)
		if err != nil {
			t.Fatalf("%s on %s: %v", p.name, name, err)
		}
		want := p.ref(in)
		if g, w := testfix.ScheduleDigest(got), testfix.ScheduleDigest(want); g != w {
			t.Errorf("%s on %s: transactional schedule diverges from clone-based reference\n got makespan %.9g digest %s\nwant makespan %.9g digest %s",
				p.name, name, got.Makespan(), g, want.Makespan(), w)
		}
	}

	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			for _, ni := range testfix.GoldenInstances() {
				check(t, ni.Name, ni.In, p)
			}
			testfix.Battery(testfix.BatteryConfig{Trials: 25, Seed: 9100}, func(trial int, in *sched.Instance) {
				check(t, "battery", in, p)
			})
		})
	}
}

// TestDifferentialTryDuplication compares single duplication trials on
// partial plans: the transactional TryDuplication must report the same
// start/finish/duplicate count as the clone-based reference for every
// (task, processor) pair reached while replaying a reference DSH run, and
// must leave the base plan untouched after rollback.
func TestDifferentialTryDuplication(t *testing.T) {
	forceConcurrentTrials(t)

	testfix.Battery(testfix.BatteryConfig{Trials: 15, MaxTasks: 30, Seed: 9200}, func(trial int, in *sched.Instance) {
		sl := sched.StaticLevel(in)
		pl := sched.NewPlan(in)
		rl := algo.NewReadyList(in.G)
		for !rl.Empty() {
			pick := dag.TaskID(-1)
			for _, r := range rl.Ready() {
				if pick == -1 || sl[r] > sl[pick] {
					pick = r
				}
			}
			for p := 0; p < in.P(); p++ {
				ref := testfix.RefTryDuplication(pl, pick, p, 64)
				before := testfix.PlanFingerprint(pl)

				tx := pl.Begin()
				res := algo.TryDuplication(tx, pick, p, 64)
				if res.Start != ref.Start || res.Finish != ref.Finish || res.Dups != ref.Dups {
					t.Fatalf("trial %d task %d proc %d: txn (start=%.9g finish=%.9g dups=%d) != ref (start=%.9g finish=%.9g dups=%d)",
						trial, pick, p, res.Start, res.Finish, res.Dups, ref.Start, ref.Finish, ref.Dups)
				}
				// The transactional view must expose the same processor
				// timeline the reference trial plan holds.
				gotProc := append([]sched.Assignment(nil), tx.OnProc(p)...)
				wantProc := ref.Plan.OnProc(p)
				if len(gotProc) != len(wantProc) {
					t.Fatalf("trial %d task %d proc %d: txn timeline %v != ref %v", trial, pick, p, gotProc, wantProc)
				}
				for k := range gotProc {
					if gotProc[k] != wantProc[k] {
						t.Fatalf("trial %d task %d proc %d slot %d: %v != %v", trial, pick, p, k, gotProc[k], wantProc[k])
					}
				}
				tx.Rollback()
				if after := testfix.PlanFingerprint(pl); after != before {
					t.Fatalf("trial %d task %d proc %d: rolled-back trial mutated the base plan", trial, pick, p)
				}
			}
			// Advance the partial plan exactly like the reference driver.
			bestFinish := math.Inf(1)
			var best testfix.RefDupResult
			bestProc := -1
			for p := 0; p < in.P(); p++ {
				res := testfix.RefTryDuplication(pl, pick, p, 64)
				if res.Finish < bestFinish {
					bestFinish, best, bestProc = res.Finish, res, p
				}
			}
			pl = best.Plan
			pl.Place(pick, bestProc, best.Start)
			rl.Complete(pick)
		}
	})
}
