package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dagsched"
)

// scaleSizeCap bounds the DAG size each algorithm is timed at, mirroring
// benchSizeCap in the repository's bench_test.go: the pair-scanning (ETF,
// DLS) and clustering/contention algorithms are inherently
// super-quadratic and stop at the largest size they finish in reasonable
// time; the duplication family runs its per-processor trials through the
// speculative-transaction layer, so the non-duplicating ILS variants
// reach the 10k tier and the duplicating schedulers (whose trial count
// still grows with duplicate fan-in) are timed to 1k. The near-linear
// HEFT-class insertion schedulers are timed to 100k tasks, and HEFT
// itself — the reference algorithm of the suite — to the million-task
// tier that the SoA kernel targets. Unlisted algorithms stop at
// scaleDefaultCap.
var scaleSizeCap = map[string]int{
	"ETF":    1000,
	"DLS":    1000,
	"ILS":    1000,
	"ILS-L":  10000,
	"ILS-D":  1000,
	"ILS-R":  10000,
	"DSH":    1000,
	"BTDH":   1000,
	"DSC":    1000,
	"C-HEFT": 1000,
	"C-ILS":  1000,
	"HEFT":   1000000,
	"CPOP":   100000,
	"HLFET":  100000,
	"MCP":    100000,
	"ISH":    100000,
	"HCPT":   100000,
	"LMT":    100000,
	"PETS":   100000,
}

// scaleDefaultCap bounds algorithms without an explicit entry above.
const scaleDefaultCap = 10000

// scaleParallelGate bounds the sizes measured by the parallel-throughput
// column: concurrent scheduling of independent instances models the
// service tier, which serves many small problems rather than one huge
// one.
const scaleParallelGate = 10000

// scaleReport is the machine-readable output of the -scale mode.
type scaleReport struct {
	Suite     string        `json:"suite"`
	GoVersion string        `json:"go_version"`
	GoOSArch  string        `json:"goos_goarch"`
	CPU       string        `json:"cpu"`
	Config    scaleConfig   `json:"config"`
	Results   []scaleResult `json:"results"`
}

// cpuModel reports the hardware the numbers were taken on, so absolute
// timings in committed reports can be compared meaningfully. Falls back
// to a generic GOMAXPROCS note when /proc/cpuinfo is unavailable.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v) + fmt.Sprintf(" (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
				}
			}
		}
	}
	return fmt.Sprintf("unknown (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
}

type scaleConfig struct {
	Sizes         []int   `json:"sizes"`
	Procs         int     `json:"procs"`
	CCR           float64 `json:"ccr"`
	Beta          float64 `json:"beta"`
	LinkSpread    float64 `json:"link_spread,omitempty"`
	StartupSpread float64 `json:"startup_spread,omitempty"`
	Reps          int     `json:"reps"`
	Seed          int64   `json:"seed"`
	// MaxProcs is the GOMAXPROCS the parallel-throughput column ran
	// under — its concurrency level.
	MaxProcs int `json:"maxprocs"`
}

type scaleResult struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Edges     int     `json:"edges"`
	Reps      int     `json:"reps"`
	BestNs    int64   `json:"best_ns"`
	MeanNs    int64   `json:"mean_ns"`
	NsPerTask float64 `json:"ns_per_task"`
	// BytesPerTask is the heap allocated per task by one steady-state
	// Schedule call (TotalAlloc delta over the measured rep divided by n) —
	// the memory-scaling headline for the 100k–1M tiers.
	BytesPerTask float64 `json:"bytes_per_task"`
	Makespan     float64 `json:"makespan"`
	// ParNsPerTask is the per-task cost when GOMAXPROCS independent
	// instances are scheduled concurrently (total tasks / wall-clock):
	// the service-tier throughput figure. Zero when the size is above
	// the parallel gate or the host has a single CPU's worth of
	// parallelism to offer.
	ParNsPerTask float64 `json:"par_ns_per_task,omitempty"`
	// ParSpeedup is BestNs-per-task divided by ParNsPerTask — how much
	// aggregate throughput concurrent scheduling buys over one core.
	ParSpeedup float64 `json:"par_speedup,omitempty"`
}

// runScale times every registry algorithm on layered random DAGs at the
// given sizes over 8 processors (CCR 1, heterogeneity 1 — the same design
// point BenchmarkAlgorithms uses) and writes the measurements as JSON.
// Best-of-reps is the headline number: wall-clock minima are the standard
// low-noise point estimate for CPU-bound work.
func runScale(outPath string, reps int, seed int64, quick bool, linkSpread, startupSpread float64) error {
	sizes := []int{100, 1000, 10000, 100000, 1000000}
	if quick {
		sizes = []int{100, 1000}
	}
	if reps <= 0 {
		reps = 3
	}
	par := runtime.GOMAXPROCS(0)
	rep := scaleReport{
		Suite:     "dagsched-scale",
		GoVersion: runtime.Version(),
		GoOSArch:  runtime.GOOS + "/" + runtime.GOARCH,
		CPU:       cpuModel(),
		Config: scaleConfig{Sizes: sizes, Procs: 8, CCR: 1, Beta: 1,
			LinkSpread: linkSpread, StartupSpread: startupSpread, Reps: reps, Seed: seed,
			MaxProcs: par},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
		if err != nil {
			return err
		}
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1,
			LinkSpread: linkSpread, StartupSpread: startupSpread}, rng)
		if err != nil {
			return err
		}
		// Independent instances for the parallel-throughput column: one
		// per GOMAXPROCS slot, each its own graph and system, so
		// concurrent Schedule calls share no mutable state. Gated at the
		// 10k tier — above it the sequential sweep already costs seconds
		// per rep, and service-style concurrency serves many small
		// problems, not one huge one.
		var parIns []*dagsched.Instance
		if n <= scaleParallelGate {
			parIns = append(parIns, in)
			for c := 1; c < par; c++ {
				pg, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
				if err != nil {
					return err
				}
				pin, err := dagsched.MakeInstance(pg, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1,
					LinkSpread: linkSpread, StartupSpread: startupSpread}, rng)
				if err != nil {
					return err
				}
				parIns = append(parIns, pin)
			}
		}
		for _, a := range dagsched.Algorithms() {
			cap, ok := scaleSizeCap[a.Name()]
			if !ok {
				cap = scaleDefaultCap
			}
			if n > cap {
				continue
			}
			// The 100k and 1M tiers run seconds per rep; steady-state noise
			// is proportionally small there, so fewer reps keep the whole
			// sweep tractable without hurting the best-of estimate.
			effReps := reps
			if n >= 1000000 && effReps > 1 {
				effReps = 1
			} else if n >= 100000 && effReps > 2 {
				effReps = 2
			}
			res := scaleResult{Algorithm: a.Name(), N: n, Edges: g.NumEdges(), Reps: effReps}
			// One untimed warmup rep: the first run pays one-off heap
			// growth and cache warming that would otherwise dominate the
			// mean for sub-millisecond algorithms; the reported numbers
			// are steady-state scheduling cost (as testing.B measures).
			if _, err := a.Schedule(in); err != nil {
				return fmt.Errorf("%s at n=%d: %w", a.Name(), n, err)
			}
			var total time.Duration
			var ms runtime.MemStats
			for r := 0; r < effReps; r++ {
				var allocBefore uint64
				if r == 0 {
					runtime.ReadMemStats(&ms)
					allocBefore = ms.TotalAlloc
				}
				start := time.Now()
				s, err := a.Schedule(in)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s at n=%d: %w", a.Name(), n, err)
				}
				if r == 0 {
					res.Makespan = s.Makespan()
					// TotalAlloc is a monotone allocation counter, so the
					// delta is GC-independent: exactly the bytes this
					// steady-state rep allocated.
					runtime.ReadMemStats(&ms)
					res.BytesPerTask = float64(ms.TotalAlloc-allocBefore) / float64(n)
				}
				total += elapsed
				if res.BestNs == 0 || elapsed.Nanoseconds() < res.BestNs {
					res.BestNs = elapsed.Nanoseconds()
				}
			}
			res.MeanNs = total.Nanoseconds() / int64(effReps)
			res.NsPerTask = float64(res.BestNs) / float64(n)
			if len(parIns) > 0 {
				best, err := parallelThroughput(a, parIns, effReps)
				if err != nil {
					return fmt.Errorf("%s parallel at n=%d: %w", a.Name(), n, err)
				}
				res.ParNsPerTask = float64(best.Nanoseconds()) / float64(n*len(parIns))
				if res.ParNsPerTask > 0 {
					res.ParSpeedup = res.NsPerTask / res.ParNsPerTask
				}
			}
			rep.Results = append(rep.Results, res)
			fmt.Fprintf(os.Stderr, "scale: %-8s n=%-7d best=%-12s ns/task=%-8.0f B/task=%-8.0f par=%.2fx\n",
				res.Algorithm, n, time.Duration(res.BestNs).Round(time.Microsecond), res.NsPerTask, res.BytesPerTask, res.ParSpeedup)
		}
	}
	return writeScaleReport(&rep, outPath)
}

// parallelThroughput times len(ins) concurrent Schedule calls — one
// goroutine per independent instance — returning the best wall-clock of
// reps rounds. One untimed warm round matches the sequential protocol.
func parallelThroughput(a dagsched.Algorithm, ins []*dagsched.Instance, reps int) (time.Duration, error) {
	run := func() (time.Duration, error) {
		errs := make([]error, len(ins))
		var wg sync.WaitGroup
		start := time.Now()
		for c, in := range ins {
			wg.Add(1)
			go func(c int, in *dagsched.Instance) {
				defer wg.Done()
				_, errs[c] = a.Schedule(in)
			}(c, in)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}
	if _, err := run(); err != nil {
		return 0, err
	}
	var best time.Duration
	for r := 0; r < reps; r++ {
		elapsed, err := run()
		if err != nil {
			return 0, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

func writeScaleReport(rep *scaleReport, outPath string) error {
	sort.SliceStable(rep.Results, func(i, j int) bool {
		if rep.Results[i].N != rep.Results[j].N {
			return rep.Results[i].N < rep.Results[j].N
		}
		return rep.Results[i].Algorithm < rep.Results[j].Algorithm
	})
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}
