package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFaultPlan hardens the wire decoder: whatever bytes arrive, the
// decoder must never panic, and any plan it accepts must be structurally
// valid and survive a marshal/decode round trip (the canonical form a
// service would echo back).
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crashes":[{"proc":1,"at":3.5}],"jitter":0.1,"seed":9}`))
	f.Add([]byte(`{"crashes":[{"proc":0,"at":2,"until":4}]}`))
	f.Add([]byte(`{"links":[{"from":-1,"to":0,"at":1,"until":2,"factor":4}]}`))
	f.Add([]byte(`{"links":[{"from":0,"to":1,"at":0,"outage":true}]}`))
	f.Add([]byte(`{"crashes":[{"proc":-1,"at":-5}],"jitter":2}`))
	f.Add([]byte(`{"crashes":[{"proc":1e99,"at":1e308}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fp, err := ReadFaultPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := fp.Validate(0); verr != nil {
			t.Fatalf("accepted plan fails validation: %v", verr)
		}
		wire, err := json.Marshal(fp)
		if err != nil {
			t.Fatalf("accepted plan does not marshal: %v", err)
		}
		if _, err := ReadFaultPlan(bytes.NewReader(wire)); err != nil {
			t.Fatalf("canonical form %s rejected: %v", wire, err)
		}
	})
}
