package experiment

import (
	"fmt"
	"math/rand"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/core"
	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// E17 — sensitivity of ILS to the duplication budget: sweep MaxDups and
// measure mean SLR and the duplicate count, at moderate and high CCR.
func E17() Experiment {
	return Experiment{ID: "E17", Title: "ILS duplication-budget sensitivity", Run: func(cfg Config) ([]*Table, error) {
		budgets := []int{1, 2, 4, 8, 16}
		if cfg.Quick {
			budgets = []int{1, 8}
		}
		var algs []algo.Algorithm
		for _, b := range budgets {
			algs = append(algs, core.Variant(fmt.Sprintf("dups≤%d", b), core.Options{
				SigmaRank: true, Lookahead: true, Duplication: true, MaxDups: b,
			}))
		}
		reps := cfg.reps(25)
		ccrs := []float64{1, 5}
		if cfg.Quick {
			ccrs = []float64{5}
		}
		t := &Table{ID: "E17", Title: "ILS mean SLR vs duplication budget (n=60, P=8, β=1)",
			Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1701, randGen(randParams{ccr: c}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = "A budget of 1–2 duplicates per placement captures nearly the full benefit: the critical parent dominates."
		return []*Table{t}, nil
	}}
}

// E18 — link heterogeneity: SLR as the network's per-link rates spread
// out while their mean stays fixed. Rank computations use mean costs, so
// increasing spread degrades every mean-based heuristic; the question is
// who degrades gracefully.
func E18() Experiment {
	return Experiment{ID: "E18", Title: "Link heterogeneity: SLR vs link spread", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			core.New(),
			listsched.HEFT{},
			listsched.CPOP{},
			listsched.DLS{},
		}
		spreads := []float64{0, 0.5, 1.0, 1.5}
		if cfg.Quick {
			spreads = []float64{0, 1.0}
		}
		reps := cfg.reps(25)
		t := &Table{ID: "E18", Title: "Average SLR vs link-rate spread (n=60, P=8, CCR=1, β=1)",
			Columns: append([]string{"spread"}, names(algs)...)}
		for i, sp := range spreads {
			sp := sp
			gen := func(rng *rand.Rand) (*sched.Instance, error) {
				g, err := workload.Random(workload.RandomConfig{N: 60}, rng)
				if err != nil {
					return nil, err
				}
				return workload.MakeInstance(g, workload.HetConfig{
					Procs: 8, CCR: 1, Beta: 1, LinkSpread: sp,
				}, rng)
			}
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1801, gen, slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", sp), accs))
		}
		t.Notes = "Per-link time-per-unit drawn uniformly with mean 1; spread 0 reproduces the uniform network of E2."
		return []*Table{t}, nil
	}}
}
