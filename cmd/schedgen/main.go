// Command schedgen generates workload task graphs as JSON (and optionally
// Graphviz DOT).
//
// Usage:
//
//	schedgen -type random -n 100 -shape 1.0 -outdeg 4 -seed 7 -o g.json
//	schedgen -type gauss -m 15 -dot g.dot
//	schedgen -type fft -n 64
//	schedgen -type random -n 60 -instance in.json -procs 8 -speed-het 0.5 -startup-spread 1 -link-spread 1
//
// Types: random, gauss, fft, laplace, forkjoin, intree, outtree,
// pipeline, montage, cholesky, lu.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dagsched"
)

func main() {
	var (
		typ    = flag.String("type", "random", "workload type (random|gauss|fft|laplace|forkjoin|intree|outtree|pipeline|montage|cholesky|lu)")
		n      = flag.Int("n", 60, "task count (random) / points (fft) / tiles (montage)")
		m      = flag.Int("m", 10, "matrix size (gauss) / grid (laplace) / tiles (cholesky, lu)")
		shape  = flag.Float64("shape", 1.0, "shape α of random DAGs")
		outdeg = flag.Int("outdeg", 4, "max out-degree of random DAGs")
		br     = flag.Int("branches", 4, "branches (forkjoin) / fanout (trees)")
		st     = flag.Int("stages", 3, "stages (forkjoin) / depth (trees)")
		widths = flag.String("widths", "2,4,4,1", "stage widths (pipeline)")
		daxIn  = flag.String("dax", "", "import a Pegasus DAX file instead of generating (-type ignored)")
		scale  = flag.Float64("dax-scale", 1e-6, "file-size scale for DAX edge data (1e-6 = bytes to MB)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output JSON file (- for stdout)")
		dot    = flag.String("dot", "", "also write Graphviz DOT to this file")
		stats  = flag.Bool("stats", false, "print structural statistics to stderr")

		inst     = flag.String("instance", "", "also write a full problem instance (graph + generated system + consistent costs) to this file")
		procs    = flag.Int("procs", 8, "processor count for -instance")
		speedHet = flag.Float64("speed-het", 0, "processor-speed heterogeneity in [0,2) for -instance")
		latency  = flag.Float64("latency", 0, "per-link startup latency for -instance")
		tpu      = flag.Float64("tpu", 1, "per-data-unit transfer time for -instance")
		startSp  = flag.Float64("startup-spread", 0, "per-link startup spread in [0,2) for -instance (non-uniform startup matrix)")
		linkSp   = flag.Float64("link-spread", 0, "per-link transfer-rate spread in [0,2) for -instance (non-uniform rate matrix)")
	)
	flag.Parse()

	var g *dagsched.Graph
	var err error
	if *daxIn != "" {
		f, ferr := os.Open(*daxIn)
		if ferr != nil {
			fatal(ferr)
		}
		g, err = dagsched.ReadDAX(f, dagsched.DAXOptions{DataScale: *scale})
		f.Close()
	} else {
		g, err = generate(*typ, *n, *m, *shape, *outdeg, *br, *st, *widths, *seed)
	}
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		fatal(err)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteDOT(f); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d tasks, %d edges, height %d\n",
		g.Name(), g.Len(), g.NumEdges(), g.Height())
	if *stats {
		fmt.Fprintln(os.Stderr, g.ComputeStats())
	}
	if *inst != "" {
		// The system draw is seeded independently of the graph draw, so
		// the same -seed reproduces the same topology for any -type.
		sysRng := rand.New(rand.NewSource(*seed))
		sys, err := dagsched.GenerateSystem(dagsched.SystemGenConfig{
			Procs:              *procs,
			SpeedHeterogeneity: *speedHet,
			Latency:            *latency,
			TimePerUnit:        *tpu,
			StartupSpread:      *startSp,
			LinkSpread:         *linkSp,
		}, sysRng)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*inst)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dagsched.ConsistentInstance(g, sys).WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d processors, speed-het %g, startup-spread %g, link-spread %g\n",
			*inst, *procs, *speedHet, *startSp, *linkSp)
	}
}

func generate(typ string, n, m int, shape float64, outdeg, br, st int, widths string, seed int64) (*dagsched.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch typ {
	case "random":
		return dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n, Shape: shape, OutDegree: outdeg}, rng)
	case "gauss":
		return dagsched.GaussianEliminationDAG(m)
	case "fft":
		return dagsched.FFTDAG(n)
	case "laplace":
		return dagsched.LaplaceDAG(m)
	case "forkjoin":
		return dagsched.ForkJoinDAG(br, st)
	case "intree":
		return dagsched.InTreeDAG(br, st)
	case "outtree":
		return dagsched.OutTreeDAG(br, st)
	case "pipeline":
		var ws []int
		for _, p := range strings.Split(widths, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("bad widths %q: %v", widths, err)
			}
			ws = append(ws, v)
		}
		return dagsched.PipelineDAG(ws)
	case "montage":
		return dagsched.MontageDAG(n)
	case "cholesky":
		return dagsched.CholeskyDAG(m)
	case "lu":
		return dagsched.LUDAG(m)
	default:
		return nil, fmt.Errorf("unknown workload type %q", typ)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedgen:", err)
	os.Exit(1)
}
