package stream

import (
	"testing"

	"dagsched/internal/platform"
)

// BenchmarkStreamAppend measures end-to-end event ingestion: a 2000-task
// log replayed through the incremental engine, auto-flushing every 32
// events. The per-op metric is the whole replay; events/sec is reported
// alongside.
func BenchmarkStreamAppend(b *testing.B) {
	in := streamInstance(b, 42, 2000, 8)
	evs, err := InstanceEvents(in, arrivalOrders(in, 0)["topo"])
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Algorithm: "HEFT", Sys: platform.Homogeneous(8, 1, 1), BatchSize: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(cfg, evs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkStreamAppendFullRecompute is the baseline the incremental
// engine is measured against: every flush re-plans from scratch.
func BenchmarkStreamAppendFullRecompute(b *testing.B) {
	in := streamInstance(b, 42, 2000, 8)
	evs, err := InstanceEvents(in, arrivalOrders(in, 0)["topo"])
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Algorithm: "HEFT", Sys: platform.Homogeneous(8, 1, 1), BatchSize: 32, FullRecompute: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Replay(cfg, evs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/sec")
}
