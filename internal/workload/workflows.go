package workload

import (
	"fmt"

	"dagsched/internal/dag"
)

// Parametric generators for the Pegasus-style scientific workflows used
// throughout the workflow-scheduling literature. The shapes follow the
// published workflow characterizations (Bharathi et al., "Characterization
// of scientific workflows"); weights encode the relative stage costs.

// Epigenomics returns the genome-sequencing pipeline: lanes independent
// fastq-split chains (filter → map → merge per lane), a global merge, and
// the final indexing chain. Each lane processes chunk fan-out chunks.
func Epigenomics(lanes, chunks int) (*dag.Graph, error) {
	if lanes < 1 || chunks < 1 {
		return nil, fmt.Errorf("workload: epigenomics needs lanes, chunks >= 1 (got %d, %d)", lanes, chunks)
	}
	b := dag.NewBuilder(fmt.Sprintf("epigenomics-%dx%d", lanes, chunks))
	globalMerge := dag.TaskID(-1)
	laneMerges := make([]dag.TaskID, lanes)
	for l := 0; l < lanes; l++ {
		split := b.AddTask(fmt.Sprintf("fastqSplit%d", l), 2)
		laneMerge := b.AddTask(fmt.Sprintf("mergeLane%d", l), 4)
		for c := 0; c < chunks; c++ {
			filter := b.AddTask(fmt.Sprintf("filter%d.%d", l, c), 3)
			sol := b.AddTask(fmt.Sprintf("sol2sanger%d.%d", l, c), 1)
			fq := b.AddTask(fmt.Sprintf("fastq2bfq%d.%d", l, c), 1)
			mapT := b.AddTask(fmt.Sprintf("map%d.%d", l, c), 12)
			b.AddEdge(split, filter, 4)
			b.AddEdge(filter, sol, 3)
			b.AddEdge(sol, fq, 3)
			b.AddEdge(fq, mapT, 3)
			b.AddEdge(mapT, laneMerge, 2)
		}
		laneMerges[l] = laneMerge
	}
	globalMerge = b.AddTask("mergeAll", 6)
	for _, m := range laneMerges {
		b.AddEdge(m, globalMerge, 4)
	}
	index := b.AddTask("mapIndex", 3)
	b.AddEdge(globalMerge, index, 6)
	seq := b.AddTask("pileup", 5)
	b.AddEdge(index, seq, 6)
	return b.Build()
}

// CyberShake returns the seismic-hazard workflow: per-site extraction
// feeding pairs of seismogram syntheses, peak-value post-processing per
// seismogram, and a global hazard aggregation.
func CyberShake(sites int) (*dag.Graph, error) {
	if sites < 1 {
		return nil, fmt.Errorf("workload: cybershake needs sites >= 1, got %d", sites)
	}
	b := dag.NewBuilder(fmt.Sprintf("cybershake-%d", sites))
	agg := b.AddTask("hazard", float64(sites))
	for s := 0; s < sites; s++ {
		extract := b.AddTask(fmt.Sprintf("extract%d", s), 4)
		for k := 0; k < 2; k++ {
			seis := b.AddTask(fmt.Sprintf("seis%d.%d", s, k), 10)
			peak := b.AddTask(fmt.Sprintf("peak%d.%d", s, k), 1)
			b.AddEdge(extract, seis, 8)
			b.AddEdge(seis, peak, 2)
			b.AddEdge(peak, agg, 1)
		}
	}
	return b.Build()
}

// LIGO returns the gravitational-wave inspiral-analysis workflow: a
// two-stage template-bank pipeline — groups of matched-filter tasks whose
// results pass a coincidence test, then a second filtering stage and a
// final trigger aggregation.
func LIGO(groups, perGroup int) (*dag.Graph, error) {
	if groups < 1 || perGroup < 1 {
		return nil, fmt.Errorf("workload: ligo needs groups, perGroup >= 1 (got %d, %d)", groups, perGroup)
	}
	b := dag.NewBuilder(fmt.Sprintf("ligo-%dx%d", groups, perGroup))
	final := dag.TaskID(-1)
	var thincas []dag.TaskID
	for g := 0; g < groups; g++ {
		tmplt := b.AddTask(fmt.Sprintf("tmpltBank%d", g), 3)
		thinca1 := b.AddTask(fmt.Sprintf("thinca1.%d", g), 2)
		for i := 0; i < perGroup; i++ {
			insp := b.AddTask(fmt.Sprintf("inspiral1.%d.%d", g, i), 9)
			b.AddEdge(tmplt, insp, 3)
			b.AddEdge(insp, thinca1, 2)
		}
		thinca2 := b.AddTask(fmt.Sprintf("thinca2.%d", g), 2)
		for i := 0; i < perGroup; i++ {
			trig := b.AddTask(fmt.Sprintf("trigBank%d.%d", g, i), 1)
			insp2 := b.AddTask(fmt.Sprintf("inspiral2.%d.%d", g, i), 9)
			b.AddEdge(thinca1, trig, 2)
			b.AddEdge(trig, insp2, 3)
			b.AddEdge(insp2, thinca2, 2)
		}
		thincas = append(thincas, thinca2)
	}
	final = b.AddTask("coherence", float64(groups))
	for _, t := range thincas {
		b.AddEdge(t, final, 2)
	}
	return b.Build()
}
