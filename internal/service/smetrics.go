package service

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"dagsched/internal/metrics"
)

// latencyBucketsMs are the cumulative histogram boundaries of request
// latency, in milliseconds.
var latencyBucketsMs = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// batchSizeBuckets are the cumulative histogram boundaries of batch
// request sizes (items per batch).
var batchSizeBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Cache tiers a scheduling item can be served from: this node's own
// LRU, a replication-delivered copy already sitting in that LRU, the
// owning peer's LRU (via the cache probe), or none of those — a miss
// that goes to the worker pool.
const (
	tierLocal = iota
	tierReplica
	tierPeer
	tierMiss
	numTiers
)

// Cache-probe outcomes. Timeouts are distinct from misses: a fleet
// whose probes time out needs a bigger -probe-timeout, not a warmer
// cache.
const (
	probeHit = iota
	probeMiss
	probeTimeout
	probeError
	numProbeOutcomes
)

// Hinted-handoff queue events.
const (
	handoffQueued = iota
	handoffDelivered
	handoffDropped
	numHandoffEvents
)

// serverMetrics aggregates the observability state of one Server. All
// methods are safe for concurrent use.
type serverMetrics struct {
	mu        sync.Mutex
	start     time.Time
	total     int64
	byStatus  map[int]int64
	latCounts []int64 // per bucket, non-cumulative; rendered cumulative
	latCount  int64
	latSumMs  float64
	panics    int64
	coalesced int64
	shed      int64
	// Streaming endpoint: session/seal counts and event/delta totals.
	streamSessions int64
	streamSealed   int64
	streamEvents   int64
	streamDeltas   int64
	// Cache tier outcomes, indexed by the tier* constants.
	tiers [numTiers]int64
	// Peer cache-probe outcomes, indexed by the probe* constants.
	probes [numProbeOutcomes]int64
	// Replication traffic: outgoing push attempts and incoming stores.
	replPushes    int64
	replPushFails int64
	replStores    int64
	// Hinted-handoff queue events, indexed by the handoff* constants,
	// plus entries queued by anti-entropy sweeps.
	handoffs    [numHandoffEvents]int64
	sweepQueued int64
	// Batch endpoint: request count, total items, size histogram.
	batchCount  int64
	batchItems  int64
	batchSizes  []int64 // per batchSizeBuckets bucket, non-cumulative
	// Per-peer forwarding outcomes.
	forwards     map[string]int64
	forwardFails map[string]int64
	// Per-algorithm makespan and scheduling-runtime accumulators over
	// uncached successful runs.
	algMakespan map[string]*metrics.Accumulator
	algRuntime  map[string]*metrics.Accumulator
	algCount    map[string]int
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		start:        time.Now(),
		byStatus:     make(map[int]int64),
		latCounts:    make([]int64, len(latencyBucketsMs)+1),
		batchSizes:   make([]int64, len(batchSizeBuckets)+1),
		forwards:     make(map[string]int64),
		forwardFails: make(map[string]int64),
		algMakespan:  make(map[string]*metrics.Accumulator),
		algRuntime:   make(map[string]*metrics.Accumulator),
		algCount:     make(map[string]int),
	}
}

// ObserveRequest records one finished HTTP request.
func (m *serverMetrics) ObserveRequest(status int, elapsed time.Duration) {
	ms := float64(elapsed.Microseconds()) / 1000
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total++
	m.byStatus[status]++
	i := sort.SearchFloat64s(latencyBucketsMs, ms)
	m.latCounts[i]++
	m.latCount++
	m.latSumMs += ms
}

// ObservePanic records one recovered handler or worker panic.
func (m *serverMetrics) ObservePanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// ObserveCoalesced records one request that joined an in-flight
// identical computation instead of starting its own.
func (m *serverMetrics) ObserveCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalesced++
}

// ObserveShed records one low-priority item shed at the watermark.
func (m *serverMetrics) ObserveShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

// ObserveStream records one finished streaming session: the events it
// ingested, the deltas it emitted and whether it reached a clean seal.
func (m *serverMetrics) ObserveStream(events, deltas int64, sealed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamSessions++
	if sealed {
		m.streamSealed++
	}
	m.streamEvents += events
	m.streamDeltas += deltas
}

// ObserveTier records where one scheduling item was served from.
func (m *serverMetrics) ObserveTier(tier int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tiers[tier]++
}

// ObserveProbe records one peer cache-probe outcome.
func (m *serverMetrics) ObserveProbe(outcome int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.probes[outcome]++
}

// ObserveReplicaPush records one outgoing replica-push attempt.
func (m *serverMetrics) ObserveReplicaPush(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replPushes++
	if !ok {
		m.replPushFails++
	}
}

// ObserveReplicaStore records one incoming replica entry accepted.
func (m *serverMetrics) ObserveReplicaStore() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replStores++
}

// ObserveHandoff records one hinted-handoff queue event.
func (m *serverMetrics) ObserveHandoff(event int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handoffs[event]++
}

// ObserveSweep records n entries queued by one anti-entropy sweep.
func (m *serverMetrics) ObserveSweep(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepQueued += int64(n)
}

// ObserveBatch records one batch request of the given size.
func (m *serverMetrics) ObserveBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchCount++
	m.batchItems += int64(size)
	i := sort.SearchInts(batchSizeBuckets, size)
	m.batchSizes[i]++
}

// ObserveForward records one forwarding attempt to peer.
func (m *serverMetrics) ObserveForward(peer string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.forwards[peer]++
	} else {
		m.forwardFails[peer]++
	}
}

// ObserveRun records one successful uncached scheduling run.
func (m *serverMetrics) ObserveRun(algorithm string, makespan, runtimeMs float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	am, ok := m.algMakespan[algorithm]
	if !ok {
		am = &metrics.Accumulator{}
		m.algMakespan[algorithm] = am
		m.algRuntime[algorithm] = &metrics.Accumulator{}
	}
	am.Add(makespan)
	m.algRuntime[algorithm].Add(runtimeMs)
	m.algCount[algorithm]++
}

// statsJSON renders an accumulator. Accumulator.Min/Max return 0 on an
// empty stream, indistinguishable from a true 0 sample, so both are
// omitted (nil) until at least one sample arrived.
func statsJSON(a *metrics.Accumulator) StatsJSON {
	s := StatsJSON{N: a.N(), Mean: a.Mean(), StdDev: a.StdDev()}
	if a.N() > 0 {
		mn, mx := a.Min(), a.Max()
		s.Min, s.Max = &mn, &mx
	}
	return s
}

// Snapshot renders the metrics; queue, cache, shard and cluster
// figures are supplied by the server, which owns those structures
// (the cluster block arrives pre-filled with membership state and
// Snapshot adds the replication/handoff counters it owns).
func (m *serverMetrics) Snapshot(queueDepth, queueCap, workers int, cacheHits, cacheMisses int64, cacheSize, cacheCap int, self string, peers []string, cluster ClusterJSON) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out MetricsSnapshot
	out.UptimeSec = time.Since(m.start).Seconds()
	out.Requests.Total = m.total
	out.Requests.Panics = m.panics
	out.Requests.Coalesced = m.coalesced
	out.Requests.Shed = m.shed
	out.Stream.Sessions = m.streamSessions
	out.Stream.Sealed = m.streamSealed
	out.Stream.Events = m.streamEvents
	out.Stream.Deltas = m.streamDeltas
	out.Requests.ByStatus = make(map[string]int64, len(m.byStatus))
	for code, n := range m.byStatus {
		out.Requests.ByStatus[statusLabel(code)] = n
	}
	var cum int64
	for i, le := range latencyBucketsMs {
		cum += m.latCounts[i]
		out.LatencyMs.Buckets = append(out.LatencyMs.Buckets, HistogramBucket{LeMs: le, Count: cum})
	}
	out.LatencyMs.Count = m.latCount
	out.LatencyMs.SumMs = m.latSumMs
	out.Queue.Depth = queueDepth
	out.Queue.Capacity = queueCap
	out.Queue.Workers = workers
	out.Cache.Hits = cacheHits
	out.Cache.Misses = cacheMisses
	if tot := cacheHits + cacheMisses; tot > 0 {
		out.Cache.HitRate = float64(cacheHits) / float64(tot)
	}
	out.Cache.Size = cacheSize
	out.Cache.Capacity = cacheCap
	out.Cache.Tier.Local = m.tiers[tierLocal]
	out.Cache.Tier.Replica = m.tiers[tierReplica]
	out.Cache.Tier.Peer = m.tiers[tierPeer]
	out.Cache.Tier.Miss = m.tiers[tierMiss]
	out.Batch.Count = m.batchCount
	out.Batch.Items = m.batchItems
	cum = 0
	for i, le := range batchSizeBuckets {
		cum += m.batchSizes[i]
		out.Batch.SizeHistogram.Buckets = append(out.Batch.SizeHistogram.Buckets, SizeBucket{Le: le, Count: cum})
	}
	out.Batch.SizeHistogram.Count = m.batchCount
	out.Shard.Self = self
	out.Shard.Peers = peers
	out.Shard.Enabled = len(peers) >= 2
	out.Shard.Forwards = make(map[string]int64, len(m.forwards))
	for p, n := range m.forwards {
		out.Shard.Forwards[p] = n
	}
	out.Shard.ForwardFailures = make(map[string]int64, len(m.forwardFails))
	for p, n := range m.forwardFails {
		out.Shard.ForwardFailures[p] = n
	}
	out.Shard.Probe.Hits = m.probes[probeHit]
	out.Shard.Probe.Misses = m.probes[probeMiss]
	out.Shard.Probe.Timeouts = m.probes[probeTimeout]
	out.Shard.Probe.Errors = m.probes[probeError]
	out.Cluster = cluster
	out.Cluster.Replica.Pushes = m.replPushes
	out.Cluster.Replica.PushFailures = m.replPushFails
	out.Cluster.Replica.Stores = m.replStores
	out.Cluster.Replica.SweepQueued = m.sweepQueued
	out.Cluster.Handoff.Queued = m.handoffs[handoffQueued]
	out.Cluster.Handoff.Delivered = m.handoffs[handoffDelivered]
	out.Cluster.Handoff.Dropped = m.handoffs[handoffDropped]
	out.Algorithms = make(map[string]AlgorithmStats, len(m.algCount))
	for name, n := range m.algCount {
		out.Algorithms[name] = AlgorithmStats{
			Count:    n,
			Makespan: statsJSON(m.algMakespan[name]),
			Runtime:  statsJSON(m.algRuntime[name]),
		}
	}
	return out
}

func statusLabel(code int) string { return strconv.Itoa(code) }
