// Command schedadv runs adversarial instance searches: it hill-climbs
// (or anneals, or evolves) the instance space to find problem instances
// where one scheduling algorithm beats another by as much as possible,
// and can serialize the found instances as stress fixtures.
//
// Usage:
//
//	schedadv -attacker ILS -victim HEFT                # hill-climb one pair
//	schedadv -attacker HEFT -victim CPOP -method ga    # genetic search
//	schedadv -attacker 'LS/u/static/eft/ins/nodup' \
//	         -victim 'LS/u/static/eft/noins/nodup'     # attack a component
//	schedadv -out testdata/adversarial -name heft_noins # save the fixture
//	schedadv -grid                                     # list the component grid
//	schedadv -list                                     # list algorithm names
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dagsched/internal/adversary"
	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/suite"
)

func main() {
	var (
		attacker = flag.String("attacker", "", "algorithm the search makes look good (registry name or LS/... component setting)")
		victim   = flag.String("victim", "", "algorithm the search makes look bad (registry name or LS/... component setting)")
		method   = flag.String("method", "hc", "search method: hc, sa or ga")
		iters    = flag.Int("iters", 400, "fitness-evaluation budget")
		pop      = flag.Int("pop", 24, "population size (ga only)")
		seed     = flag.Int64("seed", 1, "search seed; same seed finds the same instance")
		budget   = flag.Duration("budget", 0, "per-schedule time budget (0 = unbounded, fully deterministic)")
		knobs    = flag.Bool("mutate-knobs", false, "also mutate the CCR and beta knobs")

		n        = flag.Int("n", 30, "base instance task count")
		procs    = flag.Int("procs", 4, "base instance processor count")
		ccr      = flag.Float64("ccr", 2, "base instance communication-to-computation ratio")
		beta     = flag.Float64("beta", 1, "base instance heterogeneity in [0,2)")
		shape    = flag.Float64("shape", 0, "base DAG shape (0 = generator default)")
		outdeg   = flag.Int("outdegree", 0, "base DAG max out-degree (0 = generator default)")
		baseSeed = flag.Int64("base-seed", 22, "base instance draw seed")

		outDir = flag.String("out", "", "directory to save the found instance + manifest entry (empty = don't save)")
		name   = flag.String("name", "", "fixture name (default <attacker>_vs_<victim>_s<seed>)")

		grid = flag.Bool("grid", false, "print the parameterized-scheduler component grid and exit")
		list = flag.Bool("list", false, "print the registry algorithm names and exit")
	)
	flag.Parse()

	if *grid {
		for _, pm := range listsched.Grid() {
			fmt.Println(pm.String())
		}
		return
	}
	if *list {
		for _, nm := range suite.Names() {
			fmt.Println(nm)
		}
		return
	}
	if *attacker == "" || *victim == "" {
		fatal(fmt.Errorf("-attacker and -victim are required (see -list and -grid)"))
	}
	att, err := resolve(*attacker)
	if err != nil {
		fatal(err)
	}
	vic, err := resolve(*victim)
	if err != nil {
		fatal(err)
	}
	base := adversary.Spec{
		N: *n, Procs: *procs, CCR: *ccr, Beta: *beta,
		Shape: *shape, OutDegree: *outdeg, BaseSeed: *baseSeed,
	}
	cfg := adversary.Config{
		Attacker: att, Victim: vic, Method: *method,
		Iters: *iters, Pop: *pop, Seed: *seed,
		Budget: *budget, MutateKnobs: *knobs,
	}
	start := time.Now()
	res, err := adversary.Search(context.Background(), base, cfg)
	if err != nil {
		fatal(err)
	}
	digest, err := adversary.Digest(res.Instance)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("attacker   %s\nvictim     %s\nmethod     %s (seed %d, %d evals, %s)\n",
		att.Name(), vic.Name(), cfg.Method, cfg.Seed, res.Evals, time.Since(start).Round(time.Millisecond))
	fmt.Printf("base ratio  %.4f\nfound ratio %.4f  (gain %.3f)\n", res.BaseRatio, res.Ratio, res.Ratio/res.BaseRatio)
	fmt.Printf("makespans   attacker %.3f / victim %.3f\ninstance    n=%d edges=%d digest %s\n",
		res.AttackerMakespan, res.VictimMakespan, res.Instance.G.Len(), res.Instance.G.NumEdges(), digest[:12])

	if *outDir != "" {
		fname := *name
		if fname == "" {
			fname = fmt.Sprintf("%s_vs_%s_s%d", slug(att.Name()), slug(vic.Name()), cfg.Seed)
		}
		fx, err := adversary.SaveFixture(*outDir, fname, base, cfg, res)
		if err != nil {
			fatal(err)
		}
		m, err := adversary.ReadManifest(*outDir)
		if err != nil {
			if !os.IsNotExist(err) {
				fatal(err)
			}
			m = &adversary.Manifest{Version: 1}
		}
		kept := m.Fixtures[:0]
		for _, f := range m.Fixtures {
			if f.Name != fx.Name {
				kept = append(kept, f)
			}
		}
		m.Fixtures = append(kept, *fx)
		if err := m.Write(*outDir); err != nil {
			fatal(err)
		}
		fmt.Printf("saved       %s/%s (manifest updated)\n", *outDir, fx.File)
	}
}

// resolve looks a name up in the registry, falling back to parsing
// LS/... component settings so the adversary can attack grid points.
func resolve(name string) (algo.Algorithm, error) {
	if strings.HasPrefix(name, "LS/") {
		pm, err := listsched.ParseParam(name)
		if err != nil {
			return nil, err
		}
		return pm, nil
	}
	return suite.ByName(name)
}

// slug makes an algorithm name filesystem-safe.
func slug(name string) string {
	r := strings.NewReplacer("/", "-", " ", "_")
	return strings.ToLower(r.Replace(name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedadv:", err)
	os.Exit(1)
}
