package dag

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReadJSON asserts the graph decoder never panics and that anything
// it accepts is a well-formed DAG that re-serializes losslessly.
func FuzzReadJSON(f *testing.F) {
	// Seed corpus: valid graphs and near-misses.
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1},{"id":1,"weight":2}],"edges":[{"from":0,"to":1,"data":3}]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":-1}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"id":1,"weight":1}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"id":0,"weight":1}],"edges":[{"from":0,"to":0,"data":1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		// Accepted graphs must be coherent.
		if g.Len() == 0 {
			t.Fatal("accepted an empty graph")
		}
		order := g.TopoOrder()
		if len(order) != g.Len() {
			t.Fatal("topological order incomplete")
		}
		for _, task := range g.Tasks() {
			if task.Weight < 0 {
				t.Fatal("accepted negative weight")
			}
		}
		for _, e := range g.Edges() {
			if e.Data < 0 || e.From == e.To {
				t.Fatalf("accepted bad edge %+v", e)
			}
		}
		// Round trip.
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("round trip lost information")
		}
	})
}
