package metrics

import (
	"math"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func topcuogluHEFT(t *testing.T) *sched.Schedule {
	t.Helper()
	in := testfix.Topcuoglu()
	s, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSLR(t *testing.T) {
	s := topcuogluHEFT(t)
	// Makespan 80; min-cost CP of the Topcuoglu graph: the heaviest path
	// with minimum costs. SLR must be > 1 and < 3 here; pin the exact
	// denominator via the instance.
	want := 80 / s.Instance().CPMin()
	if got := SLR(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SLR = %g, want %g", got, want)
	}
	if SLR(s) <= 1 {
		t.Fatalf("SLR = %g, must exceed 1", SLR(s))
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	s := topcuogluHEFT(t)
	want := s.Instance().SeqTime() / 80
	if got := Speedup(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Speedup = %g, want %g", got, want)
	}
	if got := Efficiency(s); math.Abs(got-want/3) > 1e-9 {
		t.Fatalf("Efficiency = %g, want %g", got, want/3)
	}
	if Speedup(s) <= 1 {
		t.Fatalf("Speedup = %g on 3 procs, expected > 1", Speedup(s))
	}
}

func TestEvaluate(t *testing.T) {
	in := testfix.Topcuoglu()
	res, err := Evaluate(listsched.HEFT{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "HEFT" || res.Makespan != 80 || res.Duplicates != 0 {
		t.Fatalf("Result = %+v", res)
	}
	if res.SLR <= 1 || res.Speedup <= 1 || res.Efficiency <= 0 {
		t.Fatalf("derived measures wrong: %+v", res)
	}
	if res.RunTime < 0 {
		t.Fatal("negative runtime")
	}
}

func TestSLRDegenerate(t *testing.T) {
	// Zero-weight single task: CPMin = 0, SLR defined as 1.
	b := dag.NewBuilder("zero")
	b.AddTask("", 0)
	in, err := sched.NewInstance(b.MustBuild(), platform.Homogeneous(1, 0, 1), [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := SLR(s); got != 1 {
		t.Fatalf("degenerate SLR = %g, want 1", got)
	}
	if got := Speedup(s); got != 1 {
		t.Fatalf("degenerate Speedup = %g, want 1", got)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.CI95() != 0 || a.N() != 0 {
		t.Fatal("zero accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got := a.StdDev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %g", got)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Fatal("CI95 must be positive")
	}
}

func TestAccumulatorConstantStream(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(3.3333333333333335)
	}
	if got := a.StdDev(); got != 0 && got > 1e-9 {
		t.Fatalf("StdDev of constant stream = %g", got)
	}
}

func TestWTL(t *testing.T) {
	w := NewWTL("ILS", []string{"HEFT", "CPOP"}, 0)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(w.Record("HEFT", 10, 12)) // win
	check(w.Record("HEFT", 10, 10)) // tie
	check(w.Record("HEFT", 10, 9))  // loss
	check(w.Record("HEFT", 8, 12))  // win
	check(w.Record("CPOP", 10, 15)) // win
	wins, ties, losses, err := w.Counts("HEFT")
	check(err)
	if wins != 2 || ties != 1 || losses != 1 {
		t.Fatalf("HEFT counts = %d/%d/%d", wins, ties, losses)
	}
	winP, tieP, lossP, err := w.Percent("HEFT")
	check(err)
	if winP != 50 || tieP != 25 || lossP != 25 {
		t.Fatalf("HEFT percent = %g/%g/%g", winP, tieP, lossP)
	}
	if err := w.Record("NOPE", 1, 2); err == nil {
		t.Fatal("unknown competitor accepted")
	}
	if _, _, _, err := w.Counts("NOPE"); err == nil {
		t.Fatal("unknown competitor accepted in Counts")
	}
	if got := w.Competitors(); len(got) != 2 || got[0] != "HEFT" {
		t.Fatalf("Competitors = %v", got)
	}
	// No records: percentages are zero, not NaN.
	w2 := NewWTL("X", []string{"Y"}, 0)
	a, b, c, err := w2.Percent("Y")
	check(err)
	if a != 0 || b != 0 || c != 0 {
		t.Fatalf("empty percent = %g/%g/%g", a, b, c)
	}
}
