package dag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the graph in Graphviz DOT format. Node labels carry the
// task name and nominal weight; edge labels carry the data volume.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", dotName(g.name))
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse];\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  %d [label=\"%s\\nw=%.4g\"];\n", t.ID, dotEscape(t.Name), t.Weight)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -> %d [label=\"%.4g\"];\n", e.From, e.To, e.Data)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotName(s string) string {
	if s == "" {
		return "dag"
	}
	return s
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
