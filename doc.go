// Package dagsched is a library for static task scheduling of directed
// acyclic task graphs onto heterogeneous and homogeneous computing
// systems.
//
// It reproduces the system of "Improving Static Task Scheduling in
// Heterogeneous and Homogeneous Computing Systems" (ICPP 2007): an
// improved insertion-based list scheduler (ILS) together with the
// classic baselines it is evaluated against — HEFT, CPOP and DLS for
// heterogeneous systems; MCP, ETF, HLFET and ISH for homogeneous ones;
// the duplication heuristics DSH and BTDH; the clustering scheduler DSC;
// and an exact branch-and-bound reference for small instances.
//
// The root package is a thin facade over the implementation packages: it
// re-exports the task-graph builder, platform and instance constructors,
// the algorithm registry, evaluation metrics, workload generators, an
// event-driven schedule simulator and Gantt-chart rendering. The
// examples/ directory shows complete programs; cmd/ holds the CLI tools;
// the benchmarks in bench_test.go regenerate every experiment table of
// EXPERIMENTS.md.
//
// Quick start:
//
//	b := dagsched.NewGraph("demo")
//	a := b.AddTask("a", 2)
//	c := b.AddTask("b", 3)
//	b.AddEdge(a, c, 1)
//	g, _ := b.Build()
//	in := dagsched.ConsistentInstance(g, dagsched.HomogeneousSystem(2, 0, 1))
//	s, _ := dagsched.ILS().Schedule(in)
//	fmt.Println(s.Makespan())
package dagsched
