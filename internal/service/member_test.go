package service

import (
	"strings"
	"testing"
	"time"
)

// detectorFixture builds a Server whose membership table is seeded
// statically but whose heartbeat loop never starts (startOnce is
// pre-fired), so tests drive the failure detector by hand through an
// injected clock.
func detectorFixture(t *testing.T, peers ...string) (*Server, *membership, *time.Time) {
	t.Helper()
	s := New(Options{})
	m := s.member
	m.startOnce.Do(func() {}) // disarm the heartbeat loop
	now := time.Unix(1_000_000, 0)
	m.nowFn = func() time.Time { return now }
	if err := s.ConfigurePeers(peers[0], peers); err != nil {
		t.Fatalf("ConfigurePeers: %v", err)
	}
	return s, m, &now
}

func memberURLs(n int) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = "http://10.0.0." + string(rune('1'+i)) + ":8080"
	}
	return urls
}

func TestDetectorSuspectThenDead(t *testing.T) {
	urls := memberURLs(3)
	s, m, now := detectorFixture(t, urls...)

	if sh := s.shard.Load(); sh == nil || len(sh.peers) != 3 {
		t.Fatalf("initial shard = %+v, want a 3-peer ring", s.shard.Load())
	}
	alive, suspect, dead, epoch0 := m.counts()
	if alive != 2 || suspect != 0 || dead != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2 alive", alive, suspect, dead)
	}

	// Half a SuspectAfter of silence: still alive, no epoch churn.
	*now = now.Add(m.s.opts.SuspectAfter / 2)
	m.assess(*now)
	if alive, suspect, _, _ = m.counts(); alive != 2 || suspect != 0 {
		t.Fatalf("after %s silence: %d alive %d suspect, want all alive", m.s.opts.SuspectAfter/2, alive, suspect)
	}

	// Past SuspectAfter: suspect, but STILL on the ring — transient
	// stalls must not reshard.
	*now = now.Add(m.s.opts.SuspectAfter)
	m.assess(*now)
	alive, suspect, dead, epoch1 := m.counts()
	if suspect != 2 || alive != 0 || dead != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2 suspect", alive, suspect, dead)
	}
	if epoch1 != epoch0 {
		t.Fatalf("suspect transition bumped epoch %d -> %d; only death/leave reshards", epoch0, epoch1)
	}
	if sh := s.shard.Load(); sh == nil || len(sh.peers) != 3 {
		t.Fatalf("suspect members dropped from ring: %+v", s.shard.Load())
	}

	// Past 2*SuspectAfter: dead, removed from the ring. With only self
	// left the node degrades to standalone (shard off).
	*now = now.Add(m.s.opts.SuspectAfter)
	m.assess(*now)
	alive, suspect, dead, epoch2 := m.counts()
	if dead != 2 || alive != 0 || suspect != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2 dead", alive, suspect, dead)
	}
	if epoch2 == epoch1 {
		t.Fatal("death did not bump the membership epoch")
	}
	if sh := s.shard.Load(); sh != nil {
		t.Fatalf("sole survivor still sharding over %v", sh.peers)
	}

	// A heartbeat from a dead member readopts it and reshards.
	m.observeHeartbeat(urls[1], RingView{})
	if alive, _, dead, _ = m.counts(); alive != 1 || dead != 1 {
		t.Fatalf("counts after rejoin heartbeat = %d alive %d dead, want 1/1", alive, dead)
	}
	if sh := s.shard.Load(); sh == nil || len(sh.peers) != 2 {
		t.Fatalf("rejoin did not rebuild a 2-node ring: %+v", s.shard.Load())
	}
}

func TestDetectorAdoptsViewMembers(t *testing.T) {
	urls := memberURLs(2)
	s, m, _ := detectorFixture(t, urls...)

	// A heartbeat view naming an unknown alive member and an unknown
	// dead one: the alive member is adopted, the dead one is not —
	// death is a local verdict, never gossip.
	view := RingView{Members: []MemberJSON{
		{URL: "http://10.0.9.1:8080", Status: "alive"},
		{URL: "http://10.0.9.2:8080", Status: "dead"},
		{URL: urls[0], Status: "alive"}, // self must never enter the table
	}}
	m.observeHeartbeat(urls[1], view)
	alive, _, _, _ := m.counts()
	if alive != 2 {
		t.Fatalf("alive = %d, want 2 (original peer + adopted member)", alive)
	}
	if m.isAlive("http://10.0.9.2:8080") {
		t.Fatal("adopted a member another node declared dead")
	}
	if sh := s.shard.Load(); sh == nil || len(sh.peers) != 3 {
		t.Fatalf("ring peers = %+v, want 3 after adoption", s.shard.Load())
	}
	v := m.view()
	for _, mem := range v.Members {
		if mem.URL == urls[0] && mem.Status != "alive" {
			t.Fatalf("self rendered as %q in view", mem.Status)
		}
	}
}

func TestAddRemoveMember(t *testing.T) {
	urls := memberURLs(2)
	s, m, _ := detectorFixture(t, urls...)

	if !m.addMember("http://10.0.9.1:8080") {
		t.Fatal("addMember of a new URL reported no change")
	}
	if m.addMember("http://10.0.9.1:8080") {
		t.Fatal("re-adding an alive member reported a change")
	}
	if m.addMember(urls[0]) {
		t.Fatal("adding self reported a change")
	}
	if !m.removeMember("http://10.0.9.1:8080") {
		t.Fatal("removeMember of a known URL reported no change")
	}
	if m.removeMember("http://10.0.9.1:8080") {
		t.Fatal("removing an unknown member reported a change")
	}
	if m.removeMember(urls[0]) {
		t.Fatal("a relayed copy of our own leave must be a no-op")
	}
	if sh := s.shard.Load(); sh == nil || len(sh.peers) != 2 {
		t.Fatalf("ring = %+v, want the original 2 peers", s.shard.Load())
	}
}

func TestNormalizePeerURL(t *testing.T) {
	cases := []struct {
		in   string
		want string // "" means error expected
	}{
		{"http://10.0.0.1:8080", "http://10.0.0.1:8080"},
		{" https://node-3.cluster:9000/ ", "https://node-3.cluster:9000"},
		{"http://h/", "http://h"},
		{"", ""},
		{"10.0.0.1:8080", ""},                     // no scheme
		{"ftp://10.0.0.1", ""},                    // wrong scheme
		{"http://", ""},                           // no host
		{"http://u:p@h:1", ""},                    // userinfo
		{"http://h:1/path", ""},                   // path
		{"http://h:1?x=1", ""},                    // query
		{"http://h:1#frag", ""},                   // fragment
		{"http://" + strings.Repeat("a", 600), ""}, // oversized
	}
	for _, c := range cases {
		got, err := normalizePeerURL(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("normalizePeerURL(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("normalizePeerURL(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestDecodeRingViewRejects(t *testing.T) {
	bad := []string{
		`{"members":[{"url":"http://h:1","status":"zombie"}]}`, // unknown status
		`{"members":[{"url":"h:1","status":"alive"}]}`,         // bad URL
		`{"replication":-1}`,                                   // out of range
		`not json`,
	}
	for _, b := range bad {
		if _, err := decodeRingView([]byte(b)); err == nil {
			t.Errorf("decodeRingView(%q) accepted invalid input", b)
		}
	}
	// Duplicates collapse rather than erroring.
	v, err := decodeRingView([]byte(`{"self":"http://h:1","members":[
		{"url":"http://h:2/","status":"alive"},
		{"url":"http://h:2","status":"suspect"}]}`))
	if err != nil {
		t.Fatalf("decodeRingView: %v", err)
	}
	if len(v.Members) != 1 || v.Members[0].URL != "http://h:2" {
		t.Fatalf("members = %+v, want the one deduplicated URL", v.Members)
	}
}
