package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dagsched"
)

// scaleSizeCap bounds the DAG size each algorithm is timed at, mirroring
// benchSizeCap in the repository's bench_test.go: the insertion-based
// list schedulers scale to 10k tasks, the pair-scanning (ETF, DLS) and
// clustering/contention algorithms are inherently super-quadratic and
// stop at the largest size they finish in reasonable time. The
// duplication family runs its per-processor trials through the
// speculative-transaction layer, so the non-duplicating ILS variants
// reach the full 10k tier and the duplicating schedulers (whose trial
// count still grows with duplicate fan-in) are timed to 1k. Unlisted
// algorithms run at every size.
var scaleSizeCap = map[string]int{
	"ETF":    1000,
	"DLS":    1000,
	"ILS":    1000,
	"ILS-L":  10000,
	"ILS-D":  1000,
	"ILS-R":  10000,
	"DSH":    1000,
	"BTDH":   1000,
	"DSC":    1000,
	"C-HEFT": 1000,
	"C-ILS":  1000,
}

// scaleReport is the machine-readable output of the -scale mode.
type scaleReport struct {
	Suite     string        `json:"suite"`
	GoVersion string        `json:"go_version"`
	GoOSArch  string        `json:"goos_goarch"`
	CPU       string        `json:"cpu"`
	Config    scaleConfig   `json:"config"`
	Results   []scaleResult `json:"results"`
}

// cpuModel reports the hardware the numbers were taken on, so absolute
// timings in committed reports can be compared meaningfully. Falls back
// to a generic GOMAXPROCS note when /proc/cpuinfo is unavailable.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v) + fmt.Sprintf(" (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
				}
			}
		}
	}
	return fmt.Sprintf("unknown (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
}

type scaleConfig struct {
	Sizes         []int   `json:"sizes"`
	Procs         int     `json:"procs"`
	CCR           float64 `json:"ccr"`
	Beta          float64 `json:"beta"`
	LinkSpread    float64 `json:"link_spread,omitempty"`
	StartupSpread float64 `json:"startup_spread,omitempty"`
	Reps          int     `json:"reps"`
	Seed          int64   `json:"seed"`
}

type scaleResult struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Edges     int     `json:"edges"`
	Reps      int     `json:"reps"`
	BestNs    int64   `json:"best_ns"`
	MeanNs    int64   `json:"mean_ns"`
	NsPerTask float64 `json:"ns_per_task"`
	Makespan  float64 `json:"makespan"`
}

// runScale times every registry algorithm on layered random DAGs at the
// given sizes over 8 processors (CCR 1, heterogeneity 1 — the same design
// point BenchmarkAlgorithms uses) and writes the measurements as JSON.
// Best-of-reps is the headline number: wall-clock minima are the standard
// low-noise point estimate for CPU-bound work.
func runScale(outPath string, reps int, seed int64, quick bool, linkSpread, startupSpread float64) error {
	sizes := []int{100, 1000, 10000}
	if quick {
		sizes = []int{100, 1000}
	}
	if reps <= 0 {
		reps = 3
	}
	rep := scaleReport{
		Suite:     "dagsched-scale",
		GoVersion: runtime.Version(),
		GoOSArch:  runtime.GOOS + "/" + runtime.GOARCH,
		CPU:       cpuModel(),
		Config: scaleConfig{Sizes: sizes, Procs: 8, CCR: 1, Beta: 1,
			LinkSpread: linkSpread, StartupSpread: startupSpread, Reps: reps, Seed: seed},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
		if err != nil {
			return err
		}
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1,
			LinkSpread: linkSpread, StartupSpread: startupSpread}, rng)
		if err != nil {
			return err
		}
		for _, a := range dagsched.Algorithms() {
			if cap, ok := scaleSizeCap[a.Name()]; ok && n > cap {
				continue
			}
			res := scaleResult{Algorithm: a.Name(), N: n, Edges: g.NumEdges(), Reps: reps}
			// One untimed warmup rep: the first run pays one-off heap
			// growth and cache warming that would otherwise dominate the
			// mean for sub-millisecond algorithms; the reported numbers
			// are steady-state scheduling cost (as testing.B measures).
			if _, err := a.Schedule(in); err != nil {
				return fmt.Errorf("%s at n=%d: %w", a.Name(), n, err)
			}
			var total time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				s, err := a.Schedule(in)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s at n=%d: %w", a.Name(), n, err)
				}
				if r == 0 {
					res.Makespan = s.Makespan()
				}
				total += elapsed
				if res.BestNs == 0 || elapsed.Nanoseconds() < res.BestNs {
					res.BestNs = elapsed.Nanoseconds()
				}
			}
			res.MeanNs = total.Nanoseconds() / int64(reps)
			res.NsPerTask = float64(res.BestNs) / float64(n)
			rep.Results = append(rep.Results, res)
			fmt.Fprintf(os.Stderr, "scale: %-8s n=%-6d best=%-12s ns/task=%.0f\n",
				res.Algorithm, n, time.Duration(res.BestNs).Round(time.Microsecond), res.NsPerTask)
		}
	}
	sort.SliceStable(rep.Results, func(i, j int) bool {
		if rep.Results[i].N != rep.Results[j].N {
			return rep.Results[i].N < rep.Results[j].N
		}
		return rep.Results[i].Algorithm < rep.Results[j].Algorithm
	})
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}
