package sched

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := randomInstance(t, rng, 25, 4)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || back.P() != in.P() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.N(), back.P(), in.N(), in.P())
	}
	for i := 0; i < in.N(); i++ {
		for p := 0; p < in.P(); p++ {
			if back.Cost(dag.TaskID(i), p) != in.Cost(dag.TaskID(i), p) {
				t.Fatalf("cost changed at %d,%d", i, p)
			}
		}
	}
	for p := 0; p < in.P(); p++ {
		for q := 0; q < in.P(); q++ {
			if got, want := back.Sys.CommCost(p, q, 7), in.Sys.CommCost(p, q, 7); !almostEqual(got, want) {
				t.Fatalf("comm cost changed at %d,%d: %g vs %g", p, q, got, want)
			}
		}
	}
	// Scheduling the round-tripped instance gives the identical result.
	plA := NewPlan(in)
	plB := NewPlan(back)
	for _, v := range in.G.TopoOrder() {
		pa, sa, _ := plA.BestEFT(v, true)
		pb, sb, _ := plB.BestEFT(v, true)
		if pa != pb || sa != sb {
			t.Fatalf("diverged at task %d", v)
		}
		plA.Place(v, pa, sa)
		plB.Place(v, pb, sb)
	}
}

func TestInstanceJSONHeterogeneousLinks(t *testing.T) {
	b := dag.NewBuilder("two")
	x := b.AddTask("", 1)
	y := b.AddTask("", 2)
	b.AddEdge(x, y, 3)
	g := b.MustBuild()
	sys := platform.MustNew(platform.Config{
		Speeds:        []float64{1, 2},
		StartupMatrix: [][]float64{{0, 1.5}, {2.5, 0}},
		InvRateMatrix: [][]float64{{0, 0.5}, {0.25, 0}},
	})
	in := Consistent(g, sys)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Sys.CommCost(0, 1, 4); !almostEqual(got, 1.5+4*0.5) {
		t.Fatalf("link 0->1 = %g", got)
	}
	if got := back.Sys.CommCost(1, 0, 4); !almostEqual(got, 2.5+4*0.25) {
		t.Fatalf("link 1->0 = %g", got)
	}
}

func TestReadInstanceJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"missing graph": `{"system":{"speeds":[1]},"costs":[]}`,
		"bad system":    `{"graph":{"tasks":[{"id":0,"weight":1}],"edges":[]},"system":{"speeds":[]},"costs":[[1]]}`,
		"bad costs":     `{"graph":{"tasks":[{"id":0,"weight":1}],"edges":[]},"system":{"speeds":[1]},"costs":[[-1]]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadInstanceJSON(strings.NewReader(in)); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}
