package sched

import (
	"fmt"
	"math"

	"dagsched/internal/dag"
)

// Suffix re-planning: the streaming engine freezes the prefix of a
// schedule that has (virtually) started executing and re-places only the
// suffix. Plan and Txn share the placement surface, so a caller can
// re-plan speculatively inside a transaction and commit or roll back.

// Placer is the placement surface shared by *Plan and *Txn. Suffix
// re-planning is written against it so the same code runs directly on a
// plan or speculatively inside a transaction.
type Placer interface {
	Instance() *Instance
	Scheduled(i dag.TaskID) bool
	DataReady(i dag.TaskID, p int) float64
	FindSlot(p int, ready, dur float64, insertion bool) float64
	EFTOn(i dag.TaskID, p int, insertion bool) (start, finish float64)
	Place(i dag.TaskID, p int, start float64) Assignment
}

var (
	_ Placer = (*Plan)(nil)
	_ Placer = (*Txn)(nil)
)

// SplitHorizon partitions assignments at a virtual clock: frozen are
// those that started strictly before it (already running — immovable),
// movable the rest. A clock of zero freezes nothing. Frozen sets are
// ancestor-closed under precedence-valid schedules with non-negative
// communication: a predecessor finishes no later than its successor
// starts, so it started strictly earlier too.
func SplitHorizon(as []Assignment, clock float64) (frozen, movable []Assignment) {
	for _, a := range as {
		if a.Start < clock {
			frozen = append(frozen, a)
		} else {
			movable = append(movable, a)
		}
	}
	return frozen, movable
}

// SeedPlan returns a fresh plan with the given assignments re-placed at
// their exact original processors and start times — the frozen prefix a
// suffix re-plan builds on. Primaries are placed before duplicates so a
// duplicated task's first copy stays primary. Intended for the
// contention-free communication model, where placement order does not
// alter link state (resched's repair path makes the same assumption).
func SeedPlan(in *Instance, frozen []Assignment) *Plan {
	pl := NewPlan(in)
	for _, a := range frozen {
		if !a.Dup {
			pl.Place(a.Task, a.Proc, a.Start)
		}
	}
	for _, a := range frozen {
		if a.Dup {
			pl.PlaceDup(a.Task, a.Proc, a.Start)
		}
	}
	return pl
}

// Grow re-binds a live plan to a grown instance so a streaming caller
// can keep placing into it instead of rebuilding: same platform, a graph
// whose existing tasks kept their ids and predecessor arcs, and
// unchanged cost rows for every placed task (appended tasks and arcs
// into unplaced tasks only — the engine's fast path when no placed task
// is affected). New tasks start unscheduled; Done/Finalize account for
// the new total. Only the contention-free model is supported: grown
// instances would need their reservation state replayed.
func (pl *Plan) Grow(in *Instance) error {
	if in.P() != pl.in.P() {
		return fmt.Errorf("sched: Grow changes processor count %d -> %d", pl.in.P(), in.P())
	}
	if in.N() < pl.in.N() {
		return fmt.Errorf("sched: Grow shrinks task count %d -> %d", pl.in.N(), in.N())
	}
	if pl.comm != nil || in.comm != nil {
		return fmt.Errorf("sched: Grow requires the contention-free communication model")
	}
	delta := in.N() - pl.in.N()
	if delta > 0 {
		arena := make([]Assignment, delta)
		for i := 0; i < delta; i++ {
			pl.byTask = append(pl.byTask, arena[i:i:i+1])
		}
	}
	pl.in = in
	// Invalidate any open transaction: it was begun against the old
	// instance and its snapshots no longer describe this plan.
	pl.epoch++
	return nil
}

// EFTFloored is EFTOn with the task's data-ready time floored at the
// clock: a re-planned task cannot start in the frozen past. At clock
// zero it is bit-identical to EFTOn.
func EFTFloored(v Placer, t dag.TaskID, p int, clock float64, insertion bool) (start, finish float64) {
	in := v.Instance()
	ready := v.DataReady(t, p)
	if ready < clock {
		ready = clock
	}
	dur := in.Cost(t, p)
	start = v.FindSlot(p, ready, dur, insertion)
	return start, start + dur
}

// PlaceFloored places t on p at its clock-floored earliest start.
func PlaceFloored(v Placer, t dag.TaskID, p int, clock float64, insertion bool) Assignment {
	start, _ := EFTFloored(v, t, p, clock, insertion)
	return v.Place(t, p, start)
}

// ReplanSuffix re-places tasks in the given order (which must be
// precedence-safe: every predecessor either frozen, already placed, or
// earlier in the order), choosing per task the processor with the
// earliest finish — or earliest start when byStart is set (the EST
// selection rule) — with readiness floored at the clock. It returns the
// latest finish among the placed tasks.
func ReplanSuffix(v Placer, order []dag.TaskID, clock float64, insertion, byStart bool) float64 {
	in := v.Instance()
	maxFinish := 0.0
	for _, t := range order {
		bestP := -1
		bestS, bestF := math.Inf(1), math.Inf(1)
		for p := 0; p < in.P(); p++ {
			s, f := EFTFloored(v, t, p, clock, insertion)
			better := f < bestF
			if byStart {
				better = s < bestS
			}
			if bestP == -1 || better {
				bestP, bestS, bestF = p, s, f
			}
		}
		a := v.Place(t, bestP, bestS)
		if a.Finish > maxFinish {
			maxFinish = a.Finish
		}
	}
	return maxFinish
}
