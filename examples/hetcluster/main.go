// Heterogeneous cluster study: schedule a Gaussian-elimination solver on
// an 8-node cluster with unrelated per-node costs, comparing the full
// heterogeneous algorithm lineup across three communication regimes
// (CCR 0.1, 1, 10) — the motivating workload of the static-scheduling
// literature.
//
//	go run ./examples/hetcluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"dagsched"
)

func main() {
	g, err := dagsched.GaussianEliminationDAG(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%d tasks, %d edges)\n", g.Name(), g.Len(), g.NumEdges())

	for _, ccr := range []float64{0.1, 1, 10} {
		rng := rand.New(rand.NewSource(42))
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{
			Procs: 8, CCR: ccr, Beta: 1.0,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== CCR %.1f ==\n", ccr)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "algorithm\tmakespan\tSLR\tspeedup\tdups")
		for _, a := range dagsched.HeterogeneousLineup() {
			res, err := dagsched.Evaluate(a, in)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%.4g\t%.3f\t%.3f\t%d\n",
				res.Algorithm, res.Makespan, res.SLR, res.Speedup, res.Duplicates)
		}
		tw.Flush()
	}

	// Robustness: replay the ILS schedule under ±25% runtime noise to see
	// how brittle the static decisions are.
	rng := rand.New(rand.NewSource(42))
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
	if err != nil {
		log.Fatal(err)
	}
	s, err := dagsched.ILS().Schedule(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrobustness of the ILS schedule under runtime noise:")
	for _, noise := range []float64{0.1, 0.25, 0.5} {
		var worst float64
		for seed := int64(0); seed < 20; seed++ {
			rep, err := dagsched.Simulate(s, dagsched.SimConfig{Noise: noise, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			if rep.Stretch > worst {
				worst = rep.Stretch
			}
		}
		fmt.Printf("  ±%2.0f%% noise: worst stretch over 20 replays = %.3f\n", noise*100, worst)
	}
}
