package dagsched_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dagsched"
)

func TestQuickstartFlow(t *testing.T) {
	b := dagsched.NewGraph("demo")
	a := b.AddTask("a", 2)
	c := b.AddTask("c", 3)
	d := b.AddTask("d", 1)
	b.AddEdge(a, c, 1)
	b.AddEdge(a, d, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := dagsched.HomogeneousSystem(2, 0, 1)
	in := dagsched.ConsistentInstance(g, sys)
	s, err := dagsched.ILS().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 {
		t.Fatal("zero makespan")
	}
	if slr := dagsched.SLR(s); slr < 1 {
		t.Fatalf("SLR = %g", slr)
	}
	var buf bytes.Buffer
	if err := dagsched.WriteGanttText(&buf, s, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ILS") {
		t.Fatal("gantt missing algorithm name")
	}
}

func TestRegistryThroughFacade(t *testing.T) {
	if len(dagsched.Algorithms()) != 19 {
		t.Fatalf("registry size %d", len(dagsched.Algorithms()))
	}
	names := dagsched.AlgorithmNames()
	if len(names) != 22 {
		t.Fatalf("names size %d", len(names))
	}
	if len(dagsched.SearchLineup()) != 3 {
		t.Fatal("search lineup size")
	}
	a, err := dagsched.AlgorithmByName("HEFT")
	if err != nil || a.Name() != "HEFT" {
		t.Fatalf("lookup: %v", err)
	}
	if len(dagsched.HeterogeneousLineup()) == 0 || len(dagsched.HomogeneousLineup()) == 0 {
		t.Fatal("empty lineups")
	}
}

func TestWorkloadsThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 4, CCR: 1, Beta: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dagsched.Evaluate(dagsched.ILS(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "ILS" || res.SLR < 1 {
		t.Fatalf("Result = %+v", res)
	}
	for _, gen := range []func() (*dagsched.Graph, error){
		func() (*dagsched.Graph, error) { return dagsched.GaussianEliminationDAG(5) },
		func() (*dagsched.Graph, error) { return dagsched.FFTDAG(8) },
		func() (*dagsched.Graph, error) { return dagsched.LaplaceDAG(3) },
		func() (*dagsched.Graph, error) { return dagsched.ForkJoinDAG(3, 2) },
		func() (*dagsched.Graph, error) { return dagsched.PipelineDAG([]int{2, 3}) },
		func() (*dagsched.Graph, error) { return dagsched.MontageDAG(4) },
		func() (*dagsched.Graph, error) { return dagsched.CholeskyDAG(3) },
		func() (*dagsched.Graph, error) { return dagsched.LUDAG(3) },
	} {
		if _, err := gen(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, _ := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: 30}, rng)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 3, CCR: 1, Beta: 1}, rng)
	s, _ := dagsched.ILS().Schedule(in)
	rep, err := dagsched.Simulate(s, dagsched.SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stretch != 1 {
		t.Fatalf("exact replay stretch = %g", rep.Stretch)
	}
}

func TestOptimalThroughFacade(t *testing.T) {
	b := dagsched.NewGraph("tiny")
	x := b.AddTask("x", 1)
	y := b.AddTask("y", 1)
	b.AddEdge(x, y, 1)
	g, _ := b.Build()
	in := dagsched.ConsistentInstance(g, dagsched.HomogeneousSystem(2, 0, 1))
	s, err := dagsched.Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 2 {
		t.Fatalf("optimal = %g, want 2", s.Makespan())
	}
}

func TestExperimentsThroughFacade(t *testing.T) {
	if len(dagsched.Experiments()) != 23 {
		t.Fatalf("suite size %d", len(dagsched.Experiments()))
	}
	e, err := dagsched.ExperimentByID("E1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(dagsched.ExperimentConfig{Quick: true, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dagsched.RenderExperimentMarkdown(&buf, tables[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E1") {
		t.Fatal("markdown missing id")
	}
}

func TestGraphJSONThroughFacade(t *testing.T) {
	b := dagsched.NewGraph("rt")
	x := b.AddTask("x", 1)
	y := b.AddTask("y", 2)
	b.AddEdge(x, y, 3)
	g, _ := b.Build()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dagsched.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.NumEdges() != 1 {
		t.Fatal("round trip failed")
	}
}
