package listsched

import (
	"fmt"
	"math/rand"
	"testing"

	"dagsched/internal/sched"
	"dagsched/internal/workload"
)

// BenchmarkMCPScaling guards MCP's near-linear ready-queue behavior: the
// per-task cost at n=10000 must stay close to the n=1000 figure. The seed
// implementation's O(ready-width) pick scan made it 4x worse per task at
// 10k (15.2µs vs 3.7µs per task); the position-heap ready queue keeps the
// ratio flat. Compare ns/op divided by n across the sub-benchmarks.
func BenchmarkMCPScaling(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := workload.Random(workload.RandomConfig{N: n}, rng)
		if err != nil {
			b.Fatal(err)
		}
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 8, CCR: 1, Beta: 1}, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := MCP{}.Schedule(in)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
	}
}

var benchSink *sched.Schedule
