package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"dagsched/internal/service"
	"dagsched/internal/testfix"
)

// startCluster launches n in-process nodes on ephemeral ports and joins
// them into one consistent-hash ring. Returns the servers and their
// base URLs (ring identities).
func startCluster(t *testing.T, n int, opts service.Options) ([]*service.Server, []string) {
	t.Helper()
	servers := make([]*service.Server, n)
	urls := make([]string, n)
	for i := range servers {
		o := opts
		o.Addr = "127.0.0.1:0"
		servers[i] = service.New(o)
		addr, err := servers[i].Start()
		if err != nil {
			t.Fatalf("node %d Start: %v", i, err)
		}
		urls[i] = "http://" + addr
	}
	for i, s := range servers {
		if err := s.ConfigurePeers(urls[i], urls); err != nil {
			t.Fatalf("node %d ConfigurePeers: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = s.Shutdown(ctx)
			cancel()
		}
	})
	return servers, urls
}

// postSchedule sends one raw /v1/schedule request and decodes the body,
// returning the response headers for shard assertions.
func postSchedule(t *testing.T, base string, req service.ScheduleRequest) (*service.ScheduleResponse, http.Header) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: HTTP %d: %s", base, resp.StatusCode, buf.String())
	}
	var out service.ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &out, resp.Header
}

// scheduleDigest is the part of a response that must be identical no
// matter which ring node answered.
func scheduleDigest(t *testing.T, r *service.ScheduleResponse) string {
	t.Helper()
	data, err := json.Marshal(struct {
		Makespan    float64                  `json:"makespan"`
		SLR         float64                  `json:"slr"`
		Assignments []service.AssignmentJSON `json:"assignments"`
	}{r.Makespan, r.SLR, r.Assignments})
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return string(data)
}

// TestMultiNodeForwarding runs a 3-node ring: every node must agree on
// each key's owner (X-Shard-Owner), route requests it does not own to
// that owner (X-Served-By), and produce byte-identical schedules to a
// standalone single-node server.
func TestMultiNodeForwarding(t *testing.T) {
	_, urls := startCluster(t, 3, service.Options{Workers: 2, QueueDepth: 32})
	_, ref := startServer(t, service.Options{Workers: 2}) // single-node reference

	inst := instanceJSON(t, testfix.Topcuoglu())
	for _, alg := range []string{"HEFT", "CPOP", "DLS", "HCPT", "PETS"} {
		req := service.ScheduleRequest{Algorithm: alg, Instance: inst}
		refResp, err := ref.Schedule(context.Background(), req)
		if err != nil {
			t.Fatalf("reference %s: %v", alg, err)
		}
		want := scheduleDigest(t, refResp)

		var owner string
		for i, base := range urls {
			resp, hdr := postSchedule(t, base, req)
			if got := scheduleDigest(t, resp); got != want {
				t.Errorf("%s via node %d: schedule differs from single-node reference", alg, i)
			}
			o := hdr.Get("X-Shard-Owner")
			if o == "" {
				t.Fatalf("%s via node %d: no X-Shard-Owner header", alg, i)
			}
			if owner == "" {
				owner = o
			} else if o != owner {
				t.Errorf("%s: node %d names owner %q, earlier nodes %q — ring views disagree", alg, i, o, owner)
			}
			// The serving node is the owner — either this node owns the
			// key, or it forwarded there. (A cached local copy can answer
			// later rounds, but each alg's first pass has a cold ring.)
			if sb := hdr.Get("X-Served-By"); sb != owner && i == 0 {
				// First request is computed at the owner via forwarding.
				t.Errorf("%s via node %d: served by %q, want owner %q", alg, i, sb, owner)
			}
		}
	}
}

// TestMultiNodePeerCacheHit pins the middle cache tier: a batch item
// whose key is owned by another node finds that node's cached result
// via the /v1/cache probe instead of recomputing. Replication is
// disabled: a pushed replica would turn the probe into a local hit,
// which is exactly what this test must not conflate (replica.go has
// its own tests).
func TestMultiNodePeerCacheHit(t *testing.T) {
	servers, urls := startCluster(t, 3, service.Options{Workers: 2, QueueDepth: 32, Replication: -1})
	inst := instanceJSON(t, testfix.Topcuoglu())
	req := service.ScheduleRequest{Algorithm: "HEFT", Instance: inst}

	// Compute once through node 0; forwarding caches the result at the
	// key's owner.
	warm, hdr := postSchedule(t, urls[0], req)
	owner := hdr.Get("X-Shard-Owner")
	ownerIdx := -1
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q not among cluster URLs %v", owner, urls)
	}

	// A batch through a node that does NOT own the key: its local LRU is
	// cold (unless it was the entry node that kept a copy), so the item
	// must come back via the owner's cache.
	probeIdx := (ownerIdx + 1) % len(servers)
	if probeIdx == 0 {
		probeIdx = (ownerIdx + 2) % len(servers) // node 0 may hold a local copy from warming
	}
	c := &service.Client{BaseURL: urls[probeIdx]}
	bresp, err := c.ScheduleBatch(context.Background(), service.BatchRequest{Items: []service.ScheduleRequest{req}})
	if err != nil {
		t.Fatalf("batch via node %d: %v", probeIdx, err)
	}
	if bresp.Failed != 0 {
		t.Fatalf("batch item failed: %+v", bresp.Items)
	}
	item := bresp.Items[0].Response
	if !item.Cached {
		t.Errorf("batch item not served from cache (cached=%v)", item.Cached)
	}
	if item.Makespan != warm.Makespan {
		t.Errorf("peer-cache makespan %v != computed %v", item.Makespan, warm.Makespan)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Cache.Tier.Peer < 1 {
		t.Errorf("node %d cache.tier.peer = %d, want >= 1 (batch item must have probed the owner)", probeIdx, snap.Cache.Tier.Peer)
	}
	if !snap.Shard.Enabled || snap.Shard.Self != urls[probeIdx] {
		t.Errorf("shard snapshot = %+v, want enabled with self %q", snap.Shard, urls[probeIdx])
	}
}

// TestMultiNodeFailover kills a key's owner: surviving nodes must keep
// answering that key by computing locally after the forward fails, and
// the failure must surface in their forward metrics. Replication is
// disabled so the forward genuinely fails instead of being served from
// a local replica (the replicated path is cluster_test.go's job).
func TestMultiNodeFailover(t *testing.T) {
	servers, urls := startCluster(t, 3, service.Options{Workers: 2, QueueDepth: 32, Replication: -1})
	inst := instanceJSON(t, testfix.Topcuoglu())

	// Find an algorithm whose key is NOT owned by node 0, so node 0
	// must forward — and survive the owner's death.
	algs := []string{"HEFT", "CPOP", "DLS", "HCPT", "PETS", "MCP", "ISH"}
	var req service.ScheduleRequest
	var owner string
	for _, alg := range algs {
		r := service.ScheduleRequest{Algorithm: alg, Instance: inst}
		_, hdr := postSchedule(t, urls[0], r)
		if o := hdr.Get("X-Shard-Owner"); o != urls[0] {
			req, owner = r, o
			break
		}
	}
	if owner == "" {
		t.Fatalf("all %d probe algorithms hash to node 0; cannot exercise failover", len(algs))
	}
	want, _ := postSchedule(t, urls[0], req)

	// Kill the owner.
	for i, u := range urls {
		if u == owner {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := servers[i].Shutdown(ctx); err != nil {
				t.Fatalf("shutting down owner: %v", err)
			}
			cancel()
		}
	}

	// Entry node 0 holds a local copy from the warm-up round — a fresh
	// algorithm name under the same death is the honest test, so use a
	// node that never saw the request AND does not own it.
	var probe string
	for _, u := range urls {
		if u != owner && u != urls[0] {
			probe = u
		}
	}
	resp, hdr := postSchedule(t, probe, req)
	if scheduleDigest(t, resp) != scheduleDigest(t, want) {
		t.Errorf("failover answer differs from pre-failure schedule")
	}
	if sb := hdr.Get("X-Served-By"); sb != probe {
		t.Errorf("served by %q, want local fallback %q after owner death", sb, probe)
	}

	c := &service.Client{BaseURL: probe}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Shard.ForwardFailures[owner] < 1 {
		t.Errorf("forward_failures[%s] = %d, want >= 1", owner, snap.Shard.ForwardFailures[owner])
	}

	// The multi-node client fails over too: owner-first, then survivors.
	mc := &service.Client{Peers: urls, Retry: &service.RetryPolicy{MaxAttempts: 1}}
	mresp, err := mc.Schedule(context.Background(), req)
	if err != nil {
		t.Fatalf("multi-node client with dead owner: %v", err)
	}
	if scheduleDigest(t, mresp) != scheduleDigest(t, want) {
		t.Errorf("multi-node client answer differs from pre-failure schedule")
	}
}

// TestMultiNodeForwardMetrics asserts the per-peer forward counters
// appear and add up after forwarded traffic.
func TestMultiNodeForwardMetrics(t *testing.T) {
	_, urls := startCluster(t, 3, service.Options{Workers: 2, QueueDepth: 32})
	inst := instanceJSON(t, testfix.Topcuoglu())
	for _, alg := range []string{"HEFT", "CPOP", "DLS", "MCP"} {
		for _, base := range urls {
			postSchedule(t, base, service.ScheduleRequest{Algorithm: alg, Instance: inst})
		}
	}
	var forwards int64
	for _, base := range urls {
		c := &service.Client{BaseURL: base}
		snap, err := c.Metrics(context.Background())
		if err != nil {
			t.Fatalf("Metrics %s: %v", base, err)
		}
		if snap.Shard.Forwards == nil || snap.Shard.ForwardFailures == nil {
			t.Fatalf("node %s: forward maps missing from /metrics", base)
		}
		for peer, n := range snap.Shard.Forwards {
			if peer == base {
				t.Errorf("node %s recorded a forward to itself", base)
			}
			forwards += n
		}
	}
	if forwards == 0 {
		t.Errorf("no forwards recorded across the ring; 4 algorithms x 3 entry nodes must forward at least once")
	}
}
