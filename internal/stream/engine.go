package stream

import (
	"fmt"
	"math"
	"strings"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// DefaultBatchSize is the auto-flush threshold: once this many events
// are buffered, the next task arrival triggers a re-plan (so a task's
// trailing edges always batch with it).
const DefaultBatchSize = 32

// Config configures an Engine.
type Config struct {
	// Algorithm names the list scheduler: a canonical baseline (HEFT,
	// CPOP, HLFET, ETF; empty means HEFT) or a listsched grid point
	// ("LS/u/static/eft/ins/nodup"). Duplicating grid points are
	// rejected — duplicates cannot be re-planned incrementally.
	Algorithm string
	// Sys is the platform. Only the contention-free communication model
	// is supported.
	Sys *platform.System
	// BatchSize is the auto-flush threshold (DefaultBatchSize when 0).
	BatchSize int
	// DirtyFraction bounds the incremental rank repair before it falls
	// back to the full kernel (algo.DefaultDirtyFraction when 0).
	DirtyFraction float64
	// FullRecompute disables the incremental path: every flush runs the
	// full exact re-plan from the frozen prefix. The benchmark baseline.
	FullRecompute bool
	// FinalAssignments asks the sealed delta to carry every placement,
	// not only the changed ones.
	FinalAssignments bool
	// Name names the accumulated graph.
	Name string
}

// Engine consumes an event log and maintains a continuously-updated
// schedule. Tasks and edges buffer until a flush (explicit, batch-size
// or seal), which re-seals the graph, repairs the upward ranks over the
// dirty set, and re-places only the affected suffix — tasks whose
// readiness a new arc or task can change — while the frozen horizon
// (placements started before the virtual clock) is pinned. Sealing runs
// the configured scheduler's exact placement semantics over everything
// unfrozen, so a sealed stream at horizon zero reproduces the static
// scheduler bit for bit.
//
// The engine is deterministic: the same event sequence yields the same
// deltas and the same final schedule. It is not safe for concurrent use;
// the service serializes each stream session onto one worker.
type Engine struct {
	cfg Config
	pm  listsched.Param

	ap *dag.Appendable
	w  [][]float64 // per-task cost rows, arrival order

	clock  float64
	sealed bool

	// Batch state since the last flush.
	pending  int
	newEdges []dag.Edge
	oldN     int

	rt *algo.RankTracker
	in *sched.Instance // instance of the last flush
	pl *sched.Plan     // live plan (every current task placed after a flush)

	assign []sched.Assignment // primary placement mirror, task-indexed
	placed []bool

	seq    int
	events int
}

// ParamFor resolves a streaming algorithm name to its listsched grid
// point: the canonical baselines by name (empty means HEFT) or an
// "LS/..." grid point. Duplicating points are rejected.
func ParamFor(name string) (listsched.Param, error) {
	switch name {
	case "", "HEFT":
		pm := listsched.HEFTParam()
		pm.DisplayName = "HEFT"
		return pm, nil
	case "CPOP":
		pm := listsched.CPOPParam()
		pm.DisplayName = "CPOP"
		return pm, nil
	case "HLFET":
		pm := listsched.HLFETParam()
		pm.DisplayName = "HLFET"
		return pm, nil
	case "ETF":
		pm := listsched.ETFParam()
		pm.DisplayName = "ETF"
		return pm, nil
	}
	if strings.HasPrefix(name, "LS/") {
		pm, err := listsched.ParseParam(name)
		if err != nil {
			return listsched.Param{}, err
		}
		if pm.Duplication {
			return listsched.Param{}, fmt.Errorf("stream: duplicating scheduler %q not supported (duplicates cannot be re-planned incrementally)", name)
		}
		return pm, nil
	}
	return listsched.Param{}, fmt.Errorf("stream: unsupported algorithm %q (HEFT, CPOP, HLFET, ETF or an LS/ grid point)", name)
}

// NewEngine returns an engine for the config.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("stream: config has no platform")
	}
	pm, err := ParamFor(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Name == "" {
		cfg.Name = "stream"
	}
	return &Engine{
		cfg: cfg,
		pm:  pm,
		ap:  dag.NewAppendable(cfg.Name),
		rt:  algo.NewRankTracker(),
	}, nil
}

// Sealed reports whether the stream has ended.
func (e *Engine) Sealed() bool { return e.sealed }

// Clock returns the virtual clock.
func (e *Engine) Clock() float64 { return e.clock }

// Len returns the number of tasks ingested.
func (e *Engine) Len() int { return e.ap.Len() }

// Events returns the number of events applied successfully.
func (e *Engine) Events() int { return e.events }

// Algorithm returns the configured scheduler's display name.
func (e *Engine) Algorithm() string { return e.pm.Name() }

// Schedule finalizes the current plan into a Schedule (nil before the
// first flush).
func (e *Engine) Schedule() *sched.Schedule {
	if e.pl == nil {
		return nil
	}
	return e.pl.Finalize(e.pm.Name())
}

// isFrozen reports whether task v's placement started before the clock.
func (e *Engine) isFrozen(v dag.TaskID) bool {
	return e.placed[v] && e.assign[v].Start < e.clock
}

// costRow derives the per-processor cost row of an addTask event:
// explicit costs verbatim, otherwise weight over processor speed
// (exactly sched.Consistent's rule).
func costRow(ev Event, sys *platform.System) ([]float64, error) {
	p := sys.Len()
	if len(ev.Costs) > 0 {
		if len(ev.Costs) != p {
			return nil, fmt.Errorf("stream: task %d has %d costs for %d processors", ev.ID, len(ev.Costs), p)
		}
		row := make([]float64, p)
		for i, c := range ev.Costs {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("stream: task %d has invalid cost %g", ev.ID, c)
			}
			row[i] = c
		}
		return row, nil
	}
	row := make([]float64, p)
	for i := range row {
		row[i] = ev.Weight / sys.Speed(i)
	}
	return row, nil
}

// Apply consumes one event. A structural event buffers (and may trigger
// an auto-flush); flush and seal events re-plan. The returned delta is
// non-nil exactly when a re-plan ran. Invalid events are rejected with
// an error and leave the engine state untouched — the stream remains
// usable.
func (e *Engine) Apply(ev Event) (*Delta, error) {
	if e.sealed {
		return nil, fmt.Errorf("stream: stream already sealed")
	}
	switch ev.Op {
	case OpConfig:
		return nil, fmt.Errorf("stream: config event after session start")
	case OpAddTask:
		if ev.ID != e.ap.Len() {
			return nil, fmt.Errorf("stream: task id %d out of order (next is %d)", ev.ID, e.ap.Len())
		}
		row, err := costRow(ev, e.cfg.Sys)
		if err != nil {
			return nil, err
		}
		// Auto-flush before ingesting a task, never after: a task's
		// trailing edges then always share its batch, so well-ordered
		// arrival keeps every affected task unplaced (the grow-in-place
		// fast path). Edge-only runs simply accumulate until the next
		// task, flush or seal.
		var d *Delta
		if e.pending >= e.cfg.BatchSize {
			if d, err = e.flush(false); err != nil {
				return nil, err
			}
		}
		if _, err := e.ap.AddTask(ev.Name, ev.Weight); err != nil {
			return nil, err
		}
		e.w = append(e.w, row)
		e.assign = append(e.assign, sched.Assignment{})
		e.placed = append(e.placed, false)
		e.pending++
		e.events++
		return d, nil
	case OpAddEdge:
		from, to := dag.TaskID(ev.From), dag.TaskID(ev.To)
		if ev.To >= 0 && ev.To < e.ap.Len() && e.isFrozen(to) {
			return nil, fmt.Errorf("stream: edge (%d,%d) targets frozen task %d (started %g before clock %g)",
				ev.From, ev.To, ev.To, e.assign[to].Start, e.clock)
		}
		if err := e.ap.AddEdge(from, to, ev.Data); err != nil {
			return nil, err
		}
		e.newEdges = append(e.newEdges, dag.Edge{From: from, To: to, Data: ev.Data})
		e.pending++
		e.events++
	case OpAdvance:
		if math.IsNaN(ev.Clock) || math.IsInf(ev.Clock, 0) || ev.Clock < e.clock {
			return nil, fmt.Errorf("stream: clock %g invalid (must be finite and >= %g)", ev.Clock, e.clock)
		}
		e.clock = ev.Clock
		e.events++
		return nil, nil
	case OpFlush:
		e.events++
		return e.flush(false)
	case OpSeal:
		e.events++
		d, err := e.flush(true)
		if err != nil {
			return nil, err
		}
		e.sealed = true
		return d, nil
	default:
		return nil, fmt.Errorf("stream: unknown op %q", ev.Op)
	}
	return nil, nil
}

// flush re-plans the buffered batch. On seal (and in FullRecompute mode)
// it runs the exact re-plan from the frozen prefix; otherwise it repairs
// incrementally: rank repair over the dirty set, then re-placement of
// the affected suffix only.
func (e *Engine) flush(seal bool) (*Delta, error) {
	n := e.ap.Len()
	if n == 0 {
		if seal {
			return nil, fmt.Errorf("stream: sealing an empty stream")
		}
		return nil, nil
	}
	if e.pending == 0 && !seal && e.pl != nil {
		return nil, nil
	}
	batchEvents := e.pending

	g, err := e.ap.Seal()
	if err != nil {
		return nil, err
	}
	// Grow the previous flush's instance instead of rebuilding: per-task
	// statistics and per-arc mean-communication values are reused
	// bit-identically, so each flush pays only for the batch's delta.
	var in2 *sched.Instance
	if e.in == nil {
		in2, err = sched.NewInstance(g, e.cfg.Sys, e.w)
	} else {
		in2, err = sched.NewInstanceGrown(e.in, g, e.w)
	}
	if err != nil {
		return nil, err
	}

	// Priorities: the upward rank repairs incrementally; the other
	// metrics (static level, CPOP's up+down) re-run their full kernels —
	// they are cheap level sweeps, and exactness at seal requires the
	// full expression anyway.
	var prio []float64
	rankRepaired, fullRanks := 0, false
	if e.pm.Priority == listsched.PrioUpward {
		e.rt.Update(in2, e.oldN, e.newEdges, e.ap.Positions(), e.cfg.DirtyFraction)
		prio = e.rt.Ranks()[:n]
		rankRepaired, fullRanks = e.rt.Repaired, e.rt.Full
	} else {
		prio = e.pm.PriorityVector(in2)
		rankRepaired, fullRanks = n, true
	}

	d := &Delta{
		Seq:          e.seq,
		Clock:        e.clock,
		Events:       batchEvents,
		Tasks:        n,
		Edges:        g.NumEdges(),
		RankRepaired: rankRepaired,
		FullRanks:    fullRanks,
		Sealed:       seal,
	}

	if seal || e.cfg.FullRecompute {
		if err := e.fullReplan(in2, prio, d); err != nil {
			return nil, err
		}
	} else {
		if err := e.incrementalReplan(in2, prio, d); err != nil {
			return nil, err
		}
	}

	// Refresh the mirror and report changed placements.
	changed := d.Placed[:0]
	for v := 0; v < n; v++ {
		a := e.pl.Primary(dag.TaskID(v))
		if !e.placed[v] || e.assign[v] != a {
			changed = append(changed, Placement{Task: v, Proc: a.Proc, Start: a.Start, Finish: a.Finish})
		}
		e.assign[v] = a
		e.placed[v] = true
	}
	d.Placed = changed
	if seal && e.cfg.FinalAssignments {
		all := make([]Placement, n)
		for v := 0; v < n; v++ {
			a := e.assign[v]
			all[v] = Placement{Task: v, Proc: a.Proc, Start: a.Start, Finish: a.Finish}
		}
		d.Placed = all
	}
	d.Frozen = 0
	for v := 0; v < n; v++ {
		if e.isFrozen(dag.TaskID(v)) {
			d.Frozen++
		}
	}
	d.Makespan = e.pl.Makespan()

	e.in = in2
	e.oldN = n
	e.pending = 0
	e.newEdges = e.newEdges[:0]
	e.seq++

	if seal {
		if err := e.Schedule().Validate(); err != nil {
			return nil, fmt.Errorf("stream: sealed schedule invalid: %w", err)
		}
	}
	return d, nil
}

// frozenAssignments collects the immovable prefix.
func (e *Engine) frozenAssignments() []sched.Assignment {
	var frozen []sched.Assignment
	for v := 0; v < len(e.placed); v++ {
		if e.isFrozen(dag.TaskID(v)) {
			frozen = append(frozen, e.assign[v])
		}
	}
	return frozen
}

// fullReplan rebuilds the whole suffix with the exact scheduler
// semantics over a plan seeded with the frozen prefix.
func (e *Engine) fullReplan(in2 *sched.Instance, prio []float64, d *Delta) error {
	frozen := e.frozenAssignments()
	e.pl = sealReplan(e.pm, in2, prio, frozen, e.clock)
	d.Replanned = in2.N() - len(frozen)
	d.FullReplan = true
	return nil
}

// incrementalReplan re-places only the affected suffix: the new tasks,
// the heads of new arcs, and their unfrozen descendants. Placements
// outside the affected set are kept exactly; when none of them is
// disturbed the live plan just grows in place.
func (e *Engine) incrementalReplan(in2 *sched.Instance, prio []float64, d *Delta) error {
	n := in2.N()
	affected := make([]bool, n)
	var queue []dag.TaskID
	mark := func(v dag.TaskID) {
		if !affected[v] && !e.isFrozen(v) {
			affected[v] = true
			queue = append(queue, v)
		}
	}
	for v := e.oldN; v < n; v++ {
		mark(dag.TaskID(v))
	}
	for _, ed := range e.newEdges {
		mark(ed.To)
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, a := range in2.G.Succ(v) {
			mark(a.To)
		}
	}

	anyPlacedAffected := false
	count := 0
	for v := 0; v < n; v++ {
		if affected[v] {
			count++
			if e.placed[v] {
				anyPlacedAffected = true
			}
		}
	}

	switch {
	case e.pl == nil:
		e.pl = sched.NewPlan(in2)
	case !anyPlacedAffected:
		if err := e.pl.Grow(in2); err != nil {
			return err
		}
	default:
		// An already-placed task is affected: rebuild from the frozen
		// prefix plus the kept (unaffected) placements, all exact.
		seed := e.frozenAssignments()
		for v := 0; v < len(e.placed); v++ {
			if e.placed[v] && !affected[v] && !e.isFrozen(dag.TaskID(v)) {
				seed = append(seed, e.assign[v])
			}
		}
		e.pl = sched.SeedPlan(in2, seed)
		d.FullReplan = true
	}

	var cpOn []bool
	cpProc := 0
	if e.pm.Select == listsched.SelectCPPin {
		cpOn, cpProc = listsched.CPPin(in2)
	}
	order := orderAffected(in2.G, prio, e.ap.Positions(), affected, count)
	for _, t := range order {
		placeMovable(e.pl, e.pm, cpOn, cpProc, t, e.clock)
	}
	d.Replanned = count
	return nil
}

// orderAffected returns the affected tasks in a precedence-safe greedy
// order: repeatedly the highest-priority task whose affected
// predecessors were all emitted (predecessors outside the set are placed
// already), ties toward the earlier topological position. The same
// greedy rule as listsched's static order, restricted to the set.
func orderAffected(g *dag.Graph, prio []float64, pos []int, affected []bool, count int) []dag.TaskID {
	pending := make(map[dag.TaskID]int, count)
	var ready []dag.TaskID
	for v := 0; v < g.Len(); v++ {
		if !affected[v] {
			continue
		}
		c := 0
		for _, p := range g.Pred(dag.TaskID(v)) {
			if affected[p.To] {
				c++
			}
		}
		pending[dag.TaskID(v)] = c
		if c == 0 {
			ready = append(ready, dag.TaskID(v))
		}
	}
	order := make([]dag.TaskID, 0, count)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			if prio[a] > prio[b] || (prio[a] == prio[b] && pos[a] < pos[b]) {
				best = i
			}
		}
		pick := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, pick)
		for _, a := range g.Succ(pick) {
			if affected[a.To] {
				pending[a.To]--
				if pending[a.To] == 0 {
					ready = append(ready, a.To)
				}
			}
		}
	}
	return order
}

// Replay applies a whole event log to a fresh engine, returning every
// delta. Convenience for tests, schedrun -stream and the benchmark.
func Replay(cfg Config, evs []Event) ([]Delta, *Engine, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	var ds []Delta
	for i, ev := range evs {
		d, err := eng.Apply(ev)
		if err != nil {
			return ds, eng, fmt.Errorf("event %d: %w", i, err)
		}
		if d != nil {
			ds = append(ds, *d)
		}
	}
	return ds, eng, nil
}

// StaticInstance reconstructs the final instance an event log describes,
// through the static Builder path — the independent oracle the
// equivalence tests and the benchmark guard compare against.
func StaticInstance(evs []Event, sys *platform.System, name string) (*sched.Instance, error) {
	if name == "" {
		name = "stream"
	}
	b := dag.NewBuilder(name)
	var w [][]float64
	for _, ev := range evs {
		switch ev.Op {
		case OpAddTask:
			if ev.ID != b.Len() {
				return nil, fmt.Errorf("stream: task id %d out of order (next is %d)", ev.ID, b.Len())
			}
			row, err := costRow(ev, sys)
			if err != nil {
				return nil, err
			}
			b.AddTask(ev.Name, ev.Weight)
			w = append(w, row)
		case OpAddEdge:
			b.AddEdge(dag.TaskID(ev.From), dag.TaskID(ev.To), ev.Data)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sched.NewInstance(g, sys, w)
}
