package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/search"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/platform"
	"dagsched/internal/sim"
)

// E14 — extended heterogeneous lineup: ILS against the wider 2000s field
// (HCPT, PETS, LMT) in addition to HEFT, across CCR.
func E14() Experiment {
	return Experiment{ID: "E14", Title: "Extended lineup: ILS vs HCPT/PETS/LMT (SLR vs CCR)", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			core.New(),
			listsched.HEFT{},
			listsched.HCPT{},
			listsched.PETS{},
			listsched.LMT{},
		}
		reps := cfg.reps(25)
		ccrs := []float64{0.1, 1, 5, 10}
		if cfg.Quick {
			ccrs = []float64{0.1, 5}
		}
		t := &Table{ID: "E14", Title: "Extended lineup: average SLR vs CCR (n=60, P=8, β=1)",
			Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1401, randGen(randParams{ccr: c}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = fmt.Sprintf("Mean SLR over %d random DAGs per point.", reps)
		return []*Table{t}, nil
	}}
}

// E15 — guided random search vs list scheduling: solution quality and
// scheduling cost of GA/SA/HC against HEFT and ILS.
func E15() Experiment {
	return Experiment{ID: "E15", Title: "Search-based vs list scheduling (quality and cost)", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			listsched.HEFT{},
			core.New(),
			search.HillClimb{Iters: 500},
			search.Anneal{Iters: 800},
			search.Genetic{Pop: 16, Gens: 25},
		}
		reps := cfg.reps(15)
		sizes := []int{20, 40}
		if cfg.Quick {
			sizes = []int{20}
		}
		t1 := &Table{ID: "E15a", Title: "Search vs list: mean SLR (P=8, CCR=1, β=1)",
			Columns: append([]string{"n"}, names(algs)...)}
		t2 := &Table{ID: "E15b", Title: "Search vs list: mean scheduling time (ms)",
			Columns: append([]string{"n"}, names(algs)...)}
		rng := rand.New(rand.NewSource(cfg.Seed + 1500))
		for _, n := range sizes {
			slrs := make([]*metrics.Accumulator, len(algs))
			times := make([]*metrics.Accumulator, len(algs))
			for i := range slrs {
				slrs[i] = &metrics.Accumulator{}
				times[i] = &metrics.Accumulator{}
			}
			for r := 0; r < reps; r++ {
				in, err := randGen(randParams{n: n})(rng)
				if err != nil {
					return nil, err
				}
				for i, a := range algs {
					start := time.Now()
					res, err := metrics.Evaluate(a, in)
					if err != nil {
						return nil, err
					}
					slrs[i].Add(res.SLR)
					times[i].Add(float64(time.Since(start).Microseconds()) / 1000)
				}
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%d", n), slrs))
			t2.Rows = append(t2.Rows, fmtRow(fmt.Sprintf("%d", n), times))
		}
		t1.Notes = "All searches are seeded from HEFT, so they can only improve on it; the question is by how much and at what cost (see E15b)."
		return []*Table{t1, t2}, nil
	}}
}

// E16 — network contention: replayed stretch under the one-port model.
// Each contention-free algorithm is paired with itself wrapped through
// the shared contention layer (algo.CommAware, the same path C-HEFT
// takes): the unwrapped schedules assume free links and degrade when
// transfers serialize, the wrapped ones pay their port waits up front
// and replay almost unchanged.
func E16() Experiment {
	return Experiment{ID: "E16", Title: "One-port contention: replayed stretch", Run: func(cfg Config) ([]*Table, error) {
		var algs []algo.Algorithm
		for _, a := range []algo.Algorithm{listsched.HEFT{}, core.New(), dup.BTDH{}} {
			algs = append(algs, a, algo.CommAware{Inner: a})
		}
		reps := cfg.reps(25)
		ccrs := []float64{0.1, 1, 5}
		if cfg.Quick {
			ccrs = []float64{1}
		}
		t := &Table{ID: "E16", Title: "Mean one-port contention stretch vs CCR (n=60, P=8, β=1)",
			Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			c := c
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+1600+int64(i), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{ccr: c})(rng)
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(algs))
				for k, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					r, err := sim.Run(s, sim.Config{Contention: true})
					if err != nil {
						return nil, err
					}
					row[k] = r.Stretch
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, len(algs))
			for k := range accs {
				accs[k] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for k, v := range row {
					accs[k].Add(v)
				}
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = "Stretch = one-port replayed makespan / analytic makespan (1.0 = schedule unaffected by port serialization). C-* columns are the same algorithms wrapped contention-aware through the shared communication-model layer."
		return []*Table{t}, nil
	}}
}

// E20 — communication-model sweep: the same instances scheduled by
// contention-free and contention-aware algorithms, each schedule
// replayed under every registered communication model. Reading down a
// column shows how one scheduler's output degrades as the network gets
// more contended; reading across a row shows which scheduler to pick
// for a given network.
func E20() Experiment {
	return Experiment{ID: "E20", Title: "Communication-model sweep: replayed makespan", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			listsched.HEFT{},
			algo.CommAware{Inner: listsched.HEFT{}, DisplayName: "C-HEFT"},
			core.New(),
			algo.CommAware{Inner: core.New(), DisplayName: "C-ILS"},
		}
		reps := cfg.reps(20)
		kinds := platform.ModelKinds()
		t := &Table{ID: "E20", Title: "Mean replayed makespan by communication model (n=60, P=8, CCR=5, β=1)",
			Columns: append([]string{"model"}, names(algs)...)}
		for i, kind := range kinds {
			kind := kind
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+2000+int64(i), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{ccr: 5})(rng)
				if err != nil {
					return nil, err
				}
				model, err := platform.ModelByKind(kind, in.Sys)
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(algs))
				for k, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					r, err := sim.Run(s, sim.Config{Model: model})
					if err != nil {
						return nil, err
					}
					row[k] = r.Makespan
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, len(algs))
			for k := range accs {
				accs[k] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for k, v := range row {
					accs[k].Add(v)
				}
			}
			t.Rows = append(t.Rows, fmtRow(kind, accs))
		}
		t.Notes = "Each row replays the four columns' schedules under one communication model; C-* schedule under one-port via the shared layer. The instances are identical across rows and columns."
		return []*Table{t}, nil
	}}
}
