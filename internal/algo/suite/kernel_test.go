package suite

import (
	"testing"

	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

// forceKernelFastPaths flips the scheduling substrate onto its scaled
// code paths — concurrent level-set rank kernels and the bound-pruned
// processor-selection heap — for one test, restoring the defaults after.
func forceKernelFastPaths(t *testing.T) {
	t.Helper()
	oldRanks, oldTree := sched.ForceParallelRanks, sched.ForceTreeSelect
	sched.ForceParallelRanks, sched.ForceTreeSelect = true, true
	t.Cleanup(func() {
		sched.ForceParallelRanks, sched.ForceTreeSelect = oldRanks, oldTree
	})
}

// TestKernelFastPathsBitIdentical is the end-to-end golden equivalence
// proof for the SoA kernel work: every suite algorithm must produce a
// bit-identical schedule (same digest — same copies at the same float64
// times) whether the substrate runs the sequential rank sweeps and linear
// BestEFT scan or the parallel level-set kernels and the selection heap.
// Under -race with GOMAXPROCS > 1 it also shakes the sharded rank loops
// for data races through every algorithm's real call pattern.
func TestKernelFastPathsBitIdentical(t *testing.T) {
	type run struct {
		name   string
		digest string
	}
	baseline := make(map[string][]run)
	for _, a := range All() {
		for _, ni := range testfix.GoldenInstances() {
			s, err := a.Schedule(ni.In)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), ni.Name, err)
			}
			baseline[a.Name()] = append(baseline[a.Name()],
				run{ni.Name, testfix.ScheduleDigest(s)})
		}
	}

	forceKernelFastPaths(t)
	for _, a := range All() {
		for k, ni := range testfix.GoldenInstances() {
			s, err := a.Schedule(ni.In)
			if err != nil {
				t.Fatalf("%s on %s (fast paths): %v", a.Name(), ni.Name, err)
			}
			want := baseline[a.Name()][k]
			if got := testfix.ScheduleDigest(s); got != want.digest {
				t.Errorf("%s on %s: fast-path schedule diverges from sequential baseline\n got %s\nwant %s",
					a.Name(), ni.Name, got, want.digest)
			}
		}
	}
}

// TestKernelFastPathsBattery repeats the equivalence over a random
// battery for the insertion-scheduler core (HEFT-class plus the
// transactional ILS), where the selection heap and the rank kernels are
// on the hot path of every placement.
func TestKernelFastPathsBattery(t *testing.T) {
	algos := All()
	type key struct {
		alg   string
		trial int
	}
	baseline := make(map[key]string)
	testfix.Battery(testfix.BatteryConfig{Trials: 8, Seed: 9300}, func(trial int, in *sched.Instance) {
		for _, a := range algos {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s trial %d: %v", a.Name(), trial, err)
			}
			baseline[key{a.Name(), trial}] = testfix.ScheduleDigest(s)
		}
	})
	forceKernelFastPaths(t)
	testfix.Battery(testfix.BatteryConfig{Trials: 8, Seed: 9300}, func(trial int, in *sched.Instance) {
		for _, a := range algos {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s trial %d (fast paths): %v", a.Name(), trial, err)
			}
			if got, want := testfix.ScheduleDigest(s), baseline[key{a.Name(), trial}]; got != want {
				t.Errorf("%s trial %d: fast-path digest %s != sequential %s", a.Name(), trial, got, want)
			}
		}
	})
}
