package timeline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

const eps = 1e-9

// interval mirrors one placed assignment for the reference model.
type interval struct{ start, finish float64 }

// referenceFit is the linear slot scan the index must reproduce bit for
// bit: the acceptance test and arithmetic are copied from the original
// sched.Plan.findSlotUnbounded.
func referenceFit(items []interval, ready, dur float64) float64 {
	prevFinish := 0.0
	for _, a := range items {
		start := math.Max(ready, prevFinish)
		if start+dur <= a.start+eps {
			return start
		}
		if a.finish > prevFinish {
			prevFinish = a.finish
		}
	}
	return math.Max(ready, prevFinish)
}

// insertItem mirrors sched.Plan.insert ordering (stable by start).
func insertItem(items []interval, iv interval) []interval {
	k := sort.Search(len(items), func(i int) bool { return items[i].start > iv.start })
	items = append(items, interval{})
	copy(items[k+1:], items[k:])
	items[k] = iv
	return items
}

// TestEarliestFitMatchesReference drives random schedules through the
// index and the linear reference simultaneously and requires identical
// earliest-fit answers at every step, including exact-fit gaps,
// zero-duration tasks and queries at gap boundaries.
func TestEarliestFitMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gi := New(eps)
		var items []interval
		for step := 0; step < 400; step++ {
			var ready float64
			switch rng.Intn(4) {
			case 0:
				ready = 0
			case 1: // at an existing boundary
				if len(items) > 0 {
					it := items[rng.Intn(len(items))]
					if rng.Intn(2) == 0 {
						ready = it.start
					} else {
						ready = it.finish
					}
				}
			default:
				ready = rng.Float64() * 50
			}
			var dur float64
			switch rng.Intn(5) {
			case 0:
				dur = 0
			case 1: // exact length of a random current gap
				if gaps := gi.Gaps(); len(gaps) > 0 {
					g := gaps[rng.Intn(len(gaps))]
					if l := g.End - g.Start; l > 0 && !math.IsInf(l, 0) {
						dur = l
					}
				}
			default:
				dur = rng.Float64() * 8
			}

			want := referenceFit(items, ready, dur)
			got, ok := gi.EarliestFit(ready, dur)
			if !ok {
				t.Fatalf("seed %d step %d: index degraded unexpectedly", seed, step)
			}
			if got != want {
				t.Fatalf("seed %d step %d: EarliestFit(ready=%v, dur=%v) = %v, reference %v (items %v)",
					seed, step, ready, dur, got, want, items)
			}

			// Occasionally commit the placement, as a scheduler would.
			if rng.Intn(3) != 0 {
				if !gi.Occupy(want, want+dur) {
					t.Fatalf("seed %d step %d: Occupy of a reported fit failed (start %v dur %v)", seed, step, want, dur)
				}
				items = insertItem(items, interval{start: want, finish: want + dur})
			}
		}
	}
}

// TestOccupyOutsideGapDegrades asserts the overlap fallback: occupying a
// slot straddling an existing assignment turns the index off rather than
// corrupting answers.
func TestOccupyOutsideGapDegrades(t *testing.T) {
	gi := New(eps)
	if !gi.Occupy(10, 20) {
		t.Fatal("occupying the tail gap must succeed")
	}
	if gi.Occupy(15, 25) {
		t.Fatal("occupying across an assignment must fail")
	}
	if gi.OK() {
		t.Fatal("index must report degraded after a straddling occupy")
	}
	if _, ok := gi.EarliestFit(0, 1); ok {
		t.Fatal("degraded index must refuse queries")
	}
}

// TestCloneIndependence asserts a clone evolves independently of its
// parent.
func TestCloneIndependence(t *testing.T) {
	gi := New(eps)
	gi.Occupy(5, 10)
	cp := gi.Clone()
	cp.Occupy(0, 5)

	got, _ := gi.EarliestFit(0, 5)
	if got != 0 {
		t.Fatalf("parent index affected by clone: EarliestFit = %v, want 0", got)
	}
	got, _ = cp.EarliestFit(0, 5)
	if got != 10 {
		t.Fatalf("clone: EarliestFit = %v, want 10", got)
	}
}

// TestGapCount sanity-checks the gap bookkeeping: k assignments inside
// the timeline produce exactly k+1 gaps (degenerate remainders included).
func TestGapCount(t *testing.T) {
	gi := New(eps)
	rng := rand.New(rand.NewSource(7))
	var items []interval
	for i := 0; i < 200; i++ {
		ready := rng.Float64() * 100
		dur := rng.Float64() * 5
		s, ok := gi.EarliestFit(ready, dur)
		if !ok {
			t.Fatal("index degraded")
		}
		if !gi.Occupy(s, s+dur) {
			t.Fatal("occupy failed")
		}
		items = insertItem(items, interval{start: s, finish: s + dur})
	}
	if got, want := gi.Len(), len(items)+1; got != want {
		t.Fatalf("gap count %d, want %d", got, want)
	}
	// The gaps must tile the complement: keys non-decreasing, tail open.
	gaps := gi.Gaps()
	for i := 1; i < len(gaps); i++ {
		if gaps[i].Start < gaps[i-1].Start {
			t.Fatalf("gap starts out of order at %d: %v", i, gaps)
		}
	}
	if !math.IsInf(gaps[len(gaps)-1].End, 1) {
		t.Fatal("missing unbounded tail gap")
	}
}

func BenchmarkEarliestFit(b *testing.B) {
	gi := New(eps)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s, _ := gi.EarliestFit(rng.Float64()*1e6, rng.Float64()*10)
		gi.Occupy(s, s+rng.Float64()*10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gi.EarliestFit(rng.Float64()*1e6, 5)
	}
}
