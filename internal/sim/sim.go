// Package sim replays a static schedule as a discrete-event execution,
// independently re-deriving every start time from the schedule's
// placement decisions. With zero noise the replayed makespan equals the
// analytic makespan exactly (a strong cross-check of the scheduling
// machinery); with noise it measures the robustness of a static schedule
// against runtime execution-time variation.
//
// Replay semantics: task-copy order per processor and the data routing
// between copies are fixed at schedule time, as in a real static runtime.
// Each copy starts as soon as its processor is free and the data from its
// designated source copies has arrived; actual execution times are the
// estimates perturbed multiplicatively by the noise factor.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// Config controls a replay.
type Config struct {
	// Noise is the maximum relative execution-time perturbation: every
	// copy's actual duration is estimate × (1 + Noise×u) with u uniform in
	// [−1, 1). Zero replays estimates exactly. Must lie in [0, 1).
	Noise float64
	// Seed drives the perturbation; runs are deterministic per seed.
	Seed int64
	// Contention switches communication to the one-port model: every
	// processor has a single send port and a single receive port, and
	// inter-processor transfers serialize on both. A schedule computed
	// under the contention-free assumption degrades here; the contended
	// replay measures how optimistic its makespan was. Transfers are
	// issued in the consumers' scheduled-start order, each claiming the
	// earliest feasible window on its route.
	Contention bool
	// Model replays under an arbitrary communication model (overriding
	// Contention): transfer durations come from the model's idle costs
	// and transfers serialize on whatever resources the model contends.
	// Nil with Contention unset replays contention-free using the
	// schedule instance's idle costs.
	Model platform.CommModel
}

// Report is the outcome of one replay.
type Report struct {
	// Makespan is the latest actual finish time of any primary copy.
	Makespan float64
	// Start and Finish give actual times of every task's primary copy.
	Start, Finish []float64
	// BusyTime is the total executing time per processor (including
	// duplicates); Utilization divides it by the makespan.
	BusyTime    []float64
	Utilization []float64
	// Stretch is the replayed makespan divided by the analytic one.
	Stretch float64
	// Transfers counts inter-processor data transfers; SendTime is the
	// total network time attributed to each source processor's transfers
	// (only meaningful under a contended model, where they serialize).
	Transfers int
	SendTime  []float64
	// Model is the kind of communication model the replay ran under.
	Model string
}

// Run replays the schedule under cfg.
func Run(s *sched.Schedule, cfg Config) (Report, error) {
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return Report{}, fmt.Errorf("sim: noise %g out of [0,1)", cfg.Noise)
	}
	in := s.Instance()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Collect all copies in global scheduled-start order. Every copy a
	// consumer reads from finishes (in the schedule) before the consumer
	// starts; zero-duration copies can share the consumer's start instant,
	// so equal starts break ties by topological order (sources first),
	// then by processor and timeline slot for determinism.
	type copyRef struct {
		a        sched.Assignment
		procSlot int // index within its processor's timeline
	}
	var copies []copyRef
	byTask := make([][]copyRef, in.N())
	for p := 0; p < in.P(); p++ {
		for k, a := range s.OnProc(p) {
			c := copyRef{a: a, procSlot: k}
			copies = append(copies, c)
			byTask[a.Task] = append(byTask[a.Task], c)
		}
	}
	topo := make([]int, in.N())
	for i, t := range in.G.TopoOrder() {
		topo[t] = i
	}
	sort.Slice(copies, func(x, y int) bool {
		cx, cy := copies[x], copies[y]
		if cx.a.Start != cy.a.Start {
			return cx.a.Start < cy.a.Start
		}
		if topo[cx.a.Task] != topo[cy.a.Task] {
			return topo[cx.a.Task] < topo[cy.a.Task]
		}
		if cx.a.Proc != cy.a.Proc {
			return cx.a.Proc < cy.a.Proc
		}
		return cx.procSlot < cy.procSlot
	})
	// Perturbed durations, drawn in deterministic copy order.
	durs := make([]float64, len(copies))
	for i, c := range copies {
		d := c.a.Duration()
		if cfg.Noise > 0 {
			d *= 1 + cfg.Noise*(2*rng.Float64()-1)
		}
		durs[i] = d
	}
	// Routing fixed at schedule time: for consumer copy c and predecessor
	// task m, the source is the copy of m with the earliest *scheduled*
	// arrival at c's processor (under the instance's own idle costs — the
	// view the scheduler routed with).
	route := func(c copyRef, m dag.TaskID, data float64) copyRef {
		best := byTask[m][0]
		bestT := math.Inf(1)
		for _, d := range byTask[m] {
			if t := d.a.Finish + in.CommCost(d.a.Proc, c.a.Proc, data); t < bestT {
				bestT, best = t, d
			}
		}
		return best
	}
	// The replay's communication model: cfg.Model, else one-port when
	// Contention is set, else the contention-free idle-cost replay.
	model := cfg.Model
	if model == nil && cfg.Contention {
		model, _ = platform.ModelByKind(platform.KindOnePort, in.Sys)
	}
	var network platform.CommState
	if model != nil {
		network = model.NewState()
	}
	commCost := in.CommCost
	modelKind := platform.KindContentionFree
	if model != nil {
		commCost = model.Cost
		modelKind = model.Kind()
	}
	// Actual finish per copy, keyed by (processor, timeline slot): the one
	// identity that stays unique when copies of the same task share a
	// start instant (zero-duration tasks).
	type key struct {
		proc     int
		procSlot int
	}
	actualFinish := make(map[key]float64, len(copies))
	procFree := make([]float64, in.P())
	busy := make([]float64, in.P())
	sendBusy := make([]float64, in.P())
	rep := Report{
		Start:  make([]float64, in.N()),
		Finish: make([]float64, in.N()),
		Model:  modelKind,
	}
	for i, c := range copies {
		ready := 0.0
		for _, pe := range in.G.Pred(c.a.Task) {
			src := route(c, pe.To, pe.Data)
			f, ok := actualFinish[key{src.a.Proc, src.procSlot}]
			if !ok {
				return Report{}, fmt.Errorf("sim: copy of task %d consumed before its source (task %d on P%d) ran", c.a.Task, src.a.Task, src.a.Proc)
			}
			var arrival float64
			if src.a.Proc == c.a.Proc {
				arrival = f
			} else {
				dur := commCost(src.a.Proc, c.a.Proc, pe.Data)
				if network != nil && dur > 0 {
					xferStart := network.TransferStart(src.a.Proc, c.a.Proc, f, dur)
					network.Reserve(src.a.Proc, c.a.Proc, xferStart, dur)
					arrival = xferStart + dur
					sendBusy[src.a.Proc] += dur
				} else {
					arrival = f + dur
				}
				rep.Transfers++
			}
			if arrival > ready {
				ready = arrival
			}
		}
		start := math.Max(ready, procFree[c.a.Proc])
		finish := start + durs[i]
		procFree[c.a.Proc] = finish
		busy[c.a.Proc] += durs[i]
		actualFinish[key{c.a.Proc, c.procSlot}] = finish
		if !c.a.Dup {
			rep.Start[c.a.Task] = start
			rep.Finish[c.a.Task] = finish
			if finish > rep.Makespan {
				rep.Makespan = finish
			}
		}
	}
	rep.BusyTime = busy
	rep.SendTime = sendBusy
	rep.Utilization = make([]float64, in.P())
	for p := range busy {
		if rep.Makespan > 0 {
			rep.Utilization[p] = busy[p] / rep.Makespan
		}
	}
	if s.Makespan() > 0 {
		rep.Stretch = rep.Makespan / s.Makespan()
	} else {
		rep.Stretch = 1
	}
	return rep, nil
}
