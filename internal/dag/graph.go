// Package dag provides the directed-acyclic-graph substrate used by every
// scheduling algorithm in this repository: the task-graph model, builders,
// traversals, critical-path analysis and serialization.
//
// A Graph is immutable after Build; algorithms never mutate it. Task and
// edge weights stored here are *nominal* costs: the per-processor execution
// cost of a task on a concrete platform is derived in package sched by
// combining the nominal weight with the platform's heterogeneity model.
package dag

import (
	"fmt"
	"sort"
	"sync"
)

// TaskID identifies a task within a single Graph. IDs are dense: a graph
// with n tasks uses IDs 0..n-1.
type TaskID int

// Task is a node of the task graph. Weight is the nominal computation cost
// (e.g. the cost on a reference processor of speed 1.0).
type Task struct {
	ID     TaskID
	Name   string
	Weight float64
}

// Adj is one adjacency entry: the neighbouring task and the data volume
// carried by the connecting edge.
type Adj struct {
	To   TaskID
	Data float64
}

// Edge is a dependency i -> j transferring Data units of communication.
type Edge struct {
	From TaskID
	To   TaskID
	Data float64
}

// Graph is an immutable weighted DAG.
//
// Adjacency is stored in CSR form: one flat arc array per direction plus
// n+1 offsets, so Succ/Pred return zero-copy sub-slices and per-arc
// companion tables (package sched's mean-communication caches) can be flat
// arrays indexed by SuccStart/PredStart — no per-task slice headers, no
// pointer chasing on the million-task hot paths.
type Graph struct {
	name  string
	tasks []Task
	// succAdj holds all successor arcs grouped by source task (sorted by
	// To within a group); task i's arcs are succAdj[succOff[i]:succOff[i+1]].
	succOff []int32
	succAdj []Adj
	// predAdj mirrors succAdj for incoming arcs, sorted by predecessor id.
	predOff []int32
	predAdj []Adj
	edges   int

	// Traversal caches. The graph is immutable, so one topological order
	// and the level-set groupings are computed once and shared; accessors
	// hand out copies where callers are allowed to mutate the result.
	topoOnce sync.Once
	topo     []TaskID
	lvlOnce  sync.Once
	depth    levelSets // tasks grouped by depth from the entries
	height   levelSets // tasks grouped by height from the exits
}

// levelSets is a CSR grouping of tasks by level: level l holds
// tasks[off[l]:off[l+1]], ascending task id within a level.
type levelSets struct {
	off   []int32
	tasks []TaskID
}

// replaceWith installs src's structural fields into g and clears the
// traversal caches, without copying the sync.Once fields. src must be
// freshly built and not shared; UnmarshalJSON uses this in place of a
// whole-struct assignment.
func (g *Graph) replaceWith(src *Graph) {
	g.name = src.name
	g.tasks = src.tasks
	g.succOff = src.succOff
	g.succAdj = src.succAdj
	g.predOff = src.predOff
	g.predAdj = src.predAdj
	g.edges = src.edges
	g.topoOnce = sync.Once{}
	g.topo = nil
	g.lvlOnce = sync.Once{}
	g.depth = levelSets{}
	g.height = levelSets{}
}

// Name returns the human-readable name given at build time (may be empty).
func (g *Graph) Name() string { return g.name }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task with the given id. It panics if id is out of
// range, consistent with slice indexing semantics.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Tasks returns a copy of all tasks in id order.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Succ returns the successor adjacency of id. The returned slice must not
// be modified.
func (g *Graph) Succ(id TaskID) []Adj {
	lo, hi := g.succOff[id], g.succOff[id+1]
	return g.succAdj[lo:hi:hi]
}

// Pred returns the predecessor adjacency of id. The returned slice must
// not be modified.
func (g *Graph) Pred(id TaskID) []Adj {
	lo, hi := g.predOff[id], g.predOff[id+1]
	return g.predAdj[lo:hi:hi]
}

// SuccStart returns the arc offset of task id's first outgoing arc in the
// flat successor array: the j-th entry of Succ(id) is arc SuccStart(id)+j.
// Flat per-arc tables (e.g. memoized mean communication costs) are indexed
// with it.
func (g *Graph) SuccStart(id TaskID) int { return int(g.succOff[id]) }

// PredStart is SuccStart for incoming arcs.
func (g *Graph) PredStart(id TaskID) int { return int(g.predOff[id]) }

// OutDegree returns the number of successors of id.
func (g *Graph) OutDegree(id TaskID) int { return int(g.succOff[id+1] - g.succOff[id]) }

// InDegree returns the number of predecessors of id.
func (g *Graph) InDegree(id TaskID) int { return int(g.predOff[id+1] - g.predOff[id]) }

// EdgeData returns the data volume on edge (from, to) and whether the edge
// exists.
func (g *Graph) EdgeData(from, to TaskID) (float64, bool) {
	adj := g.Succ(from)
	k := sort.Search(len(adj), func(i int) bool { return adj[i].To >= to })
	if k < len(adj) && adj[k].To == to {
		return adj[k].Data, true
	}
	return 0, false
}

// Edges returns all edges in (From, To) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for i := range g.tasks {
		for _, a := range g.Succ(TaskID(i)) {
			out = append(out, Edge{From: TaskID(i), To: a.To, Data: a.Data})
		}
	}
	return out
}

// Entries returns all tasks with no predecessors, in id order.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if g.InDegree(TaskID(i)) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Exits returns all tasks with no successors, in id order.
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if g.OutDegree(TaskID(i)) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TotalWeight returns the sum of all nominal task weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, t := range g.tasks {
		s += t.Weight
	}
	return s
}

// TotalData returns the sum of all edge data volumes.
func (g *Graph) TotalData() float64 {
	var s float64
	for _, a := range g.succAdj {
		s += a.Data
	}
	return s
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag(%s: %d tasks, %d edges)", g.name, len(g.tasks), g.edges)
}
