package dag

import (
	"errors"
	"fmt"
)

// ErrCycle reports that a task graph contains a dependency cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// topoOrder computes one topological order using Kahn's algorithm,
// returning ErrCycle if the graph is not acyclic. Ties are broken by task
// id so the order is deterministic.
func topoOrder(g *Graph) ([]TaskID, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// A monotone frontier: because ready tasks are appended in id order
	// per wave and consumed FIFO, the order is deterministic.
	queue := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, a := range g.succ[v] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w (%d of %d tasks ordered)", ErrCycle, len(order), n)
	}
	return order, nil
}

// TopoOrder returns a deterministic topological order of the graph. The
// graph is guaranteed acyclic by Build, so no error is possible.
func (g *Graph) TopoOrder() []TaskID {
	order, err := topoOrder(g)
	if err != nil {
		// Build guarantees acyclicity; reaching this indicates memory
		// corruption or misuse of the package internals.
		panic(err)
	}
	return order
}

// ReverseTopoOrder returns the reverse of TopoOrder.
func (g *Graph) ReverseTopoOrder() []TaskID {
	order := g.TopoOrder()
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Levels assigns each task its depth: entry tasks are level 0 and every
// other task is one more than its deepest predecessor.
func (g *Graph) Levels() []int {
	levels := make([]int, g.Len())
	for _, v := range g.TopoOrder() {
		lv := 0
		for _, p := range g.pred[v] {
			if levels[p.To]+1 > lv {
				lv = levels[p.To] + 1
			}
		}
		levels[v] = lv
	}
	return levels
}

// Height returns the number of levels in the graph (longest path length in
// nodes).
func (g *Graph) Height() int {
	h := 0
	for _, lv := range g.Levels() {
		if lv+1 > h {
			h = lv + 1
		}
	}
	return h
}

// IsReachable reports whether to is reachable from from following edges
// forward. It runs a DFS and is intended for tests and validation, not for
// inner scheduling loops.
func (g *Graph) IsReachable(from, to TaskID) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.Len())
	stack := []TaskID{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.succ[v] {
			if a.To == to {
				return true
			}
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return false
}
