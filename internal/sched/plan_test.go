package sched

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/platform"
)

func TestPlanBasics(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	if pl.Done() || pl.Scheduled(0) {
		t.Fatal("fresh plan should be empty")
	}
	a := pl.Place(0, 0, 0)
	if a.Finish != 2 {
		t.Fatalf("finish = %g, want 2", a.Finish)
	}
	if !pl.Scheduled(0) {
		t.Fatal("task 0 not marked scheduled")
	}
	if got := pl.ProcReady(0); got != 2 {
		t.Fatalf("ProcReady = %g", got)
	}
	if got := pl.ProcReady(1); got != 0 {
		t.Fatalf("ProcReady idle = %g", got)
	}
	if got := pl.Primary(0).Proc; got != 0 {
		t.Fatalf("Primary proc = %d", got)
	}
}

func TestDataReady(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc()) // latency 0, rate 1
	pl := NewPlan(in)
	pl.Place(0, 0, 0) // finishes at 2
	// Task 1 on same proc: ready at parent finish 2; on other proc:
	// 2 + comm(1 unit) = 3.
	if got := pl.DataReady(1, 0); got != 2 {
		t.Fatalf("DataReady(1,P0) = %g, want 2", got)
	}
	if got := pl.DataReady(1, 1); got != 3 {
		t.Fatalf("DataReady(1,P1) = %g, want 3", got)
	}
	// Entry tasks are ready immediately.
	pl2 := NewPlan(in)
	if got := pl2.DataReady(0, 1); got != 0 {
		t.Fatalf("entry DataReady = %g", got)
	}
}

func TestDataReadyUsesClosestCopy(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0)    // primary on P0, finish 2
	pl.PlaceDup(0, 1, 5) // duplicate on P1, finish 7
	// On P1 the duplicate (finish 7) competes with remote primary
	// (2 + 1 = 3): the remote copy is better here.
	if got := pl.DataReady(1, 1); got != 3 {
		t.Fatalf("DataReady = %g, want 3", got)
	}
	// With a big edge (0->2 carries 4 units): remote = 2+4 = 6 vs local dup
	// ready at 7: remote still wins. Make the dup earlier to flip it.
	pl2 := NewPlan(in)
	pl2.Place(0, 0, 0)
	pl2.PlaceDup(0, 1, 1) // finish 3
	if got := pl2.DataReady(2, 1); got != 3 {
		t.Fatalf("DataReady with dup = %g, want 3 (local dup finish)", got)
	}
}

func TestDataReadyPanicsOnUnscheduledParent(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unscheduled parent")
		}
	}()
	pl.DataReady(3, 0)
}

func TestFindSlotInsertion(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0) // [0,2)
	pl.Place(3, 0, 6) // [6,10)
	// Gap [2,6): a task of duration 3 ready at 0 fits at 2.
	if got := pl.FindSlot(0, 0, 3, true); got != 2 {
		t.Fatalf("FindSlot = %g, want 2", got)
	}
	// Duration 5 does not fit the gap: appended after 10.
	if got := pl.FindSlot(0, 0, 5, true); got != 10 {
		t.Fatalf("FindSlot = %g, want 10", got)
	}
	// Non-insertion ignores the gap.
	if got := pl.FindSlot(0, 0, 3, false); got != 10 {
		t.Fatalf("FindSlot non-insertion = %g, want 10", got)
	}
	// Ready time inside the gap shrinks it.
	if got := pl.FindSlot(0, 4, 2, true); got != 4 {
		t.Fatalf("FindSlot = %g, want 4", got)
	}
	if got := pl.FindSlot(0, 5, 2, true); got != 10 {
		t.Fatalf("FindSlot = %g, want 10", got)
	}
	// Empty processor: starts at ready.
	if got := pl.FindSlot(1, 7, 3, true); got != 7 {
		t.Fatalf("FindSlot empty = %g, want 7", got)
	}
}

func TestFindSlotExactFit(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0) // [0,2)
	pl.Place(1, 0, 5) // [5,8)
	// Exact-fit interval [2,5) for duration 3.
	if got := pl.FindSlot(0, 0, 3, true); got != 2 {
		t.Fatalf("exact fit = %g, want 2", got)
	}
}

func TestEFTAndBestEFT(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0) // finish 2
	// Task 1 (cost 3): P0 start 2 finish 5; P1 start 3 finish 6.
	s, f := pl.EFTOn(1, 0, true)
	if s != 2 || f != 5 {
		t.Fatalf("EFTOn P0 = %g,%g", s, f)
	}
	s, f = pl.EFTOn(1, 1, true)
	if s != 3 || f != 6 {
		t.Fatalf("EFTOn P1 = %g,%g", s, f)
	}
	p, s, f := pl.BestEFT(1, true)
	if p != 0 || s != 2 || f != 5 {
		t.Fatalf("BestEFT = %d,%g,%g", p, s, f)
	}
}

func TestPlacePanicsOnDouble(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double placement")
		}
	}()
	pl.Place(0, 1, 0)
}

func TestPlaceDupPanicsOnUnscheduled(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dup of unscheduled task")
		}
	}()
	pl.PlaceDup(0, 0, 0)
}

func TestCloneIsolation(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	cp := pl.Clone()
	cp.Place(1, 0, 2)
	if pl.Scheduled(1) {
		t.Fatal("clone mutation leaked into original")
	}
	if !cp.Scheduled(1) {
		t.Fatal("clone lost its own mutation")
	}
	if pl.ProcReady(0) != 2 || cp.ProcReady(0) != 5 {
		t.Fatalf("timelines entangled: %g vs %g", pl.ProcReady(0), cp.ProcReady(0))
	}
}

func TestFinalizeAndValidate(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	p, s, _ := pl.BestEFT(1, true)
	pl.Place(1, p, s)
	p, s, _ = pl.BestEFT(2, true)
	pl.Place(2, p, s)
	p, s, _ = pl.BestEFT(3, true)
	pl.Place(3, p, s)
	sch := pl.Finalize("test")
	if err := sch.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sch.Algorithm() != "test" {
		t.Fatalf("Algorithm = %q", sch.Algorithm())
	}
	if sch.Makespan() <= 0 {
		t.Fatalf("Makespan = %g", sch.Makespan())
	}
	if sch.NumDuplicates() != 0 {
		t.Fatalf("NumDuplicates = %d", sch.NumDuplicates())
	}
	if got := len(sch.All()); got != 4 {
		t.Fatalf("All() len = %d", got)
	}
}

func TestFinalizePanicsIncomplete(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on incomplete finalize")
		}
	}()
	pl.Finalize("partial")
}

func TestValidateCatchesViolations(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())

	build := func(mutate func(pl *Plan)) *Schedule {
		pl := NewPlan(in)
		mutate(pl)
		return pl.Finalize("bad")
	}

	// Precedence violation: child starts before parent's data arrives.
	s := build(func(pl *Plan) {
		pl.Place(0, 0, 0) // finish 2
		pl.Place(1, 1, 0) // starts before data arrival 3
		pl.Place(2, 0, 2)
		pl.Place(3, 0, 50)
	})
	if err := s.Validate(); err == nil {
		t.Fatal("precedence violation not caught")
	}

	// Overlap violation on one processor.
	s = build(func(pl *Plan) {
		pl.Place(0, 0, 0)
		pl.Place(1, 0, 1) // overlaps [0,2)
		pl.Place(2, 0, 10)
		pl.Place(3, 0, 50)
	})
	if err := s.Validate(); err == nil {
		t.Fatal("overlap not caught")
	}

	// Negative start.
	s = build(func(pl *Plan) {
		pl.Place(0, 0, -5)
		pl.Place(1, 0, 10)
		pl.Place(2, 0, 20)
		pl.Place(3, 0, 50)
	})
	if err := s.Validate(); err == nil {
		t.Fatal("negative start not caught")
	}
}

func TestBlockProc(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	if got := pl.Blocked(0); !math.IsInf(got, 1) {
		t.Fatalf("fresh plan blocked at %g", got)
	}
	pl.BlockProc(1, 5)
	// Duration 3 starting at 0 fits before the block; duration 3 at
	// ready 3 would end at 6 > 5: impossible.
	if got := pl.FindSlot(1, 0, 3, true); got != 0 {
		t.Fatalf("FindSlot = %g, want 0", got)
	}
	if got := pl.FindSlot(1, 3, 3, true); !math.IsInf(got, 1) {
		t.Fatalf("FindSlot past block = %g, want +Inf", got)
	}
	// Re-blocking keeps the earliest time.
	pl.BlockProc(1, 8)
	if pl.Blocked(1) != 5 {
		t.Fatalf("Blocked = %g, want 5", pl.Blocked(1))
	}
	pl.BlockProc(1, 2)
	if pl.Blocked(1) != 2 {
		t.Fatalf("Blocked = %g, want 2", pl.Blocked(1))
	}
	// BestEFT routes around a fully blocked processor.
	pl2 := NewPlan(in)
	pl2.BlockProc(0, 0)
	p, s, f := pl2.BestEFT(0, true)
	if p != 1 || s != 0 || math.IsInf(f, 1) {
		t.Fatalf("BestEFT = %d,%g,%g", p, s, f)
	}
	// Clone preserves blocks.
	cp := pl2.Clone()
	if cp.Blocked(0) != 0 {
		t.Fatal("clone lost block")
	}
}

// With every processor blocked, BestEFT used to report finish=+Inf but
// proc=0, start=0 — inviting a careless Place at time 0 on a blocked
// processor. The no-feasible-slot contract is now explicit: start and
// finish are both +Inf.
func TestBestEFTAllBlocked(t *testing.T) {
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	pl.BlockProc(0, 0)
	pl.BlockProc(1, 0)
	_, s, f := pl.BestEFT(0, true)
	if !math.IsInf(f, 1) {
		t.Fatalf("finish = %g, want +Inf", f)
	}
	if !math.IsInf(s, 1) {
		t.Fatalf("start = %g, want +Inf (callers must not Place here)", s)
	}
	// EFTOn on a blocked processor agrees.
	if es, ef := pl.EFTOn(0, 0, true); !math.IsInf(es, 1) || !math.IsInf(ef, 1) {
		t.Fatalf("EFTOn = %g,%g, want +Inf,+Inf", es, ef)
	}
}

func TestBlockProcMath(t *testing.T) {
	// Guard the +Inf arithmetic: a finite slot plus duration never trips
	// the unblocked (+Inf) comparison.
	g := diamondGraph(t)
	in := Consistent(g, twoProc())
	pl := NewPlan(in)
	if got := pl.FindSlot(0, 1e308, 1e308, true); math.IsInf(got, 1) {
		t.Fatal("huge finite request misclassified as blocked")
	}
}

// Property: greedy insertion scheduling in topological order always yields
// a valid schedule, on many random instances.
func TestGreedyTopoAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(t, rng, 2+rng.Intn(40), 1+rng.Intn(6))
		pl := NewPlan(in)
		for _, v := range in.G.TopoOrder() {
			p, s, _ := pl.BestEFT(v, true)
			pl.Place(v, p, s)
		}
		sch := pl.Finalize("greedy")
		if err := sch.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sch.Makespan() < in.CPMin()-eps {
			t.Fatalf("makespan %g below lower bound %g", sch.Makespan(), in.CPMin())
		}
	}
}

// Property: with duplicates placed in holes, validation still passes and
// DataReady never increases after adding a duplicate.
func TestDuplicationNeverHurtsReadiness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := diamondGraph(t)
	in := Consistent(g, platform.Homogeneous(3, 1, 2))
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	_ = rng
	// Manually schedule 1 and 2 on P0, then duplicate 1 onto P1.
	p, s, _ := pl.BestEFT(1, true)
	pl.Place(1, p, s)
	p, s, _ = pl.BestEFT(2, true)
	pl.Place(2, p, s)
	mid := pl.DataReady(3, 1)
	ready := pl.DataReady(1, 1)
	slot := pl.FindSlot(1, ready, in.Cost(1, 1), true)
	pl.PlaceDup(1, 1, slot)
	after := pl.DataReady(3, 1)
	if after > mid+eps {
		t.Fatalf("duplicate increased readiness: %g -> %g", mid, after)
	}
	p, s, _ = pl.BestEFT(3, true)
	pl.Place(3, p, s)
	if err := pl.Finalize("dup").Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
