package workload

import (
	"fmt"

	"dagsched/internal/dag"
)

// Tiled dense linear algebra DAGs, the modern workhorses of task-based
// runtimes (PLASMA/StarPU-style). Task weights are proportional to kernel
// flop counts for unit tile size: POTRF 1, TRSM 3, SYRK 3, GEMM 6 (and
// GETRF 2 for LU); edges carry one tile of data.

const tileData = 1.0

// Cholesky returns the tiled Cholesky factorization DAG for a t×t tile
// matrix:
//
//	for k = 0..t-1:
//	  POTRF(k)              after SYRK(k,k-1)
//	  TRSM(i,k)  for i > k  after POTRF(k), GEMM(i,k,k-1)
//	  SYRK(i,k)  for i > k  after TRSM(i,k), SYRK(i,k-1)        (tile (i,i))
//	  GEMM(i,j,k) for i>j>k after TRSM(i,k), TRSM(j,k), GEMM(i,j,k-1)
func Cholesky(t int) (*dag.Graph, error) {
	if t < 1 {
		return nil, fmt.Errorf("workload: cholesky needs t >= 1 tiles, got %d", t)
	}
	b := dag.NewBuilder(fmt.Sprintf("cholesky-t%d", t))
	potrf := make([]dag.TaskID, t)
	trsm := make(map[[2]int]dag.TaskID) // (i,k)
	syrk := make(map[[2]int]dag.TaskID) // (i,k): update of tile (i,i) at step k
	gemm := make(map[[3]int]dag.TaskID) // (i,j,k): update of tile (i,j) at step k
	for k := 0; k < t; k++ {
		potrf[k] = b.AddTask(fmt.Sprintf("potrf%d", k), 1)
		if k > 0 {
			b.AddEdge(syrk[[2]int{k, k - 1}], potrf[k], tileData)
		}
		for i := k + 1; i < t; i++ {
			id := b.AddTask(fmt.Sprintf("trsm%d,%d", i, k), 3)
			trsm[[2]int{i, k}] = id
			b.AddEdge(potrf[k], id, tileData)
			if k > 0 {
				b.AddEdge(gemm[[3]int{i, k, k - 1}], id, tileData)
			}
		}
		for i := k + 1; i < t; i++ {
			id := b.AddTask(fmt.Sprintf("syrk%d,%d", i, k), 3)
			syrk[[2]int{i, k}] = id
			b.AddEdge(trsm[[2]int{i, k}], id, tileData)
			if k > 0 {
				b.AddEdge(syrk[[2]int{i, k - 1}], id, tileData)
			}
			for j := k + 1; j < i; j++ {
				g := b.AddTask(fmt.Sprintf("gemm%d,%d,%d", i, j, k), 6)
				gemm[[3]int{i, j, k}] = g
				b.AddEdge(trsm[[2]int{i, k}], g, tileData)
				b.AddEdge(trsm[[2]int{j, k}], g, tileData)
				if k > 0 {
					b.AddEdge(gemm[[3]int{i, j, k - 1}], g, tileData)
				}
			}
		}
	}
	return b.Build()
}

// LU returns the tiled LU factorization DAG (no pivoting) for a t×t tile
// matrix:
//
//	for k = 0..t-1:
//	  GETRF(k)                 after GEMM(k,k,k-1)
//	  TRSMR(k,j) for j > k     after GETRF(k), GEMM(k,j,k-1)   (row panel)
//	  TRSMC(i,k) for i > k     after GETRF(k), GEMM(i,k,k-1)   (column panel)
//	  GEMM(i,j,k) for i,j > k  after TRSMC(i,k), TRSMR(k,j), GEMM(i,j,k-1)
func LU(t int) (*dag.Graph, error) {
	if t < 1 {
		return nil, fmt.Errorf("workload: lu needs t >= 1 tiles, got %d", t)
	}
	b := dag.NewBuilder(fmt.Sprintf("lu-t%d", t))
	getrf := make([]dag.TaskID, t)
	trsmR := make(map[[2]int]dag.TaskID) // (k,j)
	trsmC := make(map[[2]int]dag.TaskID) // (i,k)
	gemm := make(map[[3]int]dag.TaskID)  // (i,j,k)
	for k := 0; k < t; k++ {
		getrf[k] = b.AddTask(fmt.Sprintf("getrf%d", k), 2)
		if k > 0 {
			b.AddEdge(gemm[[3]int{k, k, k - 1}], getrf[k], tileData)
		}
		for j := k + 1; j < t; j++ {
			id := b.AddTask(fmt.Sprintf("trsmr%d,%d", k, j), 3)
			trsmR[[2]int{k, j}] = id
			b.AddEdge(getrf[k], id, tileData)
			if k > 0 {
				b.AddEdge(gemm[[3]int{k, j, k - 1}], id, tileData)
			}
		}
		for i := k + 1; i < t; i++ {
			id := b.AddTask(fmt.Sprintf("trsmc%d,%d", i, k), 3)
			trsmC[[2]int{i, k}] = id
			b.AddEdge(getrf[k], id, tileData)
			if k > 0 {
				b.AddEdge(gemm[[3]int{i, k, k - 1}], id, tileData)
			}
		}
		for i := k + 1; i < t; i++ {
			for j := k + 1; j < t; j++ {
				g := b.AddTask(fmt.Sprintf("gemm%d,%d,%d", i, j, k), 6)
				gemm[[3]int{i, j, k}] = g
				b.AddEdge(trsmC[[2]int{i, k}], g, tileData)
				b.AddEdge(trsmR[[2]int{k, j}], g, tileData)
				if k > 0 {
					b.AddEdge(gemm[[3]int{i, j, k - 1}], g, tileData)
				}
			}
		}
	}
	return b.Build()
}
