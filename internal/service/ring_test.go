package service

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = fmt.Sprintf("%x", sum)
	}
	return keys
}

// TestRingDeterministic pins the two properties routing correctness
// rests on: every node computes the same owner for a key regardless of
// peer-list order, and ownership is stable across rebuilds.
func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(peers)
	r2 := newRing([]string{peers[2], peers[0], peers[1], peers[0]}) // shuffled + dup
	if r1.size() != 3 || r2.size() != 3 {
		t.Fatalf("sizes = %d, %d, want 3 (dedup)", r1.size(), r2.size())
	}
	for _, k := range ringKeys(500) {
		if o1, o2 := r1.owner(k), r2.owner(k); o1 != o2 {
			t.Fatalf("owner(%s) differs across peer orderings: %q vs %q", k[:8], o1, o2)
		}
	}
}

// TestRingBalance checks that 64 virtual nodes spread keys reasonably:
// no peer of a 4-node ring owns more than twice its fair share.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(peers)
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	fair := len(keys) / len(peers)
	for _, p := range peers {
		if counts[p] == 0 {
			t.Errorf("peer %s owns no keys", p)
		}
		if counts[p] > 2*fair {
			t.Errorf("peer %s owns %d of %d keys (> 2x fair share %d)", p, counts[p], len(keys), fair)
		}
	}
}

// TestRingChurn verifies the consistency property that justifies the
// ring: when one node joins or leaves, a key changes owner only if the
// changed node is involved, and the moved fraction stays near 1/N.
func TestRingChurn(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1", "http://e:1"}
	keys := ringKeys(5000)

	t.Run("leave", func(t *testing.T) {
		before := newRing(peers)
		after := newRing(peers[:len(peers)-1]) // e leaves
		gone := peers[len(peers)-1]
		moved := 0
		for _, k := range keys {
			ob, oa := before.owner(k), after.owner(k)
			if ob == oa {
				continue
			}
			moved++
			if ob != gone {
				t.Fatalf("key %s moved %q -> %q though only %q left the ring", k[:8], ob, oa, gone)
			}
		}
		if max := 2 * len(keys) / len(peers); moved > max {
			t.Errorf("%d of %d keys moved on one departure (> 2/N bound %d)", moved, len(keys), max)
		}
	})

	t.Run("join", func(t *testing.T) {
		before := newRing(peers)
		joined := "http://f:1"
		after := newRing(append(append([]string{}, peers...), joined))
		moved := 0
		for _, k := range keys {
			ob, oa := before.owner(k), after.owner(k)
			if ob == oa {
				continue
			}
			moved++
			if oa != joined {
				t.Fatalf("key %s moved %q -> %q though only %q joined the ring", k[:8], ob, oa, joined)
			}
		}
		if max := 2 * len(keys) / (len(peers) + 1); moved > max {
			t.Errorf("%d of %d keys moved on one join (> 2/N bound %d)", moved, len(keys), max)
		}
	})
}

// TestRingSuccessors checks failover ordering: successors starts at the
// owner and yields every distinct peer exactly once.
func TestRingSuccessors(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(peers)
	for _, k := range ringKeys(50) {
		succ := r.successors(k)
		if len(succ) != len(peers) {
			t.Fatalf("successors(%s) = %v, want all %d peers", k[:8], succ, len(peers))
		}
		if succ[0] != r.owner(k) {
			t.Fatalf("successors(%s)[0] = %q, want owner %q", k[:8], succ[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("successors(%s) repeats %q: %v", k[:8], p, succ)
			}
			seen[p] = true
		}
	}
}
