package core

import (
	"math/rand"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

func TestNamesAndOptions(t *testing.T) {
	cases := []struct {
		a    ILS
		name string
		opts Options
	}{
		{New(), "ILS", Options{SigmaRank: true, Lookahead: true, Duplication: true}},
		{NoDuplication(), "ILS-L", Options{SigmaRank: true, Lookahead: true}},
		{NoLookahead(), "ILS-D", Options{SigmaRank: true, Duplication: true}},
		{RankOnly(), "ILS-R", Options{SigmaRank: true}},
	}
	for _, c := range cases {
		if c.a.Name() != c.name {
			t.Fatalf("Name = %q, want %q", c.a.Name(), c.name)
		}
		if c.a.Options() != c.opts {
			t.Fatalf("%s options = %+v, want %+v", c.name, c.a.Options(), c.opts)
		}
	}
	v := Variant("custom", Options{Lookahead: true, MaxDups: 3})
	if v.Name() != "custom" || !v.Options().Lookahead {
		t.Fatal("Variant lost its configuration")
	}
}

func TestAllVariantsValidOnBattery(t *testing.T) {
	variants := []ILS{New(), NoDuplication(), NoLookahead(), RankOnly(),
		Variant("plain", Options{})}
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 808}, func(trial int, in *sched.Instance) {
		for _, a := range variants {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if s.Makespan() < in.CPMin()-1e-6 {
				t.Fatalf("trial %d %s: below CP bound", trial, a.Name())
			}
		}
	})
}

func TestValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(4, 88) {
		s, err := New().Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
	}
}

// With every mechanism disabled, ILS is schedule-identical to HEFT.
func TestPlainVariantEqualsHEFT(t *testing.T) {
	plain := Variant("plain", Options{})
	testfix.Battery(testfix.BatteryConfig{Trials: 25, Seed: 909}, func(trial int, in *sched.Instance) {
		a, _ := plain.Schedule(in)
		b, _ := listsched.HEFT{}.Schedule(in)
		if a.Makespan() != b.Makespan() {
			t.Fatalf("trial %d: plain ILS %g != HEFT %g", trial, a.Makespan(), b.Makespan())
		}
	})
}

// On homogeneous systems σ = 0, so ILS-R (σ-rank only) must equal HEFT.
func TestRankOnlyEqualsHEFTOnHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g, err := workload.Random(workload.RandomConfig{N: 2 + rng.Intn(60)}, rng)
		if err != nil {
			t.Fatal(err)
		}
		in, err := workload.MakeInstance(g, workload.HetConfig{Procs: 1 + rng.Intn(5), CCR: rng.Float64() * 5, Beta: 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := RankOnly().Schedule(in)
		b, _ := listsched.HEFT{}.Schedule(in)
		if a.Makespan() != b.Makespan() {
			t.Fatalf("trial %d: ILS-R %g != HEFT %g on homogeneous system", trial, a.Makespan(), b.Makespan())
		}
	}
}

// The headline claim: over a batch of heterogeneous random DAGs, full ILS
// must win or tie HEFT on a solid majority of instances and on average.
func TestILSBeatsHEFTOnAverage(t *testing.T) {
	var wins, ties, losses int
	var ilsSum, heftSum float64
	testfix.Battery(testfix.BatteryConfig{Trials: 60, MaxTasks: 60, MaxProcs: 8, Seed: 1001}, func(trial int, in *sched.Instance) {
		a, _ := New().Schedule(in)
		b, _ := listsched.HEFT{}.Schedule(in)
		ilsSum += a.Makespan() / in.CPMin()
		heftSum += b.Makespan() / in.CPMin()
		switch {
		case a.Makespan() < b.Makespan()-1e-9:
			wins++
		case a.Makespan() > b.Makespan()+1e-9:
			losses++
		default:
			ties++
		}
	})
	if wins <= losses {
		t.Fatalf("ILS vs HEFT: %d wins, %d ties, %d losses — expected strictly more wins", wins, ties, losses)
	}
	if ilsSum >= heftSum {
		t.Fatalf("ILS mean SLR %.4f not better than HEFT %.4f", ilsSum/60, heftSum/60)
	}
	t.Logf("ILS vs HEFT: %d wins / %d ties / %d losses; mean SLR %.4f vs %.4f",
		wins, ties, losses, ilsSum/60, heftSum/60)
}

// Duplication must pay off on a broadcast-heavy graph.
func TestILSDuplicatesOnFanOut(t *testing.T) {
	b := dag.NewBuilder("fan")
	root := b.AddTask("root", 1)
	for i := 0; i < 6; i++ {
		c := b.AddTask("", 5)
		b.AddEdge(root, c, 20)
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	full, _ := New().Schedule(in)
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	noDup, _ := NoDuplication().Schedule(in)
	if full.Makespan() > noDup.Makespan() {
		t.Fatalf("duplication hurt: %g vs %g", full.Makespan(), noDup.Makespan())
	}
	if full.Makespan() != 11 {
		t.Fatalf("ILS fan-out makespan = %g, want 11", full.Makespan())
	}
	if full.NumDuplicates() == 0 {
		t.Fatal("no duplicates on broadcast-heavy graph")
	}
}

func TestDeterminism(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 10, Seed: 1102}, func(trial int, in *sched.Instance) {
		a1, _ := New().Schedule(in)
		a2, _ := New().Schedule(in)
		if a1.Makespan() != a2.Makespan() {
			t.Fatalf("trial %d: not deterministic", trial)
		}
	})
}

func TestSingleProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := workload.Random(workload.RandomConfig{N: 25}, rng)
	in, _ := workload.MakeInstance(g, workload.HetConfig{Procs: 1, CCR: 3, Beta: 0}, rng)
	s, err := New().Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < in.N(); i++ {
		total += in.Cost(dag.TaskID(i), 0)
	}
	if s.Makespan() < total-1e-6 || s.Makespan() > total+1e-6 {
		t.Fatalf("single-proc makespan = %g, want %g", s.Makespan(), total)
	}
	if s.NumDuplicates() != 0 {
		t.Fatal("duplicates on a single processor are always useless")
	}
}
