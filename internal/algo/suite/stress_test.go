package suite_test

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dagsched/internal/adversary"
	"dagsched/internal/algo/exact"
	"dagsched/internal/algo/suite"
	"dagsched/internal/testfix"
)

// stressDir holds the adversarially-found stress fixtures (see
// docs/ADVERSARY.md); stressGolden pins the full registry's schedules
// on them.
const (
	stressDir    = "../../../testdata/adversarial"
	stressGolden = "golden_stress.json"
)

// TestAdversarialStressSuite runs the whole registry over every
// checked-in adversarial instance. It asserts the corpus itself
// (fixtures reproduce their recorded gaps, at least three pairs clear
// the 1.15 ratio bar, genomes decode to the pinned instances —
// DESIGN.md invariant 11), then pins every algorithm's makespan and
// placement digest against golden_stress.json, and checks the exact
// lower bound where branch-and-bound is feasible.
func TestAdversarialStressSuite(t *testing.T) {
	m, err := adversary.ReadManifest(stressDir)
	if err != nil {
		t.Fatalf("reading stress manifest (regenerate with cmd/schedadv): %v", err)
	}
	if len(m.Fixtures) == 0 {
		t.Fatal("stress manifest is empty")
	}

	// Acceptance bar: at least 3 distinct attacker/victim pairs with a
	// found ratio of 1.15 or better.
	strongPairs := map[string]bool{}
	for _, fx := range m.Fixtures {
		if fx.Ratio >= 1.15 {
			strongPairs[fx.Attacker+"/"+fx.Victim] = true
		}
	}
	if len(strongPairs) < 3 {
		t.Errorf("only %d attacker/victim pairs reach ratio >= 1.15, want >= 3", len(strongPairs))
	}

	goldenPath := filepath.Join(stressDir, stressGolden)
	update := *updateGolden
	var golden map[string]map[string]testfix.GoldenRecord
	if update {
		golden = map[string]map[string]testfix.GoldenRecord{}
	} else {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading stress goldens (run with -update): %v", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
	}

	for _, fx := range m.Fixtures {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			in, err := fx.Load(stressDir)
			if err != nil {
				t.Fatal(err)
			}

			// Invariant 11, first half: the genome re-decodes to the very
			// instance that was checked in.
			dec, err := fx.Spec.Decode()
			if err != nil {
				t.Fatalf("fixture genome no longer decodes: %v", err)
			}
			d, err := adversary.Digest(dec)
			if err != nil {
				t.Fatal(err)
			}
			if d != fx.InstanceDigest {
				t.Errorf("genome decodes to digest %s, fixture pins %s", d, fx.InstanceDigest)
			}

			// The recorded gap reproduces: attacker and victim makespans
			// match the manifest.
			att, err := suite.ByName(fx.Attacker)
			if err != nil {
				t.Fatal(err)
			}
			vic, err := suite.ByName(fx.Victim)
			if err != nil {
				t.Fatal(err)
			}
			as, err := att.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := vic.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			if got := as.Makespan(); math.Abs(got-fx.AttackerMakespan) > 1e-9 {
				t.Errorf("attacker %s makespan %v, manifest records %v", fx.Attacker, got, fx.AttackerMakespan)
			}
			if got := vs.Makespan(); math.Abs(got-fx.VictimMakespan) > 1e-9 {
				t.Errorf("victim %s makespan %v, manifest records %v", fx.Victim, got, fx.VictimMakespan)
			}
			if got := vs.Makespan() / as.Makespan(); math.Abs(got-fx.Ratio) > 1e-9 {
				t.Errorf("ratio %v, manifest records %v", got, fx.Ratio)
			}

			// Exact lower bound where branch and bound is feasible.
			opt := math.Inf(-1)
			if in.N() <= 10 && in.P() <= 3 {
				o, proven, err := exact.BnB{}.Makespan(in)
				if err != nil {
					t.Fatal(err)
				}
				if proven {
					opt = o
				}
			}

			// Invariant 11, second half: every registry algorithm schedules
			// the adversarial instance validly, with pinned results.
			if update {
				golden[fx.Name] = map[string]testfix.GoldenRecord{}
			}
			for _, a := range suite.All() {
				s, err := a.Schedule(in)
				if err != nil {
					t.Fatalf("%s: %v", a.Name(), err)
				}
				if err := s.Validate(); err != nil {
					t.Errorf("%s: invalid schedule on stress fixture: %v", a.Name(), err)
				}
				if s.NumDuplicates() == 0 && s.Makespan() < opt-1e-6 {
					t.Errorf("%s: makespan %g beats proven optimum %g", a.Name(), s.Makespan(), opt)
				}
				if update {
					golden[fx.Name][a.Name()] = testfix.GoldenRecord{
						Makespan: s.Makespan(),
						Digest:   testfix.ScheduleDigest(s),
					}
					continue
				}
				rec, ok := golden[fx.Name][a.Name()]
				if !ok {
					t.Errorf("%s missing from stress goldens (run with -update)", a.Name())
					continue
				}
				if got := s.Makespan(); got != rec.Makespan {
					t.Errorf("%s: makespan %v, stress golden %v", a.Name(), got, rec.Makespan)
				}
				if got := testfix.ScheduleDigest(s); got != rec.Digest {
					t.Errorf("%s: placement digest drifted from stress golden", a.Name())
				}
			}
		})
	}

	if update {
		out, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d fixtures × %d algorithms)", goldenPath, len(m.Fixtures), len(suite.All()))
	}
}
