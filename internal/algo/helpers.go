package algo

import (
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// OrderDescPrecedence returns the tasks sorted by decreasing priority,
// breaking ties by topological position so the order is always a valid
// scheduling order even when priorities tie (e.g. zero-cost tasks).
func OrderDescPrecedence(g *dag.Graph, prio []float64) []dag.TaskID {
	topo := g.TopoOrder()
	pos := make([]int, g.Len())
	for i, v := range topo {
		pos[v] = i
	}
	order := append([]dag.TaskID(nil), topo...)
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		if prio[ta] != prio[tb] {
			return prio[ta] > prio[tb]
		}
		return pos[ta] < pos[tb]
	})
	return order
}

// OrderAscPrecedence is OrderDescPrecedence with ascending priority.
func OrderAscPrecedence(g *dag.Graph, prio []float64) []dag.TaskID {
	neg := make([]float64, len(prio))
	for i, v := range prio {
		neg[i] = -v
	}
	return OrderDescPrecedence(g, neg)
}

// ReadyList tracks which unscheduled tasks have all predecessors placed.
// It is the driver for dynamic-priority heuristics (ETF, DLS, CPOP, ...).
type ReadyList struct {
	g       *dag.Graph
	pending []int // unscheduled predecessor count per task
	ready   []dag.TaskID
}

// NewReadyList returns a ready list seeded with the entry tasks.
func NewReadyList(g *dag.Graph) *ReadyList {
	rl := &ReadyList{g: g, pending: make([]int, g.Len())}
	for i := 0; i < g.Len(); i++ {
		rl.pending[i] = g.InDegree(dag.TaskID(i))
		if rl.pending[i] == 0 {
			rl.ready = append(rl.ready, dag.TaskID(i))
		}
	}
	return rl
}

// Ready returns the current ready tasks in ascending id order. The slice
// must not be modified.
func (rl *ReadyList) Ready() []dag.TaskID { return rl.ready }

// Empty reports whether no task is ready.
func (rl *ReadyList) Empty() bool { return len(rl.ready) == 0 }

// Complete marks task v scheduled, removing it from the ready set and
// releasing any successors whose predecessors are now all scheduled.
func (rl *ReadyList) Complete(v dag.TaskID) {
	for i, r := range rl.ready {
		if r == v {
			rl.ready = append(rl.ready[:i], rl.ready[i+1:]...)
			break
		}
	}
	for _, a := range rl.g.Succ(v) {
		rl.pending[a.To]--
		if rl.pending[a.To] == 0 {
			// Keep ascending order for determinism.
			k := len(rl.ready)
			for k > 0 && rl.ready[k-1] > a.To {
				k--
			}
			rl.ready = append(rl.ready, 0)
			copy(rl.ready[k+1:], rl.ready[k:])
			rl.ready[k] = a.To
		}
	}
}

// CriticalParent returns the predecessor of task t whose data arrives last
// on processor p given the current view, provided that parent has no copy
// on p already (so duplicating it could help), along with its arrival
// time. It returns (-1, 0) when t has no remote critical parent.
func CriticalParent(v sched.View, t dag.TaskID, p int) (dag.TaskID, float64) {
	in := v.Instance()
	best := dag.TaskID(-1)
	bestArrival := 0.0
	for _, pe := range in.G.Pred(t) {
		arrival := arrivalOn(v, pe.To, p, pe.Data)
		local := false
		for _, c := range v.Copies(pe.To) {
			if c.Proc == p {
				local = true
				break
			}
		}
		if !local && arrival > bestArrival {
			best, bestArrival = pe.To, arrival
		}
	}
	return best, bestArrival
}

// arrivalOn returns the earliest time data units from any copy of task m
// reach processor p.
func arrivalOn(v sched.View, m dag.TaskID, p int, data float64) float64 {
	in := v.Instance()
	best := -1.0
	for _, c := range v.Copies(m) {
		t := c.Finish + in.CommCost(c.Proc, p, data)
		if best < 0 || t < best {
			best = t
		}
	}
	return best
}

// DupResult reports the outcome of a duplication trial. The accepted
// duplicates live in the transaction the trial ran in; the caller commits
// the winning transaction and places the task at the reported start.
type DupResult struct {
	// Start and Finish are the candidate task's achievable window on the
	// trial processor after duplication.
	Start, Finish float64
	// Dups counts accepted duplicate copies.
	Dups int
}

// TryDuplication evaluates placing task t on processor p with greedy
// critical-parent duplication (the DSH strategy): while the task's start
// on p is dominated by data from a remote direct parent, try to duplicate
// that parent into an idle slot on p; keep the duplicate only if the start
// time strictly improves. After one parent becomes local another parent
// may become the binding constraint and is tried next; duplication is
// limited to direct parents (no grandparent recursion), bounded by
// maxDups.
//
// The trial runs inside tx: accepted duplicates stay journaled in it,
// rejected ones are rolled back immediately, and the base plan is never
// touched. A trial therefore costs O(changes) — the clone-based reference
// semantics are preserved bit for bit (proven by the differential suite).
func TryDuplication(tx *sched.Txn, t dag.TaskID, p int, maxDups int) DupResult {
	in := tx.Instance()
	dur := in.Cost(t, p)
	start := tx.FindSlot(p, tx.DataReady(t, p), dur, true)
	dups := 0
	for dups < maxDups {
		parent, arrival := CriticalParent(tx, t, p)
		if parent == -1 || arrival <= start-slackEps {
			// No remote parent dominates the start time.
			break
		}
		m := tx.Mark()
		pready := tx.DataReady(parent, p)
		pslot := tx.FindSlot(p, pready, in.Cost(parent, p), true)
		tx.PlaceDup(parent, p, pslot)
		newStart := tx.FindSlot(p, tx.DataReady(t, p), dur, true)
		if newStart >= start-slackEps {
			tx.Undo(m) // duplication did not strictly help
			break
		}
		start = newStart
		dups++
	}
	return DupResult{Start: start, Finish: start + dur, Dups: dups}
}

const slackEps = 1e-9
