package experiment

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/exact"
	"dagsched/internal/algo/suite"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/sim"
)

// E9 — pairwise win/tie/loss of ILS against every competitor over a large
// batch of mixed random DAGs.
func E9() Experiment {
	return Experiment{ID: "E9", Title: "Win/tie/loss of ILS vs competitors (random DAGs)", Run: func(cfg Config) ([]*Table, error) {
		reps := cfg.reps(250)
		ref := core.New()
		competitors := []algo.Algorithm{}
		for _, a := range suite.Heterogeneous() {
			if a.Name() != ref.Name() {
				competitors = append(competitors, a)
			}
		}
		w := metrics.NewWTL(ref.Name(), names(competitors), 1e-9)
		sizes := []int{20, 40, 60, 80, 100}
		ccrs := []float64{0.1, 0.5, 1, 5, 10}
		rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+900, func(rep int, rng *rand.Rand) ([]float64, error) {
			p := randParams{
				n:   sizes[rng.Intn(len(sizes))],
				ccr: ccrs[rng.Intn(len(ccrs))],
			}
			in, err := randGen(p)(rng)
			if err != nil {
				return nil, err
			}
			makespans := make([]float64, len(competitors)+1)
			refRes, err := metrics.Evaluate(ref, in)
			if err != nil {
				return nil, err
			}
			makespans[0] = refRes.Makespan
			for i, c := range competitors {
				res, err := metrics.Evaluate(c, in)
				if err != nil {
					return nil, err
				}
				makespans[i+1] = res.Makespan
			}
			return makespans, nil
		})
		if err != nil {
			return nil, err
		}
		for _, ms := range rows {
			for i, c := range competitors {
				if err := w.Record(c.Name(), ms[0], ms[i+1]); err != nil {
					return nil, err
				}
			}
		}
		t := &Table{ID: "E9", Title: fmt.Sprintf("ILS vs competitors over %d random DAGs", reps),
			Columns: []string{"competitor", "better(%)", "equal(%)", "worse(%)"}}
		for _, c := range w.Competitors() {
			win, tie, loss, err := w.Percent(c)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{c,
				fmt.Sprintf("%.1f", win), fmt.Sprintf("%.1f", tie), fmt.Sprintf("%.1f", loss)})
		}
		t.Notes = "Share of instances on which ILS produced a shorter/equal/longer makespan."
		return []*Table{t}, nil
	}}
}

// E10 — homogeneous comparison: average NSL (SLR on a homogeneous system)
// vs DAG size and vs CCR, against the classic homogeneous lineup.
func E10() Experiment {
	return Experiment{ID: "E10", Title: "Homogeneous systems: NSL vs size and CCR", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Homogeneous()
		reps := cfg.reps(25)
		sizes := []float64{20, 40, 60, 80, 100}
		ccrs := []float64{0.1, 1, 10}
		if cfg.Quick {
			sizes = []float64{20, 60}
			ccrs = []float64{0.1, 10}
		}
		t1 := &Table{ID: "E10a", Title: "Homogeneous: average NSL vs DAG size (P=8, CCR=1)", Columns: append([]string{"n"}, names(algs)...)}
		for i, n := range sizes {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1001,
				randGen(randParams{n: int(n), beta: -1}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%g", n), accs))
		}
		t1.Notes = fmt.Sprintf("β=0 (identical processors); mean over %d DAGs per point.", reps)
		t2 := &Table{ID: "E10b", Title: "Homogeneous: average NSL vs CCR (n=60, P=8)", Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1002,
				randGen(randParams{ccr: c, beta: -1}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t2.Rows = append(t2.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		return []*Table{t1, t2}, nil
	}}
}

// E11 — ablation of the three ILS mechanisms: the full 2³ grid.
func E11() Experiment {
	return Experiment{ID: "E11", Title: "Ablation of ILS mechanisms (2³ grid)", Run: func(cfg Config) ([]*Table, error) {
		var algs []algo.Algorithm
		for _, c := range []struct {
			name string
			opts core.Options
		}{
			{"HEFT(base)", core.Options{}},
			{"+σ", core.Options{SigmaRank: true}},
			{"+look", core.Options{Lookahead: true}},
			{"+dup", core.Options{Duplication: true}},
			{"+σ+look", core.Options{SigmaRank: true, Lookahead: true}},
			{"+σ+dup", core.Options{SigmaRank: true, Duplication: true}},
			{"+look+dup", core.Options{Lookahead: true, Duplication: true}},
			{"ILS(all)", core.Options{SigmaRank: true, Lookahead: true, Duplication: true}},
		} {
			algs = append(algs, core.Variant(c.name, c.opts))
		}
		reps := cfg.reps(25)
		ccrs := []float64{0.5, 1, 5}
		if cfg.Quick {
			ccrs = []float64{1}
		}
		t := &Table{ID: "E11", Title: "Ablation: mean SLR per mechanism combination", Columns: append([]string{"CCR"}, names(algs)...)}
		for i, c := range ccrs {
			accs, err := meanOver(algs, reps, cfg.Seed+int64(100*i)+1101, randGen(randParams{ccr: c}), slr, cfg.Workers)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", c), accs))
		}
		t.Notes = "Rows sweep CCR; n=60, P=8, β=1. σ = σ-augmented rank, look = child lookahead, dup = critical-parent duplication."
		return []*Table{t}, nil
	}}
}

// E12 — optimality gap on small DAGs (vs branch-and-bound) and scheduling
// running times on large DAGs.
func E12() Experiment {
	return Experiment{ID: "E12", Title: "Optimality gap and running time", Run: func(cfg Config) ([]*Table, error) {
		gapAlgs := suite.Heterogeneous()
		reps := cfg.reps(25)
		sizes := []int{6, 8, 10}
		if cfg.Quick {
			sizes = []int{6}
		}
		t1 := &Table{ID: "E12a", Title: "Mean makespan ratio to the optimum (P=3)", Columns: append([]string{"n"}, names(gapAlgs)...)}
		for si, n := range sizes {
			n := n
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+1200+int64(si), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{n: n, procs: 3})(rng)
				if err != nil {
					return nil, err
				}
				opt, err := exact.BnB{}.Schedule(in)
				if err != nil && !errors.Is(err, exact.ErrBudget) {
					return nil, err
				}
				row := make([]float64, len(gapAlgs))
				for i, a := range gapAlgs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					row[i] = s.Makespan() / opt.Makespan()
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			ratios := make([]*metrics.Accumulator, len(gapAlgs))
			for i := range ratios {
				ratios[i] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for i, v := range row {
					ratios[i].Add(v)
				}
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("%d", n), ratios))
		}
		t1.Notes = "Ratio 1.000 means the heuristic found an optimal schedule; duplication can push below 1."

		// Running-time table.
		rtAlgs := suite.All()
		rtSizes := []int{50, 100, 200}
		rtReps := cfg.reps(10)
		if cfg.Quick {
			rtSizes = []int{50}
		}
		t2 := &Table{ID: "E12b", Title: "Mean scheduling time (ms, P=8)", Columns: append([]string{"n"}, names(rtAlgs)...)}
		// Timing stays sequential: parallel workers would contend for
		// cores and skew the wall-clock measurements.
		rng := rand.New(rand.NewSource(cfg.Seed + 1250))
		for _, n := range rtSizes {
			times := make([]*metrics.Accumulator, len(rtAlgs))
			for i := range times {
				times[i] = &metrics.Accumulator{}
			}
			for r := 0; r < rtReps; r++ {
				in, err := randGen(randParams{n: n})(rng)
				if err != nil {
					return nil, err
				}
				for i, a := range rtAlgs {
					start := time.Now()
					if _, err := a.Schedule(in); err != nil {
						return nil, err
					}
					times[i].Add(float64(time.Since(start).Microseconds()) / 1000)
				}
			}
			row := []string{fmt.Sprintf("%d", n)}
			for _, acc := range times {
				row = append(row, fmtMean(acc))
			}
			t2.Rows = append(t2.Rows, row)
		}
		return []*Table{t1, t2}, nil
	}}
}

// E13 — robustness: replayed-makespan stretch under runtime execution-time
// noise (extension experiment using the event simulator).
func E13() Experiment {
	return Experiment{ID: "E13", Title: "Robustness to runtime noise (replayed stretch)", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Heterogeneous()
		reps := cfg.reps(25)
		noises := []float64{0.1, 0.2, 0.4}
		if cfg.Quick {
			noises = []float64{0.2}
		}
		t := &Table{ID: "E13", Title: "Mean replayed makespan stretch vs noise", Columns: append([]string{"noise"}, names(algs)...)}
		for i, noise := range noises {
			noise := noise
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+1300+int64(i), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{})(rng)
				if err != nil {
					return nil, err
				}
				row := make([]float64, len(algs))
				for k, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					r, err := sim.Run(s, sim.Config{Noise: noise, Seed: int64(rep)})
					if err != nil {
						return nil, err
					}
					row[k] = r.Stretch
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, len(algs))
			for k := range accs {
				accs[k] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for k, v := range row {
					accs[k].Add(v)
				}
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g", noise), accs))
		}
		t.Notes = "Stretch = replayed makespan / analytic makespan; n=60, P=8, CCR=1, β=1."
		return []*Table{t}, nil
	}}
}
