package repair

import (
	"math/rand"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestRepairValidation(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	if _, err := Repair(s, Failure{Proc: -1, Time: 10}); err == nil {
		t.Fatal("negative proc accepted")
	}
	if _, err := Repair(s, Failure{Proc: 9, Time: 10}); err == nil {
		t.Fatal("out-of-range proc accepted")
	}
	if _, err := Repair(s, Failure{Proc: 0, Time: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestRepairSingleProcRefused(t *testing.T) {
	b := dag.NewBuilder("one")
	b.AddTask("", 1)
	g := b.MustBuild()
	in, err := sched.NewInstance(g, platform.Homogeneous(1, 0, 1), [][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := listsched.HEFT{}.Schedule(in)
	if _, err := Repair(s, Failure{Proc: 0, Time: 0}); err == nil {
		t.Fatal("single-processor repair accepted")
	}
}

func TestRepairAtTimeZeroAvoidsProcEntirely(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	r, err := Repair(s, Failure{Proc: s.Primary(0).Proc, Time: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	failed := s.Primary(0).Proc
	for _, a := range r.All() {
		if a.Proc == failed {
			t.Fatalf("task %d still on failed P%d", a.Task, a.Proc)
		}
	}
	if r.Makespan() < s.Makespan() {
		t.Fatalf("losing a processor improved the makespan: %g < %g", r.Makespan(), s.Makespan())
	}
}

func TestRepairLateFailureKeepsEverything(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	// Failure after the makespan: nothing is lost, nothing moves.
	r, imp, err := Assess(s, Failure{Proc: 1, Time: s.Makespan() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Lost != 0 || imp.Moved != 0 {
		t.Fatalf("late failure lost %d moved %d", imp.Lost, imp.Moved)
	}
	if r.Makespan() != s.Makespan() {
		t.Fatalf("late failure changed makespan: %g vs %g", r.Makespan(), s.Makespan())
	}
}

func TestRepairMidExecution(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	// HEFT places work on all three processors; kill P2 (the CP proc
	// carries most tasks; choose a proc with mid-schedule work).
	fail := Failure{Proc: 0, Time: s.Makespan() / 2}
	r, imp, err := Assess(s, fail)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Copies finished before the failure survive in place.
	for _, a := range s.OnProc(fail.Proc) {
		if a.Finish <= fail.Time && !a.Dup {
			got := r.Primary(a.Task)
			if got.Proc != a.Proc || got.Start != a.Start {
				t.Fatalf("finished task %d moved from P%d@%g to P%d@%g",
					a.Task, a.Proc, a.Start, got.Proc, got.Start)
			}
		}
	}
	// No new work on the failed processor after the failure.
	for _, a := range r.OnProc(fail.Proc) {
		if a.Finish > fail.Time+1e-9 {
			t.Fatalf("task %d on failed proc finishes at %g after failure %g", a.Task, a.Finish, fail.Time)
		}
	}
	if imp.Repaired < imp.Original-1e-9 {
		t.Fatal("repair claims to beat the original schedule")
	}
}

// Repair must produce valid schedules across the battery, for plain and
// duplication-based schedules, at several failure times.
func TestRepairPropertyBattery(t *testing.T) {
	algs := []algo.Algorithm{listsched.HEFT{}, dup.BTDH{}, core.New()}
	rng := rand.New(rand.NewSource(12))
	testfix.Battery(testfix.BatteryConfig{Trials: 15, MaxProcs: 5, Seed: 8001}, func(trial int, in *sched.Instance) {
		if in.P() < 2 {
			return
		}
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, frac := range []float64{0, 0.3, 0.7} {
				f := Failure{Proc: rng.Intn(in.P()), Time: s.Makespan() * frac}
				r, err := Repair(s, f)
				if err != nil {
					t.Fatalf("trial %d %s frac %g: %v", trial, a.Name(), frac, err)
				}
				if err := r.Validate(); err != nil {
					t.Fatalf("trial %d %s frac %g: %v", trial, a.Name(), frac, err)
				}
				for _, c := range r.OnProc(f.Proc) {
					if c.Finish > f.Time+1e-9 {
						t.Fatalf("trial %d: work on failed proc past failure", trial)
					}
				}
			}
		}
	})
}

// TestRepairTransactionalSchedules pins the repair path against the
// transactional duplication schedulers: the schedules DSH/BTDH now build
// through speculative transactions must repair exactly like the
// clone-based reference schedules they replaced — same repaired digest at
// every failure point.
func TestRepairTransactionalSchedules(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 10, MaxProcs: 5, MaxTasks: 40, Seed: 8150}, func(trial int, in *sched.Instance) {
		if in.P() < 2 {
			return
		}
		pairs := []struct {
			name string
			txn  func(in *sched.Instance) (*sched.Schedule, error)
			ref  func(in *sched.Instance) *sched.Schedule
		}{
			{"DSH", dup.DSH{}.Schedule, testfix.RefDSH},
			{"BTDH", dup.BTDH{}.Schedule, testfix.RefBTDH},
		}
		for _, p := range pairs {
			got, err := p.txn(in)
			if err != nil {
				t.Fatal(err)
			}
			want := p.ref(in)
			for proc := 0; proc < in.P(); proc++ {
				for _, frac := range []float64{0, 0.5} {
					f := Failure{Proc: proc, Time: got.Makespan() * frac}
					rg, err := Repair(got, f)
					if err != nil {
						t.Fatalf("trial %d %s: %v", trial, p.name, err)
					}
					if err := rg.Validate(); err != nil {
						t.Fatalf("trial %d %s: repaired schedule invalid: %v", trial, p.name, err)
					}
					rw, err := Repair(want, f)
					if err != nil {
						t.Fatalf("trial %d %s ref: %v", trial, p.name, err)
					}
					if g, w := testfix.ScheduleDigest(rg), testfix.ScheduleDigest(rw); g != w {
						t.Fatalf("trial %d %s proc %d frac %g: repair of transactional schedule diverges from reference", trial, p.name, proc, frac)
					}
				}
			}
		}
	})
}
