package platform

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpanListEarliestFrom(t *testing.T) {
	sp := spanList{{2, 4}, {6, 9}}
	cases := []struct {
		t, dur, want float64
	}{
		{0, 1, 0},   // fits before the first span
		{0, 2, 0},   // exact fit before the first span
		{0, 3, 9},   // too long for any gap: after the last span
		{3, 1, 4},   // inside a busy span: bumped to its end
		{4, 2, 4},   // gap [4,6) exact fit
		{5, 2, 9},   // gap too small from 5
		{10, 5, 10}, // after everything
	}
	for _, c := range cases {
		if got := sp.earliestFrom(c.t, c.dur); got != c.want {
			t.Errorf("earliestFrom(%g,%g) = %g, want %g", c.t, c.dur, got, c.want)
		}
	}
}

func TestSpanListInsertOrderAndOverlapPanic(t *testing.T) {
	var sp spanList
	sp.insert(5, 7)
	sp.insert(0, 2)
	sp.insert(9, 10)
	if sp[0].s != 0 || sp[1].s != 5 || sp[2].s != 9 {
		t.Fatalf("not sorted: %v", sp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping insert did not panic")
		}
	}()
	sp.insert(6, 8)
}

func TestOnePortTransferStartAlternation(t *testing.T) {
	st := OnePort(Homogeneous(2, 0, 1)).NewState()
	// Sender busy [0,5), receiver busy [5,8).
	st.Reserve(0, 1, 0, 5)
	ls := st.(*linkState)
	ls.spans[2+1].remove(0, 5) // keep only the send-port half
	ls.spans[2+1].insert(5, 8) // receiver 1 busy [5,8) on its recv port
	// A 2-unit transfer ready at 0 must wait for 8 (send free at 5, but
	// recv blocks [5,8)).
	if got := st.TransferStart(0, 1, 0, 2); got != 8 {
		t.Fatalf("TransferStart = %g, want 8", got)
	}
}

func TestLinkStateMarkUndoClone(t *testing.T) {
	st := OnePort(Homogeneous(3, 0, 1)).NewState()
	st.Reserve(0, 1, 0, 4)
	m := st.Mark()
	st.Reserve(0, 2, 4, 3)
	st.Reserve(1, 2, 7, 2)

	cl := st.Clone()
	if cl.Mark() != 0 {
		t.Fatalf("clone journal baseline = %d, want 0", cl.Mark())
	}
	cl.Reserve(2, 0, 0, 1)
	cl.Undo(0)
	for i, b := range cl.Busy() {
		if b != st.Busy()[i] {
			t.Fatalf("clone Undo(0) diverged from clone point at resource %d", i)
		}
	}

	st.Undo(m)
	busy := st.Busy()
	want := make([]float64, 6)
	want[0], want[3+1] = 4, 4 // send port of 0 and recv port of 1
	for i := range busy {
		if busy[i] != want[i] {
			t.Fatalf("after Undo, Busy[%d] = %g, want %g", i, busy[i], want[i])
		}
	}
	// The freed span is reusable.
	if got := st.TransferStart(0, 2, 4, 3); got != 4 {
		t.Fatalf("TransferStart after undo = %g, want 4", got)
	}
}

func TestZeroDurationReserveIsIgnored(t *testing.T) {
	st := OnePort(Homogeneous(2, 0, 1)).NewState()
	st.Reserve(0, 1, 3, 0)
	if st.Mark() != 0 {
		t.Fatal("zero-duration reserve journaled")
	}
}

func TestContentionFreeModel(t *testing.T) {
	sys := Homogeneous(4, 0.5, 2)
	m := ContentionFree(sys)
	if m.Kind() != KindContentionFree {
		t.Fatalf("kind = %q", m.Kind())
	}
	if m.NewState() != nil {
		t.Fatal("contention-free model has a state")
	}
	if m.Cost(0, 1, 10) != sys.CommCost(0, 1, 10) || m.MeanCost(10) != sys.MeanCommCost(10) {
		t.Fatal("costs diverge from the system matrices")
	}
}

func TestOnePortCostsMatchSystem(t *testing.T) {
	sys := MustNew(Config{
		Speeds:        []float64{1, 1},
		StartupMatrix: [][]float64{{0, 1}, {2, 0}},
		InvRateMatrix: [][]float64{{0, 3}, {4, 0}},
	})
	m := OnePort(sys)
	if m.Kind() != KindOnePort {
		t.Fatalf("kind = %q", m.Kind())
	}
	for p := 0; p < 2; p++ {
		for q := 0; q < 2; q++ {
			if m.Cost(p, q, 5) != sys.CommCost(p, q, 5) {
				t.Fatalf("Cost(%d,%d) diverges", p, q)
			}
		}
	}
	if m.MeanCost(5) != sys.MeanCommCost(5) {
		t.Fatal("MeanCost diverges")
	}
}

func TestSharedLinkCostAndRouting(t *testing.T) {
	sys := Homogeneous(4, 1, 2)
	// Procs 0,1 on bus 0 (bandwidth 2), procs 2,3 on bus 1 (bandwidth 0.5).
	m, err := NewSharedLink(sys, SharedLinkConfig{
		ProcLink:  []int{0, 0, 1, 1},
		Bandwidth: []float64{2, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != KindSharedLink {
		t.Fatalf("kind = %q", m.Kind())
	}
	if got := m.Cost(0, 0, 10); got != 0 {
		t.Fatalf("local cost = %g", got)
	}
	// Same bus: startup 1 + 10·2/2.
	if got := m.Cost(0, 1, 10); got != 11 {
		t.Fatalf("same-bus cost = %g, want 11", got)
	}
	// Cross-bus: bottleneck bandwidth 0.5 → startup 1 + 10·2/0.5.
	if got := m.Cost(0, 2, 10); got != 41 {
		t.Fatalf("cross-bus cost = %g, want 41", got)
	}

	st := m.NewState()
	// A same-bus transfer occupies one resource once (no double booking).
	st.Reserve(0, 1, 0, 5)
	if got := st.Busy()[0]; got != 5 {
		t.Fatalf("bus 0 busy %g, want 5", got)
	}
	if st.Mark() != 1 {
		t.Fatalf("same-bus reserve journaled %d entries, want 1", st.Mark())
	}
	// Transfers between the buses serialize on both.
	st.Reserve(2, 0, 5, 4)
	if got := st.TransferStart(1, 3, 0, 2); got != 9 {
		t.Fatalf("cross-bus TransferStart = %g, want 9", got)
	}
	// Bus 1 is free before 5: a bus-1-local transfer fits at 0.
	if got := st.TransferStart(2, 3, 0, 2); got != 0 {
		t.Fatalf("bus-1 TransferStart = %g, want 0", got)
	}
}

func TestSharedLinkDefaultsToSingleBus(t *testing.T) {
	sys := Homogeneous(3, 0, 1)
	m, err := NewSharedLink(sys, SharedLinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost(0, 1, 7) != sys.CommCost(0, 1, 7) {
		t.Fatal("unit-bandwidth bus cost diverges from the matrices")
	}
	st := m.NewState()
	st.Reserve(0, 1, 0, 3)
	// Everything shares the one bus.
	if got := st.TransferStart(1, 2, 0, 2); got != 3 {
		t.Fatalf("TransferStart = %g, want 3", got)
	}
}

func TestSharedLinkValidation(t *testing.T) {
	sys := Homogeneous(2, 0, 1)
	if _, err := NewSharedLink(sys, SharedLinkConfig{ProcLink: []int{0}}); err == nil {
		t.Fatal("short proc-link map accepted")
	}
	if _, err := NewSharedLink(sys, SharedLinkConfig{ProcLink: []int{0, -1}}); err == nil {
		t.Fatal("negative link accepted")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSharedLink(sys, SharedLinkConfig{Bandwidth: []float64{bad}}); err == nil {
			t.Fatalf("bandwidth %g accepted", bad)
		}
	}
}

func TestModelByKind(t *testing.T) {
	sys := Homogeneous(2, 0, 1)
	for _, kind := range append(ModelKinds(), "") {
		m, err := ModelByKind(kind, sys)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		want := kind
		if want == "" {
			want = KindContentionFree
		}
		if m.Kind() != want {
			t.Fatalf("ModelByKind(%q).Kind() = %q", kind, m.Kind())
		}
	}
	if _, err := ModelByKind("token-ring", sys); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Adding link-spread knobs must not disturb the draw sequence of configs
// that leave them zero: pre-existing seeds reproduce their old systems.
func TestGenerateSpreadZeroBitIdentical(t *testing.T) {
	cfg := GenConfig{Procs: 6, SpeedHeterogeneity: 1.0, Latency: 0.5, TimePerUnit: 2}
	s1, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	r2 := rand.New(rand.NewSource(42))
	speeds := make([]float64, 6)
	for i := range speeds {
		speeds[i] = 1 + 1.0*(r2.Float64()-0.5)
	}
	for p := 0; p < 6; p++ {
		if s1.Speed(p) != speeds[p] {
			t.Fatal("speed draw order changed")
		}
		for q := 0; q < 6; q++ {
			if p != q && (s1.Startup(p, q) != 0.5 || s1.InvRate(p, q) != 2) {
				t.Fatalf("link %d->%d not uniform: %g/%g", p, q, s1.Startup(p, q), s1.InvRate(p, q))
			}
		}
	}
}

func TestGenerateLinkSpread(t *testing.T) {
	cfg := GenConfig{
		Procs: 8, Latency: 1, TimePerUnit: 2,
		StartupSpread: 1.0, LinkSpread: 1.5,
	}
	s, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	first := s.InvRate(0, 1)
	for p := 0; p < 8; p++ {
		for q := 0; q < 8; q++ {
			if p == q {
				if s.Startup(p, q) != 0 || s.InvRate(p, q) != 0 {
					t.Fatal("diagonal not zero")
				}
				continue
			}
			su, ir := s.Startup(p, q), s.InvRate(p, q)
			if su < 1*0.5-1e-12 || su > 1*1.5+1e-12 {
				t.Fatalf("startup %g outside spread range", su)
			}
			if ir < 2*0.25-1e-12 || ir > 2*1.75+1e-12 {
				t.Fatalf("inv-rate %g outside spread range", ir)
			}
			if ir != first {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("link spread produced uniform links")
	}
	// Deterministic per seed.
	s2, _ := Generate(cfg, rand.New(rand.NewSource(9)))
	for p := 0; p < 8; p++ {
		for q := 0; q < 8; q++ {
			if s.Startup(p, q) != s2.Startup(p, q) || s.InvRate(p, q) != s2.InvRate(p, q) {
				t.Fatal("spread draws not deterministic")
			}
		}
	}
}

func TestGenerateSpreadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(GenConfig{Procs: 2, StartupSpread: 2}, rng); err == nil {
		t.Fatal("startup spread 2 accepted")
	}
	if _, err := Generate(GenConfig{Procs: 2, LinkSpread: -0.1}, rng); err == nil {
		t.Fatal("negative link spread accepted")
	}
}
