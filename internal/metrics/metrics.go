// Package metrics computes the evaluation measures of the static-
// scheduling literature — schedule length ratio (SLR), speedup,
// efficiency — plus summary statistics and the pairwise win/tie/loss
// comparison used in the experiment tables.
package metrics

import (
	"fmt"
	"math"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/sched"
)

// SLR returns the schedule length ratio: makespan divided by the sum of
// minimum execution costs along the critical path (the standard lower
// bound). SLR >= 1 always; smaller is better.
func SLR(s *sched.Schedule) float64 {
	lb := s.Instance().CPMin()
	if lb == 0 {
		return 1
	}
	return s.Makespan() / lb
}

// Speedup returns the ratio of the best single-processor execution time to
// the schedule's makespan.
func Speedup(s *sched.Schedule) float64 {
	if s.Makespan() == 0 {
		return 1
	}
	return s.Instance().SeqTime() / s.Makespan()
}

// Efficiency returns Speedup divided by the processor count.
func Efficiency(s *sched.Schedule) float64 {
	return Speedup(s) / float64(s.Instance().P())
}

// Result bundles the measures of one algorithm run.
type Result struct {
	Algorithm  string
	Makespan   float64
	SLR        float64
	Speedup    float64
	Efficiency float64
	Duplicates int
	RunTime    time.Duration
}

// Evaluate runs the algorithm on the instance, validates the schedule and
// returns its measures.
func Evaluate(a algo.Algorithm, in *sched.Instance) (Result, error) {
	start := time.Now()
	s, err := a.Schedule(in)
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("metrics: %s failed: %w", a.Name(), err)
	}
	if err := s.Validate(); err != nil {
		return Result{}, fmt.Errorf("metrics: %s produced an invalid schedule: %w", a.Name(), err)
	}
	return Result{
		Algorithm:  a.Name(),
		Makespan:   s.Makespan(),
		SLR:        SLR(s),
		Speedup:    Speedup(s),
		Efficiency: Efficiency(s),
		Duplicates: s.NumDuplicates(),
		RunTime:    elapsed,
	}, nil
}

// Accumulator collects a stream of float64 samples and reports summary
// statistics. The zero value is ready to use.
type Accumulator struct {
	n    int
	sum  float64
	sum2 float64
	min  float64
	max  float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sum2 += x * x
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// StdDev returns the sample standard deviation (n−1 denominator; 0 for
// fewer than two samples).
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.sum2 - float64(a.n)*m*m) / float64(a.n-1)
	if v < 0 {
		v = 0 // floating-point dust on constant streams
	}
	return math.Sqrt(v)
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest sample. With no samples it returns 0, which
// is indistinguishable from a true 0 sample — callers that render or
// serialize extremes must check N() > 0 first (see experiment.fmtMean
// and service.statsJSON) rather than print a misleading 0.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample; the empty-stream caveat of Min
// applies identically.
func (a *Accumulator) Max() float64 { return a.max }
