package listsched

import (
	"math"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// PETS is the Performance Effective Task Scheduling algorithm of
// Ilavarasan and Thambidurai (2007, contemporaneous with this paper):
// tasks are grouped into topological levels; within a level the priority
// is rank(t) = ACC(t) + DTC(t) + RPT(t), where ACC is the mean
// computation cost, DTC the total data-transfer cost to all children
// (mean over processor pairs) and RPT the highest rank among the task's
// parents; levels are scheduled in order, each task on its insertion-EFT
// processor.
type PETS struct{}

// Name implements algo.Algorithm.
func (PETS) Name() string { return "PETS" }

// Schedule implements algo.Algorithm.
func (PETS) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	levels := in.G.Levels()
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	// rank = ACC + DTC + RPT, computed in topological order (parents
	// before children).
	rank := make([]float64, in.N())
	for _, v := range in.G.TopoOrder() {
		acc := in.MeanCost(v)
		dtc := 0.0
		for j := range in.G.Succ(v) {
			dtc += in.MeanCommSucc(v, j)
		}
		rpt := 0.0
		for _, p := range in.G.Pred(v) {
			if rank[p.To] > rpt {
				rpt = rank[p.To]
			}
		}
		rank[v] = math.Round(acc + dtc + rpt)
	}
	byLevel := make([][]dag.TaskID, maxLevel+1)
	for i := 0; i < in.N(); i++ {
		byLevel[levels[i]] = append(byLevel[levels[i]], dag.TaskID(i))
	}
	pl := sched.NewPlan(in)
	for _, level := range byLevel {
		order := append([]dag.TaskID(nil), level...)
		// Decreasing rank within the level; ids break ties.
		for i := 1; i < len(order); i++ {
			v := order[i]
			j := i - 1
			for j >= 0 && (rank[order[j]] < rank[v] || (rank[order[j]] == rank[v] && order[j] > v)) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = v
		}
		for _, t := range order {
			p, s, _ := pl.BestEFT(t, true)
			pl.Place(t, p, s)
		}
	}
	return pl.Finalize("PETS"), nil
}
