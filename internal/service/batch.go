package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
)

// handleBatch serves POST /v1/schedule/batch: many scheduling queries
// in one request, fanned out across the worker pool. Each item runs
// under its own deadline (its timeoutMs, or the server default) with
// partial-failure semantics — the batch answers 200 with per-item
// statuses as long as the envelope itself was well-formed — and the
// results array preserves request order. Items enqueue blocking (the
// queue backpressures a large batch instead of 503ing its tail), go
// through the same tiered cache as single requests (local LRU, then
// the owning peer's cache, then compute), and coalesce with concurrent
// identical work.
//
// With "Accept: application/x-ndjson" the response streams instead:
// one BatchItemResult JSON line per item in completion order, flushed
// as each item finishes (a fast item is delivered while slow siblings
// still run), closed by a summary line {"succeeded":N,"failed":M}.
// Index identifies each result's request item.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	n := len(breq.Items)
	if n == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if n > s.opts.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "batch of %d items exceeds the %d-item limit", n, s.opts.MaxBatchItems)
		return
	}
	s.met.ObserveBatch(n)
	reqID, _ := r.Context().Value(reqIDKey{}).(string)
	if wantsNDJSON(r) {
		s.streamBatch(w, r, reqID, breq.Items)
		return
	}
	results := make([]BatchItemResult, n)
	var wg sync.WaitGroup
	for i := range breq.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.runBatchItem(r, reqID, i, &breq.Items[i])
		}(i)
	}
	wg.Wait()
	out := BatchResponse{Items: results}
	for i := range results {
		if results[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// wantsNDJSON reports whether the request opted into streamed NDJSON
// results.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamBatch fans the items out like the buffered path but writes
// each result as soon as it completes: one JSON line per item, flushed
// per line, then a summary trailer. The 200 status commits before the
// first item finishes, so per-item failures are in-band (Status/Error
// on the item line), exactly as in the buffered response body.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, reqID string, items []ScheduleRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	results := make(chan BatchItemResult)
	for i := range items {
		go func(i int) {
			results <- s.runBatchItem(r, reqID, i, &items[i])
		}(i)
	}
	enc := json.NewEncoder(w)
	var succeeded, failed int
	for range items {
		res := <-results
		if res.Status == http.StatusOK {
			succeeded++
		} else {
			failed++
		}
		if err := enc.Encode(res); err != nil {
			// The client went away; drain the remaining goroutines and
			// stop writing.
			continue
		}
		_ = rc.Flush()
	}
	_ = enc.Encode(struct {
		Succeeded int `json:"succeeded"`
		Failed    int `json:"failed"`
	}{succeeded, failed})
	_ = rc.Flush()
}

// runBatchItem resolves and schedules one batch item, mapping its
// outcome to the status a single request would have received. Items
// run on their own goroutines outside the instrument middleware, so
// panics are contained here — one poisoned item answers a per-item 500
// while its siblings complete.
func (s *Server) runBatchItem(r *http.Request, reqID string, i int, item *ScheduleRequest) (res BatchItemResult) {
	res.Index = i
	itemID := fmt.Sprintf("%s#%d", reqID, i)
	defer func() {
		if p := recover(); p != nil {
			s.met.ObservePanic()
			log.Printf("service: panic in batch item %s: %v\n%s", itemID, p, debug.Stack())
			res = BatchItemResult{Index: i, Status: http.StatusInternalServerError,
				Error: fmt.Sprintf("internal error (request %s)", itemID)}
		}
	}()
	a, in, err := s.resolveRequest(item)
	if err != nil {
		res.Status, res.Error = http.StatusBadRequest, err.Error()
		return res
	}
	key, err := cacheKey(in, item.Algorithm, item.Analyze, item.LinkBandwidth, item.Faults)
	if err != nil {
		res.Status, res.Error = http.StatusInternalServerError, err.Error()
		return res
	}
	timeout := s.timeoutFor(item.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	low, _ := lowPriority(item.Priority) // validated by resolveRequest
	resp, err := s.scheduleLocal(ctx, itemID, parsedItem{
		alg: a, in: in, analyze: item.Analyze, faults: item.Faults, key: key, lowPrio: low,
	}, true, true)
	if err != nil {
		res.Status, res.Error = s.statusFor(err, timeout)
		return res
	}
	res.Status, res.Response = http.StatusOK, resp
	return res
}
