package algo

import (
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// DefaultDirtyFraction is the share of the graph a rank repair may
// recompute before abandoning the dirty-set walk for the full level-set
// kernel. Past this point the repair's heap bookkeeping costs more than
// the flat sweep it avoids.
const DefaultDirtyFraction = 0.25

// RankTracker maintains HEFT upward ranks (sched.RankUpward) across
// graph growth. After a batch of appends it repairs only the dirty set —
// the new tasks, the tails of new arcs, and the ancestors a changed rank
// propagates to — instead of re-sweeping the whole graph.
//
// The repair is bit-identical to a full sched.RankUpward on the grown
// instance: dirty tasks are recomputed in decreasing topological
// position (all successors final before a task is evaluated) with the
// exact float expression of the full kernel, and propagation stops at
// any task whose recomputed rank equals its old value bit-for-bit —
// its predecessors' inputs are unchanged, so their full-sweep values
// are too.
type RankTracker struct {
	ranks []float64

	// Last-update statistics, for deltas and benchmarks.
	Repaired int  // tasks recomputed by the dirty-set walk
	Full     bool // whether the update fell back to the full kernel

	heap rankHeap
	inQ  []bool
}

// NewRankTracker returns an empty tracker; the first Update initializes
// it (and necessarily runs the full kernel — everything is new).
func NewRankTracker() *RankTracker { return &RankTracker{} }

// Ranks returns the maintained rank slice, indexed by task id. The
// tracker owns it; callers must not modify or retain it across Updates.
func (rt *RankTracker) Ranks() []float64 { return rt.ranks }

// Update repairs the ranks after in's graph grew. oldN is the task count
// at the previous Update (0 initially); newEdges are the arcs appended
// since, including arcs incident to new tasks. pos must hold a valid
// topological position per task of the grown graph (dag.Appendable's
// maintained Positions, for a streaming caller). dirtyFrac bounds the
// dirty-set walk as a fraction of n; <= 0 selects DefaultDirtyFraction,
// >= 1 disables the fallback.
func (rt *RankTracker) Update(in *sched.Instance, oldN int, newEdges []dag.Edge, pos []int, dirtyFrac float64) {
	n := in.N()
	if dirtyFrac <= 0 {
		dirtyFrac = DefaultDirtyFraction
	}
	budget := n
	if dirtyFrac < 1 {
		budget = int(dirtyFrac * float64(n))
	}

	for len(rt.ranks) < n {
		rt.ranks = append(rt.ranks, 0)
		rt.inQ = append(rt.inQ, false)
	}
	rt.heap.reset(pos)
	// Seed the dirty set: new tasks need a first value; the tail of a new
	// arc gained a successor term. The head's own rank is unaffected.
	for v := oldN; v < n; v++ {
		rt.push(dag.TaskID(v))
	}
	for _, e := range newEdges {
		rt.push(e.From)
	}

	if rt.heap.len() > budget {
		rt.fallback(in)
		return
	}

	rt.Repaired, rt.Full = 0, false
	for rt.heap.len() > 0 {
		if rt.Repaired >= budget {
			rt.fallback(in)
			return
		}
		v := rt.heap.pop()
		rt.inQ[v] = false
		old := rt.ranks[v]
		// The exact expression of sched.RankUpward's inner loop, successors
		// in CSR adjacency order.
		best := 0.0
		for j, a := range in.G.Succ(v) {
			if cand := in.MeanCommSucc(v, j) + rt.ranks[a.To]; cand > best {
				best = cand
			}
		}
		nv := in.MeanCost(v) + best
		rt.Repaired++
		if int(v) < oldN && nv == old {
			continue // bit-equal: predecessors see unchanged inputs
		}
		rt.ranks[v] = nv
		for _, p := range in.G.Pred(v) {
			rt.push(p.To)
		}
	}
}

// fallback abandons the dirty walk for the full level-set kernel.
func (rt *RankTracker) fallback(in *sched.Instance) {
	for rt.heap.len() > 0 {
		rt.inQ[rt.heap.pop()] = false
	}
	full := sched.RankUpward(in)
	copy(rt.ranks, full)
	rt.Repaired, rt.Full = in.N(), true
}

func (rt *RankTracker) push(v dag.TaskID) {
	if !rt.inQ[v] {
		rt.inQ[v] = true
		rt.heap.push(v)
	}
}

// rankHeap is a max-heap of task ids keyed by topological position:
// popping yields the task latest in the order, so all its (possibly
// dirty) successors were already finalized.
type rankHeap struct {
	pos   []int
	items []dag.TaskID
}

func (h *rankHeap) reset(pos []int) {
	h.pos = pos
	h.items = h.items[:0]
}

func (h *rankHeap) len() int { return len(h.items) }

func (h *rankHeap) push(v dag.TaskID) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.pos[h.items[parent]] >= h.pos[h.items[i]] {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *rankHeap) pop() dag.TaskID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.items) && h.pos[h.items[l]] > h.pos[h.items[big]] {
			big = l
		}
		if r < len(h.items) && h.pos[h.items[r]] > h.pos[h.items[big]] {
			big = r
		}
		if big == i {
			return top
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}
