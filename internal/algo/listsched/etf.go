package listsched

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// ETF is the Earliest Time First algorithm of Hwang, Chow, Anger and Lee
// (SIAM J. Comput. 1989): at each step, among all ready tasks and all
// processors, schedule the pair with the smallest earliest start time,
// breaking ties by the higher static level. Non-insertion, per the
// original definition.
type ETF struct{}

// Name implements algo.Algorithm.
func (ETF) Name() string { return "ETF" }

// Schedule implements algo.Algorithm.
func (ETF) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		bestStart := math.Inf(1)
		var bestTask dag.TaskID = -1
		bestProc := 0
		for _, t := range rl.Ready() {
			for p := 0; p < in.P(); p++ {
				start, _ := pl.EFTOn(t, p, false)
				better := start < bestStart ||
					(start == bestStart && bestTask != -1 && sl[t] > sl[bestTask])
				if better {
					bestStart, bestTask, bestProc = start, t, p
				}
			}
		}
		pl.Place(bestTask, bestProc, bestStart)
		rl.Complete(bestTask)
	}
	return pl.Finalize("ETF"), nil
}
