package platform

import (
	"fmt"
	"math"
	"sort"
)

// Model kinds accepted by ModelByKind and reported by CommModel.Kind.
const (
	KindContentionFree = "contention-free"
	KindOnePort        = "one-port"
	KindSharedLink     = "shared-link"
)

// CommModel is the pluggable communication-cost model consulted by the
// scheduling substrate, the simulator and the service. A model answers two
// orthogonal questions: how long a transfer takes on an otherwise idle
// network (Cost/MeanCost), and which network resources it occupies while
// in flight (NewState). The classic contention-free model of the paper is
// the zero case: costs come straight from the System matrices and
// NewState returns nil — no resource ever serializes.
type CommModel interface {
	// Kind returns the model's registry name (one of the Kind* constants).
	Kind() string
	// Cost returns the idle-network transfer time of data units from
	// processor from to processor to; 0 when from == to.
	Cost(from, to int, data float64) float64
	// MeanCost averages Cost over all ordered distinct processor pairs —
	// the c̄ consumed by rank computations. 0 with fewer than 2 processors.
	MeanCost(data float64) float64
	// NewState returns a fresh reservation state for one scheduling or
	// replay run, or nil when the model has no contended resources.
	NewState() CommState
}

// CommState tracks the busy intervals of a model's contended resources
// while a schedule is built or replayed. Reservations are journaled:
// Mark/Undo rewind them exactly, which is what lets speculative
// transactions (sched.Txn) trial contention-aware placements and roll
// them back bit-for-bit (DESIGN.md invariant 8).
//
// A CommState is not safe for concurrent mutation; concurrent trials each
// Clone the frozen base state instead. TransferStart is a pure query and
// may be called concurrently with other queries.
type CommState interface {
	// TransferStart returns the earliest time >= ready at which a transfer
	// of the given duration can hold every resource on the from→to route
	// simultaneously. It reserves nothing.
	TransferStart(from, to int, ready, dur float64) float64
	// Reserve commits a transfer on every resource of the from→to route.
	// Reservations with dur <= 0 are ignored. Overlapping a prior
	// reservation panics: callers must reserve only starts obtained from
	// TransferStart against the current state.
	Reserve(from, to int, start, dur float64)
	// Mark returns the journal position; Undo(m) removes every reservation
	// made after Mark returned m, in LIFO order.
	Mark() int
	Undo(mark int)
	// Clone returns an independent deep copy whose journal baseline is the
	// clone point: Undo(0) on the clone restores exactly this state.
	Clone() CommState
	// Busy returns the total reserved time per resource (resource indexing
	// is model-specific; the one-port model uses send ports 0..P-1 then
	// receive ports P..2P-1).
	Busy() []float64
}

// ModelKinds lists the registered model kinds in presentation order.
func ModelKinds() []string {
	return []string{KindContentionFree, KindOnePort, KindSharedLink}
}

// ModelByKind builds the named model with its default configuration over
// sys. The empty kind means contention-free; shared-link defaults to a
// single unit-bandwidth bus shared by every processor (use NewSharedLink
// for custom topologies).
func ModelByKind(kind string, sys *System) (CommModel, error) {
	switch kind {
	case "", KindContentionFree:
		return ContentionFree(sys), nil
	case KindOnePort:
		return OnePort(sys), nil
	case KindSharedLink:
		return NewSharedLink(sys, SharedLinkConfig{})
	default:
		return nil, fmt.Errorf("platform: unknown comm model %q (have %v)", kind, ModelKinds())
	}
}

// ContentionFree returns the classic fully connected contention-free
// model: costs are the System matrices and transfers never serialize.
func ContentionFree(sys *System) CommModel { return contentionFree{sys} }

type contentionFree struct{ sys *System }

func (m contentionFree) Kind() string                         { return KindContentionFree }
func (m contentionFree) Cost(from, to int, data float64) float64 { return m.sys.CommCost(from, to, data) }
func (m contentionFree) MeanCost(data float64) float64        { return m.sys.MeanCommCost(data) }
func (m contentionFree) NewState() CommState                  { return nil }

// OnePort returns the one-port contention model in the spirit of Sinnen
// and Sousa: idle-network costs equal the contention-free matrices, but
// every processor has a single send port and a single receive port and
// inter-processor transfers serialize on both.
func OnePort(sys *System) CommModel { return onePort{sys} }

type onePort struct{ sys *System }

func (m onePort) Kind() string                            { return KindOnePort }
func (m onePort) Cost(from, to int, data float64) float64 { return m.sys.CommCost(from, to, data) }
func (m onePort) MeanCost(data float64) float64           { return m.sys.MeanCommCost(data) }

func (m onePort) NewState() CommState {
	p := m.sys.Len()
	return &linkState{
		spans: make([]spanList, 2*p),
		route: func(from, to int) (int, int) { return from, p + to },
	}
}

// SharedLinkConfig describes a bus topology for NewSharedLink.
type SharedLinkConfig struct {
	// ProcLink[p] is the link (bus) processor p attaches to. Nil attaches
	// every processor to link 0: one bus shared by the whole system.
	ProcLink []int
	// Bandwidth[l] is the relative bandwidth of link l; missing entries
	// default to 1. The data term of a transfer is divided by the smallest
	// bandwidth on its route (startup is unaffected).
	Bandwidth []float64
}

// NewSharedLink builds the shared-link topology model: processors attach
// to buses, a transfer occupies every bus on its route (source's and
// destination's, one bus when they share it) for its whole duration, and
// per-link bandwidth rescales the data term of the cost.
func NewSharedLink(sys *System, cfg SharedLinkConfig) (CommModel, error) {
	p := sys.Len()
	link := cfg.ProcLink
	if link == nil {
		link = make([]int, p)
	}
	if len(link) != p {
		return nil, fmt.Errorf("platform: proc-link map has %d entries, want %d", len(link), p)
	}
	links := len(cfg.Bandwidth)
	for i, l := range link {
		if l < 0 {
			return nil, fmt.Errorf("platform: processor %d on negative link %d", i, l)
		}
		if l+1 > links {
			links = l + 1
		}
	}
	bw := make([]float64, links)
	for l := range bw {
		bw[l] = 1
	}
	for l, b := range cfg.Bandwidth {
		if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("platform: link %d has invalid bandwidth %g", l, b)
		}
		bw[l] = b
	}
	return &sharedLink{sys: sys, link: append([]int(nil), link...), bw: bw}, nil
}

type sharedLink struct {
	sys  *System
	link []int     // link id per processor
	bw   []float64 // bandwidth per link
}

func (m *sharedLink) Kind() string { return KindSharedLink }

func (m *sharedLink) Cost(from, to int, data float64) float64 {
	if from == to {
		return 0
	}
	bw := m.bw[m.link[from]]
	if b := m.bw[m.link[to]]; b < bw {
		bw = b
	}
	return m.sys.Startup(from, to) + data*m.sys.InvRate(from, to)/bw
}

func (m *sharedLink) MeanCost(data float64) float64 {
	p := m.sys.Len()
	if p < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				sum += m.Cost(i, j, data)
			}
		}
	}
	return sum / float64(p*(p-1))
}

func (m *sharedLink) NewState() CommState {
	link := m.link
	return &linkState{
		spans: make([]spanList, len(m.bw)),
		route: func(from, to int) (int, int) {
			a, b := link[from], link[to]
			if a == b {
				return a, -1
			}
			return a, b
		},
	}
}

// spanList is a sorted list of disjoint busy intervals on one resource.
type spanList []span

type span struct{ s, e float64 }

const spanEps = 1e-9

// earliestFrom returns the earliest start >= t at which an interval of
// length dur fits between the busy spans.
func (sp spanList) earliestFrom(t, dur float64) float64 {
	for _, iv := range sp {
		if t+dur <= iv.s+spanEps {
			return t
		}
		if iv.e > t {
			t = iv.e
		}
	}
	return t
}

// insert adds [s, e) keeping the list sorted. Overlaps indicate a caller
// bug and panic.
func (sp *spanList) insert(s, e float64) {
	list := *sp
	k := len(list)
	for k > 0 && list[k-1].s > s {
		k--
	}
	if k > 0 && list[k-1].e > s+spanEps {
		panic("platform: overlapping link reservation")
	}
	if k < len(list) && e > list[k].s+spanEps {
		panic("platform: overlapping link reservation")
	}
	list = append(list, span{})
	copy(list[k+1:], list[k:])
	list[k] = span{s, e}
	*sp = list
}

// remove deletes the exact span [s, e); it panics when absent, which only
// an out-of-order Undo could cause.
func (sp *spanList) remove(s, e float64) {
	list := *sp
	k := sort.Search(len(list), func(i int) bool { return list[i].s >= s })
	if k == len(list) || list[k].s != s || list[k].e != e {
		panic("platform: undo of unknown link reservation")
	}
	*sp = append(list[:k], list[k+1:]...)
}

// linkState is the shared reservation engine behind every contended
// model: a busy-span list per resource and a route function mapping a
// processor pair to the (at most two) resources its transfers occupy.
type linkState struct {
	spans []spanList
	route func(from, to int) (int, int) // second resource -1 when absent
	log   []resSpan                     // journal for Mark/Undo
}

type resSpan struct {
	res  int
	s, e float64
}

// TransferStart alternates between the route's resources until a start
// fits both; each iteration advances t past a busy span, so it converges
// to the earliest feasible start.
func (st *linkState) TransferStart(from, to int, ready, dur float64) float64 {
	a, b := st.route(from, to)
	t := ready
	for {
		t1 := st.spans[a].earliestFrom(t, dur)
		if b < 0 {
			return t1
		}
		t2 := st.spans[b].earliestFrom(t1, dur)
		if t2 == t1 {
			return t1
		}
		t = t2
	}
}

func (st *linkState) Reserve(from, to int, start, dur float64) {
	if dur <= 0 {
		return
	}
	a, b := st.route(from, to)
	st.spans[a].insert(start, start+dur)
	st.log = append(st.log, resSpan{a, start, start + dur})
	if b >= 0 {
		st.spans[b].insert(start, start+dur)
		st.log = append(st.log, resSpan{b, start, start + dur})
	}
}

func (st *linkState) Mark() int { return len(st.log) }

func (st *linkState) Undo(mark int) {
	for len(st.log) > mark {
		r := st.log[len(st.log)-1]
		st.log = st.log[:len(st.log)-1]
		st.spans[r.res].remove(r.s, r.e)
	}
}

func (st *linkState) Clone() CommState {
	cp := &linkState{spans: make([]spanList, len(st.spans)), route: st.route}
	for i := range st.spans {
		if len(st.spans[i]) > 0 {
			cp.spans[i] = append(spanList(nil), st.spans[i]...)
		}
	}
	return cp
}

func (st *linkState) Busy() []float64 {
	out := make([]float64, len(st.spans))
	for i, sp := range st.spans {
		for _, iv := range sp {
			out[i] += iv.e - iv.s
		}
	}
	return out
}
