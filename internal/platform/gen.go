package platform

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes random system generation for experiments.
type GenConfig struct {
	// Procs is the processor count (required, >= 1).
	Procs int
	// SpeedHeterogeneity spreads processor speeds uniformly over
	// [1-h/2, 1+h/2]; 0 yields a homogeneous unit-speed system. Must lie
	// in [0, 2).
	SpeedHeterogeneity float64
	// Latency and TimePerUnit configure every link, as in Config.
	Latency     float64
	TimePerUnit float64
	// StartupSpread makes startup latencies link-heterogeneous: each
	// directed link's startup is drawn uniformly from
	// Latency·[1−s/2, 1+s/2] (mean Latency). Must lie in [0, 2); 0 keeps
	// the uniform latency and draws nothing from rng.
	StartupSpread float64
	// LinkSpread does the same for transfer rates: each directed link's
	// time-per-unit is drawn uniformly from TimePerUnit·[1−s/2, 1+s/2].
	// Must lie in [0, 2); 0 keeps uniform links and draws nothing.
	LinkSpread float64
}

// Generate draws a System from cfg using rng. The draw is deterministic
// for a fixed seed: speeds first, then the startup matrix rows, then the
// inverse-rate rows; a zero spread skips its draws entirely, so configs
// that only set the pre-existing knobs reproduce their old systems
// bit-for-bit.
func Generate(cfg GenConfig, rng *rand.Rand) (*System, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("platform: invalid processor count %d", cfg.Procs)
	}
	if cfg.SpeedHeterogeneity < 0 || cfg.SpeedHeterogeneity >= 2 {
		return nil, fmt.Errorf("platform: speed heterogeneity %g out of [0,2)", cfg.SpeedHeterogeneity)
	}
	if cfg.StartupSpread < 0 || cfg.StartupSpread >= 2 {
		return nil, fmt.Errorf("platform: startup spread %g out of [0,2)", cfg.StartupSpread)
	}
	if cfg.LinkSpread < 0 || cfg.LinkSpread >= 2 {
		return nil, fmt.Errorf("platform: link spread %g out of [0,2)", cfg.LinkSpread)
	}
	speeds := make([]float64, cfg.Procs)
	for i := range speeds {
		if cfg.SpeedHeterogeneity == 0 {
			speeds[i] = 1
		} else {
			speeds[i] = 1 + cfg.SpeedHeterogeneity*(rng.Float64()-0.5)
		}
	}
	c := Config{Speeds: speeds, Latency: cfg.Latency, TimePerUnit: cfg.TimePerUnit}
	c.StartupMatrix = spreadMatrix(cfg.Procs, cfg.Latency, cfg.StartupSpread, rng)
	c.InvRateMatrix = spreadMatrix(cfg.Procs, cfg.TimePerUnit, cfg.LinkSpread, rng)
	return New(c)
}

// spreadMatrix draws a per-pair matrix with mean value and the given
// relative spread, or nil when spread is 0 (consuming nothing from rng).
func spreadMatrix(p int, value, spread float64, rng *rand.Rand) [][]float64 {
	if spread == 0 {
		return nil
	}
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
		for j := range m[i] {
			if i != j {
				m[i][j] = value * (1 + spread*(rng.Float64()-0.5))
			}
		}
	}
	return m
}
