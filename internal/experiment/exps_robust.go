package experiment

import (
	"fmt"
	"math/rand"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/resched"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
)

// E21 — fault robustness: how do static schedules survive fail-stop
// processor crashes? For each crash rate the table reports, per
// algorithm, the fraction of sampled fault plans the unrepaired
// schedule completes on its own (duplicates are the only passive
// protection), then the expected repaired stretch under each reactive
// repair policy — the price of surviving the faults the schedule could
// not absorb. A second table reports the schedules' makespan slack, the
// fault-independent headroom that predicts passive survival.
func E21() Experiment {
	return Experiment{ID: "E21", Title: "Fault robustness: completion and repaired degradation under crash rates", Run: func(cfg Config) ([]*Table, error) {
		algs := []algo.Algorithm{
			core.New(),
			listsched.HEFT{},
			dup.DSH{},
			dup.BTDH{},
		}
		pols := resched.Policies()
		reps := cfg.reps(10)
		samples := 10
		if cfg.Quick {
			samples = 4
		}
		rates := cfg.FaultRates
		if len(rates) == 0 {
			rates = []float64{0.15, 0.4}
			if cfg.Quick {
				rates = []float64{0.4}
			}
		}

		t1 := &Table{ID: "E21a", Title: "Crash robustness: unrepaired completion rate and repaired stretch (n=60, P=8, CCR=1, β=1)",
			Columns: append([]string{"measure"}, names(algs)...)}
		t2 := &Table{ID: "E21b", Title: "Makespan slack (fault-independent headroom)",
			Columns: append([]string{"measure"}, names(algs)...)}

		slackAccs := make([]*metrics.Accumulator, len(algs))
		for i := range slackAccs {
			slackAccs[i] = &metrics.Accumulator{}
		}
		for ri, rate := range rates {
			rate := rate
			lastRate := ri == len(rates)-1
			// Per repetition and algorithm: completion rate, then the mean
			// repaired degradation under each policy (and, on the last rate
			// only, the slack — it does not depend on the rate).
			width := len(algs) * (1 + len(pols))
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+2100+int64(ri), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{})(rng)
				if err != nil {
					return nil, err
				}
				faultSeed := cfg.FaultSeed + rng.Int63()
				row := make([]float64, 0, width+len(algs))
				var slacks []float64
				for _, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					for pi, pol := range pols {
						rb, err := resched.EvalRobustness(s, resched.RobustnessConfig{
							Samples: samples, Rate: rate, Seed: faultSeed, Policy: pol,
						})
						if err != nil {
							return nil, err
						}
						if pi == 0 {
							// Completion ignores the policy: it is the
							// unrepaired schedule's survival.
							row = append(row, rb.CompletionRate)
						}
						row = append(row, rb.MeanDegradation)
					}
					if lastRate {
						slacks = append(slacks, resched.MakespanSlack(s))
					}
				}
				// Slack trails the whole measure block so accs[i] below
				// always addresses measure i regardless of lastRate.
				row = append(row, slacks...)
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, width)
			for i := range accs {
				accs[i] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for i := 0; i < width; i++ {
					accs[i].Add(row[i])
				}
				if lastRate {
					for i := 0; i < len(algs); i++ {
						slackAccs[i].Add(row[width+i])
					}
				}
			}
			per := 1 + len(pols)
			pick := func(off int) []*metrics.Accumulator {
				out := make([]*metrics.Accumulator, len(algs))
				for i := range algs {
					out[i] = accs[i*per+off]
				}
				return out
			}
			t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("r=%g completion (no repair)", rate), pick(0)))
			for pi, pol := range pols {
				t1.Rows = append(t1.Rows, fmtRow(fmt.Sprintf("r=%g E[stretch] %s", rate, pol.Name()), pick(1+pi)))
			}
		}
		t2.Rows = append(t2.Rows, fmtRow("mean slack", slackAccs))
		t1.Notes = fmt.Sprintf("Each point averages %d DAGs × %d sampled fail-stop plans; r is the per-processor crash probability, crash times uniform over the nominal makespan. Completion counts samples where every task still finishes without intervention (duplication is the only passive protection). E[stretch] is the repaired makespan / nominal makespan under the named reactive policy, over all samples (1.0 = faults fully absorbed).", reps, samples)
		t2.Notes = "Mean relative slack of the nominal schedules (same instances as the last E21a rate row): how much later tasks could finish without growing the makespan. Higher slack predicts higher unrepaired completion."
		return []*Table{t1, t2}, nil
	}}
}
