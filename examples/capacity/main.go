// Capacity planning: how many machines does a workflow actually need?
// Sweeps the processor count for a LIGO inspiral workflow, schedules with
// ILS at each size, and reports makespan, speedup and efficiency so the
// knee of the curve — the point where extra machines stop paying — is
// visible. Also shows the effect of network contention on the chosen
// configuration.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"dagsched"
)

func main() {
	g, err := dagsched.LIGODAG(4, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%d tasks, %d edges, height %d)\n\n",
		g.Name(), g.Len(), g.NumEdges(), g.Height())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "procs\tmakespan\tspeedup\tefficiency\tcontended stretch")
	var prevSpeedup float64
	knee := 0
	for _, p := range []int{1, 2, 4, 8, 12, 16, 24, 32} {
		rng := rand.New(rand.NewSource(99))
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{
			Procs: p, CCR: 0.8, Beta: 0.5, Latency: 0.2,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		s, err := dagsched.ILS().Schedule(in)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := dagsched.Simulate(s, dagsched.SimConfig{Contention: true})
		if err != nil {
			log.Fatal(err)
		}
		sp := dagsched.Speedup(s)
		fmt.Fprintf(tw, "%d\t%.4g\t%.2f\t%.2f\t%.3f\n",
			p, s.Makespan(), sp, dagsched.Efficiency(s), rep.Stretch)
		// Knee: first size where doubling-ish the machines gains < 15%.
		if knee == 0 && prevSpeedup > 0 && sp/prevSpeedup < 1.15 {
			knee = p
		}
		prevSpeedup = sp
	}
	tw.Flush()
	if knee > 0 {
		fmt.Printf("\ndiminishing returns set in around %d processors for this workflow.\n", knee)
	}
}
