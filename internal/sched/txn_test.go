package sched

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/platform"
)

// txnFixture returns a plan with a couple of tasks placed, ready for
// speculative trials: diamond DAG on two processors, task 0 on P0 and
// task 1 on P0.
func txnFixture(t *testing.T) (*Instance, *Plan) {
	t.Helper()
	in := Consistent(diamondGraph(t), twoProc())
	pl := NewPlan(in)
	pl.Place(0, 0, 0) // [0,2)
	pl.Place(1, 0, 2) // [2,5)
	return in, pl
}

func TestTxnVisibility(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()

	// Reads pass through before any write.
	if got := len(tx.OnProc(0)); got != 2 {
		t.Fatalf("OnProc(0) = %d entries, want 2", got)
	}
	if !tx.Scheduled(0) || tx.Scheduled(2) {
		t.Fatal("pass-through Scheduled wrong")
	}

	// A speculative placement is visible to the transaction only.
	tx.Place(2, 1, 6)
	if !tx.Scheduled(2) {
		t.Fatal("speculative task not visible in txn")
	}
	if pl.Scheduled(2) {
		t.Fatal("speculative task leaked into base")
	}
	if got := len(tx.OnProc(1)); got != 1 {
		t.Fatalf("txn OnProc(1) = %d entries, want 1", got)
	}
	if got := len(pl.OnProc(1)); got != 0 {
		t.Fatalf("base OnProc(1) = %d entries, want 0", got)
	}

	// Queries see the speculative copy: data-ready of task 3 on P1 now
	// includes task 2's finish there.
	if ready := tx.DataReady(3, 1); ready <= 0 {
		t.Fatalf("DataReady(3,P1) = %g", ready)
	}
}

func TestTxnSlotQueriesMatchCommittedPlan(t *testing.T) {
	// For any sequence of placements, a transaction's FindSlot/EFTOn must
	// answer exactly like a plan that applied the same placements for
	// real.
	in := Consistent(diamondGraph(t), twoProc())
	base := NewPlan(in)
	base.Place(0, 0, 0)

	mirror := base.Clone()
	tx := base.Begin()
	tx.Place(1, 0, 4)
	mirror.Place(1, 0, 4)
	tx.PlaceDup(0, 1, 1)
	mirror.PlaceDup(0, 1, 1)

	for p := 0; p < in.P(); p++ {
		for _, ready := range []float64{0, 1.5, 2, 7} {
			for _, dur := range []float64{0.5, 2, 10} {
				got := tx.FindSlot(p, ready, dur, true)
				want := mirror.FindSlot(p, ready, dur, true)
				if got != want {
					t.Fatalf("FindSlot(p=%d, ready=%g, dur=%g): txn %g != plan %g", p, ready, dur, got, want)
				}
				got = tx.FindSlot(p, ready, dur, false)
				want = mirror.FindSlot(p, ready, dur, false)
				if got != want {
					t.Fatalf("FindSlot no-insert(p=%d, ready=%g, dur=%g): txn %g != plan %g", p, ready, dur, got, want)
				}
			}
		}
	}
	s2, f2 := tx.EFTOn(2, 1, true)
	w2, wf2 := mirror.EFTOn(2, 1, true)
	if s2 != w2 || f2 != wf2 {
		t.Fatalf("EFTOn(2,P1): txn (%g,%g) != plan (%g,%g)", s2, f2, w2, wf2)
	}
}

func TestTxnUndoRestoresExactly(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()

	tx.Place(2, 1, 6)
	gapsBefore := tx.gaps[1].Gaps()
	slotBefore := tx.FindSlot(1, 0, 3, true)

	m := tx.Mark()
	tx.PlaceDup(0, 1, 0)
	tx.PlaceDup(1, 1, 2)
	if got := len(tx.OnProc(1)); got != 3 {
		t.Fatalf("OnProc(1) = %d entries, want 3", got)
	}
	tx.Undo(m)

	if got := len(tx.OnProc(1)); got != 1 {
		t.Fatalf("after undo OnProc(1) = %d entries, want 1", got)
	}
	if got := len(tx.Copies(0)); got != 1 {
		t.Fatalf("after undo Copies(0) = %d, want 1", got)
	}
	gapsAfter := tx.gaps[1].Gaps()
	if len(gapsAfter) != len(gapsBefore) {
		t.Fatalf("gap count %d != %d after undo", len(gapsAfter), len(gapsBefore))
	}
	for i := range gapsAfter {
		if gapsAfter[i] != gapsBefore[i] {
			t.Fatalf("gap %d: %v != %v after undo", i, gapsAfter[i], gapsBefore[i])
		}
	}
	if got := tx.FindSlot(1, 0, 3, true); got != slotBefore {
		t.Fatalf("FindSlot after undo = %g, want %g", got, slotBefore)
	}

	// Undo to zero mark unwinds everything including the primary.
	tx.Undo(0)
	if tx.Scheduled(2) {
		t.Fatal("task 2 still scheduled after full undo")
	}
	if got := len(tx.OnProc(1)); got != 0 {
		t.Fatalf("after full undo OnProc(1) = %d entries, want 0", got)
	}
}

func TestTxnCommitEquivalentToDirectPlacement(t *testing.T) {
	in := Consistent(diamondGraph(t), twoProc())

	direct := NewPlan(in)
	direct.Place(0, 0, 0)
	direct.Place(1, 0, 2)
	direct.PlaceDup(0, 1, 0)
	direct.Place(2, 1, 2)
	direct.Place(3, 1, 7)

	base := NewPlan(in)
	base.Place(0, 0, 0)
	base.Place(1, 0, 2)
	tx := base.Begin()
	tx.PlaceDup(0, 1, 0)
	tx.Place(2, 1, 2)
	tx.Place(3, 1, 7)
	tx.Commit()

	if !base.Done() {
		t.Fatal("base not done after commit")
	}
	for p := 0; p < in.P(); p++ {
		g, w := base.OnProc(p), direct.OnProc(p)
		if len(g) != len(w) {
			t.Fatalf("P%d: %v != %v", p, g, w)
		}
		for k := range g {
			if g[k] != w[k] {
				t.Fatalf("P%d slot %d: %v != %v", p, k, g[k], w[k])
			}
		}
		// Gap indexes answer identically after commit.
		for _, dur := range []float64{0.5, 1, 4} {
			if gs, ws := base.FindSlot(p, 0, dur, true), direct.FindSlot(p, 0, dur, true); gs != ws {
				t.Fatalf("P%d FindSlot(dur=%g): %g != %g", p, dur, gs, ws)
			}
		}
	}
	if g, w := base.Makespan(), direct.Makespan(); g != w {
		t.Fatalf("makespan %g != %g", g, w)
	}
	if err := base.Finalize("x").Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTxnCommitStalePanics(t *testing.T) {
	_, pl := txnFixture(t)
	tx1 := pl.Begin()
	tx2 := pl.Begin()
	tx1.Place(2, 1, 6)
	tx2.Place(2, 0, 6)
	tx1.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("commit of stale txn did not panic")
		}
	}()
	tx2.Commit()
}

func TestTxnCommitAfterBlockProcPanics(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()
	tx.Place(2, 1, 6)
	pl.BlockProc(1, 100) // effective change: epoch bump
	defer func() {
		if recover() == nil {
			t.Fatal("commit after BlockProc did not panic")
		}
	}()
	tx.Commit()
}

func TestTxnResetReuse(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()
	tx.Place(2, 1, 6)
	tx.Commit()
	tx.Reset()
	// After reset the txn is clean against the new epoch.
	if tx.Scheduled(3) {
		t.Fatal("reset txn sees stale state")
	}
	tx.Place(3, 1, 8)
	tx.Commit()
	if !pl.Done() {
		t.Fatal("plan not done")
	}
	if err := pl.Finalize("x").Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTxnConcurrentTrialsShareBase(t *testing.T) {
	// P independent transactions over one base, mutated concurrently:
	// run with -race to prove trials never share mutable state. Each
	// trial duplicates tasks onto its own processor and queries every
	// processor (like the ILS lookahead does).
	in := Consistent(diamondGraph(t), platform.Homogeneous(4, 0, 1))
	pl := NewPlan(in)
	pl.Place(0, 0, 0)
	pl.Place(1, 0, 2)

	txs := make([]*Txn, in.P())
	done := make(chan int, in.P())
	for p := 0; p < in.P(); p++ {
		go func(p int) {
			tx := pl.Begin()
			txs[p] = tx
			m := tx.Mark()
			tx.PlaceDup(0, p, tx.FindSlot(p, 0, in.Cost(0, p), true))
			start := tx.FindSlot(p, tx.DataReady(2, p), in.Cost(2, p), true)
			tx.Place(2, p, start)
			for q := 0; q < in.P(); q++ {
				_ = tx.FindSlot(q, 0, 1, true)
				_ = tx.DataReady(3, q)
			}
			tx.Undo(m)
			tx.Place(2, p, tx.FindSlot(p, tx.DataReady(2, p), in.Cost(2, p), true))
			done <- p
		}(p)
	}
	for i := 0; i < in.P(); i++ {
		<-done
	}
	// Any single winner can commit; the others are dropped.
	winner := rand.New(rand.NewSource(1)).Intn(in.P())
	txs[winner].Commit()
	if !pl.Scheduled(2) {
		t.Fatal("winner commit lost")
	}
	p3, s3, f3 := pl.BestEFT(3, true)
	if math.IsInf(f3, 1) {
		t.Fatal("no slot for task 3")
	}
	pl.Place(3, p3, s3)
	if err := pl.Finalize("x").Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTxnDataReadyPanicsOnUnscheduledParent(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tx.DataReady(3, 0) // parent 2 unscheduled
}

func TestTxnPlacePanics(t *testing.T) {
	_, pl := txnFixture(t)
	tx := pl.Begin()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double place did not panic")
			}
		}()
		tx.Place(0, 1, 10)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dup of unscheduled did not panic")
			}
		}()
		tx.PlaceDup(3, 1, 10)
	}()
}
