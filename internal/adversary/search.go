package adversary

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/sched"
)

// Config drives one adversarial search.
type Config struct {
	// Attacker is the algorithm the search tries to make look good.
	Attacker algo.Algorithm
	// Victim is the algorithm the search tries to make look bad.
	Victim algo.Algorithm
	// Method selects the searcher: "hc" (default), "sa" or "ga".
	Method string
	// Iters is the iteration (generation) budget; default 200.
	Iters int
	// Pop is the GA population size; default 24. HC and SA ignore it.
	Pop int
	// Seed drives every random draw of the search — population init,
	// mutation and crossover all share this one stream, so the same seed
	// finds the same instance.
	Seed int64
	// Budget, when non-zero, bounds each single algorithm run; a
	// candidate whose evaluation exceeds it scores -Inf instead of
	// aborting the search. Leave zero for deterministic experiments.
	Budget time.Duration
	// MutateKnobs additionally perturbs the CCR and Beta knobs, widening
	// the search beyond the multiplier vectors.
	MutateKnobs bool
}

// Result is the outcome of a search.
type Result struct {
	// Best is the worst-case genome found.
	Best Spec
	// Instance is Best decoded.
	Instance *sched.Instance
	// Ratio is victim makespan / attacker makespan on Instance.
	Ratio float64
	// BaseRatio is the same ratio on the unperturbed base spec.
	BaseRatio float64
	// AttackerMakespan and VictimMakespan are the two makespans on
	// Instance.
	AttackerMakespan float64
	VictimMakespan   float64
	// Evals counts fitness evaluations performed.
	Evals int
}

func (c *Config) defaults() error {
	if c.Attacker == nil || c.Victim == nil {
		return fmt.Errorf("adversary: attacker and victim are required")
	}
	if c.Method == "" {
		c.Method = "hc"
	}
	switch c.Method {
	case "hc", "sa", "ga":
	default:
		return fmt.Errorf("adversary: unknown method %q", c.Method)
	}
	if c.Iters <= 0 {
		c.Iters = 200
	}
	if c.Pop <= 0 {
		c.Pop = 24
	}
	return nil
}

// evaluator scores genomes: fitness is the victim/attacker makespan
// ratio on the decoded instance. Evaluation is pure, so the bounded
// parallel population evaluator is deterministic regardless of worker
// interleaving.
type evaluator struct {
	ctx    context.Context
	cfg    *Config
	evals  int
	budget time.Duration
}

type fitness struct {
	ratio      float64
	attackerMk float64
	victimMk   float64
	in         *sched.Instance
}

// eval scores one genome. Decode or scheduling failures (including a
// blown per-run budget) yield -Inf fitness rather than an error: the
// search steps around bad candidates instead of dying on them. Only the
// outer context canceling is fatal.
func (e *evaluator) eval(s *Spec) (fitness, error) {
	if err := e.ctx.Err(); err != nil {
		return fitness{}, err
	}
	in, err := s.Decode()
	if err != nil {
		return fitness{ratio: math.Inf(-1)}, nil
	}
	ctx := e.ctx
	if e.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.budget)
		defer cancel()
	}
	att, err := algo.ScheduleContext(ctx, e.cfg.Attacker, in)
	if err != nil {
		if e.ctx.Err() != nil {
			return fitness{}, e.ctx.Err()
		}
		return fitness{ratio: math.Inf(-1)}, nil
	}
	vic, err := algo.ScheduleContext(ctx, e.cfg.Victim, in)
	if err != nil {
		if e.ctx.Err() != nil {
			return fitness{}, e.ctx.Err()
		}
		return fitness{ratio: math.Inf(-1)}, nil
	}
	aMk, vMk := att.Makespan(), vic.Makespan()
	if aMk <= 0 {
		return fitness{ratio: math.Inf(-1)}, nil
	}
	return fitness{ratio: vMk / aMk, attackerMk: aMk, victimMk: vMk, in: in}, nil
}

// evalPop scores a whole population concurrently on the bounded worker
// pool. Results land in per-index slots, so the outcome is independent
// of scheduling order; the first context error (if any) is returned.
func (e *evaluator) evalPop(group *algo.TrialGroup, pop []Spec) ([]fitness, error) {
	fits := make([]fitness, len(pop))
	errs := make([]error, len(pop))
	group.Run(len(pop), func(i int) {
		fits[i], errs[i] = e.eval(&pop[i])
	})
	e.evals += len(pop)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fits, nil
}

// mutate perturbs one gene of s in place: a random multiplier moves by
// a log-uniform factor in [1/2, 2] and clamps to [MinMult, MaxMult];
// with cfg.MutateKnobs a small share of mutations instead nudge CCR or
// Beta.
func mutate(s *Spec, rng *rand.Rand, knobs bool) {
	if knobs && rng.Float64() < 0.15 {
		if rng.Intn(2) == 0 {
			f := math.Exp((rng.Float64()*2 - 1) * math.Ln2)
			s.CCR = clamp(s.CCR*f, 0.05, MaxCCR)
		} else {
			s.Beta = clamp(s.Beta+(rng.Float64()*0.4-0.2), 0, 1.9)
		}
		return
	}
	nGenes := len(s.TaskMult) + len(s.EdgeMult)
	if nGenes == 0 {
		return
	}
	g := rng.Intn(nGenes)
	f := math.Exp((rng.Float64()*2 - 1) * math.Ln2)
	if g < len(s.TaskMult) {
		s.TaskMult[g] = clamp(s.TaskMult[g]*f, MinMult, MaxMult)
	} else {
		g -= len(s.TaskMult)
		s.EdgeMult[g] = clamp(s.EdgeMult[g]*f, MinMult, MaxMult)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Search runs an adversarial instance search from the given base genome
// and returns the worst case found. The base spec itself is always
// evaluated first, so the result is never worse than the starting
// point. Same seed and config ⇒ same result, bit for bit.
func Search(ctx context.Context, base Spec, cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	// Materialize the full gene set so every multiplier is searchable.
	in, err := base.Decode()
	if err != nil {
		return nil, err
	}
	cur := base.clone()
	cur.materialize(in.G.NumEdges())

	e := &evaluator{ctx: ctx, cfg: &cfg, budget: cfg.Budget}
	baseFit, err := e.eval(&cur)
	if err != nil {
		return nil, err
	}
	e.evals++
	if math.IsInf(baseFit.ratio, -1) {
		return nil, fmt.Errorf("adversary: base spec is not evaluable under the budget")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	best, bestFit := cur.clone(), baseFit
	switch cfg.Method {
	case "hc":
		best, bestFit, err = hillClimb(e, rng, cur, baseFit, cfg)
	case "sa":
		best, bestFit, err = anneal(e, rng, cur, baseFit, cfg)
	case "ga":
		best, bestFit, err = genetic(e, rng, cur, baseFit, cfg)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Best:             best,
		Instance:         bestFit.in,
		Ratio:            bestFit.ratio,
		BaseRatio:        baseFit.ratio,
		AttackerMakespan: bestFit.attackerMk,
		VictimMakespan:   bestFit.victimMk,
		Evals:            e.evals,
	}, nil
}

// hillClimb is first-improvement hill climbing: mutate, keep on strict
// improvement.
func hillClimb(e *evaluator, rng *rand.Rand, cur Spec, curFit fitness, cfg Config) (Spec, fitness, error) {
	for i := 0; i < cfg.Iters; i++ {
		cand := cur.clone()
		mutate(&cand, rng, cfg.MutateKnobs)
		fit, err := e.eval(&cand)
		if err != nil {
			return cur, curFit, err
		}
		e.evals++
		if fit.ratio > curFit.ratio {
			cur, curFit = cand, fit
		}
	}
	return cur, curFit, nil
}

// anneal is simulated annealing with geometric cooling, tracking the
// best genome ever seen (the returned result), not just the walker.
func anneal(e *evaluator, rng *rand.Rand, cur Spec, curFit fitness, cfg Config) (Spec, fitness, error) {
	best, bestFit := cur.clone(), curFit
	// Ratios live near 1.0, so an initial temperature of a few percent
	// accepts early uphill-in-cost moves without random-walking forever.
	temp := 0.05
	cool := math.Pow(1e-3/temp, 1/float64(cfg.Iters))
	for i := 0; i < cfg.Iters; i++ {
		cand := cur.clone()
		mutate(&cand, rng, cfg.MutateKnobs)
		fit, err := e.eval(&cand)
		if err != nil {
			return best, bestFit, err
		}
		e.evals++
		delta := fit.ratio - curFit.ratio
		if delta > 0 || (!math.IsInf(fit.ratio, -1) && rng.Float64() < math.Exp(delta/temp)) {
			cur, curFit = cand, fit
		}
		if curFit.ratio > bestFit.ratio {
			best, bestFit = cur.clone(), curFit
		}
		temp *= cool
	}
	return best, bestFit, nil
}

// genetic is a steady generational GA: tournament selection, uniform
// crossover over the multiplier vectors, per-child mutation, elitism of
// one. Populations are evaluated on the bounded TrialGroup pool.
func genetic(e *evaluator, rng *rand.Rand, seed Spec, seedFit fitness, cfg Config) (Spec, fitness, error) {
	group := algo.NewTrialGroup(cfg.Pop, algo.ParallelTrialThreshold)
	defer group.Close()

	pop := make([]Spec, cfg.Pop)
	pop[0] = seed.clone()
	for i := 1; i < cfg.Pop; i++ {
		pop[i] = seed.clone()
		for m := 0; m < 3; m++ {
			mutate(&pop[i], rng, cfg.MutateKnobs)
		}
	}
	fits, err := e.evalPop(group, pop)
	if err != nil {
		return seed, seedFit, err
	}
	best, bestFit := seed.clone(), seedFit
	record := func(pop []Spec, fits []fitness) {
		for i := range pop {
			if fits[i].ratio > bestFit.ratio {
				best, bestFit = pop[i].clone(), fits[i]
			}
		}
	}
	record(pop, fits)

	gens := cfg.Iters / cfg.Pop
	if gens < 1 {
		gens = 1
	}
	tournament := func() int {
		a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
		if fits[a].ratio >= fits[b].ratio {
			return a
		}
		return b
	}
	for g := 0; g < gens; g++ {
		next := make([]Spec, 0, cfg.Pop)
		// Elitism: the current best individual survives unchanged.
		elite := 0
		for i := range pop {
			if fits[i].ratio > fits[elite].ratio {
				elite = i
			}
		}
		next = append(next, pop[elite].clone())
		for len(next) < cfg.Pop {
			child := crossover(&pop[tournament()], &pop[tournament()], rng)
			mutate(&child, rng, cfg.MutateKnobs)
			next = append(next, child)
		}
		pop = next
		fits, err = e.evalPop(group, pop)
		if err != nil {
			return best, bestFit, err
		}
		record(pop, fits)
	}
	return best, bestFit, nil
}

// crossover mixes two genomes gene-wise (uniform crossover); scalar
// knobs come from a random parent.
func crossover(a, b *Spec, rng *rand.Rand) Spec {
	child := a.clone()
	if rng.Intn(2) == 1 {
		child.CCR, child.Beta = b.CCR, b.Beta
	}
	for i := range child.TaskMult {
		if i < len(b.TaskMult) && rng.Intn(2) == 1 {
			child.TaskMult[i] = b.TaskMult[i]
		}
	}
	for i := range child.EdgeMult {
		if i < len(b.EdgeMult) && rng.Intn(2) == 1 {
			child.EdgeMult[i] = b.EdgeMult[i]
		}
	}
	return child
}

// Methods lists the supported search methods in display order.
func Methods() []string { return []string{"hc", "sa", "ga"} }
