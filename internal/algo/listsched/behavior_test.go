package listsched

// Algorithm-specific behaviour tests: each classic heuristic has a
// defining decision rule; these tests pin that rule on crafted instances
// where the rule produces a distinctive, hand-checkable placement.

import (
	"math"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

// TestCPOPPinsCriticalPath: every critical-path task must land on the
// single processor minimizing the CP's total execution cost.
func TestCPOPPinsCriticalPath(t *testing.T) {
	in := testfix.Topcuoglu()
	path, _ := sched.CriticalPathMean(in)
	if len(path) < 2 {
		t.Fatal("degenerate critical path")
	}
	// Determine the CP processor independently.
	best, bestCost := -1, math.Inf(1)
	for p := 0; p < in.P(); p++ {
		var sum float64
		for _, v := range path {
			sum += in.Cost(v, p)
		}
		if sum < bestCost {
			best, bestCost = p, sum
		}
	}
	s, err := CPOP{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range path {
		if got := s.Primary(v).Proc; got != best {
			t.Fatalf("CP task %d on P%d, want P%d", v, got, best)
		}
	}
}

// TestDLSPrefersFastProcessor: with one dramatically faster processor and
// independent equal tasks, DLS's Δ term must pull the first placements
// there.
func TestDLSPrefersFastProcessor(t *testing.T) {
	b := dag.NewBuilder("indep")
	for i := 0; i < 3; i++ {
		b.AddTask("", 10)
	}
	g := b.MustBuild()
	w := [][]float64{
		{2, 10, 10},
		{2, 10, 10},
		{2, 10, 10},
	}
	in, err := sched.NewInstance(g, platform.Homogeneous(3, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := DLS{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// P0 runs everything serially in 6 < any remote 10.
	for i := 0; i < 3; i++ {
		if got := s.Primary(dag.TaskID(i)).Proc; got != 0 {
			t.Fatalf("task %d on P%d, want P0", i, got)
		}
	}
	if s.Makespan() != 6 {
		t.Fatalf("makespan = %g, want 6", s.Makespan())
	}
}

// TestMCPFollowsALAPOrder: with a forced single processor, MCP's start
// order must ascend by ALAP.
func TestMCPFollowsALAPOrder(t *testing.T) {
	in := testfix.Topcuoglu()
	w := make([][]float64, in.N())
	for i := range w {
		w[i] = []float64{in.W[i][0]}
	}
	one, err := sched.NewInstance(in.G, platform.Homogeneous(1, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	alap := sched.ALAPStart(one)
	s, err := MCP{}.Schedule(one)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.OnProc(0)
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1].Task, seq[i].Task
		// Order must not violate ALAP unless precedence forces it; on a
		// single processor MCP's list IS the start order, so ALAP must be
		// non-decreasing except where a successor's ALAP ties.
		if alap[a] > alap[b]+1e-9 && !one.G.IsReachable(a, b) {
			t.Fatalf("start order violates ALAP: task %d (%.2f) before %d (%.2f)", a, alap[a], b, alap[b])
		}
	}
}

// TestETFPicksGloballyEarliestStart: two ready tasks, one of which can
// start strictly earlier; ETF must schedule that one first even though
// the other has higher static level.
func TestETFPicksGloballyEarliestStart(t *testing.T) {
	b := dag.NewBuilder("etf")
	root := b.AddTask("root", 1)
	slow := b.AddTask("slow", 10) // higher SL
	fast := b.AddTask("fast", 1)
	b.AddEdge(root, slow, 50) // data arrives late
	b.AddEdge(root, fast, 0)  // data arrives immediately
	g := b.MustBuild()
	// Two processors; root on either. After root (finish 1): fast can
	// start at 1 anywhere; slow must wait for 51 remotely or 1 locally.
	in := sched.Consistent(g, platform.Homogeneous(2, 0, 1))
	s, err := ETF{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rootProc := s.Primary(root).Proc
	slowA := s.Primary(slow)
	// ETF places slow right after root on the same processor (start 1
	// there beats 51 remotely); fast goes wherever it starts earliest.
	if slowA.Proc != rootProc {
		t.Fatalf("slow on P%d, root on P%d — remote start would be 51", slowA.Proc, rootProc)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestHLFETOrder: on a single processor, HLFET's start order descends by
// static level (subject to readiness).
func TestHLFETOrder(t *testing.T) {
	in := testfix.Topcuoglu()
	w := make([][]float64, in.N())
	for i := range w {
		w[i] = []float64{in.W[i][0]}
	}
	one, err := sched.NewInstance(in.G, platform.Homogeneous(1, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	sl := sched.StaticLevel(one)
	s, err := HLFET{}.Schedule(one)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.OnProc(0)
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1].Task, seq[i].Task
		if sl[a] < sl[b]-1e-9 && !one.G.IsReachable(a, b) {
			// b was ready when a was chosen (single proc, everything
			// ready in level order) — allow only precedence exceptions.
			// Readiness: b ready iff all preds scheduled before position i.
			ready := true
			pos := map[dag.TaskID]int{}
			for k, x := range seq {
				pos[x.Task] = k
			}
			for _, pe := range one.G.Pred(b) {
				if pos[pe.To] >= i-1 {
					ready = false
					break
				}
			}
			if ready {
				t.Fatalf("HLFET chose SL %.2f before ready task with SL %.2f", sl[a], sl[b])
			}
		}
	}
}

// TestPETSLevelDiscipline: PETS schedules strictly level by level — no
// task may start being considered before all previous-level tasks are
// placed. Observable consequence on one processor: start order groups by
// level.
func TestPETSLevelDiscipline(t *testing.T) {
	in := testfix.Topcuoglu()
	w := make([][]float64, in.N())
	for i := range w {
		w[i] = []float64{in.W[i][0]}
	}
	one, err := sched.NewInstance(in.G, platform.Homogeneous(1, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	levels := one.G.Levels()
	s, err := PETS{}.Schedule(one)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.OnProc(0)
	for i := 1; i < len(seq); i++ {
		if levels[seq[i-1].Task] > levels[seq[i].Task] {
			t.Fatalf("level order violated: L%d before L%d", levels[seq[i-1].Task], levels[seq[i].Task])
		}
	}
}

// TestHCPTListsCriticalAncestorsFirst: the first task listed by HCPT is
// necessarily an entry task on the critical path (it has no parents and
// minimal ALST).
func TestHCPTListsCriticalAncestorsFirst(t *testing.T) {
	in := testfix.Topcuoglu()
	s, err := HCPT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Task 0 (n1) is the unique entry and trivially critical: it must
	// start at time 0 on its processor.
	if got := s.Primary(0).Start; got != 0 {
		t.Fatalf("entry starts at %g", got)
	}
}

// TestLMTAssignsWithinLevelByCost: in one level of independent tasks on
// enough processors, the most expensive tasks grab the fastest
// processors.
func TestLMTAssignsWithinLevelByCost(t *testing.T) {
	b := dag.NewBuilder("lvl")
	b.AddTask("big", 10)
	b.AddTask("small", 1)
	g := b.MustBuild()
	w := [][]float64{
		{5, 10}, // big: P0 fast
		{1, 2},  // small: P0 fast too
	}
	in, err := sched.NewInstance(g, platform.Homogeneous(2, 0, 1), w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := LMT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	// big is considered first (higher mean cost) and takes P0 (finish 5
	// vs 10); small then finishes earlier on P1 (2) than queued on P0 (6).
	if s.Primary(0).Proc != 0 {
		t.Fatalf("big on P%d, want P0", s.Primary(0).Proc)
	}
	if s.Primary(1).Proc != 1 {
		t.Fatalf("small on P%d, want P1", s.Primary(1).Proc)
	}
	if s.Makespan() != 5 {
		t.Fatalf("makespan = %g, want 5", s.Makespan())
	}
}
