package experiment

import (
	"fmt"
	"math/rand"

	"dagsched/internal/algo/repair"
	"dagsched/internal/algo/suite"
	"dagsched/internal/metrics"
)

// E19 — fail-stop impact: the mean relative makespan growth after losing
// one of eight processors at a given fraction of the makespan, repaired
// with the preserve-survivors policy of internal/algo/repair.
func E19() Experiment {
	return Experiment{ID: "E19", Title: "Fail-stop repair impact vs failure time", Run: func(cfg Config) ([]*Table, error) {
		algs := suite.Heterogeneous()
		reps := cfg.reps(25)
		fracs := []float64{0, 0.25, 0.5, 0.75}
		if cfg.Quick {
			fracs = []float64{0.5}
		}
		t := &Table{ID: "E19", Title: "Mean repaired/original makespan vs failure time (P=8, n=60, CCR=1, β=1)",
			Columns: append([]string{"fail at"}, names(algs)...)}
		for i, frac := range fracs {
			frac := frac
			rows, err := parallelReps(reps, cfg.Workers, cfg.Seed+1900+int64(i), func(rep int, rng *rand.Rand) ([]float64, error) {
				in, err := randGen(randParams{})(rng)
				if err != nil {
					return nil, err
				}
				proc := rng.Intn(in.P())
				row := make([]float64, len(algs))
				for k, a := range algs {
					s, err := a.Schedule(in)
					if err != nil {
						return nil, err
					}
					r, err := repair.Repair(s, repair.Failure{Proc: proc, Time: s.Makespan() * frac})
					if err != nil {
						return nil, err
					}
					row[k] = r.Makespan() / s.Makespan()
				}
				return row, nil
			})
			if err != nil {
				return nil, err
			}
			accs := make([]*metrics.Accumulator, len(algs))
			for k := range accs {
				accs[k] = &metrics.Accumulator{}
			}
			for _, row := range rows {
				for k, v := range row {
					accs[k].Add(v)
				}
			}
			t.Rows = append(t.Rows, fmtRow(fmt.Sprintf("%g×ms", frac), accs))
		}
		t.Notes = "1.0 means the failure cost nothing after repair; early failures cost most (everything lost on the dead processor must be recomputed elsewhere)."
		return []*Table{t}, nil
	}}
}
