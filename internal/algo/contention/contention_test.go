package contention

import (
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

func TestSpanListEarliestFrom(t *testing.T) {
	sp := spanList{{2, 4}, {6, 9}}
	cases := []struct {
		t, dur, want float64
	}{
		{0, 1, 0},   // fits before the first span
		{0, 2, 0},   // exact fit before the first span
		{0, 3, 9},   // too long for any gap: after the last span
		{3, 1, 4},   // inside a busy span: bumped to its end
		{4, 2, 4},   // gap [4,6) exact fit
		{5, 2, 9},   // gap too small from 5
		{10, 5, 10}, // after everything
	}
	for _, c := range cases {
		if got := sp.earliestFrom(c.t, c.dur); got != c.want {
			t.Errorf("earliestFrom(%g,%g) = %g, want %g", c.t, c.dur, got, c.want)
		}
	}
}

func TestSpanListInsertOrderAndOverlapPanic(t *testing.T) {
	var sp spanList
	sp.insert(5, 7)
	sp.insert(0, 2)
	sp.insert(9, 10)
	if sp[0].s != 0 || sp[1].s != 5 || sp[2].s != 9 {
		t.Fatalf("not sorted: %v", sp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping insert did not panic")
		}
	}()
	sp.insert(6, 8)
}

func TestTransferStartAlternation(t *testing.T) {
	nw := newNetwork(2)
	// Sender busy [0,5), receiver busy [5,8).
	nw.send[0].insert(0, 5)
	nw.recv[1].insert(5, 8)
	// A 2-unit transfer ready at 0 must wait for 8 (send free at 5, but
	// recv blocks [5,8)).
	if got := nw.transferStart(0, 1, 0, 2); got != 8 {
		t.Fatalf("transferStart = %g, want 8", got)
	}
	// A 2-unit transfer into an un-busy receiver: fits nothing on send
	// before 5.
	if got := nw.transferStart(0, 0, 0, 2); got != 5 {
		t.Fatalf("transferStart same ports = %g, want 5", got)
	}
}

func TestCHEFTValidOnBattery(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 7001}, func(trial int, in *sched.Instance) {
		s, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Makespan() < in.CPMin()-1e-6 {
			t.Fatalf("trial %d: below CP bound", trial)
		}
	})
}

func TestCHEFTValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(4, 7002) {
		s, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
	}
}

// The point of the algorithm: under the one-port replay, C-HEFT schedules
// must degrade much less than HEFT schedules on communication-heavy
// instances.
func TestCHEFTRobustToContention(t *testing.T) {
	var heftStretch, cheftStretch float64
	trials := 0
	testfix.Battery(testfix.BatteryConfig{Trials: 20, MaxCCR: 8, Seed: 7003}, func(trial int, in *sched.Instance) {
		h, err := listsched.HEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := sim.Run(h, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := sim.Run(c, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		heftStretch += hr.Stretch
		cheftStretch += cr.Stretch
		trials++
	})
	if cheftStretch >= heftStretch {
		t.Fatalf("C-HEFT mean contention stretch %.3f not below HEFT's %.3f",
			cheftStretch/float64(trials), heftStretch/float64(trials))
	}
	t.Logf("mean one-port stretch: C-HEFT %.3f vs HEFT %.3f",
		cheftStretch/float64(trials), heftStretch/float64(trials))
}

// Contended ABSOLUTE makespan must also be no worse on average —
// otherwise low stretch would just mean pessimistic scheduling.
func TestCHEFTContendedMakespanCompetitive(t *testing.T) {
	var heftMS, cheftMS float64
	testfix.Battery(testfix.BatteryConfig{Trials: 20, MaxCCR: 8, Seed: 7004}, func(trial int, in *sched.Instance) {
		h, _ := listsched.HEFT{}.Schedule(in)
		c, _ := CHEFT{}.Schedule(in)
		hr, err := sim.Run(h, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := sim.Run(c, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		heftMS += hr.Makespan
		cheftMS += cr.Makespan
	})
	if cheftMS > heftMS*1.05 {
		t.Fatalf("C-HEFT contended makespan total %.4g much worse than HEFT %.4g", cheftMS, heftMS)
	}
}

func TestCHEFTOnLocalChainReservesNothing(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 5; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 10)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	send, err := PortSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range send {
		if v != 0 {
			t.Fatalf("send port %d busy %g on a chain kept local", p, v)
		}
	}
	s, _ := CHEFT{}.Schedule(in)
	if s.Makespan() != 10 {
		t.Fatalf("chain makespan = %g, want 10", s.Makespan())
	}
}

func TestCHEFTDeterministic(t *testing.T) {
	in := testfix.Topcuoglu()
	s1, _ := CHEFT{}.Schedule(in)
	s2, _ := CHEFT{}.Schedule(in)
	if s1.Makespan() != s2.Makespan() {
		t.Fatal("not deterministic")
	}
}
