package dag

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genInput is a randomized graph description drawn by testing/quick: a
// seed and size knobs from which a deterministic DAG is built. Generating
// the description (rather than the Graph) keeps shrinking meaningful.
type genInput struct {
	Seed     int64
	N        uint8 // 1..64 after clamping
	EdgeProb uint8 // percent, 0..100 after clamping
}

// Generate implements quick.Generator.
func (genInput) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(genInput{
		Seed:     r.Int63(),
		N:        uint8(1 + r.Intn(64)),
		EdgeProb: uint8(r.Intn(101)),
	})
}

func (gi genInput) build() *Graph {
	rng := rand.New(rand.NewSource(gi.Seed))
	n := int(gi.N)
	p := float64(gi.EdgeProb) / 100
	b := NewBuilder("quick")
	for i := 0; i < n; i++ {
		b.AddTask("", rng.Float64()*100)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(TaskID(i), TaskID(j), rng.Float64()*50)
			}
		}
	}
	return b.MustBuild()
}

// Property: every generated forward-edge graph builds, topological order
// is a valid permutation, and levels are consistent with edges.
func TestQuickTopoInvariants(t *testing.T) {
	f := func(gi genInput) bool {
		g := gi.build()
		order := g.TopoOrder()
		if len(order) != g.Len() {
			return false
		}
		pos := make([]int, g.Len())
		seen := make([]bool, g.Len())
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		levels := g.Levels()
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
			if levels[e.From] >= levels[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round-trips preserve the graph exactly.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(gi genInput) bool {
		g := gi.build()
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return graphsEqual(g, &back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical-path length equals the max over tasks of
// top-level + bottom-level, for both cost conventions.
func TestQuickCriticalPathConsistency(t *testing.T) {
	f := func(gi genInput, withComm bool) bool {
		g := gi.build()
		tl := g.TopLevels(withComm)
		bl := g.BottomLevels(withComm)
		cp := g.CriticalPathLength(withComm)
		maxSum := 0.0
		for i := range tl {
			if s := tl[i] + bl[i]; s > maxSum {
				maxSum = s
			}
		}
		return math.Abs(cp-maxSum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ALAP start times are non-negative and never precede the
// task's earliest possible start.
func TestQuickALAPDominatesTopLevel(t *testing.T) {
	f := func(gi genInput) bool {
		g := gi.build()
		alap := g.ALAP(true)
		tl := g.TopLevels(true)
		for i := range alap {
			if alap[i] < -1e-9 {
				return false
			}
			if alap[i] < tl[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
