package workload

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

func TestRandomBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := Random(RandomConfig{N: 100}, rng)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	if g.Len() != 100 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Default α = 1: about sqrt(100) = 10 levels.
	if h := g.Height(); h != 10 {
		t.Fatalf("Height = %d, want 10", h)
	}
	// Out-degree bounded by the default 4.
	for i := 0; i < g.Len(); i++ {
		if d := g.OutDegree(dag.TaskID(i)); d > 4 {
			t.Fatalf("task %d out-degree %d > 4", i, d)
		}
	}
}

func TestRandomShapeParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	deep, _ := Random(RandomConfig{N: 100, Shape: 0.5}, rng)
	wide, _ := Random(RandomConfig{N: 100, Shape: 2.0}, rng)
	if deep.Height() <= wide.Height() {
		t.Fatalf("α=0.5 height %d should exceed α=2 height %d", deep.Height(), wide.Height())
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, _ := Random(RandomConfig{N: 50}, rand.New(rand.NewSource(7)))
	b, _ := Random(RandomConfig{N: 50}, rand.New(rand.NewSource(7)))
	if a.Len() != b.Len() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestRandomConnectivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(120)
		g, err := Random(RandomConfig{N: n, Shape: 0.5 + rng.Float64()*1.5, OutDegree: 1 + rng.Intn(5)}, rng)
		if err != nil {
			t.Fatalf("Random: %v", err)
		}
		if g.Len() != n {
			t.Fatalf("Len = %d, want %d", g.Len(), n)
		}
		levels := g.Levels()
		// Any task at level > 0 has a parent; tasks at level 0 are entries.
		for i := 0; i < n; i++ {
			if levels[i] > 0 && g.InDegree(dag.TaskID(i)) == 0 {
				t.Fatalf("trial %d: task %d at level %d has no parent", trial, i, levels[i])
			}
		}
	}
}

func TestRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []RandomConfig{
		{N: 0},
		{N: 5, Shape: -1},
		{N: 5, OutDegree: -2},
		{N: 5, AvgComp: -3},
		{N: 5, AvgData: -3},
	}
	for _, cfg := range bad {
		if _, err := Random(cfg, rng); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestGaussianElimination(t *testing.T) {
	g, err := GaussianElimination(5)
	if err != nil {
		t.Fatalf("GaussianElimination: %v", err)
	}
	// (m² + m − 2)/2 = (25 + 5 − 2)/2 = 14.
	if g.Len() != 14 {
		t.Fatalf("Len = %d, want 14", g.Len())
	}
	// Single entry (first pivot) and single exit (last update).
	if e := g.Entries(); len(e) != 1 {
		t.Fatalf("Entries = %v", e)
	}
	if x := g.Exits(); len(x) != 1 {
		t.Fatalf("Exits = %v", x)
	}
	if _, err := GaussianElimination(1); err == nil {
		t.Fatal("m=1 accepted")
	}
}

func TestGaussianEliminationSizes(t *testing.T) {
	for m := 2; m <= 12; m++ {
		g, err := GaussianElimination(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := (m*m + m - 2) / 2
		if g.Len() != want {
			t.Fatalf("m=%d: Len = %d, want %d", m, g.Len(), want)
		}
	}
}

func TestFFT(t *testing.T) {
	g, err := FFT(8)
	if err != nil {
		t.Fatalf("FFT: %v", err)
	}
	// n*(log2(n)+1) = 8*4 = 32 tasks.
	if g.Len() != 32 {
		t.Fatalf("Len = %d, want 32", g.Len())
	}
	if len(g.Entries()) != 8 || len(g.Exits()) != 8 {
		t.Fatalf("entries/exits = %d/%d, want 8/8", len(g.Entries()), len(g.Exits()))
	}
	// Every non-input task has exactly two parents.
	for i := 8; i < g.Len(); i++ {
		if g.InDegree(dag.TaskID(i)) != 2 {
			t.Fatalf("task %d in-degree = %d", i, g.InDegree(dag.TaskID(i)))
		}
	}
	for _, n := range []int{0, 1, 3, 6} {
		if _, err := FFT(n); err == nil {
			t.Fatalf("FFT(%d) accepted", n)
		}
	}
}

func TestLaplace(t *testing.T) {
	g, err := Laplace(4)
	if err != nil {
		t.Fatalf("Laplace: %v", err)
	}
	if g.Len() != 16 {
		t.Fatalf("Len = %d, want 16", g.Len())
	}
	// Wavefront: height = 2g-1.
	if h := g.Height(); h != 7 {
		t.Fatalf("Height = %d, want 7", h)
	}
	if _, err := Laplace(0); err == nil {
		t.Fatal("g=0 accepted")
	}
}

func TestForkJoin(t *testing.T) {
	g, err := ForkJoin(4, 3)
	if err != nil {
		t.Fatalf("ForkJoin: %v", err)
	}
	if g.Len() != 4*3+2 {
		t.Fatalf("Len = %d, want 14", g.Len())
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Fatal("fork-join must have single entry and exit")
	}
	if _, err := ForkJoin(0, 1); err == nil {
		t.Fatal("0 branches accepted")
	}
}

func TestTrees(t *testing.T) {
	out, err := OutTree(2, 4)
	if err != nil {
		t.Fatalf("OutTree: %v", err)
	}
	if out.Len() != 15 { // complete binary tree depth 4
		t.Fatalf("OutTree Len = %d, want 15", out.Len())
	}
	in, err := InTree(2, 4)
	if err != nil {
		t.Fatalf("InTree: %v", err)
	}
	if in.Len() != 15 {
		t.Fatalf("InTree Len = %d, want 15", in.Len())
	}
	if len(in.Exits()) != 1 {
		t.Fatal("in-tree must have one exit")
	}
	if len(out.Entries()) != 1 {
		t.Fatal("out-tree must have one entry")
	}
	chain, err := InTree(1, 5)
	if err != nil {
		t.Fatalf("InTree(1,5): %v", err)
	}
	if chain.Len() != 5 || chain.Height() != 5 {
		t.Fatalf("InTree(1,5) = %d tasks height %d", chain.Len(), chain.Height())
	}
	if _, err := OutTree(0, 2); err == nil {
		t.Fatal("fanout 0 accepted")
	}
	if _, err := InTree(2, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestPipeline(t *testing.T) {
	g, err := Pipeline([]int{2, 4, 4, 1})
	if err != nil {
		t.Fatalf("Pipeline: %v", err)
	}
	if g.Len() != 11 {
		t.Fatalf("Len = %d, want 11", g.Len())
	}
	// All-to-all between stages: 2*4 + 4*4 + 4*1 = 28 edges.
	if g.NumEdges() != 28 {
		t.Fatalf("NumEdges = %d, want 28", g.NumEdges())
	}
	if _, err := Pipeline(nil); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := Pipeline([]int{2, 0}); err == nil {
		t.Fatal("zero-width stage accepted")
	}
}

func TestMontage(t *testing.T) {
	g, err := Montage(6)
	if err != nil {
		t.Fatalf("Montage: %v", err)
	}
	if len(g.Exits()) != 1 {
		t.Fatal("montage must end in one publish task")
	}
	if g.Len() < 20 {
		t.Fatalf("Len = %d, suspiciously small", g.Len())
	}
	if _, err := Montage(1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestCholesky(t *testing.T) {
	g, err := Cholesky(4)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	// POTRF: t, TRSM: t(t-1)/2, SYRK: t(t-1)/2, GEMM: t(t-1)(t-2)/6.
	want := 4 + 6 + 6 + 4
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	if len(g.Exits()) != 1 {
		t.Fatalf("Exits = %v, want just the last POTRF", g.Exits())
	}
	if _, err := Cholesky(0); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestLU(t *testing.T) {
	g, err := LU(3)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	// GETRF: t, TRSM: t(t-1), GEMM: sum (t-k-1)^2 = 4+1 = 5 for t=3.
	want := 3 + 6 + 5
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	if _, err := LU(0); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestWithCCR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := Random(RandomConfig{N: 60}, rng)
	sys := platform.Homogeneous(4, 0, 1)
	for _, ccr := range []float64{0.1, 0.5, 1, 5, 10} {
		scaled, err := WithCCR(g, sys, ccr)
		if err != nil {
			t.Fatalf("WithCCR(%g): %v", ccr, err)
		}
		meanW := scaled.TotalWeight() / float64(scaled.Len())
		// Realized CCR: mean over edges of mean comm cost / mean comp.
		var sum float64
		for _, e := range scaled.Edges() {
			sum += sys.MeanCommCost(e.Data)
		}
		got := sum / float64(scaled.NumEdges()) / meanW
		if math.Abs(got-ccr) > 1e-9 {
			t.Fatalf("realized CCR %g, want %g", got, ccr)
		}
	}
	if _, err := WithCCR(g, sys, -1); err == nil {
		t.Fatal("negative CCR accepted")
	}
}

func TestWithCCRLatencyClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := Random(RandomConfig{N: 30}, rng)
	// Latency 1000 exceeds any reasonable target: data clamps to zero.
	sys := platform.Homogeneous(2, 1000, 1)
	scaled, err := WithCCR(g, sys, 0.1)
	if err != nil {
		t.Fatalf("WithCCR: %v", err)
	}
	if d := scaled.TotalData(); d != 0 {
		t.Fatalf("TotalData = %g, want 0 (latency-dominated)", d)
	}
}

func TestMakeInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _ := Random(RandomConfig{N: 40}, rng)
	in, err := MakeInstance(g, HetConfig{Procs: 4, CCR: 2, Beta: 0.5}, rng)
	if err != nil {
		t.Fatalf("MakeInstance: %v", err)
	}
	if in.P() != 4 || in.N() != 40 {
		t.Fatalf("P,N = %d,%d", in.P(), in.N())
	}
	if math.Abs(in.CCR()-2) > 0.5 {
		// CCR is computed against the *drawn* cost matrix, so it only
		// approximates the target under β > 0; it must still be close.
		t.Fatalf("CCR = %g, want ≈ 2", in.CCR())
	}
	if _, err := MakeInstance(g, HetConfig{Procs: 0}, rng); err == nil {
		t.Fatal("0 procs accepted")
	}
}

func TestMakeInstanceHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := Random(RandomConfig{N: 30}, rng)
	in, err := MakeInstance(g, HetConfig{Procs: 3, CCR: 1, Beta: 0}, rng)
	if err != nil {
		t.Fatalf("MakeInstance: %v", err)
	}
	for i := 0; i < in.N(); i++ {
		if in.SigmaCost(dag.TaskID(i)) > 1e-9 {
			t.Fatalf("β=0 instance has cost variance at task %d", i)
		}
	}
}
