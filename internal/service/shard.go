package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Sharding headers. Every /v1/schedule response from a ring member
// carries the owner of the request's canonical hash (X-Shard-Owner)
// and the node that actually served it (X-Served-By). A node forwards
// a request it does not own to the owner exactly once, marking the hop
// with X-Schedd-Forwarded; a request already carrying that header is
// never forwarded again, so inconsistent ring configurations degrade
// to local computation instead of forwarding loops.
const (
	hdrShardOwner = "X-Shard-Owner"
	hdrServedBy   = "X-Served-By"
	hdrForwarded  = "X-Schedd-Forwarded"
)

// Forwarding circuit parameters: a peer that fails this many
// consecutive forwards/probes is skipped for the cooldown, so a dead
// node costs one connection timeout per cooldown instead of per
// request.
const (
	forwardBreakerThreshold = 3
	forwardBreakerCooldown  = 3 * time.Second
)

// shardState is the immutable ring view of one configuration epoch;
// Server.shard swaps it atomically so request paths read a consistent
// (self, ring) pair without locking.
type shardState struct {
	self  string
	ring  *hashRing
	peers []string
	brk   *breakerSet
	// client issues forwards (bounded by the request context) and
	// probes (bounded by probeTimeout).
	client       *http.Client
	probeTimeout time.Duration
}

// shardPtr wraps the atomic pointer so a nil load means "sharding off".
type shardPtr = atomic.Pointer[shardState]

// ConfigurePeers places this node on a consistent-hash ring with
// peers (base URLs, self included). Fewer than two distinct peers
// leaves the node standalone. Safe to call while serving: in-flight
// requests finish under the configuration they started with. The
// static list is only the starting membership — once configured, the
// heartbeat loop and the /v1/ring surface let nodes join, leave, die
// and rejoin without reconfiguring anything (see member.go).
func (s *Server) ConfigurePeers(self string, peers []string) error {
	return s.member.configureStatic(self, peers)
}

// ConfigureJoin points this node at a running ring member instead of a
// static peer list: the membership loop announces the join to seed
// (retrying until it answers) and adopts the cluster view it returns.
func (s *Server) ConfigureJoin(self, seed string) error {
	return s.member.configureJoin(self, seed)
}

// tryForward relays a /v1/schedule request body to the owning peer and
// streams its response back. Returns false — telling the caller to
// compute locally — when the peer's circuit is open, the transport
// fails, or the owner is itself overloaded (503): a sharded ring
// prefers answering from the wrong node over failing from the right
// one. Any other owner response (including 4xx/5xx verdicts about the
// request itself) is authoritative and relayed as-is.
func (s *Server) tryForward(ctx context.Context, w http.ResponseWriter, sh *shardState, owner string, body []byte) bool {
	if _, open := sh.brk.allow(owner, forwardBreakerThreshold); open {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hdrForwarded, sh.self)
	resp, err := sh.client.Do(req)
	if err != nil {
		sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown, err)
		s.met.ObserveForward(owner, false)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		_, _ = io.Copy(io.Discard, resp.Body)
		sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown,
			&StatusError{Method: http.MethodPost, Path: "/v1/schedule", Status: resp.StatusCode})
		s.met.ObserveForward(owner, false)
		return false
	}
	sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown, nil)
	s.met.ObserveForward(owner, true)
	if v := resp.Header.Get(hdrServedBy); v != "" {
		w.Header().Set(hdrServedBy, v)
	}
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// probePeerCache asks one peer whether it already has key's result — a
// cheap GET against its cache, never a computation. Any failure
// (circuit open, timeout, malformed body) degrades to a miss; timeouts
// are counted separately from true misses, since a fleet whose probes
// time out needs a bigger -probe-timeout, not a warmer cache.
func (s *Server) probePeerCache(ctx context.Context, sh *shardState, owner, key string) *ScheduleResponse {
	if _, open := sh.brk.allow(owner, forwardBreakerThreshold); open {
		return nil
	}
	pctx, cancel := context.WithTimeout(ctx, sh.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, owner+"/v1/cache/"+key, nil)
	if err != nil {
		return nil
	}
	resp, err := sh.client.Do(req)
	if err != nil {
		if pctx.Err() != nil && ctx.Err() == nil {
			s.met.ObserveProbe(probeTimeout)
		} else {
			s.met.ObserveProbe(probeError)
		}
		sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown, err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		var obs error // a 404 means healthy-but-cold, not broken
		if resp.StatusCode != http.StatusNotFound {
			obs = &StatusError{Method: http.MethodGet, Path: "/v1/cache/", Status: resp.StatusCode}
			s.met.ObserveProbe(probeError)
		} else {
			s.met.ObserveProbe(probeMiss)
		}
		sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown, obs)
		return nil
	}
	sh.brk.observe(owner, forwardBreakerThreshold, forwardBreakerCooldown, nil)
	var out ScheduleResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.opts.MaxBodyBytes)).Decode(&out); err != nil {
		s.met.ObserveProbe(probeError)
		return nil
	}
	s.met.ObserveProbe(probeHit)
	return &out
}

// probeReplicas walks key's holder set — owner first, then its
// replication successors — probing each peer's cache until one
// answers. With replication disabled the set is just the owner, which
// is exactly the PR 8 lookup; with it, a dead owner's keyspace is
// still one probe away at its successors. skip names a peer to leave
// out (e.g. an owner a forward just failed against).
func (s *Server) probeReplicas(ctx context.Context, sh *shardState, key, skip string) *ScheduleResponse {
	for _, peer := range replicaHolders(sh, key, s.opts.Replication) {
		if peer == sh.self || peer == skip {
			continue
		}
		if resp := s.probePeerCache(ctx, sh, peer, key); resp != nil {
			return resp
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// handleCache serves the peer-cache surface:
//
//	GET /v1/cache/{hash} — the probe. Only ever reads this node's LRU;
//	a probe can never trigger a computation, which is what keeps the
//	tiered lookup cheap.
//	PUT /v1/cache/{hash} — a replication push or handoff: the body (a
//	ScheduleResponse) is stored as a replica copy.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	if !validCacheKey(key) {
		writeError(w, http.StatusBadRequest, "malformed cache key")
		return
	}
	switch r.Method {
	case http.MethodGet:
		if resp, _ := s.cache.Get(key); resp != nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, http.StatusNotFound, "not cached")
	case http.MethodPut:
		var resp ScheduleResponse
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&resp); err != nil {
			writeError(w, http.StatusBadRequest, "decoding replica entry: %v", err)
			return
		}
		if resp.Algorithm == "" {
			writeError(w, http.StatusBadRequest, "replica entry missing algorithm")
			return
		}
		resp.Cached, resp.Coalesced = false, false
		s.cache.PutReplica(key, &resp)
		s.met.ObserveReplicaStore()
		writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or PUT only")
	}
}

// validCacheKey recognises the sha256-hex form cacheKey produces.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
