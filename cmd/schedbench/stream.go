package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"dagsched"
	"dagsched/internal/dag"
	"dagsched/internal/stream"
	"dagsched/internal/testfix"
)

// streamReport is the machine-readable output of the -stream mode: the
// incremental streaming engine measured against full re-planning on the
// same event logs — events/sec, per-flush re-plan latency, and the
// incremental speedup — with an equivalence guard that fails the run if
// the sealed stream schedule diverges from static scheduling of the
// final graph.
type streamReport struct {
	Suite     string            `json:"suite"`
	GoVersion string            `json:"go_version"`
	GoOSArch  string            `json:"goos_goarch"`
	CPU       string            `json:"cpu"`
	Config    streamBenchConfig `json:"config"`
	Points    []streamPoint     `json:"points"`
}

type streamBenchConfig struct {
	Procs     int    `json:"procs"`
	Algorithm string `json:"algorithm"`
	Reps      int    `json:"reps"`
	Seed      int64  `json:"seed"`
}

// streamPoint is one (tasks, batch-size) design point. Speedup is the
// full-recompute replay wall-clock over the incremental replay
// wall-clock for the identical event log; DigestMatch records that both
// sealed schedules are assignment-for-assignment identical to the
// static oracle.
type streamPoint struct {
	N           int       `json:"n"`
	Batch       int       `json:"batch"`
	Events      int       `json:"events"`
	Incremental streamLeg `json:"incremental"`
	Full        streamLeg `json:"full_recompute"`
	Speedup     float64   `json:"incremental_speedup"`
	DigestMatch bool      `json:"digest_match"`
	Makespan    float64   `json:"makespan"`
}

// streamLeg is one engine mode's measurements over the log: best-of-reps
// replay wall-clock, event ingestion rate, and the latency distribution
// of the individual re-plans (one sample per delta, pooled across reps).
type streamLeg struct {
	TotalMs      float64 `json:"total_ms"`
	EventsPerS   float64 `json:"events_per_s"`
	Replans      int     `json:"replans"`
	ReplanMeanMs float64 `json:"replan_mean_ms"`
	ReplanP99Ms  float64 `json:"replan_p99_ms"`
	ReplanMaxMs  float64 `json:"replan_max_ms"`
}

// runStream benchmarks incremental re-planning against the
// full-recompute baseline. Each design point replays one event log —
// every task and edge of a random heterogeneous instance fed in
// topological arrival order, auto-flushing every batch events — through
// both engine modes, so the comparison is over identical inputs and
// identical flush points. Small batches are the regime the streaming
// engine exists for: many re-plans over a growing graph, where the
// suffix/repair path must beat scheduling from scratch each time.
func runStream(outPath string, reps int, seed int64, quick bool) error {
	ns := []int{1000, 10000}
	batches := []int{8, 32}
	if quick {
		ns = []int{1000}
		batches = []int{32}
	}
	if reps <= 0 {
		reps = 3
	}
	const procs, alg = 8, "HEFT"

	rep := streamReport{
		Suite:     "dagsched-stream",
		GoVersion: runtime.Version(),
		GoOSArch:  runtime.GOOS + "/" + runtime.GOARCH,
		CPU:       cpuModel(),
		Config:    streamBenchConfig{Procs: procs, Algorithm: alg, Reps: reps, Seed: seed},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
		if err != nil {
			return err
		}
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: procs, CCR: 1, Beta: 1}, rng)
		if err != nil {
			return err
		}
		arrival := make([]dag.TaskID, n)
		for i := range arrival {
			arrival[i] = dag.TaskID(i)
		}
		evs, err := stream.InstanceEvents(in, arrival)
		if err != nil {
			return err
		}

		// The static oracle: the same final graph through the Builder
		// path, scheduled in one shot.
		oracle, err := stream.StaticInstance(evs, in.Sys, "")
		if err != nil {
			return err
		}
		a, err := dagsched.AlgorithmByName(alg)
		if err != nil {
			return err
		}
		static, err := a.Schedule(oracle)
		if err != nil {
			return err
		}
		wantDigest := testfix.ScheduleDigest(static)

		for _, batch := range batches {
			pt := streamPoint{N: n, Batch: batch, Events: len(evs), Makespan: static.Makespan()}
			match := true
			for _, full := range []bool{false, true} {
				cfg := stream.Config{Algorithm: alg, Sys: in.Sys, BatchSize: batch, FullRecompute: full}
				leg, eng, err := replayLeg(cfg, evs, reps)
				if err != nil {
					return fmt.Errorf("n=%d batch=%d full=%v: %w", n, batch, full, err)
				}
				if !eng.Sealed() {
					return fmt.Errorf("n=%d batch=%d full=%v: log did not seal", n, batch, full)
				}
				if d := testfix.ScheduleDigest(eng.Schedule()); d != wantDigest {
					match = false
					fmt.Fprintf(os.Stderr, "stream: n=%d batch=%d full=%v: sealed schedule diverges from the static oracle\n",
						n, batch, full)
				}
				if full {
					pt.Full = leg
				} else {
					pt.Incremental = leg
				}
			}
			pt.DigestMatch = match
			pt.Speedup = pt.Full.TotalMs / pt.Incremental.TotalMs
			fmt.Fprintf(os.Stderr, "stream: n=%d batch=%d  incremental=%.1fms  full=%.1fms  speedup=%.2fx\n",
				n, batch, pt.Incremental.TotalMs, pt.Full.TotalMs, pt.Speedup)
			rep.Points = append(rep.Points, pt)
		}
	}
	for _, pt := range rep.Points {
		if !pt.DigestMatch {
			return fmt.Errorf("equivalence guard failed: sealed stream schedules diverge from the static oracle")
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

// replayLeg replays the log reps times under one engine mode, keeping
// the best total wall-clock (per-Apply timings from that same best rep)
// and returning the final engine for the equivalence guard.
func replayLeg(cfg stream.Config, evs []stream.Event, reps int) (streamLeg, *stream.Engine, error) {
	var best time.Duration
	var bestLats []float64
	var bestEng *stream.Engine
	for r := 0; r < reps; r++ {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			return streamLeg{}, nil, err
		}
		lats := make([]float64, 0, len(evs)/max(cfg.BatchSize, 1)+2)
		var total time.Duration
		for i, ev := range evs {
			start := time.Now()
			d, err := eng.Apply(ev)
			el := time.Since(start)
			if err != nil {
				return streamLeg{}, nil, fmt.Errorf("event %d: %w", i, err)
			}
			total += el
			if d != nil {
				lats = append(lats, float64(el.Microseconds())/1000)
			}
		}
		if bestEng == nil || total < best {
			best, bestLats, bestEng = total, lats, eng
		}
	}
	leg := streamLeg{
		TotalMs:    float64(best.Microseconds()) / 1000,
		EventsPerS: float64(len(evs)) / best.Seconds(),
		Replans:    len(bestLats),
	}
	var sum float64
	for _, l := range bestLats {
		sum += l
	}
	if len(bestLats) > 0 {
		sorted := append([]float64(nil), bestLats...)
		sort.Float64s(sorted)
		leg.ReplanMeanMs = sum / float64(len(bestLats))
		leg.ReplanP99Ms = quantile(sorted, 0.99)
		leg.ReplanMaxMs = sorted[len(sorted)-1]
	}
	return leg, bestEng, nil
}
