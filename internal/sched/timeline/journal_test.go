package timeline

import (
	"math"
	"math/rand"
	"testing"
)

func gapsEqual(a, b []Gap) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOccupyLoggedRevertExact drives random occupy bursts and asserts
// that reverting them in LIFO order restores the exact gap set and
// priority counter — the invariant sched.Txn.Undo depends on.
func TestOccupyLoggedRevertExact(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gi := New(eps)
		// A committed baseline of real assignments.
		for i := 0; i < 20; i++ {
			ready := rng.Float64() * 40
			dur := rng.Float64() * 3
			s, _ := gi.EarliestFit(ready, dur)
			gi.Occupy(s, s+dur)
		}
		for burst := 0; burst < 50; burst++ {
			before := gi.Gaps()
			ctrBefore := gi.ctr
			var logs []OccupyLog
			for k := rng.Intn(4) + 1; k > 0; k-- {
				ready := rng.Float64() * 60
				dur := rng.Float64() * 4
				s, ok := gi.EarliestFit(ready, dur)
				if !ok {
					t.Fatal("index degraded unexpectedly")
				}
				logs = append(logs, gi.OccupyLogged(s, s+dur))
			}
			for i := len(logs) - 1; i >= 0; i-- {
				gi.Revert(logs[i])
			}
			if !gapsEqual(gi.Gaps(), before) {
				t.Fatalf("seed %d burst %d: gap set not restored\n got %v\nwant %v", seed, burst, gi.Gaps(), before)
			}
			if gi.ctr != ctrBefore {
				t.Fatalf("seed %d burst %d: priority counter %d, want %d", seed, burst, gi.ctr, ctrBefore)
			}
		}
	}
}

// TestSnapshotIsolation asserts the O(1) snapshot contract: while the
// parent is frozen, a snapshot can be occupied and reverted arbitrarily
// without the parent's answers changing, and an undisturbed sibling
// snapshot still sees the parent's state.
func TestSnapshotIsolation(t *testing.T) {
	gi := New(eps)
	gi.Occupy(2, 4)
	gi.Occupy(10, 12)
	parentGaps := gi.Gaps()

	snapA := gi.Snapshot()
	snapB := gi.Snapshot()

	// Mutate snapA heavily: fill the first gap, split the middle one.
	snapA.Occupy(0, 2)
	l := snapA.OccupyLogged(5, 7)
	snapA.Occupy(12, 20)
	snapA.Revert(l)

	if !gapsEqual(gi.Gaps(), parentGaps) {
		t.Fatalf("parent gaps changed under snapshot mutation:\n got %v\nwant %v", gi.Gaps(), parentGaps)
	}
	if !gapsEqual(snapB.Gaps(), parentGaps) {
		t.Fatalf("sibling snapshot polluted:\n got %v\nwant %v", snapB.Gaps(), parentGaps)
	}
	// snapA's own view reflects exactly its surviving occupies.
	s, ok := snapA.EarliestFit(0, 1)
	if !ok || s != 4 {
		t.Fatalf("snapA EarliestFit(0,1) = %v,%v want 4,true", s, ok)
	}
	// The parent still answers from its own intact state.
	s, ok = gi.EarliestFit(0, 1)
	if !ok || s != 0 {
		t.Fatalf("parent EarliestFit(0,1) = %v,%v want 0,true", s, ok)
	}
}

// TestSnapshotOfSnapshot asserts chained snapshots (txn of a committed
// txn state) keep the same isolation guarantee.
func TestSnapshotOfSnapshot(t *testing.T) {
	gi := New(eps)
	gi.Occupy(0, 5)
	s1 := gi.Snapshot()
	s1.Occupy(5, 8)
	base := s1.Gaps()
	s2 := s1.Snapshot()
	s2.Occupy(8, 30)
	if !gapsEqual(s1.Gaps(), base) {
		t.Fatalf("first snapshot mutated by second: %v want %v", s1.Gaps(), base)
	}
	if got, _ := s2.EarliestFit(0, 1); got != 30 {
		t.Fatalf("second snapshot EarliestFit = %v, want 30", got)
	}
}

// TestRevertOnDegradedIndex asserts degradation is sticky: a revert never
// resurrects a degraded index, and reverting a record that itself caused
// degradation is a no-op.
func TestRevertOnDegradedIndex(t *testing.T) {
	gi := New(eps)
	gi.Occupy(10, 20)
	// Straddle the assignment: degrades.
	l := gi.OccupyLogged(15, 25)
	if !l.Degraded || gi.OK() {
		t.Fatal("straddling OccupyLogged must degrade the index")
	}
	gi.Revert(l)
	if gi.OK() {
		t.Fatal("revert must not resurrect a degraded index")
	}
	if _, ok := gi.EarliestFit(0, 1); ok {
		t.Fatal("degraded index must keep refusing queries after revert")
	}
	// A log captured before degradation also reverts to nothing once the
	// index is down.
	gi2 := New(eps)
	good := gi2.OccupyLogged(0, 1)
	gi2.Occupy(5, 6)
	gi2.OccupyLogged(5.5, 10) // degrade
	gi2.Revert(good)
	if gi2.OK() {
		t.Fatal("degradation must be permanent")
	}
}

// TestSnapshotInheritsDegradation asserts a snapshot of a degraded index
// is itself degraded and harmless.
func TestSnapshotInheritsDegradation(t *testing.T) {
	gi := New(eps)
	gi.Occupy(10, 20)
	gi.Occupy(15, 25) // degrade
	sn := gi.Snapshot()
	if sn.OK() {
		t.Fatal("snapshot of degraded index reports OK")
	}
	if _, ok := sn.EarliestFit(0, math.SmallestNonzeroFloat64); ok {
		t.Fatal("degraded snapshot answered a query")
	}
}
