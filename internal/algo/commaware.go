package algo

import (
	"context"

	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// CommAware runs any registry algorithm contention-aware: it rebinds the
// instance to a contended communication model (sched.Instance.WithComm)
// and delegates, so the inner algorithm's own EFT queries, duplication
// trials and transactions all flow through the shared reservation layer
// in internal/platform — no scheduler needs bespoke contention code.
//
// Model resolution, most specific first: an instance already carrying a
// contended model is scheduled as-is (the service selects models this
// way); otherwise Model is used when set; otherwise Kind is built over
// the instance's system (empty Kind defaults to one-port).
type CommAware struct {
	// Inner is the wrapped algorithm (required).
	Inner Algorithm
	// Kind names the platform model built over the instance's system when
	// neither the instance nor Model specifies one; empty means one-port.
	Kind string
	// Model, when non-nil, overrides Kind with a prebuilt model.
	Model platform.CommModel
	// DisplayName overrides the default "C-" + Inner.Name().
	DisplayName string
}

// Name implements Algorithm.
func (c CommAware) Name() string {
	if c.DisplayName != "" {
		return c.DisplayName
	}
	return "C-" + c.Inner.Name()
}

func (c CommAware) rebind(in *sched.Instance) (*sched.Instance, error) {
	if in.CommModel() != nil && in.CommKind() != platform.KindContentionFree {
		return in, nil
	}
	m := c.Model
	if m == nil {
		kind := c.Kind
		if kind == "" {
			kind = platform.KindOnePort
		}
		var err error
		if m, err = platform.ModelByKind(kind, in.Sys); err != nil {
			return nil, err
		}
	}
	return in.WithComm(m), nil
}

// Schedule implements Algorithm.
func (c CommAware) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	bound, err := c.rebind(in)
	if err != nil {
		return nil, err
	}
	s, err := c.Inner.Schedule(bound)
	if err != nil {
		return nil, err
	}
	return s.Renamed(c.Name()), nil
}

// ScheduleContext implements CtxScheduler, delegating cancellation to the
// inner algorithm when it supports it.
func (c CommAware) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	bound, err := c.rebind(in)
	if err != nil {
		return nil, err
	}
	s, err := ScheduleContext(ctx, c.Inner, bound)
	if err != nil {
		return nil, err
	}
	return s.Renamed(c.Name()), nil
}
