package sched

import (
	"fmt"
	"math"

	"dagsched/internal/dag"
)

// Tree-indexed processor selection: BestEFT over a bound-pruned tournament
// heap. The linear scan pays a full EFT evaluation — data-ready loop over
// predecessors × copies plus a gap query — on every processor. At large P
// most of those evaluations are wasted on processors that cannot win. The
// heap orders processors by a cheap lower bound on their finish time and
// evaluates exact EFTs in bound order, stopping as soon as the next bound
// proves no remaining processor can beat (or tie-break past) the incumbent.
//
// Correctness rests on the bounds being true float lower bounds of the
// exact finish:
//
//   - readyLB = max over predecessors of the minimum copy finish. Every
//     arrival is copyFinish + comm with comm >= 0 (contended transfers
//     start at or after the copy's release), and float addition of a
//     non-negative term never rounds below the other operand, so
//     DataReady >= readyLB on every processor.
//   - FindSlot is monotone in ready, so start >= FindSlot(p, 0, dur) —
//     queried through the gap index when it is exact — and also
//     start >= readyLB. Float addition is monotone, so
//     finish = fl(start+dur) >= fl(bound+dur).
//
// A blocked processor's exact finish is +Inf, which every bound trivially
// under-estimates. The pop rule keeps the canonical tie-break (smallest
// finish, then smallest processor id) bit-identical to the linear scan.

// TreeSelectThreshold is the processor count from which BestEFT switches
// from the linear scan to the bound-pruned heap. Below it the heap's
// bookkeeping costs more than the handful of exact evaluations it avoids.
// Tests lower it (together with ForceTreeSelect) to drive the heap on
// small systems.
var TreeSelectThreshold = 32

// ForceTreeSelect pins BestEFT to the heap path regardless of the
// processor count; it exists for the differential tests that prove the two
// paths bit-identical on the golden suite.
var ForceTreeSelect = false

// procCand is one heap entry: a processor and the lower bound on the
// finish time task i would achieve there.
type procCand struct {
	lb float64
	p  int32
}

// bestEFTTree is the heap-pruned BestEFT. It returns exactly what the
// linear scan returns, including the (proc 0, +Inf, +Inf) answer when
// every processor is blocked.
func (pl *Plan) bestEFTTree(i dag.TaskID, insertion bool) (proc int, start, finish float64) {
	// Processor-independent ready bound: the earliest any input of i can
	// exist anywhere.
	readyLB := 0.0
	for _, pe := range pl.in.G.Pred(i) {
		copies := pl.byTask[pe.To]
		if len(copies) == 0 {
			panic(fmt.Sprintf("sched: task %d scheduled before predecessor %d", i, pe.To))
		}
		minFinish := math.Inf(1)
		for _, c := range copies {
			if c.Finish < minFinish {
				minFinish = c.Finish
			}
		}
		if minFinish > readyLB {
			readyLB = minFinish
		}
	}

	P := pl.in.P()
	heap := make([]procCand, P)
	for p := 0; p < P; p++ {
		dur := pl.in.Cost(i, p)
		bound := readyLB
		if insertion {
			if fit, ok := pl.gaps[p].EarliestFit(0, dur); ok && fit > bound {
				bound = fit
			}
		} else if pr := pl.ProcReady(p); pr > bound {
			bound = pr
		}
		heap[p] = procCand{lb: bound + dur, p: int32(p)}
	}
	heapify(heap)

	proc, start, finish = 0, math.Inf(1), math.Inf(1)
	for len(heap) > 0 {
		cand := heap[0]
		heap = heapPop(heap)
		p := int(cand.p)
		// No remaining processor can beat the incumbent: every unpopped
		// bound is >= cand.lb, and a later processor tying the incumbent's
		// finish loses the id tie-break.
		if !(cand.lb < finish || (cand.lb == finish && p < proc)) {
			break
		}
		s, f := pl.EFTOn(i, p, insertion)
		if f < finish || (f == finish && p < proc) {
			proc, start, finish = p, s, f
		}
	}
	return proc, start, finish
}

// heapLess orders candidates by (bound, processor id): popping in this
// order makes the evaluation sequence — and therefore the tie-break
// outcome — deterministic.
func heapLess(a, b procCand) bool {
	if a.lb != b.lb {
		return a.lb < b.lb
	}
	return a.p < b.p
}

func heapify(h []procCand) {
	for k := len(h)/2 - 1; k >= 0; k-- {
		heapDown(h, k)
	}
}

func heapPop(h []procCand) []procCand {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if len(h) > 1 {
		heapDown(h, 0)
	}
	return h
}

func heapDown(h []procCand, k int) {
	for {
		l := 2*k + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && heapLess(h[r], h[l]) {
			m = r
		}
		if !heapLess(h[m], h[k]) {
			return
		}
		h[k], h[m] = h[m], h[k]
		k = m
	}
}
