// Command schedbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	schedbench                  # the full suite E1..E23 as markdown
//	schedbench -exp E2,E9       # selected experiments
//	schedbench -quick           # reduced sweeps (seconds instead of minutes)
//	schedbench -reps 50 -seed 7 # more repetitions, different seed
//	schedbench -scale           # scheduler-throughput sweep -> BENCH_sched.json
//	schedbench -scale -out -    # same, JSON on stdout
//	schedbench -service         # serving-tier batch benchmark -> BENCH_service.json
//	schedbench -stream          # streaming-engine benchmark -> BENCH_stream.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dagsched"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids (e.g. E1,E9) or 'all'")
		reps    = flag.Int("reps", 0, "repetitions per design point (0 = experiment default)")
		seed    = flag.Int64("seed", 0, "base random seed")
		quick   = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		workers = flag.Int("workers", 0, "repetition worker pool size (0 = GOMAXPROCS); never affects results")
		scale   = flag.Bool("scale", false, "run the scheduler-throughput sweep instead of the experiment suite")
		svc     = flag.Bool("service", false, "run the serving-tier batch benchmark instead of the experiment suite")
		strm    = flag.Bool("stream", false, "run the streaming-engine benchmark (incremental vs full re-plan) instead of the experiment suite")
		out     = flag.String("out", "", "output path for -scale/-service/-stream ('-' = stdout; default BENCH_sched.json / BENCH_service.json / BENCH_stream.json)")
		linkSp  = flag.Float64("link-spread", 0, "per-link transfer-rate spread in [0,2) for -scale instances (0 = uniform links)")
		startSp = flag.Float64("startup-spread", 0, "per-link startup spread in [0,2) for -scale instances")
		faults    = flag.String("faults", "", "comma-separated crash rates for the robustness experiment E21 (overrides its default sweep)")
		faultSeed = flag.Int64("fault-seed", 0, "fault-plan sampling seed offset for E21")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*scale, *svc, *strm} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatal(fmt.Errorf("-scale, -service and -stream are mutually exclusive"))
	}
	if *scale {
		path := *out
		if path == "" {
			path = "BENCH_sched.json"
		}
		if err := runScale(path, *reps, *seed, *quick, *linkSp, *startSp); err != nil {
			fatal(err)
		}
		return
	}
	if *svc {
		path := *out
		if path == "" {
			path = "BENCH_service.json"
		}
		if err := runService(path, *reps, *seed, *quick); err != nil {
			fatal(err)
		}
		return
	}
	if *strm {
		path := *out
		if path == "" {
			path = "BENCH_stream.json"
		}
		if err := runStream(path, *reps, *seed, *quick); err != nil {
			fatal(err)
		}
		return
	}

	var selected []dagsched.Experiment
	if *exps == "all" {
		selected = dagsched.Experiments()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e, err := dagsched.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}
	cfg := dagsched.ExperimentConfig{Reps: *reps, Seed: *seed, Quick: *quick, Workers: *workers, FaultSeed: *faultSeed}
	if *faults != "" {
		for _, s := range strings.Split(*faults, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || r < 0 || r > 1 {
				fatal(fmt.Errorf("-faults: crash rate %q must be a number in [0,1]", s))
			}
			cfg.FaultRates = append(cfg.FaultRates, r)
		}
	}
	fmt.Printf("# dagsched experiment suite (%d experiments, quick=%v, seed=%d)\n\n",
		len(selected), *quick, *seed)
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, t := range tables {
			if err := dagsched.RenderExperimentMarkdown(os.Stdout, t); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedbench:", err)
	os.Exit(1)
}
