package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
	"dagsched/internal/workload"
)

// slowAlg blocks for delay (or until cancellation) before delegating to
// HEFT, counting how many runs started and how many ran to completion.
type slowAlg struct {
	name        string
	delay       time.Duration
	starts      atomic.Int64
	completions atomic.Int64
}

func (s *slowAlg) Name() string { return s.name }

func (s *slowAlg) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return s.ScheduleContext(context.Background(), in)
}

func (s *slowAlg) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	s.starts.Add(1)
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("%s: %w", s.name, ctx.Err())
	case <-t.C:
	}
	sch, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		return nil, err
	}
	s.completions.Add(1)
	return sch, nil
}

var _ algo.CtxScheduler = (*slowAlg)(nil)

// startServer launches a server on an ephemeral port and returns a
// client bound to it. The server is shut down when the test ends.
func startServer(t *testing.T, opts service.Options) (*service.Server, *service.Client) {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	s := service.New(opts)
	addr, err := s.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, &service.Client{BaseURL: "http://" + addr}
}

func instanceJSON(t *testing.T, in *sched.Instance) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestEndToEndConcurrentMixed hammers a 2-worker server with 40
// concurrent requests mixing algorithms, instance and graph payloads and
// the analyze option; every one must succeed. A second identical round
// must be served from the cache, and /metrics must reflect all of it.
func TestEndToEndConcurrentMixed(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2, QueueDepth: 64, CacheSize: 128})

	inst := instanceJSON(t, testfix.Topcuoglu())
	g, err := workload.ForkJoin(3, 2)
	if err != nil {
		t.Fatalf("ForkJoin: %v", err)
	}
	var gbuf bytes.Buffer
	if err := g.WriteJSON(&gbuf); err != nil {
		t.Fatalf("graph WriteJSON: %v", err)
	}
	graph := json.RawMessage(gbuf.Bytes())

	instAlgs := []string{"HEFT", "CPOP", "ILS", "DLS", "HCPT", "PETS", "DSH", "BTDH"}
	graphAlgs := []string{"MCP", "ETF", "HLFET", "ISH"}
	var reqs []service.ScheduleRequest
	for i := 0; i < 24; i++ {
		reqs = append(reqs, service.ScheduleRequest{
			Algorithm: instAlgs[i%len(instAlgs)],
			Instance:  inst,
			Analyze:   i%3 == 0,
		})
	}
	for i := 0; i < 16; i++ {
		reqs = append(reqs, service.ScheduleRequest{
			Algorithm:  graphAlgs[i%len(graphAlgs)],
			Graph:      graph,
			Processors: 2 + i%3,
			Analyze:    i%2 == 0,
		})
	}
	if len(reqs) < 32 {
		t.Fatalf("want >= 32 mixed requests, built %d", len(reqs))
	}

	run := func() []*service.ScheduleResponse {
		out := make([]*service.ScheduleResponse, len(reqs))
		errs := make([]error, len(reqs))
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out[i], errs[i] = c.Schedule(context.Background(), reqs[i])
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("request %d (%s): %v", i, reqs[i].Algorithm, err)
			}
		}
		return out
	}

	for i, resp := range run() {
		if resp.Makespan <= 0 {
			t.Errorf("request %d: makespan %v, want > 0", i, resp.Makespan)
		}
		if len(resp.Assignments) == 0 {
			t.Errorf("request %d: no assignments", i)
		}
		if reqs[i].Analyze && resp.Analysis == nil {
			t.Errorf("request %d: analyze requested but no analysis returned", i)
		}
		if !reqs[i].Analyze && resp.Analysis != nil {
			t.Errorf("request %d: unexpected analysis", i)
		}
	}

	// Identical round: every response must now come from the cache.
	for i, resp := range run() {
		if !resp.Cached {
			t.Errorf("repeat request %d (%s): not served from cache", i, reqs[i].Algorithm)
		}
	}

	if err := c.Health(context.Background()); err != nil {
		t.Errorf("healthz: %v", err)
	}
	names, err := c.Algorithms(context.Background())
	if err != nil || len(names) == 0 {
		t.Errorf("algorithms: %v (%d names)", err, len(names))
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Requests.Total < int64(2*len(reqs)) {
		t.Errorf("requests.total = %d, want >= %d", m.Requests.Total, 2*len(reqs))
	}
	if m.Cache.Hits == 0 || m.Cache.HitRate <= 0 {
		t.Errorf("cache hits = %d, hit rate = %v; want > 0 after repeated requests", m.Cache.Hits, m.Cache.HitRate)
	}
	if m.Queue.Workers != 2 {
		t.Errorf("queue.workers = %d, want 2", m.Queue.Workers)
	}
	if m.LatencyMs.Count == 0 {
		t.Errorf("latency histogram empty")
	}
	hs, ok := m.Algorithms["HEFT"]
	if !ok || hs.Count == 0 {
		t.Fatalf("metrics missing HEFT accumulators: %+v", m.Algorithms)
	}
	if hs.Makespan.Min == nil || hs.Makespan.Max == nil {
		t.Errorf("HEFT makespan min/max should be set after %d runs", hs.Count)
	}
	// The cache-tier breakdown must account for every scheduling item:
	// first round misses, repeat round hits the local tier; this
	// unsharded node never touches the peer tier.
	if m.Cache.Tier.Local == 0 || m.Cache.Tier.Miss == 0 {
		t.Errorf("cache tier breakdown = %+v; want local and miss > 0 after a cached repeat round", m.Cache.Tier)
	}
	if m.Cache.Tier.Peer != 0 {
		t.Errorf("cache.tier.peer = %d on a single node, want 0", m.Cache.Tier.Peer)
	}
	if m.Shard.Enabled {
		t.Errorf("shard.enabled on an unsharded server")
	}
	if m.Batch.SizeHistogram.Buckets == nil {
		t.Errorf("batch size histogram absent from /metrics")
	}
}

// TestDeadlineAbortsPromptly submits a request whose deadline expires
// mid-run; the response must arrive promptly (long before the
// algorithm's natural runtime) and the run must never complete.
func TestDeadlineAbortsPromptly(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 30 * time.Second}
	_, c := startServer(t, service.Options{
		Workers: 1,
		Resolver: func(name string) (algo.Algorithm, error) {
			return slow, nil
		},
	})

	start := time.Now()
	_, err := c.Schedule(context.Background(), service.ScheduleRequest{
		Algorithm: "slow",
		Instance:  instanceJSON(t, testfix.Topcuoglu()),
		TimeoutMs: 100,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("want deadline error, got success")
	}
	if !strings.Contains(err.Error(), "HTTP 504") {
		t.Errorf("want HTTP 504, got: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline response took %v, want prompt return", elapsed)
	}
	if n := slow.completions.Load(); n != 0 {
		t.Errorf("algorithm ran to completion %d times despite expired deadline", n)
	}
}

// TestExpiredWhileQueued occupies the single worker, then submits a
// short-deadline request that expires in the queue: it must be answered
// without the algorithm ever starting.
func TestExpiredWhileQueued(t *testing.T) {
	blocker := &slowAlg{name: "blocker", delay: 700 * time.Millisecond}
	victim := &slowAlg{name: "victim", delay: 0}
	algs := map[string]*slowAlg{"blocker": blocker, "victim": victim}
	_, c := startServer(t, service.Options{
		Workers: 1,
		Resolver: func(name string) (algo.Algorithm, error) {
			a, ok := algs[name]
			if !ok {
				return nil, fmt.Errorf("unknown %q", name)
			}
			return a, nil
		},
	})

	inst := instanceJSON(t, testfix.Topcuoglu())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "blocker", Instance: inst}); err != nil {
			t.Errorf("blocker request: %v", err)
		}
	}()
	// Let the blocker reach the worker before queueing the victim.
	deadline := time.Now().Add(2 * time.Second)
	for blocker.starts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "victim", Instance: inst, TimeoutMs: 50})
	if err == nil || !strings.Contains(err.Error(), "HTTP 504") {
		t.Errorf("queued victim: want HTTP 504, got: %v", err)
	}
	wg.Wait()
	if n := victim.starts.Load(); n != 0 {
		t.Errorf("victim algorithm started %d times despite expiring in the queue", n)
	}
}

// TestShutdownDrainsInFlight verifies graceful shutdown: requests in
// flight (running and queued) when Shutdown is called all complete.
func TestShutdownDrainsInFlight(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 300 * time.Millisecond}
	s, c := startServer(t, service.Options{
		Workers: 2,
		Resolver: func(name string) (algo.Algorithm, error) {
			return slow, nil
		},
		// Distinct cache keys per request come from distinct algorithm
		// names; caching stays on to exercise the full path.
	})

	inst := instanceJSON(t, testfix.Topcuoglu())
	const inflight = 4
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Schedule(context.Background(), service.ScheduleRequest{
				Algorithm: fmt.Sprintf("slow-%d", i),
				Instance:  inst,
			})
		}(i)
	}
	// Wait until the pool is saturated (2 running, 2 queued).
	deadline := time.Now().Add(2 * time.Second)
	for slow.starts.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up jobs")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d failed across shutdown: %v", i, err)
		}
	}
	if n := slow.completions.Load(); n != inflight {
		t.Errorf("completions = %d, want %d (drain must finish queued work)", n, inflight)
	}
}

// TestOverloadAnswers503 floods a 1-worker, 1-deep queue: the overflow
// must be rejected immediately with 503 rather than piling up.
func TestOverloadAnswers503(t *testing.T) {
	slow := &slowAlg{name: "slow", delay: 400 * time.Millisecond}
	_, c := startServer(t, service.Options{
		Workers:    1,
		QueueDepth: 1,
		Resolver: func(name string) (algo.Algorithm, error) {
			return slow, nil
		},
	})
	// The client retries 503s by default, which would mask the raw
	// overload surface this test pins down.
	c.Retry = &service.RetryPolicy{MaxAttempts: 1}

	inst := instanceJSON(t, testfix.Topcuoglu())
	const n = 6
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Schedule(context.Background(), service.ScheduleRequest{
				Algorithm: fmt.Sprintf("slow-%d", i),
				Instance:  inst,
			})
		}(i)
	}
	wg.Wait()
	var ok, rejected int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case strings.Contains(err.Error(), "queue full"):
			rejected++
		default:
			t.Errorf("unexpected error under overload: %v", err)
		}
	}
	if rejected == 0 {
		t.Errorf("no request was rejected with queue full (%d ok)", ok)
	}
	if ok == 0 {
		t.Errorf("no request succeeded under overload")
	}
}

// TestRequestValidation covers the 4xx paths.
func TestRequestValidation(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	inst := instanceJSON(t, testfix.Topcuoglu())

	cases := []struct {
		name string
		req  service.ScheduleRequest
		want string
	}{
		{"unknown algorithm", service.ScheduleRequest{Algorithm: "NOPE", Instance: inst}, "HTTP 400"},
		{"no payload", service.ScheduleRequest{Algorithm: "HEFT"}, "HTTP 400"},
		{"missing algorithm", service.ScheduleRequest{Instance: inst}, "HTTP 400"},
	}
	for _, tc := range cases {
		_, err := c.Schedule(context.Background(), tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want %s, got: %v", tc.name, tc.want, err)
		}
	}

	resp, err := http.Get(c.BaseURL + "/v1/schedule")
	if err != nil {
		t.Fatalf("GET /v1/schedule: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/schedule: status %d, want 405", resp.StatusCode)
	}
}
