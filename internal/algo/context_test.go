package algo_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/algo/search"
	"dagsched/internal/core"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestScheduleContextLiveContext(t *testing.T) {
	in := testfix.Topcuoglu()
	for _, a := range []algo.Algorithm{listsched.HEFT{}, core.New(), listsched.CPOP{}} {
		s, err := algo.ScheduleContext(context.Background(), a, in)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
}

func TestScheduleContextPreCanceled(t *testing.T) {
	in := testfix.Topcuoglu()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Both a CtxScheduler and a plain Algorithm refuse a dead context.
	for _, a := range []algo.Algorithm{
		listsched.HEFT{},
		listsched.CPOP{}, // no ScheduleContext: checked by the dispatcher
	} {
		if _, err := algo.ScheduleContext(ctx, a, in); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", a.Name(), err)
		}
	}
}

func TestScheduleContextAbortsMidRun(t *testing.T) {
	in := testfix.Topcuoglu()
	for _, a := range []algo.Algorithm{
		core.New(),
		listsched.HEFT{},
		search.HillClimb{Iters: 1 << 30},
		search.Anneal{Iters: 1 << 30},
		search.Genetic{Pop: 16, Gens: 1 << 20},
	} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := algo.ScheduleContext(ctx, a, in)
			done <- err
		}()
		// Give the run a head start, then cancel; an unbounded search
		// without checkpoints would never return.
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			// ILS/HEFT may legitimately finish the tiny instance before
			// the cancel lands; the unbounded searches cannot.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("%s: err = %v", a.Name(), err)
			}
			if err == nil {
				if _, unbounded := a.(search.HillClimb); unbounded {
					t.Fatalf("%s: unbounded search completed", a.Name())
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: did not abort within 10s of cancellation", a.Name())
		}
	}
}

func TestCheckpointNilDone(t *testing.T) {
	c := algo.NewCheckpoint(context.Background(), 1)
	for i := 0; i < 1000; i++ {
		if err := c.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

var _ algo.CtxScheduler = core.ILS{}
var _ algo.CtxScheduler = listsched.HEFT{}
var _ algo.CtxScheduler = search.HillClimb{}
var _ algo.CtxScheduler = search.Anneal{}
var _ algo.CtxScheduler = search.Genetic{}
var _ algo.Algorithm = algo.Func{AlgName: "f", Fn: func(in *sched.Instance) (*sched.Schedule, error) { return nil, nil }}
