package listsched

import (
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// HCPT is the Heterogeneous Critical Parent Trees algorithm of Hagras and
// Janeček (2003). Listing phase: tasks whose mean-cost average earliest
// start time (AEST) equals their average latest start time (ALST) form
// the critical path; critical tasks are visited in ascending ALST and,
// before each is listed, its unlisted parent tree is emitted bottom-up
// (parents in ascending ALST). Machine assignment: insertion-based EFT,
// as in HEFT.
type HCPT struct{}

// Name implements algo.Algorithm.
func (HCPT) Name() string { return "HCPT" }

// Schedule implements algo.Algorithm.
func (HCPT) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	const eps = 1e-9
	// AEST = downward rank (mean costs); ALST = CP − (upward rank), i.e.
	// the latest mean-cost start preserving the critical-path length.
	aest := sched.RankDownward(in)
	up := sched.RankUpward(in)
	cp := 0.0
	for i := range up {
		if up[i]+aest[i] > cp {
			cp = up[i] + aest[i]
		}
	}
	alst := make([]float64, in.N())
	for i := range alst {
		alst[i] = cp - up[i]
	}

	// Critical tasks in ascending ALST.
	var critical []dag.TaskID
	for i := 0; i < in.N(); i++ {
		if alst[i]-aest[i] < eps {
			critical = append(critical, dag.TaskID(i))
		}
	}
	sort.SliceStable(critical, func(a, b int) bool {
		if alst[critical[a]] != alst[critical[b]] {
			return alst[critical[a]] < alst[critical[b]]
		}
		return critical[a] < critical[b]
	})

	listed := make([]bool, in.N())
	var list []dag.TaskID
	// emit lists t's unlisted ancestors (smaller ALST first) then t.
	var emit func(t dag.TaskID)
	emit = func(t dag.TaskID) {
		if listed[t] {
			return
		}
		parents := append([]dag.Adj(nil), in.G.Pred(t)...)
		sort.SliceStable(parents, func(a, b int) bool {
			if alst[parents[a].To] != alst[parents[b].To] {
				return alst[parents[a].To] < alst[parents[b].To]
			}
			return parents[a].To < parents[b].To
		})
		for _, p := range parents {
			emit(p.To)
		}
		listed[t] = true
		list = append(list, t)
	}
	for _, c := range critical {
		emit(c)
	}
	// Any task unreachable from the critical path's ancestor trees (e.g.
	// side branches feeding nothing critical) is appended in ALST order.
	var rest []dag.TaskID
	for i := 0; i < in.N(); i++ {
		if !listed[i] {
			rest = append(rest, dag.TaskID(i))
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		if alst[rest[a]] != alst[rest[b]] {
			return alst[rest[a]] < alst[rest[b]]
		}
		return rest[a] < rest[b]
	})
	for _, t := range rest {
		emit(t)
	}

	pl := sched.NewPlan(in)
	for _, t := range list {
		p, s, _ := pl.BestEFT(t, true)
		pl.Place(t, p, s)
	}
	return pl.Finalize("HCPT"), nil
}
