// Package listsched implements the classic list-scheduling baselines of
// the static-scheduling literature: HEFT, CPOP and DLS for heterogeneous
// systems, and MCP, ETF, HLFET and ISH, which originate in the homogeneous
// literature but are implemented here against the general heterogeneous
// cost model (on a homogeneous system they reduce to their original
// definitions).
package listsched

import (
	"context"
	"fmt"

	"dagsched/internal/algo"
	"dagsched/internal/sched"
)

// HEFT is the Heterogeneous Earliest Finish Time algorithm of Topcuoglu,
// Hariri and Wu (TPDS 2002): tasks ordered by decreasing upward rank, each
// placed on the processor minimizing its insertion-based earliest finish
// time.
type HEFT struct{}

// Name implements algo.Algorithm.
func (HEFT) Name() string { return "HEFT" }

// Schedule implements algo.Algorithm.
func (h HEFT) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return h.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler: the placement loop polls
// the context so a canceled request stops mid-schedule.
func (HEFT) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	order := algo.OrderDescPrecedence(in.G, sched.RankUpward(in))
	pl := sched.NewPlan(in)
	check := algo.NewCheckpoint(ctx, 64)
	for _, t := range order {
		if err := check.Check(); err != nil {
			return nil, fmt.Errorf("HEFT: %w", err)
		}
		p, s, _ := pl.BestEFT(t, true)
		pl.Place(t, p, s)
	}
	return pl.Finalize("HEFT"), nil
}
