package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"dagsched/internal/sched"
)

// cacheKey canonically identifies (instance, algorithm, options): the
// instance is re-serialized through Instance.WriteJSON so two requests
// that parse to the same problem hash identically regardless of the
// JSON formatting they arrived in. The communication-model kind, the
// shared-link bandwidth and the faults block are part of the identity —
// the same problem under one-port, or under a different fault plan, is
// a different scheduling query.
func cacheKey(in *sched.Instance, algorithm string, analyze bool, linkBandwidth float64, faults *FaultsRequest) (string, error) {
	h := sha256.New()
	if err := in.WriteJSON(h); err != nil {
		return "", fmt.Errorf("service: hashing instance: %w", err)
	}
	fmt.Fprintf(h, "|alg=%s|analyze=%v|comm=%s|bw=%g", algorithm, analyze, in.CommKind(), linkBandwidth)
	if faults != nil {
		fw, err := json.Marshal(faults)
		if err != nil {
			return "", fmt.Errorf("service: hashing faults block: %w", err)
		}
		fmt.Fprintf(h, "|faults=%s", fw)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// lruCache is a mutex-guarded LRU of schedule responses with hit/miss
// accounting. Stored responses are treated as immutable: Get returns a
// shallow copy with Cached set, never the stored value itself.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recent
	byKey  map[string]*list.Element // value: *cacheEntry
	hits   int64
	misses int64
}

type cacheEntry struct {
	key  string
	resp *ScheduleResponse
	// replica marks an entry that arrived via a peer's replication
	// push or cache probe rather than local computation — so a hit on
	// it is attributable to replication in the tier metrics.
	replica bool
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns a copy of the cached response marked Cached (or nil),
// plus whether the entry was a replication-delivered copy.
func (c *lruCache) Get(key string) (*ScheduleResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	cp := *e.resp
	cp.Cached = true
	return &cp, e.replica
}

// Put stores a locally computed response, evicting the least recently
// used entry when full. The caller must not mutate resp afterwards.
func (c *lruCache) Put(key string, resp *ScheduleResponse) {
	c.put(key, resp, false)
}

// PutReplica stores a replication-delivered copy. An entry this node
// already computed itself is left alone — local computation is
// authoritative and its tier attribution must not be downgraded.
func (c *lruCache) PutReplica(key string, resp *ScheduleResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	el, ok := c.byKey[key]
	if ok && !el.Value.(*cacheEntry).replica {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.put(key, resp, true)
}

func (c *lruCache) put(key string, resp *ScheduleResponse, replica bool) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.resp, e.replica = resp, replica
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, resp: resp, replica: replica})
	c.byKey[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// cacheSnap is one entry of a cache snapshot.
type cacheSnap struct {
	key  string
	resp *ScheduleResponse
}

// Snapshot returns up to max entries, most recently used first — the
// order anti-entropy sweeps and leave handoffs want, since the hottest
// entries are the ones worth re-delivering under a bound.
func (c *lruCache) Snapshot(max int) []cacheSnap {
	if c.cap <= 0 || max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheSnap, 0, min(max, c.ll.Len()))
	for el := c.ll.Front(); el != nil && len(out) < max; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, cacheSnap{key: e.key, resp: e.resp})
	}
	return out
}

// Stats returns hits, misses and current size.
func (c *lruCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
