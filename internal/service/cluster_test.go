package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dagsched/internal/service"
	"dagsched/internal/testfix"
)

// clusterOpts are the tight failure-detector timings the cluster tests
// run under: suspicion within 150ms of silence, death within 300ms.
func clusterOpts() service.Options {
	return service.Options{
		Workers:           2,
		QueueDepth:        64,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      150 * time.Millisecond,
	}
}

// fetchMetrics GETs one node's /metrics directly (no client retry —
// polling loops want the raw error).
func fetchMetrics(base string) (*service.MetricsSnapshot, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	var snap service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// fetchRingView GETs one node's /v1/ring view.
func fetchRingView(base string) (*service.RingView, error) {
	resp, err := http.Get(base + "/v1/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/ring: HTTP %d", resp.StatusCode)
	}
	var view service.RingView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, err
	}
	return &view, nil
}

// waitFor polls cond until it returns nil or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	var err error
	for time.Now().Before(deadline) {
		if err = cond(); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: %v", what, err)
}

// computeCount sums every algorithm's uncached-run count on one node —
// the "did anything recompute" meter.
func computeCount(snap *service.MetricsSnapshot) int {
	n := 0
	for _, st := range snap.Algorithms {
		n += st.Count
	}
	return n
}

// TestClusterKillRestartRejoin is the self-healing end-to-end: a 3-node
// ring with replication is warmed, one node is killed without warning,
// and the cluster must (a) detect the death and reshard, (b) keep
// serving every request — including the dead node's keyspace, from
// replicas, with zero client-visible failures and zero recomputation —
// and (c) readopt the node when it restarts and joins through a
// survivor, re-warming its cache, with no process restarted anywhere
// else and the client following along via RefreshRing.
func TestClusterKillRestartRejoin(t *testing.T) {
	servers, urls := startCluster(t, 3, clusterOpts())
	inst := instanceJSON(t, testfix.Topcuoglu())
	algs := []string{"HEFT", "CPOP", "DLS", "HCPT", "PETS", "MCP", "ISH"}

	// Warm every key through node 0; forwarding computes each at its
	// owner and replication (R=2 on 3 nodes) copies it everywhere.
	want := make(map[string]string, len(algs))
	for _, alg := range algs {
		resp, _ := postSchedule(t, urls[0], service.ScheduleRequest{Algorithm: alg, Instance: inst})
		want[alg] = scheduleDigest(t, resp)
	}
	waitFor(t, 10*time.Second, "replicas on every node", func() error {
		for i, u := range urls {
			snap, err := fetchMetrics(u)
			if err != nil {
				return err
			}
			if snap.Cache.Size < len(algs) {
				return fmt.Errorf("node %d cache size %d < %d", i, snap.Cache.Size, len(algs))
			}
		}
		return nil
	})

	// Kill node 2 — Shutdown without Leave is a crash as far as the
	// ring is concerned — while clients keep hammering the cluster.
	victim := urls[2]
	survivors := []string{urls[0], urls[1]}
	before := 0
	for _, u := range survivors {
		snap, err := fetchMetrics(u)
		if err != nil {
			t.Fatalf("metrics %s: %v", u, err)
		}
		before += computeCount(snap)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &service.Client{Peers: urls}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				alg := algs[(g+i)%len(algs)]
				resp, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: alg, Instance: inst})
				if err != nil {
					errs <- fmt.Errorf("client %d: %s: %v", g, alg, err)
					return
				}
				if d := scheduleDigest(t, resp); d != want[alg] {
					errs <- fmt.Errorf("client %d: %s digest changed during failover", g, alg)
					return
				}
			}
		}(g)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := servers[2].Shutdown(ctx); err != nil {
		t.Fatalf("killing node 2: %v", err)
	}
	cancel()

	// Survivors must detect the death and swap to a 2-node ring.
	waitFor(t, 10*time.Second, "death detection on both survivors", func() error {
		for _, u := range survivors {
			snap, err := fetchMetrics(u)
			if err != nil {
				return err
			}
			if snap.Cluster.Dead < 1 {
				return fmt.Errorf("%s: dead = %d", u, snap.Cluster.Dead)
			}
			if !snap.Cluster.Enabled {
				return fmt.Errorf("%s: sharding off after death", u)
			}
		}
		return nil
	})

	// Let traffic run a little past detection, then stop and demand a
	// clean record: zero failed requests across the kill window.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed during node death: %v", err)
	}

	// The dead node's keyspace must have been served from cache copies,
	// not recomputed: compute counts across survivors are unchanged and
	// replica-tier hits appeared.
	afterCompute, replicaHits := 0, int64(0)
	for _, u := range survivors {
		snap, err := fetchMetrics(u)
		if err != nil {
			t.Fatalf("metrics %s: %v", u, err)
		}
		afterCompute += computeCount(snap)
		replicaHits += snap.Cache.Tier.Replica + snap.Cache.Tier.Peer
	}
	if afterCompute != before {
		t.Errorf("survivors recomputed: %d runs before kill, %d after", before, afterCompute)
	}
	if replicaHits < 1 {
		t.Errorf("no replica or peer cache hits recorded while serving the dead node's keyspace")
	}

	// Restart the victim on its old address and join through a survivor
	// — no operator-provided peer list, no restart anywhere else.
	o := clusterOpts()
	o.Addr = strings.TrimPrefix(victim, "http://")
	o.SelfURL = victim
	o.JoinURL = survivors[0]
	reborn := service.New(o)
	if _, err := reborn.Start(); err != nil {
		t.Fatalf("restarting victim: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = reborn.Shutdown(ctx)
		cancel()
	})

	// Every node — rejoined one included — must converge back to a
	// 3-member all-alive view.
	waitFor(t, 10*time.Second, "3-node ring view on every node", func() error {
		for _, u := range urls {
			view, err := fetchRingView(u)
			if err != nil {
				return err
			}
			alive := 0
			for _, m := range view.Members {
				if m.Status == "alive" {
					alive++
				}
			}
			if alive != 3 {
				return fmt.Errorf("%s sees %d alive members of %v", u, alive, view.Members)
			}
		}
		return nil
	})

	// Anti-entropy must re-warm the rejoined node's cache.
	waitFor(t, 10*time.Second, "anti-entropy sweep to the rejoined node", func() error {
		snap, err := fetchMetrics(victim)
		if err != nil {
			return err
		}
		if snap.Cache.Size < 1 {
			return fmt.Errorf("rejoined cache still empty")
		}
		return nil
	})

	// A long-lived client refreshes its ring view from the cluster.
	c := &service.Client{Peers: survivors}
	if err := c.RefreshRing(context.Background()); err != nil {
		t.Fatalf("RefreshRing: %v", err)
	}
	if peers := c.RingPeers(); len(peers) != 3 {
		t.Fatalf("client ring = %v, want all 3 members after refresh", peers)
	}
	resp, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: algs[0], Instance: inst})
	if err != nil {
		t.Fatalf("post-rejoin schedule: %v", err)
	}
	if d := scheduleDigest(t, resp); d != want[algs[0]] {
		t.Error("post-rejoin schedule differs from the pre-kill result")
	}
}

// TestChurnDuringBatchProperty is the consistency property of dynamic
// membership: a join and a graceful leave racing an in-flight batch
// may change who computes or where cache copies live, but never the
// answer. Every batch item is checked digest-for-digest against a
// standalone single-node reference while a fourth node joins the ring
// and leaves again mid-traffic.
func TestChurnDuringBatchProperty(t *testing.T) {
	_, urls := startCluster(t, 3, clusterOpts())
	_, ref := startServer(t, service.Options{Workers: 2})
	inst := instanceJSON(t, testfix.Topcuoglu())
	algs := []string{"HEFT", "CPOP", "DLS", "HCPT", "PETS", "MCP", "ISH"}

	items := make([]service.ScheduleRequest, len(algs))
	want := make([]string, len(algs))
	for i, alg := range algs {
		items[i] = service.ScheduleRequest{Algorithm: alg, Instance: inst}
		resp, err := ref.Schedule(context.Background(), items[i])
		if err != nil {
			t.Fatalf("reference %s: %v", alg, err)
		}
		want[i] = scheduleDigest(t, resp)
	}

	churned := make(chan error, 1)
	go func() {
		o := clusterOpts()
		o.Addr = "127.0.0.1:0"
		extra := service.New(o)
		addr, err := extra.Start()
		if err != nil {
			churned <- fmt.Errorf("starting 4th node: %v", err)
			return
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = extra.Shutdown(ctx)
			cancel()
		}()
		if err := extra.ConfigureJoin("http://"+addr, urls[0]); err != nil {
			churned <- fmt.Errorf("joining 4th node: %v", err)
			return
		}
		// Give the join time to spread and route live traffic through
		// the 4-node ring, then depart gracefully mid-traffic.
		time.Sleep(250 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		extra.Leave(ctx)
		cancel()
		churned <- nil
	}()

	c := &service.Client{Peers: urls}
	done := false
	for round := 0; !done; round++ {
		select {
		case err := <-churned:
			if err != nil {
				t.Fatal(err)
			}
			done = true // one final batch below runs post-churn
		default:
		}
		bresp, err := c.ScheduleBatch(context.Background(), service.BatchRequest{Items: items})
		if err != nil {
			t.Fatalf("batch round %d: %v", round, err)
		}
		if bresp.Failed != 0 {
			t.Fatalf("batch round %d: %d items failed: %+v", round, bresp.Failed, bresp.Items)
		}
		for i, item := range bresp.Items {
			if d := scheduleDigest(t, item.Response); d != want[i] {
				t.Fatalf("batch round %d item %s: digest differs from single-node reference (join/leave changed an answer)",
					round, algs[i])
			}
		}
	}
}
