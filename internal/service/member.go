package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dynamic cluster membership. A schedd node no longer needs the full
// peer list at boot: nodes join and leave a running ring through the
// /v1/ring admin surface, every node heartbeats its known members and
// runs a deadline-style failure detector (missed heartbeats mark a peer
// suspect, then dead), and every membership change atomically swaps the
// consistent-hash shardState — so the ≤2/N churn guarantee of the ring
// bounds how much keyspace moves on a join, a leave or a death.
//
// The protocol is deliberately small and eventually consistent:
//
//   - GET  /v1/ring        — the heartbeat. Returns this node's RingView
//     (epoch, members with statuses). The caller refreshes lastSeen for
//     the responder and learns members it did not know (gossip by
//     piggyback: views spread along heartbeat edges).
//   - POST /v1/ring/join   — {"url": U} adds U as an alive member, swaps
//     the ring and relays the join once to every other known member
//     (X-Schedd-Relayed guards against relay loops). Returns the full
//     view so a joiner adopts the cluster state in one round trip.
//   - POST /v1/ring/leave  — {"url": U} removes U, swaps and relays.
//
// Failure detection is local: each node judges its peers by its own
// heartbeat history (no quorum). A peer silent for suspectAfter turns
// suspect (still owns its arcs — transient stalls must not reshard);
// silent for 2*suspectAfter it turns dead and is removed from the ring.
// Dead members keep being pinged, so a node that comes back — same URL,
// no operator involvement — is readopted on its first successful
// heartbeat, which also triggers the anti-entropy sweep (replica.go)
// that re-fills its cold cache.
type memberStatus int

const (
	memberAlive memberStatus = iota
	memberSuspect
	memberDead
)

func (st memberStatus) String() string {
	switch st {
	case memberAlive:
		return "alive"
	case memberSuspect:
		return "suspect"
	case memberDead:
		return "dead"
	}
	return "unknown"
}

// statusFromString parses the wire form; ok is false for unknown labels.
func statusFromString(s string) (memberStatus, bool) {
	switch s {
	case "alive":
		return memberAlive, true
	case "suspect":
		return memberSuspect, true
	case "dead":
		return memberDead, true
	}
	return 0, false
}

// hdrRelayed marks a relayed join/leave so it is applied but never
// relayed again — one hop of fan-out reaches every member the receiver
// knows, and piggybacked views close any gaps.
const hdrRelayed = "X-Schedd-Relayed"

// maxRingMembers bounds how many members one view or message may carry;
// far above any real schedd deployment, it keeps hostile payloads from
// allocating unbounded member tables.
const maxRingMembers = 1024

// maxPeerURLLen bounds one member URL on the wire.
const maxPeerURLLen = 512

// maxRingBodyBytes bounds a join/leave body or a fetched ring view.
const maxRingBodyBytes = 1 << 20

// memberInfo is this node's local judgement of one peer.
type memberInfo struct {
	status   memberStatus
	lastSeen time.Time
}

// membership owns the member table, the heartbeat loop and the failure
// detector of one Server. All exported-ish entry points lock mu; the
// shardState swap happens under it so concurrent joins/leaves/detector
// passes serialize into a clean epoch sequence.
type membership struct {
	s *Server

	mu      sync.Mutex
	self    string
	members map[string]*memberInfo // peers, self excluded
	epoch   uint64
	left    bool // this node announced leave; stop heartbeating
	joinURL string
	joined  bool // join announced (or static config applied)

	startOnce sync.Once
	nowFn     func() time.Time // injectable for detector tests
}

func newMembership(s *Server) *membership {
	return &membership{
		s:       s,
		members: make(map[string]*memberInfo),
		nowFn:   time.Now,
	}
}

// normalizePeerURL validates one member base URL from the wire: http or
// https, a host, nothing else (no query, fragment or userinfo), bounded
// length, trailing slash trimmed. Everything membership stores or
// relays went through here, so the member table never holds a URL that
// cannot be dialed.
func normalizePeerURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	if raw == "" {
		return "", fmt.Errorf("empty peer URL")
	}
	if len(raw) > maxPeerURLLen {
		return "", fmt.Errorf("peer URL longer than %d bytes", maxPeerURLLen)
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("peer URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("peer URL %q: missing host", raw)
	}
	if u.User != nil || u.RawQuery != "" || u.Fragment != "" || (u.Path != "" && u.Path != "/") {
		return "", fmt.Errorf("peer URL %q: must be a bare base URL", raw)
	}
	return raw, nil
}

// ringMessage is the body of POST /v1/ring/join and /v1/ring/leave.
type ringMessage struct {
	URL string `json:"url"`
}

// decodeRingMessage parses and validates one join/leave body.
func decodeRingMessage(data []byte) (ringMessage, error) {
	var msg ringMessage
	if err := json.Unmarshal(data, &msg); err != nil {
		return ringMessage{}, fmt.Errorf("decoding ring message: %v", err)
	}
	u, err := normalizePeerURL(msg.URL)
	if err != nil {
		return ringMessage{}, err
	}
	msg.URL = u
	return msg, nil
}

// decodeRingView parses and validates a RingView (heartbeat response,
// join response, client refresh). Member URLs are normalized and
// deduplicated; unknown statuses and oversized member lists are
// rejected rather than half-applied.
func decodeRingView(data []byte) (RingView, error) {
	var view RingView
	if err := json.Unmarshal(data, &view); err != nil {
		return RingView{}, fmt.Errorf("decoding ring view: %v", err)
	}
	if len(view.Members) > maxRingMembers {
		return RingView{}, fmt.Errorf("ring view with %d members exceeds the %d-member limit", len(view.Members), maxRingMembers)
	}
	if view.Self != "" {
		u, err := normalizePeerURL(view.Self)
		if err != nil {
			return RingView{}, err
		}
		view.Self = u
	}
	if view.Replication < 0 || view.Replication > maxRingMembers {
		return RingView{}, fmt.Errorf("ring view replication %d out of range", view.Replication)
	}
	seen := make(map[string]bool, len(view.Members))
	out := view.Members[:0]
	for _, m := range view.Members {
		u, err := normalizePeerURL(m.URL)
		if err != nil {
			return RingView{}, err
		}
		if _, ok := statusFromString(m.Status); !ok {
			return RingView{}, fmt.Errorf("ring view member %q has unknown status %q", u, m.Status)
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		m.URL = u
		out = append(out, m)
	}
	view.Members = out
	return view, nil
}

// configureStatic seeds the member table from a static peer list — the
// PR 8 ConfigurePeers contract. Fewer than two distinct peers leaves
// the node standalone (sharding off) but keeps self, so a later join
// can still form a cluster around this node.
func (m *membership) configureStatic(self string, peers []string) error {
	distinct := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p != "" {
			distinct[p] = true
		}
	}
	if len(distinct) >= 2 {
		if self == "" {
			return fmt.Errorf("service: peers configured but self URL empty")
		}
		if !distinct[self] {
			sorted := make([]string, 0, len(distinct))
			for p := range distinct {
				sorted = append(sorted, p)
			}
			sort.Strings(sorted)
			return fmt.Errorf("service: self URL %q not in peer list %v", self, sorted)
		}
	}
	m.mu.Lock()
	m.self = self
	m.members = make(map[string]*memberInfo, len(distinct))
	now := m.nowFn()
	for p := range distinct {
		if p == self {
			continue
		}
		m.members[p] = &memberInfo{status: memberAlive, lastSeen: now}
	}
	m.joined = true
	m.swapLocked()
	clustered := len(distinct) >= 2
	m.mu.Unlock()
	if clustered {
		m.start()
	}
	return nil
}

// configureJoin points a fresh node at a seed member; the heartbeat
// loop announces the join (retrying until the seed answers) and adopts
// the returned view.
func (m *membership) configureJoin(self, seed string) error {
	if self == "" {
		return fmt.Errorf("service: join configured but self URL empty")
	}
	nself, err := normalizePeerURL(self)
	if err != nil {
		return fmt.Errorf("service: %v", err)
	}
	nseed, err := normalizePeerURL(seed)
	if err != nil {
		return fmt.Errorf("service: %v", err)
	}
	if nseed == nself {
		return fmt.Errorf("service: join seed equals self URL %q", nself)
	}
	m.mu.Lock()
	m.self = nself
	m.joinURL = nseed
	m.joined = false
	m.mu.Unlock()
	m.start()
	return nil
}

// start launches the heartbeat/detector loop (idempotent). The loop
// exits when the server shuts down.
func (m *membership) start() {
	m.startOnce.Do(func() {
		m.s.workers.Add(1)
		go m.loop()
		m.s.repl.start()
	})
}

func (m *membership) loop() {
	defer m.s.workers.Done()
	interval := m.s.opts.HeartbeatInterval
	t := time.NewTicker(interval)
	defer t.Stop()
	m.tick() // immediate first round: a joiner should not idle a full interval
	for {
		select {
		case <-m.s.quit:
			return
		case <-t.C:
			m.tick()
		}
	}
}

// tick runs one heartbeat round: announce a pending join, ping every
// known member in parallel, merge the views that came back, then run
// the failure detector over the refreshed table.
func (m *membership) tick() {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return
	}
	joinURL, joined, self := m.joinURL, m.joined, m.self
	peers := make([]string, 0, len(m.members))
	for p := range m.members {
		peers = append(peers, p)
	}
	m.mu.Unlock()

	if !joined && joinURL != "" {
		m.announceJoin(self, joinURL)
		return // adopt the view first; heartbeats start next round
	}

	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			view, err := m.fetchView(peer)
			if err != nil {
				return // silence is what the detector measures
			}
			m.observeHeartbeat(peer, view)
		}(p)
	}
	wg.Wait()
	m.assess(m.nowFn())
}

// fetchView GETs peer's /v1/ring bounded by the probe timeout.
func (m *membership) fetchView(peer string) (RingView, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.s.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/ring", nil)
	if err != nil {
		return RingView{}, err
	}
	resp, err := m.s.peerClient.Do(req)
	if err != nil {
		return RingView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return RingView{}, &StatusError{Method: http.MethodGet, Path: "/v1/ring", Status: resp.StatusCode}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRingBodyBytes))
	if err != nil {
		return RingView{}, err
	}
	return decodeRingView(data)
}

// announceJoin POSTs this node's join to the seed and adopts the view
// it answers with. Failure is retried next tick — a joiner outliving a
// temporarily-down seed is the whole point of retrying here.
func (m *membership) announceJoin(self, seed string) {
	view, err := m.postRing(seed, "/v1/ring/join", self, false)
	if err != nil {
		return
	}
	m.mu.Lock()
	now := m.nowFn()
	changed := m.adoptLocked(view, now)
	if mi := m.members[seed]; mi != nil {
		mi.lastSeen = now
	}
	m.joined = true
	if changed {
		m.swapLocked()
	}
	m.mu.Unlock()
	log.Printf("service: joined ring via %s (%d members)", seed, len(view.Members))
}

// postRing sends one join/leave message; when the caller is relaying it
// marks the hop so the receiver applies without relaying again.
func (m *membership) postRing(peer, path, subject string, relayed bool) (RingView, error) {
	body, err := json.Marshal(ringMessage{URL: subject})
	if err != nil {
		return RingView{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.s.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return RingView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if relayed {
		req.Header.Set(hdrRelayed, m.selfURL())
	}
	resp, err := m.s.peerClient.Do(req)
	if err != nil {
		return RingView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return RingView{}, &StatusError{Method: http.MethodPost, Path: path, Status: resp.StatusCode}
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRingBodyBytes))
	if err != nil {
		return RingView{}, err
	}
	return decodeRingView(data)
}

func (m *membership) selfURL() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self
}

// observeHeartbeat refreshes the responder's lastSeen and merges its
// piggybacked view: members we never heard of are adopted as alive (the
// detector will judge them from here on). A member the responder lists
// as dead is NOT trusted — death is a local verdict — which keeps one
// partitioned node's pessimism from amputating the ring everywhere.
func (m *membership) observeHeartbeat(peer string, view RingView) {
	m.mu.Lock()
	now := m.nowFn()
	changed, rejoined := false, false
	if mi := m.members[peer]; mi != nil {
		mi.lastSeen = now
		if mi.status != memberAlive {
			rejoined = mi.status == memberDead // dead→alive reshards
			changed = changed || rejoined
			m.noteTransitionLocked(peer, mi.status, memberAlive)
			mi.status = memberAlive
		}
	}
	changed = m.adoptLocked(view, now) || changed
	if changed {
		m.swapLocked()
	}
	m.mu.Unlock()
	if rejoined {
		m.s.repl.sweepFor(peer)
	}
}

// adoptLocked merges a remote view's alive members into the table,
// returning whether ring composition changed. Callers hold mu.
func (m *membership) adoptLocked(view RingView, now time.Time) bool {
	changed := false
	total := len(m.members)
	for _, mem := range view.Members {
		st, _ := statusFromString(mem.Status)
		if st != memberAlive || mem.URL == m.self {
			continue
		}
		if _, known := m.members[mem.URL]; known {
			continue
		}
		if total >= maxRingMembers {
			break
		}
		m.members[mem.URL] = &memberInfo{status: memberAlive, lastSeen: now}
		log.Printf("service: ring member %s learned via heartbeat view", mem.URL)
		total++
		changed = true
	}
	return changed
}

// assess runs the failure detector: members silent for suspectAfter
// turn suspect, silent for 2*suspectAfter turn dead. Only transitions
// that change ring composition (anything touching dead) swap the ring.
func (m *membership) assess(now time.Time) {
	suspectAfter := m.s.opts.SuspectAfter
	deadAfter := 2 * suspectAfter
	m.mu.Lock()
	changed := false
	for url, mi := range m.members {
		silent := now.Sub(mi.lastSeen)
		want := mi.status
		switch {
		case silent >= deadAfter:
			want = memberDead
		case silent >= suspectAfter:
			if mi.status != memberDead {
				want = memberSuspect
			}
		default:
			want = memberAlive
		}
		if want == mi.status {
			continue
		}
		m.noteTransitionLocked(url, mi.status, want)
		if want == memberDead || mi.status == memberDead {
			changed = true
		}
		mi.status = want
	}
	if changed {
		m.swapLocked()
	}
	m.mu.Unlock()
}

// noteTransitionLocked logs one status change (callers hold mu).
func (m *membership) noteTransitionLocked(url string, from, to memberStatus) {
	log.Printf("service: ring member %s: %s -> %s (epoch %d)", url, from, to, m.epoch)
}

// swapLocked rebuilds the shardState from the current composition
// (self + alive + suspect members) and publishes it atomically,
// bumping the membership epoch. Suspect members stay on the ring —
// resharding on every transient stall would churn caches for nothing;
// only death and leave move keyspace. Callers hold mu.
func (m *membership) swapLocked() {
	m.epoch++
	urls := make([]string, 0, len(m.members)+1)
	if m.self != "" && !m.left {
		urls = append(urls, m.self)
	}
	for u, mi := range m.members {
		if mi.status == memberAlive || mi.status == memberSuspect {
			urls = append(urls, u)
		}
	}
	ring := newRing(urls)
	if ring.size() < 2 || m.left {
		m.s.shard.Store(nil)
		return
	}
	m.s.shard.Store(&shardState{
		self:         m.self,
		ring:         ring,
		peers:        ring.peers,
		brk:          m.s.peerBrk,
		client:       m.s.peerClient,
		probeTimeout: m.s.opts.ProbeTimeout,
	})
}

// addMember applies one join. It reports whether the member was new or
// came back from the dead (both trigger the anti-entropy sweep).
func (m *membership) addMember(url string) (changed bool) {
	m.mu.Lock()
	now := m.nowFn()
	if url == m.self {
		m.mu.Unlock()
		return false
	}
	mi := m.members[url]
	switch {
	case mi == nil:
		if len(m.members) >= maxRingMembers {
			m.mu.Unlock()
			return false
		}
		m.members[url] = &memberInfo{status: memberAlive, lastSeen: now}
		changed = true
	case mi.status == memberDead:
		m.noteTransitionLocked(url, mi.status, memberAlive)
		mi.status, mi.lastSeen = memberAlive, now
		changed = true
	default:
		mi.lastSeen = now
	}
	if changed {
		log.Printf("service: ring member %s joined", url)
		m.swapLocked()
	}
	m.mu.Unlock()
	return changed
}

// removeMember applies one leave.
func (m *membership) removeMember(url string) (changed bool) {
	m.mu.Lock()
	if url == m.self {
		// A relayed copy of our own leave announcement; nothing to do.
		m.mu.Unlock()
		return false
	}
	if _, ok := m.members[url]; ok {
		delete(m.members, url)
		log.Printf("service: ring member %s left", url)
		m.swapLocked()
		changed = true
	}
	m.mu.Unlock()
	return changed
}

// relay fans a join/leave out to every other member once.
func (m *membership) relay(path, subject string) {
	m.mu.Lock()
	peers := make([]string, 0, len(m.members))
	for p, mi := range m.members {
		if p != subject && mi.status != memberDead {
			peers = append(peers, p)
		}
	}
	m.mu.Unlock()
	for _, p := range peers {
		go func(peer string) {
			_, _ = m.postRing(peer, path, subject, true)
		}(p)
	}
}

// view renders the current RingView (also the heartbeat payload).
func (m *membership) view() RingView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *membership) viewLocked() RingView {
	v := RingView{Self: m.self, Epoch: m.epoch, Replication: m.s.opts.Replication}
	if m.self != "" && !m.left {
		v.Members = append(v.Members, MemberJSON{URL: m.self, Status: memberAlive.String()})
	}
	urls := make([]string, 0, len(m.members))
	for u := range m.members {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		v.Members = append(v.Members, MemberJSON{URL: u, Status: m.members[u].status.String()})
	}
	return v
}

// counts returns the member-table status totals plus the epoch.
func (m *membership) counts() (alive, suspect, dead int, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mi := range m.members {
		switch mi.status {
		case memberAlive:
			alive++
		case memberSuspect:
			suspect++
		case memberDead:
			dead++
		}
	}
	return alive, suspect, dead, m.epoch
}

// isAlive reports whether peer is currently judged alive (used by the
// hinted-handoff retrier to avoid hammering a node that is still down).
func (m *membership) isAlive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mi := m.members[peer]
	return mi != nil && mi.status == memberAlive
}

// leave announces this node's departure to every member and withdraws
// from the ring. The caller (Server.Leave) hands off cache entries
// first, while the ring still routes to us.
func (m *membership) leave() []string {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return nil
	}
	m.left = true
	peers := make([]string, 0, len(m.members))
	for p, mi := range m.members {
		if mi.status != memberDead {
			peers = append(peers, p)
		}
	}
	self := m.self
	m.swapLocked() // sharding off locally; requests now compute standalone
	m.mu.Unlock()
	for _, p := range peers {
		_, _ = m.postRing(p, "/v1/ring/leave", self, false)
	}
	return peers
}

// handleRing serves GET /v1/ring: the ring view, doubling as the
// heartbeat endpoint.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.member.view())
}

// handleRingJoin serves POST /v1/ring/join.
func (s *Server) handleRingJoin(w http.ResponseWriter, r *http.Request) {
	s.handleRingChange(w, r, "/v1/ring/join")
}

// handleRingLeave serves POST /v1/ring/leave.
func (s *Server) handleRingLeave(w http.ResponseWriter, r *http.Request) {
	s.handleRingChange(w, r, "/v1/ring/leave")
}

// handleRingChange applies one join/leave, relays it once when it came
// straight from the subject (not already relayed), and answers the
// updated view.
func (s *Server) handleRingChange(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.member.selfURL() == "" {
		writeError(w, http.StatusConflict, "node has no ring identity (start with -self)")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRingBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading ring message: %v", err)
		return
	}
	msg, err := decodeRingMessage(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var changed bool
	join := path == "/v1/ring/join"
	if join {
		changed = s.member.addMember(msg.URL)
	} else {
		changed = s.member.removeMember(msg.URL)
	}
	if changed && r.Header.Get(hdrRelayed) == "" {
		s.member.relay(path, msg.URL)
	}
	if changed && join {
		s.repl.sweepFor(msg.URL)
	}
	writeJSON(w, http.StatusOK, s.member.view())
}
