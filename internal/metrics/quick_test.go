package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// samples is a bounded random sample vector for quick tests.
type samples []float64

// Generate implements quick.Generator with finite, bounded values.
func (samples) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(60)
	s := make(samples, n)
	for i := range s {
		s[i] = (r.Float64() - 0.5) * 1e4
	}
	return reflect.ValueOf(s)
}

// naive mean/stddev for cross-checking the streaming accumulator.
func naiveStats(s []float64) (mean, std float64) {
	for _, x := range s {
		mean += x
	}
	mean /= float64(len(s))
	if len(s) < 2 {
		return mean, 0
	}
	var v float64
	for _, x := range s {
		v += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(v / float64(len(s)-1))
}

// Property: the streaming Accumulator agrees with the two-pass formulas.
func TestQuickAccumulatorMatchesNaive(t *testing.T) {
	f := func(s samples) bool {
		var a Accumulator
		for _, x := range s {
			a.Add(x)
		}
		mean, std := naiveStats(s)
		if math.Abs(a.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		if math.Abs(a.StdDev()-std) > 1e-5*(1+std) {
			return false
		}
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		return a.Min() == sorted[0] && a.Max() == sorted[len(sorted)-1] && a.N() == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: win/tie/loss percentages always total 100 (or 0 when empty)
// and counts total the number of records.
func TestQuickWTLConservation(t *testing.T) {
	f := func(seed int64, records uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWTL("ref", []string{"a", "b"}, 0)
		n := int(records)
		for i := 0; i < n; i++ {
			comp := []string{"a", "b"}[rng.Intn(2)]
			if err := w.Record(comp, rng.Float64(), rng.Float64()); err != nil {
				return false
			}
		}
		total := 0
		for _, c := range w.Competitors() {
			ws, ts, ls, err := w.Counts(c)
			if err != nil {
				return false
			}
			total += ws + ts + ls
			winP, tieP, lossP, err := w.Percent(c)
			if err != nil {
				return false
			}
			sum := winP + tieP + lossP
			if ws+ts+ls == 0 {
				if sum != 0 {
					return false
				}
			} else if math.Abs(sum-100) > 1e-9 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
