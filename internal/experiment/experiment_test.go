package experiment

import (
	"bytes"
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestAllIDsOrderedAndUnique(t *testing.T) {
	exps := All()
	if len(exps) != 23 {
		t.Fatalf("suite has %d experiments, want 23", len(exps))
	}
	for i, e := range exps {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has id %q, want %q", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E9")
	if err != nil || e.ID != "E9" {
		t.Fatalf("ByID(E9) = %v, %v", e.ID, err)
	}
	if _, err := ByID("e3"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := &Table{
		ID: "T", Title: "demo", Columns: []string{"x", "y"},
		Rows:  [][]string{{"1", "2"}, {"3", "4"}},
		Notes: "a note",
	}
	var buf bytes.Buffer
	if err := RenderMarkdown(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### T — demo", "| x | y |", "| 1 | 2 |", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConfigReps(t *testing.T) {
	if got := (Config{}).reps(25); got != 25 {
		t.Fatalf("default reps = %d", got)
	}
	if got := (Config{Reps: 7}).reps(25); got != 7 {
		t.Fatalf("override reps = %d", got)
	}
	if got := (Config{Quick: true}).reps(25); got != 5 {
		t.Fatalf("quick reps = %d", got)
	}
	if got := (Config{Quick: true}).reps(10); got != 3 {
		t.Fatalf("quick floor reps = %d", got)
	}
}

// Every experiment runs end-to-end in quick mode, produces non-empty
// numeric tables, and is deterministic for a fixed seed.
func TestEveryExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still costs a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			cfg := Config{Quick: true, Reps: 3, Seed: 9}
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 || len(tb.Columns) < 2 {
					t.Fatalf("%s table %s is empty", e.ID, tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("%s table %s: row width %d vs %d columns", e.ID, tb.ID, len(row), len(tb.Columns))
					}
					for _, cell := range row[1:] {
						if _, err := strconv.ParseFloat(cell, 64); err != nil {
							t.Fatalf("%s table %s: non-numeric cell %q", e.ID, tb.ID, cell)
						}
					}
				}
				var buf bytes.Buffer
				if err := RenderMarkdown(&buf, tb); err != nil {
					t.Fatalf("render %s: %v", tb.ID, err)
				}
			}
			// Determinism.
			again, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s rerun: %v", e.ID, err)
			}
			for ti := range tables {
				// Wall-clock tables legitimately vary between runs.
				if tables[ti].ID == "E12b" || tables[ti].ID == "E15b" {
					continue
				}
				for ri := range tables[ti].Rows {
					for ci := range tables[ti].Rows[ri] {
						if tables[ti].Rows[ri][ci] != again[ti].Rows[ri][ci] {
							t.Fatalf("%s table %s not deterministic at row %d col %d: %q vs %q",
								e.ID, tables[ti].ID, ri, ci, tables[ti].Rows[ri][ci], again[ti].Rows[ri][ci])
						}
					}
				}
			}
		})
	}
}

// Parallelism must never change results: the same experiment with 1 and
// with 4 workers yields identical tables (each repetition has its own
// deterministic random stream).
func TestWorkerCountInvariance(t *testing.T) {
	for _, id := range []string{"E1", "E9", "E13"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		one, err := e.Run(Config{Quick: true, Reps: 4, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		four, err := e.Run(Config{Quick: true, Reps: 4, Seed: 5, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for ti := range one {
			for ri := range one[ti].Rows {
				for ci := range one[ti].Rows[ri] {
					if one[ti].Rows[ri][ci] != four[ti].Rows[ri][ci] {
						t.Fatalf("%s table %s differs between 1 and 4 workers at row %d col %d",
							id, one[ti].ID, ri, ci)
					}
				}
			}
		}
	}
}

// parallelReps propagates the first error and never loses repetitions.
func TestParallelRepsBasics(t *testing.T) {
	vals, err := parallelReps(17, 3, 9, func(rep int, rng *rand.Rand) (int, error) {
		return rep * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*2 {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	boom := errors.New("boom")
	_, err = parallelReps(5, 2, 1, func(rep int, rng *rand.Rand) (int, error) {
		if rep == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// The reconstruction's headline shape: in the E9 win/tie/loss table, ILS
// must not lose to HEFT on a majority of instances.
func TestE9ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical check needs a real batch")
	}
	tables, err := E9().Run(Config{Reps: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		if row[0] != "HEFT" {
			continue
		}
		win, _ := strconv.ParseFloat(row[1], 64)
		loss, _ := strconv.ParseFloat(row[3], 64)
		if loss > win {
			t.Fatalf("ILS loses to HEFT more than it wins: %v", row)
		}
		return
	}
	t.Fatal("HEFT row missing from E9")
}
