// Package core implements ILS (Improved List Scheduling), this
// repository's reconstruction of the paper's contribution: an insertion-
// based list scheduler for heterogeneous and homogeneous systems that
// improves on HEFT through three orthogonal, individually ablatable
// mechanisms:
//
//  1. σ-augmented upward rank — tasks whose execution cost varies strongly
//     across processors are prioritized, fixing volatile placement
//     decisions earlier (reduces to HEFT's rank on homogeneous systems);
//  2. one-step critical-child lookahead — processor selection minimizes
//     the estimated earliest finish time of the task's most critical
//     successor rather than of the task alone;
//  3. critical-parent duplication — the parent that dominates a task's
//     start time is copied into an idle slot of the candidate processor
//     when that strictly lowers the task's finish time.
//
// The full configuration is exported as ILS; ILS-L (no duplication),
// ILS-D (no lookahead) and ILS-R (σ-rank only) are the ablation variants
// used by experiment E11.
package core

import (
	"context"
	"fmt"
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// Options selects the ILS mechanisms; the zero value (everything off)
// degenerates to plain HEFT.
type Options struct {
	// SigmaRank orders tasks by the σ-augmented upward rank instead of the
	// plain mean-cost upward rank.
	SigmaRank bool
	// Lookahead selects processors by the estimated EFT of the task's most
	// critical child instead of the task's own EFT.
	Lookahead bool
	// Duplication enables critical-parent duplication into idle slots.
	Duplication bool
	// MaxDups bounds accepted duplicates per placement (default 8).
	MaxDups int
}

// ILS is the improved list scheduler.
type ILS struct {
	name string
	opts Options
}

// New returns the full ILS configuration (σ-rank + lookahead +
// duplication).
func New() ILS {
	return ILS{name: "ILS", opts: Options{SigmaRank: true, Lookahead: true, Duplication: true}}
}

// NoDuplication returns ILS-L: σ-rank and lookahead without duplication.
func NoDuplication() ILS {
	return ILS{name: "ILS-L", opts: Options{SigmaRank: true, Lookahead: true}}
}

// NoLookahead returns ILS-D: σ-rank and duplication without lookahead.
func NoLookahead() ILS {
	return ILS{name: "ILS-D", opts: Options{SigmaRank: true, Duplication: true}}
}

// RankOnly returns ILS-R: only the σ-augmented rank (HEFT otherwise).
func RankOnly() ILS {
	return ILS{name: "ILS-R", opts: Options{SigmaRank: true}}
}

// Variant returns an ILS with explicit options, for ablation sweeps.
func Variant(name string, opts Options) ILS { return ILS{name: name, opts: opts} }

// Name implements algo.Algorithm.
func (a ILS) Name() string { return a.name }

// Options returns the configuration (for ablation reporting).
func (a ILS) Options() Options { return a.opts }

// Schedule implements algo.Algorithm.
func (a ILS) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	return a.ScheduleContext(context.Background(), in)
}

// ScheduleContext implements algo.CtxScheduler: the per-task placement
// loop checks the context between tasks (each task costs O(P) trial
// placements, so per-task polling is both cheap and prompt) and aborts
// with the context's error on cancellation.
//
// Each of the P per-processor trials runs in its own speculative
// transaction over the shared plan (duplication attempts and the
// lookahead's tentative placement are journaled and undone), so a trial
// costs O(changes) instead of a full plan clone and the trials are
// independent — on large instances they evaluate concurrently. The winner
// is still selected sequentially in ascending processor order with the
// exact comparison of the clone-based implementation, so schedules are
// unchanged.
func (a ILS) ScheduleContext(ctx context.Context, in *sched.Instance) (*sched.Schedule, error) {
	maxDups := a.opts.MaxDups
	if maxDups <= 0 {
		maxDups = 8
	}
	var rank []float64
	if a.opts.SigmaRank {
		rank = sched.RankUpwardSigma(in)
	} else {
		rank = sched.RankUpward(in)
	}
	order := algo.OrderDescPrecedence(in.G, rank)

	// For lookahead: the most critical child of each task and an estimated
	// finish time for not-yet-scheduled tasks (used for a child's other
	// parents), from mean-cost downward ranks.
	var critChild []dag.TaskID
	var estFinish []float64
	if a.opts.Lookahead {
		critChild = make([]dag.TaskID, in.N())
		for i := 0; i < in.N(); i++ {
			critChild[i] = -1
			for _, s := range in.G.Succ(dag.TaskID(i)) {
				if critChild[i] == -1 || rank[s.To] > rank[critChild[i]] {
					critChild[i] = s.To
				}
			}
		}
		down := sched.RankDownward(in)
		estFinish = make([]float64, in.N())
		for i := range estFinish {
			estFinish[i] = down[i] + in.MeanCost(dag.TaskID(i))
		}
	}

	pl := sched.NewPlan(in)
	check := algo.NewCheckpoint(ctx, 1)
	group := algo.NewTrialGroup(in.P(), in.N())
	defer group.Close()
	type trial struct{ start, finish, score float64 }
	txs := make([]*sched.Txn, in.P())
	results := make([]trial, in.P())
	for _, t := range order {
		if err := check.Check(); err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		look := a.opts.Lookahead && critChild[t] != -1
		group.Run(in.P(), func(p int) {
			var tx *sched.Txn
			var start, finish float64
			if a.opts.Duplication || look {
				if tx = txs[p]; tx == nil {
					tx = pl.Begin()
					txs[p] = tx
				} else {
					tx.Reset()
				}
			}
			if a.opts.Duplication {
				res := algo.TryDuplication(tx, t, p, maxDups)
				start, finish = res.Start, res.Finish
			} else {
				start, finish = pl.EFTOn(t, p, true)
			}
			score := finish
			if look {
				// Tentatively place t and estimate the critical child's
				// achievable EFT, then rewind: the tentative placement only
				// informs the score, never the plan.
				m := tx.Mark()
				tx.Place(t, p, start)
				score = estimateChildEFT(tx, critChild[t], estFinish)
				tx.Undo(m)
			}
			results[p] = trial{start: start, finish: finish, score: score}
		})
		bestScore := math.Inf(1)
		bestFinish := math.Inf(1)
		bestProc := -1
		bestStart := 0.0
		for p := 0; p < in.P(); p++ {
			r := results[p]
			if r.score < bestScore-1e-12 || (math.Abs(r.score-bestScore) <= 1e-12 && r.finish < bestFinish) {
				bestScore, bestFinish, bestProc, bestStart = r.score, r.finish, p, r.start
			}
		}
		if a.opts.Duplication {
			txs[bestProc].Commit()
		}
		pl.Place(t, bestProc, bestStart)
	}
	return pl.Finalize(a.name), nil
}

// estimateChildEFT returns the smallest estimated finish time of task c
// over all processors given the current (possibly speculative) view.
// Scheduled parents contribute their real data-arrival times; unscheduled
// parents contribute a mean-cost estimate (downward rank + mean execution
// + mean communication).
func estimateChildEFT(v sched.View, c dag.TaskID, estFinish []float64) float64 {
	in := v.Instance()
	best := math.Inf(1)
	for q := 0; q < in.P(); q++ {
		ready := 0.0
		for j, pe := range in.G.Pred(c) {
			var arrival float64
			if v.Scheduled(pe.To) {
				arrival = math.Inf(1)
				for _, cp := range v.Copies(pe.To) {
					if t := cp.Finish + in.CommCost(cp.Proc, q, pe.Data); t < arrival {
						arrival = t
					}
				}
			} else {
				arrival = estFinish[pe.To] + in.MeanCommPred(c, j)
			}
			if arrival > ready {
				ready = arrival
			}
		}
		start := v.FindSlot(q, ready, in.Cost(c, q), true)
		if f := start + in.Cost(c, q); f < best {
			best = f
		}
	}
	return best
}
