package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates tasks and edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	name  string
	tasks []Task
	edges []Edge
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// AddTask appends a task with the given name and nominal weight and returns
// its id. Weights must be non-negative; Build reports violations.
func (b *Builder) AddTask(name string, weight float64) TaskID {
	id := TaskID(len(b.tasks))
	if name == "" {
		name = fmt.Sprintf("t%d", id)
	}
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Weight: weight})
	return id
}

// AddEdge records a dependency from -> to carrying data units of
// communication. Validation happens in Build.
func (b *Builder) AddEdge(from, to TaskID, data float64) {
	b.edges = append(b.edges, Edge{From: from, To: to, Data: data})
}

// Len returns the number of tasks added so far.
func (b *Builder) Len() int { return len(b.tasks) }

// Build validates the accumulated structure and returns the immutable
// Graph. It fails on out-of-range endpoints, self-loops, duplicate edges,
// negative weights and cycles.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.tasks)
	if n == 0 {
		return nil, errors.New("dag: graph has no tasks")
	}
	for _, t := range b.tasks {
		if t.Weight < 0 {
			return nil, fmt.Errorf("dag: task %d (%s) has negative weight %g", t.ID, t.Name, t.Weight)
		}
	}
	for _, e := range b.edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("dag: edge (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("dag: self-loop on task %d", e.From)
		}
		if e.Data < 0 {
			return nil, fmt.Errorf("dag: edge (%d,%d) has negative data %g", e.From, e.To, e.Data)
		}
	}
	g := &Graph{
		name:  b.name,
		tasks: append([]Task(nil), b.tasks...),
		edges: len(b.edges),
	}
	// Counting pass then fill: the adjacency goes straight into the flat
	// CSR arrays, no per-task intermediate slices.
	g.succOff = make([]int32, n+1)
	g.predOff = make([]int32, n+1)
	for _, e := range b.edges {
		g.succOff[e.From+1]++
		g.predOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.succOff[i+1] += g.succOff[i]
		g.predOff[i+1] += g.predOff[i]
	}
	g.succAdj = make([]Adj, len(b.edges))
	g.predAdj = make([]Adj, len(b.edges))
	sCur := append([]int32(nil), g.succOff[:n]...)
	pCur := append([]int32(nil), g.predOff[:n]...)
	for _, e := range b.edges {
		g.succAdj[sCur[e.From]] = Adj{To: e.To, Data: e.Data}
		sCur[e.From]++
		g.predAdj[pCur[e.To]] = Adj{To: e.From, Data: e.Data}
		pCur[e.To]++
	}
	for i := 0; i < n; i++ {
		adj := g.succAdj[g.succOff[i]:g.succOff[i+1]]
		sort.Slice(adj, func(a, b int) bool { return adj[a].To < adj[b].To })
		for k := 1; k < len(adj); k++ {
			if adj[k].To == adj[k-1].To {
				return nil, fmt.Errorf("dag: duplicate edge (%d,%d)", i, adj[k].To)
			}
		}
		p := g.predAdj[g.predOff[i]:g.predOff[i+1]]
		sort.Slice(p, func(a, b int) bool { return p[a].To < p[b].To })
	}
	order, err := topoOrder(g)
	if err != nil {
		return nil, err
	}
	// The acyclicity check just computed the canonical order; prime the
	// graph's traversal cache with it instead of re-running Kahn later.
	g.topoOnce.Do(func() { g.topo = order })
	return g, nil
}

// MustBuild is Build that panics on error; intended for workload generators
// whose construction is correct by design and for tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
