// reference.go preserves the original clone-per-trial implementations of
// the duplication family (DSH, BTDH, and the ILS placement loop) exactly
// as they shipped before the transactional trial layer replaced them.
// They are deliberately slow — every trial deep-copies the plan — and
// exist only as the semantic oracle for the differential suite: the
// transactional implementations must reproduce their schedules bit for
// bit on every instance.
package testfix

import (
	"fmt"
	"math"
	"strings"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// PlanFingerprint returns a stable string of every placement in a partial
// plan (per processor in start order, exact float64 bits). Differential
// tests use it to assert that rolled-back speculative trials left the
// base plan untouched.
func PlanFingerprint(pl *sched.Plan) string {
	var b strings.Builder
	for p := 0; p < pl.Instance().P(); p++ {
		fmt.Fprintf(&b, "P%d:", p)
		for _, a := range pl.OnProc(p) {
			fmt.Fprintf(&b, "%d@%x..%x", a.Task, a.Start, a.Finish)
			if a.Dup {
				b.WriteString("d")
			}
			b.WriteString(";")
		}
		b.WriteString("|")
	}
	return b.String()
}

const (
	refSlackEps = 1e-9
	refMaxDups  = 64
)

// RefDupResult reports the outcome of a clone-based duplication trial.
type RefDupResult struct {
	// Plan is the tentative plan including any accepted duplicates; the
	// candidate task itself is NOT yet placed.
	Plan *sched.Plan
	// Start and Finish are the candidate task's achievable window on the
	// trial processor after duplication.
	Start, Finish float64
	// Dups counts accepted duplicate copies.
	Dups int
}

// RefTryDuplication is the clone-based DSH duplication trial: keep a
// duplicate of the critical parent only when the start time strictly
// improves, rejecting by discarding the trial clone.
func RefTryDuplication(pl *sched.Plan, t dag.TaskID, p int, maxDups int) RefDupResult {
	in := pl.Instance()
	work := pl.Clone()
	dur := in.Cost(t, p)
	start := work.FindSlot(p, work.DataReady(t, p), dur, true)
	dups := 0
	for dups < maxDups {
		parent, arrival := algo.CriticalParent(work, t, p)
		if parent == -1 || arrival <= start-refSlackEps {
			break
		}
		trial := work.Clone()
		pready := trial.DataReady(parent, p)
		pslot := trial.FindSlot(p, pready, in.Cost(parent, p), true)
		trial.PlaceDup(parent, p, pslot)
		newStart := trial.FindSlot(p, trial.DataReady(t, p), dur, true)
		if newStart >= start-refSlackEps {
			break
		}
		work, start = trial, newStart
		dups++
	}
	return RefDupResult{Plan: work, Start: start, Finish: start + dur, Dups: dups}
}

// RefTryDuplicationBTDH is the clone-based BTDH trial: duplicate the
// chain of remote critical parents unconditionally, snapshotting the best
// configuration seen.
func RefTryDuplicationBTDH(pl *sched.Plan, t dag.TaskID, p int) RefDupResult {
	in := pl.Instance()
	dur := in.Cost(t, p)

	work := pl.Clone()
	start := work.FindSlot(p, work.DataReady(t, p), dur, true)
	best := RefDupResult{Plan: work.Clone(), Start: start, Finish: start + dur}

	dups := 0
	for dups < refMaxDups {
		parent, arrival := algo.CriticalParent(work, t, p)
		if parent == -1 {
			break
		}
		if arrival <= 0 {
			break
		}
		pready := work.DataReady(parent, p)
		pslot := work.FindSlot(p, pready, in.Cost(parent, p), true)
		work.PlaceDup(parent, p, pslot)
		dups++
		start = work.FindSlot(p, work.DataReady(t, p), dur, true)
		if start < best.Start {
			best = RefDupResult{Plan: work.Clone(), Start: start, Finish: start + dur, Dups: dups}
		}
	}
	return best
}

// refDuplicationSchedule is the clone-based shared driver of DSH/BTDH.
func refDuplicationSchedule(in *sched.Instance, name string, try func(*sched.Plan, dag.TaskID, int) RefDupResult) *sched.Schedule {
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || sl[r] > sl[pick] {
				pick = r
			}
		}
		bestFinish := math.Inf(1)
		var best RefDupResult
		bestProc := -1
		for p := 0; p < in.P(); p++ {
			res := try(pl, pick, p)
			if res.Finish < bestFinish {
				bestFinish, best, bestProc = res.Finish, res, p
			}
		}
		pl = best.Plan
		pl.Place(pick, bestProc, best.Start)
		rl.Complete(pick)
	}
	return pl.Finalize(name)
}

// RefDSH is the clone-based DSH scheduler.
func RefDSH(in *sched.Instance) *sched.Schedule {
	return refDuplicationSchedule(in, "DSH", func(pl *sched.Plan, t dag.TaskID, p int) RefDupResult {
		return RefTryDuplication(pl, t, p, refMaxDups)
	})
}

// RefBTDH is the clone-based BTDH scheduler.
func RefBTDH(in *sched.Instance) *sched.Schedule {
	return refDuplicationSchedule(in, "BTDH", RefTryDuplicationBTDH)
}

// RefILSOptions mirrors core.Options for the clone-based reference ILS.
type RefILSOptions struct {
	SigmaRank   bool
	Lookahead   bool
	Duplication bool
	MaxDups     int
}

// RefILS is the clone-based ILS placement loop (σ-rank, one-step
// critical-child lookahead, critical-parent duplication), preserved
// verbatim from the pre-transactional implementation.
func RefILS(in *sched.Instance, name string, opts RefILSOptions) *sched.Schedule {
	maxDups := opts.MaxDups
	if maxDups <= 0 {
		maxDups = 8
	}
	var rank []float64
	if opts.SigmaRank {
		rank = sched.RankUpwardSigma(in)
	} else {
		rank = sched.RankUpward(in)
	}
	order := algo.OrderDescPrecedence(in.G, rank)

	var critChild []dag.TaskID
	var estFinish []float64
	if opts.Lookahead {
		critChild = make([]dag.TaskID, in.N())
		for i := 0; i < in.N(); i++ {
			critChild[i] = -1
			for _, s := range in.G.Succ(dag.TaskID(i)) {
				if critChild[i] == -1 || rank[s.To] > rank[critChild[i]] {
					critChild[i] = s.To
				}
			}
		}
		down := sched.RankDownward(in)
		estFinish = make([]float64, in.N())
		for i := range estFinish {
			estFinish[i] = down[i] + in.MeanCost(dag.TaskID(i))
		}
	}

	pl := sched.NewPlan(in)
	for _, t := range order {
		bestScore := math.Inf(1)
		bestFinish := math.Inf(1)
		bestProc := -1
		bestStart := 0.0
		var bestPlan *sched.Plan
		for p := 0; p < in.P(); p++ {
			cand := pl
			var start, finish float64
			if opts.Duplication {
				res := RefTryDuplication(pl, t, p, maxDups)
				cand, start, finish = res.Plan, res.Start, res.Finish
			} else {
				start, finish = pl.EFTOn(t, p, true)
			}
			score := finish
			if opts.Lookahead && critChild[t] != -1 {
				work := cand.Clone()
				work.Place(t, p, start)
				score = refEstimateChildEFT(work, critChild[t], estFinish)
			}
			if score < bestScore-1e-12 || (math.Abs(score-bestScore) <= 1e-12 && finish < bestFinish) {
				bestScore, bestFinish, bestProc, bestStart, bestPlan = score, finish, p, start, cand
			}
		}
		pl = bestPlan
		pl.Place(t, bestProc, bestStart)
	}
	return pl.Finalize(name)
}

func refEstimateChildEFT(pl *sched.Plan, c dag.TaskID, estFinish []float64) float64 {
	in := pl.Instance()
	best := math.Inf(1)
	for q := 0; q < in.P(); q++ {
		ready := 0.0
		for j, pe := range in.G.Pred(c) {
			var arrival float64
			if pl.Scheduled(pe.To) {
				arrival = math.Inf(1)
				for _, cp := range pl.Copies(pe.To) {
					if t := cp.Finish + in.Sys.CommCost(cp.Proc, q, pe.Data); t < arrival {
						arrival = t
					}
				}
			} else {
				arrival = estFinish[pe.To] + in.MeanCommPred(c, j)
			}
			if arrival > ready {
				ready = arrival
			}
		}
		start := pl.FindSlot(q, ready, in.Cost(c, q), true)
		if f := start + in.Cost(c, q); f < best {
			best = f
		}
	}
	return best
}
