package service

import (
	"encoding/json"

	"dagsched/internal/sim"
)

// ScheduleRequest is the wire form of one scheduling query. Exactly one
// of Instance or Graph must be set: Instance carries a full problem
// (graph, system, cost matrix) as written by Instance.WriteJSON; Graph
// carries a bare task graph that is scheduled onto a homogeneous system
// described by Processors/Latency/TimePerUnit with consistent costs.
type ScheduleRequest struct {
	// Algorithm is the registry display name, e.g. "HEFT" or "ILS".
	Algorithm string `json:"algorithm"`
	// Instance is a full problem instance (see Instance.WriteJSON).
	Instance json.RawMessage `json:"instance,omitempty"`
	// Graph is a bare task graph (see Graph.WriteJSON).
	Graph json.RawMessage `json:"graph,omitempty"`
	// Processors, Latency and TimePerUnit describe the homogeneous
	// system a bare Graph is scheduled onto. Processors defaults to 8.
	Processors  int     `json:"processors,omitempty"`
	Latency     float64 `json:"latency,omitempty"`
	TimePerUnit float64 `json:"timePerUnit,omitempty"`
	// CommModel selects the communication model the schedulers run
	// under: "" or "contention-free" (the classic matrix costs),
	// "one-port" (transfers serialize on per-processor send/receive
	// ports) or "shared-link" (all processors share one bus). Any
	// registry algorithm becomes contention-aware when a contended
	// model is selected.
	CommModel string `json:"commModel,omitempty"`
	// LinkBandwidth scales the shared-link bus (data units per time
	// unit; default 1). Only valid with CommModel "shared-link"; must
	// be positive and finite.
	LinkBandwidth float64 `json:"linkBandwidth,omitempty"`
	// Analyze adds per-task slack, the critical set and per-processor
	// idle time to the response.
	Analyze bool `json:"analyze,omitempty"`
	// Faults asks for a robustness evaluation of the computed schedule;
	// the response carries a Robustness block. Nil skips it.
	Faults *FaultsRequest `json:"faults,omitempty"`
	// TimeoutMs caps this request's scheduling time. Zero applies the
	// server default; values above the server maximum are clamped.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Priority selects the load-shedding class: "" or "normal" queues
	// like any request; "low" is shed with 503 once the queue reaches
	// the server's shed watermark, keeping the remaining queue headroom
	// for normal traffic. Cache hits are served regardless of class.
	Priority string `json:"priority,omitempty"`
}

// ScheduleResponse is the wire form of a scheduling result.
type ScheduleResponse struct {
	Algorithm  string  `json:"algorithm"`
	Makespan   float64 `json:"makespan"`
	SLR        float64 `json:"slr"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Duplicates int     `json:"duplicates"`
	// CommModel is the communication-model kind the schedule was
	// computed under.
	CommModel string `json:"commModel"`
	// RuntimeMs is the scheduling time of the run that produced this
	// result; a cached response reports the original run's time.
	RuntimeMs float64 `json:"runtimeMs"`
	// Cached marks a response served from the result cache (this
	// node's, or — on batch items — the owning peer's).
	Cached bool `json:"cached"`
	// Coalesced marks a response that joined a concurrent identical
	// in-flight computation instead of running its own.
	Coalesced   bool             `json:"coalesced,omitempty"`
	Assignments []AssignmentJSON `json:"assignments"`
	Analysis    *AnalysisJSON    `json:"analysis,omitempty"`
	Robustness  *RobustnessJSON  `json:"robustness,omitempty"`
}

// BatchRequest is the wire form of POST /v1/schedule/batch: many
// scheduling queries in one request. Items are scheduled concurrently
// on the server's worker pool, each under its own deadline (its
// TimeoutMs, or the server default), and the results come back in
// request order with per-item status — one failing item never fails
// the batch.
type BatchRequest struct {
	Items []ScheduleRequest `json:"items"`
}

// BatchResponse is the wire form of a batch result. Items is exactly
// as long as the request's Items and in the same order.
type BatchResponse struct {
	Items     []BatchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// BatchItemResult is one item's outcome. Status carries the HTTP
// status the item would have received as a single request (200, 400,
// 500, 503, 504); exactly one of Response and Error is set.
type BatchItemResult struct {
	Index    int               `json:"index"`
	Status   int               `json:"status"`
	Response *ScheduleResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// FaultsRequest selects the robustness evaluation of a scheduling query.
// Plan replays one explicit fault plan (degradation report + reactive
// repair when it contains permanent crashes); Rate/Samples/Seed draw
// sampled fail-stop plans and report expected degradation under reactive
// repair. At least one of Plan or Rate must be set; both may be.
type FaultsRequest struct {
	// Plan is an explicit fault plan (see sim.FaultPlan wire form).
	Plan *sim.FaultPlan `json:"plan,omitempty"`
	// Rate is the per-processor permanent-crash probability per sample,
	// in [0,1]; Samples (default 20, max 500) and Seed control the draw.
	Rate    float64 `json:"rate,omitempty"`
	Samples int     `json:"samples,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Policy names the repair policy ("remap-stranded",
	// "reschedule-suffix" or "auto"; default "auto").
	Policy string `json:"policy,omitempty"`
}

// RobustnessJSON is the robustness block of a response.
type RobustnessJSON struct {
	// Policy is the repair policy that was applied.
	Policy string `json:"policy"`
	// Nominal is the analytic makespan of the unfaulted schedule.
	Nominal float64 `json:"nominal"`
	// Explicit-plan replay (present when the request carried a plan):
	// Achieved is the faulted replay makespan over completed tasks,
	// Stretch divides it by Nominal, Stranded lists tasks that never
	// ran, Killed/Restarts count executions destroyed and retried.
	Achieved float64 `json:"achieved,omitempty"`
	Stretch  float64 `json:"stretch,omitempty"`
	Stranded []int   `json:"stranded,omitempty"`
	Killed   int     `json:"killed,omitempty"`
	Restarts int     `json:"restarts,omitempty"`
	// Repaired summarizes the reactive repair of the explicit plan
	// (present when the plan contains permanent crashes).
	Repaired *RepairedJSON `json:"repaired,omitempty"`
	// Sampled expectation (present when the request carried a rate):
	// CompletionRate is the fraction of sampled fault plans the
	// unrepaired schedule survived; Mean/MaxDegradation are over the
	// repaired makespans normalized by Nominal; MeanSlack is the
	// schedule's fault-independent makespan slack.
	Samples         int      `json:"samples,omitempty"`
	CompletionRate  *float64 `json:"completionRate,omitempty"`
	MeanDegradation float64  `json:"meanDegradation,omitempty"`
	MaxDegradation  float64  `json:"maxDegradation,omitempty"`
	MeanSlack       float64  `json:"meanSlack,omitempty"`
}

// RepairedJSON summarizes a reactive repair.
type RepairedJSON struct {
	// Chosen is the primitive mode the policy settled on.
	Chosen   string  `json:"chosen"`
	Makespan float64 `json:"makespan"`
	// Stretch divides the repaired makespan by the nominal one.
	Stretch float64 `json:"stretch"`
	Frozen  int     `json:"frozen"`
	Lost    int     `json:"lost"`
	Remapped int    `json:"remapped"`
	Delayed  int    `json:"delayed"`
}

// AssignmentJSON is one task copy placed on a processor.
type AssignmentJSON struct {
	Task   int     `json:"task"`
	Name   string  `json:"name,omitempty"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	Dup    bool    `json:"dup,omitempty"`
}

// AnalysisJSON mirrors sched.Analysis on the wire.
type AnalysisJSON struct {
	Slack     []float64 `json:"slack"`
	Critical  []int     `json:"critical"`
	IdleTime  []float64 `json:"idleTime"`
	IdleShare []float64 `json:"idleShare"`
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

// RingView is the body of GET /v1/ring (and of join responses): one
// node's current view of cluster membership. It doubles as the
// heartbeat payload — heartbeating peers merge the members they did
// not know, which is how views spread without a dedicated gossip
// channel.
type RingView struct {
	// Self is the responding node's ring identity (its base URL).
	Self string `json:"self"`
	// Epoch counts this node's membership changes; it is a local
	// monotonic counter, not a cluster-wide consensus value.
	Epoch uint64 `json:"epoch"`
	// Replication is the node's configured successor-replica count.
	Replication int `json:"replication"`
	// Members lists every member this node knows (itself included)
	// with its locally judged status: "alive", "suspect" or "dead".
	Members []MemberJSON `json:"members"`
}

// MemberJSON is one member of a RingView.
type MemberJSON struct {
	URL    string `json:"url"`
	Status string `json:"status"`
}

// ClusterJSON is the cluster block of GET /metrics: membership state
// plus replication and hinted-handoff traffic.
type ClusterJSON struct {
	// Enabled reports whether this node is currently sharding (two or
	// more live ring members).
	Enabled bool `json:"enabled"`
	// Self is this node's ring identity ("" when never clustered).
	Self string `json:"self,omitempty"`
	// Epoch is the membership epoch (bumps on every ring swap).
	Epoch uint64 `json:"epoch"`
	// Replication is the configured successor-replica count.
	Replication int `json:"replication"`
	// Alive/Suspect/Dead count peers by detector verdict (self excluded).
	Alive   int `json:"alive"`
	Suspect int `json:"suspect"`
	Dead    int `json:"dead"`
	// Members is the full member table with statuses, self included.
	Members []MemberJSON `json:"members,omitempty"`
	// Replica counts replication-push traffic: Pushes/PushFailures are
	// outgoing PUT attempts, Stores are incoming entries accepted.
	Replica struct {
		Pushes       int64 `json:"pushes"`
		PushFailures int64 `json:"pushFailures"`
		Stores       int64 `json:"stores"`
		// SweepQueued counts entries queued by anti-entropy sweeps
		// toward joining/rejoining peers.
		SweepQueued int64 `json:"sweepQueued"`
	} `json:"replica"`
	// Handoff counts the hinted-handoff queue's lifecycle: writes
	// queued for a down peer, re-delivered once it returned, dropped
	// after exhausting retries (or queue overflow), and the current
	// queue length.
	Handoff struct {
		Queued    int64 `json:"queued"`
		Delivered int64 `json:"delivered"`
		Dropped   int64 `json:"dropped"`
		Pending   int   `json:"pending"`
	} `json:"handoff"`
}

// MetricsSnapshot is the body of GET /metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptimeSec"`
	Requests  struct {
		Total    int64            `json:"total"`
		ByStatus map[string]int64 `json:"byStatus"`
		// Panics counts handler and worker panics converted to 500s.
		Panics int64 `json:"panics"`
		// Coalesced counts requests that joined a concurrent identical
		// in-flight computation instead of starting their own.
		Coalesced int64 `json:"coalesced"`
		// Shed counts low-priority items rejected at the shed watermark
		// (queue depth reserved for normal traffic).
		Shed int64 `json:"shed"`
	} `json:"requests"`
	LatencyMs HistogramJSON `json:"latencyMs"`
	Queue     struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
		Workers  int `json:"workers"`
	} `json:"queue"`
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hitRate"`
		Size     int     `json:"size"`
		Capacity int     `json:"capacity"`
		// Tier breaks scheduling items down by where they were served
		// from: this node's LRU, a replication-delivered copy in that
		// LRU, the owning peer's LRU (via the cache probe), or a miss
		// that went to the worker pool.
		Tier struct {
			Local   int64 `json:"local"`
			Replica int64 `json:"replica"`
			Peer    int64 `json:"peer"`
			Miss    int64 `json:"miss"`
		} `json:"tier"`
	} `json:"cache"`
	// Stream summarizes POST /v1/schedule/stream traffic.
	Stream struct {
		// Sessions counts streaming sessions that ran (admitted to a
		// worker); Sealed counts those that reached a clean seal.
		Sessions int64 `json:"sessions"`
		Sealed   int64 `json:"sealed"`
		// Events and Deltas total the events ingested and the re-plan
		// deltas emitted across all sessions.
		Events int64 `json:"events"`
		Deltas int64 `json:"deltas"`
	} `json:"stream"`
	// Batch summarizes POST /v1/schedule/batch traffic.
	Batch struct {
		// Count is the number of batch requests; Items the total items
		// they carried.
		Count int64 `json:"count"`
		Items int64 `json:"items"`
		// SizeHistogram is a cumulative histogram of items per batch.
		SizeHistogram SizeHistogramJSON `json:"sizeHistogram"`
	} `json:"batch"`
	// Shard describes this node's position on the consistent-hash ring
	// and its forwarding traffic (per-peer success/failure counts).
	Shard struct {
		Enabled bool     `json:"enabled"`
		Self    string   `json:"self,omitempty"`
		Peers   []string `json:"peers,omitempty"`
		// Forwards counts requests forwarded to each owning peer;
		// ForwardFailures counts forwards that failed (and fell back to
		// computing locally).
		Forwards        map[string]int64 `json:"forwards"`
		ForwardFailures map[string]int64 `json:"forwardFailures"`
		// Probe counts peer cache-probe outcomes; timeouts are distinct
		// from misses so slow peers are visible separately from cold
		// ones.
		Probe struct {
			Hits     int64 `json:"hits"`
			Misses   int64 `json:"misses"`
			Timeouts int64 `json:"timeouts"`
			Errors   int64 `json:"errors"`
		} `json:"probe"`
	} `json:"shard"`
	// Cluster describes dynamic membership (failure-detector verdicts,
	// epoch) and cache-replication traffic.
	Cluster ClusterJSON `json:"cluster"`
	// Algorithms accumulates makespan and scheduling-runtime summary
	// statistics per algorithm over every uncached successful request.
	Algorithms map[string]AlgorithmStats `json:"algorithms"`
}

// SizeHistogramJSON is a cumulative histogram over integer sizes.
type SizeHistogramJSON struct {
	// Buckets[i].Count is the number of observations ≤ Buckets[i].Le;
	// the implicit final bucket (+Inf) is Count.
	Buckets []SizeBucket `json:"buckets"`
	Count   int64        `json:"count"`
}

// SizeBucket is one cumulative size-bucket boundary.
type SizeBucket struct {
	Le    int   `json:"le"`
	Count int64 `json:"count"`
}

// HistogramJSON is a cumulative latency histogram.
type HistogramJSON struct {
	// Buckets[i].Count is the number of observations ≤ Buckets[i].LeMs;
	// the implicit final bucket (+Inf) is Count.
	Buckets []HistogramBucket `json:"buckets"`
	Count   int64             `json:"count"`
	SumMs   float64           `json:"sumMs"`
}

// HistogramBucket is one cumulative bucket boundary.
type HistogramBucket struct {
	LeMs  float64 `json:"leMs"`
	Count int64   `json:"count"`
}

// AlgorithmStats summarizes one algorithm's serving history.
type AlgorithmStats struct {
	Count    int       `json:"count"`
	Makespan StatsJSON `json:"makespan"`
	Runtime  StatsJSON `json:"runtimeMs"`
}

// StatsJSON renders a metrics.Accumulator. Min and Max are pointers
// because Accumulator.Min/Max return 0 on an empty stream — a value a
// real sample could also take — so empty accumulators serialize them as
// null instead of a misleading 0.
type StatsJSON struct {
	N      int      `json:"n"`
	Mean   float64  `json:"mean"`
	StdDev float64  `json:"stdDev"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}
