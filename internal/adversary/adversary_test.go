package adversary

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dagsched/internal/algo/listsched"
)

func baseSpec() Spec {
	return Spec{N: 24, Procs: 3, CCR: 2, Beta: 0.75, BaseSeed: 7}
}

func TestSpecDecodeDeterministic(t *testing.T) {
	s := baseSpec()
	a, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	da, err := Digest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Digest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("same spec decoded to different instances: %s vs %s", da, db)
	}
}

func TestSpecMultipliersApply(t *testing.T) {
	s := baseSpec()
	plain, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	s.TaskMult = make([]float64, s.N)
	for i := range s.TaskMult {
		s.TaskMult[i] = 2
	}
	scaled, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.W {
		for p := range plain.W[i] {
			if got, want := scaled.W[i][p], 2*plain.W[i][p]; math.Abs(got-want) > 1e-12 {
				t.Fatalf("W[%d][%d] = %g, want %g", i, p, got, want)
			}
		}
	}
	// Edge multipliers of the wrong length must error at decode (the
	// edge count is only known after generation).
	s.EdgeMult = []float64{1, 1}
	if plain.G.NumEdges() != 2 {
		if _, err := s.Decode(); err == nil {
			t.Fatal("mismatched edge multiplier length accepted")
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := map[string]Spec{
		"zero tasks":    {N: 0, Procs: 2, BaseSeed: 1},
		"huge tasks":    {N: MaxTasks + 1, Procs: 2, BaseSeed: 1},
		"zero procs":    {N: 5, Procs: 0, BaseSeed: 1},
		"huge procs":    {N: 5, Procs: MaxProcs + 1, BaseSeed: 1},
		"nan ccr":       {N: 5, Procs: 2, CCR: math.NaN(), BaseSeed: 1},
		"inf ccr":       {N: 5, Procs: 2, CCR: math.Inf(1), BaseSeed: 1},
		"beta 2":        {N: 5, Procs: 2, Beta: 2, BaseSeed: 1},
		"neg shape":     {N: 5, Procs: 2, Shape: -1, BaseSeed: 1},
		"big outdeg":    {N: 5, Procs: 2, OutDegree: MaxOutDegree + 1, BaseSeed: 1},
		"short taskmul": {N: 5, Procs: 2, TaskMult: []float64{1}, BaseSeed: 1},
		"nan taskmul":   {N: 5, Procs: 2, TaskMult: []float64{1, 1, math.NaN(), 1, 1}, BaseSeed: 1},
		"tiny edgemul":  {N: 5, Procs: 2, EdgeMult: []float64{MinMult / 2}, BaseSeed: 1},
		"huge edgemul":  {N: 5, Procs: 2, EdgeMult: []float64{MaxMult * 2}, BaseSeed: 1},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":       "{",
		"unknown field": `{"n":5,"procs":2,"baseSeed":1,"bogus":true}`,
		"wrong type":    `{"n":"five","procs":2,"baseSeed":1}`,
		"out of range":  `{"n":5,"procs":2,"baseSeed":1,"ccr":1e30}`,
	} {
		if _, err := ParseSpec([]byte(data)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", name, data)
		}
	}
	good := `{"n":5,"procs":2,"baseSeed":1,"ccr":1.5}`
	if _, err := ParseSpec([]byte(good)); err != nil {
		t.Fatalf("ParseSpec rejected valid spec: %v", err)
	}
}

// TestSearchDeterministic is the seed-threading regression test of the
// issue: same seed ⇒ same found instance digest, for every method.
func TestSearchDeterministic(t *testing.T) {
	for _, method := range Methods() {
		cfg := Config{
			Attacker: listsched.HEFT{},
			Victim:   listsched.HLFET{},
			Method:   method,
			Iters:    30,
			Pop:      6,
			Seed:     42,
		}
		r1, err := Search(context.Background(), baseSpec(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		r2, err := Search(context.Background(), baseSpec(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		d1, err := Digest(r1.Instance)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Digest(r2.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Errorf("%s: same seed found different instances (%s vs %s)", method, d1, d2)
		}
		if r1.Ratio != r2.Ratio {
			t.Errorf("%s: same seed found different ratios (%v vs %v)", method, r1.Ratio, r2.Ratio)
		}
		if r1.Evals == 0 {
			t.Errorf("%s: no evaluations counted", method)
		}
	}
}

// TestSearchImproves: the search must never return something worse than
// the base spec, and hill climbing should widen the HEFT-vs-HLFET gap
// on a heterogeneous base within a modest budget.
func TestSearchImproves(t *testing.T) {
	cfg := Config{
		Attacker: listsched.HEFT{},
		Victim:   listsched.HLFET{},
		Method:   "hc",
		Iters:    120,
		Seed:     3,
	}
	res, err := Search(context.Background(), baseSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < res.BaseRatio {
		t.Fatalf("search returned ratio %v below base %v", res.Ratio, res.BaseRatio)
	}
	if res.Ratio <= res.BaseRatio {
		t.Errorf("hc made no progress from base ratio %v in %d iters", res.BaseRatio, cfg.Iters)
	}
	// The found instance is a *valid* instance: decode re-validates, and
	// the attacker/victim makespans must be positive and consistent.
	if res.Instance == nil || res.AttackerMakespan <= 0 || res.VictimMakespan <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if got := res.VictimMakespan / res.AttackerMakespan; math.Abs(got-res.Ratio) > 1e-9 {
		t.Errorf("ratio %v inconsistent with makespans (%v)", res.Ratio, got)
	}
}

func TestSearchConfigErrors(t *testing.T) {
	if _, err := Search(context.Background(), baseSpec(), Config{}); err == nil {
		t.Error("missing attacker/victim accepted")
	}
	cfg := Config{Attacker: listsched.HEFT{}, Victim: listsched.ETF{}, Method: "bogus"}
	if _, err := Search(context.Background(), baseSpec(), cfg); err == nil {
		t.Error("unknown method accepted")
	}
	bad := baseSpec()
	bad.N = -1
	cfg.Method = "hc"
	if _, err := Search(context.Background(), bad, cfg); err == nil {
		t.Error("invalid base spec accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, baseSpec(), cfg); err == nil {
		t.Error("canceled context not reported")
	}
}

// TestFixtureRoundTrip saves a search result as a fixture and reloads
// it through the manifest, checking the digest pins hold.
func TestFixtureRoundTrip(t *testing.T) {
	cfg := Config{Attacker: listsched.HEFT{}, Victim: listsched.ETF{}, Method: "hc", Iters: 15, Seed: 9}
	res, err := Search(context.Background(), baseSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fx, err := SaveFixture(dir, "heft_vs_etf", baseSpec(), cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Version: 1, Fixtures: []Fixture{*fx}}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fixtures) != 1 || got.Fixtures[0].Name != "heft_vs_etf" {
		t.Fatalf("manifest round trip: %+v", got)
	}
	in, err := got.Fixtures[0].Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Digest(in)
	if err != nil {
		t.Fatal(err)
	}
	if d != fx.InstanceDigest {
		t.Fatalf("loaded digest %s != saved %s", d, fx.InstanceDigest)
	}
	// The genome must decode back to the very same instance.
	dec, err := got.Fixtures[0].Spec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	dd, err := Digest(dec)
	if err != nil {
		t.Fatal(err)
	}
	if dd != fx.InstanceDigest {
		t.Fatalf("spec decodes to digest %s, fixture pins %s", dd, fx.InstanceDigest)
	}
	// Tampering with the instance file must be caught by Load.
	if err := os.WriteFile(filepath.Join(dir, fx.File), []byte(`{"graph":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Fixtures[0].Load(dir); err == nil {
		t.Fatal("tampered fixture loaded without error")
	}
}
