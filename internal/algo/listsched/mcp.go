package listsched

import (
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// MCP is the Modified Critical Path algorithm of Wu and Gajski (TPDS
// 1990). Each task's priority is its ALAP start time (mean execution and
// communication costs); the task list ascends by ALAP with ties broken by
// the sorted ALAP list of direct successors (a bounded variant of the
// original lexicographic descendant comparison); each task is placed on
// the processor allowing the earliest insertion-based start time.
type MCP struct{}

// Name implements algo.Algorithm.
func (MCP) Name() string { return "MCP" }

// Schedule implements algo.Algorithm.
func (MCP) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	alap := sched.ALAPStart(in)
	// Successor ALAP lists for lexicographic tie-breaking.
	succALAP := make([][]float64, in.N())
	for i := 0; i < in.N(); i++ {
		for _, a := range in.G.Succ(dag.TaskID(i)) {
			succALAP[i] = append(succALAP[i], alap[a.To])
		}
		sort.Float64s(succALAP[i])
	}
	topoPos := make([]int, in.N())
	for k, v := range in.G.TopoOrder() {
		topoPos[v] = k
	}
	order := make([]dag.TaskID, in.N())
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if alap[a] != alap[b] {
			return alap[a] < alap[b]
		}
		la, lb := succALAP[a], succALAP[b]
		for k := 0; k < len(la) && k < len(lb); k++ {
			if la[k] != lb[k] {
				return la[k] < lb[k]
			}
		}
		if len(la) != len(lb) {
			return len(la) < len(lb)
		}
		return topoPos[a] < topoPos[b]
	})
	// ALAP ascends along edges when costs are positive, so the order is
	// precedence-safe; a ready-pass guards the zero-cost corner case. The
	// ready set is a binary min-heap over static order positions: the pick
	// (minimum position, unique because positions are a permutation) is the
	// same task the reference linear ready-list scan selects, at O(log w)
	// per step instead of O(w) for ready-width w — the width-bound scan was
	// MCP's superlinear term on 10k-task DAGs.
	pl := sched.NewPlan(in)
	pending := make([]int, in.N())
	heap := make([]int, 0, in.N()) // order positions of ready tasks
	push := func(posv int) {
		heap = append(heap, posv)
		for k := len(heap) - 1; k > 0; {
			parent := (k - 1) / 2
			if heap[parent] <= heap[k] {
				break
			}
			heap[parent], heap[k] = heap[k], heap[parent]
			k = parent
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for k := 0; ; {
			c := 2*k + 1
			if c >= len(heap) {
				break
			}
			if c+1 < len(heap) && heap[c+1] < heap[c] {
				c++
			}
			if heap[k] <= heap[c] {
				break
			}
			heap[k], heap[c] = heap[c], heap[k]
			k = c
		}
		return top
	}
	pos := make([]int, in.N())
	for k, v := range order {
		pos[v] = k
	}
	for i := 0; i < in.N(); i++ {
		pending[i] = in.G.InDegree(dag.TaskID(i))
		if pending[i] == 0 {
			push(pos[i])
		}
	}
	for len(heap) > 0 {
		pick := order[pop()]
		// Earliest insertion-based start; finish breaks start ties on
		// heterogeneous systems.
		bestP, bestS, bestF := -1, 0.0, 0.0
		for p := 0; p < in.P(); p++ {
			s, f := pl.EFTOn(pick, p, true)
			if bestP == -1 || s < bestS || (s == bestS && f < bestF) {
				bestP, bestS, bestF = p, s, f
			}
		}
		pl.Place(pick, bestP, bestS)
		for _, a := range in.G.Succ(pick) {
			pending[a.To]--
			if pending[a.To] == 0 {
				push(pos[a.To])
			}
		}
	}
	return pl.Finalize("MCP"), nil
}
