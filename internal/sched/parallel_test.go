package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// forceParallelRanks flips the rank kernels onto the concurrent level-set
// path for the duration of one test, restoring the defaults afterwards.
func forceParallelRanks(t *testing.T) {
	t.Helper()
	old := ForceParallelRanks
	ForceParallelRanks = true
	t.Cleanup(func() { ForceParallelRanks = old })
}

// TestParallelRanksBitIdentical is the golden-equivalence property for the
// level-set kernels: for every rank family, the concurrent path must
// reproduce the sequential sweep bit for bit (== on float64, no epsilon).
// Run under -race with GOMAXPROCS > 1 this doubles as the data-race proof
// for the per-level sharding.
func TestParallelRanksBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kernels := []struct {
		name string
		f    func(*Instance) []float64
	}{
		{"RankUpward", RankUpward},
		{"RankUpwardSigma", RankUpwardSigma},
		{"RankDownward", RankDownward},
		{"StaticLevel", StaticLevel},
	}
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, 3+rng.Intn(120), 2+rng.Intn(4))
		seq := make([][]float64, len(kernels))
		for k, kn := range kernels {
			seq[k] = kn.f(in)
		}
		func() {
			old := ForceParallelRanks
			ForceParallelRanks = true
			defer func() { ForceParallelRanks = old }()
			for k, kn := range kernels {
				par := kn.f(in)
				for i := range par {
					if par[i] != seq[k][i] {
						t.Fatalf("trial %d %s: parallel[%d] = %.17g, sequential = %.17g",
							trial, kn.name, i, par[i], seq[k][i])
					}
				}
			}
		}()
	}
}

// TestParallelCriticalPathMean checks the composite consumer: the CPOP
// critical path traced with parallel ranks must equal the sequential one
// task for task.
func TestParallelCriticalPathMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(t, rng, 10+rng.Intn(80), 3)
		seqPath, seqCP := CriticalPathMean(in)
		forcedPath, forcedCP := func() ([]dag.TaskID, float64) {
			old := ForceParallelRanks
			ForceParallelRanks = true
			defer func() { ForceParallelRanks = old }()
			return CriticalPathMean(in)
		}()
		if seqCP != forcedCP {
			t.Fatalf("trial %d: cp %.17g vs %.17g", trial, seqCP, forcedCP)
		}
		if len(seqPath) != len(forcedPath) {
			t.Fatalf("trial %d: path lengths %d vs %d", trial, len(seqPath), len(forcedPath))
		}
		for i := range seqPath {
			if seqPath[i] != forcedPath[i] {
				t.Fatalf("trial %d: path[%d] = %d vs %d", trial, i, seqPath[i], forcedPath[i])
			}
		}
	}
}

// TestLevelForCoversRange checks the sharding helper itself: every index
// visited exactly once, under both the inline and forced-concurrent paths.
func TestLevelForCoversRange(t *testing.T) {
	check := func(n int) {
		t.Helper()
		hits := make([]int32, n)
		levelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
	for _, n := range []int{0, 1, 2, 7, 513, 4096} {
		check(n)
	}
	forceParallelRanks(t)
	for _, n := range []int{0, 1, 2, 7, 513, 4096} {
		check(n)
	}
}

// benchmarkRankInstance builds one layered 20k-task instance shared by the
// rank benchmarks.
func benchmarkRankInstance(b *testing.B) *Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	bd := dag.NewBuilder("bench")
	for i := 0; i < n; i++ {
		bd.AddTask("", 1+rng.Float64()*9)
	}
	for i := 1; i < n; i++ {
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		seen := map[int]bool{}
		for k := 0; k < 3; k++ {
			from := lo + rng.Intn(i-lo)
			if !seen[from] {
				seen[from] = true
				bd.AddEdge(dag.TaskID(from), dag.TaskID(i), rng.Float64()*10)
			}
		}
	}
	return Consistent(bd.MustBuild(), platform.Homogeneous(8, 0.5, 1))
}

// BenchmarkRankLevelSets measures the upward-rank kernel over the cached
// level sets — the inner loop of every list scheduler's priority phase.
// ReportAllocs pins the SoA goal: one output slice per call, nothing else.
func BenchmarkRankLevelSets(b *testing.B) {
	in := benchmarkRankInstance(b)
	RankUpward(in) // warm the graph's level caches outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankUpward(in)
	}
}
