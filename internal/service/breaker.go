package service

import (
	"errors"
	"net/http"
	"sync"
	"time"
)

// breaker is one circuit: consecutive server-side failures open it for
// a cooldown, after which one half-open probe may close it again.
type breaker struct {
	failures  int
	openUntil time.Time
}

// breakerSet is a keyed collection of circuit breakers — per algorithm
// in the single-node client (PR 5's behaviour), per peer in the
// multi-node client and in the server's request forwarder. Thresholds
// and cooldowns are passed per call so a caller whose RetryPolicy is
// mutable keeps its existing semantics.
type breakerSet struct {
	mu sync.Mutex
	m  map[string]*breaker
}

// allow reports whether key's circuit admits a request. An open circuit
// returns open == true with the time left until a half-open probe is
// admitted; a circuit past its cooldown admits one probe.
func (s *breakerSet) allow(key string, threshold int) (wait time.Duration, open bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil || b.failures < threshold {
		return 0, false
	}
	if now := time.Now(); now.Before(b.openUntil) {
		return b.openUntil.Sub(now), true
	}
	return 0, false // half-open: let one probe through
}

// observe feeds one outcome into key's circuit. Server-side failures
// (5xx, transport errors) count against it; a success or a client-side
// rejection (4xx — the far side is healthy) closes it.
func (s *breakerSet) observe(key string, threshold int, cooldown time.Duration, err error) {
	serverFault := err != nil
	var se *StatusError
	if errors.As(err, &se) && se.Status < http.StatusInternalServerError {
		serverFault = false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*breaker)
	}
	b := s.m[key]
	if b == nil {
		b = &breaker{}
		s.m[key] = b
	}
	if !serverFault {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= threshold {
		b.openUntil = time.Now().Add(cooldown)
	}
}
