// Package timeline implements the gap index behind the fast scheduling
// kernel: a per-processor balanced-tree index over the idle gaps of a
// partial schedule that answers insertion-policy earliest-fit queries in
// O(log k) for k placed assignments, replacing the O(k) slot scan of the
// naive implementation.
//
// The index reproduces the reference linear-scan semantics bit for bit.
// A gap is the idle interval [start, end) between the running maximum
// finish time of all earlier assignments and the start of the next one
// (plus a leading gap from 0 and an unbounded tail gap); an interval of
// length dur fits a gap when max(ready, gap.start) + dur <= gap.end + eps,
// exactly the acceptance test of the reference scan, evaluated with the
// same floating-point expression. Occupying a slot splits one gap into a
// left and a right remainder; the remainders are kept even when they are
// empty or microscopically negative (epsilon-dust fits), because the
// reference scan sees those boundaries too.
//
// The index only supports placements that land inside a single idle gap —
// the invariant every FindSlot-driven scheduler maintains. A placement
// that straddles occupied intervals permanently degrades the index
// (OK reports false) and the caller must fall back to the linear scan;
// schedule correctness never depends on the index.
package timeline

import "math"

// node is one idle gap, a treap node keyed by (start, end) and augmented
// with the maximum gap length in its subtree.
type node struct {
	start, end  float64
	prio        uint64
	left, right *node
	maxLen      float64
}

func (n *node) recompute() {
	n.maxLen = n.end - n.start
	if n.left != nil && n.left.maxLen > n.maxLen {
		n.maxLen = n.left.maxLen
	}
	if n.right != nil && n.right.maxLen > n.maxLen {
		n.maxLen = n.right.maxLen
	}
}

func keyLess(s1, e1, s2, e2 float64) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return e1 < e2
}

// GapIndex indexes the idle gaps of one processor's timeline.
type GapIndex struct {
	root *node
	ctr  uint64 // deterministic priority stream
	eps  float64
	ok   bool
}

// New returns an index over an empty timeline: one gap [0, +Inf). eps is
// the slot-fit tolerance of the reference scan (sched.slotEps).
func New(eps float64) *GapIndex {
	gi := &GapIndex{eps: eps, ok: true}
	root := &node{start: 0, end: math.Inf(1), prio: gi.nextPrio()}
	root.recompute()
	gi.root = root
	return gi
}

// nextPrio returns the next deterministic treap priority (splitmix64).
func (gi *GapIndex) nextPrio() uint64 {
	gi.ctr += 0x9e3779b97f4a7c15
	z := gi.ctr
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// OK reports whether the index still mirrors the timeline. It turns false
// permanently after an Occupy that did not land inside a single idle gap;
// the caller must then answer queries by scanning the timeline directly.
func (gi *GapIndex) OK() bool { return gi.ok }

// EarliestFit returns the reference-scan earliest start >= ready at which
// an interval of length dur fits, and whether the index could answer
// (false once degraded).
func (gi *GapIndex) EarliestFit(ready, dur float64) (float64, bool) {
	if !gi.ok {
		return 0, false
	}
	// The gap holding (or last preceding) ready: the rightmost gap with
	// start <= ready. If any earlier gap fits, this one fits with the same
	// resulting start (gap ends are non-decreasing), so checking it alone
	// preserves the first-fit answer.
	if g := pred(gi.root, ready); g != nil {
		if s := math.Max(ready, g.start); s+dur <= g.end+gi.eps {
			return s, true
		}
	}
	// Otherwise the leftmost gap strictly after ready that is long enough.
	if g := firstFit(gi.root, ready, dur, gi.eps); g != nil {
		return g.start, true
	}
	// Unreachable: the unbounded tail gap accepts everything.
	return math.Inf(1), true
}

// pred returns the rightmost gap with start <= ready.
func pred(n *node, ready float64) *node {
	var best *node
	for n != nil {
		if n.start <= ready {
			best, n = n, n.right
		} else {
			n = n.left
		}
	}
	return best
}

// firstFit returns the leftmost gap with start > ready satisfying the
// exact fit test start + dur <= end + eps. Subtrees are pruned with a
// 2*eps length margin so the approximate max-length bound can never
// exclude a gap the exact test would accept.
func firstFit(n *node, ready, dur, eps float64) *node {
	if n == nil || n.maxLen < dur-2*eps {
		return nil
	}
	if n.start > ready {
		if g := firstFit(n.left, ready, dur, eps); g != nil {
			return g
		}
		if n.start+dur <= n.end+eps {
			return n
		}
	}
	return firstFit(n.right, ready, dur, eps)
}

// Occupy removes [start, finish] from the gap that contains it, splitting
// the gap into its left and right remainders. It returns false — and
// degrades the index permanently — when the interval does not lie within
// a single idle gap.
func (gi *GapIndex) Occupy(start, finish float64) bool {
	if !gi.ok {
		return false
	}
	g := pred(gi.root, start)
	if g == nil || finish > g.end+gi.eps {
		gi.ok = false
		gi.root = nil
		return false
	}
	gs, ge := g.start, g.end
	gi.root = del(gi.root, gs, ge)
	gi.root = gi.insertGap(gi.root, gs, start)
	gi.root = gi.insertGap(gi.root, finish, ge)
	return true
}

func (gi *GapIndex) insertGap(root *node, s, e float64) *node {
	x := &node{start: s, end: e, prio: gi.nextPrio()}
	return ins(root, x)
}

func ins(n, x *node) *node {
	if n == nil {
		x.recompute()
		return x
	}
	if x.prio > n.prio {
		x.left, x.right = split(n, x.start, x.end)
		x.recompute()
		return x
	}
	if keyLess(x.start, x.end, n.start, n.end) {
		n.left = ins(n.left, x)
	} else {
		n.right = ins(n.right, x)
	}
	n.recompute()
	return n
}

// split partitions the subtree into keys < (s, e) and keys >= (s, e).
func split(n *node, s, e float64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	if keyLess(n.start, n.end, s, e) {
		var mid *node
		mid, r = split(n.right, s, e)
		n.right = mid
		n.recompute()
		return n, r
	}
	var mid *node
	l, mid = split(n.left, s, e)
	n.left = mid
	n.recompute()
	return l, n
}

// merge joins two subtrees where every key in l precedes every key in r.
func merge(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio > r.prio {
		l.right = merge(l.right, r)
		l.recompute()
		return l
	}
	r.left = merge(l, r.left)
	r.recompute()
	return r
}

// del removes the gap with the exact key (s, e); the gap is known to
// exist because Occupy found it by predecessor search.
func del(n *node, s, e float64) *node {
	if n == nil {
		return nil
	}
	if s == n.start && e == n.end {
		return merge(n.left, n.right)
	}
	if keyLess(s, e, n.start, n.end) {
		n.left = del(n.left, s, e)
	} else {
		n.right = del(n.right, s, e)
	}
	n.recompute()
	return n
}

// Clone returns an independent deep copy of the index.
func (gi *GapIndex) Clone() *GapIndex {
	cp := &GapIndex{ctr: gi.ctr, eps: gi.eps, ok: gi.ok}
	cp.root = cloneNode(gi.root)
	return cp
}

func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	c := *n
	c.left = cloneNode(n.left)
	c.right = cloneNode(n.right)
	return &c
}

// Gap is one idle interval, exported for tests and diagnostics.
type Gap struct{ Start, End float64 }

// Gaps returns the idle gaps in key order (nil once degraded).
func (gi *GapIndex) Gaps() []Gap {
	if !gi.ok {
		return nil
	}
	var out []Gap
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, Gap{Start: n.start, End: n.end})
		walk(n.right)
	}
	walk(gi.root)
	return out
}

// Len returns the number of indexed gaps (0 once degraded).
func (gi *GapIndex) Len() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.left) + count(n.right)
	}
	return count(gi.root)
}
