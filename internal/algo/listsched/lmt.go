package listsched

import (
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// LMT is the Levelized Min Time algorithm of Iverson, Özgüner and Follen:
// tasks are partitioned into precedence levels; within each level
// (mutually independent tasks) the tasks are considered in decreasing
// mean cost and each is assigned to the processor minimizing its finish
// time given the partial schedule — a min-time pass per level.
type LMT struct{}

// Name implements algo.Algorithm.
func (LMT) Name() string { return "LMT" }

// Schedule implements algo.Algorithm.
func (LMT) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	levels := in.G.Levels()
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]dag.TaskID, maxLevel+1)
	for i := 0; i < in.N(); i++ {
		byLevel[levels[i]] = append(byLevel[levels[i]], dag.TaskID(i))
	}
	pl := sched.NewPlan(in)
	for _, level := range byLevel {
		order := append([]dag.TaskID(nil), level...)
		// Decreasing mean cost, ids break ties.
		for i := 1; i < len(order); i++ {
			v := order[i]
			j := i - 1
			for j >= 0 && (in.MeanCost(order[j]) < in.MeanCost(v) ||
				(in.MeanCost(order[j]) == in.MeanCost(v) && order[j] > v)) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = v
		}
		for _, t := range order {
			p, s, _ := pl.BestEFT(t, true)
			pl.Place(t, p, s)
		}
	}
	return pl.Finalize("LMT"), nil
}
