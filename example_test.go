package dagsched_test

import (
	"fmt"
	"math/rand"

	"dagsched"
)

// ExampleILS schedules a hand-built graph on two processors.
func ExampleILS() {
	b := dagsched.NewGraph("example")
	a := b.AddTask("a", 2)
	c := b.AddTask("b", 3)
	d := b.AddTask("c", 1)
	b.AddEdge(a, c, 1)
	b.AddEdge(a, d, 1)
	g, _ := b.Build()
	in := dagsched.ConsistentInstance(g, dagsched.HomogeneousSystem(2, 0, 1))
	s, _ := dagsched.ILS().Schedule(in)
	fmt.Printf("makespan %.4g on %d processors\n", s.Makespan(), 2)
	// Output: makespan 5 on 2 processors
}

// ExampleEvaluate compares two algorithms on the same instance.
func ExampleEvaluate() {
	rng := rand.New(rand.NewSource(1))
	g, _ := dagsched.GaussianEliminationDAG(6)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 4, CCR: 1, Beta: 1}, rng)
	for _, name := range []string{"HEFT", "ILS"} {
		a, _ := dagsched.AlgorithmByName(name)
		res, _ := dagsched.Evaluate(a, in)
		fmt.Printf("%s SLR below 3: %v\n", name, res.SLR < 3)
	}
	// Output:
	// HEFT SLR below 3: true
	// ILS SLR below 3: true
}

// ExampleSimulate replays a schedule exactly and under noise.
func ExampleSimulate() {
	rng := rand.New(rand.NewSource(2))
	g, _ := dagsched.FFTDAG(8)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 3, CCR: 1, Beta: 0.5}, rng)
	s, _ := dagsched.ILS().Schedule(in)
	exact, _ := dagsched.Simulate(s, dagsched.SimConfig{})
	fmt.Printf("exact replay matches: %v\n", exact.Stretch == 1)
	noisy, _ := dagsched.Simulate(s, dagsched.SimConfig{Noise: 0.3, Seed: 7})
	fmt.Printf("noisy replay differs: %v\n", noisy.Makespan != s.Makespan())
	// Output:
	// exact replay matches: true
	// noisy replay differs: true
}

// ExampleRepair reschedules around a processor failure.
func ExampleRepair() {
	rng := rand.New(rand.NewSource(5))
	g, _ := dagsched.LaplaceDAG(4)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 3, CCR: 1, Beta: 0.5}, rng)
	s, _ := dagsched.ILS().Schedule(in)
	r, imp, _ := dagsched.AssessFailure(s, dagsched.Failure{Proc: 0, Time: s.Makespan() / 2})
	fmt.Printf("repaired schedule valid: %v\n", r.Validate() == nil)
	fmt.Printf("repair never improves a failure-free run: %v\n", imp.Repaired >= imp.Original-1e-9)
	// Output:
	// repaired schedule valid: true
	// repair never improves a failure-free run: true
}

// ExampleAnalyze inspects a schedule's slack structure.
func ExampleAnalyze() {
	rng := rand.New(rand.NewSource(6))
	g, _ := dagsched.ForkJoinDAG(4, 2)
	in, _ := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 2, CCR: 1, Beta: 0}, rng)
	s, _ := dagsched.ILS().Schedule(in)
	an := dagsched.Analyze(s)
	fmt.Printf("critical tasks exist: %v\n", len(an.Critical) > 0)
	fmt.Printf("slack entries: %d\n", len(an.Slack))
	// Output:
	// critical tasks exist: true
	// slack entries: 10
}

// ExampleOptimal proves a tiny schedule optimal by branch and bound.
func ExampleOptimal() {
	b := dagsched.NewGraph("tiny")
	x := b.AddTask("x", 2)
	y := b.AddTask("y", 2)
	z := b.AddTask("z", 2)
	b.AddEdge(x, z, 1)
	b.AddEdge(y, z, 1)
	g, _ := b.Build()
	in := dagsched.ConsistentInstance(g, dagsched.HomogeneousSystem(2, 0, 1))
	s, err := dagsched.Optimal(in)
	fmt.Println(s.Makespan(), err)
	// Output: 5 <nil>
}
