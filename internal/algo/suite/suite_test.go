package suite

import (
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestAllUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name()] {
			t.Fatalf("duplicate algorithm name %q", a.Name())
		}
		seen[a.Name()] = true
	}
	if len(seen) != 19 {
		t.Fatalf("registry has %d algorithms, want 19", len(seen))
	}
	for _, a := range Search() {
		if seen[a.Name()] {
			t.Fatalf("search algorithm %q collides with a heuristic name", a.Name())
		}
		seen[a.Name()] = true
	}
	if len(seen) != 22 {
		t.Fatalf("full registry has %d algorithms, want 22", len(seen))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"HEFT", "ILS", "BTDH", "DSC", "PETS", "HCPT", "LMT", "GA", "SA", "HC"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q) returned %q", name, a.Name())
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestLineupsAreSubsetsOfAll(t *testing.T) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	for _, lineup := range [][]string{namesOf(Heterogeneous()), namesOf(Homogeneous()), namesOf(Ablation())} {
		for _, n := range lineup {
			if !known[n] {
				t.Fatalf("lineup algorithm %q not in All()", n)
			}
		}
	}
}

func namesOf(algs []algo.Algorithm) []string {
	var out []string
	for _, a := range algs {
		out = append(out, a.Name())
	}
	return out
}

// The grand integration test: every registered algorithm produces a valid
// schedule on every instance of the battery and on every application
// graph.
func TestEveryAlgorithmEverywhere(t *testing.T) {
	algs := All()
	testfix.Battery(testfix.BatteryConfig{Trials: 20, Seed: 4242}, func(trial int, in *sched.Instance) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
		}
	})
	for _, in := range testfix.AppGraphs(5, 4343) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), in.G.Name(), err)
			}
		}
	}
}
