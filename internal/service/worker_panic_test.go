package service_test

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/suite"
	"dagsched/internal/sched"
	"dagsched/internal/service"
	"dagsched/internal/testfix"
)

// panicAlg stands in for a buggy third-party algorithm plugged in
// through Options.Resolver.
type panicAlg struct{}

func (panicAlg) Name() string { return "detonator" }

func (panicAlg) Schedule(in *sched.Instance) (*sched.Schedule, error) { panic("kaboom") }

// TestWorkerSurvivesPanickingAlgorithm proves the worker pool outlives
// a panicking scheduler: the request answers 500 with its request ID,
// and the same single worker then serves a healthy request — the pool
// was not torn down. The panic shows up in /metrics.
func TestWorkerSurvivesPanickingAlgorithm(t *testing.T) {
	prev := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prev)
	_, c := startServer(t, service.Options{
		Workers: 1,
		Resolver: func(name string) (algo.Algorithm, error) {
			if name == "detonator" {
				return panicAlg{}, nil
			}
			return suite.ByName(name)
		},
	})
	inst := instanceJSON(t, testfix.Topcuoglu())

	for i := 0; i < 2; i++ {
		_, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "detonator", Instance: inst})
		var se *service.StatusError
		if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
			t.Fatalf("panic round %d: got %v, want HTTP 500", i, err)
		}
		if !strings.Contains(se.Message, "scheduler panic") || !strings.Contains(se.Message, "req-") {
			t.Fatalf("panic round %d: 500 body %q lacks panic marker or request ID", i, se.Message)
		}
	}

	resp, err := c.Schedule(context.Background(), service.ScheduleRequest{Algorithm: "HEFT", Instance: inst})
	if err != nil {
		t.Fatalf("healthy request after panics: %v", err)
	}
	if resp.Makespan <= 0 {
		t.Fatalf("healthy response %+v", resp)
	}

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if snap.Requests.Panics != 2 {
		t.Fatalf("metrics panics = %d, want 2", snap.Requests.Panics)
	}
}
