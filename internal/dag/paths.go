package dag

// Path analysis on nominal weights. These helpers treat the graph's
// nominal task weights as execution costs and (optionally) edge data as
// communication costs with unit rate; platform-aware variants live in
// package sched where per-processor costs are known.

// CriticalPathLength returns the length of the longest path through the
// graph counting task weights and, if withComm is true, edge data volumes.
func (g *Graph) CriticalPathLength(withComm bool) float64 {
	_, length := g.CriticalPath(withComm)
	return length
}

// CriticalPath returns one longest path (as a task sequence from an entry
// to an exit) and its length. Task weights always count; edge data counts
// only when withComm is true. Ties are broken deterministically toward the
// successor with the smallest id.
func (g *Graph) CriticalPath(withComm bool) ([]TaskID, float64) {
	n := g.Len()
	next := make([]TaskID, n) // successor on the longest path starting at v
	for i := range next {
		next[i] = -1
	}
	// Longest path from v to any exit, computed in reverse topological
	// order: down[v] = w(v) + max(comm + down[s]). Adjacency is sorted by
	// id, so taking strictly-greater candidates breaks ties toward the
	// smallest successor id.
	down := make([]float64, n)
	for _, v := range g.ReverseTopoOrder() {
		best := 0.0
		bestSucc := TaskID(-1)
		for _, a := range g.Succ(v) {
			c := 0.0
			if withComm {
				c = a.Data
			}
			if cand := c + down[a.To]; bestSucc == -1 || cand > best {
				best = cand
				bestSucc = a.To
			}
		}
		down[v] = g.tasks[v].Weight + best
		next[v] = bestSucc
	}
	// Start at the entry with the largest downward distance; smallest id
	// wins ties.
	start := TaskID(0)
	for i := 1; i < n; i++ {
		if down[i] > down[start] {
			start = TaskID(i)
		}
	}
	var path []TaskID
	for v := start; v != -1; v = next[v] {
		path = append(path, v)
	}
	return path, down[start]
}

// BottomLevels returns, for every task, the longest path from the task to
// any exit (inclusive of the task's weight). Edge data counts only when
// withComm is true. In the scheduling literature this is the "static
// (bottom) level" when withComm is false.
func (g *Graph) BottomLevels(withComm bool) []float64 {
	n := g.Len()
	bl := make([]float64, n)
	for _, v := range g.ReverseTopoOrder() {
		best := 0.0
		for _, a := range g.Succ(v) {
			c := 0.0
			if withComm {
				c = a.Data
			}
			if cand := c + bl[a.To]; cand > best {
				best = cand
			}
		}
		bl[v] = g.tasks[v].Weight + best
	}
	return bl
}

// TopLevels returns, for every task, the longest path from any entry to
// the task (exclusive of the task's own weight), i.e. its earliest
// possible start on an unbounded homogeneous machine.
func (g *Graph) TopLevels(withComm bool) []float64 {
	n := g.Len()
	tl := make([]float64, n)
	for _, v := range g.TopoOrder() {
		best := 0.0
		for _, p := range g.Pred(v) {
			c := 0.0
			if withComm {
				c = p.Data
			}
			if cand := tl[p.To] + g.tasks[p.To].Weight + c; cand > best {
				best = cand
			}
		}
		tl[v] = best
	}
	return tl
}

// ALAP returns the as-late-as-possible start time for every task such that
// the overall critical-path length is preserved: alap[v] = CP - bl[v] where
// bl is the bottom level. Edge data counts only when withComm is true.
func (g *Graph) ALAP(withComm bool) []float64 {
	bl := g.BottomLevels(withComm)
	cp := 0.0
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	out := make([]float64, len(bl))
	for i, v := range bl {
		out[i] = cp - v
	}
	return out
}
