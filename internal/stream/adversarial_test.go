package stream

import (
	"testing"

	"dagsched/internal/adversary"
	"dagsched/internal/dag"
	"dagsched/internal/testfix"
)

// TestStreamAdversarialFixtures replays the pinned adversarial instances
// through the engine in worst-case (reverse-topological) arrival order
// with a batch size of one — every edge violates the incremental
// topological order and forces the Pearce–Kelly repair, and every edge's
// head is already placed, forcing the re-plan slow path. Per delta the
// schedule must stay valid and the re-plan bounded by the affected
// descendant closure; the sealed schedule must match the static
// scheduler bit for bit.
func TestStreamAdversarialFixtures(t *testing.T) {
	const dir = "../../testdata/adversarial"
	m, err := adversary.ReadManifest(dir)
	if err != nil {
		t.Fatalf("reading fixture manifest: %v", err)
	}
	if len(m.Fixtures) == 0 {
		t.Fatal("no adversarial fixtures")
	}
	for _, fx := range m.Fixtures {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			in, err := fx.Load(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			n := in.N()
			topo := in.G.TopoOrder()
			arrival := make([]dag.TaskID, n)
			for i := 0; i < n; i++ {
				arrival[i] = topo[n-1-i]
			}
			evs, err := InstanceEvents(in, arrival)
			if err != nil {
				t.Fatalf("events: %v", err)
			}

			pm, err := ParamFor("HEFT")
			if err != nil {
				t.Fatal(err)
			}
			sin, err := StaticInstance(evs, in.Sys, fx.Name)
			if err != nil {
				t.Fatalf("static instance: %v", err)
			}
			want, err := pm.Schedule(sin)
			if err != nil {
				t.Fatalf("static schedule: %v", err)
			}

			eng, err := NewEngine(Config{Algorithm: "HEFT", Sys: in.Sys, BatchSize: 1, Name: fx.Name})
			if err != nil {
				t.Fatal(err)
			}
			// Independent adjacency mirror: the re-plan bound is the
			// descendant closure of the batch's new tasks and edge heads.
			succ := make([][]int, 0, n)
			var seeds []int
			closure := func() int {
				seen := make([]bool, len(succ))
				stack := append([]int(nil), seeds...)
				for _, s := range stack {
					seen[s] = true
				}
				count := 0
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					count++
					for _, s := range succ[v] {
						if !seen[s] {
							seen[s] = true
							stack = append(stack, s)
						}
					}
				}
				return count
			}
			checkDelta := func(d *Delta) {
				t.Helper()
				if !d.Sealed && d.Replanned > closure() {
					t.Fatalf("delta %d re-planned %d tasks, affected closure is %d", d.Seq, d.Replanned, closure())
				}
				seeds = seeds[:0]
				if err := eng.Schedule().Validate(); err != nil {
					t.Fatalf("delta %d: schedule invalid: %v", d.Seq, err)
				}
			}

			deltas := 0
			for i, ev := range evs {
				// The auto-flush on a task arrival covers only the events
				// buffered before it, so check against the pre-task mirror.
				d, err := eng.Apply(ev)
				if err != nil {
					t.Fatalf("event %d (%+v): %v", i, ev, err)
				}
				if d != nil {
					deltas++
					checkDelta(d)
				}
				switch ev.Op {
				case OpAddTask:
					succ = append(succ, nil)
					seeds = append(seeds, ev.ID)
				case OpAddEdge:
					succ[ev.From] = append(succ[ev.From], ev.To)
					seeds = append(seeds, ev.To)
				}
			}
			if deltas < n {
				t.Fatalf("only %d deltas for %d tasks at batch size 1", deltas, n)
			}
			got := testfix.ScheduleDigest(eng.Schedule())
			if want := testfix.ScheduleDigest(want); got != want {
				t.Fatalf("sealed digest %s != static %s", got, want)
			}
		})
	}
}
