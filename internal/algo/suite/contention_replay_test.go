package suite

import (
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

const replayEps = 1e-6

// TestRegistryOnePortReplayProperty is the contract the pluggable comm
// layer must honour for every algorithm in the registry: replaying any
// valid schedule under the one-port model (1) keeps it precedence-valid
// — every consumer still starts after the data from its routed source
// copies arrives, which the replay itself enforces and the monotonicity
// below witnesses — and (2) only ever moves starts later than the
// contention-free replay, never earlier, because serializing transfers
// on ports can delay an arrival but transfer durations are unchanged.
func TestRegistryOnePortReplayProperty(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			testfix.Battery(testfix.BatteryConfig{Trials: 6, MaxCCR: 8, Seed: 7100}, func(trial int, in *sched.Instance) {
				s, err := a.Schedule(in)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				free, err := sim.Run(s, sim.Config{})
				if err != nil {
					t.Fatalf("trial %d free replay: %v", trial, err)
				}
				cont, err := sim.Run(s, sim.Config{Contention: true})
				if err != nil {
					t.Fatalf("trial %d contended replay: %v", trial, err)
				}
				if cont.Makespan < free.Makespan-replayEps {
					t.Fatalf("trial %d: contended makespan %g below contention-free %g",
						trial, cont.Makespan, free.Makespan)
				}
				for i := range cont.Start {
					if cont.Start[i] < free.Start[i]-replayEps {
						t.Fatalf("trial %d: task %d starts at %g contended, earlier than %g contention-free",
							trial, i, cont.Start[i], free.Start[i])
					}
				}
				// On duplication-free schedules the primary copies are the
				// only copies, so the replayed times must directly satisfy
				// every precedence edge.
				hasDup := false
				for p := 0; p < in.P(); p++ {
					for _, c := range s.OnProc(p) {
						if c.Dup {
							hasDup = true
						}
					}
				}
				if hasDup {
					return
				}
				for u := 0; u < in.N(); u++ {
					for _, e := range in.G.Succ(dag.TaskID(u)) {
						if cont.Start[e.To] < cont.Finish[u]-replayEps {
							t.Fatalf("trial %d: edge %d->%d violated contended: start %g < finish %g",
								trial, u, e.To, cont.Start[e.To], cont.Finish[u])
						}
					}
				}
			})
		})
	}
}

// TestContendedTrialsConcurrent drives the full ILS machinery — parallel
// speculative trials, lookahead, duplication — through the one-port
// reservation layer with a forced worker group, so the race tier
// exercises the cloned comm-state path. Determinism across two runs
// proves the trial clones never share reservation state.
func TestContendedTrialsConcurrent(t *testing.T) {
	forceConcurrentTrials(t)
	cils := algo.CommAware{Inner: core.New(), DisplayName: "C-ILS"}
	testfix.Battery(testfix.BatteryConfig{Trials: 8, MaxCCR: 8, Seed: 7200}, func(trial int, in *sched.Instance) {
		s1, err := cils.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s1.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s2, err := cils.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s1.Makespan() != s2.Makespan() {
			t.Fatalf("trial %d: contended ILS not deterministic under concurrent trials: %g vs %g",
				trial, s1.Makespan(), s2.Makespan())
		}
	})
}
