package contention

import (
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/sim"
	"dagsched/internal/testfix"
)

func TestCHEFTValidOnBattery(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 7001}, func(trial int, in *sched.Instance) {
		s, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Makespan() < in.CPMin()-1e-6 {
			t.Fatalf("trial %d: below CP bound", trial)
		}
	})
}

func TestCHEFTValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(4, 7002) {
		s, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
	}
}

// CHEFT is, by construction, HEFT behind the generic CommAware wrapper;
// wrapping HEFT by hand must produce the identical schedule, and the
// result must carry the wrapper's display name.
func TestCHEFTIsWrappedHEFT(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 10, MaxCCR: 8, Seed: 7005}, func(trial int, in *sched.Instance) {
		a, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		w := algo.CommAware{Inner: listsched.HEFT{}, Kind: platform.KindOnePort}
		b, err := w.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan() != b.Makespan() {
			t.Fatalf("trial %d: CHEFT %g != wrapped HEFT %g", trial, a.Makespan(), b.Makespan())
		}
		for i := 0; i < in.N(); i++ {
			pa, pb := a.Primary(dag.TaskID(i)), b.Primary(dag.TaskID(i))
			if pa.Proc != pb.Proc || pa.Start != pb.Start {
				t.Fatalf("trial %d: task %d placed differently", trial, i)
			}
		}
		if a.Algorithm() != "C-HEFT" || b.Algorithm() != "C-HEFT" {
			t.Fatalf("names %q / %q", a.Algorithm(), b.Algorithm())
		}
	})
}

// The point of the algorithm: under the one-port replay, C-HEFT schedules
// must degrade much less than HEFT schedules on communication-heavy
// instances.
func TestCHEFTRobustToContention(t *testing.T) {
	var heftStretch, cheftStretch float64
	trials := 0
	testfix.Battery(testfix.BatteryConfig{Trials: 20, MaxCCR: 8, Seed: 7003}, func(trial int, in *sched.Instance) {
		h, err := listsched.HEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CHEFT{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := sim.Run(h, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := sim.Run(c, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		heftStretch += hr.Stretch
		cheftStretch += cr.Stretch
		trials++
	})
	if cheftStretch >= heftStretch {
		t.Fatalf("C-HEFT mean contention stretch %.3f not below HEFT's %.3f",
			cheftStretch/float64(trials), heftStretch/float64(trials))
	}
	t.Logf("mean one-port stretch: C-HEFT %.3f vs HEFT %.3f",
		cheftStretch/float64(trials), heftStretch/float64(trials))
}

// Contended ABSOLUTE makespan must also be no worse on average —
// otherwise low stretch would just mean pessimistic scheduling.
func TestCHEFTContendedMakespanCompetitive(t *testing.T) {
	var heftMS, cheftMS float64
	testfix.Battery(testfix.BatteryConfig{Trials: 20, MaxCCR: 8, Seed: 7004}, func(trial int, in *sched.Instance) {
		h, _ := listsched.HEFT{}.Schedule(in)
		c, _ := CHEFT{}.Schedule(in)
		hr, err := sim.Run(h, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := sim.Run(c, sim.Config{Contention: true})
		if err != nil {
			t.Fatal(err)
		}
		heftMS += hr.Makespan
		cheftMS += cr.Makespan
	})
	if cheftMS > heftMS*1.05 {
		t.Fatalf("C-HEFT contended makespan total %.4g much worse than HEFT %.4g", cheftMS, heftMS)
	}
}

func TestCHEFTOnLocalChainReservesNothing(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 5; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 10)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	send, err := PortSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range send {
		if v != 0 {
			t.Fatalf("send port %d busy %g on a chain kept local", p, v)
		}
	}
	s, _ := CHEFT{}.Schedule(in)
	if s.Makespan() != 10 {
		t.Fatalf("chain makespan = %g, want 10", s.Makespan())
	}
}

func TestCHEFTDeterministic(t *testing.T) {
	in := testfix.Topcuoglu()
	s1, _ := CHEFT{}.Schedule(in)
	s2, _ := CHEFT{}.Schedule(in)
	if s1.Makespan() != s2.Makespan() {
		t.Fatal("not deterministic")
	}
}
