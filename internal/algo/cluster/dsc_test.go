package cluster

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestName(t *testing.T) {
	if (DSC{}).Name() != "DSC" {
		t.Fatal("bad name")
	}
}

func TestChainCollapsesToOneCluster(t *testing.T) {
	b := dag.NewBuilder("chain")
	var prev dag.TaskID = -1
	for i := 0; i < 6; i++ {
		id := b.AddTask("", 2)
		if prev >= 0 {
			b.AddEdge(prev, id, 5)
		}
		prev = id
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(3, 0, 1))
	clusters := Clusters(in)
	for i := 1; i < len(clusters); i++ {
		if clusters[i] != clusters[0] {
			t.Fatalf("chain split across clusters: %v", clusters)
		}
	}
	s, err := DSC{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 12 {
		t.Fatalf("chain makespan = %g, want 12", s.Makespan())
	}
}

func TestIndependentTasksStaySeparate(t *testing.T) {
	b := dag.NewBuilder("indep")
	for i := 0; i < 4; i++ {
		b.AddTask("", 3)
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(4, 0, 1))
	clusters := Clusters(in)
	seen := map[int]bool{}
	for _, c := range clusters {
		if seen[c] {
			t.Fatalf("independent tasks share a cluster: %v", clusters)
		}
		seen[c] = true
	}
	s, _ := DSC{}.Schedule(in)
	if s.Makespan() != 3 {
		t.Fatalf("makespan = %g, want 3 (all parallel)", s.Makespan())
	}
}

func TestZeroCommKeepsParallelism(t *testing.T) {
	// Fork-join with zero communication: clustering must not serialize
	// the branches onto one cluster.
	b := dag.NewBuilder("fj")
	fork := b.AddTask("fork", 1)
	j := make([]dag.TaskID, 4)
	for i := range j {
		j[i] = b.AddTask("", 10)
		b.AddEdge(fork, j[i], 0)
	}
	join := b.AddTask("join", 1)
	for _, v := range j {
		b.AddEdge(v, join, 0)
	}
	in := sched.Consistent(b.MustBuild(), platform.Homogeneous(4, 0, 1))
	s, err := DSC{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero comm: optimal is 1 + 10 + 1 = 12. DSC's merge phase must not
	// serialize the branches: it has 4 processors for ≥ 4 clusters of
	// work 10 each.
	if s.Makespan() != 12 {
		t.Fatalf("makespan = %g, want 12", s.Makespan())
	}
}

func TestAssignmentsWithinProcRange(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 20, Seed: 303}, func(trial int, in *sched.Instance) {
		assign := Assignments(in)
		if len(assign) != in.N() {
			t.Fatalf("trial %d: %d assignments for %d tasks", trial, len(assign), in.N())
		}
		for v, p := range assign {
			if p < 0 || p >= in.P() {
				t.Fatalf("trial %d: task %d assigned to P%d of %d", trial, v, p, in.P())
			}
		}
	})
}

func TestValidOnBattery(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 30, Seed: 404}, func(trial int, in *sched.Instance) {
		s, err := DSC{}.Schedule(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	})
}

func TestValidOnAppGraphs(t *testing.T) {
	for _, in := range testfix.AppGraphs(3, 77) {
		s, err := DSC{}.Schedule(in)
		if err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", in.G.Name(), err)
		}
	}
}
