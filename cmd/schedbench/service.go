package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"dagsched"
	"dagsched/internal/service"
)

// serviceReport is the machine-readable output of the -service mode:
// the serving-tier throughput headline, comparing one 64-item batch
// round trip against 64 sequential single-request round trips on an
// in-process schedd.
type serviceReport struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	GoOSArch   string        `json:"goos_goarch"`
	CPU        string        `json:"cpu"`
	Config     serviceConfig `json:"config"`
	Sequential serviceLeg    `json:"sequential"`
	Batch      serviceLeg    `json:"batch"`
	// Speedup is sequential total wall-clock over batch total
	// wall-clock for the same items: what one batch round trip buys
	// over N single round trips.
	Speedup float64 `json:"batch_speedup"`
}

type serviceConfig struct {
	Items     int    `json:"items"`
	N         int    `json:"n"`
	Procs     int    `json:"procs"`
	Algorithm string `json:"algorithm"`
	Workers   int    `json:"workers"`
	Reps      int    `json:"reps"`
	Seed      int64  `json:"seed"`
}

// serviceLeg is one protocol's measurements. Totals are best-of-reps;
// the latency quantiles pool every single-request round trip across
// reps (the batch leg has one latency per rep, so P50/P99 are omitted).
type serviceLeg struct {
	TotalMs  float64 `json:"total_ms"`
	ReqPerS  float64 `json:"req_per_s"`
	ItemPerS float64 `json:"items_per_s"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
}

// runService benchmarks the serving tier end to end over real HTTP:
// an in-process schedd with caching disabled (every item computes), 64
// distinct small instances, and reps rounds of sequential-singles
// versus one-batch. Small instances are the point — they are the regime
// where per-request HTTP and JSON overhead rivals scheduling cost, so
// batching has something to amortize.
func runService(outPath string, reps int, seed int64, quick bool) error {
	items, n := 64, 30
	if quick {
		items = 16
	}
	if reps <= 0 {
		reps = 5
	}

	srv := service.New(service.Options{
		Addr:       "127.0.0.1:0",
		QueueDepth: 2 * items,
		CacheSize:  -1, // every item computes; this measures throughput, not caching
	})
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	c := &service.Client{BaseURL: "http://" + addr, Retry: &service.RetryPolicy{MaxAttempts: 1}}

	rng := rand.New(rand.NewSource(seed + 1))
	reqs := make([]service.ScheduleRequest, items)
	for i := range reqs {
		g, err := dagsched.RandomDAG(dagsched.RandomDAGConfig{N: n}, rng)
		if err != nil {
			return err
		}
		in, err := dagsched.MakeInstance(g, dagsched.WorkloadConfig{Procs: 4, CCR: 1, Beta: 1}, rng)
		if err != nil {
			return err
		}
		var sb strings.Builder
		if err := in.WriteJSON(&sb); err != nil {
			return err
		}
		reqs[i] = service.ScheduleRequest{Algorithm: "HEFT", Instance: []byte(sb.String())}
	}
	breq := service.BatchRequest{Items: reqs}
	ctx := context.Background()

	// Warm round of each protocol: first-connection and first-GC costs
	// land outside the measurement, as in the -scale sweep.
	if _, err := c.Schedule(ctx, reqs[0]); err != nil {
		return fmt.Errorf("warm single: %w", err)
	}
	if _, err := c.ScheduleBatch(ctx, breq); err != nil {
		return fmt.Errorf("warm batch: %w", err)
	}

	var bestSeq, bestBatch time.Duration
	var lats []float64
	for r := 0; r < reps; r++ {
		seqStart := time.Now()
		for i := range reqs {
			reqStart := time.Now()
			if _, err := c.Schedule(ctx, reqs[i]); err != nil {
				return fmt.Errorf("rep %d single %d: %w", r, i, err)
			}
			lats = append(lats, float64(time.Since(reqStart).Microseconds())/1000)
		}
		if seq := time.Since(seqStart); bestSeq == 0 || seq < bestSeq {
			bestSeq = seq
		}
		batchStart := time.Now()
		bresp, err := c.ScheduleBatch(ctx, breq)
		if err != nil {
			return fmt.Errorf("rep %d batch: %w", r, err)
		}
		if bresp.Failed != 0 {
			return fmt.Errorf("rep %d: %d batch items failed", r, bresp.Failed)
		}
		if b := time.Since(batchStart); bestBatch == 0 || b < bestBatch {
			bestBatch = b
		}
		fmt.Fprintf(os.Stderr, "service: rep %d  sequential=%s  batch=%s\n",
			r, bestSeq.Round(time.Microsecond), bestBatch.Round(time.Microsecond))
	}
	sort.Float64s(lats)

	rep := serviceReport{
		Suite:     "dagsched-service",
		GoVersion: runtime.Version(),
		GoOSArch:  runtime.GOOS + "/" + runtime.GOARCH,
		CPU:       cpuModel(),
		Config: serviceConfig{Items: items, N: n, Procs: 4, Algorithm: "HEFT",
			Workers: runtime.GOMAXPROCS(0), Reps: reps, Seed: seed},
		Sequential: serviceLeg{
			TotalMs:  float64(bestSeq.Microseconds()) / 1000,
			ReqPerS:  float64(items) / bestSeq.Seconds(),
			ItemPerS: float64(items) / bestSeq.Seconds(),
			P50Ms:    quantile(lats, 0.50),
			P99Ms:    quantile(lats, 0.99),
		},
		Batch: serviceLeg{
			TotalMs:  float64(bestBatch.Microseconds()) / 1000,
			ReqPerS:  1 / bestBatch.Seconds(),
			ItemPerS: float64(items) / bestBatch.Seconds(),
		},
		Speedup: bestSeq.Seconds() / bestBatch.Seconds(),
	}
	fmt.Fprintf(os.Stderr, "service: %d items  sequential=%s  batch=%s  speedup=%.2fx\n",
		items, bestSeq.Round(time.Microsecond), bestBatch.Round(time.Microsecond), rep.Speedup)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

// quantile reads the q-quantile from sorted xs by nearest rank.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
