// Package algo defines the Algorithm interface implemented by every
// scheduler in this repository and the machinery they share: precedence-
// safe priority ordering, ready-list iteration and the critical-parent
// duplication trial used by duplication-based heuristics.
package algo

import (
	"dagsched/internal/sched"
)

// Algorithm is a static scheduling heuristic: it maps a problem instance
// to a complete, valid schedule.
type Algorithm interface {
	// Name returns the short display name, e.g. "HEFT".
	Name() string
	// Schedule produces a complete schedule for the instance.
	Schedule(in *sched.Instance) (*sched.Schedule, error)
}

// Func adapts a function to the Algorithm interface.
type Func struct {
	AlgName string
	Fn      func(in *sched.Instance) (*sched.Schedule, error)
}

// Name implements Algorithm.
func (f Func) Name() string { return f.AlgName }

// Schedule implements Algorithm.
func (f Func) Schedule(in *sched.Instance) (*sched.Schedule, error) { return f.Fn(in) }
