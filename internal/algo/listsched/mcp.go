package listsched

import (
	"sort"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// MCP is the Modified Critical Path algorithm of Wu and Gajski (TPDS
// 1990). Each task's priority is its ALAP start time (mean execution and
// communication costs); the task list ascends by ALAP with ties broken by
// the sorted ALAP list of direct successors (a bounded variant of the
// original lexicographic descendant comparison); each task is placed on
// the processor allowing the earliest insertion-based start time.
type MCP struct{}

// Name implements algo.Algorithm.
func (MCP) Name() string { return "MCP" }

// Schedule implements algo.Algorithm.
func (MCP) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	alap := sched.ALAPStart(in)
	// Successor ALAP lists for lexicographic tie-breaking.
	succALAP := make([][]float64, in.N())
	for i := 0; i < in.N(); i++ {
		for _, a := range in.G.Succ(dag.TaskID(i)) {
			succALAP[i] = append(succALAP[i], alap[a.To])
		}
		sort.Float64s(succALAP[i])
	}
	topoPos := make([]int, in.N())
	for k, v := range in.G.TopoOrder() {
		topoPos[v] = k
	}
	order := make([]dag.TaskID, in.N())
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if alap[a] != alap[b] {
			return alap[a] < alap[b]
		}
		la, lb := succALAP[a], succALAP[b]
		for k := 0; k < len(la) && k < len(lb); k++ {
			if la[k] != lb[k] {
				return la[k] < lb[k]
			}
		}
		if len(la) != len(lb) {
			return len(la) < len(lb)
		}
		return topoPos[a] < topoPos[b]
	})
	// ALAP ascends along edges when costs are positive, so the order is
	// precedence-safe; a ready-list pass guards the zero-cost corner case.
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	pos := make(map[dag.TaskID]int, in.N())
	for k, v := range order {
		pos[v] = k
	}
	for !rl.Empty() {
		var pick dag.TaskID = -1
		for _, r := range rl.Ready() {
			if pick == -1 || pos[r] < pos[pick] {
				pick = r
			}
		}
		// Earliest insertion-based start; finish breaks start ties on
		// heterogeneous systems.
		bestP, bestS, bestF := -1, 0.0, 0.0
		for p := 0; p < in.P(); p++ {
			s, f := pl.EFTOn(pick, p, true)
			if bestP == -1 || s < bestS || (s == bestS && f < bestF) {
				bestP, bestS, bestF = p, s, f
			}
		}
		pl.Place(pick, bestP, bestS)
		rl.Complete(pick)
	}
	return pl.Finalize("MCP"), nil
}
