package sched

import (
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
)

// replanInstance builds a random layered instance for the suffix
// re-planning tests.
func replanInstance(t *testing.T, seed int64, n, procs int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dag.NewBuilder("replan")
	for i := 0; i < n; i++ {
		b.AddTask("", float64(1+rng.Intn(9)))
	}
	for to := 1; to < n; to++ {
		for k := 0; k < 1+rng.Intn(2); k++ {
			from := rng.Intn(to)
			b.AddEdge(dag.TaskID(from), dag.TaskID(to), float64(rng.Intn(20)))
		}
	}
	g, err := b.Build()
	if err != nil {
		// Duplicate edges from the random draw: retry with the next seed.
		return replanInstance(t, seed+1000, n, procs)
	}
	return Consistent(g, platform.Homogeneous(procs, 1, 0.25))
}

// heftPlan schedules the instance with a plain EFT list pass (upward
// rank order), returning the plan.
func heftPlan(in *Instance) *Plan {
	pl := NewPlan(in)
	order := SortByRankDesc(RankUpward(in))
	for _, t := range order {
		p, s, _ := pl.BestEFT(t, true)
		pl.Place(t, p, s)
	}
	return pl
}

func TestSeedPlanRoundTrip(t *testing.T) {
	in := replanInstance(t, 1, 40, 3)
	pl := heftPlan(in)
	s := pl.Finalize("seed")

	var as []Assignment
	for i := 0; i < in.N(); i++ {
		as = append(as, pl.Copies(dag.TaskID(i))...)
	}
	re := SeedPlan(in, as)
	if re.Makespan() != pl.Makespan() {
		t.Fatalf("makespan %v != %v", re.Makespan(), pl.Makespan())
	}
	for i := 0; i < in.N(); i++ {
		if re.Primary(dag.TaskID(i)) != pl.Primary(dag.TaskID(i)) {
			t.Fatalf("task %d moved: %+v != %+v", i, re.Primary(dag.TaskID(i)), pl.Primary(dag.TaskID(i)))
		}
	}
	if err := re.Finalize("seed").Validate(); err != nil {
		t.Fatalf("reseeded schedule invalid: %v", err)
	}
	_ = s
}

func TestSplitHorizon(t *testing.T) {
	in := replanInstance(t, 2, 30, 3)
	pl := heftPlan(in)
	var as []Assignment
	for i := 0; i < in.N(); i++ {
		as = append(as, pl.Copies(dag.TaskID(i))...)
	}
	clock := pl.Makespan() / 2
	frozen, movable := SplitHorizon(as, clock)
	if len(frozen)+len(movable) != len(as) {
		t.Fatal("partition lost assignments")
	}
	for _, a := range frozen {
		if a.Start >= clock {
			t.Fatalf("frozen %+v at/after clock %g", a, clock)
		}
	}
	for _, a := range movable {
		if a.Start < clock {
			t.Fatalf("movable %+v before clock %g", a, clock)
		}
	}
	// Ancestor closure: every predecessor of a frozen task is frozen.
	isFrozen := map[dag.TaskID]bool{}
	for _, a := range frozen {
		isFrozen[a.Task] = true
	}
	for _, a := range frozen {
		for _, p := range in.G.Pred(a.Task) {
			if !isFrozen[p.To] {
				t.Fatalf("frozen task %d has movable predecessor %d", a.Task, p.To)
			}
		}
	}
	// Horizon zero freezes nothing.
	if f, _ := SplitHorizon(as, 0); len(f) != 0 {
		t.Fatalf("clock 0 froze %d assignments", len(f))
	}
}

// movableOrder returns the movable task ids in a precedence-safe order
// (canonical topo order filtered to the movable set).
func movableOrder(in *Instance, movable []Assignment) []dag.TaskID {
	keep := map[dag.TaskID]bool{}
	for _, a := range movable {
		keep[a.Task] = true
	}
	var order []dag.TaskID
	for _, v := range in.G.TopoOrder() {
		if keep[v] {
			order = append(order, v)
		}
	}
	return order
}

func TestReplanSuffixOnPlanAndTxn(t *testing.T) {
	for _, byStart := range []bool{false, true} {
		in := replanInstance(t, 3, 50, 4)
		base := heftPlan(in)
		var as []Assignment
		for i := 0; i < in.N(); i++ {
			as = append(as, base.Copies(dag.TaskID(i))...)
		}
		clock := base.Makespan() * 0.4
		frozen, movable := SplitHorizon(as, clock)
		order := movableOrder(in, movable)

		// Directly on a plan.
		pl := SeedPlan(in, frozen)
		ReplanSuffix(pl, order, clock, true, byStart)
		direct := pl.Finalize("replan")
		if err := direct.Validate(); err != nil {
			t.Fatalf("byStart=%v: direct replan invalid: %v", byStart, err)
		}
		for _, a := range direct.All() {
			if a.Start < clock {
				// Must be one of the frozen prefix placements.
				found := false
				for _, f := range frozen {
					if f == a {
						found = true
					}
				}
				if !found {
					t.Fatalf("byStart=%v: re-planned task %d started at %g before clock %g", byStart, a.Task, a.Start, clock)
				}
			}
		}

		// Speculatively inside a transaction, then committed: identical.
		pl2 := SeedPlan(in, frozen)
		tx := pl2.Begin()
		ReplanSuffix(tx, order, clock, true, byStart)
		tx.Commit()
		committed := pl2.Finalize("replan")
		if len(committed.All()) != len(direct.All()) {
			t.Fatalf("byStart=%v: txn replan differs in size", byStart)
		}
		for i, a := range committed.All() {
			if direct.All()[i] != a {
				t.Fatalf("byStart=%v: txn replan differs at %d: %+v != %+v", byStart, i, a, direct.All()[i])
			}
		}

		// Rolled back: the seeded prefix is untouched.
		pl3 := SeedPlan(in, frozen)
		tx3 := pl3.Begin()
		ReplanSuffix(tx3, order, clock, true, byStart)
		tx3.Rollback()
		for _, f := range frozen {
			cs := pl3.Copies(f.Task)
			if len(cs) != 1 || cs[0] != f {
				t.Fatalf("byStart=%v: rollback disturbed frozen task %d", byStart, f.Task)
			}
		}
		for _, m := range movable {
			if pl3.Scheduled(m.Task) {
				t.Fatalf("byStart=%v: rollback left movable task %d placed", byStart, m.Task)
			}
		}
	}
}

func TestEFTFlooredAtZeroMatchesEFTOn(t *testing.T) {
	in := replanInstance(t, 4, 30, 3)
	pl := NewPlan(in)
	order := SortByRankDesc(RankUpward(in))
	for _, task := range order {
		for p := 0; p < in.P(); p++ {
			s0, f0 := pl.EFTOn(task, p, true)
			s1, f1 := EFTFloored(pl, task, p, 0, true)
			if s0 != s1 || f0 != f1 {
				t.Fatalf("task %d proc %d: floored (%x,%x) != EFTOn (%x,%x)", task, p, s1, f1, s0, f0)
			}
		}
		p, s, _ := pl.BestEFT(task, true)
		pl.Place(task, p, s)
	}
}
