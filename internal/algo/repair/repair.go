// Package repair implements fail-stop schedule repair: given a static
// schedule and a processor that dies at a known time, it rebuilds a valid
// schedule in which every surviving placement is preserved and all lost
// work is rescheduled onto the remaining processors. This is the static
// counterpart of dynamic rescheduling: the repaired schedule can be
// handed back to the same runtime that executed the original.
package repair

import (
	"fmt"
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// Failure describes a fail-stop event.
type Failure struct {
	// Proc is the processor that stops executing.
	Proc int
	// Time is the instant of the failure. Copies on Proc that finish at
	// or before Time survive; every other copy on Proc is lost. Copies on
	// other processors are never lost (they may still be re-timed only if
	// their inputs came from lost copies — see Repair).
	Time float64
}

// Repair reschedules the schedule around the failure:
//
//   - surviving copies keep their processor and start time when all their
//     inputs still arrive in time, and are re-placed as early as possible
//     otherwise (they can only need to move later, never earlier);
//   - lost copies are dropped; lost primaries are rescheduled on the
//     remaining processors with insertion-based best-EFT in upward-rank
//     order;
//   - nothing new is ever placed on the failed processor: its timeline is
//     blocked from the failure instant.
//
// The result validates under the standard validator and its algorithm
// name is tagged "+repair".
func Repair(s *sched.Schedule, f Failure) (*sched.Schedule, error) {
	in := s.Instance()
	if f.Proc < 0 || f.Proc >= in.P() {
		return nil, fmt.Errorf("repair: processor %d out of range", f.Proc)
	}
	if in.P() < 2 {
		return nil, fmt.Errorf("repair: cannot repair on a single-processor system")
	}
	if f.Time < 0 {
		return nil, fmt.Errorf("repair: negative failure time %g", f.Time)
	}

	survives := func(a sched.Assignment) bool {
		return a.Proc != f.Proc || a.Finish <= f.Time+1e-9
	}

	pl := sched.NewPlan(in)
	pl.BlockProc(f.Proc, f.Time)

	// Re-place in the original global start order so surviving
	// prerequisites exist before their dependents, with lost tasks
	// interleaved by upward rank afterwards. Strategy: process tasks in a
	// precedence-safe order; keep a surviving primary on its processor at
	// the earliest feasible start ≥ its data-ready time (equal to the
	// original start when its inputs are intact); reschedule lost
	// primaries by best EFT. Surviving duplicates are re-added only if
	// they still fit where they were.
	rank := sched.RankUpward(in)
	order := algo.OrderDescPrecedence(in.G, rank)
	var lostDups []sched.Assignment
	for _, t := range order {
		prim := s.Primary(t)
		if survives(prim) {
			// Inputs may have moved later; keep the processor, move the
			// start if forced.
			start := pl.FindSlot(prim.Proc, math.Max(pl.DataReady(t, prim.Proc), prim.Start), in.Cost(t, prim.Proc), true)
			if math.IsInf(start, 1) {
				// The surviving proc is the failed one and the re-timed
				// slot no longer fits before the failure: the copy is
				// effectively lost after all.
				p, st, _ := pl.BestEFT(t, true)
				if math.IsInf(st, 1) {
					return nil, fmt.Errorf("repair: no feasible processor for task %d", t)
				}
				pl.Place(t, p, st)
			} else {
				pl.Place(t, prim.Proc, start)
			}
		} else {
			p, st, _ := pl.BestEFT(t, true)
			if math.IsInf(st, 1) {
				return nil, fmt.Errorf("repair: no feasible processor for task %d", t)
			}
			pl.Place(t, p, st)
		}
		// Surviving duplicates of t are re-added opportunistically: they
		// can only help later consumers.
		for _, c := range s.Copies(t) {
			if c.Dup && survives(c) {
				start := pl.FindSlot(c.Proc, math.Max(pl.DataReady(t, c.Proc), c.Start), in.Cost(t, c.Proc), true)
				if !math.IsInf(start, 1) {
					pl.PlaceDup(t, c.Proc, start)
				} else {
					lostDups = append(lostDups, c)
				}
			}
		}
	}
	_ = lostDups // dropped duplicates need no replacement: primaries carry correctness
	return pl.Finalize(s.Algorithm() + "+repair"), nil
}

// Impact summarizes what a failure costs: the repaired makespan versus
// the original, and how many task copies had to move or be recomputed.
type Impact struct {
	Original, Repaired float64
	// Lost counts primary copies destroyed by the failure; Moved counts
	// surviving primaries whose start time changed during repair.
	Lost, Moved int
}

// Assess repairs the schedule and reports the impact.
func Assess(s *sched.Schedule, f Failure) (*sched.Schedule, Impact, error) {
	r, err := Repair(s, f)
	if err != nil {
		return nil, Impact{}, err
	}
	imp := Impact{Original: s.Makespan(), Repaired: r.Makespan()}
	in := s.Instance()
	for i := 0; i < in.N(); i++ {
		before := s.Primary(dag.TaskID(i))
		after := r.Primary(dag.TaskID(i))
		if before.Proc == f.Proc && before.Finish > f.Time+1e-9 {
			imp.Lost++
		} else if before.Proc != after.Proc || math.Abs(before.Start-after.Start) > 1e-9 {
			imp.Moved++
		}
	}
	return r, imp, nil
}
