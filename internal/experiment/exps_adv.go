package experiment

import (
	"context"
	"fmt"

	"dagsched/internal/adversary"
	"dagsched/internal/algo"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/core"
)

// advPair is one attacker/victim matchup of the adversarial search.
type advPair struct {
	attacker, victim algo.Algorithm
}

// advPairs is the E22 lineup: each row searches for an instance where
// the attacker beats the victim by as much as possible.
func advPairs(quick bool) []advPair {
	pairs := []advPair{
		{core.New(), listsched.HEFT{}},
		{listsched.HEFT{}, listsched.CPOP{}},
		{listsched.HEFT{}, listsched.HLFET{}},
		{listsched.HEFT{}, listsched.ETF{}},
		{core.New(), listsched.CPOP{}},
		{listsched.HEFT{}, listsched.MCP{}},
	}
	if quick {
		return pairs[:3]
	}
	return pairs
}

// advBase is the shared base genome of E22: a mid-size heterogeneous
// instance with enough communication for insertion and rank choices to
// matter.
func advBase() adversary.Spec {
	return adversary.Spec{N: 30, Procs: 4, CCR: 2, Beta: 1, BaseSeed: 22}
}

// E22 — adversarial worst-case search: for each attacker/victim pair,
// hill-climb the instance space (per-task and per-edge cost
// multipliers) maximizing the victim/attacker makespan ratio. "base" is
// the ratio on the unperturbed random instance, "found" the ratio on
// the adversarial one; "gain" is their quotient — how much of the gap
// random testing misses.
func E22() Experiment {
	return Experiment{ID: "E22", Title: "Adversarial instance search: worst-case attacker/victim ratios", Run: func(cfg Config) ([]*Table, error) {
		iters := 400
		if cfg.Quick {
			iters = 40
		}
		t := &Table{ID: "E22", Title: "Worst-case makespan ratios found by instance-space hill climbing",
			Columns: []string{"attacker/victim", "base ratio", "found ratio", "gain", "evals"}}
		for i, p := range advPairs(cfg.Quick) {
			res, err := adversary.Search(context.Background(), advBase(), adversary.Config{
				Attacker: p.attacker,
				Victim:   p.victim,
				Method:   "hc",
				Iters:    iters,
				Seed:     cfg.Seed + 2200 + int64(i),
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s/%s", p.attacker.Name(), p.victim.Name()),
				fmt.Sprintf("%.3f", res.BaseRatio),
				fmt.Sprintf("%.3f", res.Ratio),
				fmt.Sprintf("%.3f", res.Ratio/res.BaseRatio),
				fmt.Sprintf("%d", res.Evals),
			})
		}
		t.Notes = fmt.Sprintf("Hill climbing over task/edge cost multipliers, %d iterations per pair (base spec: n=%d, P=%d, CCR=%g, β=%g).",
			iters, advBase().N, advBase().Procs, advBase().CCR, advBase().Beta)
		return []*Table{t}, nil
	}}
}

// e23Grid picks the component grid to ablate: the full factorial grid,
// or in quick mode the four baseline settings plus the single-component
// neighbors of HEFT.
func e23Grid(quick bool) []listsched.Param {
	if !quick {
		return listsched.Grid()
	}
	heft := listsched.HEFTParam()
	noIns := heft
	noIns.Insertion = false
	est := heft
	est.Select = listsched.SelectEST
	sl := heft
	sl.Priority = listsched.PrioStaticLevel
	dup := heft
	dup.Duplication = true
	return []listsched.Param{
		heft, listsched.CPOPParam(), listsched.HLFETParam(), listsched.ETFParam(),
		noIns, est, sl, dup,
	}
}

// E23 — component ablation over the parameterized list scheduler: mean
// SLR of every grid point on one random-DAG batch, with the difference
// to the HEFT component setting. This decomposes the HEFT-vs-rest gap
// into its priority/order/selection/insertion/duplication components
// (arXiv:2403.07112 methodology).
func E23() Experiment {
	return Experiment{ID: "E23", Title: "Component ablation of the parameterized list scheduler", Run: func(cfg Config) ([]*Table, error) {
		grid := e23Grid(cfg.Quick)
		algs := make([]algo.Algorithm, len(grid))
		heftIdx := -1
		for i, pm := range grid {
			algs[i] = pm
			if pm == listsched.HEFTParam() {
				heftIdx = i
			}
		}
		reps := cfg.reps(25)
		accs, err := meanOver(algs, reps, cfg.Seed+2300, randGen(randParams{n: 50, procs: 4}), slr, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t := &Table{ID: "E23", Title: "Mean SLR per component setting (n=50, P=4, CCR=1, β=1)",
			Columns: []string{"setting", "mean SLR", "Δ vs HEFT"}}
		var heftMean float64
		if heftIdx >= 0 {
			heftMean = accs[heftIdx].Mean()
		}
		for i, pm := range grid {
			t.Rows = append(t.Rows, []string{
				pm.String(),
				fmt.Sprintf("%.3f", accs[i].Mean()),
				fmt.Sprintf("%+.3f", accs[i].Mean()-heftMean),
			})
		}
		t.Notes = fmt.Sprintf("Mean SLR over %d random DAGs; Δ is relative to the HEFT component setting %s (negative = better than HEFT).",
			reps, listsched.HEFTParam())
		return []*Table{t}, nil
	}}
}
