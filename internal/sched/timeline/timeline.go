// Package timeline implements the gap index behind the fast scheduling
// kernel: a per-processor balanced-tree index over the idle gaps of a
// partial schedule that answers insertion-policy earliest-fit queries in
// O(log k) for k placed assignments, replacing the O(k) slot scan of the
// naive implementation.
//
// The index reproduces the reference linear-scan semantics bit for bit.
// A gap is the idle interval [start, end) between the running maximum
// finish time of all earlier assignments and the start of the next one
// (plus a leading gap from 0 and an unbounded tail gap); an interval of
// length dur fits a gap when max(ready, gap.start) + dur <= gap.end + eps,
// exactly the acceptance test of the reference scan, evaluated with the
// same floating-point expression. Occupying a slot splits one gap into a
// left and a right remainder; the remainders are kept even when they are
// empty or microscopically negative (epsilon-dust fits), because the
// reference scan sees those boundaries too.
//
// The index only supports placements that land inside a single idle gap —
// the invariant every FindSlot-driven scheduler maintains. A placement
// that straddles occupied intervals permanently degrades the index
// (OK reports false) and the caller must fall back to the linear scan;
// schedule correctness never depends on the index.
package timeline

import "math"

// node is one idle gap, a treap node keyed by (start, end) and augmented
// with the maximum gap length in its subtree. gen implements structural
// sharing: a node may be mutated in place only by the index whose
// generation matches; anyone else copies it first (see GapIndex.mut).
type node struct {
	start, end  float64
	prio        uint64
	left, right *node
	maxLen      float64
	gen         uint32
}

func (n *node) recompute() {
	n.maxLen = n.end - n.start
	if n.left != nil && n.left.maxLen > n.maxLen {
		n.maxLen = n.left.maxLen
	}
	if n.right != nil && n.right.maxLen > n.maxLen {
		n.maxLen = n.right.maxLen
	}
}

func keyLess(s1, e1, s2, e2 float64) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return e1 < e2
}

// GapIndex indexes the idle gaps of one processor's timeline.
//
// Indexes support O(1) copy-on-write snapshots (Snapshot): every node
// carries the generation of the index that created it, and an index whose
// generation is newer copies a node before touching it. The invariant is
// that all nodes reachable from an index's root have generation <= the
// index's own, with equality exactly for the nodes it may mutate in
// place; Snapshot returns a new index at generation+1, so it owns nothing
// and copies each path it first writes to, while the parent keeps
// mutating its own nodes in place at the old cost.
type GapIndex struct {
	root *node
	ctr  uint64 // deterministic priority stream
	eps  float64
	ok   bool
	gen  uint32
	// free chains recycled nodes (linked through left). Only nodes this
	// index owns (gen match) are recycled, so handing one out again is
	// exactly as safe as the in-place mutation mut already performs on
	// them; see recycle. Snapshots and clones start with an empty list.
	free *node
}

// New returns an index over an empty timeline: one gap [0, +Inf). eps is
// the slot-fit tolerance of the reference scan (sched.slotEps).
func New(eps float64) *GapIndex {
	gi := &GapIndex{eps: eps, ok: true}
	root := &node{start: 0, end: math.Inf(1), prio: gi.nextPrio()}
	root.recompute()
	gi.root = root
	return gi
}

// nextPrio returns the next deterministic treap priority (splitmix64).
func (gi *GapIndex) nextPrio() uint64 {
	gi.ctr += 0x9e3779b97f4a7c15
	z := gi.ctr
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// OK reports whether the index still mirrors the timeline. It turns false
// permanently after an Occupy that did not land inside a single idle gap;
// the caller must then answer queries by scanning the timeline directly.
func (gi *GapIndex) OK() bool { return gi.ok }

// EarliestFit returns the reference-scan earliest start >= ready at which
// an interval of length dur fits, and whether the index could answer
// (false once degraded).
func (gi *GapIndex) EarliestFit(ready, dur float64) (float64, bool) {
	if !gi.ok {
		return 0, false
	}
	// The gap holding (or last preceding) ready: the rightmost gap with
	// start <= ready. If any earlier gap fits, this one fits with the same
	// resulting start (gap ends are non-decreasing), so checking it alone
	// preserves the first-fit answer.
	if g := pred(gi.root, ready); g != nil {
		if s := math.Max(ready, g.start); s+dur <= g.end+gi.eps {
			return s, true
		}
	}
	// Otherwise the leftmost gap strictly after ready that is long enough.
	if g := firstFit(gi.root, ready, dur, gi.eps); g != nil {
		return g.start, true
	}
	// Unreachable: the unbounded tail gap accepts everything.
	return math.Inf(1), true
}

// pred returns the rightmost gap with start <= ready.
func pred(n *node, ready float64) *node {
	var best *node
	for n != nil {
		if n.start <= ready {
			best, n = n, n.right
		} else {
			n = n.left
		}
	}
	return best
}

// firstFit returns the leftmost gap with start > ready satisfying the
// exact fit test start + dur <= end + eps. Subtrees are pruned with a
// 2*eps length margin so the approximate max-length bound can never
// exclude a gap the exact test would accept.
func firstFit(n *node, ready, dur, eps float64) *node {
	if n == nil || n.maxLen < dur-2*eps {
		return nil
	}
	if n.start > ready {
		if g := firstFit(n.left, ready, dur, eps); g != nil {
			return g
		}
		if n.start+dur <= n.end+eps {
			return n
		}
	}
	return firstFit(n.right, ready, dur, eps)
}

// Occupy removes [start, finish] from the gap that contains it, splitting
// the gap into its left and right remainders. It returns false — and
// degrades the index permanently — when the interval does not lie within
// a single idle gap.
func (gi *GapIndex) Occupy(start, finish float64) bool {
	l := gi.OccupyLogged(start, finish)
	return l.WasOK && !l.Degraded
}

// OccupyLog records everything needed to reverse one OccupyLogged call:
// the idle gap that was split, the occupied interval, and the priority
// counter before the call. It is a plain value so journaling allocates
// nothing.
type OccupyLog struct {
	// GapStart, GapEnd bound the idle gap the occupy split (meaningful
	// only when WasOK and not Degraded).
	GapStart, GapEnd float64
	// Start, Finish are the occupied interval.
	Start, Finish float64
	// Ctr is the deterministic priority counter before the occupy;
	// Revert restores it so the priority stream is independent of how
	// many speculative occupies were rolled back.
	Ctr uint64
	// WasOK reports whether the index was intact before the occupy.
	WasOK bool
	// Degraded reports whether this occupy itself degraded the index.
	Degraded bool
}

// OccupyLogged is Occupy returning a journal record that Revert can undo
// exactly: after Revert the index holds the identical gap set and priority
// counter it had before the call (tree shape may differ; queries never
// depend on it). Records must be reverted in LIFO order.
func (gi *GapIndex) OccupyLogged(start, finish float64) OccupyLog {
	l := OccupyLog{Start: start, Finish: finish, Ctr: gi.ctr, WasOK: gi.ok}
	if !gi.ok {
		return l
	}
	g := pred(gi.root, start)
	if g == nil || finish > g.end+gi.eps {
		gi.ok = false
		gi.root = nil
		l.Degraded = true
		return l
	}
	gs, ge := g.start, g.end
	l.GapStart, l.GapEnd = gs, ge
	gi.root = gi.del(gi.root, gs, ge)
	gi.root = gi.insertGap(gi.root, gs, start)
	gi.root = gi.insertGap(gi.root, finish, ge)
	return l
}

// Revert undoes the most recent un-reverted OccupyLogged call: the two
// remainder gaps are deleted, the original gap reinstated, and the
// priority counter restored. A record whose occupy found (or left) the
// index degraded reverts to nothing — degradation is permanent by design
// and schedule correctness never depends on the index.
func (gi *GapIndex) Revert(l OccupyLog) {
	if !gi.ok || !l.WasOK || l.Degraded {
		return
	}
	gi.root = gi.del(gi.root, l.GapStart, l.Start)
	gi.root = gi.del(gi.root, l.Finish, l.GapEnd)
	gi.root = gi.insertGap(gi.root, l.GapStart, l.GapEnd)
	gi.ctr = l.Ctr
}

// mut returns a node this index may mutate in place: n itself when the
// index created it, a same-generation copy otherwise. On an index that
// never snapshotted this is a branch-predicted no-op, so the unshared
// fast path allocates exactly as much as a plain mutable treap.
func (gi *GapIndex) mut(n *node) *node {
	if n.gen == gi.gen {
		return n
	}
	c := *n
	c.gen = gi.gen
	return &c
}

func (gi *GapIndex) insertGap(root *node, s, e float64) *node {
	x := gi.free
	if x != nil {
		gi.free = x.left
		*x = node{start: s, end: e, prio: gi.nextPrio(), gen: gi.gen}
	} else {
		x = &node{start: s, end: e, prio: gi.nextPrio(), gen: gi.gen}
	}
	return gi.ins(root, x)
}

// recycle returns an unlinked node to the free list. Only nodes the index
// owns are eligible: a shared node (older generation) may still be read
// through a snapshot's root, while an owned node that was just unlinked is
// unreachable from every snapshot that is still valid under the
// freeze-while-speculating contract (the same contract that lets mut
// rewrite owned nodes in place).
func (gi *GapIndex) recycle(n *node) {
	if n.gen == gi.gen {
		n.left = gi.free
		n.right = nil
		gi.free = n
	}
}

func (gi *GapIndex) ins(n, x *node) *node {
	if n == nil {
		x.recompute()
		return x
	}
	if x.prio > n.prio {
		x.left, x.right = gi.split(n, x.start, x.end)
		x.recompute()
		return x
	}
	n = gi.mut(n)
	if keyLess(x.start, x.end, n.start, n.end) {
		n.left = gi.ins(n.left, x)
	} else {
		n.right = gi.ins(n.right, x)
	}
	n.recompute()
	return n
}

// split partitions the subtree into keys < (s, e) and keys >= (s, e).
func (gi *GapIndex) split(n *node, s, e float64) (l, r *node) {
	if n == nil {
		return nil, nil
	}
	n = gi.mut(n)
	if keyLess(n.start, n.end, s, e) {
		var mid *node
		mid, r = gi.split(n.right, s, e)
		n.right = mid
		n.recompute()
		return n, r
	}
	var mid *node
	l, mid = gi.split(n.left, s, e)
	n.left = mid
	n.recompute()
	return l, n
}

// merge joins two subtrees where every key in l precedes every key in r.
func (gi *GapIndex) merge(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio > r.prio {
		l = gi.mut(l)
		l.right = gi.merge(l.right, r)
		l.recompute()
		return l
	}
	r = gi.mut(r)
	r.left = gi.merge(l, r.left)
	r.recompute()
	return r
}

// del removes the gap with the exact key (s, e); the gap is known to
// exist because Occupy found it by predecessor search.
func (gi *GapIndex) del(n *node, s, e float64) *node {
	if n == nil {
		return nil
	}
	if s == n.start && e == n.end {
		m := gi.merge(n.left, n.right)
		gi.recycle(n)
		return m
	}
	n = gi.mut(n)
	if keyLess(s, e, n.start, n.end) {
		n.left = gi.del(n.left, s, e)
	} else {
		n.right = gi.del(n.right, s, e)
	}
	n.recompute()
	return n
}

// Snapshot returns an O(1) copy-on-write snapshot: the snapshot shares
// the parent's tree and copies each path it first writes to, so mutating
// the snapshot never disturbs the parent. The reverse does not hold — the
// parent keeps mutating its own nodes in place — so a snapshot answers
// correctly only until the parent's next mutation. That is exactly the
// speculative-transaction contract (sched.Txn): the base plan is frozen
// while transactions are open, and every snapshot taken from it is dead
// by the time the winning transaction commits and the base moves on.
func (gi *GapIndex) Snapshot() *GapIndex {
	return &GapIndex{root: gi.root, ctr: gi.ctr, eps: gi.eps, ok: gi.ok, gen: gi.gen + 1}
}

// Clone returns an independent deep copy of the index; unlike Snapshot it
// stays valid under arbitrary interleaved mutation of both copies.
func (gi *GapIndex) Clone() *GapIndex {
	cp := &GapIndex{ctr: gi.ctr, eps: gi.eps, ok: gi.ok, gen: gi.gen}
	cp.root = cloneNode(gi.root, gi.gen)
	return cp
}

func cloneNode(n *node, gen uint32) *node {
	if n == nil {
		return nil
	}
	c := *n
	c.gen = gen
	c.left = cloneNode(n.left, gen)
	c.right = cloneNode(n.right, gen)
	return &c
}

// Gap is one idle interval, exported for tests and diagnostics.
type Gap struct{ Start, End float64 }

// Gaps returns the idle gaps in key order (nil once degraded).
func (gi *GapIndex) Gaps() []Gap {
	if !gi.ok {
		return nil
	}
	var out []Gap
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, Gap{Start: n.start, End: n.end})
		walk(n.right)
	}
	walk(gi.root)
	return out
}

// Len returns the number of indexed gaps (0 once degraded).
func (gi *GapIndex) Len() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.left) + count(n.right)
	}
	return count(gi.root)
}
