package testfix_test

import (
	"math"
	"testing"

	"dagsched/internal/algo/listsched"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

const refEps = 1e-6

// TestTopcuogluReferenceValues pins the fixture to the documented
// reference numbers of the HEFT paper (Topcuoglu, Hariri, Wu; TPDS 2002,
// Fig. 1 / Table 1): the upward rank of the entry task and the makespans
// HEFT and CPOP achieve on the example.
func TestTopcuogluReferenceValues(t *testing.T) {
	in := testfix.Topcuoglu()
	if got := in.N(); got != 10 {
		t.Fatalf("fixture has %d tasks, want 10", got)
	}
	if got := in.P(); got != 3 {
		t.Fatalf("fixture has %d processors, want 3", got)
	}

	ranks := sched.RankUpward(in)
	if math.Abs(ranks[0]-108) > refEps {
		t.Errorf("rank_u(n1) = %v, want 108", ranks[0])
	}

	heft, err := listsched.HEFT{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := heft.Validate(); err != nil {
		t.Fatalf("HEFT schedule invalid: %v", err)
	}
	if math.Abs(heft.Makespan()-80) > refEps {
		t.Errorf("HEFT makespan = %v, want 80", heft.Makespan())
	}

	cpop, err := listsched.CPOP{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpop.Validate(); err != nil {
		t.Fatalf("CPOP schedule invalid: %v", err)
	}
	if math.Abs(cpop.Makespan()-86) > refEps {
		t.Errorf("CPOP makespan = %v, want 86", cpop.Makespan())
	}
}

// TestBatteryDeterministic asserts the random battery replays identically
// for a fixed seed — the property the golden-equivalence fixtures rely on.
func TestBatteryDeterministic(t *testing.T) {
	capture := func() []string {
		var out []string
		testfix.Battery(testfix.BatteryConfig{Trials: 5, Seed: 42}, func(trial int, in *sched.Instance) {
			out = append(out, in.String())
		})
		return out
	}
	a, b := capture(), capture()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("battery produced %d and %d instances, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between replays: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestGoldenInstancesStable asserts the golden battery itself is
// deterministic and its names are unique — otherwise the golden file
// would silently mix records.
func TestGoldenInstancesStable(t *testing.T) {
	one, two := testfix.GoldenInstances(), testfix.GoldenInstances()
	if len(one) != len(two) || len(one) == 0 {
		t.Fatalf("golden battery sizes differ: %d vs %d", len(one), len(two))
	}
	seen := map[string]bool{}
	for i := range one {
		if one[i].Name != two[i].Name {
			t.Fatalf("instance %d name differs between replays", i)
		}
		if seen[one[i].Name] {
			t.Fatalf("duplicate golden instance name %q", one[i].Name)
		}
		seen[one[i].Name] = true
		if one[i].In.String() != two[i].In.String() {
			t.Fatalf("instance %q not deterministic", one[i].Name)
		}
	}
}

// TestGoldenFileParses asserts the committed golden records load and
// cover the full battery.
func TestGoldenFileParses(t *testing.T) {
	gf, err := testfix.Golden()
	if err != nil {
		t.Fatal(err)
	}
	for _, ni := range testfix.GoldenInstances() {
		recs, ok := gf[ni.Name]
		if !ok {
			t.Errorf("golden file missing instance %q", ni.Name)
			continue
		}
		if len(recs) == 0 {
			t.Errorf("golden file has no records for %q", ni.Name)
		}
	}
}
