package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// Cache replication. Sharding (PR 8) gave every cache key one owner;
// this layer gives it R successor replicas so an owner's death no
// longer cold-starts its keyspace. Three mechanisms, all asynchronous
// and all best-effort (the cache is a cache — losing a replica costs a
// recompute, never correctness):
//
//   - push on compute: after a node computes and caches a result, it
//     PUTs the entry to the other holders of the key (the first R+1
//     nodes of the key's ring successor list). Whoever computed —
//     owner, or a non-owner that fell back when the owner was down —
//     the copies land at the nodes lookups will consult.
//   - hinted handoff: a push that fails (peer down, circuit open) is
//     queued with the target peer as the hint; a bounded retrier
//     re-delivers once the failure detector judges the peer alive
//     again, dropping entries after handoffMaxAttempts.
//   - anti-entropy sweep: when a peer joins or rises from the dead,
//     every node walks its own cache (bounded by sweepMaxEntries,
//     hottest first) and hands the rejoining node the entries it
//     should hold — so a rejoined node's keyspace is warm again within
//     one sweep instead of one cache-miss at a time.
const (
	// handoffMaxQueue bounds the hinted-handoff queue; beyond it the
	// oldest hints are dropped (counted in /metrics).
	handoffMaxQueue = 1024
	// handoffMaxAttempts bounds re-delivery tries per hint.
	handoffMaxAttempts = 8
	// sweepMaxEntries bounds one anti-entropy sweep, hottest entries
	// first (LRU order), so a giant cache cannot stall the ring.
	sweepMaxEntries = 256
)

// handoffEntry is one undelivered replica write hinted to a peer.
type handoffEntry struct {
	peer     string
	key      string
	resp     *ScheduleResponse
	attempts int
}

// replicator owns replica pushes, the hinted-handoff queue and the
// anti-entropy sweep of one Server.
type replicator struct {
	s *Server

	mu    sync.Mutex
	queue []handoffEntry

	startOnce sync.Once
}

func newReplicator(s *Server) *replicator {
	return &replicator{s: s}
}

// start launches the handoff retrier (idempotent; called when the
// membership loop starts — replication is meaningless standalone).
func (r *replicator) start() {
	r.startOnce.Do(func() {
		r.s.workers.Add(1)
		go r.loop()
	})
}

func (r *replicator) loop() {
	defer r.s.workers.Done()
	t := time.NewTicker(r.s.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.s.quit:
			return
		case <-t.C:
			r.retryHandoffs()
		}
	}
}

// replicaHolders lists the nodes that should hold key under sh's ring:
// the owner plus the next r distinct successors. With replication off
// (r == 0) that is just the owner — exactly the PR 8 probe target.
func replicaHolders(sh *shardState, key string, r int) []string {
	succ := sh.ring.successors(key)
	if len(succ) > r+1 {
		succ = succ[:r+1]
	}
	return succ
}

// replicate pushes a freshly computed entry to the other holders of
// its key. Fire-and-forget: the computing request never waits on
// replication.
func (s *Server) replicate(key string, resp *ScheduleResponse) {
	if s.opts.Replication <= 0 {
		return
	}
	sh := s.shard.Load()
	if sh == nil {
		return
	}
	for _, peer := range replicaHolders(sh, key, s.opts.Replication) {
		if peer == sh.self {
			continue
		}
		go s.repl.pushOne(sh, peer, key, resp)
	}
}

// pushOne PUTs one entry to one peer, falling back to the hinted-
// handoff queue on failure. A peer with an open forward circuit is not
// even dialed — the hint waits for the detector's verdict instead.
func (r *replicator) pushOne(sh *shardState, peer, key string, resp *ScheduleResponse) {
	if _, open := sh.brk.allow(peer, forwardBreakerThreshold); open {
		r.s.met.ObserveReplicaPush(false)
		r.enqueue(peer, key, resp)
		return
	}
	err := r.put(sh, peer, key, resp)
	sh.brk.observe(peer, forwardBreakerThreshold, forwardBreakerCooldown, err)
	r.s.met.ObserveReplicaPush(err == nil)
	if err != nil {
		r.enqueue(peer, key, resp)
	}
}

// put performs one replica PUT bounded by the probe timeout.
func (r *replicator) put(sh *shardState, peer, key string, resp *ScheduleResponse) error {
	body, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), sh.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/cache/"+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := sh.client.Do(req)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	_, _ = io.Copy(io.Discard, hr.Body)
	if hr.StatusCode != http.StatusOK && hr.StatusCode != http.StatusNoContent {
		return &StatusError{Method: http.MethodPut, Path: "/v1/cache/", Status: hr.StatusCode}
	}
	return nil
}

// enqueue parks one undelivered write on the handoff queue, dropping
// the oldest hint when full.
func (r *replicator) enqueue(peer, key string, resp *ScheduleResponse) {
	r.mu.Lock()
	if len(r.queue) >= handoffMaxQueue {
		r.queue = r.queue[1:]
		r.s.met.ObserveHandoff(handoffDropped)
	}
	r.queue = append(r.queue, handoffEntry{peer: peer, key: key, resp: resp})
	r.mu.Unlock()
	r.s.met.ObserveHandoff(handoffQueued)
}

// retryHandoffs re-delivers hints whose peer the failure detector
// currently judges alive. Hints to still-dead peers wait (their
// attempt budget is only spent on real tries); hints that exhaust
// handoffMaxAttempts are dropped.
func (r *replicator) retryHandoffs() {
	sh := r.s.shard.Load()
	r.mu.Lock()
	pending := r.queue
	r.queue = nil
	r.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	var keep []handoffEntry
	for _, h := range pending {
		if sh == nil || !r.s.member.isAlive(h.peer) {
			keep = append(keep, h) // wait for the detector, free of charge
			continue
		}
		err := r.put(sh, h.peer, h.key, h.resp)
		r.s.met.ObserveReplicaPush(err == nil)
		if err == nil {
			r.s.met.ObserveHandoff(handoffDelivered)
			continue
		}
		h.attempts++
		if h.attempts >= handoffMaxAttempts {
			r.s.met.ObserveHandoff(handoffDropped)
			continue
		}
		keep = append(keep, h)
	}
	if len(keep) > 0 {
		r.mu.Lock()
		r.queue = append(keep, r.queue...)
		r.mu.Unlock()
	}
}

// sweepFor reconciles a joined or rejoined peer: walk this node's
// cache (hottest first, bounded) and queue every entry the peer should
// hold under the current ring. Delivery rides the handoff retrier, so
// a sweep toward a peer that dies again simply waits.
func (r *replicator) sweepFor(peer string) {
	if r.s.opts.Replication <= 0 {
		return
	}
	sh := r.s.shard.Load()
	if sh == nil || peer == sh.self {
		return
	}
	entries := r.s.cache.Snapshot(sweepMaxEntries)
	queued := 0
	for _, e := range entries {
		for _, holder := range replicaHolders(sh, e.key, r.s.opts.Replication) {
			if holder == peer {
				r.enqueue(peer, e.key, e.resp)
				queued++
				break
			}
		}
	}
	if queued > 0 {
		r.s.met.ObserveSweep(queued)
	}
}

// handoff hands this node's cache off before a graceful leave: every
// entry is queued to its owner under the post-leave ring (computed by
// the caller after the ring swap) and the queue is flushed bounded by
// ctx. Best-effort — a peer that is down just misses the parting gift.
func (r *replicator) handoffOnLeave(ctx context.Context, sh *shardState) {
	if sh == nil {
		return
	}
	for _, e := range r.s.cache.Snapshot(sweepMaxEntries) {
		if ctx.Err() != nil {
			return
		}
		owner := sh.ring.owner(e.key)
		if owner == "" || owner == sh.self {
			continue
		}
		err := r.put(sh, owner, e.key, e.resp)
		r.s.met.ObserveReplicaPush(err == nil)
	}
}
