// Package sim replays a static schedule as a discrete-event execution,
// independently re-deriving every start time from the schedule's
// placement decisions. With zero noise the replayed makespan equals the
// analytic makespan exactly (a strong cross-check of the scheduling
// machinery); with noise it measures the robustness of a static schedule
// against runtime execution-time variation; with a FaultPlan it measures
// how the schedule degrades when processors crash, links fail, and
// execution times drift.
//
// Replay semantics: task-copy order per processor and the data routing
// between copies are fixed at schedule time, as in a real static runtime.
// Each copy starts as soon as its processor is free and the data from its
// designated source copies has arrived; actual execution times are the
// estimates perturbed multiplicatively by the noise factor.
//
// Fault semantics: a copy running when its processor crashes is
// destroyed (restarted at recovery if the crash is transient, stranded if
// permanent); tasks whose every copy is destroyed strand their
// consumers too, except that a consumer falls back to any surviving
// completed copy of the predecessor. Data produced before a crash is
// assumed buffered at the receiver or in the network, so transfers
// survive their producer's later death.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
)

// Config controls a replay.
type Config struct {
	// Noise is the maximum relative execution-time perturbation: every
	// copy's actual duration is estimate × (1 + Noise×u) with u uniform in
	// [−1, 1). Zero replays estimates exactly. Must lie in [0, 1).
	Noise float64
	// Seed drives the perturbation; runs are deterministic per seed.
	Seed int64
	// Contention switches communication to the one-port model: every
	// processor has a single send port and a single receive port, and
	// inter-processor transfers serialize on both. A schedule computed
	// under the contention-free assumption degrades here; the contended
	// replay measures how optimistic its makespan was. Transfers are
	// issued in the consumers' scheduled-start order, each claiming the
	// earliest feasible window on its route.
	Contention bool
	// Model replays under an arbitrary communication model (overriding
	// Contention): transfer durations come from the model's idle costs
	// and transfers serialize on whatever resources the model contends.
	// Nil with Contention unset replays contention-free using the
	// schedule instance's idle costs.
	Model platform.CommModel
	// Faults injects the given fault plan during replay (nil injects
	// nothing). The plan's own Seed drives its jitter stream, so the
	// same instance and fault plan reproduce bit-identically regardless
	// of Noise/Seed.
	Faults *FaultPlan
}

// Report is the outcome of one replay.
type Report struct {
	// Makespan is the latest actual finish time of any primary copy (or,
	// under faults, of the surviving copy standing in for a destroyed
	// primary).
	Makespan float64
	// Start and Finish give actual times of every task's primary copy.
	// Under faults, a task whose primary was destroyed reports the
	// earliest-finishing surviving duplicate, and a stranded task (no
	// copy completed) reports +Inf for both.
	Start, Finish []float64
	// BusyTime is the total executing time per processor (including
	// duplicates and partial executions destroyed by crashes);
	// Utilization divides it by the makespan.
	BusyTime    []float64
	Utilization []float64
	// Stretch is the replayed makespan divided by the analytic one.
	Stretch float64
	// Transfers counts inter-processor data transfers; SendTime is the
	// total network time attributed to each source processor's transfers
	// (only meaningful under a contended model, where they serialize).
	Transfers int
	SendTime  []float64
	// Model is the kind of communication model the replay ran under.
	Model string
	// Faults is the degradation report, present iff Config.Faults was set.
	Faults *FaultReport
}

// Run replays the schedule under cfg. A schedule that references a
// processor index outside its platform (possible only for schedules
// rebuilt from external placements via sched.FromAssignments) yields an
// error wrapping ErrProcRange.
func Run(s *sched.Schedule, cfg Config) (Report, error) {
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return Report{}, fmt.Errorf("sim: noise %g out of [0,1)", cfg.Noise)
	}
	in := s.Instance()
	faults := cfg.Faults
	if err := faults.Validate(in.P()); err != nil {
		return Report{}, err
	}
	for _, a := range s.All() {
		if a.Proc < 0 || a.Proc >= in.P() {
			return Report{}, fmt.Errorf("sim: task %d placed on processor %d of a %d-processor platform: %w",
				a.Task, a.Proc, in.P(), ErrProcRange)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Collect all copies in global scheduled-start order. Every copy a
	// consumer reads from finishes (in the schedule) before the consumer
	// starts; zero-duration copies can share the consumer's start instant,
	// so equal starts break ties by topological order (sources first),
	// then by processor and timeline slot for determinism.
	type copyRef struct {
		a        sched.Assignment
		procSlot int // index within its processor's timeline
	}
	var copies []copyRef
	byTask := make([][]copyRef, in.N())
	for p := 0; p < in.P(); p++ {
		for k, a := range s.OnProc(p) {
			c := copyRef{a: a, procSlot: k}
			copies = append(copies, c)
			byTask[a.Task] = append(byTask[a.Task], c)
		}
	}
	topo := make([]int, in.N())
	for i, t := range in.G.TopoOrder() {
		topo[t] = i
	}
	sort.Slice(copies, func(x, y int) bool {
		cx, cy := copies[x], copies[y]
		if cx.a.Start != cy.a.Start {
			return cx.a.Start < cy.a.Start
		}
		if topo[cx.a.Task] != topo[cy.a.Task] {
			return topo[cx.a.Task] < topo[cy.a.Task]
		}
		if cx.a.Proc != cy.a.Proc {
			return cx.a.Proc < cy.a.Proc
		}
		return cx.procSlot < cy.procSlot
	})
	// Perturbed durations, drawn in deterministic copy order. Fault
	// jitter draws from its own stream so a fault plan replays
	// bit-identically under any noise settings.
	durs := make([]float64, len(copies))
	for i, c := range copies {
		d := c.a.Duration()
		if cfg.Noise > 0 {
			d *= 1 + cfg.Noise*(2*rng.Float64()-1)
		}
		durs[i] = d
	}
	if faults != nil && faults.Jitter > 0 {
		jrng := rand.New(rand.NewSource(faults.Seed))
		for i := range durs {
			durs[i] *= 1 + faults.Jitter*(2*jrng.Float64()-1)
		}
	}
	// Routing fixed at schedule time: for consumer copy c and predecessor
	// task m, the source is the copy of m with the earliest *scheduled*
	// arrival at c's processor (under the instance's own idle costs — the
	// view the scheduler routed with).
	route := func(c copyRef, m dag.TaskID, data float64) copyRef {
		best := byTask[m][0]
		bestT := math.Inf(1)
		for _, d := range byTask[m] {
			if t := d.a.Finish + in.CommCost(d.a.Proc, c.a.Proc, data); t < bestT {
				bestT, best = t, d
			}
		}
		return best
	}
	// The replay's communication model: cfg.Model, else one-port when
	// Contention is set, else the contention-free idle-cost replay.
	model := cfg.Model
	if model == nil && cfg.Contention {
		model, _ = platform.ModelByKind(platform.KindOnePort, in.Sys)
	}
	var network platform.CommState
	if model != nil {
		network = model.NewState()
	}
	commCost := in.CommCost
	modelKind := platform.KindContentionFree
	if model != nil {
		commCost = model.Cost
		modelKind = model.Kind()
	}
	// Actual finish per copy, keyed by (processor, timeline slot): the one
	// identity that stays unique when copies of the same task share a
	// start instant (zero-duration tasks).
	type key struct {
		proc     int
		procSlot int
	}
	actualFinish := make(map[key]float64, len(copies))
	procFree := make([]float64, in.P())
	busy := make([]float64, in.P())
	sendBusy := make([]float64, in.P())
	rep := Report{
		Start:  make([]float64, in.N()),
		Finish: make([]float64, in.N()),
		Model:  modelKind,
	}
	var (
		downs        [][]window
		frep         *FaultReport
		strandedCopy map[key]bool
		lostPrimary  []dag.TaskID
		// rescue holds, per task whose primary was destroyed, the
		// earliest-finishing duplicate that did complete.
		rescue map[dag.TaskID][2]float64
	)
	if faults != nil {
		downs = faults.downWindows(in.P())
		frep = &FaultReport{Nominal: s.Makespan()}
		strandedCopy = make(map[key]bool)
		rescue = make(map[dag.TaskID][2]float64)
	}
	strand := func(c copyRef) {
		strandedCopy[key{c.a.Proc, c.procSlot}] = true
		if !c.a.Dup {
			lostPrimary = append(lostPrimary, c.a.Task)
		}
	}
	// deliver computes the actual arrival of data sent from fromProc
	// (available at f) to toProc, applying link faults and claiming
	// network capacity under a contended model. +Inf means a permanent
	// link outage makes delivery impossible.
	deliver := func(fromProc, toProc int, f, data float64) float64 {
		if fromProc == toProc {
			return f
		}
		dur := commCost(fromProc, toProc, data)
		sendReady := f
		if faults != nil && len(faults.Links) > 0 {
			sendReady, dur = faults.adjustTransfer(fromProc, toProc, sendReady, dur)
			if math.IsInf(sendReady, 1) {
				return sendReady
			}
		}
		var arrival float64
		if network != nil && dur > 0 {
			xferStart := network.TransferStart(fromProc, toProc, sendReady, dur)
			network.Reserve(fromProc, toProc, xferStart, dur)
			arrival = xferStart + dur
			sendBusy[fromProc] += dur
		} else {
			arrival = sendReady + dur
		}
		rep.Transfers++
		return arrival
	}
	for i, c := range copies {
		ready := 0.0
		doomed := false
		for _, pe := range in.G.Pred(c.a.Task) {
			src := route(c, pe.To, pe.Data)
			srcKey := key{src.a.Proc, src.procSlot}
			f, ok := actualFinish[srcKey]
			var arrival float64
			switch {
			case ok:
				arrival = deliver(src.a.Proc, c.a.Proc, f, pe.Data)
			case strandedCopy[srcKey]:
				// The designated source was destroyed: fall back to the
				// surviving completed copy with the earliest actual
				// arrival, or strand the consumer if none exists.
				bestFrom, bestF := -1, 0.0
				arrival = math.Inf(1)
				for _, d := range byTask[pe.To] {
					df, dok := actualFinish[key{d.a.Proc, d.procSlot}]
					if !dok {
						continue
					}
					var arr float64
					if d.a.Proc == c.a.Proc {
						arr = df
					} else {
						dur := commCost(d.a.Proc, c.a.Proc, pe.Data)
						sendReady := df
						if len(faults.Links) > 0 {
							sendReady, dur = faults.adjustTransfer(d.a.Proc, c.a.Proc, sendReady, dur)
						}
						if network != nil && dur > 0 && !math.IsInf(sendReady, 1) {
							arr = network.TransferStart(d.a.Proc, c.a.Proc, sendReady, dur) + dur
						} else {
							arr = sendReady + dur
						}
					}
					if arr < arrival {
						arrival, bestFrom, bestF = arr, d.a.Proc, df
					}
				}
				if bestFrom >= 0 {
					arrival = deliver(bestFrom, c.a.Proc, bestF, pe.Data)
				}
			default:
				return Report{}, fmt.Errorf("sim: copy of task %d consumed before its source (task %d on P%d) ran",
					c.a.Task, src.a.Task, src.a.Proc)
			}
			if math.IsInf(arrival, 1) {
				doomed = true
				break
			}
			if arrival > ready {
				ready = arrival
			}
		}
		if doomed {
			strand(c)
			continue
		}
		start := math.Max(ready, procFree[c.a.Proc])
		finish := start + durs[i]
		if faults != nil {
			var killed int
			var wasted float64
			start, finish, killed, wasted = execute(downs[c.a.Proc], start, durs[i])
			frep.Killed += killed
			busy[c.a.Proc] += wasted
			if math.IsInf(finish, 1) {
				strand(c)
				continue
			}
			frep.Restarts += killed
		}
		procFree[c.a.Proc] = finish
		busy[c.a.Proc] += durs[i]
		actualFinish[key{c.a.Proc, c.procSlot}] = finish
		if !c.a.Dup {
			rep.Start[c.a.Task] = start
			rep.Finish[c.a.Task] = finish
			if finish > rep.Makespan {
				rep.Makespan = finish
			}
		} else if faults != nil {
			if r, ok := rescue[c.a.Task]; !ok || finish < r[1] {
				rescue[c.a.Task] = [2]float64{start, finish}
			}
		}
	}
	if faults != nil {
		for _, t := range lostPrimary {
			if r, ok := rescue[t]; ok {
				rep.Start[t], rep.Finish[t] = r[0], r[1]
				if r[1] > rep.Makespan {
					rep.Makespan = r[1]
				}
				continue
			}
			rep.Start[t], rep.Finish[t] = math.Inf(1), math.Inf(1)
			frep.Stranded = append(frep.Stranded, int(t))
		}
		sort.Ints(frep.Stranded)
		frep.Completed = in.N() - len(frep.Stranded)
		rep.Faults = frep
	}
	rep.BusyTime = busy
	rep.SendTime = sendBusy
	rep.Utilization = make([]float64, in.P())
	for p := range busy {
		if rep.Makespan > 0 {
			rep.Utilization[p] = busy[p] / rep.Makespan
		}
	}
	if s.Makespan() > 0 {
		rep.Stretch = rep.Makespan / s.Makespan()
	} else {
		rep.Stretch = 1
	}
	return rep, nil
}
