package sched

import (
	"fmt"
	"math"

	"dagsched/internal/dag"
)

// NewInstanceGrown builds the instance of a grown graph by extending a
// previous instance instead of recomputing from scratch: the cost rows
// and per-task statistics of existing tasks are reused, and the per-arc
// mean-communication tables are refilled by copying the previous value
// of every arc that already existed — only new tasks and new arcs pay
// for computation. The values are bit-identical to NewInstance's (copied
// values were produced by the same MeanCommData call on the same data),
// so grown and fresh instances are interchangeable everywhere; the
// streaming engine's per-flush instance construction depends on that.
//
// Requirements: g extends prev.G — existing tasks keep their ids and
// arcs (with unchanged data), adjacency stays sorted by neighbor id
// (both Builder.Build and Appendable.Seal guarantee this) — and w's
// first prev.N() rows are unchanged (they are not re-read). Grown
// instances chain: each call may consume spare capacity of prev's
// backing arrays, so grow linearly (prev must not be grown twice).
func NewInstanceGrown(prev *Instance, g *dag.Graph, w [][]float64) (*Instance, error) {
	if prev == nil {
		return nil, fmt.Errorf("sched: NewInstanceGrown with nil previous instance")
	}
	oldN, n, p := prev.N(), g.Len(), prev.P()
	if n < oldN {
		return nil, fmt.Errorf("sched: grown graph shrinks task count %d -> %d", oldN, n)
	}
	if len(w) != n {
		return nil, fmt.Errorf("sched: cost matrix has %d rows, want %d", len(w), n)
	}
	inst := &Instance{G: g, Sys: prev.Sys, comm: prev.comm}

	// New cost rows: validate, flatten onto the chained backing array.
	inst.wFlat = prev.wFlat
	inst.meanW = prev.meanW
	inst.sigmaW = prev.sigmaW
	inst.W = prev.W
	for i := oldN; i < n; i++ {
		row := w[i]
		if len(row) != p {
			return nil, fmt.Errorf("sched: cost row %d has %d cols, want %d", i, len(row), p)
		}
		var sum float64
		for q, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: W[%d][%d] = %g", ErrInvalidCost, i, q, v)
			}
			sum += v
		}
		base := len(inst.wFlat)
		inst.wFlat = append(inst.wFlat, row...)
		inst.W = append(inst.W, inst.wFlat[base:base+p:base+p])
		mean := sum / float64(p)
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		inst.meanW = append(inst.meanW, mean)
		inst.sigmaW = append(inst.sigmaW, math.Sqrt(varSum/float64(p)))
	}

	// Per-arc mean-communication tables: the CSR offsets shift as arcs
	// are added, so the tables are refilled — but an arc that existed in
	// prev copies its cached value. Both adjacency lists are sorted by
	// neighbor id, so a single merge walk matches old arcs to new.
	inst.meanCommSucc = make([]float64, g.NumEdges())
	inst.meanCommPred = make([]float64, g.NumEdges())
	fill := func(dst, src []float64, arcs func(*dag.Graph, dag.TaskID) []dag.Adj,
		start func(*dag.Graph, dag.TaskID) int) error {
		for i := 0; i < n; i++ {
			v := dag.TaskID(i)
			newArcs := arcs(g, v)
			base := start(g, v)
			var oldArcs []dag.Adj
			oldBase := 0
			if i < oldN {
				oldArcs = arcs(prev.G, v)
				oldBase = start(prev.G, v)
			}
			j := 0
			for k, a := range newArcs {
				for j < len(oldArcs) && oldArcs[j].To < a.To {
					j++
				}
				if j < len(oldArcs) && oldArcs[j].To == a.To {
					dst[base+k] = src[oldBase+j]
					j++
					continue
				}
				if a.Data < 0 || math.IsNaN(a.Data) || math.IsInf(a.Data, 0) {
					return fmt.Errorf("%w: edge at task %d data = %g", ErrInvalidCost, i, a.Data)
				}
				dst[base+k] = inst.MeanCommData(a.Data)
			}
		}
		return nil
	}
	succ := func(g *dag.Graph, v dag.TaskID) []dag.Adj { return g.Succ(v) }
	pred := func(g *dag.Graph, v dag.TaskID) []dag.Adj { return g.Pred(v) }
	if err := fill(inst.meanCommSucc, prev.meanCommSucc, succ, (*dag.Graph).SuccStart); err != nil {
		return nil, err
	}
	if err := fill(inst.meanCommPred, prev.meanCommPred, pred, (*dag.Graph).PredStart); err != nil {
		return nil, err
	}
	return inst, nil
}
