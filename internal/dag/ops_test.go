package dag

import (
	"math/rand"
	"testing"
)

func TestTransitiveReductionRemovesShortcuts(t *testing.T) {
	// 0 -> 1 -> 2 plus the shortcut 0 -> 2: the shortcut must go.
	b := NewBuilder("tr")
	t0 := b.AddTask("", 1)
	t1 := b.AddTask("", 1)
	t2 := b.AddTask("", 1)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t1, t2, 1)
	b.AddEdge(t0, t2, 9)
	g := b.MustBuild()
	r := g.TransitiveReduction()
	if r.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", r.NumEdges())
	}
	if _, ok := r.EdgeData(0, 2); ok {
		t.Fatal("shortcut 0->2 survived")
	}
	if d, ok := r.EdgeData(0, 1); !ok || d != 1 {
		t.Fatal("edge 0->1 lost or changed")
	}
}

func TestTransitiveReductionKeepsDiamonds(t *testing.T) {
	// A diamond has no redundant edges.
	b := NewBuilder("d")
	t0 := b.AddTask("", 1)
	t1 := b.AddTask("", 1)
	t2 := b.AddTask("", 1)
	t3 := b.AddTask("", 1)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t0, t2, 1)
	b.AddEdge(t1, t3, 1)
	b.AddEdge(t2, t3, 1)
	g := b.MustBuild()
	if r := g.TransitiveReduction(); r.NumEdges() != 4 {
		t.Fatalf("diamond lost edges: %d", r.NumEdges())
	}
}

// Property: reduction preserves reachability and never adds edges.
func TestTransitiveReductionPreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 2+rng.Intn(25), 0.3)
		r := g.TransitiveReduction()
		if r.NumEdges() > g.NumEdges() {
			t.Fatal("reduction added edges")
		}
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				a, b := TaskID(i), TaskID(j)
				if g.IsReachable(a, b) != r.IsReachable(a, b) {
					t.Fatalf("trial %d: reachability(%d,%d) changed", trial, i, j)
				}
			}
		}
		// Reducing twice is idempotent.
		if rr := r.TransitiveReduction(); rr.NumEdges() != r.NumEdges() {
			t.Fatal("reduction not idempotent")
		}
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder("stats")
	t0 := b.AddTask("", 2)
	t1 := b.AddTask("", 3)
	t2 := b.AddTask("", 1)
	t3 := b.AddTask("", 4)
	b.AddEdge(t0, t1, 1)
	b.AddEdge(t0, t2, 4)
	b.AddEdge(t1, t3, 2)
	b.AddEdge(t2, t3, 3)
	g := b.MustBuild()
	s := g.ComputeStats()
	if s.Tasks != 4 || s.Edges != 4 || s.Height != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxWidth != 2 {
		t.Fatalf("MaxWidth = %d", s.MaxWidth)
	}
	if s.MaxInDeg != 2 || s.MaxOutDeg != 2 {
		t.Fatalf("degrees = %d/%d", s.MaxInDeg, s.MaxOutDeg)
	}
	if s.TotalWeight != 10 || s.TotalData != 10 {
		t.Fatalf("totals = %g/%g", s.TotalWeight, s.TotalData)
	}
	if s.CPLength != 9 {
		t.Fatalf("CPLength = %g", s.CPLength)
	}
	if !almostEqual(s.Parallelism, 10.0/9) {
		t.Fatalf("Parallelism = %g", s.Parallelism)
	}
	if !almostEqual(s.CommToCompByUnit, 1) {
		t.Fatalf("CommToComp = %g", s.CommToCompByUnit)
	}
	if !almostEqual(s.Density, 4.0/6) {
		t.Fatalf("Density = %g", s.Density)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestComputeStatsSingleTask(t *testing.T) {
	b := NewBuilder("one")
	b.AddTask("", 5)
	s := b.MustBuild().ComputeStats()
	if s.Tasks != 1 || s.Height != 1 || s.Density != 0 || s.Parallelism != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
