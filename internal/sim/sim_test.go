package sim

import (
	"math"
	"testing"

	"dagsched/internal/algo"
	"dagsched/internal/algo/dup"
	"dagsched/internal/algo/listsched"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/platform"
	"dagsched/internal/sched"
	"dagsched/internal/testfix"
)

func TestExactReplayMatchesAnalyticMakespan(t *testing.T) {
	algs := []algo.Algorithm{listsched.HEFT{}, listsched.CPOP{}, dup.BTDH{}, core.New()}
	testfix.Battery(testfix.BatteryConfig{Trials: 25, Seed: 2001}, func(trial int, in *sched.Instance) {
		for _, a := range algs {
			s, err := a.Schedule(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			rep, err := Run(s, Config{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.Name(), err)
			}
			if math.Abs(rep.Makespan-s.Makespan()) > 1e-6 {
				t.Fatalf("trial %d %s: replay %g != analytic %g", trial, a.Name(), rep.Makespan, s.Makespan())
			}
			if math.Abs(rep.Stretch-1) > 1e-9 {
				t.Fatalf("trial %d %s: stretch %g", trial, a.Name(), rep.Stretch)
			}
		}
	})
}

func TestReplayStartsMatchSchedule(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	rep, err := Run(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.N(); i++ {
		p := s.Primary(dag.TaskID(i))
		if math.Abs(rep.Start[i]-p.Start) > 1e-9 || math.Abs(rep.Finish[i]-p.Finish) > 1e-9 {
			t.Fatalf("task %d: replay [%g,%g] vs schedule [%g,%g]", i, rep.Start[i], rep.Finish[i], p.Start, p.Finish)
		}
	}
}

func TestNoiseChangesAndBoundsMakespan(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	rep, err := Run(s, Config{Noise: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan == s.Makespan() {
		t.Fatal("noise had no effect")
	}
	// All durations within ±30%: the makespan cannot inflate beyond the
	// trivial serial bound nor deflate below 70% of the lower bound.
	if rep.Makespan > 1.3*in.SeqTime() {
		t.Fatalf("noisy makespan %g exceeds any sane bound", rep.Makespan)
	}
	if rep.Makespan < 0.7*in.CPMin() {
		t.Fatalf("noisy makespan %g below deflated lower bound", rep.Makespan)
	}
	// Deterministic per seed.
	rep2, _ := Run(s, Config{Noise: 0.3, Seed: 7})
	if rep2.Makespan != rep.Makespan {
		t.Fatal("same seed produced different replay")
	}
	rep3, _ := Run(s, Config{Noise: 0.3, Seed: 8})
	if rep3.Makespan == rep.Makespan {
		t.Fatal("different seeds produced identical replay (suspicious)")
	}
}

func TestUtilizationAndBusyTime(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	rep, err := Run(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var busySum float64
	for p, u := range rep.Utilization {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("utilization[%d] = %g", p, u)
		}
		busySum += rep.BusyTime[p]
	}
	// Total busy time equals the sum of all copies' durations.
	var want float64
	for _, a := range s.All() {
		want += a.Duration()
	}
	if math.Abs(busySum-want) > 1e-6 {
		t.Fatalf("busy %g, want %g", busySum, want)
	}
}

func TestNoiseValidation(t *testing.T) {
	in := testfix.Topcuoglu()
	s, _ := listsched.HEFT{}.Schedule(in)
	if _, err := Run(s, Config{Noise: -0.1}); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := Run(s, Config{Noise: 1}); err == nil {
		t.Fatal("noise 1 accepted")
	}
}

// A zero-cost task whose primary and duplicate share one (proc, start)
// instant used to collide in the actual-finish map, and a consumer on a
// lower-numbered processor starting at the same instant used to replay
// before its source, aborting the run. Both are exercised here.
func TestReplayZeroDurationDuplicates(t *testing.T) {
	b := dag.NewBuilder("zero")
	a := b.AddTask("a", 0)
	c := b.AddTask("b", 1)
	b.AddEdge(a, c, 0)
	g := b.MustBuild()
	sys := platform.Homogeneous(2, 0, 1)
	in, err := sched.NewInstance(g, sys, [][]float64{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	pl := sched.NewPlan(in)
	pl.Place(a, 1, 0)    // zero-duration primary on P1 at t=0
	pl.PlaceDup(a, 1, 0) // duplicate collides on (task, proc, start)
	pl.Place(c, 0, 0)    // consumer on P0 at the same instant
	s := pl.Finalize("manual")
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture schedule invalid: %v", err)
	}
	for _, noise := range []float64{0, 0.4} {
		rep, err := Run(s, Config{Noise: noise, Seed: 3})
		if err != nil {
			t.Fatalf("noise %g: %v", noise, err)
		}
		if rep.Start[c] != 0 {
			t.Fatalf("noise %g: consumer started at %g, want 0", noise, rep.Start[c])
		}
		if noise == 0 && math.Abs(rep.Makespan-s.Makespan()) > 1e-9 {
			t.Fatalf("replay makespan %g != analytic %g", rep.Makespan, s.Makespan())
		}
	}
}

func TestReplayWithDuplicates(t *testing.T) {
	testfix.Battery(testfix.BatteryConfig{Trials: 10, Seed: 2002}, func(trial int, in *sched.Instance) {
		s, err := dup.BTDH{}.Schedule(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, noise := range []float64{0, 0.2, 0.5} {
			rep, err := Run(s, Config{Noise: noise, Seed: int64(trial)})
			if err != nil {
				t.Fatalf("trial %d noise %g: %v", trial, noise, err)
			}
			if rep.Makespan <= 0 {
				t.Fatalf("trial %d: makespan %g", trial, rep.Makespan)
			}
		}
	})
}
