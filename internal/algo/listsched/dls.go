package listsched

import (
	"math"

	"dagsched/internal/algo"
	"dagsched/internal/dag"
	"dagsched/internal/sched"
)

// DLS is the Dynamic Level Scheduling algorithm of Sih and Lee (TPDS
// 1993). At every step it schedules the ready (task, processor) pair with
// the highest dynamic level
//
//	DL(i,p) = SL(i) − EST(i,p) + Δ(i,p),   Δ(i,p) = w̄(i) − w(i,p),
//
// where SL is the static level (mean computation costs, no communication)
// and EST uses the non-insertion policy of the original paper. The Δ term
// is the generalized-heterogeneity adjustment from the original paper; on
// homogeneous systems it vanishes.
type DLS struct{}

// Name implements algo.Algorithm.
func (DLS) Name() string { return "DLS" }

// Schedule implements algo.Algorithm.
func (DLS) Schedule(in *sched.Instance) (*sched.Schedule, error) {
	sl := sched.StaticLevel(in)
	pl := sched.NewPlan(in)
	rl := algo.NewReadyList(in.G)
	for !rl.Empty() {
		bestDL := math.Inf(-1)
		var bestTask dag.TaskID = -1
		bestProc, bestStart := 0, 0.0
		for _, t := range rl.Ready() {
			for p := 0; p < in.P(); p++ {
				start, _ := pl.EFTOn(t, p, false)
				dl := sl[t] - start + (in.MeanCost(t) - in.Cost(t, p))
				// Strictly-greater keeps the smallest (task, proc) pair on
				// ties: ready ids ascend and processors ascend.
				if dl > bestDL {
					bestDL, bestTask, bestProc, bestStart = dl, t, p, start
				}
			}
		}
		pl.Place(bestTask, bestProc, bestStart)
		rl.Complete(bestTask)
	}
	return pl.Finalize("DLS"), nil
}
